// Custom scenario bodies: experiments that are not a declarative grid —
// the self-timed hot-path microbenchmarks and the two modeling ablations.
// They are registered in the scenario registry as Kind::kCustom so that
// `mot3d_experiments` can list and run them, but they pin no golden
// baseline (their outputs are wall-clock measurements or design-space
// tables rather than figure metrics).
#pragma once

#include <iosfwd>

namespace mot3d::sim {

struct ScenarioOptions;
struct ScenarioSpec;

/// Repeater insertion vs Elmore wire delay (bench_ablation_wire).
int run_ablation_wire(const ScenarioSpec& spec, const ScenarioOptions& opt,
                      std::ostream& os);

/// MoT contention vs offered load across power states (bench_ablation_pipeline).
int run_ablation_pipeline(const ScenarioSpec& spec, const ScenarioOptions& opt,
                          std::ostream& os);

/// Hot-path microbenchmarks + dense-vs-event scheduler speedup on the
/// Fig. 6 sweep, with a differential identity check (bench_micro_sim).
int run_micro_sim(const ScenarioSpec& spec, const ScenarioOptions& opt,
                  std::ostream& os);

}  // namespace mot3d::sim
