#include "sim/sweep_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/sha256.hpp"
#include "sim/json_reader.hpp"
#include "sim/scenario_registry.hpp"
#include "workload/app_profile.hpp"

namespace fs = std::filesystem;

namespace mot3d::sim {

namespace {

constexpr const char* kMagic = "mot3d-cache v1";
constexpr const char* kEntryExt = ".entry";

bool is_entry_file(const fs::directory_entry& e) {
  return e.is_regular_file() && e.path().extension() == kEntryExt;
}

}  // namespace

// ---- canonical spec + hash -------------------------------------------------

std::string canonical_job_json(const SweepJob& job) {
  // Fixed field set + insertion order; every double goes through the
  // shortest-round-trip canonical formatter.  The power state serialises
  // by name, which maps 1:1 to a cluster shape for every state the CLI
  // and registry can construct ("Full", "PC<c>-MB<b>", "Full<c>x<b>").
  JsonObject o;
  o.set("format", std::uint64_t{1})
      .set("app", job.run.app)
      .set("fabric", fabric_key(job.run.fabric))
      .set("state", job.run.state.name())
      .set("dram_ns", mem::dram_latency_ns(job.run.dram))
      .set("dram_backend", dram_backend_key(job.run.dram_backend))
      .set("thermal_enabled", job.run.thermal.enabled)
      .set("thermal_ambient_c", job.run.thermal.ambient_c)
      .set("thermal_ceiling_c", job.run.thermal.ceiling_c)
      .set("fault_enabled", job.run.fault.enabled)
      .set("fault_tsv_rate", job.run.fault.tsv_fault_rate)
      .set("fault_bank_rate", job.run.fault.bank_fault_rate)
      .set("fault_seed", job.run.fault.seed)
      .set("scale", job.scale)
      .set("seed", job.seed);
  return o.str();
}

std::string job_hash(const SweepJob& job) {
  return sha256_hex(canonical_job_json(job));
}

// ---- service ---------------------------------------------------------------

SweepService::SweepService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.cache_dir.empty()) {
    throw std::runtime_error("sweep service needs a cache directory");
  }
  std::error_code ec;
  fs::create_directories(cfg_.cache_dir, ec);
  // Probe with a real write: create_directories succeeding (or the dir
  // already existing) does not prove the entries themselves are writable.
  const fs::path probe = fs::path(cfg_.cache_dir) / ".write_probe";
  {
    std::ofstream f(probe, std::ios::binary | std::ios::trunc);
    f << "ok";
    f.flush();
    if (!f) {
      throw std::runtime_error("cache directory '" + cfg_.cache_dir +
                               "' is not writable");
    }
  }
  fs::remove(probe, ec);
}

std::string SweepService::entry_path(const std::string& hash) const {
  return (fs::path(cfg_.cache_dir) / (hash + kEntryExt)).string();
}

SweepService::Probe SweepService::load_entry(const std::string& hash,
                                             std::string* payload,
                                             std::string* reason) const {
  const std::string path = entry_path(hash);
  std::ifstream f(path, std::ios::binary);
  if (!f) return Probe::kMiss;

  auto corrupt = [&](const char* why) {
    *reason = why;
    return Probe::kCorrupt;
  };
  std::string line;
  if (!std::getline(f, line) || line != kMagic) return corrupt("bad magic");
  if (!std::getline(f, line) || line != "spec_sha256 " + hash) {
    return corrupt("spec hash mismatch");
  }
  std::string payload_sha;
  if (!std::getline(f, line) || line.rfind("payload_sha256 ", 0) != 0) {
    return corrupt("missing payload hash");
  }
  payload_sha = line.substr(15);
  std::size_t payload_bytes = 0;
  if (!std::getline(f, line) || line.rfind("payload_bytes ", 0) != 0) {
    return corrupt("missing payload length");
  }
  try {
    std::size_t used = 0;
    payload_bytes = std::stoull(line.substr(14), &used);
    if (used != line.size() - 14) return corrupt("malformed payload length");
  } catch (const std::exception&) {
    return corrupt("malformed payload length");
  }
  if (!std::getline(f, line)) return corrupt("missing spec document");
  payload->resize(payload_bytes);
  f.read(payload->data(), static_cast<std::streamsize>(payload_bytes));
  if (static_cast<std::size_t>(f.gcount()) != payload_bytes) {
    return corrupt("truncated payload");
  }
  if (f.peek() != std::ifstream::traits_type::eof()) {
    return corrupt("trailing bytes after payload");
  }
  if (sha256_hex(*payload) != payload_sha) {
    return corrupt("payload hash mismatch");
  }
  // Refresh the entry's file time so the byte-cap eviction is LRU, not
  // insertion-order.  Best effort: a read-only cache still serves hits.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return Probe::kHit;
}

bool SweepService::store_entry(const SweepJob& job, const std::string& hash,
                               const std::string& payload) {
  std::lock_guard<std::mutex> lock(store_mutex_);
  const std::string path = entry_path(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << kMagic << "\n"
      << "spec_sha256 " << hash << "\n"
      << "payload_sha256 " << sha256_hex(payload) << "\n"
      << "payload_bytes " << payload.size() << "\n"
      << canonical_job_json(job) << "\n"
      << payload;
    f.flush();
    if (!f) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  // Atomic publish: readers only ever see absent or complete entries
  // (a crash mid-write leaves a .tmp that no probe ever opens).
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  if (cfg_.max_cache_bytes > 0) evict_over_cap();
  return true;
}

void SweepService::evict_over_cap() {
  // Caller holds store_mutex_.
  struct Entry {
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
    fs::path path;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(cfg_.cache_dir, ec)) {
    if (!is_entry_file(e)) continue;
    Entry ent{e.last_write_time(ec), e.file_size(ec), e.path()};
    total += ent.bytes;
    entries.push_back(std::move(ent));
  }
  if (total <= cfg_.max_cache_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::uint64_t evicted = 0;
  for (const Entry& ent : entries) {
    if (total <= cfg_.max_cache_bytes) break;
    fs::remove(ent.path, ec);
    if (ec) continue;
    total -= ent.bytes;
    ++evicted;
  }
  counters_.add_evictions(evicted);
}

CacheStats SweepService::cache_stats() const {
  CacheStats stats;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(cfg_.cache_dir, ec)) {
    if (!is_entry_file(e)) continue;
    ++stats.entries;
    stats.bytes += e.file_size(ec);
  }
  return stats;
}

std::size_t SweepService::cache_clear() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  std::size_t removed = 0;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(cfg_.cache_dir, ec)) {
    if (!is_entry_file(e)) continue;
    fs::remove(e.path(), ec);
    if (!ec) ++removed;
  }
  return removed;
}

std::vector<JobOutcome> SweepService::run_batch(const std::vector<SweepJob>& jobs) {
  enum class State { kUnresolved, kResolved, kCompute, kWait };
  struct Unique {
    std::string hash;
    std::size_t job = 0;  ///< first job index with this hash
    JobOutcome outcome;
    State state = State::kUnresolved;
    std::shared_ptr<InFlight> flight;
  };

  // Deduplicate within the batch, preserving first-occurrence order.
  std::vector<std::string> hashes(jobs.size());
  std::unordered_map<std::string, std::size_t> index_of;
  std::vector<Unique> uniq;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    hashes[i] = job_hash(jobs[i]);
    if (index_of.emplace(hashes[i], uniq.size()).second) {
      uniq.push_back(Unique{hashes[i], i, {}, State::kUnresolved, nullptr});
    }
  }

  // Resolve each unique spec: an in-flight computation elsewhere means
  // wait; a verified disk entry is a hit; everything else is claimed for
  // computation here.  Claims are registered BEFORE any wait happens, so
  // two concurrent batches can never deadlock on each other.
  std::vector<std::size_t> to_compute;
  for (std::size_t u = 0; u < uniq.size(); ++u) {
    Unique& q = uniq[u];
    q.outcome.spec_hash = q.hash;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(q.hash);
      if (it != inflight_.end()) {
        q.flight = it->second;
        q.state = State::kWait;
        continue;
      }
    }
    std::string payload, reason;
    const Probe probe = load_entry(q.hash, &payload, &reason);
    if (probe == Probe::kHit) {
      counters_.add_hit();
      q.outcome.cache_hit = true;
      q.outcome.payload = std::move(payload);
      q.state = State::kResolved;
      continue;
    }
    if (probe == Probe::kCorrupt) {
      counters_.add_corrupt();
      std::cerr << "warning: cache entry " << q.hash << " is corrupt (" << reason
                << "); recomputing\n";
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(q.hash);
      if (it != inflight_.end()) {
        // Raced with another batch that claimed it between our probe and
        // now — wait on theirs instead of computing twice.
        q.flight = it->second;
        q.state = State::kWait;
        continue;
      }
      q.flight = std::make_shared<InFlight>();
      inflight_.emplace(q.hash, q.flight);
    }
    counters_.add_miss();
    counters_.enqueue();
    q.state = State::kCompute;
    to_compute.push_back(u);
  }

  // Shard the misses across the pool; run_isolated keeps one bad job from
  // killing its peers.
  if (!to_compute.empty()) {
    SweepRunner runner(cfg_.threads);
    std::vector<SweepRunner::Task> tasks;
    tasks.reserve(to_compute.size());
    for (std::size_t u : to_compute) {
      const SweepJob& job = jobs[uniq[u].job];
      ScenarioOptions opt;
      opt.scale = job.scale;
      opt.seed = job.seed;
      opt.threads = cfg_.threads;
      opt.scheduler = cfg_.scheduler;
      opt.timeout_seconds = job.timeout_seconds;
      const cluster::ClusterConfig cfg = make_run_config(job.run, opt);
      tasks.push_back([cfg] { return cluster::Cluster(cfg).run(); });
    }
    std::vector<IsolatedResult> computed = runner.run_isolated(tasks);
    for (std::size_t k = 0; k < to_compute.size(); ++k) {
      Unique& q = uniq[to_compute[k]];
      counters_.add_computed();
      if (computed[k].ok()) {
        q.outcome.payload =
            run_metrics_json(jobs[q.job].run, computed[k].result);
        if (!store_entry(jobs[q.job], q.hash, q.outcome.payload)) {
          std::cerr << "warning: could not write cache entry " << q.hash
                    << " under '" << cfg_.cache_dir << "'\n";
        }
      } else {
        // Errors (watchdog timeouts, structural failures) are never
        // cached: they may be transient and must recompute next time.
        q.outcome.error = computed[k].error;
      }
      {
        std::lock_guard<std::mutex> lock(q.flight->m);
        q.flight->outcome = q.outcome;
        q.flight->done = true;
      }
      q.flight->cv.notify_all();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(q.hash);
      }
      counters_.dequeue();
      q.state = State::kResolved;
    }
  }

  // Only now wait on specs claimed by other batches — everything we
  // claimed is already published, so the wait graph has no cycles.
  for (Unique& q : uniq) {
    if (q.state != State::kWait) continue;
    std::unique_lock<std::mutex> lock(q.flight->m);
    q.flight->cv.wait(lock, [&] { return q.flight->done; });
    q.outcome = q.flight->outcome;
    if (q.outcome.ok()) {
      // Served by someone else's computation: a hit from this batch's
      // point of view (it computed nothing).
      q.outcome.cache_hit = true;
      counters_.add_hit();
    }
    q.state = State::kResolved;
  }

  std::vector<JobOutcome> out(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[i] = uniq[index_of.at(hashes[i])].outcome;
    if (!out[i].ok()) counters_.add_job_error();
  }
  return out;
}

// ---- request protocol ------------------------------------------------------

namespace {

[[noreturn]] void bad_request(const std::string& why) {
  throw std::invalid_argument("bad request: " + why);
}

/// Re-serialise a scalar "id" verbatim (arrays/objects are rejected: the
/// id is echoed into every response line and must stay one token).
std::string id_json(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Type::kNumber: return json_number(v.number);
    case JsonValue::Type::kString: return json_string(v.string);
    default: bad_request("'id' must be a scalar");
  }
}

std::vector<std::string> string_list(const JsonValue& v, const char* field) {
  if (v.type != JsonValue::Type::kArray || v.array.empty()) {
    bad_request(std::string("'") + field + "' must be a non-empty array");
  }
  std::vector<std::string> out;
  for (const JsonValue& e : v.array) {
    if (e.type != JsonValue::Type::kString) {
      bad_request(std::string("'") + field + "' must contain only strings");
    }
    out.push_back(e.string);
  }
  return out;
}

double number_field(const JsonValue& v, const char* field) {
  if (v.type != JsonValue::Type::kNumber) {
    bad_request(std::string("'") + field + "' must be a number");
  }
  return v.number;
}

std::uint64_t u64_field(const JsonValue& v, const char* field) {
  const double d = number_field(v, field);
  if (d < 0.0 || d != std::floor(d)) {
    bad_request(std::string("'") + field + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

ServiceRequest parse_service_request(const std::string& line) {
  std::optional<JsonValue> doc = JsonReader(line).parse();
  if (!doc || doc->type != JsonValue::Type::kObject) {
    bad_request("not a JSON object");
  }

  static const char* kKnown[] = {"id",     "cmd",   "scenario",
                                 "apps",   "fabrics", "states",
                                 "dram",   "dram_backends", "scale",
                                 "seed",   "timeout_seconds"};
  for (const auto& [key, value] : doc->object) {
    (void)value;
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known) bad_request("unknown field '" + key + "'");
  }

  ServiceRequest req;
  if (const JsonValue* id = doc->find("id")) req.id = id_json(*id);

  if (const JsonValue* cmd = doc->find("cmd")) {
    if (cmd->type != JsonValue::Type::kString) {
      bad_request("'cmd' must be a string");
    }
    if (cmd->string != "ping" && cmd->string != "stats" &&
        cmd->string != "shutdown") {
      bad_request("unknown cmd '" + cmd->string +
                  "' (want ping|stats|shutdown)");
    }
    if (doc->object.size() > (doc->find("id") ? 2u : 1u)) {
      bad_request("'cmd' requests take no other fields");
    }
    req.cmd = cmd->string;
    return req;
  }

  // Modeled-input knobs shared by both request shapes.
  double timeout_seconds = 0.0;
  if (const JsonValue* t = doc->find("timeout_seconds")) {
    timeout_seconds = number_field(*t, "timeout_seconds");
    if (!std::isfinite(timeout_seconds) || timeout_seconds < 0.0) {
      bad_request("'timeout_seconds' must be non-negative and finite");
    }
  }
  const JsonValue* scale_v = doc->find("scale");
  const JsonValue* seed_v = doc->find("seed");
  if (scale_v != nullptr) {
    const double s = number_field(*scale_v, "scale");
    if (!std::isfinite(s) || s <= 0.0) {
      bad_request("'scale' must be a positive finite number");
    }
  }

  ScenarioSpec adhoc;
  const ScenarioSpec* spec = nullptr;
  double scale = 0.0;
  std::uint64_t seed = 0;
  if (const JsonValue* scen = doc->find("scenario")) {
    for (const char* axis : {"apps", "fabrics", "states", "dram",
                             "dram_backends"}) {
      if (doc->find(axis) != nullptr) {
        bad_request(std::string("request mixes 'scenario' with grid axis '") +
                    axis + "'");
      }
    }
    if (scen->type != JsonValue::Type::kString) {
      bad_request("'scenario' must be a string");
    }
    spec = find_scenario(scen->string);
    if (spec == nullptr) {
      bad_request("scenario '" + scen->string + "' is not registered");
    }
    if (spec->kind != ScenarioSpec::Kind::kSweep) {
      bad_request("scenario '" + scen->string +
                  "' is not a sweep (nothing to memoize)");
    }
    // Registered scenarios default to their pinned golden options — the
    // canonical configuration a memoizing server should converge on.
    scale = spec->golden_scale;
    seed = spec->seed;
  } else {
    adhoc.name = "service_grid";
    adhoc.kind = ScenarioSpec::Kind::kSweep;
    adhoc.has_golden = false;
    try {
      adhoc.apps = doc->find("apps")
                       ? string_list(*doc->find("apps"), "apps")
                       : workload::splash2_names();
      for (const std::string& a : adhoc.apps) {
        (void)workload::profile_by_name(a);  // throws std::out_of_range
      }
      if (const JsonValue* v = doc->find("fabrics")) {
        for (const std::string& f : string_list(*v, "fabrics")) {
          adhoc.fabrics.push_back(fabric_by_key(f));
        }
      } else {
        adhoc.fabrics = {cluster::Fabric::kMot};
      }
      if (const JsonValue* v = doc->find("states")) {
        for (const std::string& s : string_list(*v, "states")) {
          adhoc.power_states.push_back(power_state_by_name(s));
        }
      } else {
        adhoc.power_states = {core::PowerState::full()};
      }
      if (const JsonValue* v = doc->find("dram")) {
        for (const std::string& d : string_list(*v, "dram")) {
          adhoc.dram_presets.push_back(dram_preset_by_key(d));
        }
      } else {
        adhoc.dram_presets = {mem::DramPreset::kDdr3_200ns};
      }
      if (const JsonValue* v = doc->find("dram_backends")) {
        for (const std::string& b : string_list(*v, "dram_backends")) {
          adhoc.dram_backends.push_back(dram_backend_by_key(b));
        }
      }
    } catch (const std::out_of_range&) {
      bad_request("unknown app in 'apps'");
    } catch (const std::invalid_argument& e) {
      bad_request(e.what());
    }
    spec = &adhoc;
    scale = adhoc.default_scale;
    seed = adhoc.seed;
  }
  if (scale_v != nullptr) scale = scale_v->number;
  if (seed_v != nullptr) seed = u64_field(*seed_v, "seed");

  for (const ScenarioRun& run : expand_grid(*spec, &req.skipped_invalid)) {
    req.jobs.push_back(SweepJob{run, scale, seed, timeout_seconds});
  }
  return req;
}

int service_loop(std::istream& in, std::ostream& out, SweepService& service,
                 ServiceLoopMode mode) {
  const bool serve = mode == ServiceLoopMode::kServe;
  obs::ServiceCounters& counters = service.counters();
  if (serve) {
    const CacheStats stats = service.cache_stats();
    JsonObject ready;
    ready.set("ready", true)
        .set("cache_dir", service.config().cache_dir)
        .set("cache_entries", stats.entries);
    out << ready.str() << "\n" << std::flush;
  }

  bool shutdown = false;
  std::string line;
  while (!shutdown && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ServiceRequest req;
    try {
      req = parse_service_request(line);
    } catch (const std::invalid_argument& e) {
      counters.add_protocol_error();
      JsonObject err;
      err.set("error", e.what());
      out << err.str() << "\n";
      if (serve) out.flush();
      continue;
    }
    counters.add_request();

    if (req.cmd == "ping") {
      JsonObject o;
      o.set_raw("id", req.id).set("pong", true);
      out << o.str() << "\n";
    } else if (req.cmd == "stats") {
      const obs::ServiceSnapshot s = counters.snapshot();
      const CacheStats cache = service.cache_stats();
      JsonObject stats;
      stats.set("service.hits", s.hits)
          .set("service.misses", s.misses)
          .set("service.computed", s.computed)
          .set("service.evictions", s.evictions)
          .set("service.corrupt_entries", s.corrupt_entries)
          .set("service.job_errors", s.job_errors)
          .set("service.protocol_errors", s.protocol_errors)
          .set("service.requests", s.requests)
          .set("service.queue_depth", static_cast<std::uint64_t>(
                                          s.queue_depth < 0 ? 0 : s.queue_depth))
          .set("service.cache_entries", cache.entries)
          .set("service.cache_bytes", cache.bytes);
      JsonObject o;
      o.set_raw("id", req.id).set_raw("stats", stats.str());
      out << o.str() << "\n";
    } else if (req.cmd == "shutdown") {
      JsonObject o;
      o.set_raw("id", req.id).set("bye", true);
      out << o.str() << "\n";
      shutdown = true;
    } else {
      const std::vector<JobOutcome> outcomes = service.run_batch(req.jobs);
      std::uint64_t hits = 0, misses = 0, errors = 0;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepJob& job = req.jobs[i];
        const JobOutcome& r = outcomes[i];
        JsonObject o;
        o.set_raw("id", req.id)
            .set("job", static_cast<std::uint64_t>(i))
            .set("app", job.run.app)
            .set("fabric", fabric_key(job.run.fabric))
            .set("state", job.run.state.name())
            .set("spec_hash", r.spec_hash)
            .set("cache_hit", r.cache_hit);
        if (r.ok()) {
          (r.cache_hit ? hits : misses) += 1;
          o.set_raw("result", r.payload);
        } else {
          ++errors;
          o.set("error", r.error);
        }
        out << o.str() << "\n";
      }
      JsonObject done;
      done.set_raw("id", req.id)
          .set("done", true)
          .set("jobs", static_cast<std::uint64_t>(outcomes.size()))
          .set("skipped_invalid", static_cast<std::uint64_t>(req.skipped_invalid))
          .set("cache_hits", hits)
          .set("cache_misses", misses)
          .set("errors", errors);
      out << done.str() << "\n";
    }
    if (serve) out.flush();
  }

  if (mode == ServiceLoopMode::kBatch) {
    const obs::ServiceSnapshot s = counters.snapshot();
    JsonObject o;
    o.set("batch_done", true)
        .set("requests", s.requests)
        .set("cache_hits", s.hits)
        .set("cache_misses", s.misses)
        .set("computed", s.computed)
        .set("errors", s.job_errors)
        .set("protocol_errors", s.protocol_errors)
        .set("evictions", s.evictions)
        .set("corrupt_entries", s.corrupt_entries);
    out << o.str() << "\n";
    return (s.job_errors > 0 || s.protocol_errors > 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace mot3d::sim
