#include "sim/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "common/table.hpp"
#include "obs/trace.hpp"

namespace mot3d::sim {

namespace {

bool run_is_valid(const ScenarioRun& r) {
  // Packet-switched baselines only run the full (ungated) configuration —
  // the same invariant Cluster's constructor enforces.  Keep
  // invalid_cell_reason() below in step with any rule added here.
  if (r.fabric == cluster::Fabric::kMot) return true;
  return r.state.active_cores() == r.state.total_cores() &&
         r.state.active_banks() == r.state.total_banks();
}

/// Serialise one latency digest under `key`.  An empty digest exports as
/// an explicit JSON null — never the fabricated 0.0 that RunningStat-style
/// accessors return before the first sample.
void set_obs_digest(JsonObject& o, const std::string& key,
                    const obs::LatencyDigest& d) {
  if (d.empty()) {
    o.set_raw(key, "null");
    return;
  }
  o.set(key + "_count", d.count)
      .set(key + "_min", static_cast<std::uint64_t>(d.min))
      .set(key + "_max", static_cast<std::uint64_t>(d.max))
      .set(key + "_p50", static_cast<std::uint64_t>(d.p50))
      .set(key + "_p95", static_cast<std::uint64_t>(d.p95))
      .set(key + "_p99", static_cast<std::uint64_t>(d.p99));
}

JsonObject run_metrics(const ScenarioRun& run, const cluster::SimResult& r) {
  JsonObject o;
  o.set("app", run.app)
      .set("fabric", cluster::fabric_name(run.fabric))
      .set("state", run.state.name())
      .set("dram_ns", mem::dram_latency_ns(run.dram))
      .set("cycles", static_cast<std::uint64_t>(r.cycles))
      .set("instructions", r.instructions)
      .set("ipc", r.ipc())
      .set("l2_hits", r.l2.hits)
      .set("l2_misses", r.l2.misses)
      .set("l2_writebacks", r.l2.writebacks)
      .set("l2_bank_conflict_cycles", r.l2.bank_conflict_cycles)
      .set("l2_bank_hit_rate_min", r.l2_bank_hit_rate_min)
      .set("l2_bank_hit_rate_max", r.l2_bank_hit_rate_max)
      .set("l2_bank_hit_rate_spread", r.l2_bank_hit_rate_spread)
      .set("l2_resident_lines", static_cast<std::uint64_t>(r.l2_resident_lines))
      .set("l2_hit_latency_mean", r.l2_hit_latency.mean())
      .set("l2_latency_mean", r.l2_latency.mean())
      .set("l2_latency_p95", r.l2_latency.quantile(0.95))
      .set("dram_reads", r.dram.reads)
      .set("dram_writes", r.dram.writes)
      .set("dram_wait_cycles", r.dram.total_wait_cycles)
      .set("icn_requests_injected", r.interconnect.requests_injected)
      .set("icn_requests_delivered", r.interconnect.requests_delivered)
      .set("icn_responses_delivered", r.interconnect.responses_delivered)
      .set("icn_arbitration_wait_cycles", r.interconnect.arbitration_wait_cycles)
      .set("l1d_miss_rate", r.l1d_miss_rate)
      .set("l1i_miss_rate", r.l1i_miss_rate)
      .set("energy_core_pj", r.energy.component_pj(power::Component::kCore))
      .set("energy_l1_pj", r.energy.component_pj(power::Component::kL1))
      .set("energy_l2_pj", r.energy.component_pj(power::Component::kL2))
      .set("energy_icn_pj", r.energy.component_pj(power::Component::kInterconnect))
      .set("energy_dram_pj", r.energy.component_pj(power::Component::kDram))
      .set("edp_energy_pj", r.energy.edp_energy_pj())
      .set("edp_pj_s", r.edp_pj_s)
      .set("avg_power_w", r.avg_power_w);
  // Thermal runs append their trajectory; non-thermal runs keep the exact
  // field set the pre-thermal golden baselines pinned.
  if (run.thermal.enabled) {
    const thermal::ThermalSummary& t = r.thermal;
    o.set("thermal_ambient_c", t.ambient_c)
        .set("thermal_ceiling_c", t.ceiling_c)
        .set("thermal_peak_c", t.peak_c)
        .set("thermal_peak_core_die_c", t.peak_layer_c.size() > 0 ? t.peak_layer_c[0] : 0.0)
        .set("thermal_peak_l2_tier_a_c", t.peak_layer_c.size() > 1 ? t.peak_layer_c[1] : 0.0)
        .set("thermal_peak_l2_tier_b_c", t.peak_layer_c.size() > 2 ? t.peak_layer_c[2] : 0.0)
        .set("thermal_final_peak_c", t.final_peak_c)
        .set("thermal_steady_peak_c", t.steady_peak_c)
        .set("thermal_samples", t.samples)
        .set("thermal_throttle_events", t.throttle_events)
        .set("thermal_bank_gate_events", t.bank_gate_events)
        .set("thermal_core_hold_events", t.core_hold_events)
        .set("thermal_throttled_cycles", t.throttled_cycles)
        .set("thermal_leakage_pj", t.leakage_pj)
        .set("thermal_leakage_ref_pj", t.leakage_ref_pj)
        .set("thermal_leakage_delta_pj", t.leakage_delta_pj());
  }
  // Stacked-DRAM fields appear only for stacked-backend runs — every
  // constant-backend run (all legacy goldens) keeps its exact field set.
  if (r.dram3d.enabled) {
    o.set("dram_backend", dram_backend_key(run.dram_backend))
        .set("dram3d_vaults", static_cast<std::uint64_t>(r.dram3d.vaults))
        .set("dram3d_alive_vaults",
             static_cast<std::uint64_t>(r.dram3d.alive_vaults))
        .set("dram3d_row_hits", r.dram3d.row_hits)
        .set("dram3d_row_misses", r.dram3d.row_misses)
        .set("dram3d_refreshes", r.dram3d.refreshes)
        .set("dram3d_remaps", r.dram3d.remaps)
        .set("dram3d_vault_faults", r.dram3d.vault_faults)
        .set("dram3d_remap_enabled", r.dram3d.remap_enabled)
        .set("dram3d_peak_vault_c", r.dram3d.peak_vault_c)
        .set("dram3d_peak_vault",
             static_cast<std::uint64_t>(r.dram3d.peak_vault));
  }
  // Coherence counters appear only for sharing workloads, so every
  // non-coherent scenario keeps its exact field set.
  if (r.coherence_enabled) {
    const coherence::CoherenceStats& c = r.coherence;
    o.set("coh_invalidations", c.invalidations)
        .set("coh_inv_acks", c.inv_acks)
        .set("coh_data_forwards", c.data_forwards)
        .set("coh_upgrades", c.upgrades)
        .set("coh_sharing_misses", c.sharing_misses)
        .set("coh_dir_accesses", c.dir_accesses)
        .set("coh_dir_entries", static_cast<std::uint64_t>(r.coh_dir_entries))
        .set("coh_dir_peak_entries", c.dir_peak_entries)
        .set("coh_dir_migrations", c.dir_migrations);
  }
  // Fault counters appear only for fault-injected runs — fault-free
  // scenarios (every legacy golden) keep their exact field set.
  if (run.fault.enabled) {
    const fault::FaultSummary& f = r.fault;
    o.set("fault_outcome", f.outcome)
        .set("fault_injected", f.injected)
        .set("fault_recovered", f.recovered)
        .set("fault_unrecoverable", f.unrecoverable)
        .set("fault_bank_gate_events", f.bank_gate_events)
        .set("fault_degraded_cycles", f.degraded_cycles)
        .set("fault_repair_pj", f.repair_energy_pj);
    if (!f.fail_reason.empty()) o.set("fault_fail_reason", f.fail_reason);
  }
  // Latency digests appear only when observability ran — every obs-off run
  // (all goldens) keeps its exact field set.
  if (r.obs.enabled) {
    set_obs_digest(o, "obs_l2_rt", r.obs.l2_rt);
    set_obs_digest(o, "obs_inv_rt", r.obs.inv_rt);
    set_obs_digest(o, "obs_dram_service", r.obs.dram_service);
    for (std::size_t v = 0; v < r.obs.dram_vault_service.size(); ++v) {
      set_obs_digest(o, "obs_dram_vault" + std::to_string(v) + "_service",
                     r.obs.dram_vault_service[v]);
    }
  }
  return o;
}

/// Stable per-run label for trace processes and metrics rows.
std::string run_label(const ScenarioRun& run) {
  std::string label = run.app + "/" + fabric_key(run.fabric) + "/" +
                      run.state.name() + "/" +
                      std::to_string(static_cast<int>(mem::dram_latency_ns(run.dram))) +
                      "ns";
  if (run.dram_backend != DramBackendMode::kConstant) {
    label += "/";
    label += dram_backend_key(run.dram_backend);
  }
  return label;
}

bool write_trace_file(const std::string& path, const ScenarioOutcome& out) {
  std::ofstream f(path);
  if (!f) return false;
  std::vector<std::pair<std::string, const obs::TraceBuffer*>> traced;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    // Errored runs have no trace to merge; their error is reported anyway.
    if (!out.run_ok(i) || out.results[i].trace == nullptr) continue;
    traced.emplace_back(run_label(out.runs[i]), out.results[i].trace.get());
  }
  obs::write_chrome_trace(f, traced);
  return static_cast<bool>(f);
}

bool write_metrics_file(const std::string& path, const ScenarioOutcome& out) {
  std::ofstream f(path);
  if (!f) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    f << "run,cycle,counter,value\n";
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      if (!out.run_ok(i) || out.results[i].metrics == nullptr) continue;
      out.results[i].metrics->write_csv_rows(f, run_label(out.runs[i]));
    }
  } else {
    f << "{\"runs\":[";
    bool first = true;
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      if (!out.run_ok(i) || out.results[i].metrics == nullptr) continue;
      f << (first ? "\n" : ",\n");
      first = false;
      f << "{\"run\":" << json_string(run_label(out.runs[i]))
        << ",\"epoch_cycles\":" << out.results[i].metrics->epoch_cycles()
        << ",\"series\":";
      out.results[i].metrics->write_json(f);
      f << "}";
    }
    f << "\n]}\n";
  }
  return static_cast<bool>(f);
}

/// An errored run serialises its axes plus the error message — no modeled
/// metrics exist for it.
JsonObject run_error_metrics(const ScenarioRun& run, const std::string& error) {
  JsonObject o;
  o.set("app", run.app)
      .set("fabric", cluster::fabric_name(run.fabric))
      .set("state", run.state.name())
      .set("dram_ns", mem::dram_latency_ns(run.dram))
      .set("error", error);
  return o;
}

JsonObject timing_metrics(const TimingRow& t) {
  JsonObject o;
  o.set("state", t.state)
      .set("cores", static_cast<std::uint64_t>(t.cores))
      .set("banks", static_cast<std::uint64_t>(t.banks))
      .set("bank_field_mm", t.bank_field_mm)
      .set("core_field_mm", t.core_field_mm)
      .set("longest_link_mm", t.longest_link_mm)
      .set("request_path_mm", t.request_path_mm)
      .set("request_delay_ns", t.timing.request_delay_ns)
      .set("response_delay_ns", t.timing.response_delay_ns)
      .set("request_cycles", t.timing.request_cycles)
      .set("bank_cycles", t.timing.bank_cycles)
      .set("response_cycles", t.timing.response_cycles)
      .set("l2_round_trip", t.timing.l2_round_trip())
      .set("powered_repeaters", static_cast<std::uint64_t>(t.powered_repeaters))
      .set("powered_switches", static_cast<std::uint64_t>(t.powered_switches));
  return o;
}

void present_generic(const ScenarioOutcome& out, std::ostream& os) {
  const ScenarioSpec& spec = *out.spec;
  if (spec.kind == ScenarioSpec::Kind::kTiming) {
    TextTable tbl(spec.name + " — per-state timing/geometry");
    tbl.set_header({"state", "cores", "banks", "longest link (mm)",
                    "request delay (ns)", "L2 round trip (cy)"});
    for (const TimingRow& t : out.timing_rows) {
      tbl.add_row({t.state, std::to_string(t.cores), std::to_string(t.banks),
                   fmt_fixed(t.longest_link_mm, 2),
                   fmt_fixed(t.timing.request_delay_ns, 2),
                   std::to_string(t.timing.l2_round_trip())});
    }
    tbl.print(os);
    return;
  }
  TextTable tbl(spec.name + " — " + std::to_string(out.results.size()) + " runs");
  tbl.set_header({"app", "fabric", "state", "DRAM (ns)", "kcycles", "IPC",
                  "L2 hit rate", "EDP (pJ s)"});
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const ScenarioRun& run = out.runs[i];
    if (!out.run_ok(i)) {
      tbl.add_row({run.app, cluster::fabric_name(run.fabric), run.state.name(),
                   fmt_fixed(mem::dram_latency_ns(run.dram), 0), "error", "-",
                   "-", "-"});
      continue;
    }
    const cluster::SimResult& r = out.results[i];
    tbl.add_row({run.app, cluster::fabric_name(run.fabric), run.state.name(),
                 fmt_fixed(mem::dram_latency_ns(run.dram), 0),
                 fmt_fixed(static_cast<double>(r.cycles) / 1000.0, 0),
                 fmt_fixed(r.ipc(), 2), fmt_fixed(r.l2.hit_rate(), 2),
                 fmt_fixed(r.edp_pj_s, 3)});
  }
  tbl.print(os);
}

}  // namespace

std::size_t ScenarioSpec::grid_size() const {
  if (kind != Kind::kSweep) return power_states.size();
  return apps.size() * fabrics.size() * power_states.size() * dram_presets.size() *
         std::max<std::size_t>(1, thermal_envelopes.size()) *
         std::max<std::size_t>(1, fault_envelopes.size()) *
         std::max<std::size_t>(1, dram_backends.size());
}

std::vector<ScenarioRun> expand_grid(const ScenarioSpec& spec, std::size_t* skipped) {
  // An empty thermal axis is one implicit disabled cell, so non-thermal
  // specs expand to exactly the grids they always did.
  const std::vector<thermal::ThermalEnvelope> envelopes =
      spec.thermal_envelopes.empty()
          ? std::vector<thermal::ThermalEnvelope>{thermal::ThermalEnvelope{}}
          : spec.thermal_envelopes;
  // Same trick for the fault axis: absent means one disabled cell.
  const std::vector<fault::FaultEnvelope> fault_envs =
      spec.fault_envelopes.empty()
          ? std::vector<fault::FaultEnvelope>{fault::FaultEnvelope{}}
          : spec.fault_envelopes;
  // And the backend axis: absent means one constant-latency cell.
  const std::vector<DramBackendMode> backends =
      spec.dram_backends.empty()
          ? std::vector<DramBackendMode>{DramBackendMode::kConstant}
          : spec.dram_backends;
  std::vector<ScenarioRun> runs;
  std::size_t dropped = 0;
  for (const std::string& app : spec.apps) {
    for (cluster::Fabric fabric : spec.fabrics) {
      for (const core::PowerState& state : spec.power_states) {
        for (mem::DramPreset dram : spec.dram_presets) {
          for (const thermal::ThermalEnvelope& env : envelopes) {
            for (const fault::FaultEnvelope& fenv : fault_envs) {
              for (DramBackendMode backend : backends) {
                const ScenarioRun run{app, fabric, state, dram, env, fenv,
                                      backend};
                if (run_is_valid(run)) {
                  runs.push_back(run);
                } else {
                  ++dropped;
                }
              }
            }
          }
        }
      }
    }
  }
  if (skipped != nullptr) *skipped = dropped;
  return runs;
}

const char* invalid_cell_reason() {
  return "packet-switched fabrics only run ungated";
}

std::size_t ScenarioOutcome::error_count() const {
  std::size_t n = 0;
  for (const std::string& e : errors) {
    if (!e.empty()) ++n;
  }
  return n;
}

const cluster::SimResult& ScenarioOutcome::result(const std::string& app,
                                                  cluster::Fabric fabric,
                                                  const std::string& state_name,
                                                  mem::DramPreset dram) const {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].app == app && runs[i].fabric == fabric &&
        runs[i].state.name() == state_name && runs[i].dram == dram) {
      return results[i];
    }
  }
  throw std::out_of_range("no result for " + app + "/" +
                          cluster::fabric_name(fabric) + "/" + state_name);
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioOptions& opt) {
  if (spec.kind == ScenarioSpec::Kind::kCustom) {
    throw std::logic_error("custom scenario '" + spec.name +
                           "' runs through run_and_present");
  }
  ScenarioOutcome out;
  out.spec = &spec;
  out.options = opt;

  if (spec.kind == ScenarioSpec::Kind::kTiming) {
    const phys::TechnologyParams tech = phys::default_technology();
    const phys::FloorplanParams fp;
    const phys::ClusterGeometry geo(fp, tech);
    const cacti::SramBankConfig bank_cfg;
    const core::MotTimingModel model(tech, fp, bank_cfg);
    for (const core::PowerState& s : spec.power_states) {
      TimingRow t;
      t.state = s.name();
      t.cores = s.active_cores();
      t.banks = s.active_banks();
      t.bank_field_mm = geo.bank_field_span_mm(s.active_banks());
      t.core_field_mm = geo.core_field_span_mm(s.active_cores());
      t.longest_link_mm = geo.longest_link_mm(s.active_cores(), s.active_banks());
      t.request_path_mm = geo.request_path_mm(s.active_cores(), s.active_banks());
      t.timing = model.timing(s);
      t.powered_repeaters = model.powered_repeaters(s);
      t.powered_switches = model.powered_switches(s);
      out.timing_rows.push_back(t);
    }
    const cacti::SramBankResult r = cacti::evaluate(bank_cfg);
    out.sram = {r.access_ns, r.read_energy_pj, r.write_energy_pj, r.leakage_mw,
                r.area_mm2};
    return out;
  }

  out.runs = expand_grid(spec, &out.skipped_invalid);
  SweepRunner runner(opt.threads);
  std::vector<SweepRunner::Task> tasks;
  tasks.reserve(out.runs.size());
  for (const ScenarioRun& run : out.runs) {
    const cluster::ClusterConfig cfg = make_run_config(run, opt);
    tasks.push_back([cfg] { return cluster::Cluster(cfg).run(); });
  }
  // Isolated execution: one wedged or timed-out run becomes that run's
  // error string; every other cell still completes and serialises.
  std::vector<IsolatedResult> isolated = runner.run_isolated(tasks);
  out.results.reserve(isolated.size());
  out.errors.reserve(isolated.size());
  for (IsolatedResult& r : isolated) {
    out.results.push_back(std::move(r.result));
    out.errors.push_back(std::move(r.error));
  }
  out.telemetry = runner.telemetry();
  return out;
}

cluster::ClusterConfig make_run_config(const ScenarioRun& run,
                                       const ScenarioOptions& opt) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(run.app), run.fabric, run.state, run.dram,
      opt.scale, opt.seed);
  cfg.scheduler = opt.scheduler;
  cfg.thermal = thermal::ThermalConfig::from_envelope(run.thermal);
  cfg.fault = fault::FaultConfig::from_envelope(run.fault);
  if (run.dram_backend != DramBackendMode::kConstant) {
    cfg.stacked_dram = true;
    cfg.vault_remap.enabled = run.dram_backend == DramBackendMode::kStackedRemap;
  }
  if (opt.timeout_seconds > 0.0) {
    cfg.watchdog.enabled = true;
    cfg.watchdog.wall_deadline_seconds = opt.timeout_seconds;
  }
  cfg.obs.trace = !opt.trace_path.empty();
  cfg.obs.metrics = !opt.metrics_path.empty();
  cfg.obs.phase_timing = opt.phase_timing;
  return cfg;
}

std::string run_metrics_json(const ScenarioRun& run, const cluster::SimResult& r) {
  return run_metrics(run, r).str();
}

std::string scenario_metrics_json(const ScenarioOutcome& outcome) {
  const ScenarioSpec& spec = *outcome.spec;
  JsonObject head;
  head.set("scenario", spec.name)
      .set("figure", spec.figure)
      .set("kind", spec.kind == ScenarioSpec::Kind::kTiming ? "timing" : "sweep")
      .set("scale", outcome.options.scale)
      .set("seed", outcome.options.seed);

  JsonArray runs;
  if (spec.kind == ScenarioSpec::Kind::kTiming) {
    for (const TimingRow& t : outcome.timing_rows) runs.push(timing_metrics(t));
    JsonObject sram;
    sram.set("access_ns", outcome.sram.access_ns)
        .set("read_energy_pj", outcome.sram.read_energy_pj)
        .set("write_energy_pj", outcome.sram.write_energy_pj)
        .set("leakage_mw", outcome.sram.leakage_mw)
        .set("area_mm2", outcome.sram.area_mm2);
    head.set_raw("l2_bank_sram", sram.str());
  } else {
    for (std::size_t i = 0; i < outcome.results.size(); ++i) {
      if (outcome.run_ok(i)) {
        runs.push(run_metrics(outcome.runs[i], outcome.results[i]));
      } else {
        runs.push(run_error_metrics(outcome.runs[i], outcome.errors[i]));
      }
    }
  }

  // Assembled by hand so each run lands on its own line: golden-file diffs
  // stay reviewable run-by-run.
  std::string out = "{\n";
  out += "  \"meta\": " + head.str() + ",\n";
  out += "  \"runs\": " + runs.str(2) + "\n";
  out += "}\n";
  return out;
}

bool write_scenario_report(const std::string& path, const ScenarioOutcome& outcome) {
  JsonObject extra;
  extra.set("scale", outcome.options.scale)
      .set("seed", outcome.options.seed)
      .set("scheduler", cluster::scheduler_name(outcome.options.scheduler))
      .set_raw("metrics", scenario_metrics_json(outcome));
  return write_perf_report(path, outcome.spec->name, outcome.telemetry, extra);
}

int run_and_present(const ScenarioSpec& spec, const ScenarioOptions& opt,
                    std::ostream& os) {
  // Tracing and metrics capture cluster simulations; analytic (timing)
  // tables and self-driving custom bodies have none to instrument.
  if ((!opt.trace_path.empty() || !opt.metrics_path.empty()) &&
      spec.kind != ScenarioSpec::Kind::kSweep) {
    os << "error: --trace/--metrics require a sweep scenario ('" << spec.name
       << "' is "
       << (spec.kind == ScenarioSpec::Kind::kTiming ? "analytic" : "custom")
       << ")\n";
    return 1;
  }
  if (spec.kind == ScenarioSpec::Kind::kCustom) {
    return spec.run_custom ? spec.run_custom(spec, opt, os) : 2;
  }
  const ScenarioOutcome out = run_scenario(spec, opt);
  if (spec.present) {
    spec.present(out, os);
  } else {
    present_generic(out, os);
  }
  if (out.skipped_invalid > 0) {
    os << "note: skipped " << out.skipped_invalid << " invalid grid cells ("
       << invalid_cell_reason() << ")\n";
  }
  // Per-run failures (watchdog timeouts, wedges) were isolated: the other
  // cells completed, but the scenario as a whole did not — report each one
  // and exit non-zero below.
  for (std::size_t i = 0; i < out.errors.size(); ++i) {
    if (out.run_ok(i)) continue;
    const ScenarioRun& run = out.runs[i];
    os << "error: run " << run.app << "/" << fabric_key(run.fabric) << "/"
       << run.state.name() << " failed: " << out.errors[i] << "\n";
  }
  if (spec.kind == ScenarioSpec::Kind::kSweep) {
    const PerfTelemetry& t = out.telemetry;
    os << "[perf] " << t.runs << " runs, " << fmt_fixed(t.wall_seconds, 2)
       << " s wall, " << fmt_fixed(t.cycles_per_second() / 1e6, 2)
       << " M simulated cycles/s, threads=" << t.threads
       << ", scheduler=" << cluster::scheduler_name(opt.scheduler) << "\n";
  }
  if (!opt.json_path.empty()) {
    if (write_scenario_report(opt.json_path, out)) {
      os << "[perf] report written to " << opt.json_path << "\n";
    } else {
      std::cerr << "warning: could not write " << opt.json_path << "\n";
    }
  }
  if (!opt.trace_path.empty()) {
    if (!write_trace_file(opt.trace_path, out)) {
      os << "error: cannot write trace file '" << opt.trace_path << "'\n";
      return 1;
    }
    os << "[obs] trace written to " << opt.trace_path << "\n";
  }
  if (!opt.metrics_path.empty()) {
    if (!write_metrics_file(opt.metrics_path, out)) {
      os << "error: cannot write metrics file '" << opt.metrics_path << "'\n";
      return 1;
    }
    os << "[obs] metrics written to " << opt.metrics_path << "\n";
  }
  return out.error_count() > 0 ? 1 : 0;
}

ScenarioOptions golden_options(const ScenarioSpec& spec) {
  ScenarioOptions opt;
  opt.scale = spec.golden_scale;
  opt.seed = spec.seed;
  opt.threads = 0;
  opt.scheduler = cluster::SchedulerMode::kEventDriven;
  return opt;
}

const char* fabric_key(cluster::Fabric f) {
  switch (f) {
    case cluster::Fabric::kMot: return "mot";
    case cluster::Fabric::kTrueMesh3d: return "mesh3d";
    case cluster::Fabric::kHybridBusMesh: return "busmesh";
    case cluster::Fabric::kHybridBusTree: return "bustree";
  }
  return "?";
}

cluster::Fabric fabric_by_key(const std::string& key) {
  if (key == "mot") return cluster::Fabric::kMot;
  if (key == "mesh3d" || key == "mesh") return cluster::Fabric::kTrueMesh3d;
  if (key == "busmesh") return cluster::Fabric::kHybridBusMesh;
  if (key == "bustree") return cluster::Fabric::kHybridBusTree;
  throw std::invalid_argument("unknown fabric '" + key +
                              "' (want mot|mesh3d|busmesh|bustree)");
}

core::PowerState power_state_by_name(const std::string& name) {
  for (const core::PowerState& s : core::PowerState::paper_states()) {
    if (s.name() == name) return s;
  }
  // Generic "PC<cores>-MB<banks>" on the Table I cluster shape.  %n pins
  // the match to the whole string: "PC4-MB8x" must throw, not parse.
  std::size_t cores = 0, banks = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "PC%zu-MB%zu%n", &cores, &banks, &consumed) == 2 &&
      static_cast<std::size_t>(consumed) == name.size()) {
    return core::PowerState(name, 16, cores, 32, banks);
  }
  // Scale-out shapes: "Full<cores>x<banks>" is a fully powered cluster of
  // that physical shape (e.g. Full256x512) — the bench_scale grid and the
  // scale_smoke scenario run these on the MoT fabric.
  if (std::sscanf(name.c_str(), "Full%zux%zu%n", &cores, &banks, &consumed) == 2 &&
      static_cast<std::size_t>(consumed) == name.size()) {
    return core::PowerState(name, cores, cores, banks, banks);
  }
  throw std::invalid_argument(
      "unknown power state '" + name +
      "' (want Full, PC<cores>-MB<banks>, or Full<cores>x<banks>)");
}

mem::DramPreset dram_preset_by_key(const std::string& key) {
  if (key == "200" || key == "ddr3") return mem::DramPreset::kDdr3_200ns;
  if (key == "63" || key == "wideio") return mem::DramPreset::kWideIo_63ns;
  if (key == "42" || key == "weis3d") return mem::DramPreset::kWeis3d_42ns;
  throw std::invalid_argument("unknown DRAM preset '" + key +
                              "' (want 200|63|42 or ddr3|wideio|weis3d)");
}

const char* dram_backend_key(DramBackendMode m) {
  switch (m) {
    case DramBackendMode::kConstant: return "constant";
    case DramBackendMode::kStacked: return "stacked";
    case DramBackendMode::kStackedRemap: return "stacked_remap";
  }
  return "?";
}

DramBackendMode dram_backend_by_key(const std::string& key) {
  if (key == "constant") return DramBackendMode::kConstant;
  if (key == "stacked") return DramBackendMode::kStacked;
  if (key == "stacked_remap" || key == "remap") {
    return DramBackendMode::kStackedRemap;
  }
  throw std::invalid_argument("unknown DRAM backend '" + key +
                              "' (want constant|stacked|stacked_remap)");
}

}  // namespace mot3d::sim
