#include "sim/scenario_custom.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <string>
#include <vector>

#include "cacti/sram_model.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/arbitration_tree.hpp"
#include "core/mot_interconnect.hpp"
#include "mem/cache.hpp"
#include "noc/noc_interconnect.hpp"
#include "phys/wire.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_registry.hpp"
#include "workload/synthetic_trace.hpp"

namespace mot3d::sim {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ---- Ablation: repeater insertion vs Elmore wire delay ---------------------

int run_ablation_wire(const ScenarioSpec&, const ScenarioOptions&,
                      std::ostream& os) {
  phys::TechnologyParams tech = phys::default_technology();
  os << "### Ablation: repeater insertion on the MoT channel wires\n";

  TextTable tbl("delay of 1/2/4 mm wires vs repeater spacing");
  tbl.set_header({"spacing (mm)", "1mm (ns)", "2mm (ns)", "4mm (ns)",
                  "repeaters on 4mm", "leak/bit on 4mm (uW)"});
  for (double spacing : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    tech.repeater_spacing_mm = spacing;
    const phys::WireModel w(tech);
    tbl.add_row({fmt_fixed(spacing, 2), fmt_fixed(w.repeated_delay_ns(1.0), 3),
                 fmt_fixed(w.repeated_delay_ns(2.0), 3),
                 fmt_fixed(w.repeated_delay_ns(4.0), 3),
                 std::to_string(w.repeater_count(4.0)),
                 fmt_fixed(w.leakage_uw_per_bit(4.0), 2)});
  }
  tbl.print(os);

  tech = phys::default_technology();
  const phys::WireModel w(tech);
  os << "unrepeated 4mm Elmore delay: " << fmt_fixed(w.unrepeated_delay_ns(4.0), 3)
     << " ns; design point (1mm spacing): " << fmt_fixed(w.repeated_delay_ns(4.0), 3)
     << " ns; delay-optimal spacing: " << fmt_fixed(w.optimal_spacing_mm(), 3)
     << " mm\n";
  return 0;
}

// ---- Ablation: MoT contention vs offered load ------------------------------

int run_ablation_pipeline(const ScenarioSpec&, const ScenarioOptions& opt,
                          std::ostream& os) {
  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);

  os << "### Ablation: MoT latency vs offered load (uniform traffic)\n";

  TextTable tbl("request latency (inject -> bank) vs per-core injection rate");
  tbl.set_header({"state", "rate", "mean (cy)", "p95 (cy)", "arb wait/req (cy)"});

  // Each (state, rate) combination drives its own MotInterconnect instance;
  // the combinations share only the immutable timing model, so they fan out
  // across the --threads pool with per-index result rows.
  struct Combo {
    const core::PowerState* state;
    double rate;
  };
  std::vector<Combo> combos;
  for (const core::PowerState& s : core::PowerState::paper_states()) {
    for (double rate : {0.02, 0.05, 0.10, 0.20}) combos.push_back({&s, rate});
  }
  std::vector<std::vector<std::string>> rows(combos.size());

  SweepRunner runner(opt.threads);
  runner.parallel_for(combos.size(), [&](std::size_t i) {
    const core::PowerState& s = *combos[i].state;
    const double rate = combos[i].rate;
    core::MotInterconnect icn(model, s);
    Histogram lat(1, 128);
    icn.set_request_sink([&lat](const MemRequest& r, Cycle t) {
      lat.add(t - r.issue_cycle);
    });
    icn.set_response_sink([](const MemResponse&, Cycle) {});
    // Cores re-inject after delivery with probability `rate` per cycle.
    Rng rng(7);
    const Cycle horizon = 20000;
    std::uint64_t seq = 1;
    for (Cycle t = 0; t < horizon; ++t) {
      for (std::size_t th = 0; th < s.active_cores(); ++th) {
        const CoreId c = s.core_of_thread(th);
        if (rng.next_double() < rate) {
          MemRequest r{.id = seq++, .core = c,
                       .bank = static_cast<BankId>(rng.next_below(s.total_banks())),
                       .addr = 0, .is_write = false, .issue_cycle = t};
          (void)icn.try_inject_request(r, t);  // dropped if core busy
        }
      }
      icn.tick(t);
    }
    const double waits =
        static_cast<double>(icn.stats().arbitration_wait_cycles) /
        static_cast<double>(std::max<std::uint64_t>(1, icn.stats().requests_delivered));
    rows[i] = {s.name(), fmt_fixed(rate, 2), fmt_fixed(lat.mean(), 1),
               std::to_string(lat.quantile(0.95)), fmt_fixed(waits, 2)};
  });
  for (const auto& row : rows) tbl.add_row(row);
  tbl.print(os);
  return 0;
}

// ---- Microbenchmarks + scheduler speedup -----------------------------------

namespace {

template <typename Fn>
void run_micro(TextTable& tbl, const std::string& name, std::uint64_t iters,
               Fn&& op) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) op(i);
  const double wall = seconds_since(t0);
  tbl.add_row({name, std::to_string(iters), fmt_fixed(wall * 1e9 / iters, 1),
               fmt_fixed(iters / wall / 1e6, 2)});
}

void run_microbenchmarks(std::ostream& os) {
  os << "### Microbenchmarks: simulator hot paths\n";
  TextTable tbl("self-timed; single thread");
  tbl.set_header({"benchmark", "iterations", "ns/op", "Mops/s"});

  {
    mem::Cache cache(mem::CacheConfig{.capacity_bytes = 64 * 1024,
                                      .line_bytes = 32,
                                      .associativity = 8,
                                      .index_shift = 0});
    for (Addr a = 0; a < 64 * 1024; a += 32) cache.insert(a, false);
    Rng rng(1);
    std::uint64_t hits = 0;
    run_micro(tbl, "cache lookup (hit)", 2'000'000, [&](std::uint64_t) {
      hits += cache.lookup(rng.next_below(64 * 1024), false).hit ? 1 : 0;
    });
    if (hits == 0) os << "";  // defeat dead-code elimination
  }

  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);

  {
    core::MotInterconnect icn(model, core::PowerState::full());
    icn.set_request_sink([](const MemRequest&, Cycle) {});
    icn.set_response_sink([](const MemResponse&, Cycle) {});
    Rng rng(2);
    Cycle t = 0;
    std::uint64_t id = 1;
    run_micro(tbl, "MoT tick (uniform load)", 500'000, [&](std::uint64_t) {
      for (CoreId c = 0; c < 16; ++c) {
        if (rng.next_double() < 0.1) {
          MemRequest r{.id = id++, .core = c,
                       .bank = static_cast<BankId>(rng.next_below(32)),
                       .addr = 0, .is_write = false, .issue_cycle = t};
          (void)icn.try_inject_request(r, t);
        }
      }
      icn.tick(t++);
    });
  }

  {
    noc::NocConfig cfg;
    const power::InterconnectPowerModel pm{phys::WireModel(tech)};
    noc::NocInterconnect icn(noc::NocTopology::kTrueMesh3d, cfg, pm);
    icn.set_request_sink([](const MemRequest&, Cycle) {});
    icn.set_response_sink([](const MemResponse&, Cycle) {});
    Rng rng(3);
    Cycle t = 0;
    std::uint64_t id = 1;
    run_micro(tbl, "NoC tick (true 3-D mesh)", 200'000, [&](std::uint64_t) {
      for (CoreId c = 0; c < 16; ++c) {
        if (rng.next_double() < 0.05) {
          MemRequest r{.id = id++, .core = c,
                       .bank = static_cast<BankId>(rng.next_below(32)),
                       .addr = 0, .is_write = false, .issue_cycle = t};
          (void)icn.try_inject_request(r, t);
        }
      }
      icn.tick(t++);
    });
  }

  {
    const workload::AppProfile& app = workload::profile_by_name("fft");
    workload::Workload w(app, 16, 1.0, 5);
    auto trace = w.make_trace(3);
    std::uint64_t sink = 0;
    run_micro(tbl, "trace generation", 2'000'000, [&](std::uint64_t) {
      sink += static_cast<std::uint64_t>(trace->next().kind);
    });
    if (sink == 0) os << "";
  }

  {
    core::ArbitrationTree at(16);
    at.configure(core::PowerState::full());
    std::vector<bool> req(16, true);
    std::uint64_t sink = 0;
    run_micro(tbl, "arbitration tree (16)", 2'000'000, [&](std::uint64_t) {
      sink += at.arbitrate(req).value_or(0);
    });
    if (sink == 0) os << "";
  }

  tbl.print(os);
}

}  // namespace

int run_micro_sim(const ScenarioSpec& spec, const ScenarioOptions& opt,
                  std::ostream& os) {
  run_microbenchmarks(os);

  // The headline perf experiment: the registered Fig. 6 sweep run twice —
  // dense-tick serial baseline vs event-driven scheduler — with a
  // differential check that both schedulers produce identical modeled
  // results, exactly as the golden suite demands.
  const ScenarioSpec* fig6 = find_scenario("fig6b_exec_time");
  if (fig6 == nullptr) {
    os << "error: fig6b_exec_time is not registered\n";
    return 2;
  }
  os << "\n### Scheduler speedup: Fig. 6 sweep, dense serial vs event-driven"
     << "  (scale=" << opt.scale << ", seed=" << opt.seed << ")\n";

  // Both speedup legs run serial so the recorded scheduler gain is
  // machine-independent; the thread pool's additional parallel gain is
  // measured (and reported) separately below.
  ScenarioOptions dense_opt = opt;
  dense_opt.scheduler = cluster::SchedulerMode::kDenseTick;
  dense_opt.threads = 1;
  dense_opt.json_path.clear();
  const ScenarioOutcome dense = run_scenario(*fig6, dense_opt);

  ScenarioOptions event_opt = dense_opt;
  event_opt.scheduler = cluster::SchedulerMode::kEventDriven;
  const ScenarioOutcome event = run_scenario(*fig6, event_opt);

  bool identical = dense.results.size() == event.results.size();
  for (std::size_t i = 0; identical && i < dense.results.size(); ++i) {
    const cluster::SimResult& d = dense.results[i];
    const cluster::SimResult& e = event.results[i];
    if (d.cycles != e.cycles || d.instructions != e.instructions ||
        d.energy.edp_energy_pj() != e.energy.edp_energy_pj()) {
      identical = false;
      os << "MISMATCH at " << d.app << "/" << d.fabric << ": dense " << d.cycles
         << " vs event " << e.cycles << " cycles\n";
    }
  }
  // The strongest check is the canonical golden serialisation itself.
  if (identical &&
      scenario_metrics_json(dense) != scenario_metrics_json(event)) {
    identical = false;
    os << "MISMATCH: canonical metrics JSON differs between schedulers\n";
  }

  const double dense_wall = dense.telemetry.wall_seconds;
  const double event_wall = event.telemetry.wall_seconds;
  const double speedup = event_wall > 0.0 ? dense_wall / event_wall : 0.0;

  TextTable tbl("Fig. 6 sweep (" + std::to_string(dense.results.size()) + " runs)");
  tbl.set_header({"configuration", "wall (s)", "Mcycles/s"});
  tbl.add_row({"dense tick, serial", fmt_fixed(dense_wall, 2),
               fmt_fixed(dense.telemetry.cycles_per_second() / 1e6, 2)});
  tbl.add_row({"event-driven, serial", fmt_fixed(event_wall, 2),
               fmt_fixed(event.telemetry.cycles_per_second() / 1e6, 2)});

  JsonObject extra;
  extra.set("scale", opt.scale)
      .set("seed", opt.seed)
      .set("dense_wall_seconds", dense_wall)
      .set("event_wall_seconds", event_wall)
      .set("speedup", speedup)
      .set("results_identical", identical);

  // Thread-pool gain on top of the scheduler, when a pool is available.
  PerfTelemetry report_telemetry = event.telemetry;
  const unsigned pool = SweepRunner::resolve_threads(opt.threads);
  if (pool > 1) {
    ScenarioOptions parallel_opt = opt;
    parallel_opt.scheduler = cluster::SchedulerMode::kEventDriven;
    parallel_opt.json_path.clear();
    const ScenarioOutcome parallel = run_scenario(*fig6, parallel_opt);
    const double parallel_wall = parallel.telemetry.wall_seconds;
    tbl.add_row({"event-driven, threads=" + std::to_string(pool),
                 fmt_fixed(parallel_wall, 2),
                 fmt_fixed(parallel.telemetry.cycles_per_second() / 1e6, 2)});
    extra.set("parallel_threads", pool)
        .set("parallel_wall_seconds", parallel_wall)
        .set("combined_speedup",
             parallel_wall > 0.0 ? dense_wall / parallel_wall : 0.0);
  }
  tbl.print(os);

  os << "modeled results identical: " << (identical ? "PASS" : "FAIL") << "\n"
     << "scheduler wall-clock speedup (serial vs serial): " << fmt_fixed(speedup, 2)
     << "x (target >= 3x: " << (speedup >= 3.0 ? "PASS" : "CHECK") << ")\n";

  if (!opt.json_path.empty()) {
    if (write_perf_report(opt.json_path, spec.name, report_telemetry, extra)) {
      os << "[perf] report written to " << opt.json_path << "\n";
    }
  }
  return identical ? 0 : 1;
}

}  // namespace mot3d::sim
