// Parallel experiment runner: executes independent cluster simulations
// across a worker-thread pool with deterministic result ordering.
//
// Every paper figure is a sweep over (app x fabric x power state x DRAM
// preset) configurations whose runs share no mutable state — each task
// builds and owns its Cluster.  The runner hands tasks to workers through
// an atomic cursor and stores each result at the task's own index, so the
// returned vector (and every table or JSON byte derived from it) is
// byte-identical at any thread count, including 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace mot3d::sim {

/// Wall-clock and simulated-throughput telemetry accumulated across every
/// run() call on a SweepRunner — the numbers behind the perf trajectory
/// (BENCH_*.json).
struct PerfTelemetry {
  unsigned threads = 1;
  std::uint64_t runs = 0;               ///< completed simulations
  std::uint64_t simulated_cycles = 0;   ///< sum of SimResult::cycles
  double wall_seconds = 0.0;

  double cycles_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(simulated_cycles) / wall_seconds;
  }
};

/// One task's outcome under SweepRunner::run_isolated: either a result or
/// the message of the exception that killed that task alone.
struct IsolatedResult {
  cluster::SimResult result;
  std::string error;  ///< empty on success
  bool ok() const { return error.empty(); }
};

class SweepRunner {
 public:
  using Task = std::function<cluster::SimResult()>;

  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Run every task, concurrently up to the thread budget, returning
  /// results in task order.  A throwing task aborts the sweep: no new
  /// tasks start after the failure (in-flight tasks finish) and the
  /// first exception by task index is rethrown after the pool drains.
  std::vector<cluster::SimResult> run(const std::vector<Task>& tasks);

  /// Run every task with per-task fault isolation: a throwing task records
  /// its exception message at its own index and never aborts its peers —
  /// all n tasks always execute, and the returned vector is in task order
  /// (byte-identical at any thread count).  Use this for sweeps that must
  /// survive individual wedged or failed simulations (fault-injection
  /// grids, watchdog timeouts).
  std::vector<IsolatedResult> run_isolated(const std::vector<Task>& tasks);

  /// Deterministically-indexed generic parallel loop: fn(i) for i in
  /// [0, n).  fn must only write state owned by index i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  const PerfTelemetry& telemetry() const { return telemetry_; }

  static unsigned resolve_threads(unsigned requested);

 private:
  unsigned threads_;
  PerfTelemetry telemetry_;
};

}  // namespace mot3d::sim
