// Registry of the paper's experiments as declarative ScenarioSpecs: one
// entry per figure/table (plus the custom microbenchmark/ablation bodies).
// Every bench binary is a thin wrapper over one of these entries, the
// `mot3d_experiments` CLI lists/runs them by name, and the golden suite
// (tests/test_golden_figures.cpp) pins the metrics JSON of every entry
// with `has_golden`.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace mot3d::sim {

/// All registered scenarios, in presentation order (Table I first, then
/// the figures, then the ablations/microbenchmarks).
const std::vector<ScenarioSpec>& all_scenarios();

/// Lookup by registry name; nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

/// Names of every scenario that pins a golden baseline.
std::vector<std::string> golden_scenario_names();

}  // namespace mot3d::sim
