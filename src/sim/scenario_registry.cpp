#include "sim/scenario_registry.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/table.hpp"
#include "sim/scenario_custom.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::sim {

namespace {

double average(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

double max_of(const std::vector<double>& v) {
  double m = v.empty() ? 0.0 : v[0];
  for (double x : v) m = std::max(m, x);
  return m;
}

/// "reduction" convention used throughout the paper: 1 - new/old.
double reduction(double baseline, double value) {
  return baseline == 0.0 ? 0.0 : 1.0 - value / baseline;
}

void print_header(const ScenarioOutcome& out, const std::string& what,
                  std::ostream& os) {
  os << "\n### " << what << "  (scale=" << out.options.scale
     << ", seed=" << out.options.seed << ")\n";
}

const std::vector<cluster::Fabric> kFig6Fabrics = {
    cluster::Fabric::kTrueMesh3d, cluster::Fabric::kHybridBusMesh,
    cluster::Fabric::kHybridBusTree, cluster::Fabric::kMot};

// ---- Fig. 5 / Table I presenters (timing scenarios) ------------------------

void present_fig5(const ScenarioOutcome& out, std::ostream& os) {
  const phys::FloorplanParams fp;
  os << "### Fig. 5: wire lengths per power state (die " << fp.die_x_mm << " x "
     << fp.die_y_mm << " mm, tier gap " << fp.tier_gap_mm * 1000.0 << " um)\n";

  TextTable tbl("active spans, worst-case link and path delay per state");
  tbl.set_header({"state", "bank field (mm)", "core field (mm)",
                  "longest link (mm)", "request path (mm)", "request delay (ns)",
                  "powered repeaters", "powered switches"});
  for (const TimingRow& t : out.timing_rows) {
    tbl.add_row({t.state, fmt_fixed(t.bank_field_mm, 2),
                 fmt_fixed(t.core_field_mm, 2), fmt_fixed(t.longest_link_mm, 2),
                 fmt_fixed(t.request_path_mm, 2),
                 fmt_fixed(t.timing.request_delay_ns, 2),
                 std::to_string(t.powered_repeaters),
                 std::to_string(t.powered_switches)});
  }
  tbl.print(os);

  const TimingRow* full = nullptr;
  const TimingRow* gated = nullptr;
  for (const TimingRow& t : out.timing_rows) {
    if (t.state == "Full") full = &t;
    if (t.state == "PC4-MB8") gated = &t;
  }
  if (full != nullptr && gated != nullptr && gated->longest_link_mm > 0.0) {
    os << "worst-case wire shrink Full -> PC4-MB8: "
       << fmt_fixed(full->longest_link_mm, 2) << " mm -> "
       << fmt_fixed(gated->longest_link_mm, 2) << " mm ("
       << fmt_fixed(full->longest_link_mm / gated->longest_link_mm, 1) << "x)\n";
  }
}

void present_table1(const ScenarioOutcome& out, std::ostream& os) {
  os << "### Table I — architecture configurations\n";

  TextTable core_tbl("Core / L1 / DRAM");
  core_tbl.set_header({"Feature", "Description"});
  core_tbl.add_row({"Core", "1GHz, 4 - 16 cores, in-order execution (trace-driven)"});
  core_tbl.add_row({"L1 I/D cache",
                    "Private, 4KB per core, 32B line, 4-way, LRU, 1 cycle"});
  core_tbl.add_row({"L2 cache", "Shared, 32B line, 8-way, 64KB per bank"});
  for (auto preset : {mem::DramPreset::kDdr3_200ns, mem::DramPreset::kWideIo_63ns,
                      mem::DramPreset::kWeis3d_42ns}) {
    core_tbl.add_row({"DRAM", std::string(mem::dram_preset_name(preset)) +
                                  ", one controller, 2Gb, 4KB page"});
  }
  core_tbl.print(os);

  TextTable l2_tbl("L2 latency per power state (derived from the MoT timing model)");
  l2_tbl.set_header({"Power state", "Cores", "Banks", "L2 latency (cycles)",
                     "Paper (cycles)", "req+bank+resp"});
  const char* paper[] = {"12", "9", "9", "7"};
  std::size_t i = 0;
  for (const TimingRow& t : out.timing_rows) {
    l2_tbl.add_row({t.state, std::to_string(t.cores), std::to_string(t.banks),
                    std::to_string(t.timing.l2_round_trip()),
                    i < 4 ? paper[i] : "-",
                    std::to_string(t.timing.request_cycles) + "+" +
                        std::to_string(t.timing.bank_cycles) + "+" +
                        std::to_string(t.timing.response_cycles)});
    ++i;
  }
  l2_tbl.print(os);

  TextTable bank_tbl("L2 bank (CACTI-lite, 45nm)");
  bank_tbl.set_header({"Metric", "Value"});
  bank_tbl.add_row({"access time", fmt_fixed(out.sram.access_ns, 3) + " ns"});
  bank_tbl.add_row({"read energy", fmt_fixed(out.sram.read_energy_pj, 1) + " pJ"});
  bank_tbl.add_row({"write energy", fmt_fixed(out.sram.write_energy_pj, 1) + " pJ"});
  bank_tbl.add_row({"leakage", fmt_fixed(out.sram.leakage_mw, 2) + " mW"});
  bank_tbl.add_row({"area", fmt_fixed(out.sram.area_mm2, 3) + " mm^2"});
  bank_tbl.print(os);
}

// ---- Fig. 6 presenters -----------------------------------------------------

void present_fig6a(const ScenarioOutcome& out, std::ostream& os) {
  print_header(out, "Fig. 6(a): L2 cache access latency per interconnect", os);
  TextTable tbl("L2 access latency in cycles (L2-hit mean / overall mean / p95)");
  std::vector<std::string> header = {"benchmark"};
  for (auto f : kFig6Fabrics) header.push_back(cluster::fabric_name(f));
  tbl.set_header(header);

  std::vector<std::vector<double>> hit_means(kFig6Fabrics.size());
  for (const std::string& app : out.spec->apps) {
    std::vector<std::string> row = {app};
    for (std::size_t fi = 0; fi < kFig6Fabrics.size(); ++fi) {
      const cluster::SimResult& r = out.result(
          app, kFig6Fabrics[fi], "Full", mem::DramPreset::kDdr3_200ns);
      hit_means[fi].push_back(r.l2_hit_latency.mean());
      row.push_back(fmt_fixed(r.l2_hit_latency.mean(), 1) + " / " +
                    fmt_fixed(r.l2_latency.mean(), 1) + " / " +
                    std::to_string(r.l2_latency.quantile(0.95)));
    }
    tbl.add_row(row);
  }
  std::vector<std::string> avg_row = {"AVERAGE (hit)"};
  for (auto& v : hit_means) avg_row.push_back(fmt_fixed(average(v), 1));
  tbl.add_row(avg_row);
  tbl.print(os);

  os << "shape check: MoT < Bus-Mesh < True Mesh < Bus-Tree on average: "
     << (average(hit_means[3]) < average(hit_means[1]) &&
                 average(hit_means[1]) < average(hit_means[0]) &&
                 average(hit_means[0]) < average(hit_means[2])
             ? "PASS"
             : "CHECK")
     << "\n";
}

void present_fig6b(const ScenarioOutcome& out, std::ostream& os) {
  print_header(out, "Fig. 6(b): execution time per interconnect (DRAM 200 ns)", os);
  TextTable tbl("execution time in kilo-cycles (normalised to True 3-D Mesh)");
  std::vector<std::string> header = {"benchmark"};
  for (auto f : kFig6Fabrics) header.push_back(cluster::fabric_name(f));
  tbl.set_header(header);

  // reductions[i] = per-app reduction of MoT vs fabric i (i in 0..2).
  std::vector<std::vector<double>> reductions(3);
  for (const std::string& app : out.spec->apps) {
    std::vector<double> cycles;
    for (cluster::Fabric f : kFig6Fabrics) {
      cycles.push_back(static_cast<double>(
          out.result(app, f, "Full", mem::DramPreset::kDdr3_200ns).cycles));
    }
    std::vector<std::string> row = {app};
    for (double c : cycles) {
      row.push_back(fmt_fixed(c / 1000.0, 0) + " (" + fmt_fixed(c / cycles[0], 2) +
                    "x)");
    }
    tbl.add_row(row);
    for (int i = 0; i < 3; ++i) reductions[i].push_back(reduction(cycles[i], cycles[3]));
  }
  tbl.print(os);

  const char* base_names[] = {"True 3-D Mesh", "3-D Hybrid Bus-Mesh",
                              "3-D Hybrid Bus-Tree"};
  const double paper[] = {0.1301, 0.1116, 0.1334};
  TextTable s("MoT execution-time reduction vs packet-switched baselines");
  s.set_header({"baseline", "measured avg", "paper avg"});
  for (int i = 0; i < 3; ++i) {
    s.add_row({base_names[i], fmt_percent(average(reductions[i])),
               fmt_percent(paper[i])});
  }
  s.print(os);
}

// ---- Fig. 7 / Fig. 8 presenters --------------------------------------------

/// Shared EDP table for Fig. 7(a) / Fig. 8(a,b): 8 apps x 4 power states on
/// the MoT cluster at one DRAM preset, normalised to Full.
struct EdpSeries {
  std::map<std::string, std::map<std::string, double>> norm_edp;  ///< [state][app]
  std::map<std::string, std::map<std::string, double>> norm_time;
};

EdpSeries present_edp_table(const ScenarioOutcome& out, std::ostream& os) {
  const ScenarioSpec& spec = *out.spec;
  const mem::DramPreset preset = spec.dram_presets.at(0);
  print_header(out,
               spec.figure + ": EDP per power state, DRAM " +
                   std::to_string(static_cast<int>(mem::dram_latency_ns(preset))) +
                   " ns",
               os);

  EdpSeries series;
  TextTable tbl("EDP normalised to Full connection (exec time normalised in parens)");
  std::vector<std::string> header = {"benchmark"};
  for (const auto& s : spec.power_states) header.push_back(s.name());
  tbl.set_header(header);

  for (const std::string& app : spec.apps) {
    double base_edp = 0.0, base_cycles = 0.0;
    std::vector<std::string> row = {app};
    for (const core::PowerState& s : spec.power_states) {
      const cluster::SimResult& r =
          out.result(app, cluster::Fabric::kMot, s.name(), preset);
      if (s.name() == "Full") {
        base_edp = r.edp_pj_s;
        base_cycles = static_cast<double>(r.cycles);
      }
      const double ne = r.edp_pj_s / base_edp;
      const double nt = static_cast<double>(r.cycles) / base_cycles;
      series.norm_edp[s.name()][app] = ne;
      series.norm_time[s.name()][app] = nt;
      row.push_back(fmt_fixed(ne, 2) + " (" + fmt_fixed(nt, 2) + ")");
    }
    tbl.add_row(row);
  }
  tbl.print(os);

  // Which apps gain EDP from bank gating at this DRAM speed? (Fig. 8's
  // question: the list must grow as DRAM gets faster.)
  os << "apps with EDP reduced by PC16-MB8:";
  int winners = 0;
  for (const std::string& app : spec.apps) {
    if (series.norm_edp["PC16-MB8"][app] < 1.0) {
      os << " " << app;
      ++winners;
    }
  }
  os << "  (" << winners << "/" << spec.apps.size() << ")\n";
  return series;
}

void present_fig7a(const ScenarioOutcome& out, std::ostream& os) {
  const EdpSeries s = present_edp_table(out, os);

  const std::vector<std::string> limited = {"cholesky", "fft", "volrend", "raytrace"};
  const std::vector<std::string> small_ws = {"fft", "fmm", "volrend", "raytrace",
                                             "water_nsquared"};
  auto redux = [&](const char* state, const std::vector<std::string>& apps) {
    std::vector<double> r;
    for (const auto& a : apps) r.push_back(1.0 - s.norm_edp.at(state).at(a));
    return r;
  };
  const auto pc4mb32 = redux("PC4-MB32", limited);
  const auto pc4mb8 = redux("PC4-MB8", limited);
  const auto pc16mb8 = redux("PC16-MB8", small_ws);

  TextTable t("Fig. 7(a) paper-claim comparison (EDP reduction vs Full)");
  t.set_header({"claim", "measured avg", "measured max", "paper avg", "paper max"});
  t.add_row({"PC4-MB32 on cholesky/fft/volrend/raytrace",
             fmt_percent(average(pc4mb32)), fmt_percent(max_of(pc4mb32)), "44%",
             "66%"});
  t.add_row({"PC4-MB8 on cholesky/fft/volrend/raytrace",
             fmt_percent(average(pc4mb8)), fmt_percent(max_of(pc4mb8)), "52%",
             "77%"});
  t.add_row({"PC16-MB8 on fft/fmm/volrend/raytrace/water",
             fmt_percent(average(pc16mb8)), fmt_percent(max_of(pc16mb8)), "13%",
             "18%"});
  t.print(os);
}

void present_fig7b(const ScenarioOutcome& out, std::ostream& os) {
  const ScenarioSpec& spec = *out.spec;
  print_header(out, "Fig. 7(b): execution time per power state (DRAM 200 ns)", os);
  TextTable tbl("execution time in kilo-cycles (normalised to Full in parens)");
  std::vector<std::string> header = {"benchmark"};
  for (const auto& s : spec.power_states) header.push_back(s.name());
  tbl.set_header(header);

  std::map<std::string, std::map<std::string, double>> cycles;  ///< [state][app]
  for (const std::string& app : spec.apps) {
    std::vector<std::string> row = {app};
    double base = 0.0;
    for (const core::PowerState& s : spec.power_states) {
      const cluster::SimResult& r = out.result(app, cluster::Fabric::kMot,
                                               s.name(), spec.dram_presets[0]);
      cycles[s.name()][app] = static_cast<double>(r.cycles);
      if (s.name() == "Full") base = static_cast<double>(r.cycles);
      row.push_back(fmt_fixed(static_cast<double>(r.cycles) / 1000.0, 0) + " (" +
                    fmt_fixed(static_cast<double>(r.cycles) / base, 2) + ")");
    }
    tbl.add_row(row);
  }
  tbl.print(os);

  const std::vector<std::string> limited = {"cholesky", "fft", "volrend", "raytrace"};
  const std::vector<std::string> scalable = {"fmm", "radix", "ocean_contiguous",
                                             "water_nsquared"};
  const std::vector<std::string> small_ws = {"fft", "fmm", "volrend", "raytrace",
                                             "water_nsquared"};
  const std::vector<std::string> large_ws = {"cholesky", "radix", "ocean_contiguous"};

  // 4 -> 16 core speedup: compare PC4-MB32 (4 cores) against Full (16).
  auto core_gain = [&](const std::vector<std::string>& apps) {
    std::vector<double> g;
    for (const auto& a : apps) {
      g.push_back(reduction(cycles["PC4-MB32"][a], cycles["Full"][a]));
    }
    return g;
  };
  // PC16-MB8 execution-time increase vs Full.
  auto mb8_cost = [&](const std::vector<std::string>& apps) {
    std::vector<double> g;
    for (const auto& a : apps) {
      g.push_back(cycles["PC16-MB8"][a] / cycles["Full"][a] - 1.0);
    }
    return g;
  };

  const auto lim = core_gain(limited);
  const auto sca = core_gain(scalable);
  const auto cost_small = mb8_cost(small_ws);
  const auto cost_large = mb8_cost(large_ws);

  TextTable s("Fig. 7(b) paper-claim comparison");
  s.set_header({"claim", "measured avg", "measured max", "paper avg", "paper max"});
  s.add_row({"4->16 cores gain, limited apps", fmt_percent(average(lim)),
             fmt_percent(max_of(lim)), "19%", "33%"});
  s.add_row({"4->16 cores gain, scalable apps", fmt_percent(average(sca)),
             fmt_percent(max_of(sca)), "64%", "69%"});
  s.add_row({"PC16-MB8 exec increase, small-WS apps", fmt_percent(average(cost_small)),
             fmt_percent(max_of(cost_small)), "4.7%", "8.6%"});
  s.add_row({"PC16-MB8 exec increase, cholesky/radix/ocean",
             fmt_percent(average(cost_large)), fmt_percent(max_of(cost_large)), "24%",
             "31%"});
  s.print(os);
}

// ---- thermal envelope presenter --------------------------------------------

void present_thermal(const ScenarioOutcome& out, std::ostream& os) {
  print_header(out, "Thermal envelopes: 3-D stack temperature, throttling, "
                    "leakage feedback", os);
  TextTable tbl("per-run thermal trajectory (temperatures in °C)");
  tbl.set_header({"app", "fabric", "amb", "ceil", "peak core/L2a/L2b", "steady",
                  "throttles (bank+hold)", "held kcyc", "leak delta", "kcycles"});
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const ScenarioRun& run = out.runs[i];
    const cluster::SimResult& r = out.results[i];
    const thermal::ThermalSummary& t = r.thermal;
    const double leak_delta_pct =
        t.leakage_ref_pj == 0.0 ? 0.0
                                : 100.0 * t.leakage_delta_pj() / t.leakage_ref_pj;
    tbl.add_row({run.app, cluster::fabric_name(run.fabric),
                 fmt_fixed(t.ambient_c, 0), fmt_fixed(t.ceiling_c, 0),
                 fmt_fixed(t.peak_layer_c.size() > 0 ? t.peak_layer_c[0] : 0.0, 1) +
                     " / " +
                     fmt_fixed(t.peak_layer_c.size() > 1 ? t.peak_layer_c[1] : 0.0, 1) +
                     " / " +
                     fmt_fixed(t.peak_layer_c.size() > 2 ? t.peak_layer_c[2] : 0.0, 1),
                 fmt_fixed(t.steady_peak_c, 1),
                 std::to_string(t.throttle_events) + " (" +
                     std::to_string(t.bank_gate_events) + "+" +
                     std::to_string(t.core_hold_events) + ")",
                 fmt_fixed(static_cast<double>(t.throttled_cycles) / 1000.0, 0),
                 fmt_fixed(leak_delta_pct, 1) + "%",
                 fmt_fixed(static_cast<double>(r.cycles) / 1000.0, 0)});
  }
  tbl.print(os);

  // The stacked-cache signature: upper tiers cool through the core die,
  // so the hottest layer must be a stacked tier, not the logic die.
  bool stacked_hotter = true;
  std::uint64_t total_throttles = 0;
  for (const cluster::SimResult& r : out.results) {
    const thermal::ThermalSummary& t = r.thermal;
    if (t.peak_layer_c.size() == 3 &&
        std::max(t.peak_layer_c[1], t.peak_layer_c[2]) + 1e-9 < t.peak_layer_c[0]) {
      stacked_hotter = false;
    }
    total_throttles += t.throttle_events;
  }
  os << "shape check: stacked L2 tiers run at/above the core die: "
     << (stacked_hotter ? "PASS" : "CHECK") << "\n";
  os << "governor: " << total_throttles
     << " throttle events across the envelope grid (hotter ambient / lower "
        "ceiling must throttle more)\n";
}

// ---- coherence sharing presenter -------------------------------------------

void present_coherence(const ScenarioOutcome& out, std::ostream& os) {
  print_header(out, "Coherence: sharing pattern x fabric x power state", os);
  TextTable tbl("directory-MESI traffic per run");
  tbl.set_header({"workload", "pattern", "fabric", "state", "invalidations",
                  "upgrades", "forwards", "sharing misses", "dir peak", "L2 lat",
                  "kcycles"});
  std::uint64_t pc_invals = 0, rm_invals = 0;
  std::uint64_t pc_runs = 0, rm_runs = 0;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const ScenarioRun& run = out.runs[i];
    const cluster::SimResult& r = out.results[i];
    const coherence::CoherenceStats& c = r.coherence;
    tbl.add_row({run.app,
                 workload::sharing_pattern_name(
                     workload::profile_by_name(run.app).sharing),
                 cluster::fabric_name(run.fabric), run.state.name(),
                 std::to_string(c.invalidations), std::to_string(c.upgrades),
                 std::to_string(c.data_forwards),
                 std::to_string(c.sharing_misses),
                 std::to_string(c.dir_peak_entries),
                 fmt_fixed(r.l2_latency.mean(), 1),
                 fmt_fixed(static_cast<double>(r.cycles) / 1000.0, 0)});
    if (run.app == "producer_consumer") {
      pc_invals += c.invalidations;
      ++pc_runs;
    }
    if (run.app == "read_mostly") {
      rm_invals += c.invalidations;
      ++rm_runs;
    }
  }
  tbl.print(os);

  // Shape checks: communication-heavy patterns must invalidate; the
  // read-mostly table must invalidate less than the producer-consumer
  // ping-pong on the same grid.
  os << "shape check: producer-consumer generates invalidations: "
     << (pc_runs > 0 && pc_invals > 0 ? "PASS" : "CHECK") << "\n";
  os << "shape check: read-mostly invalidates less than producer-consumer: "
     << (pc_runs > 0 && rm_runs > 0 &&
                 rm_invals * pc_runs < pc_invals * rm_runs
             ? "PASS"
             : "CHECK")
     << "\n";
}

// ---- fault-resilience presenter --------------------------------------------

void present_fault(const ScenarioOutcome& out, std::ostream& os) {
  print_header(out, "Fault resilience: graceful degradation vs hard failure", os);
  TextTable tbl("per-run fault trajectory");
  tbl.set_header({"app", "fabric", "state", "degr/hard rate", "seed", "outcome",
                  "inj", "recov", "unrec", "gates", "degr kcyc", "repair pJ",
                  "kcycles"});
  bool mot_full_never_fails = true;
  bool mesh_hard_always_fails = true;
  bool any_mot_gate = false;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const ScenarioRun& run = out.runs[i];
    if (!out.run_ok(i)) {
      tbl.add_row({run.app, cluster::fabric_name(run.fabric), run.state.name(),
                   fmt_fixed(run.fault.tsv_fault_rate, 1) + "/" +
                       fmt_fixed(run.fault.bank_fault_rate, 1),
                   std::to_string(run.fault.seed), "ERROR", "-", "-", "-", "-",
                   "-", "-", "-"});
      continue;
    }
    const cluster::SimResult& r = out.results[i];
    const fault::FaultSummary& f = r.fault;
    tbl.add_row({run.app, cluster::fabric_name(run.fabric), run.state.name(),
                 fmt_fixed(run.fault.tsv_fault_rate, 1) + "/" +
                     fmt_fixed(run.fault.bank_fault_rate, 1),
                 std::to_string(run.fault.seed), f.outcome,
                 std::to_string(f.injected), std::to_string(f.recovered),
                 std::to_string(f.unrecoverable),
                 std::to_string(f.bank_gate_events),
                 fmt_fixed(static_cast<double>(f.degraded_cycles) / 1000.0, 1),
                 fmt_fixed(f.repair_energy_pj, 1),
                 fmt_fixed(static_cast<double>(r.cycles) / 1000.0, 0)});
    const bool is_mot = run.fabric == cluster::Fabric::kMot;
    if (is_mot && run.state.name() == "Full" && f.outcome == "failed") {
      mot_full_never_fails = false;
    }
    if (!is_mot && run.fault.bank_fault_rate > 0.0 && f.outcome != "failed") {
      mesh_hard_always_fails = false;
    }
    if (is_mot && f.bank_gate_events > 0) any_mot_gate = true;
  }
  tbl.print(os);

  // The research point: the MoT's reconfigurable routing absorbs hard bank
  // faults by gating around them; static dimension-order packet fabrics
  // cannot and must fail — structurally, not by wedging.
  os << "shape check: MoT (Full) absorbs every hard fault: "
     << (mot_full_never_fails ? "PASS" : "CHECK") << "\n";
  os << "shape check: packet mesh fails on hard faults: "
     << (mesh_hard_always_fails ? "PASS" : "CHECK") << "\n";
  os << "shape check: fault-triggered bank gating occurred on the MoT: "
     << (any_mot_gate ? "PASS" : "CHECK") << "\n";
}

// ---- stacked-DRAM presenter ------------------------------------------------

void present_stacked(const ScenarioOutcome& out, std::ostream& os) {
  print_header(out, "Stacked DRAM: vault-parallel 3-D backend vs the "
                    "constant-latency controller", os);
  TextTable tbl("per-run DRAM backend trajectory");
  tbl.set_header({"app", "backend", "row hit rate", "refreshes", "remaps",
                  "peak vault °C", "dram waits kcyc", "kcycles", "EDP (pJ s)"});
  bool any_row_hits = false;
  bool any_refresh = false;
  bool remap_cooler = true;
  // peak vault temperature per (app): remap-on vs remap-off stacked runs.
  std::uint64_t stacked_runs = 0;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const ScenarioRun& run = out.runs[i];
    if (!out.run_ok(i)) {
      tbl.add_row({run.app, dram_backend_key(run.dram_backend), "ERROR", "-",
                   "-", "-", "-", "-", "-"});
      continue;
    }
    const cluster::SimResult& r = out.results[i];
    const bool stacked = r.dram3d.enabled;
    const std::uint64_t accesses = r.dram3d.row_hits + r.dram3d.row_misses;
    tbl.add_row(
        {run.app, dram_backend_key(run.dram_backend),
         stacked && accesses > 0
             ? fmt_fixed(static_cast<double>(r.dram3d.row_hits) /
                             static_cast<double>(accesses),
                         2)
             : "-",
         stacked ? std::to_string(r.dram3d.refreshes) : "-",
         stacked ? std::to_string(r.dram3d.remaps) : "-",
         stacked && r.dram3d.peak_vault_c > 0.0
             ? fmt_fixed(r.dram3d.peak_vault_c, 1)
             : "-",
         fmt_fixed(static_cast<double>(r.dram.total_wait_cycles) / 1000.0, 0),
         fmt_fixed(static_cast<double>(r.cycles) / 1000.0, 0),
         fmt_fixed(r.edp_pj_s, 3)});
    if (stacked) {
      ++stacked_runs;
      if (r.dram3d.row_hits > 0) any_row_hits = true;
      if (r.dram3d.refreshes > 0) any_refresh = true;
    }
  }
  // Remap must never leave the stack hotter than remap-off on the same
  // app (equal is fine: below threshold the policy does nothing).
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    if (!out.run_ok(i) ||
        out.runs[i].dram_backend != DramBackendMode::kStackedRemap) {
      continue;
    }
    for (std::size_t j = 0; j < out.results.size(); ++j) {
      if (out.run_ok(j) && out.runs[j].app == out.runs[i].app &&
          out.runs[j].dram_backend == DramBackendMode::kStacked &&
          out.results[i].dram3d.peak_vault_c >
              out.results[j].dram3d.peak_vault_c + 1e-9) {
        remap_cooler = false;
      }
    }
  }
  tbl.print(os);

  os << "shape check: stacked runs exploit open-row locality: "
     << (stacked_runs > 0 && any_row_hits ? "PASS" : "CHECK") << "\n";
  os << "shape check: refresh interference occurred in every stacked run: "
     << (stacked_runs > 0 && any_refresh ? "PASS" : "CHECK") << "\n";
  os << "shape check: vault remap never raises the peak vault temperature: "
     << (remap_cooler ? "PASS" : "CHECK") << "\n";
}

// ---- registry construction -------------------------------------------------

ScenarioSpec timing_spec(std::string name, std::string figure,
                         std::string description,
                         void (*presenter)(const ScenarioOutcome&, std::ostream&)) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.figure = std::move(figure);
  s.description = std::move(description);
  s.kind = ScenarioSpec::Kind::kTiming;
  s.power_states = core::PowerState::paper_states();
  s.default_scale = 0.5;  // parsed for flag hygiene; analytic scenarios ignore it
  s.golden_scale = 0.5;
  s.present = presenter;
  return s;
}

ScenarioSpec fig6_spec(std::string name, std::string figure,
                       std::string description,
                       void (*presenter)(const ScenarioOutcome&, std::ostream&)) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.figure = std::move(figure);
  s.description = std::move(description);
  s.apps = workload::splash2_names();
  s.fabrics = kFig6Fabrics;
  s.power_states = {core::PowerState::full()};
  s.dram_presets = {mem::DramPreset::kDdr3_200ns};
  // The Fig. 6 interconnect comparison has no capacity story; 0.25 keeps
  // the 32 packet-switched runs quick.  Golden runs shrink further for CI.
  s.default_scale = 0.25;
  s.golden_scale = 0.005;
  s.present = presenter;
  return s;
}

ScenarioSpec states_spec(std::string name, std::string figure,
                         std::string description, mem::DramPreset preset,
                         void (*presenter)(const ScenarioOutcome&, std::ostream&)) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.figure = std::move(figure);
  s.description = std::move(description);
  s.apps = workload::splash2_names();
  s.fabrics = {cluster::Fabric::kMot};
  s.power_states = core::PowerState::paper_states();
  s.dram_presets = {preset};
  // The EDP experiments need working-set *reuse*: scale 0.5 by default.
  s.default_scale = 0.5;
  s.golden_scale = 0.02;
  s.present = presenter;
  return s;
}

ScenarioSpec thermal_spec() {
  ScenarioSpec s;
  s.name = "thermal_envelope";
  s.figure = "§III (thermal)";
  s.description = "3-D stack thermal envelopes: ambient x ceiling x fabric";
  // One cache-light and one capacity/miss-heavy program, the MoT against
  // the packet-switched mesh (only the MoT can gate banks to cool down),
  // over ambient x ceiling envelopes.
  s.apps = {"fft", "ocean_contiguous"};
  s.fabrics = {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d};
  s.power_states = {core::PowerState::full()};
  s.dram_presets = {mem::DramPreset::kDdr3_200ns};
  s.thermal_envelopes = {
      thermal::ThermalEnvelope{true, 45.0, 85.0},
      thermal::ThermalEnvelope{true, 45.0, 70.0},
      thermal::ThermalEnvelope{true, 60.0, 85.0},
      thermal::ThermalEnvelope{true, 60.0, 70.0},
  };
  s.default_scale = 0.5;
  s.golden_scale = 0.02;
  s.present = present_thermal;
  return s;
}

ScenarioSpec coherence_spec() {
  ScenarioSpec s;
  s.name = "coherence_sharing";
  s.figure = "§II (coherence)";
  s.description =
      "directory-MESI sharing patterns: invalidation traffic on the fabrics";
  // The four sharing patterns against the MoT and the packet-switched
  // mesh, Full and bank-gated (only the MoT runs gated): invalidations,
  // upgrades and data forwards all ride the regular fabrics, so the
  // interconnect comparison extends to coherence traffic.
  s.apps = workload::sharing_profile_names();
  s.fabrics = {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d};
  s.power_states = {core::PowerState::full(), core::PowerState::pc16_mb8()};
  s.dram_presets = {mem::DramPreset::kDdr3_200ns};
  s.default_scale = 0.5;
  s.golden_scale = 0.02;
  s.present = present_coherence;
  return s;
}

ScenarioSpec fault_spec() {
  ScenarioSpec s;
  s.name = "fault_resilience";
  s.figure = "§III (resilience)";
  s.description =
      "TSV/link/bank fault injection: graceful degradation vs hard failure";
  // One representative app; the MoT against the packet-switched mesh (only
  // the MoT can gate around a dead bank), Full and the MB8 floor, over
  // three fault envelopes: degrades only, degrades + some hard faults,
  // and a harsher mix with a different seed.  The seeds are chosen so the
  // hard faults land on *gateable* banks (outside the MB8 centre group
  // 12..19): the scenario demonstrates graceful degradation vs structural
  // failure across fabrics, while tests/test_fault.cpp covers the
  // centre-group fault that is unrecoverable even on the MoT.
  s.apps = {"fft"};
  s.fabrics = {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d};
  s.power_states = {core::PowerState::full(), core::PowerState::pc16_mb8()};
  s.dram_presets = {mem::DramPreset::kDdr3_200ns};
  s.fault_envelopes = {
      fault::FaultEnvelope{true, 1.0, 0.0, 101},
      fault::FaultEnvelope{true, 1.0, 0.5, 103},
      fault::FaultEnvelope{true, 2.0, 1.0, 202},
  };
  s.default_scale = 0.5;
  s.golden_scale = 0.02;
  s.present = present_fault;
  return s;
}

ScenarioSpec scale_smoke_spec() {
  ScenarioSpec s;
  s.name = "scale_smoke";
  s.figure = "-";
  s.description =
      "256-core scale-out smoke: heavy-sharing patterns on the MoT, golden-pinned";
  // The hot-path data layout (arena-backed directory slices, multi-word
  // sharer bitvectors, batched fabric delivery, sparse arbitration) must
  // stay bit-identical at shapes past the 64-core sharer-word boundary.
  // A reduced-scale 256-core x 512-bank sweep over the two heaviest
  // sharing patterns pins that behaviour: the golden suite runs it under
  // both schedulers and diffs the serialised metrics byte-for-byte.
  s.apps = {"all_to_all", "producer_consumer"};
  s.fabrics = {cluster::Fabric::kMot};
  s.power_states = {power_state_by_name("Full256x512")};
  s.dram_presets = {mem::DramPreset::kDdr3_200ns};
  s.default_scale = 0.1;
  s.golden_scale = 0.02;
  return s;
}

ScenarioSpec stacked_dram_spec() {
  ScenarioSpec s;
  s.name = "stacked_dram";
  s.figure = "§II (3-D DRAM)";
  s.description =
      "3-D stacked-DRAM backend: vaults, refresh, thermal vault remap";
  // One cache-light and one miss-heavy program under a thermal envelope,
  // crossing the backend axis: the constant-latency controller the paper
  // evaluates, the vault-parallel stack, and the stack with thermal vault
  // remapping engaged.  Golden-pinned under both schedulers: FR-FCFS
  // grants, refresh timing and remap decisions are all deterministic.
  s.apps = {"fft", "ocean_contiguous"};
  s.fabrics = {cluster::Fabric::kMot};
  s.power_states = {core::PowerState::full()};
  s.dram_presets = {mem::DramPreset::kDdr3_200ns};
  s.thermal_envelopes = {thermal::ThermalEnvelope{true, 45.0, 85.0}};
  s.dram_backends = {DramBackendMode::kConstant, DramBackendMode::kStacked,
                     DramBackendMode::kStackedRemap};
  s.default_scale = 0.5;
  s.golden_scale = 0.02;
  s.present = present_stacked;
  return s;
}

ScenarioSpec custom_spec(std::string name, std::string description,
                         int (*body)(const ScenarioSpec&, const ScenarioOptions&,
                                     std::ostream&),
                         double default_scale) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.figure = "-";
  s.description = std::move(description);
  s.kind = ScenarioSpec::Kind::kCustom;
  s.default_scale = default_scale;
  s.golden_scale = default_scale;
  s.has_golden = false;
  s.run_custom = body;
  return s;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> r;
  r.push_back(timing_spec("table1_config", "Table I",
                          "architecture configuration + derived L2 latencies",
                          present_table1));
  r.push_back(timing_spec("fig5_wire_lengths", "Fig. 5",
                          "wire lengths and link delays per power state",
                          present_fig5));
  r.push_back(fig6_spec("fig6a_l2_latency", "Fig. 6(a)",
                        "L2 access latency of the four 3-D interconnects",
                        present_fig6a));
  r.push_back(fig6_spec("fig6b_exec_time", "Fig. 6(b)",
                        "execution time per interconnect (DRAM 200 ns)",
                        present_fig6b));
  r.push_back(states_spec("fig7a_edp_200ns", "Fig. 7(a)",
                          "EDP per power state, DRAM 200 ns",
                          mem::DramPreset::kDdr3_200ns, present_fig7a));
  r.push_back(states_spec("fig7b_exec_time_states", "Fig. 7(b)",
                          "execution time per power state, DRAM 200 ns",
                          mem::DramPreset::kDdr3_200ns, present_fig7b));
  r.push_back(states_spec("fig8a_edp_63ns", "Fig. 8(a)",
                          "EDP per power state, Wide I/O DRAM 63 ns",
                          mem::DramPreset::kWideIo_63ns,
                          [](const ScenarioOutcome& out, std::ostream& os) {
                            (void)present_edp_table(out, os);
                          }));
  r.push_back(states_spec("fig8b_edp_42ns", "Fig. 8(b)",
                          "EDP per power state, Weis 3-D DRAM 42 ns",
                          mem::DramPreset::kWeis3d_42ns,
                          [](const ScenarioOutcome& out, std::ostream& os) {
                            (void)present_edp_table(out, os);
                          }));
  r.push_back(thermal_spec());
  r.push_back(coherence_spec());
  r.push_back(fault_spec());
  r.push_back(scale_smoke_spec());
  r.push_back(stacked_dram_spec());
  r.push_back(custom_spec("ablation_wire",
                          "repeater insertion vs Elmore wire delay",
                          run_ablation_wire, 0.5));
  r.push_back(custom_spec("ablation_pipeline",
                          "MoT latency vs offered load across power states",
                          run_ablation_pipeline, 0.5));
  r.push_back(custom_spec("micro_sim",
                          "hot-path microbenchmarks + scheduler speedup",
                          run_micro_sim, 0.05));
  return r;
}

}  // namespace

const std::vector<ScenarioSpec>& all_scenarios() {
  static const std::vector<ScenarioSpec> registry = build_registry();
  return registry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : all_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> golden_scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& s : all_scenarios()) {
    if (s.has_golden) names.push_back(s.name);
  }
  return names;
}

}  // namespace mot3d::sim
