// Perf-trajectory JSON reports for the bench harness (--json=).
//
// Each bench binary can dump one flat JSON object with its identity, knobs
// and SweepRunner telemetry (wall seconds, simulated cycles, cycles/s) so
// successive PRs can chart simulator throughput over time (BENCH_*.json).
// The writer is deliberately tiny: flat objects, insertion-ordered keys,
// deterministic number formatting — no external JSON dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep_runner.hpp"

namespace mot3d::sim {

/// Canonical JSON number: shortest round-trip formatting, so equal doubles
/// always serialise to equal bytes (the golden baselines depend on this).
std::string json_number(double v);

/// Canonical JSON string literal (quoted + escaped).
std::string json_string(const std::string& s);

class JsonArray;

/// Flat JSON object with insertion-ordered, deterministic serialisation.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, unsigned value) {
    return set(key, static_cast<std::uint64_t>(value));
  }
  JsonObject& set(const std::string& key, bool value);
  /// Nest an already-serialised JSON value (object or array) under `key`.
  JsonObject& set_raw(const std::string& key, const std::string& raw_json);

  /// Append every field of `other` after this object's own fields.
  JsonObject& merge(const JsonObject& other);

  std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key -> raw json
};

/// JSON array of already-serialised values, one element per line when
/// `str(indent)` is called with a non-negative indent (golden files keep
/// one run per line so diffs stay reviewable).
class JsonArray {
 public:
  JsonArray& push(const JsonObject& obj);
  JsonArray& push_raw(const std::string& raw_json);
  std::size_t size() const { return elements_.size(); }

  /// `indent < 0`: single line.  `indent >= 0`: one element per line,
  /// each prefixed by `indent + 2` spaces, closing bracket at `indent`.
  std::string str(int indent = -1) const;

 private:
  std::vector<std::string> elements_;
};

/// Canonical bench perf report (bench name + telemetry + extra fields
/// already staged in `extra`).  Returns false if `path` cannot be written.
bool write_perf_report(const std::string& path, const std::string& bench,
                       const PerfTelemetry& telemetry, JsonObject extra = {});

}  // namespace mot3d::sim
