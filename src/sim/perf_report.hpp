// Perf-trajectory JSON reports for the bench harness (--json=).
//
// Each bench binary can dump one flat JSON object with its identity, knobs
// and SweepRunner telemetry (wall seconds, simulated cycles, cycles/s) so
// successive PRs can chart simulator throughput over time (BENCH_*.json).
// The writer is deliberately tiny: flat objects, insertion-ordered keys,
// deterministic number formatting — no external JSON dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep_runner.hpp"

namespace mot3d::sim {

/// Flat JSON object with insertion-ordered, deterministic serialisation.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, unsigned value) {
    return set(key, static_cast<std::uint64_t>(value));
  }
  JsonObject& set(const std::string& key, bool value);

  /// Append every field of `other` after this object's own fields.
  JsonObject& merge(const JsonObject& other);

  std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key -> raw json
};

/// Canonical bench perf report (bench name + telemetry + extra fields
/// already staged in `extra`).  Returns false if `path` cannot be written.
bool write_perf_report(const std::string& path, const std::string& bench,
                       const PerfTelemetry& telemetry, JsonObject extra = {});

}  // namespace mot3d::sim
