// Minimal JSON reader — the parsing twin of the JsonObject/JsonArray
// writer in sim/perf_report.hpp.
//
// Promoted out of bench_scale.cpp (where it parsed BENCH_*.json perf
// baselines) so the sweep service can parse newline-delimited request
// documents with the same code.  Deliberately supports only the subset
// our own writer emits — objects, arrays, strings, numbers, bools, null;
// no \uXXXX escapes — anything else is malformed input and parses to
// std::nullopt, never a guess.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mot3d::sim {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  /// Whole-document parse: trailing junk is malformed (std::nullopt).
  std::optional<JsonValue> parse();

 private:
  void skip_ws();
  bool literal(const char* lit);
  bool parse_value(JsonValue& out);
  bool parse_object(JsonValue& out);
  bool parse_array(JsonValue& out);
  bool parse_string(std::string& out);
  bool parse_number(JsonValue& out);

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace mot3d::sim
