#include "sim/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace mot3d::sim {

unsigned SweepRunner::resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(unsigned threads) : threads_(resolve_threads(threads)) {
  telemetry_.threads = threads_;
}

void SweepRunner::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(n);
  auto worker = [&] {
    for (;;) {
      // Stop starting new tasks once any task has failed (in-flight tasks
      // finish); matches the serial path's abort-on-first-throw behavior.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = cursor.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Rethrow the first failure by task index (deterministic choice).
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<cluster::SimResult> SweepRunner::run(const std::vector<Task>& tasks) {
  std::vector<cluster::SimResult> results(tasks.size());
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(tasks.size(), [&](std::size_t i) { results[i] = tasks[i](); });
  const auto t1 = std::chrono::steady_clock::now();

  telemetry_.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
  telemetry_.runs += tasks.size();
  for (const cluster::SimResult& r : results) telemetry_.simulated_cycles += r.cycles;
  return results;
}

std::vector<IsolatedResult> SweepRunner::run_isolated(
    const std::vector<Task>& tasks) {
  std::vector<IsolatedResult> results(tasks.size());
  const auto t0 = std::chrono::steady_clock::now();
  // The catch lives *inside* fn, so parallel_for never sees a failure and
  // never stops handing out tasks — isolation, not abort-on-first-throw.
  parallel_for(tasks.size(), [&](std::size_t i) {
    try {
      results[i].result = tasks[i]();
    } catch (const std::exception& e) {
      results[i].error = e.what();
    } catch (...) {
      results[i].error = "unknown exception";
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  telemetry_.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
  telemetry_.runs += tasks.size();
  for (const IsolatedResult& r : results) {
    if (r.ok()) telemetry_.simulated_cycles += r.result.cycles;
  }
  return results;
}

}  // namespace mot3d::sim
