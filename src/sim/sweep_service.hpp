// Sweep service: a cache-backed experiment server over the scenario engine.
//
// The "millions of users" framing for a simulator is sweep throughput:
// most large parameter studies re-run grids that overlap earlier ones, so
// `mot3d_experiments serve` / `batch` turn the CLI into a long-running
// daemon that dedupes and memoizes runs instead of recomputing them.
//
//  * Every grid cell is canonicalised to a byte-stable spec JSON (fixed
//    field order, canonical number formatting — the same guarantees the
//    golden baselines rely on) and keyed by its SHA-256 hash.
//  * A content-addressed on-disk cache maps that hash to the run's
//    canonical metrics JSON (sim::run_metrics_json — one element of the
//    golden "runs" array).  Results are byte-stable, so a cache hit is
//    bit-identical to recomputation; the property-test suite
//    (tests/test_sweep_service.cpp) pins exactly that.
//  * Cache misses shard across the SweepRunner pool via run_isolated —
//    one wedged or failed job becomes that job's error and never kills
//    the batch.  Errors are never cached.
//  * The scheduler is deliberately NOT part of the cache key: dense-tick
//    and event-driven runs are bit-identical by the scheduler-equivalence
//    contract, so either may serve the other's cache entries (pinned by
//    test).
//
// Request protocol: newline-delimited JSON on stdin / a --requests file,
// one response line per expanded job in deterministic grid order plus a
// per-request summary line (see DESIGN.md "Sweep service").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/service_metrics.hpp"
#include "sim/scenario.hpp"

namespace mot3d::sim {

/// One memoizable unit of work: a grid cell plus the modeled inputs.
struct SweepJob {
  ScenarioRun run;
  double scale = 0.5;
  std::uint64_t seed = 42;
  /// Per-job watchdog wall budget (0 = none).  NOT part of the cache key:
  /// errors are never cached, so the budget only bounds recomputation.
  double timeout_seconds = 0.0;
};

/// Byte-stable canonical spec JSON — the cache-key preimage.  Fixed field
/// set and insertion order regardless of how the job was requested, so
/// permuting request-axis value order or request-JSON field order cannot
/// change the key; changing any modeled input (app, fabric, power state,
/// DRAM preset/backend, thermal envelope, fault rates/seed, scale, seed)
/// always does.
std::string canonical_job_json(const SweepJob& job);

/// SHA-256 hex of canonical_job_json — the content address.
std::string job_hash(const SweepJob& job);

/// One job's resolution: provenance + payload or error.
struct JobOutcome {
  std::string spec_hash;
  bool cache_hit = false;  ///< served without computing (disk or in-flight)
  std::string payload;     ///< canonical run-metrics JSON; "" on error
  std::string error;       ///< non-empty on failure (never cached)
  bool ok() const { return error.empty(); }
};

struct ServiceConfig {
  std::string cache_dir;
  unsigned threads = 0;  ///< SweepRunner budget; 0 = hardware concurrency
  cluster::SchedulerMode scheduler = cluster::SchedulerMode::kEventDriven;
  /// Cache capacity in bytes (0 = unlimited).  When a store pushes the
  /// total over the cap, least-recently-used entries (by file time,
  /// refreshed on hit) are evicted oldest-first until back under it.
  std::uint64_t max_cache_bytes = 0;
};

struct CacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class SweepService {
 public:
  /// Creates the cache directory; throws std::runtime_error when it cannot
  /// be created or written (the CLI turns that into one clean error line).
  explicit SweepService(ServiceConfig cfg);

  /// Resolve every job — cache hits from disk, misses computed across the
  /// SweepRunner pool — returning outcomes in job order (byte-identical at
  /// any thread count).  Thread-safe: concurrent run_batch calls sharing
  /// jobs compute each unique spec exactly once (later callers wait on the
  /// in-flight computation and count as hits).  Truncated or
  /// hash-mismatched cache entries are detected, logged to stderr,
  /// recomputed and rewritten — never served.
  std::vector<JobOutcome> run_batch(const std::vector<SweepJob>& jobs);

  CacheStats cache_stats() const;  ///< scans the cache directory
  std::size_t cache_clear();       ///< removes every entry; returns count

  obs::ServiceCounters& counters() { return counters_; }
  const obs::ServiceCounters& counters() const { return counters_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  enum class Probe { kHit, kMiss, kCorrupt };

  struct InFlight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    JobOutcome outcome;
  };

  std::string entry_path(const std::string& hash) const;
  Probe load_entry(const std::string& hash, std::string* payload,
                   std::string* reason) const;
  bool store_entry(const SweepJob& job, const std::string& hash,
                   const std::string& payload);
  void evict_over_cap();

  ServiceConfig cfg_;
  obs::ServiceCounters counters_;
  std::mutex mutex_;  ///< guards inflight_
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::mutex store_mutex_;  ///< serialises store + eviction scans
};

// ---- request protocol ------------------------------------------------------

/// One parsed request line.  `cmd` empty means "run the jobs".
struct ServiceRequest {
  std::string id = "null";  ///< request "id" re-serialised verbatim
  std::string cmd;          ///< "", "ping", "stats", "shutdown"
  std::vector<SweepJob> jobs;  ///< expanded grid, deterministic order
  std::size_t skipped_invalid = 0;
};

/// Parse one newline-delimited request document.  Two request shapes:
///   {"id":1,"scenario":"fig6b_exec_time"}            registered sweep at
///                                                    its golden options
///   {"id":2,"apps":["fft"],"fabrics":["mot"],...}    ad-hoc grid (absent
///                                                    axes use the same
///                                                    defaults as `grid`)
/// plus commands {"cmd":"ping"|"stats"|"shutdown"}.  Optional fields:
/// "scale", "seed" (override the defaults), "timeout_seconds" (per-job
/// watchdog).  Throws std::invalid_argument with a one-line reason on
/// malformed input — the loop answers with an error document and keeps
/// serving.
ServiceRequest parse_service_request(const std::string& line);

enum class ServiceLoopMode {
  kServe,  ///< interactive: ready line first, flush per response, exit 0
  kBatch   ///< drain to EOF, final batch_done summary, exit 1 on any error
};

/// Drive the request/response loop over a stream pair.  Returns the
/// process exit code.
int service_loop(std::istream& in, std::ostream& out, SweepService& service,
                 ServiceLoopMode mode);

}  // namespace mot3d::sim
