// Declarative scenario engine: experiments are data, not code.
//
// A ScenarioSpec describes one paper experiment as a grid over the
// evaluation axes (SPLASH-2 app x fabric x power state x DRAM preset) plus
// run knobs (scale, seed, scheduler).  The engine expands the grid into
// independent cluster simulations, executes them across the SweepRunner
// thread pool, and serialises the modeled metrics of every run to one
// canonical JSON document — byte-identical for a given (spec, options)
// regardless of thread count or scheduler mode, which is what the golden
// regression suite (tests/golden/, tests/test_golden_figures.cpp) pins.
//
// Three kinds of scenario exist:
//  * kSweep  — a cluster-simulation grid (Figs. 6-8);
//  * kTiming — analytic geometry/timing tables (Fig. 5, Table I), no
//              simulation, still golden-checked;
//  * kCustom — self-driving bodies (microbenchmarks, ablations) that are
//              listed and runnable but produce no golden baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/mot_timing.hpp"
#include "sim/perf_report.hpp"
#include "sim/sweep_runner.hpp"

namespace mot3d::sim {

struct ScenarioOutcome;
struct ScenarioSpec;

/// DRAM backend axis: the constant-latency controller the paper evaluates
/// (kConstant, the default — every legacy scenario), the 3-D stacked
/// vault-parallel backend (kStacked), and the same with thermal vault
/// remapping engaged (kStackedRemap).
enum class DramBackendMode : std::uint8_t {
  kConstant,
  kStacked,
  kStackedRemap,
};

/// Run-time knobs resolved from the command line (or golden defaults).
struct ScenarioOptions {
  double scale = 0.5;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  cluster::SchedulerMode scheduler = cluster::SchedulerMode::kEventDriven;
  std::string json_path;  ///< perf + metrics report destination ("" = none)
  /// Per-run wall-clock budget in seconds (0 = none).  Engages the cluster
  /// watchdog: a run over budget dies with a WatchdogError that the sweep
  /// records as that run's error instead of wedging the whole process.
  double timeout_seconds = 0.0;
  /// Chrome-trace-event JSON destination ("" = tracing off).  One process
  /// per grid run, one thread track per core / L2 bank / fabric / governor,
  /// timestamps in simulated cycles.  Openable in Perfetto.
  std::string trace_path;
  /// Interval-metrics time series destination ("" = off).  JSON by
  /// default; a path ending in ".csv" selects long-format CSV rows.
  std::string metrics_path;
  /// Attribute host wall seconds to simulator phases (bench_scale --json).
  bool phase_timing = false;
};

/// One experiment, described declaratively.
struct ScenarioSpec {
  enum class Kind { kSweep, kTiming, kCustom };

  std::string name;         ///< registry key, e.g. "fig6b_exec_time"
  std::string figure;       ///< paper anchor, e.g. "Fig. 6(b)"
  std::string description;  ///< one line for `mot3d_experiments --list`
  Kind kind = Kind::kSweep;

  // -- sweep grid (kSweep; expansion order: apps > fabrics > states > dram
  //    > thermal envelopes > fault envelopes > dram backends) --
  std::vector<std::string> apps;
  std::vector<cluster::Fabric> fabrics;
  std::vector<core::PowerState> power_states;
  std::vector<mem::DramPreset> dram_presets;
  /// Thermal axis: ambient x ceiling cells (src/thermal/).  Empty means
  /// one implicit disabled cell — non-thermal sweeps are unaffected.
  std::vector<thermal::ThermalEnvelope> thermal_envelopes;
  /// Fault axis: rate x seed cells (src/fault/).  Empty means one implicit
  /// disabled cell — fault-free sweeps keep byte-identical goldens.
  std::vector<fault::FaultEnvelope> fault_envelopes;
  /// DRAM backend axis (src/dram3d/).  Empty means one implicit kConstant
  /// cell — every legacy scenario keeps its exact grid and field set.
  std::vector<DramBackendMode> dram_backends;

  // -- run knobs --
  double default_scale = 0.5;  ///< bench-binary default (--scale overrides)
  double golden_scale = 0.02;  ///< reduced scale pinned by the golden suite
  std::uint64_t seed = 42;

  /// Timing and sweep scenarios pin a baseline under tests/golden/.
  bool has_golden = true;

  /// Figure-specific tables / paper-claim comparison.  Null => generic table.
  std::function<void(const ScenarioOutcome&, std::ostream&)> present;

  /// kCustom only: the whole body (returns the process exit code).
  std::function<int(const ScenarioSpec&, const ScenarioOptions&, std::ostream&)>
      run_custom;

  std::size_t grid_size() const;
};

/// One cell of an expanded sweep grid.
struct ScenarioRun {
  std::string app;
  cluster::Fabric fabric = cluster::Fabric::kMot;
  core::PowerState state = core::PowerState::full();
  mem::DramPreset dram = mem::DramPreset::kDdr3_200ns;
  thermal::ThermalEnvelope thermal;  ///< disabled unless the spec has an axis
  fault::FaultEnvelope fault;        ///< disabled unless the spec has an axis
  DramBackendMode dram_backend = DramBackendMode::kConstant;
};

/// Analytic payload of a kTiming scenario, one row per power state.
struct TimingRow {
  std::string state;
  std::size_t cores = 0;
  std::size_t banks = 0;
  double bank_field_mm = 0.0;
  double core_field_mm = 0.0;
  double longest_link_mm = 0.0;
  double request_path_mm = 0.0;
  core::MotStateTiming timing;
  std::size_t powered_repeaters = 0;
  std::size_t powered_switches = 0;
};

/// CACTI-lite L2 bank summary (kTiming payload, Table I).
struct SramSummary {
  double access_ns = 0.0;
  double read_energy_pj = 0.0;
  double write_energy_pj = 0.0;
  double leakage_mw = 0.0;
  double area_mm2 = 0.0;
};

/// Everything a presenter / serialiser needs from one scenario execution.
struct ScenarioOutcome {
  const ScenarioSpec* spec = nullptr;
  ScenarioOptions options;

  // kSweep: runs[i] produced results[i] (grid order).
  std::vector<ScenarioRun> runs;
  std::vector<cluster::SimResult> results;
  /// errors[i] is the exception message of the run that died (watchdog
  /// timeout, wedge, config error); "" for runs that completed.  Sized
  /// like `runs` for sweeps, empty for timing scenarios.
  std::vector<std::string> errors;
  std::size_t skipped_invalid = 0;  ///< gated states on packet-switched fabrics

  bool run_ok(std::size_t i) const { return i >= errors.size() || errors[i].empty(); }
  std::size_t error_count() const;

  // kTiming payload.
  std::vector<TimingRow> timing_rows;
  SramSummary sram;

  PerfTelemetry telemetry;

  /// Result lookup by axes; throws std::out_of_range when absent.
  const cluster::SimResult& result(const std::string& app, cluster::Fabric fabric,
                                   const std::string& state_name,
                                   mem::DramPreset dram) const;
};

/// Expand the spec's grid in canonical order, dropping invalid combinations
/// (the packet-switched baselines only run ungated); `skipped` (optional)
/// reports how many cells were dropped.
std::vector<ScenarioRun> expand_grid(const ScenarioSpec& spec,
                                     std::size_t* skipped = nullptr);

/// The one reason expand_grid drops cells — single source of truth for
/// every surface (run note, describe) that explains a nonzero skip count.
const char* invalid_cell_reason();

/// Execute a kSweep or kTiming scenario (kCustom scenarios run through
/// run_and_present, which dispatches to their body).
ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioOptions& opt);

/// The ClusterConfig for one grid cell under the given options — the single
/// translation the scenario engine and the sweep service both run jobs
/// through, so a memoized run is configured exactly like a swept one.
cluster::ClusterConfig make_run_config(const ScenarioRun& run,
                                       const ScenarioOptions& opt);

/// Canonical modeled-metrics JSON for ONE run — one element of the "runs"
/// array in scenario_metrics_json, and the byte-stable payload the sweep
/// service caches (a cache hit must be bit-identical to recomputation).
std::string run_metrics_json(const ScenarioRun& run, const cluster::SimResult& r);

/// Canonical modeled-metrics JSON — the golden-baseline format.  Contains
/// only deterministic modeled quantities (no wall-clock telemetry); equal
/// for kEventDriven and kDenseTick by the scheduler-equivalence contract.
std::string scenario_metrics_json(const ScenarioOutcome& outcome);

/// Full --json report: perf telemetry + options + the metrics document.
bool write_scenario_report(const std::string& path, const ScenarioOutcome& outcome);

/// Run a scenario of any kind, print its tables (spec.present or a generic
/// table), emit the [perf] line and the --json report.  Returns an exit code.
int run_and_present(const ScenarioSpec& spec, const ScenarioOptions& opt,
                    std::ostream& os);

/// Golden-baseline options for a spec: golden_scale, the spec's seed, the
/// default scheduler.  The golden suite runs these under both schedulers.
ScenarioOptions golden_options(const ScenarioSpec& spec);

// -- axis parsing/naming helpers (shared by the CLI and the registry) --------

/// Short stable keys for the CLI: "mot", "mesh3d", "busmesh", "bustree".
const char* fabric_key(cluster::Fabric f);
cluster::Fabric fabric_by_key(const std::string& key);  ///< throws on unknown

/// "Full" / "PC16-MB8" / ... plus generic "PC<cores>-MB<banks>" (powers of
/// two, on a 16-core 32-bank cluster).  Throws std::invalid_argument.
core::PowerState power_state_by_name(const std::string& name);

/// "200"/"ddr3", "63"/"wideio", "42"/"weis3d".  Throws on unknown.
mem::DramPreset dram_preset_by_key(const std::string& key);

/// Short stable keys for the backend axis: "constant", "stacked",
/// "stacked_remap".
const char* dram_backend_key(DramBackendMode m);
DramBackendMode dram_backend_by_key(const std::string& key);  ///< throws

}  // namespace mot3d::sim
