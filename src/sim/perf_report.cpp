#include "sim/perf_report.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mot3d::sim {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);  // shortest round-trip
  return std::string(buf, res.ptr);
}

std::string json_string(const std::string& s) {
  // Sequential appends: no operator+ temporaries on the serialisation path.
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, json_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  fields_.emplace_back(key, json_number(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::set_raw(const std::string& key, const std::string& raw_json) {
  fields_.emplace_back(key, raw_json);
  return *this;
}

JsonObject& JsonObject::merge(const JsonObject& other) {
  fields_.insert(fields_.end(), other.fields_.begin(), other.fields_.end());
  return *this;
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += json_escape(fields_[i].first);
    out += "\": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

JsonArray& JsonArray::push(const JsonObject& obj) {
  elements_.push_back(obj.str());
  return *this;
}

JsonArray& JsonArray::push_raw(const std::string& raw_json) {
  elements_.push_back(raw_json);
  return *this;
}

std::string JsonArray::str(int indent) const {
  if (indent < 0) {
    std::string out = "[";
    for (std::size_t i = 0; i < elements_.size(); ++i) {
      if (i > 0) out += ", ";
      out += elements_[i];
    }
    return out + "]";
  }
  if (elements_.empty()) return "[]";
  const std::string outer(static_cast<std::size_t>(indent), ' ');
  const std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
  std::string out = "[\n";
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    out += inner + elements_[i];
    if (i + 1 < elements_.size()) out += ",";
    out += "\n";
  }
  return out + outer + "]";
}

bool write_perf_report(const std::string& path, const std::string& bench,
                       const PerfTelemetry& telemetry, JsonObject extra) {
  JsonObject obj;
  obj.set("bench", bench)
      .set("threads", telemetry.threads)
      .set("runs", telemetry.runs)
      .set("simulated_cycles", telemetry.simulated_cycles)
      .set("wall_seconds", telemetry.wall_seconds)
      .set("cycles_per_second", telemetry.cycles_per_second());
  obj.merge(extra);
  std::ofstream out(path);
  if (!out) return false;
  out << obj.str() << "\n";
  return static_cast<bool>(out);
}

}  // namespace mot3d::sim
