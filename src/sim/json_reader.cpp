#include "sim/json_reader.hpp"

#include <cctype>
#include <stdexcept>

namespace mot3d::sim {

std::optional<JsonValue> JsonReader::parse() {
  JsonValue v;
  skip_ws();
  if (!parse_value(v)) return std::nullopt;
  skip_ws();
  if (pos_ != text_.size()) return std::nullopt;  // trailing junk
  return v;
}

void JsonReader::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool JsonReader::literal(const char* lit) {
  const std::size_t n = std::string(lit).size();
  if (text_.compare(pos_, n, lit) != 0) return false;
  pos_ += n;
  return true;
}

bool JsonReader::parse_value(JsonValue& out) {
  if (pos_ >= text_.size()) return false;
  switch (text_[pos_]) {
    case '{': return parse_object(out);
    case '[': return parse_array(out);
    case '"':
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    case 't':
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return literal("true");
    case 'f':
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return literal("false");
    case 'n':
      out.type = JsonValue::Type::kNull;
      return literal("null");
    default: return parse_number(out);
  }
}

bool JsonReader::parse_object(JsonValue& out) {
  out.type = JsonValue::Type::kObject;
  ++pos_;  // '{'
  skip_ws();
  if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != ':') return false;
    ++pos_;
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return false;
    out.object.emplace_back(std::move(key), std::move(v));
    skip_ws();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == ',') { ++pos_; continue; }
    if (text_[pos_] == '}') { ++pos_; return true; }
    return false;
  }
}

bool JsonReader::parse_array(JsonValue& out) {
  out.type = JsonValue::Type::kArray;
  ++pos_;  // '['
  skip_ws();
  if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
  while (true) {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return false;
    out.array.push_back(std::move(v));
    skip_ws();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == ',') { ++pos_; continue; }
    if (text_[pos_] == ']') { ++pos_; return true; }
    return false;
  }
}

bool JsonReader::parse_string(std::string& out) {
  if (pos_ >= text_.size() || text_[pos_] != '"') return false;
  ++pos_;
  out.clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (c == '\\') {
      if (pos_ >= text_.size()) return false;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: return false;  // \uXXXX never appears in our writer
      }
    } else {
      out.push_back(c);
    }
  }
  return false;
}

bool JsonReader::parse_number(JsonValue& out) {
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (pos_ == start) return false;
  try {
    std::size_t used = 0;
    const std::string tok = text_.substr(start, pos_ - start);
    out.number = std::stod(tok, &used);
    if (used != tok.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  out.type = JsonValue::Type::kNumber;
  return true;
}

}  // namespace mot3d::sim
