// Runtime power-state advisor — the policy side of the paper's conclusion:
// "the reconfigurable 3-D MoT interconnect capable of power-gating ... is
// necessary to exploit various programs characteristics such as parallelism
// scalability and L2 cache demand."
//
// Given the observable counters of a profiling interval run at Full
// connection, the advisor estimates the two characteristics the paper
// identifies and maps them onto Table I's power states:
//
//   * parallelism scalability, from the fraction of core-cycles burnt
//     spinning at barriers (Amdahl waste): high spin ⇒ drop to 4 cores;
//   * L2 cache demand, from the resident L2 footprint and the miss traffic
//     relative to the 8-bank capacity: a comfortably-fitting footprint ⇒
//     gate 24 banks.
//
// The DRAM latency biases the bank decision exactly as Fig. 8 shows: the
// cheaper a miss, the more aggressively banks can be gated.
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "core/power_state.hpp"

namespace mot3d::cluster {

struct AdvisorThresholds {
  /// Spin-cycles / (cores * cycles) above which the app is treated as
  /// scalability-limited (recommend 4 cores).  Measured on the paper's
  /// workloads at Full connection: the limited group spins 0.78-0.83 of
  /// all core-cycles (serial phases are further stretched by their memory
  /// stalls), the scalable group 0.28-0.34 (barrier jitter only).
  double spin_ratio_limit = 0.50;
  /// Serial sections have a signature plain load imbalance lacks: thread 0
  /// keeps working while every other core spins.  Only when thread 0's
  /// spin time is below this fraction of the others' average is the spin
  /// attributed to Amdahl serialisation rather than barrier jitter.
  double spin_asymmetry_limit = 0.60;
  /// Resident L2 footprint (fraction of the 8-bank capacity) below which
  /// bank gating is considered safe at 200 ns DRAM.
  double mb8_fill_limit = 1.00;
  /// At fast on-chip DRAM (< 100 ns), the footprint guard is relaxed by
  /// this factor — extra misses are cheap (the Fig. 8 effect).
  double fast_dram_relax = 2.5;
};

struct StateRecommendation {
  core::PowerState state = core::PowerState::full();
  double spin_ratio = 0.0;          ///< measured Amdahl waste
  std::size_t resident_l2_bytes = 0;///< measured footprint
  bool gate_cores = false;
  bool gate_banks = false;
  std::string rationale;
};

/// Analyse a Full-connection profiling run and recommend the Table I state.
StateRecommendation recommend_power_state(const SimResult& profile,
                                          std::size_t resident_l2_lines,
                                          std::size_t line_bytes = 32,
                                          AdvisorThresholds thresholds = {});

/// Convenience overload using the footprint recorded in the result.
inline StateRecommendation recommend_power_state(const SimResult& profile,
                                                 AdvisorThresholds thresholds = {}) {
  return recommend_power_state(profile, profile.l2_resident_lines, 32, thresholds);
}

struct ThermalAdvisorThresholds {
  /// Fraction of the profiling run spent with cores held by the thermal
  /// governor above which the workload is considered thermally limited.
  double throttled_fraction_limit = 0.02;
};

/// Thermal-aware layer over recommend_power_state: when the profiling run
/// carried a thermal summary (SimResult::thermal) showing throttling or a
/// ceiling violation, the bank side of the recommendation is demoted —
/// gating 24 banks removes their leakage *and* shrinks the hot TSV field,
/// which buys thermal headroom even when the footprint guard alone would
/// have kept the capacity.  Performance advice defers to the envelope.
StateRecommendation recommend_power_state_thermal(
    const SimResult& profile, AdvisorThresholds thresholds = {},
    ThermalAdvisorThresholds thermal_thresholds = {});

}  // namespace mot3d::cluster
