#include "cluster/advisor.hpp"

#include <sstream>

namespace mot3d::cluster {

StateRecommendation recommend_power_state(const SimResult& profile,
                                          std::size_t resident_l2_lines,
                                          std::size_t line_bytes,
                                          AdvisorThresholds thresholds) {
  StateRecommendation rec;
  if (profile.cycles == 0 || profile.cores.empty()) {
    rec.rationale = "empty profile: stay at Full connection";
    return rec;
  }

  // --- parallelism scalability: Amdahl waste observed as barrier spin ---
  std::uint64_t spin = 0;
  for (const cpu::CoreStats& c : profile.cores) spin += c.spin_cycles;
  const double denom =
      static_cast<double>(profile.cycles) * static_cast<double>(profile.cores.size());
  rec.spin_ratio = static_cast<double>(spin) / denom;

  // Serial-section signature: thread 0 (which executes the serial phases)
  // barely spins while the rest wait for it.  Symmetric spin is barrier
  // jitter — gating cores would not recover it.
  const double spin0 = static_cast<double>(profile.cores.front().spin_cycles);
  const double spin_others =
      profile.cores.size() > 1
          ? (static_cast<double>(spin) - spin0) /
                static_cast<double>(profile.cores.size() - 1)
          : 0.0;
  const bool asymmetric =
      spin_others > 0.0 && spin0 < thresholds.spin_asymmetry_limit * spin_others;
  rec.gate_cores = asymmetric && rec.spin_ratio > thresholds.spin_ratio_limit;

  // --- L2 demand: resident footprint vs. the 8-bank capacity ---
  rec.resident_l2_bytes = resident_l2_lines * line_bytes;
  const double mb8_capacity = 8.0 * 64.0 * 1024.0;
  double fill_limit = thresholds.mb8_fill_limit;
  const bool fast_dram = profile.dram_latency_ns < 100.0;
  if (fast_dram) fill_limit *= thresholds.fast_dram_relax;
  // With 4 cores the private share of the footprint shrinks too; be
  // slightly more permissive when cores are also gated.
  if (rec.gate_cores) fill_limit *= 1.25;
  rec.gate_banks =
      static_cast<double>(rec.resident_l2_bytes) < fill_limit * mb8_capacity;

  if (rec.gate_cores && rec.gate_banks) {
    rec.state = core::PowerState::pc4_mb8();
  } else if (rec.gate_cores) {
    rec.state = core::PowerState::pc4_mb32();
  } else if (rec.gate_banks) {
    rec.state = core::PowerState::pc16_mb8();
  } else {
    rec.state = core::PowerState::full();
  }

  std::ostringstream why;
  why << "spin_ratio=" << rec.spin_ratio << (asymmetric ? " asymmetric" : " symmetric")
      << (rec.gate_cores ? " (limited scalability: 4 cores suffice)"
                         : " (scales: keep 16 cores)")
      << "; resident L2=" << rec.resident_l2_bytes / 1024 << "KB vs "
      << static_cast<std::size_t>(fill_limit * mb8_capacity) / 1024
      << "KB guard"
      << (rec.gate_banks ? " (fits: gate 24 banks)" : " (demands capacity: keep 32)")
      << (fast_dram ? " [fast DRAM relaxes the bank guard]" : "");
  rec.rationale = why.str();
  return rec;
}

StateRecommendation recommend_power_state_thermal(
    const SimResult& profile, AdvisorThresholds thresholds,
    ThermalAdvisorThresholds thermal_thresholds) {
  StateRecommendation rec = recommend_power_state(profile, thresholds);
  const thermal::ThermalSummary& t = profile.thermal;
  if (!t.enabled) return rec;

  const double throttled =
      profile.cycles == 0
          ? 0.0
          : static_cast<double>(t.throttled_cycles) /
                static_cast<double>(profile.cycles);
  const bool limited = t.throttle_events > 0 ||
                       throttled > thermal_thresholds.throttled_fraction_limit ||
                       t.peak_c >= t.ceiling_c;
  if (!limited || rec.gate_banks) return rec;

  rec.gate_banks = true;
  rec.state = rec.gate_cores ? core::PowerState::pc4_mb8()
                             : core::PowerState::pc16_mb8();
  std::ostringstream why;
  why << rec.rationale << "; thermal: peak " << t.peak_c << "C vs ceiling "
      << t.ceiling_c << "C with " << t.throttle_events
      << " throttle events — gate banks for headroom despite the footprint";
  rec.rationale = why.str();
  return rec;
}

}  // namespace mot3d::cluster
