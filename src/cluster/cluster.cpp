#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mot3d::cluster {

const char* scheduler_name(SchedulerMode m) {
  switch (m) {
    case SchedulerMode::kEventDriven: return "event";
    case SchedulerMode::kDenseTick: return "dense";
  }
  return "?";
}

const char* fabric_name(Fabric f) {
  switch (f) {
    case Fabric::kMot: return "3-D MoT";
    case Fabric::kTrueMesh3d: return "True 3-D Mesh";
    case Fabric::kHybridBusMesh: return "3-D Hybrid Bus-Mesh";
    case Fabric::kHybridBusTree: return "3-D Hybrid Bus-Tree";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  // ---- derive Table I timing/energy from the CACTI-lite model ----
  const cacti::SramBankResult bank = cacti::evaluate(cfg_.l2_bank_sram);
  cfg_.l2.total_banks = cfg_.total_banks;
  cfg_.l2.bank_capacity_bytes = cfg_.l2_bank_sram.capacity_bytes;
  cfg_.l2.associativity = cfg_.l2_bank_sram.associativity;
  cfg_.l2.line_bytes = cfg_.l2_bank_sram.line_bytes;
  cfg_.l2.access_cycles =
      cacti::access_cycles(cfg_.l2_bank_sram, cfg_.tech.clock_period_ns);
  cfg_.l2.read_energy_pj = bank.read_energy_pj;
  cfg_.l2.write_energy_pj = bank.write_energy_pj;
  cfg_.l2.leakage_mw_per_bank = bank.leakage_mw;
  cfg_.dram.access_latency_ns = mem::dram_latency_ns(cfg_.dram_preset);
  cfg_.core.l2_banks = cfg_.total_banks;
  cfg_.floorplan.max_cores = cfg_.total_cores;
  cfg_.floorplan.max_banks = cfg_.total_banks;

  if (cfg_.power_state.total_cores() != cfg_.total_cores ||
      cfg_.power_state.total_banks() != cfg_.total_banks) {
    throw std::invalid_argument("power state does not match cluster shape");
  }
  if (cfg_.fabric != Fabric::kMot &&
      (cfg_.power_state.active_cores() != cfg_.total_cores ||
       cfg_.power_state.active_banks() != cfg_.total_banks)) {
    throw std::invalid_argument(
        "packet-switched baselines only run the full (ungated) configuration");
  }

  // ---- memory system ----
  // DRAM requesters: one Miss-bus slot per bank + one per core (I-refills).
  dram_ = std::make_unique<mem::DramBackend>(cfg_.dram,
                                             cfg_.total_banks + cfg_.total_cores);
  l2_ = std::make_unique<mem::L2System>(cfg_.l2, *dram_, /*dram_requester_base=*/0);
  l2_->set_active_banks(cfg_.power_state.bank_mask());

  // ---- interconnect ----
  mot_timing_ = std::make_unique<core::MotTimingModel>(cfg_.tech, cfg_.floorplan,
                                                       cfg_.l2_bank_sram);
  if (cfg_.fabric == Fabric::kMot) {
    core::MotInterconnectConfig mic;
    mic.bank_hold_cycles = cfg_.l2.service_cycles;
    auto mot = std::make_unique<core::MotInterconnect>(*mot_timing_,
                                                       cfg_.power_state, mic);
    mot_ = mot.get();
    interconnect_ = std::move(mot);
  } else {
    cfg_.noc.num_cores = cfg_.total_cores;
    cfg_.noc.num_banks = cfg_.total_banks;
    cfg_.noc.line_bytes = cfg_.l2.line_bytes;
    const power::InterconnectPowerModel pm(phys::WireModel(cfg_.tech),
                                           cfg_.router_power);
    noc::NocTopology topo = noc::NocTopology::kTrueMesh3d;
    if (cfg_.fabric == Fabric::kHybridBusMesh) topo = noc::NocTopology::kHybridBusMesh;
    if (cfg_.fabric == Fabric::kHybridBusTree) topo = noc::NocTopology::kHybridBusTree;
    interconnect_ = noc::make_noc(topo, cfg_.noc, pm);
  }

  interconnect_->set_request_sink(
      [this](const MemRequest& req, Cycle now) { l2_->deliver(req, now); });
  interconnect_->set_response_sink([this](const MemResponse& resp, Cycle now) {
    const Cycle lat = now - resp.issue_cycle;
    l2_latency_.add(lat);
    if (resp.l2_hit) l2_hit_latency_.add(lat);
    assert(cores_[resp.core] != nullptr);
    cores_[resp.core]->on_response(resp, now);
  });
  l2_->set_response_injector([this](const MemResponse& resp, Cycle now) {
    return interconnect_->try_inject_response(resp, now);
  });

  // ---- workload & cores ----
  workload_ = std::make_unique<workload::Workload>(
      cfg_.app, cfg_.power_state.active_cores(), cfg_.scale, cfg_.seed);
  barriers_.set_participants(cfg_.power_state.active_cores());

  cores_.resize(cfg_.total_cores);
  traces_.resize(cfg_.total_cores);
  auto ifetch_issue = [this](CoreId c, Addr addr, Cycle now) {
    // Instruction refills ride the Miss bus straight to DRAM (paper §II);
    // requester slots for cores sit after the banks.
    dram_->read(static_cast<std::uint32_t>(cfg_.total_banks + c), addr, now,
                [this, c](std::uint32_t, Addr a, Cycle done) {
                  cores_[c]->on_ifetch_refill(a, done);
                });
  };
  for (std::size_t t = 0; t < cfg_.power_state.active_cores(); ++t) {
    const CoreId c = cfg_.power_state.core_of_thread(t);
    traces_[c] = workload_->make_trace(t);
    cores_[c] = std::make_unique<cpu::Core>(c, cfg_.core, *traces_[c], barriers_,
                                            ifetch_issue);
    if (cfg_.warm_instruction_caches) {
      cores_[c]->warm_l1i(workload::AddressMap::kCodeBase, cfg_.app.code_bytes);
    }
    active_cores_.push_back(c);
  }
}

Cluster::~Cluster() = default;

void Cluster::tick_once() {
  for (CoreId c : active_cores_) cores_[c]->tick(now_);
  for (CoreId c : active_cores_) {
    cpu::Core& core = *cores_[c];
    if (core.pending_request().has_value() &&
        interconnect_->try_inject_request(*core.pending_request(), now_)) {
      core.injection_accepted(now_);
    }
  }
  interconnect_->tick(now_);
  l2_->tick(now_);
  dram_->tick(now_);
  ++now_;
}

// Identical to tick_once() except that each component is ticked only when
// its next-event contract says this cycle can change its state — skipped
// ticks are no-ops by that contract, so results are unchanged.  The gates
// are evaluated just-in-time because earlier phases of the same cycle may
// stimulate later components (core -> interconnect -> L2 -> DRAM).
void Cluster::tick_once_event() {
  for (CoreId c : active_cores_) cores_[c]->tick(now_);
  for (CoreId c : active_cores_) {
    cpu::Core& core = *cores_[c];
    if (core.pending_request().has_value() &&
        interconnect_->try_inject_request(*core.pending_request(), now_)) {
      core.injection_accepted(now_);
    }
  }
  if (interconnect_->next_event(now_) <= now_) interconnect_->tick(now_);
  if (l2_->next_event(now_) <= now_) l2_->tick(now_);
  if (dram_->next_event(now_) <= now_) dram_->tick(now_);
  ++now_;
}

Cycle Cluster::next_event_cycle() const {
  Cycle next = kNeverCycle;
  for (CoreId c : active_cores_) {
    next = std::min(next, cores_[c]->next_event(now_));
    if (next <= now_) return now_;
  }
  next = std::min(next, interconnect_->next_event(now_));
  if (next <= now_) return now_;
  next = std::min(next, l2_->next_event(now_));
  if (next <= now_) return now_;
  next = std::min(next, dram_->next_event(now_));
  return std::max(next, now_);
}

void Cluster::step(Cycle cycles) {
  // Always dense: examples and reconfiguration demos rely on exact
  // cycle-by-cycle stepping regardless of the configured scheduler.
  for (Cycle i = 0; i < cycles; ++i) tick_once();
}

bool Cluster::finished() const {
  for (CoreId c : active_cores_) {
    if (!cores_[c]->done()) return false;
  }
  return interconnect_->idle() && l2_->idle() && dram_->idle();
}

SimResult Cluster::run() {
  if (cfg_.scheduler == SchedulerMode::kDenseTick) {
    while (!finished()) {
      if (now_ >= cfg_.max_cycles) {
        throw std::runtime_error("simulation exceeded max_cycles — livelock?");
      }
      tick_once();
    }
    return collect_result();
  }

  // Event-driven: whenever nothing can happen this cycle, jump straight to
  // the earliest future event, batch-accounting the skipped cycles on every
  // core so all statistics stay bit-identical to the dense reference.
  while (!finished()) {
    if (now_ >= cfg_.max_cycles) {
      throw std::runtime_error("simulation exceeded max_cycles — livelock?");
    }
    const Cycle next = next_event_cycle();
    if (next > now_) {
      if (next == kNeverCycle) {
        throw std::runtime_error(
            "deadlock: no component reports a future event but the run has "
            "not finished");
      }
      const Cycle target = std::min(next, cfg_.max_cycles);
      for (CoreId c : active_cores_) cores_[c]->skip(now_, target);
      now_ = target;
      continue;
    }
    tick_once_event();
  }
  return collect_result();
}

SimResult Cluster::collect_result() const {
  SimResult r;
  r.app = cfg_.app.name;
  r.fabric = fabric_name(cfg_.fabric);
  r.power_state = cfg_.power_state.name();
  r.dram_latency_ns = cfg_.dram.access_latency_ns;
  r.cycles = now_;
  r.l2_latency = l2_latency_;
  r.l2_hit_latency = l2_hit_latency_;
  r.l2 = l2_->stats();
  r.dram = dram_->stats();
  r.interconnect = interconnect_->stats();
  r.l2_resident_lines = l2_->resident_lines();

  const power::CorePowerModel core_model(cfg_.core_power);
  std::uint64_t l1d_miss = 0, l1d_acc = 0, l1i_miss = 0, l1i_acc = 0;
  for (CoreId c : active_cores_) {
    const cpu::Core& core = *cores_[c];
    r.cores.push_back(core.stats());
    r.instructions += core.stats().instructions;
    l1d_miss += core.l1d_stats().misses();
    l1d_acc += core.l1d_stats().accesses();
    l1i_miss += core.l1i_stats().misses();
    l1i_acc += core.l1i_stats().accesses();

    r.energy.add_dynamic(power::Component::kCore,
                         static_cast<double>(core.stats().instructions) *
                             cfg_.core_power.energy_per_instr_pj);
    r.energy.add_dynamic(power::Component::kCore,
                         core_model.spin_pj(core.stats().spin_cycles));
    r.energy.add_static(power::Component::kCore, core_model.static_pj(now_));
    r.energy.add_dynamic(power::Component::kL1,
                         static_cast<double>(core.l1_accesses()) *
                             cfg_.core_power.energy_per_l1_access_pj);
  }
  r.l1d_miss_rate =
      l1d_acc == 0 ? 0.0 : static_cast<double>(l1d_miss) / static_cast<double>(l1d_acc);
  r.l1i_miss_rate =
      l1i_acc == 0 ? 0.0 : static_cast<double>(l1i_miss) / static_cast<double>(l1i_acc);

  r.energy.add_dynamic(power::Component::kL2, l2_->stats().dynamic_energy_pj);
  r.energy.add_static(power::Component::kL2,
                      l2_->leakage_mw() * static_cast<double>(now_));
  r.energy.add_dynamic(power::Component::kInterconnect,
                       interconnect_->dynamic_energy_pj());
  r.energy.add_static(power::Component::kInterconnect,
                      interconnect_->leakage_mw() * static_cast<double>(now_));
  r.energy.add_dynamic(power::Component::kDram, dram_->stats().dynamic_energy_pj);

  r.edp_pj_s = r.energy.edp_pj_s(now_);
  r.avg_power_w = r.energy.average_power_w(now_);
  return r;
}

ClusterConfig make_paper_config(const workload::AppProfile& app, Fabric fabric,
                                const core::PowerState& state,
                                mem::DramPreset dram_preset, double scale,
                                std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.app = app;
  cfg.fabric = fabric;
  cfg.power_state = state;
  cfg.dram_preset = dram_preset;
  cfg.scale = scale;
  cfg.seed = seed;
  return cfg;
}

}  // namespace mot3d::cluster
