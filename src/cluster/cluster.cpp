#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace mot3d::cluster {

const char* scheduler_name(SchedulerMode m) {
  switch (m) {
    case SchedulerMode::kEventDriven: return "event";
    case SchedulerMode::kDenseTick: return "dense";
  }
  return "?";
}

const char* fabric_name(Fabric f) {
  switch (f) {
    case Fabric::kMot: return "3-D MoT";
    case Fabric::kTrueMesh3d: return "True 3-D Mesh";
    case Fabric::kHybridBusMesh: return "3-D Hybrid Bus-Mesh";
    case Fabric::kHybridBusTree: return "3-D Hybrid Bus-Tree";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  // ---- derive Table I timing/energy from the CACTI-lite model ----
  const cacti::SramBankResult bank = cacti::evaluate(cfg_.l2_bank_sram);
  cfg_.l2.total_banks = cfg_.total_banks;
  cfg_.l2.bank_capacity_bytes = cfg_.l2_bank_sram.capacity_bytes;
  cfg_.l2.associativity = cfg_.l2_bank_sram.associativity;
  cfg_.l2.line_bytes = cfg_.l2_bank_sram.line_bytes;
  cfg_.l2.access_cycles =
      cacti::access_cycles(cfg_.l2_bank_sram, cfg_.tech.clock_period_ns);
  cfg_.l2.read_energy_pj = bank.read_energy_pj;
  cfg_.l2.write_energy_pj = bank.write_energy_pj;
  cfg_.l2.leakage_mw_per_bank = bank.leakage_mw;
  cfg_.dram.access_latency_ns = mem::dram_latency_ns(cfg_.dram_preset);
  cfg_.core.l2_banks = cfg_.total_banks;
  cfg_.floorplan.max_cores = cfg_.total_cores;
  cfg_.floorplan.max_banks = cfg_.total_banks;

  if (cfg_.power_state.total_cores() != cfg_.total_cores ||
      cfg_.power_state.total_banks() != cfg_.total_banks) {
    throw std::invalid_argument("power state does not match cluster shape");
  }
  if (cfg_.fabric != Fabric::kMot &&
      (cfg_.power_state.active_cores() != cfg_.total_cores ||
       cfg_.power_state.active_banks() != cfg_.total_banks)) {
    throw std::invalid_argument(
        "packet-switched baselines only run the full (ungated) configuration");
  }
  // The packet-switched topology builders lay out a fixed 4x4x3 tile grid;
  // only the MoT's tree construction is parametric in the cluster shape.
  if (cfg_.fabric != Fabric::kMot &&
      (cfg_.total_cores != 16 || cfg_.total_banks != 32)) {
    throw std::invalid_argument(
        "packet-switched baselines are hardwired to the 16-core/32-bank "
        "Table I cluster; scale-out shapes run the MoT fabric only");
  }

  // ---- memory system ----
  // DRAM requesters: one Miss-bus slot per bank + one per core (I-refills).
  if (cfg_.stacked_dram) {
    auto stacked = std::make_unique<dram3d::StackedDram>(
        cfg_.dram3d, cfg_.total_banks + cfg_.total_cores);
    stacked_ = stacked.get();
    dram_ = std::move(stacked);
  } else {
    dram_ = std::make_unique<mem::DramBackend>(
        cfg_.dram, cfg_.total_banks + cfg_.total_cores);
  }
  l2_ = std::make_unique<mem::L2System>(cfg_.l2, *dram_, /*dram_requester_base=*/0);
  l2_->set_active_banks(cfg_.power_state.bank_mask());

  // Sharing-pattern workloads engage the directory-MESI subsystem; without
  // one the L2 and cores behave bit-identically to the coherence-free model.
  if (cfg_.app.coherent()) {
    coherence::CoherenceConfig cc;
    cc.total_cores = cfg_.total_cores;
    cc.total_banks = cfg_.total_banks;
    cc.line_bytes = cfg_.l2.line_bytes;
    coh_dir_ = std::make_unique<coherence::CoherenceDirectory>(cc);
    l2_->attach_directory(coh_dir_.get());
  }

  // ---- interconnect ----
  mot_timing_ = std::make_unique<core::MotTimingModel>(cfg_.tech, cfg_.floorplan,
                                                       cfg_.l2_bank_sram);
  if (cfg_.fabric == Fabric::kMot) {
    core::MotInterconnectConfig mic;
    mic.bank_hold_cycles = cfg_.l2.service_cycles;
    auto mot = std::make_unique<core::MotInterconnect>(*mot_timing_,
                                                       cfg_.power_state, mic);
    mot_ = mot.get();
    interconnect_ = std::move(mot);
  } else {
    cfg_.noc.num_cores = cfg_.total_cores;
    cfg_.noc.num_banks = cfg_.total_banks;
    cfg_.noc.line_bytes = cfg_.l2.line_bytes;
    const power::InterconnectPowerModel pm(phys::WireModel(cfg_.tech),
                                           cfg_.router_power);
    noc::NocTopology topo = noc::NocTopology::kTrueMesh3d;
    if (cfg_.fabric == Fabric::kHybridBusMesh) topo = noc::NocTopology::kHybridBusMesh;
    if (cfg_.fabric == Fabric::kHybridBusTree) topo = noc::NocTopology::kHybridBusTree;
    auto noc = noc::make_noc(topo, cfg_.noc, pm);
    noc_ = noc.get();
    interconnect_ = std::move(noc);
  }

  // No sinks are registered: the interconnect batches its deliveries and
  // the scheduler drains them right after its tick (responses first, then
  // requests — see drain_fabric_deliveries()).  The L2 injects responses
  // straight into the transport, no std::function hop.
  l2_->set_transport(interconnect_.get());

  // ---- workload & cores ----
  workload_ = std::make_unique<workload::Workload>(
      cfg_.app, cfg_.power_state.active_cores(), cfg_.scale, cfg_.seed);
  barriers_.set_participants(cfg_.power_state.active_cores());

  cores_.resize(cfg_.total_cores, nullptr);
  traces_.resize(cfg_.total_cores);
  auto ifetch_issue = [this](CoreId c, Addr addr, Cycle now) {
    // Instruction refills ride the Miss bus straight to DRAM (paper §II);
    // requester slots for cores sit after the banks.
    dram_->read(static_cast<std::uint32_t>(cfg_.total_banks + c), addr, now,
                [this, c](std::uint32_t, Addr a, Cycle done) {
                  cores_[c]->on_ifetch_refill(a, done);
                });
  };
  // Reserve up front: cores_[] holds raw pointers into the arena, which
  // must therefore never reallocate.
  core_arena_.reserve(cfg_.power_state.active_cores());
  for (std::size_t t = 0; t < cfg_.power_state.active_cores(); ++t) {
    const CoreId c = cfg_.power_state.core_of_thread(t);
    traces_[c] = workload_->make_trace(t);
    core_arena_.emplace_back(c, cfg_.core, *traces_[c], barriers_, ifetch_issue);
    cores_[c] = &core_arena_.back();
    if (cfg_.warm_instruction_caches) {
      cores_[c]->warm_l1i(workload::AddressMap::kCodeBase, cfg_.app.code_bytes);
    }
    active_cores_.push_back(c);
  }

  // ---- thermal subsystem (opt-in; inert otherwise) ----
  if (cfg_.thermal.enabled) {
    thermal_ = std::make_unique<thermal::ThermalModel>(cfg_.thermal,
                                                       cfg_.floorplan, cfg_.tech);
    thermal::GovernorConfig gc;
    gc.ceiling_c = cfg_.thermal.ceiling_c;
    gc.hysteresis_c = cfg_.thermal.hysteresis_c;
    gc.allow_bank_gating = cfg_.fabric == Fabric::kMot;
    gc.min_banks = cfg_.thermal.governor_min_banks;
    gc.max_hold_intervals = cfg_.thermal.governor_max_hold_intervals;
    governor_ = std::make_unique<thermal::ThermalGovernor>(gc, cfg_.power_state);
    prev_core_instr_.assign(cfg_.total_cores, 0);
    prev_core_spin_.assign(cfg_.total_cores, 0);
    prev_core_l1_.assign(cfg_.total_cores, 0);
    prev_bank_accesses_.assign(cfg_.total_banks, 0);
    next_thermal_cycle_ = cfg_.thermal.sample_interval_cycles;
    if (stacked_ != nullptr) {
      vault_temp_c_.assign(stacked_->num_vaults(), cfg_.thermal.ambient_c);
      prev_vault_energy_.assign(stacked_->num_vaults(), 0.0);
      if (cfg_.vault_remap.enabled) {
        vault_remap_ =
            std::make_unique<dram3d::VaultRemapPolicy>(cfg_.vault_remap);
      }
    }
  }

  // Both the thermal governor and the fault-degradation path gate banks
  // through the same drain -> flush -> remap sequencer (MoT only: packet
  // fabrics have no reconfiguration path).
  if (mot_ != nullptr && (cfg_.thermal.enabled || cfg_.fault.enabled)) {
    reconfig_ = std::make_unique<core::ReconfigManager>(*mot_, *l2_, *dram_);
    reconfig_->set_directory(coh_dir_.get());
  }

  // ---- fault injection + watchdog (opt-in; inert otherwise) ----
  if (cfg_.fault.enabled) {
    fault_sched_ = std::make_unique<fault::FaultSchedule>(
        cfg_.fault, mot_ != nullptr, cfg_.total_banks,
        noc_ != nullptr ? noc_->num_routers() : 0);
    degrade_ = std::make_unique<fault::DegradationManager>(
        mot_ != nullptr, cfg_.fault.min_banks,
        stacked_ != nullptr ? stacked_->num_vaults() : 0);
    if (mot_ != nullptr) {
      mot_->set_fault_retry_energy_pj(cfg_.fault.retry_energy_pj);
    }
  }
  // The watchdog auto-engages on fault runs: a fault schedule can wedge the
  // simulation by construction, so those runs always get progress checks.
  if (cfg_.watchdog.enabled || cfg_.fault.enabled) {
    watchdog_ = std::make_unique<fault::Watchdog>(cfg_.watchdog);
  }

  // ---- observability (opt-in; inert otherwise) ----
  // The trace sink engages for full tracing, an explicit flight recorder,
  // or implicitly on fault runs with a progress watchdog (bounded ring,
  // dumped with the parked state).  Timeout-only watchdogs — the perf
  // guardrail's --timeout — never pay for event recording.
  const bool flight_only =
      !cfg_.obs.trace &&
      (cfg_.obs.flight_recorder || (watchdog_ != nullptr && cfg_.fault.enabled));
  if (cfg_.obs.trace || flight_only) {
    trace_ = std::make_shared<obs::TraceBuffer>(
        flight_only ? cfg_.obs.flight_recorder_events : 0);
    trk_governor_ = trace_->add_track("governor");
    trk_fabric_ = trace_->add_track("fabric");
    trk_fault_ = trace_->add_track("faults");
    trk_core_base_ = trace_->track_count();
    for (CoreId c = 0; c < cfg_.total_cores; ++c) {
      trace_->add_track("core " + std::to_string(c));
    }
    trk_bank_base_ = trace_->track_count();
    for (BankId b = 0; b < cfg_.total_banks; ++b) {
      trace_->add_track("l2 bank " + std::to_string(b));
    }
    if (stacked_ != nullptr) trk_dram_ = trace_->add_track("dram vaults");
    interconnect_->set_trace(trace_.get(), trk_fabric_);
    l2_->set_trace(trace_.get(), trk_bank_base_);
  }
  obs_hist_ = cfg_.obs.enabled();
  if (obs_hist_) {
    dram_->set_service_observer([this](Cycle lat) { obs_dram_.record(lat); });
    if (stacked_ != nullptr) {
      obs_vault_.resize(stacked_->num_vaults());
      stacked_->set_vault_service_observer(
          [this](std::size_t v, Cycle lat) { obs_vault_[v].record(lat); });
    }
  }
  if (cfg_.obs.metrics) {
    metrics_ =
        std::make_shared<obs::MetricsRegistry>(cfg_.obs.metrics_epoch_cycles);
    metrics_->add("cluster.instructions", [this] {
      std::uint64_t n = 0;
      for (const cpu::Core& core : core_arena_) n += core.stats().instructions;
      return static_cast<double>(n);
    });
    // Aggregate latency probes carry an emptiness predicate: an empty stat
    // exports as JSON null, never as the fabricated 0.0 the accessors of
    // common/stats.hpp return before the first sample.
    metrics_->add(
        "cluster.l2_latency_mean", [this] { return l2_latency_.mean(); },
        [this] { return l2_latency_.count() == 0; });
    metrics_->add(
        "cluster.l2_latency_max",
        [this] { return static_cast<double>(l2_latency_.max()); },
        [this] { return l2_latency_.count() == 0; });
    interconnect_->register_metrics(*metrics_, "fabric");
    l2_->register_metrics(*metrics_, "l2");
    dram_->register_metrics(*metrics_, "dram");
    if (coh_dir_ != nullptr) coh_dir_->register_metrics(*metrics_, "coherence");
    if (thermal_ != nullptr) thermal_->register_metrics(*metrics_, "thermal");
    metrics_->add_prepare([this] {
      obs_ledger_ = power::EnergyLedger{};
      accumulate_dynamic_energy(obs_ledger_);
    });
    obs_ledger_.register_metrics(*metrics_, "energy");
    next_metrics_cycle_ = cfg_.obs.metrics_epoch_cycles;
  }
  if (cfg_.obs.phase_timing) {
    phase_timer_ = std::make_unique<obs::PhaseTimer>();
  }
}

Cluster::~Cluster() = default;

void Cluster::deliver_response(const MemResponse& resp) {
  assert(cores_[resp.core] != nullptr);
  if (resp.kind == RespKind::kInvalidate) {
    // Fault injection: a dropped invalidation never reaches the L1 snoop
    // controller, so its ack never returns — the directory transaction
    // wedges (this is the watchdog's directed-test stimulus).
    if (drop_invalidates_remaining_ > 0) {
      --drop_invalidates_remaining_;
      if (trace_ != nullptr) {
        trace_->instant("drop_invalidate", trk_fault_, now_, "core", resp.core,
                        "addr", resp.addr);
      }
      return;
    }
    // Directory control traffic, not a request's answer: no latency
    // sample, and legal in any core state.
    if (trace_ != nullptr) {
      trace_->instant("Invalidate", trk_core_base_ + resp.core, now_, "bank",
                      resp.bank, "addr", resp.addr);
    }
    cores_[resp.core]->on_coherence_invalidate(resp, now_);
    return;
  }
  const Cycle lat = now_ - resp.issue_cycle;
  l2_latency_.add(lat);
  if (resp.l2_hit) l2_hit_latency_.add(lat);
  if (obs_hist_) obs_l2_rt_.record(lat);
  if (trace_ != nullptr) {
    trace_->complete(resp_kind_name(resp.kind), trk_core_base_ + resp.core,
                     resp.issue_cycle, lat, "bank", resp.bank, "hit",
                     resp.l2_hit ? 1 : 0);
  }
  cores_[resp.core]->on_response(resp, now_);
}

void Cluster::drain_fabric_deliveries() {
  // Responses touch core state; requests touch bank queues and directory
  // slices — disjoint within a tick, and within each class the batch
  // preserves delivery order, so this is bit-identical to per-message
  // dispatch from inside the interconnect's tick.
  const std::vector<MemResponse>& resps = interconnect_->delivered_responses();
  const std::vector<MemRequest>& reqs = interconnect_->delivered_requests();
  if (resps.empty() && reqs.empty()) return;
  for (const MemResponse& resp : resps) deliver_response(resp);
  for (const MemRequest& req : reqs) {
    // Invalidation round-trip: invalidate delivery at the core (the ack's
    // issue cycle) to acknowledgement arrival back at the bank.
    if (req.kind == ReqKind::kInvAck || req.kind == ReqKind::kDataForward) {
      if (obs_hist_) obs_inv_rt_.record(now_ - req.issue_cycle);
      if (trace_ != nullptr) {
        trace_->complete(req_kind_name(req.kind), trk_bank_base_ + req.bank,
                         req.issue_cycle, now_ - req.issue_cycle, "core",
                         req.core, "addr", req.addr);
      }
    }
    l2_->deliver(req, now_);
  }
  interconnect_->clear_deliveries();
}

void Cluster::inject_core_traffic() {
  inject_coherence_acks();
  inject_demand_requests();
}

void Cluster::inject_coherence_acks() {
  // Coherence acknowledgements first: they unblock stalled directory
  // transactions and flow even while the cores' clocks are held (the L1
  // snoop controller is not on the gated core clock).
  if (coh_dir_ == nullptr) return;
  for (cpu::Core& core : core_arena_) {
    while (core.pending_coherence() != nullptr &&
           interconnect_->try_inject_request(*core.pending_coherence(), now_)) {
      if (trace_ != nullptr) {
        // Accepted injections only — a failed try is a poll, and polls
        // differ between the schedulers.
        const MemRequest& req = *core.pending_coherence();
        trace_->instant(req_kind_name(req.kind), trk_core_base_ + req.core,
                        now_, "bank", req.bank, "addr", req.addr);
      }
      core.coherence_accepted(now_);
    }
  }
}

void Cluster::inject_demand_requests() {
  if (cores_frozen_) return;
  for (cpu::Core& core : core_arena_) {
    if (core.pending_request().has_value() &&
        interconnect_->try_inject_request(*core.pending_request(), now_)) {
      if (trace_ != nullptr) {
        const MemRequest& req = *core.pending_request();
        trace_->instant(req_kind_name(req.kind), trk_core_base_ + req.core,
                        now_, "bank", req.bank, "addr", req.addr);
      }
      core.injection_accepted(now_);
    }
  }
}

void Cluster::tick_once() {
  if (phase_timer_ != nullptr && phase_timer_->should_sample()) {
    tick_once_timed(/*event_mode=*/false);
    return;
  }
  // Frozen cores are clock-held: no tick, no injection retry.  They are
  // also excluded from event-mode skip accounting, so both schedulers see
  // identical (frozen) core statistics.
  if (!cores_frozen_) {
    for (cpu::Core& core : core_arena_) core.tick(now_);
  }
  inject_core_traffic();
  interconnect_->tick(now_);
  drain_fabric_deliveries();
  l2_->tick(now_);
  dram_->tick(now_);
  ++now_;
}

// Identical to tick_once() except that each component is ticked only when
// its next-event contract says this cycle can change its state — skipped
// ticks are no-ops by that contract, so results are unchanged.  The gates
// are evaluated just-in-time because earlier phases of the same cycle may
// stimulate later components (core -> interconnect -> L2 -> DRAM).
void Cluster::tick_once_event() {
  if (phase_timer_ != nullptr && phase_timer_->should_sample()) {
    tick_once_timed(/*event_mode=*/true);
    return;
  }
  if (!cores_frozen_) {
    for (cpu::Core& core : core_arena_) core.tick(now_);
  }
  inject_core_traffic();
  if (interconnect_->next_event(now_) <= now_) {
    interconnect_->tick(now_);
    drain_fabric_deliveries();
  }
  if (l2_->next_event(now_) <= now_) l2_->tick(now_);
  if (dram_->next_event(now_) <= now_) dram_->tick(now_);
  ++now_;
}

void Cluster::tick_once_timed(bool event_mode) {
  // Same phase order as the untimed ticks; steady_clock stamps between
  // phases attribute host wall time.  drain_fabric_deliveries() touches
  // core and bank state but runs on behalf of the fabric's deliveries, so
  // its cost is charged to the fabric phase (documented convention).
  using PT = obs::PhaseTimer;
  const auto t0 = PT::clock::now();
  if (!cores_frozen_) {
    for (cpu::Core& core : core_arena_) core.tick(now_);
  }
  const auto t1 = PT::clock::now();
  phase_timer_->add(PT::kWorkload, t0, t1);
  inject_coherence_acks();
  const auto t2 = PT::clock::now();
  phase_timer_->add(PT::kCoherence, t1, t2);
  inject_demand_requests();
  if (!event_mode || interconnect_->next_event(now_) <= now_) {
    interconnect_->tick(now_);
    drain_fabric_deliveries();
  }
  const auto t3 = PT::clock::now();
  phase_timer_->add(PT::kFabric, t2, t3);
  if (!event_mode || l2_->next_event(now_) <= now_) l2_->tick(now_);
  const auto t4 = PT::clock::now();
  phase_timer_->add(PT::kL2, t3, t4);
  if (!event_mode || dram_->next_event(now_) <= now_) dram_->tick(now_);
  const auto t5 = PT::clock::now();
  phase_timer_->add(PT::kDram, t4, t5);
  ++now_;
}

Cycle Cluster::next_event_cycle() const {
  Cycle next = kNeverCycle;
  // Thermal boundaries and the post-reconfiguration unfreeze point are
  // events: the jump must land on them exactly, as the dense loop does.
  if (thermal_ != nullptr) {
    next = std::min(next, next_thermal_cycle_);
  }
  if (metrics_ != nullptr) {
    // Metrics epoch boundaries are events exactly like thermal boundaries,
    // so both schedulers sample at identical cycles.
    next = std::min(next, next_metrics_cycle_);
  }
  if (fault_sched_ != nullptr) {
    // The next scheduled fault is an event: the jump must land on it so
    // both schedulers inject at the same cycle.  A drain in progress (or a
    // deferred hard fault behind it) resolves through component events, but
    // the post-reconfiguration unfreeze point is time-only.
    const auto& evs = fault_sched_->events();
    if (fault_event_idx_ < evs.size()) {
      next = std::min(next, std::max(evs[fault_event_idx_].cycle, now_));
    }
  }
  if ((thermal_ != nullptr || fault_sched_ != nullptr) && cores_frozen_ &&
      frozen_until_ > now_) {
    next = std::min(next, frozen_until_);
  }
  if (watchdog_ != nullptr) {
    next = std::min(next, watchdog_->next_check_cycle());
  }
  if (!cores_frozen_) {
    for (const cpu::Core& core : core_arena_) {
      next = std::min(next, core.next_event(now_));
      if (next <= now_) return now_;
    }
  } else if (coh_dir_ != nullptr) {
    // Clock-held cores still inject coherence acknowledgements — a queued
    // ack is an every-cycle event even while the instruction stream halts.
    for (const cpu::Core& core : core_arena_) {
      if (core.pending_coherence() != nullptr) return now_;
    }
  }
  next = std::min(next, interconnect_->next_event(now_));
  if (next <= now_) return now_;
  next = std::min(next, l2_->next_event(now_));
  if (next <= now_) return now_;
  next = std::min(next, dram_->next_event(now_));
  return std::max(next, now_);
}

void Cluster::step(Cycle cycles) {
  // Always dense: examples and reconfiguration demos rely on exact
  // cycle-by-cycle stepping regardless of the configured scheduler.
  for (Cycle i = 0; i < cycles; ++i) tick_once();
}

bool Cluster::finished() const {
  for (const cpu::Core& core : core_arena_) {
    if (!core.done()) return false;
    if (core.pending_coherence() != nullptr) return false;
  }
  return interconnect_->idle() && l2_->idle() && dram_->idle();
}

SimResult Cluster::run() {
  if (cfg_.scheduler == SchedulerMode::kDenseTick) {
    while (!finished()) {
      if (now_ >= cfg_.max_cycles) {
        throw std::runtime_error("simulation exceeded max_cycles — livelock?\n" +
                                 progress_dump());
      }
      poll();
      if (run_failed_) break;  // unrecoverable fault: structured outcome
      tick_once();
    }
  } else {
    // Event-driven: whenever nothing can happen this cycle, jump straight
    // to the earliest future event, batch-accounting the skipped cycles on
    // every core so all statistics stay bit-identical to the dense
    // reference.
    while (!finished()) {
      if (now_ >= cfg_.max_cycles) {
        throw std::runtime_error("simulation exceeded max_cycles — livelock?\n" +
                                 progress_dump());
      }
      poll();
      if (run_failed_) break;
      const Cycle next = next_event_cycle();
      if (next > now_) {
        if (next == kNeverCycle) {
          // With a watchdog engaged its next check is always a future
          // event, so this branch only fires on watchdog-less wedges.
          throw std::runtime_error(
              "deadlock: no component reports a future event but the run "
              "has not finished\n" +
              progress_dump());
        }
        const Cycle target = std::min(next, cfg_.max_cycles);
        if (!cores_frozen_) {
          for (cpu::Core& core : core_arena_) core.skip(now_, target);
        }
        now_ = target;
        continue;
      }
      tick_once_event();
    }
  }
  thermal_finalize();
  obs_finalize();
  return collect_result();
}

void Cluster::poll() {
  // thermal_poll() is the exact pre-fault sequence: keeping it byte-for-
  // byte intact keeps every thermal-only golden byte-identical.  Fault
  // polling re-folds the freeze signal afterwards because a fault-initiated
  // drain freezes the cores through the same machinery.
  thermal_poll();
  if (fault_sched_ != nullptr) {
    fault_poll();
    set_frozen(draining_ || governor_hold_ || now_ < frozen_until_);
  }
  if (watchdog_ != nullptr) watchdog_poll();
  metrics_poll();
}

void Cluster::metrics_poll() {
  // Exact boundary match, mirroring thermal sampling: the dense loop walks
  // every cycle and the event loop's jump lands on the boundary exactly
  // (next_event_cycle() includes it), so `==` holds for both.
  if (metrics_ == nullptr || now_ != next_metrics_cycle_) return;
  metrics_->sample(now_);
  next_metrics_cycle_ = now_ + cfg_.obs.metrics_epoch_cycles;
}

void Cluster::obs_finalize() {
  // Tail sample at the run's final cycle (unless it landed on a boundary)
  // so short runs export at least one row.  Both schedulers finish at the
  // same now_, so the tail row is deterministic too.
  if (metrics_ != nullptr && metrics_->last_sample_cycle() != now_) {
    metrics_->sample(now_);
  }
}

void Cluster::set_frozen(bool frozen) {
  if (frozen == cores_frozen_) return;
  cores_frozen_ = frozen;
  if (frozen) {
    freeze_begin_ = now_;
  } else {
    throttled_cycles_ += now_ - freeze_begin_;
  }
}

void Cluster::try_complete_drain() {
  // A pending drain completes once the transport is quiescent.  Two kinds
  // ride the same machinery (mutually exclusive): a reconfiguration drain
  // (apply the power state, pay the ctr reprogramming delay frozen) and a
  // stacked-DRAM vault swap (exchange the logical map, pay the migration
  // freeze).
  if (!(draining_ && interconnect_->idle() && l2_->idle() && dram_->idle())) {
    return;
  }
  if (drain_target_.has_value()) {
    const core::ReconfigCost cost = reconfig_->apply(*drain_target_, now_);
    governor_flush_pj_ += cost.flush_energy_pj;
    frozen_until_ = now_ + cost.reprogram_cycles;
    if (trace_ != nullptr) {
      trace_->complete("reconfig_drain", trk_governor_, drain_begin_,
                       now_ - drain_begin_, "reprogram_cycles",
                       cost.reprogram_cycles);
    }
    draining_ = false;
    drain_target_.reset();
  } else if (pending_vault_swap_.has_value()) {
    stacked_->swap_physical(pending_vault_swap_->hot, pending_vault_swap_->cool,
                            now_);
    frozen_until_ = now_ + cfg_.vault_remap.migrate_freeze_cycles;
    if (trace_ != nullptr) {
      trace_->complete("vault_remap", trk_dram_, drain_begin_,
                       now_ - drain_begin_, "hot", pending_vault_swap_->hot,
                       "cool", pending_vault_swap_->cool);
    }
    draining_ = false;
    pending_vault_swap_.reset();
  } else {
    draining_ = false;  // defensive: drain with no payload
  }
}

void Cluster::fault_poll() {
  // 1) Mid-drain completion: identical contract to the thermal governor's
  //    drain (the component tick that emptied the transport is an event,
  //    so both schedulers poll the cycle after it).
  try_complete_drain();

  // 2) A hard fault that arrived while an earlier drain was in flight was
  //    deferred; re-evaluate it against the *current* state now that the
  //    transport is reconfigurable again.  One per poll keeps the drain
  //    sequencing simple and deterministic.
  if (!draining_ && !deferred_faults_.empty()) {
    const fault::FaultEvent ev = deferred_faults_.front();
    deferred_faults_.pop_front();
    apply_fault(ev);
    try_complete_drain();
  }

  // 3) Fire every scheduled fault due at or before this cycle (the event
  //    scheduler lands on each fault cycle exactly; the dense loop walks
  //    through it).
  const auto& evs = fault_sched_->events();
  while (fault_event_idx_ < evs.size() && evs[fault_event_idx_].cycle <= now_) {
    ++fault_summary_.injected;
    if (trace_ != nullptr) {
      // Recorded at the injection poll, not inside apply_fault(): a bank
      // gate deferred behind a drain re-applies later and would otherwise
      // emit twice.
      const fault::FaultEvent& ev = evs[fault_event_idx_];
      trace_->instant(fault::fault_kind_name(ev.kind), trk_fault_, now_,
                      "target", ev.target, "magnitude", ev.magnitude);
    }
    apply_fault(evs[fault_event_idx_]);
    ++fault_event_idx_;
    // If the fabric happens to be idle the drain completes *now* — waiting
    // for a later poll would desynchronise the schedulers (no component
    // events exist while everything is idle).
    try_complete_drain();
  }
}

void Cluster::apply_fault(const fault::FaultEvent& ev) {
  const core::PowerState& current = mot_ != nullptr ? mot_->state() : cfg_.power_state;
  const fault::DegradeAction act =
      degrade_->react(ev, current, cfg_.fault.degrade_penalty_cycles);
  switch (act.kind) {
    case fault::DegradeActionKind::kNone:
      ++fault_summary_.recovered;  // already masked by an earlier action
      break;
    case fault::DegradeActionKind::kDegradeMotBank:
      assert(mot_ != nullptr);
      mot_->add_bank_fault_penalty(act.unit, act.penalty_cycles);
      fault_repair_pj_ += cfg_.fault.repair_energy_pj;
      ++fault_summary_.recovered;
      mark_degraded();
      break;
    case fault::DegradeActionKind::kThrottleRouter:
      assert(noc_ != nullptr);
      noc_->set_router_throttle(act.unit, act.penalty_cycles);
      fault_repair_pj_ += cfg_.fault.repair_energy_pj;
      ++fault_summary_.recovered;
      mark_degraded();
      break;
    case fault::DegradeActionKind::kDropInvalidate:
      // Not a degradation the cluster can mask — it either wedges the run
      // (watchdog fires) or the line was not being invalidated anyway.
      drop_invalidates_remaining_ += ev.magnitude == 0 ? 1 : ev.magnitude;
      break;
    case fault::DegradeActionKind::kGateBanks:
      if (draining_) {
        // A drain is already in flight (thermal governor or an earlier
        // fault); queue this one behind it and re-react later.
        deferred_faults_.push_back(ev);
        return;
      }
      assert(act.target.has_value());
      ++fault_summary_.recovered;
      ++fault_summary_.bank_gate_events;
      fault_repair_pj_ += cfg_.fault.repair_energy_pj;
      mark_degraded();
      draining_ = true;
      drain_target_ = act.target;
      drain_begin_ = now_;
      break;
    case fault::DegradeActionKind::kFailVault: {
      assert(stacked_ != nullptr);
      std::string note;
      if (stacked_->fail_vault(act.unit, now_, &note)) {
        ++fault_summary_.recovered;
        fault_repair_pj_ += cfg_.fault.repair_energy_pj;
        mark_degraded();
        if (trace_ != nullptr) {
          trace_->instant("vault_fail", trk_dram_, now_, "vault", act.unit);
        }
      } else {
        ++fault_summary_.unrecoverable;
        run_failed_ = true;
        fail_reason_ = fault::fault_kind_name(ev.kind) +
                       (" on unit " + std::to_string(ev.target)) + ": " + note;
      }
      break;
    }
    case fault::DegradeActionKind::kUnrecoverable:
      ++fault_summary_.unrecoverable;
      run_failed_ = true;
      fail_reason_ = fault::fault_kind_name(ev.kind) +
                     (" on unit " + std::to_string(ev.target)) + ": " + act.note;
      break;
  }
}

void Cluster::watchdog_poll() {
  // Cheap guard first: the signature walk is O(cores + banks) and must not
  // run every dense-mode cycle.
  if (now_ < watchdog_->next_check_cycle()) return;
  switch (watchdog_->poll(now_, progress_signature())) {
    case fault::WatchdogVerdict::kOk:
      break;
    case fault::WatchdogVerdict::kStalled:
      throw fault::WatchdogError(
          "watchdog: no forward progress for " +
          std::to_string(watchdog_->stall_checks()) + " consecutive checks (" +
          std::to_string(watchdog_->check_interval_cycles()) +
          " cycles each) at cycle " + std::to_string(now_) + "\n" +
          progress_dump());
    case fault::WatchdogVerdict::kDeadlineExceeded:
      throw fault::WatchdogError(
          "watchdog: wall-clock deadline of " +
          std::to_string(watchdog_->wall_deadline_seconds()) +
          " s exceeded at cycle " + std::to_string(now_) + "\n" +
          progress_dump());
  }
}

std::uint64_t Cluster::progress_signature() const {
  // Counts only *work*: instructions retired and memory traffic serviced.
  // Stall/spin/idle cycle counters advance even while wedged and must not
  // contribute, or a wedge would look like progress.
  std::uint64_t sig = 0;
  for (const cpu::Core& core : core_arena_) {
    const cpu::CoreStats& st = core.stats();
    sig += st.instructions + st.l2_requests;
  }
  const mem::L2Stats& l2s = l2_->stats();
  sig += l2s.hits + l2s.misses + l2s.writebacks;
  const mem::DramStats& ds = dram_->stats();
  sig += ds.reads + ds.writes;
  const InterconnectStats& is = interconnect_->stats();
  sig += is.requests_delivered + is.responses_delivered;
  return sig;
}

std::string Cluster::progress_dump() const {
  std::ostringstream os;
  os << "-- parked state at cycle " << now_ << " --\n";
  for (CoreId c : active_cores_) {
    const cpu::Core& core = *cores_[c];
    os << "  core " << c << ": " << core.state_name() << ", "
       << core.stats().instructions << " instr";
    if (core.pending_request().has_value()) os << ", request waiting to inject";
    if (core.pending_coherence() != nullptr) os << ", coherence msg pending";
    os << "\n";
  }
  for (BankId b = 0; b < cfg_.total_banks; ++b) {
    if (!l2_->active_banks()[b]) continue;
    const mem::L2System::BankDebug dbg = l2_->bank_debug(b);
    if (dbg.in_queue == 0 && dbg.out_queue == 0 && dbg.misses_in_flight == 0 &&
        !dbg.coh_stalled) {
      continue;
    }
    os << "  bank " << b << ": in=" << dbg.in_queue << " out=" << dbg.out_queue
       << " misses=" << dbg.misses_in_flight;
    if (dbg.coh_stalled) {
      os << " coh-stalled (" << dbg.coh_acks_remaining << " acks outstanding)";
    }
    os << "\n";
  }
  os << "  transport: icn " << (interconnect_->idle() ? "idle" : "busy")
     << ", l2 " << (l2_->idle() ? "idle" : "busy") << ", dram "
     << (dram_->idle() ? "idle" : "busy")
     << (cores_frozen_ ? ", cores clock-held" : "");
  if (trace_ != nullptr && trace_->recorded() > 0) {
    os << "\n" << trace_->flight_dump(cfg_.obs.flight_recorder_events);
  }
  return os.str();
}

void Cluster::thermal_poll() {
  if (thermal_ == nullptr) return;

  // 1) Mid-interval drain completion (the component tick that emptied the
  //    transport is an event, so both schedulers poll the cycle after it).
  try_complete_drain();

  // 2) Sampling boundary: close the interval's power books, step the RC
  //    model, let the governor react.
  if (now_ == next_thermal_cycle_) {
    thermal_sample_interval();
    if (!draining_) {
      const thermal::GovernorDecision d = governor_->decide(thermal_->peak_c());
      if (d.reconfigure.has_value() && reconfig_ != nullptr &&
          !(*d.reconfigure == mot_->state())) {
        draining_ = true;
        drain_target_ = d.reconfigure;
        drain_begin_ = now_;
        if (trace_ != nullptr) {
          trace_->instant("demote", trk_governor_, now_, "peak_c_x100",
                          static_cast<std::uint64_t>(thermal_->peak_c() * 100.0),
                          "banks", d.reconfigure->active_banks());
        }
      }
      if (trace_ != nullptr && d.hold_cores && !governor_hold_) {
        trace_->instant("core_hold", trk_governor_, now_, "peak_c_x100",
                        static_cast<std::uint64_t>(thermal_->peak_c() * 100.0));
      }
      governor_hold_ = d.hold_cores;
    }
    update_vault_thermal();
    if (vault_remap_ != nullptr && !draining_ && !run_failed_) {
      std::vector<bool> alive(stacked_->num_vaults());
      for (std::size_t v = 0; v < alive.size(); ++v) {
        alive[v] = stacked_->vault_alive(v);
      }
      const std::optional<dram3d::VaultSwap> swap =
          vault_remap_->decide(vault_temp_c_, alive, now_);
      if (swap.has_value()) {
        draining_ = true;
        pending_vault_swap_ = swap;
        drain_begin_ = now_;
        if (trace_ != nullptr) {
          trace_->instant("vault_too_hot", trk_dram_, now_, "hot", swap->hot,
                          "cool", swap->cool);
        }
      }
    }
    // If the transport happens to be idle at the decision boundary the
    // drain is already complete: apply it *now*, in the poll itself.
    // Waiting for a later poll would desynchronise the schedulers — the
    // event loop sees no component events while everything is idle and
    // would only look again at the next sampling boundary.
    try_complete_drain();
    next_thermal_cycle_ = now_ + cfg_.thermal.sample_interval_cycles;
  }

  // 3) Cores are clock-held while draining, while the governor demands a
  //    hold, and through the reprogramming delay after a reconfiguration.
  set_frozen(draining_ || governor_hold_ || now_ < frozen_until_);
}

void Cluster::update_vault_thermal() {
  if (stacked_ == nullptr || thermal_ == nullptr) return;
  const thermal::ThermalFloorplan& flp = thermal_->floorplan();
  for (std::size_t v = 0; v < vault_temp_c_.size(); ++v) {
    vault_temp_c_[v] = thermal_->solver().tile_c(flp.vault_tile(v));
    if (stacked_->vault_alive(v) && vault_temp_c_[v] > peak_vault_c_) {
      peak_vault_c_ = vault_temp_c_[v];
      peak_vault_ = v;
    }
  }
}

void Cluster::thermal_sample_interval() {
  const Cycle interval = now_ - last_thermal_cycle_;
  if (interval > 0) {
    power::EnergyLedger snap;
    accumulate_dynamic_energy(snap);
    const power::EnergySample delta = snap.delta_since(thermal_prev_snap_);
    thermal_prev_snap_ = snap;
    thermal_->advance(thermal_build_sources(delta, interval), interval);
    // The clock tree is switching power, flat in temperature, and it
    // stops toggling while the cores are clock-held — charge it only for
    // the interval's unheld cycles (leakage keeps running either way).
    const std::uint64_t frozen_total =
        throttled_cycles_ + (cores_frozen_ ? now_ - freeze_begin_ : 0);
    const std::uint64_t frozen_in_interval = frozen_total - frozen_at_last_sample_;
    frozen_at_last_sample_ = frozen_total;
    clock_tree_pj_ += static_cast<double>(active_cores_.size()) *
                      cfg_.core_power.clock_tree_mw *
                      static_cast<double>(interval - frozen_in_interval);
  }
  last_thermal_cycle_ = now_;
}

thermal::ThermalSources Cluster::thermal_build_sources(
    const power::EnergySample& delta, Cycle interval) {
  const thermal::ThermalFloorplan& flp = thermal_->floorplan();
  thermal::ThermalSources src = thermal_->make_sources();
  const power::CorePowerModel core_model(cfg_.core_power);
  // pJ over `interval` 1 ns cycles -> watts.
  const double pj_to_w = 1e-3 / static_cast<double>(interval);

  // Cores: per-core dynamic energy from per-core counter deltas (finer
  // placement than the component ledger gives); leakage at reference
  // temperature — the model's fixed point applies the temperature law.
  for (CoreId c : active_cores_) {
    const cpu::CoreStats& st = cores_[c]->stats();
    const std::uint64_t d_instr = st.instructions - prev_core_instr_[c];
    const std::uint64_t d_spin = st.spin_cycles - prev_core_spin_[c];
    const std::uint64_t d_l1 = cores_[c]->l1_accesses() - prev_core_l1_[c];
    prev_core_instr_[c] = st.instructions;
    prev_core_spin_[c] = st.spin_cycles;
    prev_core_l1_[c] = cores_[c]->l1_accesses();
    const double pj =
        static_cast<double>(d_instr) * cfg_.core_power.energy_per_instr_pj +
        core_model.spin_pj(d_spin) +
        static_cast<double>(d_l1) * cfg_.core_power.energy_per_l1_access_pj;
    const std::size_t tile = flp.core_tile(c);
    src.dynamic_w[tile] += pj * pj_to_w;
    src.core_leak_ref_w[tile] += cfg_.core_power.leakage_mw * 1e-3;
  }

  // L2: the ledger's component delta, distributed over banks in proportion
  // to each bank's access-count delta (a bank gated mid-interval still
  // owns the heat it produced); equal split over powered banks when idle.
  const std::vector<bool>& banks_on = l2_->active_banks();
  std::vector<std::uint64_t> d_acc(cfg_.total_banks, 0);
  std::uint64_t total_acc = 0;
  std::size_t banks_active = 0;
  for (BankId b = 0; b < cfg_.total_banks; ++b) {
    const std::uint64_t acc = l2_->bank_cache_stats(b).accesses();
    d_acc[b] = acc - prev_bank_accesses_[b];
    prev_bank_accesses_[b] = acc;
    total_acc += d_acc[b];
    if (banks_on[b]) ++banks_active;
  }
  const double l2_pj = delta.dynamic(power::Component::kL2);
  for (BankId b = 0; b < cfg_.total_banks; ++b) {
    const std::size_t tile = flp.bank_tile(b);
    if (total_acc > 0) {
      if (d_acc[b] > 0) {
        src.dynamic_w[tile] += l2_pj *
                               (static_cast<double>(d_acc[b]) /
                                static_cast<double>(total_acc)) *
                               pj_to_w;
      }
    } else if (banks_on[b] && banks_active > 0) {
      src.dynamic_w[tile] +=
          l2_pj / static_cast<double>(banks_active) * pj_to_w;
    }
    if (banks_on[b]) {
      src.l2_leak_ref_w[tile] += cfg_.l2.leakage_mw_per_bank * 1e-3;
    }
  }

  // Interconnect: spread across the channel tiles of the active span (the
  // Fig. 5 span shrink concentrates the channel's heat after gating).
  const core::PowerState& state =
      mot_ != nullptr ? mot_->state() : cfg_.power_state;
  const std::vector<std::size_t> chan =
      flp.channel_tiles(state.active_cores(), state.active_banks());
  const double icn_pj = delta.dynamic(power::Component::kInterconnect);
  const double icn_leak_w = interconnect_->leakage_mw() * 1e-3;
  const double n_chan = static_cast<double>(chan.size());
  for (std::size_t tile : chan) {
    src.dynamic_w[tile] += icn_pj / n_chan * pj_to_w;
    src.icn_leak_ref_w[tile] += icn_leak_w / n_chan;
  }
  if (stacked_ != nullptr) {
    // Stacked DRAM is *in* the package: each vault's energy delta heats
    // the stacked-tier tile it is bonded onto (refresh and migration
    // energy included — they dissipate in the vault too).
    const std::vector<dram3d::VaultStats>& vs = stacked_->vault_stats();
    for (std::size_t v = 0; v < vs.size(); ++v) {
      const double d_pj = vs[v].energy_pj - prev_vault_energy_[v];
      prev_vault_energy_[v] = vs[v].energy_pj;
      if (d_pj > 0.0) src.dynamic_w[flp.vault_tile(v)] += d_pj * pj_to_w;
    }
  }
  // The constant-latency DRAM is off-cluster: its energy never enters the
  // stack.
  return src;
}

void Cluster::thermal_finalize() {
  if (thermal_ == nullptr) return;
  thermal_sample_interval();  // the partial tail since the last boundary
  set_frozen(false);          // close throttle accounting
}

void Cluster::accumulate_dynamic_energy(power::EnergyLedger& ledger) const {
  const power::CorePowerModel core_model(cfg_.core_power);
  for (CoreId c : active_cores_) {
    const cpu::Core& core = *cores_[c];
    ledger.add_dynamic(power::Component::kCore,
                       static_cast<double>(core.stats().instructions) *
                           cfg_.core_power.energy_per_instr_pj);
    ledger.add_dynamic(power::Component::kCore,
                       core_model.spin_pj(core.stats().spin_cycles));
    ledger.add_dynamic(power::Component::kL1,
                       static_cast<double>(core.l1_accesses()) *
                           cfg_.core_power.energy_per_l1_access_pj);
    // Coherence invalidations probe (and possibly read out) the L1D array;
    // zero in non-coherent runs, so legacy ledgers are unchanged.
    ledger.add_dynamic(power::Component::kL1,
                       static_cast<double>(core.stats().invalidations_received) *
                           cfg_.core_power.energy_per_l1_access_pj);
  }
  ledger.add_dynamic(power::Component::kL2,
                     l2_->stats().dynamic_energy_pj + governor_flush_pj_);
  // Repair actions (switch reprogramming pulses, link retraining) are
  // charged to the interconnect: that is the silicon doing the recovering.
  ledger.add_dynamic(power::Component::kInterconnect,
                     interconnect_->dynamic_energy_pj() + fault_repair_pj_);
  ledger.add_dynamic(power::Component::kDram, dram_->stats().dynamic_energy_pj);
}

SimResult Cluster::collect_result() const {
  SimResult r;
  r.app = cfg_.app.name;
  r.fabric = fabric_name(cfg_.fabric);
  r.power_state = cfg_.power_state.name();
  r.dram_latency_ns = cfg_.dram.access_latency_ns;
  r.cycles = now_;
  r.l2_latency = l2_latency_;
  r.l2_hit_latency = l2_hit_latency_;
  r.l2 = l2_->stats();
  r.dram = dram_->stats();
  r.interconnect = interconnect_->stats();
  r.l2_resident_lines = l2_->resident_lines();

  // Per-bank hit-rate spread over active banks that saw traffic.
  bool any_bank = false;
  for (BankId b = 0; b < cfg_.total_banks; ++b) {
    if (!l2_->active_banks()[b]) continue;
    const mem::CacheStats& bs = l2_->bank_cache_stats(b);
    if (bs.accesses() == 0) continue;
    const double hr = 1.0 - bs.miss_rate();
    if (!any_bank) {
      r.l2_bank_hit_rate_min = r.l2_bank_hit_rate_max = hr;
      any_bank = true;
    } else {
      r.l2_bank_hit_rate_min = std::min(r.l2_bank_hit_rate_min, hr);
      r.l2_bank_hit_rate_max = std::max(r.l2_bank_hit_rate_max, hr);
    }
  }
  r.l2_bank_hit_rate_spread = r.l2_bank_hit_rate_max - r.l2_bank_hit_rate_min;

  if (coh_dir_ != nullptr) {
    r.coherence_enabled = true;
    r.coherence = coh_dir_->stats();
    r.coh_dir_entries = coh_dir_->occupancy();
  }

  if (cfg_.fault.enabled) {
    r.fault = fault_summary_;
    r.fault.enabled = true;
    r.fault.outcome = run_failed_
                          ? "failed"
                          : (first_degraded_cycle_ != kNeverCycle ? "degraded"
                                                                  : "ok");
    r.fault.fail_reason = fail_reason_;
    r.fault.degraded_cycles =
        first_degraded_cycle_ == kNeverCycle ? 0 : now_ - first_degraded_cycle_;
    r.fault.repair_energy_pj =
        fault_repair_pj_ + (mot_ != nullptr ? mot_->fault_retry_pj() : 0.0);
  }

  const power::CorePowerModel core_model(cfg_.core_power);
  std::uint64_t l1d_miss = 0, l1d_acc = 0, l1i_miss = 0, l1i_acc = 0;
  for (CoreId c : active_cores_) {
    const cpu::Core& core = *cores_[c];
    r.cores.push_back(core.stats());
    r.instructions += core.stats().instructions;
    l1d_miss += core.l1d_stats().misses();
    l1d_acc += core.l1d_stats().accesses();
    l1i_miss += core.l1i_stats().misses();
    l1i_acc += core.l1i_stats().accesses();
  }
  r.l1d_miss_rate =
      l1d_acc == 0 ? 0.0 : static_cast<double>(l1d_miss) / static_cast<double>(l1d_acc);
  r.l1i_miss_rate =
      l1i_acc == 0 ? 0.0 : static_cast<double>(l1i_miss) / static_cast<double>(l1i_acc);

  accumulate_dynamic_energy(r.energy);
  if (thermal_ != nullptr) {
    // Static energy was integrated interval-by-interval at the converged
    // tile temperatures (run() finalises the tail before collecting); the
    // clock tree stays a flat term — it is switching power, not leakage.
    r.energy.add_static(power::Component::kCore,
                        thermal_->core_static_pj() + clock_tree_pj_);
    r.energy.add_static(power::Component::kL2, thermal_->l2_static_pj());
    r.energy.add_static(power::Component::kInterconnect,
                        thermal_->icn_static_pj());
    r.thermal = thermal_->summary();
    const thermal::GovernorStats& gs = governor_->stats();
    r.thermal.throttle_events = gs.throttle_events;
    r.thermal.bank_gate_events = gs.bank_gate_events;
    r.thermal.core_hold_events = gs.core_hold_events;
    r.thermal.throttled_cycles = throttled_cycles_;
  } else {
    for (std::size_t i = 0; i < active_cores_.size(); ++i) {
      r.energy.add_static(power::Component::kCore, core_model.static_pj(now_));
    }
    r.energy.add_static(power::Component::kL2,
                        l2_->leakage_mw() * static_cast<double>(now_));
    r.energy.add_static(power::Component::kInterconnect,
                        interconnect_->leakage_mw() * static_cast<double>(now_));
  }

  if (stacked_ != nullptr) {
    r.dram3d.enabled = true;
    r.dram3d.vaults = stacked_->num_vaults();
    r.dram3d.alive_vaults = stacked_->alive_vaults();
    r.dram3d.row_hits = stacked_->stats().page_hits;
    r.dram3d.row_misses = stacked_->stats().page_misses;
    r.dram3d.refreshes = stacked_->total_refreshes();
    r.dram3d.remaps = stacked_->remap_count();
    r.dram3d.vault_faults = stacked_->vault_fault_count();
    r.dram3d.remap_enabled = cfg_.vault_remap.enabled;
    r.dram3d.peak_vault_c = peak_vault_c_;
    r.dram3d.peak_vault = peak_vault_;
  }

  if (obs_hist_) {
    r.obs.enabled = true;
    r.obs.l2_rt = obs_l2_rt_.digest();
    r.obs.inv_rt = obs_inv_rt_.digest();
    r.obs.dram_service = obs_dram_.digest();
    for (const obs::LatencyHistogram& h : obs_vault_) {
      r.obs.dram_vault_service.push_back(h.digest());
    }
  }
  // The trace rides along only for full-trace runs: flight-recorder rings
  // exist for the watchdog dump and must not alter fault-run reporting.
  if (cfg_.obs.trace) r.trace = trace_;
  if (metrics_ != nullptr) r.metrics = metrics_;
  if (phase_timer_ != nullptr) r.phase_seconds = phase_timer_->totals();

  r.edp_pj_s = r.energy.edp_pj_s(now_);
  r.avg_power_w = r.energy.average_power_w(now_);
  return r;
}

ClusterConfig make_paper_config(const workload::AppProfile& app, Fabric fabric,
                                const core::PowerState& state,
                                mem::DramPreset dram_preset, double scale,
                                std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.app = app;
  cfg.fabric = fabric;
  cfg.power_state = state;
  // The cluster shape follows the power state's physical shape, so one
  // factory covers both the Table I cluster (16x32) and the scale-out
  // configurations (256x512 and beyond).
  cfg.total_cores = state.total_cores();
  cfg.total_banks = state.total_banks();
  cfg.dram_preset = dram_preset;
  cfg.scale = scale;
  cfg.seed = seed;
  return cfg;
}

}  // namespace mot3d::cluster
