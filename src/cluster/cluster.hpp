// The 3-D multi-core cluster system model (paper Fig. 1): 16 in-order cores
// with private L1s on the core tier, a 32-bank shared L2 stacked above it,
// a pluggable on-chip interconnect between them (circuit-switched MoT or
// one of the packet-switched baselines), and an off-cluster DRAM behind the
// round-robin Miss bus.  This is the Graphite-substitute [11] that runs the
// synthetic SPLASH-2 workloads and produces every number in Figs. 6-8.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cacti/sram_model.hpp"
#include "common/interconnect.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/mot_interconnect.hpp"
#include "core/power_state.hpp"
#include "cpu/barrier.hpp"
#include "cpu/core.hpp"
#include "mem/dram.hpp"
#include "mem/l2_system.hpp"
#include "noc/noc_interconnect.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"
#include "power/core_power.hpp"
#include "power/energy_ledger.hpp"
#include "power/interconnect_power.hpp"
#include "workload/synthetic_trace.hpp"

namespace mot3d::cluster {

/// Which transport connects cores to the stacked L2.
enum class Fabric { kMot, kTrueMesh3d, kHybridBusMesh, kHybridBusTree };

const char* fabric_name(Fabric f);

/// How Cluster::run() advances simulated time.
///
/// kEventDriven fast-forwards over quiescent stretches (every component
/// reports, via the next-event contract of DESIGN.md, the earliest cycle it
/// can change state; when that is in the future the scheduler jumps there,
/// batch-accounting per-cycle core statistics).  All modeled results are
/// bit-identical to kDenseTick, the reference per-cycle loop, which is kept
/// for differential testing.
enum class SchedulerMode { kEventDriven, kDenseTick };

const char* scheduler_name(SchedulerMode m);

struct ClusterConfig {
  // -- architecture (Table I) --
  std::size_t total_cores = 16;
  std::size_t total_banks = 32;
  cpu::CoreConfig core;                 ///< L1 geometry etc.
  mem::L2Config l2;                     ///< timing/energy filled from CACTI-lite
  mem::DramPreset dram_preset = mem::DramPreset::kDdr3_200ns;
  mem::DramConfig dram;                 ///< latency overridden by the preset

  // -- interconnect --
  Fabric fabric = Fabric::kMot;
  core::PowerState power_state = core::PowerState::full();
  noc::NocConfig noc;                   ///< for the packet-switched baselines

  // -- physical / power models --
  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams floorplan;
  cacti::SramBankConfig l2_bank_sram;
  power::CorePowerParams core_power;
  power::RouterPowerParams router_power;

  // -- workload --
  workload::AppProfile app;
  double scale = 0.25;                  ///< fraction of the profile's work
  std::uint64_t seed = 42;

  // -- simulation --
  SchedulerMode scheduler = SchedulerMode::kEventDriven;
  Cycle max_cycles = 200'000'000;       ///< runaway guard
  /// Pre-load each core's L1I with the app's code footprint.  Scaled-down
  /// traces over-weight cold-start instruction misses; the paper's numbers
  /// are steady-state over full SPLASH-2 runs.
  bool warm_instruction_caches = true;
};

/// Everything a bench needs from one run.
struct SimResult {
  std::string app;
  std::string fabric;
  std::string power_state;
  double dram_latency_ns = 0.0;

  Cycle cycles = 0;
  std::uint64_t instructions = 0;

  // L2 access latency measured at the cores: injection -> response.
  Histogram l2_latency{1, 256};       ///< all L2 transactions
  Histogram l2_hit_latency{1, 256};   ///< L2 hits only (interconnect + bank)

  mem::L2Stats l2;
  mem::DramStats dram;
  InterconnectStats interconnect;
  std::size_t l2_resident_lines = 0;  ///< footprint left in the L2 at the end
  double l1d_miss_rate = 0.0;
  double l1i_miss_rate = 0.0;

  power::EnergyLedger energy;
  double edp_pj_s = 0.0;
  double avg_power_w = 0.0;

  std::vector<cpu::CoreStats> cores;  ///< active cores only

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

/// Build-and-run system simulator.
class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Run to completion (all cores done, all queues drained).
  SimResult run();

  /// Step the system `cycles` forward (examples / reconfiguration demos).
  void step(Cycle cycles);

  /// Current simulation time.
  Cycle now() const { return now_; }
  bool finished() const;

  /// Component access for examples and tests.
  Interconnect& interconnect() { return *interconnect_; }
  core::MotInterconnect* mot() { return mot_; }
  mem::L2System& l2() { return *l2_; }
  mem::DramBackend& dram() { return *dram_; }
  const ClusterConfig& config() const { return cfg_; }

  /// Snapshot results so far (run() calls this at completion).
  SimResult collect_result() const;

 private:
  void tick_once();
  void tick_once_event();

  /// Minimum over every component's next_event(now_); never below now_.
  Cycle next_event_cycle() const;

  ClusterConfig cfg_;
  std::unique_ptr<mem::DramBackend> dram_;
  std::unique_ptr<mem::L2System> l2_;
  std::unique_ptr<Interconnect> interconnect_;
  core::MotInterconnect* mot_ = nullptr;  ///< non-null when fabric == kMot
  std::unique_ptr<core::MotTimingModel> mot_timing_;
  cpu::BarrierController barriers_;
  std::unique_ptr<workload::Workload> workload_;
  std::vector<std::unique_ptr<workload::SyntheticTrace>> traces_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;  ///< null for gated cores
  std::vector<CoreId> active_cores_;

  Cycle now_ = 0;
  Histogram l2_latency_{1, 256};
  Histogram l2_hit_latency_{1, 256};
};

/// Canonical paper setup: Table I architecture + the given knobs.
ClusterConfig make_paper_config(const workload::AppProfile& app, Fabric fabric,
                                const core::PowerState& state,
                                mem::DramPreset dram_preset, double scale = 0.25,
                                std::uint64_t seed = 42);

}  // namespace mot3d::cluster
