// The 3-D multi-core cluster system model (paper Fig. 1): 16 in-order cores
// with private L1s on the core tier, a 32-bank shared L2 stacked above it,
// a pluggable on-chip interconnect between them (circuit-switched MoT or
// one of the packet-switched baselines), and an off-cluster DRAM behind the
// round-robin Miss bus.  This is the Graphite-substitute [11] that runs the
// synthetic SPLASH-2 workloads and produces every number in Figs. 6-8.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cacti/sram_model.hpp"
#include "coherence/directory.hpp"
#include "common/interconnect.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/mot_interconnect.hpp"
#include "core/power_state.hpp"
#include "core/reconfig.hpp"
#include "cpu/barrier.hpp"
#include "cpu/core.hpp"
#include "dram3d/stacked_dram.hpp"
#include "dram3d/vault_remap.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/watchdog.hpp"
#include "mem/dram.hpp"
#include "mem/l2_system.hpp"
#include "noc/noc_interconnect.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_config.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"
#include "power/core_power.hpp"
#include "power/energy_ledger.hpp"
#include "power/interconnect_power.hpp"
#include "thermal/governor.hpp"
#include "thermal/thermal_model.hpp"
#include "workload/synthetic_trace.hpp"

namespace mot3d::cluster {

/// Which transport connects cores to the stacked L2.
enum class Fabric { kMot, kTrueMesh3d, kHybridBusMesh, kHybridBusTree };

const char* fabric_name(Fabric f);

/// How Cluster::run() advances simulated time.
///
/// kEventDriven fast-forwards over quiescent stretches (every component
/// reports, via the next-event contract of DESIGN.md, the earliest cycle it
/// can change state; when that is in the future the scheduler jumps there,
/// batch-accounting per-cycle core statistics).  All modeled results are
/// bit-identical to kDenseTick, the reference per-cycle loop, which is kept
/// for differential testing.
enum class SchedulerMode { kEventDriven, kDenseTick };

const char* scheduler_name(SchedulerMode m);

struct ClusterConfig {
  // -- architecture (Table I) --
  std::size_t total_cores = 16;
  std::size_t total_banks = 32;
  cpu::CoreConfig core;                 ///< L1 geometry etc.
  mem::L2Config l2;                     ///< timing/energy filled from CACTI-lite
  mem::DramPreset dram_preset = mem::DramPreset::kDdr3_200ns;
  mem::DramConfig dram;                 ///< latency overridden by the preset
  /// Memory backend selector: false (default) = the constant-latency
  /// preset controller; true = the 3-D stacked vault backend (src/dram3d).
  bool stacked_dram = false;
  dram3d::Dram3dConfig dram3d;          ///< stacked-backend geometry/timing
  /// Thermal-aware vault remapping (needs stacked_dram + thermal.enabled).
  dram3d::VaultRemapConfig vault_remap;

  // -- interconnect --
  Fabric fabric = Fabric::kMot;
  core::PowerState power_state = core::PowerState::full();
  noc::NocConfig noc;                   ///< for the packet-switched baselines

  // -- physical / power models --
  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams floorplan;
  cacti::SramBankConfig l2_bank_sram;
  power::CorePowerParams core_power;
  power::RouterPowerParams router_power;

  // -- workload --
  workload::AppProfile app;
  double scale = 0.25;                  ///< fraction of the profile's work
  std::uint64_t seed = 42;

  // -- thermal subsystem (disabled by default; see src/thermal/) --
  thermal::ThermalConfig thermal;

  // -- fault injection + watchdog (disabled by default; see src/fault/) --
  fault::FaultConfig fault;
  /// The watchdog also auto-engages whenever faults are enabled (a dropped
  /// message must never wedge a run); this config enables it standalone
  /// (e.g. mot3d_experiments --timeout) and tunes its intervals.
  fault::WatchdogConfig watchdog;

  // -- observability (disabled by default; see src/obs/) --
  obs::ObsConfig obs;

  // -- simulation --
  SchedulerMode scheduler = SchedulerMode::kEventDriven;
  Cycle max_cycles = 200'000'000;       ///< runaway guard
  /// Pre-load each core's L1I with the app's code footprint.  Scaled-down
  /// traces over-weight cold-start instruction misses; the paper's numbers
  /// are steady-state over full SPLASH-2 runs.
  bool warm_instruction_caches = true;
};

/// Everything a bench needs from one run.
struct SimResult {
  std::string app;
  std::string fabric;
  std::string power_state;
  double dram_latency_ns = 0.0;

  Cycle cycles = 0;
  std::uint64_t instructions = 0;

  // L2 access latency measured at the cores: injection -> response.
  Histogram l2_latency{1, 256};       ///< all L2 transactions
  Histogram l2_hit_latency{1, 256};   ///< L2 hits only (interconnect + bank)

  mem::L2Stats l2;
  mem::DramStats dram;
  InterconnectStats interconnect;
  std::size_t l2_resident_lines = 0;  ///< footprint left in the L2 at the end
  double l1d_miss_rate = 0.0;
  double l1i_miss_rate = 0.0;

  /// Per-bank hit-rate spread over the active banks that saw traffic — the
  /// interleave-balance signal the bank-conflict counter alone hides.
  double l2_bank_hit_rate_min = 0.0;
  double l2_bank_hit_rate_max = 0.0;
  double l2_bank_hit_rate_spread = 0.0;  ///< max - min

  /// Directory-MESI traffic (enabled == false when the run's workload has
  /// no sharing pattern and the coherence subsystem stayed detached).
  bool coherence_enabled = false;
  coherence::CoherenceStats coherence;
  std::size_t coh_dir_entries = 0;  ///< final directory occupancy

  power::EnergyLedger energy;
  double edp_pj_s = 0.0;
  double avg_power_w = 0.0;

  /// Thermal trajectory + governor activity (enabled == false when the
  /// run had no thermal subsystem).
  thermal::ThermalSummary thermal;

  /// Fault-injection trajectory (enabled == false when the run had no
  /// fault schedule).  outcome == "failed" means the run ended early on an
  /// unrecoverable topology with partial results.
  fault::FaultSummary fault;

  /// Stacked-DRAM trajectory (enabled == false on the constant backend;
  /// the dram3d_* scenario-JSON fields then stay absent).
  dram3d::Dram3dSummary dram3d;

  /// Observability digests (enabled == false when tracing/metrics were
  /// off; the obs_* scenario-JSON fields then stay absent).
  obs::ObsSummary obs;
  /// Host wall-seconds per simulator phase (valid only when
  /// ObsConfig::phase_timing was on; bench_scale --json uses this).
  obs::PhaseSeconds phase_seconds;
  /// The run's full event trace / sampled metrics; null unless the
  /// corresponding ObsConfig switch was on.  Shared with the cluster
  /// (the buffers are immutable after run()).
  std::shared_ptr<const obs::TraceBuffer> trace;
  std::shared_ptr<const obs::MetricsRegistry> metrics;

  std::vector<cpu::CoreStats> cores;  ///< active cores only

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

/// Build-and-run system simulator.
class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Run to completion (all cores done, all queues drained).
  SimResult run();

  /// Step the system `cycles` forward (examples / reconfiguration demos).
  void step(Cycle cycles);

  /// Current simulation time.
  Cycle now() const { return now_; }
  bool finished() const;

  /// Component access for examples and tests.
  Interconnect& interconnect() { return *interconnect_; }
  core::MotInterconnect* mot() { return mot_; }
  mem::L2System& l2() { return *l2_; }
  mem::MemoryBackend& dram() { return *dram_; }
  dram3d::StackedDram* stacked_dram() { return stacked_; }
  const ClusterConfig& config() const { return cfg_; }

  /// Snapshot results so far (run() calls this at completion).
  SimResult collect_result() const;

 private:
  void tick_once();
  void tick_once_event();

  /// Instrumented tick (1-in-64 sampled when phase timing is on): the same
  /// phase order as tick_once / tick_once_event with steady_clock stamps
  /// between phases.  Clock reads never touch model state, so timing a run
  /// cannot perturb its modeled metrics.
  void tick_once_timed(bool event_mode);

  /// Hand one fabric-delivered response to its core (or the L1 snoop
  /// controller for invalidations), recording the latency sample.
  void deliver_response(const MemResponse& resp);

  /// Drain the interconnect's batched deliveries after its tick():
  /// responses first, then requests — the in-tick phase order (see the
  /// equivalence note in common/interconnect.hpp).
  void drain_fabric_deliveries();

  /// Shared per-cycle injection phase of both schedulers: coherence
  /// acknowledgements first (they flow even while cores are clock-held),
  /// then the demand request of each unfrozen core.  Split so the timed
  /// tick can attribute the two halves to different phases.
  void inject_core_traffic();
  void inject_coherence_acks();
  void inject_demand_requests();

  /// Minimum over every component's next_event(now_); never below now_.
  /// Thermal sampling boundaries, the governor's unfreeze point, fault
  /// injection times and watchdog check boundaries are events too, so both
  /// schedulers visit them at the exact same cycles.
  Cycle next_event_cycle() const;

  /// Top-of-iteration poll of both schedulers: thermal steps, then fault
  /// injection, then the watchdog.  Strictly ordered so the byte-identical
  /// guarantee holds per subsystem combination.
  void poll();

  // -- thermal subsystem plumbing (all no-ops when thermal_ is null) --

  /// Run at the top of every scheduler iteration: completes pending
  /// reconfiguration drains, unfreezes cores whose reprogramming delay
  /// elapsed, and processes a sampling boundary when now_ is one.
  void thermal_poll();

  /// Apply a pending governor reconfiguration once the transport drained.
  void try_complete_drain();

  /// Close the power books of [last_thermal_cycle_, now_) and feed the
  /// interval into the thermal model's leakage fixed point.
  void thermal_sample_interval();

  /// Per-tile power sources of the current interval from ledger deltas.
  thermal::ThermalSources thermal_build_sources(
      const power::EnergySample& delta, Cycle interval);

  /// Refresh per-vault temperatures from the RC solver after a thermal
  /// step and track the running peak (no-op without the stacked backend).
  void update_vault_thermal();

  /// Account the final partial interval and stop throttle accounting.
  void thermal_finalize();

  /// Dynamic energy accumulated so far by every component, in the same
  /// per-component order collect_result() uses (so the two agree to the
  /// last bit).  Used for interval deltas via EnergyLedger::delta_since.
  void accumulate_dynamic_energy(power::EnergyLedger& ledger) const;

  /// Cores are clock-held (governor throttle or reconfiguration drain).
  void set_frozen(bool frozen);

  // -- fault subsystem plumbing (all no-ops when fault_sched_ is null) --

  /// Complete fault-initiated drains, promote deferred hard faults, and
  /// inject every fault event scheduled for this exact cycle.
  void fault_poll();

  /// Execute the degradation policy's reaction to one fault event.
  void apply_fault(const fault::FaultEvent& ev);

  void mark_degraded() {
    if (first_degraded_cycle_ == kNeverCycle) first_degraded_cycle_ = now_;
  }

  /// Evaluate the watchdog at a check boundary; throws WatchdogError.
  void watchdog_poll();

  // -- observability plumbing (all no-ops when cfg_.obs is all-off) --

  /// Take an interval metrics sample when now_ is an epoch boundary.
  /// The boundary participates in next_event_cycle() exactly like thermal
  /// sampling, so both schedulers sample at identical cycles.
  void metrics_poll();

  /// Tail metrics sample at the run's final cycle (if not already on a
  /// boundary) so short runs export at least one row.
  void obs_finalize();

  /// Monotone count of real forward progress (instructions, L2/DRAM
  /// traffic, delivered messages) — frozen exactly when the run is wedged.
  std::uint64_t progress_signature() const;

  /// Per-core / per-bank parked-state dump for watchdog and deadlock
  /// diagnostics.
  std::string progress_dump() const;

  ClusterConfig cfg_;
  std::unique_ptr<mem::MemoryBackend> dram_;
  dram3d::StackedDram* stacked_ = nullptr;  ///< non-null iff cfg_.stacked_dram
  std::unique_ptr<mem::L2System> l2_;
  std::unique_ptr<coherence::CoherenceDirectory> coh_dir_;  ///< sharing runs
  std::unique_ptr<Interconnect> interconnect_;
  core::MotInterconnect* mot_ = nullptr;  ///< non-null when fabric == kMot
  noc::NocInterconnect* noc_ = nullptr;   ///< non-null for packet fabrics
  std::unique_ptr<core::MotTimingModel> mot_timing_;
  cpu::BarrierController barriers_;
  std::unique_ptr<workload::Workload> workload_;
  std::vector<std::unique_ptr<workload::SyntheticTrace>> traces_;
  /// Active cores live contiguously in thread order (the order every
  /// per-core loop and FP accumulation uses), so the per-cycle core sweep
  /// walks a flat arena instead of chasing per-core heap allocations.
  std::vector<cpu::Core> core_arena_;
  std::vector<cpu::Core*> cores_;  ///< by CoreId into the arena; null if gated
  std::vector<CoreId> active_cores_;

  Cycle now_ = 0;
  Histogram l2_latency_{1, 256};
  Histogram l2_hit_latency_{1, 256};

  // -- thermal subsystem state (engaged only when cfg_.thermal.enabled) --
  std::unique_ptr<thermal::ThermalModel> thermal_;
  std::unique_ptr<thermal::ThermalGovernor> governor_;
  /// MoT fabric only; constructed for thermal *or* fault runs — both the
  /// governor and the degradation path gate banks through it.
  std::unique_ptr<core::ReconfigManager> reconfig_;
  power::EnergyLedger thermal_prev_snap_;   ///< ledger at the last boundary
  std::vector<std::uint64_t> prev_core_instr_, prev_core_spin_, prev_core_l1_;
  std::vector<std::uint64_t> prev_bank_accesses_;
  Cycle next_thermal_cycle_ = kNeverCycle;
  Cycle last_thermal_cycle_ = 0;
  bool draining_ = false;                   ///< quiescing for reconfiguration
  std::optional<core::PowerState> drain_target_;
  /// A thermal vault swap waiting for the same drain (never set together
  /// with drain_target_: the governor and the remap policy defer to an
  /// in-flight drain and re-decide at a later boundary).
  std::optional<dram3d::VaultSwap> pending_vault_swap_;
  std::unique_ptr<dram3d::VaultRemapPolicy> vault_remap_;
  std::vector<double> vault_temp_c_;        ///< per-physical-vault, last sample
  std::vector<double> prev_vault_energy_;   ///< per-vault pJ at last boundary
  double peak_vault_c_ = 0.0;
  std::size_t peak_vault_ = 0;
  bool governor_hold_ = false;              ///< governor demands held cores
  Cycle frozen_until_ = 0;                  ///< reprogramming delay after apply
  bool cores_frozen_ = false;
  Cycle freeze_begin_ = 0;
  std::uint64_t throttled_cycles_ = 0;
  std::uint64_t frozen_at_last_sample_ = 0;  ///< clock-tree gating bookkeeping
  double governor_flush_pj_ = 0.0;          ///< bank-flush reads of demotions
  double clock_tree_pj_ = 0.0;              ///< flat (non-thermal) core static

  // -- fault subsystem state (engaged only when cfg_.fault.enabled) --
  std::unique_ptr<fault::FaultSchedule> fault_sched_;
  std::unique_ptr<fault::DegradationManager> degrade_;
  std::size_t fault_event_idx_ = 0;         ///< next schedule entry to fire
  std::deque<fault::FaultEvent> deferred_faults_;  ///< queued behind a drain
  fault::FaultSummary fault_summary_;
  std::uint64_t drop_invalidates_remaining_ = 0;  ///< directed-test wedge
  Cycle first_degraded_cycle_ = kNeverCycle;
  bool run_failed_ = false;                 ///< unrecoverable topology
  std::string fail_reason_;
  double fault_repair_pj_ = 0.0;            ///< repair actions (ledger: icn)

  // -- watchdog (engaged when cfg_.watchdog.enabled or faults are on) --
  std::unique_ptr<fault::Watchdog> watchdog_;

  // -- observability state (engaged only via cfg_.obs; see src/obs/) --
  /// Trace sink: unbounded under cfg_.obs.trace, a bounded flight-recorder
  /// ring under cfg_.obs.flight_recorder or for fault runs with a watchdog
  /// (never for timeout-only watchdogs — the perf guardrail uses those).
  /// shared_ptr because the const collect_result() hands it to SimResult.
  std::shared_ptr<obs::TraceBuffer> trace_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::PhaseTimer> phase_timer_;
  power::EnergyLedger obs_ledger_;  ///< refreshed by a prepare hook per sample
  obs::LatencyHistogram obs_l2_rt_, obs_inv_rt_, obs_dram_;
  std::vector<obs::LatencyHistogram> obs_vault_;  ///< stacked runs only
  bool obs_hist_ = false;           ///< record latency histograms this run
  Cycle next_metrics_cycle_ = kNeverCycle;
  Cycle drain_begin_ = 0;           ///< start cycle of the pending drain
  std::uint32_t trk_governor_ = 0, trk_fabric_ = 0, trk_fault_ = 0;
  std::uint32_t trk_core_base_ = 0, trk_bank_base_ = 0;
  std::uint32_t trk_dram_ = 0;      ///< "dram vaults" track (stacked runs)
};

/// Canonical paper setup: Table I architecture + the given knobs.
ClusterConfig make_paper_config(const workload::AppProfile& app, Fabric fabric,
                                const core::PowerState& state,
                                mem::DramPreset dram_preset, double scale = 0.25,
                                std::uint64_t seed = 42);

}  // namespace mot3d::cluster
