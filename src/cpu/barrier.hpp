// Cluster-wide barrier synchronisation (SPLASH-2 style spin barriers).
//
// Cores arriving at barrier `id` spin (burning spin power, see
// power::CorePowerParams::spin_fraction) until every participating core
// has arrived.  Barrier ids are dense and monotonically increasing within
// a run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mot3d::cpu {

class BarrierController {
 public:
  explicit BarrierController(std::size_t participants = 0)
      : participants_(participants) {}

  void set_participants(std::size_t n) { participants_ = n; }
  std::size_t participants() const { return participants_; }

  /// Register `core`'s arrival at barrier `id`.
  void arrive(std::uint32_t id) {
    if (arrivals_.size() <= id) arrivals_.resize(id + 1, 0);
    ++arrivals_[id];
  }

  /// True once all participants have arrived at barrier `id`.
  bool released(std::uint32_t id) const {
    return id < arrivals_.size() && arrivals_[id] >= participants_;
  }

  /// Arrival count (diagnostics / tests).
  std::size_t arrivals(std::uint32_t id) const {
    return id < arrivals_.size() ? arrivals_[id] : 0;
  }

 private:
  std::size_t participants_;
  std::vector<std::size_t> arrivals_;
};

}  // namespace mot3d::cpu
