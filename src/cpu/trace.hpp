// Trace-driven execution: the record stream a core consumes.
//
// Substitutes for Graphite [11] + SPLASH-2 binaries [12]: instead of
// functionally executing the benchmarks, cores replay synthetic streams
// whose statistical structure (compute/memory mix, locality, working set,
// barrier cadence, serial sections) is calibrated per application in
// src/workload.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mot3d::cpu {

/// One unit of work in a core's instruction stream.
enum class TraceKind : std::uint8_t {
  kCompute,  ///< `compute_cycles` back-to-back non-memory instructions
  kMem,      ///< one load/store/ifetch to `addr`
  kBarrier,  ///< synchronise with the other participating cores
  kEnd,      ///< stream exhausted (emitted forever afterwards)
};

struct TraceRecord {
  TraceKind kind = TraceKind::kEnd;
  std::uint32_t compute_cycles = 0;  ///< kCompute
  MemOp op = MemOp::kLoad;           ///< kMem
  Addr addr = 0;                     ///< kMem
  std::uint32_t barrier_id = 0;      ///< kBarrier

  static TraceRecord compute(std::uint32_t n) {
    return {TraceKind::kCompute, n, MemOp::kLoad, 0, 0};
  }
  static TraceRecord mem(MemOp op, Addr a) {
    return {TraceKind::kMem, 0, op, a, 0};
  }
  static TraceRecord barrier(std::uint32_t id) {
    return {TraceKind::kBarrier, 0, MemOp::kLoad, 0, id};
  }
  static TraceRecord end() { return {}; }
};

/// Pull-based record stream; implementations must be deterministic.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Next record; returns kEnd forever once the stream is exhausted.
  virtual TraceRecord next() = 0;
};

}  // namespace mot3d::cpu
