// Trace-driven in-order processing core (ARM Cortex-A5 class, Table I).
//
// Single-issue, blocking caches, one outstanding L2 transaction — the
// behaviour the paper assumes for its 16-core cluster.  Each core owns
// private L1 I and D caches (4 KB, 32 B line, 4-way LRU, 1-cycle).  Data
// misses travel through the pluggable on-chip interconnect to the stacked
// L2; instruction misses refill directly over the round-robin Miss bus
// from DRAM (paper: "In case of instruction miss, Miss bus handles line
// refills ... towards the off-cluster DRAM").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/messages.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "cpu/barrier.hpp"
#include "cpu/trace.hpp"
#include "mem/cache.hpp"

namespace mot3d::cpu {

struct CoreConfig {
  mem::CacheConfig l1i{.capacity_bytes = 4 * 1024,
                       .line_bytes = 32,
                       .associativity = 4,
                       .index_shift = 0};
  mem::CacheConfig l1d{.capacity_bytes = 4 * 1024,
                       .line_bytes = 32,
                       .associativity = 4,
                       .index_shift = 0};
  std::size_t l2_banks = 32;       ///< logical bank count for bank hashing
  unsigned max_zero_cost_records = 4;  ///< ifetch-hit chaining bound per cycle
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t busy_cycles = 0;   ///< executing compute or L1 hits
  std::uint64_t stall_cycles = 0;  ///< waiting for L2 / DRAM
  std::uint64_t spin_cycles = 0;   ///< busy-waiting at a barrier
  std::uint64_t idle_cycles = 0;   ///< after kEnd
  std::uint64_t l2_requests = 0;   ///< data refills + write-backs injected
  std::uint64_t l1_writebacks = 0; ///< dirty L1 victims pushed to L2
  std::uint64_t ifetch_misses = 0;
  // -- coherence (zero unless a directory is engaged) --
  std::uint64_t invalidations_received = 0;  ///< directory invalidate msgs
  std::uint64_t upgrades = 0;                ///< S->M upgrade requests issued
  std::uint64_t coherence_forwards = 0;      ///< dirty lines forwarded down
  Cycle finish_cycle = 0;          ///< cycle the trace ended (0 if running)
};

/// The core proper.  The cluster drives it: tick() once per cycle, then
/// drain `pending_request()` into the interconnect (with back-pressure),
/// and feed completions back via on_response() / on_ifetch_refill().
class Core {
 public:
  /// Instruction-miss refill issue: (core, line addr, now).
  using IFetchIssue = std::function<void(CoreId, Addr, Cycle)>;

  Core(CoreId id, const CoreConfig& cfg, TraceSource& trace,
       BarrierController& barriers, IFetchIssue ifetch_issue);

  /// Advance one cycle.
  void tick(Cycle now);

  /// Next-event contract (see DESIGN.md): earliest cycle >= `now` at which
  /// tick() could do anything beyond the per-cycle stat accrual that skip()
  /// reproduces.  kNeverCycle while blocked on memory, the barrier or after
  /// kEnd — those states only change through external wake-ups.
  Cycle next_event(Cycle now) const;

  /// Batch-account the cycles [from, to) exactly as `to - from` dense
  /// tick() calls would, for states where ticks are pure stat accrual
  /// (stall/spin/idle) or a deterministic compute burn-down.  The caller
  /// (the cluster scheduler) must guarantee to <= next_event(from).
  void skip(Cycle from, Cycle to);

  /// The L2 request (if any) waiting for an interconnect slot.  The cluster
  /// calls injection_accepted() once the interconnect takes it.
  const std::optional<MemRequest>& pending_request() const { return pending_; }
  void injection_accepted(Cycle now);

  /// Interconnect delivers the L2's answer.
  void on_response(const MemResponse& resp, Cycle now);

  /// Directory orders this core to drop its L1 copy of `inv.addr`.  Legal
  /// in every state (unlike on_response): the L1 snoop port is independent
  /// of the instruction stream.  Queues a kInvAck (clean) or kDataForward
  /// (dirty) acknowledgement for the cluster to inject.
  void on_coherence_invalidate(const MemResponse& inv, Cycle now);

  /// Head of the coherence-acknowledgement queue (nullptr when empty).
  /// The cluster injects these even while cores are clock-held — protocol
  /// control traffic is not on the gated core clock.
  const MemRequest* pending_coherence() const {
    return coh_queue_.empty() ? nullptr : &coh_queue_.front();
  }
  void coherence_accepted(Cycle now);

  /// Miss bus delivers an instruction line.
  void on_ifetch_refill(Addr addr, Cycle now);

  /// Pre-load the instruction cache with [base, base+bytes) before the run
  /// starts.  Scaled-down traces over-weight cold-start I-misses relative
  /// to the paper's full SPLASH-2 runs; warming restores the steady-state
  /// behaviour the paper measures (standard warm-cache methodology).
  void warm_l1i(Addr base, std::size_t bytes);

  bool done() const { return state_ == State::kDone; }
  /// Human-readable state label for watchdog / deadlock diagnostics.
  const char* state_name() const;
  CoreId id() const { return id_; }
  const CoreStats& stats() const { return stats_; }
  const mem::CacheStats& l1i_stats() const { return l1i_.stats(); }
  const mem::CacheStats& l1d_stats() const { return l1d_.stats(); }

  /// L1 lookups (for the McPAT-lite L1 energy term).
  std::uint64_t l1_accesses() const {
    return l1i_.stats().accesses() + l1d_.stats().accesses();
  }

 private:
  enum class State {
    kFetch,          ///< ready to consume the next trace record
    kCompute,        ///< burning down a compute burst
    kWaitInject,     ///< request built, waiting for interconnect slot
    kWaitMem,        ///< L2 transaction in flight
    kWaitIFetch,     ///< instruction refill in flight
    kAtBarrier,
    kDone,
  };

  void process_next_record(Cycle now);
  void issue_data_miss(Addr addr, bool store_miss, Cycle now);
  void issue_upgrade(Addr addr, Cycle now);

  Addr line_of(Addr a) const {
    return a & ~static_cast<Addr>(cfg_.l1d.line_bytes - 1);
  }
  BankId bank_of(Addr a) const {
    const Addr line = a >> line_shift_;
    return static_cast<BankId>(line & (cfg_.l2_banks - 1));
  }

  CoreId id_;
  CoreConfig cfg_;
  unsigned line_shift_;
  // Pointers (never null) rather than references so Core is movable and
  // the cluster can keep its cores in one contiguous arena.
  TraceSource* trace_;
  BarrierController* barriers_;
  IFetchIssue ifetch_issue_;

  mem::Cache l1i_;
  mem::Cache l1d_;

  State state_ = State::kFetch;
  std::uint32_t compute_remaining_ = 0;
  std::uint32_t barrier_id_ = 0;
  std::optional<MemRequest> pending_;  ///< waiting for injection
  RingBuffer<MemRequest> coh_queue_;   ///< invalidation acks awaiting a slot
  bool refill_is_store_ = false;       ///< write-allocate: dirty on insert
  bool refill_invalidated_ = false;    ///< in-flight line invalidated: demote
                                       ///< the install to Shared
  bool inflight_is_writeback_ = false; ///< current L2 txn is an L1 victim
  Addr refill_addr_ = 0;
  std::uint64_t next_req_seq_ = 0;

  CoreStats stats_;
};

}  // namespace mot3d::cpu
