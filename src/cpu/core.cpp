#include "cpu/core.hpp"

#include <cassert>

namespace mot3d::cpu {

Core::Core(CoreId id, const CoreConfig& cfg, TraceSource& trace,
           BarrierController& barriers, IFetchIssue ifetch_issue)
    : id_(id),
      cfg_(cfg),
      line_shift_(log2_exact(cfg.l1d.line_bytes)),
      trace_(&trace),
      barriers_(&barriers),
      ifetch_issue_(std::move(ifetch_issue)),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d) {
  assert(is_pow2(cfg.l2_banks));
}

void Core::tick(Cycle now) {
  switch (state_) {
    case State::kDone:
      ++stats_.idle_cycles;
      return;
    case State::kCompute:
      ++stats_.busy_cycles;
      ++stats_.instructions;
      if (--compute_remaining_ == 0) state_ = State::kFetch;
      return;
    case State::kWaitInject:
    case State::kWaitMem:
    case State::kWaitIFetch:
      ++stats_.stall_cycles;
      return;
    case State::kAtBarrier:
      if (barriers_->released(barrier_id_)) {
        state_ = State::kFetch;
        process_next_record(now);
      } else {
        ++stats_.spin_cycles;
      }
      return;
    case State::kFetch:
      process_next_record(now);
      return;
  }
}

Cycle Core::next_event(Cycle now) const {
  // A queued invalidation acknowledgement retries injection every cycle,
  // whatever the instruction-stream state.
  if (!coh_queue_.empty()) return now;
  switch (state_) {
    case State::kFetch:
    case State::kWaitInject:
      return now;  // consumes a record / retries injection every cycle
    case State::kCompute:
      return now + compute_remaining_;
    case State::kAtBarrier:
      return barriers_->released(barrier_id_) ? now : kNeverCycle;
    case State::kWaitMem:
    case State::kWaitIFetch:
    case State::kDone:
      return kNeverCycle;  // woken externally (or never)
  }
  return now;
}

void Core::skip(Cycle from, Cycle to) {
  const Cycle delta = to - from;
  if (delta == 0) return;
  switch (state_) {
    case State::kDone:
      stats_.idle_cycles += delta;
      return;
    case State::kWaitMem:
    case State::kWaitIFetch:
      stats_.stall_cycles += delta;
      return;
    case State::kAtBarrier:
      assert(!barriers_->released(barrier_id_));
      stats_.spin_cycles += delta;
      return;
    case State::kCompute:
      assert(delta <= compute_remaining_);
      stats_.busy_cycles += delta;
      stats_.instructions += delta;
      compute_remaining_ -= static_cast<std::uint32_t>(delta);
      if (compute_remaining_ == 0) state_ = State::kFetch;
      return;
    case State::kFetch:
    case State::kWaitInject:
      assert(false && "skipped over a core that could make progress");
      return;
  }
}

const char* Core::state_name() const {
  switch (state_) {
    case State::kFetch: return "fetch";
    case State::kCompute: return "compute";
    case State::kWaitInject: return "wait-inject";
    case State::kWaitMem: return "wait-mem";
    case State::kWaitIFetch: return "wait-ifetch";
    case State::kAtBarrier: return "at-barrier";
    case State::kDone: return "done";
  }
  return "?";
}

void Core::process_next_record(Cycle now) {
  // Instruction-cache hits are overlapped with execution (zero cost), so we
  // may chain through a bounded number of them within one cycle.
  for (unsigned chained = 0; chained <= cfg_.max_zero_cost_records; ++chained) {
    const TraceRecord r = trace_->next();
    switch (r.kind) {
      case TraceKind::kEnd:
        state_ = State::kDone;
        stats_.finish_cycle = now;
        ++stats_.idle_cycles;
        return;

      case TraceKind::kBarrier:
        barriers_->arrive(r.barrier_id);
        barrier_id_ = r.barrier_id;
        state_ = State::kAtBarrier;
        ++stats_.busy_cycles;  // executing the barrier arrival
        return;

      case TraceKind::kCompute:
        if (r.compute_cycles == 0) continue;  // degenerate, zero-cost
        ++stats_.busy_cycles;
        ++stats_.instructions;
        if (r.compute_cycles > 1) {
          compute_remaining_ = r.compute_cycles - 1;
          state_ = State::kCompute;
        }
        return;

      case TraceKind::kMem: {
        if (r.op == MemOp::kInstrFetch) {
          if (l1i_.lookup(r.addr, /*is_write=*/false).hit) continue;  // free
          ++stats_.ifetch_misses;
          ++stats_.stall_cycles;
          refill_addr_ = r.addr;
          state_ = State::kWaitIFetch;
          ifetch_issue_(id_, line_of(r.addr), now);
          return;
        }
        ++stats_.instructions;
        const bool store = is_write(r.op);
        const mem::LookupResult lr = l1d_.lookup(r.addr, store);
        if (lr.hit && !lr.needs_upgrade) {
          ++stats_.busy_cycles;  // Table I: 1-cycle L1 latency
          return;                // state stays kFetch
        }
        ++stats_.stall_cycles;
        if (lr.hit) {
          // Store hit on a Shared line: coherence upgrade before dirtying.
          issue_upgrade(r.addr, now);
        } else {
          issue_data_miss(r.addr, store, now);
        }
        return;
      }
    }
  }
  // Pathological run of zero-cost records: charge a cycle to keep time moving.
  ++stats_.busy_cycles;
}

void Core::issue_data_miss(Addr addr, bool store_miss, Cycle now) {
  const Addr line = line_of(addr);
  refill_addr_ = line;
  refill_is_store_ = store_miss;
  inflight_is_writeback_ = false;
  pending_ = MemRequest{
      .id = (static_cast<std::uint64_t>(id_) << 32) | next_req_seq_++,
      .core = id_,
      .bank = bank_of(line),
      .addr = line,
      .is_write = false,  // refill fetch; write-allocate dirties on insert
      .issue_cycle = now,
      .kind = store_miss ? ReqKind::kGetX : ReqKind::kGetS,
  };
  state_ = State::kWaitInject;
}

void Core::issue_upgrade(Addr addr, Cycle now) {
  const Addr line = line_of(addr);
  refill_addr_ = line;
  refill_is_store_ = true;  // if the grant degenerates to data, install dirty
  inflight_is_writeback_ = false;
  ++stats_.upgrades;
  pending_ = MemRequest{
      .id = (static_cast<std::uint64_t>(id_) << 32) | next_req_seq_++,
      .core = id_,
      .bank = bank_of(line),
      .addr = line,
      .is_write = false,  // header-only permission request
      .issue_cycle = now,
      .kind = ReqKind::kUpgrade,
  };
  state_ = State::kWaitInject;
}

void Core::injection_accepted(Cycle now) {
  (void)now;
  assert(state_ == State::kWaitInject && pending_.has_value());
  ++stats_.l2_requests;
  pending_.reset();
  state_ = State::kWaitMem;
}

void Core::on_response(const MemResponse& resp, Cycle now) {
  assert(state_ == State::kWaitMem);
  assert(resp.core == id_);
  if (inflight_is_writeback_) {
    // Dirty-victim write-back acknowledged; resume the instruction stream.
    inflight_is_writeback_ = false;
    state_ = State::kFetch;
    return;
  }
  if (resp.kind == RespKind::kUpgradeAck && l1d_.complete_upgrade(refill_addr_)) {
    refill_invalidated_ = false;
    state_ = State::kFetch;
    return;
  }
  // Refill arrived: install in L1D, possibly displacing a dirty victim that
  // must be written back to the L2 before execution continues (blocking,
  // in-order core with a single victim buffer).  An upgrade whose line was
  // invalidated mid-flight lands here too (the directory answered with
  // data, or the grant found the line gone) and installs dirty.
  //
  // If the directory invalidated this very line while a *clean* refill was
  // in flight (the grant was decided before a later transaction re-assigned
  // the line), the grant is stale: install Shared so the next store must
  // win an upgrade — the directory then sees a non-sharer and restores the
  // single-writer invariant with a full GetX.  Store refills stay exclusive
  // (Shared lines are read-only by invariant): their grants are ordered
  // after the invalidating transaction at the serialising bank, or at worst
  // leave a self-limited stale copy that the next eviction retires.
  const bool shared = (resp.kind == RespKind::kData && resp.shared) ||
                      (refill_invalidated_ && !refill_is_store_);
  refill_invalidated_ = false;
  const mem::InsertResult ins = l1d_.insert(refill_addr_, refill_is_store_, shared);
  if (ins.evicted_dirty) {
    ++stats_.l1_writebacks;
    inflight_is_writeback_ = true;
    pending_ = MemRequest{
        .id = (static_cast<std::uint64_t>(id_) << 32) | next_req_seq_++,
        .core = id_,
        .bank = bank_of(ins.evicted_line_addr),
        .addr = ins.evicted_line_addr,
        .is_write = true,
        .issue_cycle = now,
        .kind = ReqKind::kWriteback,
    };
    state_ = State::kWaitInject;
    return;
  }
  state_ = State::kFetch;
}

void Core::on_coherence_invalidate(const MemResponse& inv, Cycle now) {
  assert(inv.core == id_);
  ++stats_.invalidations_received;
  // The copy may already be gone (silent clean eviction left stale sharer
  // bits behind): acknowledge without data.
  const bool forward = l1d_.invalidate(inv.addr).value_or(false);
  // Invalidation racing our own in-flight miss/upgrade of the same line:
  // remember it so the eventual install is demoted to Shared (see
  // on_response) instead of resurrecting a copy the directory dropped.
  if (!inflight_is_writeback_ &&
      (state_ == State::kWaitMem || state_ == State::kWaitInject) &&
      line_of(inv.addr) == refill_addr_) {
    refill_invalidated_ = true;
  }
  if (forward) ++stats_.coherence_forwards;
  coh_queue_.push_back(MemRequest{
      .id = (static_cast<std::uint64_t>(id_) << 32) | next_req_seq_++,
      .core = id_,
      .bank = bank_of(inv.addr),
      .addr = line_of(inv.addr),
      .is_write = forward,  // a dirty forward carries the line
      .issue_cycle = now,
      .kind = forward ? ReqKind::kDataForward : ReqKind::kInvAck,
  });
}

void Core::coherence_accepted(Cycle now) {
  (void)now;
  assert(!coh_queue_.empty());
  coh_queue_.pop_front();
}

void Core::warm_l1i(Addr base, std::size_t bytes) {
  const std::size_t line = cfg_.l1i.line_bytes;
  for (Addr a = base; a < base + bytes; a += line) {
    l1i_.insert(a, /*dirty=*/false);
  }
}

void Core::on_ifetch_refill(Addr addr, Cycle now) {
  (void)now;
  assert(state_ == State::kWaitIFetch);
  l1i_.insert(addr, /*dirty=*/false);  // instruction lines are never dirty
  state_ = State::kFetch;
}

}  // namespace mot3d::cpu
