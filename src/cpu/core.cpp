#include "cpu/core.hpp"

#include <cassert>

namespace mot3d::cpu {

Core::Core(CoreId id, const CoreConfig& cfg, TraceSource& trace,
           BarrierController& barriers, IFetchIssue ifetch_issue)
    : id_(id),
      cfg_(cfg),
      line_shift_(log2_exact(cfg.l1d.line_bytes)),
      trace_(trace),
      barriers_(barriers),
      ifetch_issue_(std::move(ifetch_issue)),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d) {
  assert(is_pow2(cfg.l2_banks));
}

void Core::tick(Cycle now) {
  switch (state_) {
    case State::kDone:
      ++stats_.idle_cycles;
      return;
    case State::kCompute:
      ++stats_.busy_cycles;
      ++stats_.instructions;
      if (--compute_remaining_ == 0) state_ = State::kFetch;
      return;
    case State::kWaitInject:
    case State::kWaitMem:
    case State::kWaitIFetch:
      ++stats_.stall_cycles;
      return;
    case State::kAtBarrier:
      if (barriers_.released(barrier_id_)) {
        state_ = State::kFetch;
        process_next_record(now);
      } else {
        ++stats_.spin_cycles;
      }
      return;
    case State::kFetch:
      process_next_record(now);
      return;
  }
}

Cycle Core::next_event(Cycle now) const {
  switch (state_) {
    case State::kFetch:
    case State::kWaitInject:
      return now;  // consumes a record / retries injection every cycle
    case State::kCompute:
      return now + compute_remaining_;
    case State::kAtBarrier:
      return barriers_.released(barrier_id_) ? now : kNeverCycle;
    case State::kWaitMem:
    case State::kWaitIFetch:
    case State::kDone:
      return kNeverCycle;  // woken externally (or never)
  }
  return now;
}

void Core::skip(Cycle from, Cycle to) {
  const Cycle delta = to - from;
  if (delta == 0) return;
  switch (state_) {
    case State::kDone:
      stats_.idle_cycles += delta;
      return;
    case State::kWaitMem:
    case State::kWaitIFetch:
      stats_.stall_cycles += delta;
      return;
    case State::kAtBarrier:
      assert(!barriers_.released(barrier_id_));
      stats_.spin_cycles += delta;
      return;
    case State::kCompute:
      assert(delta <= compute_remaining_);
      stats_.busy_cycles += delta;
      stats_.instructions += delta;
      compute_remaining_ -= static_cast<std::uint32_t>(delta);
      if (compute_remaining_ == 0) state_ = State::kFetch;
      return;
    case State::kFetch:
    case State::kWaitInject:
      assert(false && "skipped over a core that could make progress");
      return;
  }
}

void Core::process_next_record(Cycle now) {
  // Instruction-cache hits are overlapped with execution (zero cost), so we
  // may chain through a bounded number of them within one cycle.
  for (unsigned chained = 0; chained <= cfg_.max_zero_cost_records; ++chained) {
    const TraceRecord r = trace_.next();
    switch (r.kind) {
      case TraceKind::kEnd:
        state_ = State::kDone;
        stats_.finish_cycle = now;
        ++stats_.idle_cycles;
        return;

      case TraceKind::kBarrier:
        barriers_.arrive(r.barrier_id);
        barrier_id_ = r.barrier_id;
        state_ = State::kAtBarrier;
        ++stats_.busy_cycles;  // executing the barrier arrival
        return;

      case TraceKind::kCompute:
        if (r.compute_cycles == 0) continue;  // degenerate, zero-cost
        ++stats_.busy_cycles;
        ++stats_.instructions;
        if (r.compute_cycles > 1) {
          compute_remaining_ = r.compute_cycles - 1;
          state_ = State::kCompute;
        }
        return;

      case TraceKind::kMem: {
        if (r.op == MemOp::kInstrFetch) {
          if (l1i_.lookup(r.addr, /*is_write=*/false).hit) continue;  // free
          ++stats_.ifetch_misses;
          ++stats_.stall_cycles;
          refill_addr_ = r.addr;
          state_ = State::kWaitIFetch;
          ifetch_issue_(id_, line_of(r.addr), now);
          return;
        }
        ++stats_.instructions;
        const bool store = is_write(r.op);
        if (l1d_.lookup(r.addr, store).hit) {
          ++stats_.busy_cycles;  // Table I: 1-cycle L1 latency
          return;                // state stays kFetch
        }
        ++stats_.stall_cycles;
        issue_data_miss(r.addr, store, now);
        return;
      }
    }
  }
  // Pathological run of zero-cost records: charge a cycle to keep time moving.
  ++stats_.busy_cycles;
}

void Core::issue_data_miss(Addr addr, bool store_miss, Cycle now) {
  const Addr line = line_of(addr);
  refill_addr_ = line;
  refill_is_store_ = store_miss;
  inflight_is_writeback_ = false;
  pending_ = MemRequest{
      .id = (static_cast<std::uint64_t>(id_) << 32) | next_req_seq_++,
      .core = id_,
      .bank = bank_of(line),
      .addr = line,
      .is_write = false,  // refill fetch; write-allocate dirties on insert
      .issue_cycle = now,
  };
  state_ = State::kWaitInject;
}

void Core::injection_accepted(Cycle now) {
  (void)now;
  assert(state_ == State::kWaitInject && pending_.has_value());
  ++stats_.l2_requests;
  pending_.reset();
  state_ = State::kWaitMem;
}

void Core::on_response(const MemResponse& resp, Cycle now) {
  assert(state_ == State::kWaitMem);
  assert(resp.core == id_);
  (void)resp;  // identity only matters to the asserts
  if (inflight_is_writeback_) {
    // Dirty-victim write-back acknowledged; resume the instruction stream.
    inflight_is_writeback_ = false;
    state_ = State::kFetch;
    return;
  }
  // Refill arrived: install in L1D, possibly displacing a dirty victim that
  // must be written back to the L2 before execution continues (blocking,
  // in-order core with a single victim buffer).
  const mem::InsertResult ins = l1d_.insert(refill_addr_, refill_is_store_);
  if (ins.evicted_dirty) {
    ++stats_.l1_writebacks;
    inflight_is_writeback_ = true;
    pending_ = MemRequest{
        .id = (static_cast<std::uint64_t>(id_) << 32) | next_req_seq_++,
        .core = id_,
        .bank = bank_of(ins.evicted_line_addr),
        .addr = ins.evicted_line_addr,
        .is_write = true,
        .issue_cycle = now,
    };
    state_ = State::kWaitInject;
    return;
  }
  state_ = State::kFetch;
}

void Core::warm_l1i(Addr base, std::size_t bytes) {
  const std::size_t line = cfg_.l1i.line_bytes;
  for (Addr a = base; a < base + bytes; a += line) {
    l1i_.insert(a, /*dirty=*/false);
  }
}

void Core::on_ifetch_refill(Addr addr, Cycle now) {
  (void)now;
  assert(state_ == State::kWaitIFetch);
  l1i_.insert(addr, /*dirty=*/false);  // instruction lines are never dirty
  state_ = State::kFetch;
}

}  // namespace mot3d::cpu
