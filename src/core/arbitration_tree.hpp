// The per-bank arbitration tree of the 3-D MoT (paper Fig. 2(a)).
//
// A binary tree of 2-input round-robin arbitration switches merges the
// requests of up to `total_cores` cores heading for one cache bank.  Every
// cycle at most one contender wins and proceeds onto the bank's TSV bus;
// the hierarchical round-robin pointers guarantee starvation freedom with
// a worst-case wait bounded by the number of contenders.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/power_state.hpp"
#include "core/switch.hpp"

namespace mot3d::core {

class ArbitrationTree {
 public:
  explicit ArbitrationTree(std::size_t total_cores);

  /// Program the tree for `state` (gates switches whose whole subtree of
  /// cores is powered off); returns the number of powered switches.
  std::size_t configure(const PowerState& state);

  /// Grant one requester among `requesting` (indexed by physical core id);
  /// returns the winner or nullopt when nobody requests.  Updates the
  /// round-robin pointers along the granted path only, as the hardware does.
  std::optional<CoreId> arbitrate(const std::vector<bool>& requesting);

  /// Sparse entry point: `candidates` lists the core ids requesting this
  /// cycle (no duplicates, any order).  Bit-identical to arbitrate() with
  /// exactly those bits set — request wires propagate bottom-up from the
  /// candidate leaves through powered switches, then one root-to-leaf
  /// descent evaluates the same peek decisions the recursive walk would
  /// and commits along the granted spine.  Cost is O(candidates · levels)
  /// instead of O(total_cores), which is what makes per-bank arbitration
  /// affordable at 256-1024 cores.
  std::optional<CoreId> arbitrate_sparse(const CoreId* candidates,
                                         std::size_t count);

  std::size_t total_cores() const { return total_cores_; }
  unsigned levels() const { return levels_; }
  std::size_t powered_switches() const;

  /// Test hook: the switch at (level, index), level 0 = root.
  const ArbitrationSwitch& switch_at(unsigned level, std::size_t index) const;

 private:
  struct Outcome {
    bool requesting = false;
    CoreId winner = 0;
  };
  Outcome descend(unsigned level, std::size_t index,
                  const std::vector<bool>& requesting);
  void commit_path(unsigned level, std::size_t index,
                   const std::vector<bool>& requesting);
  std::size_t node_index(unsigned level, std::size_t index) const {
    return (std::size_t{1} << level) - 1 + index;
  }

  std::size_t total_cores_;
  unsigned levels_;
  std::vector<ArbitrationSwitch> nodes_;
  /// arbitrate_sparse scratch: request flag per heap node (internal nodes
  /// share indices with nodes_; leaves occupy [total_cores_-1, 2n-2]).
  /// Touched entries are recorded in marked_ and cleared after each call,
  /// so the per-call cost tracks the candidate count, not the tree size.
  std::vector<std::uint8_t> node_req_;
  std::vector<std::uint32_t> marked_;
};

}  // namespace mot3d::core
