#include "core/switch.hpp"

namespace mot3d::core {

RouteMode mode_from_signals(ControlSignals s) {
  if (!s.ctr_1 && !s.ctr_0) return RouteMode::kConventional;
  if (!s.ctr_1 && s.ctr_0) return RouteMode::kForcePort0;
  if (s.ctr_1 && !s.ctr_0) return RouteMode::kForcePort1;
  return RouteMode::kPowerGated;
}

ControlSignals signals_from_mode(RouteMode m) {
  switch (m) {
    case RouteMode::kConventional: return {false, false};
    case RouteMode::kForcePort0: return {true, false};
    case RouteMode::kForcePort1: return {false, true};
    case RouteMode::kPowerGated: return {true, true};
  }
  return {false, false};
}

}  // namespace mot3d::core
