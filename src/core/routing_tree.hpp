// The per-core routing tree of the 3-D MoT (paper Fig. 2(a), Fig. 4).
//
// A binary tree of (modified) routing switches fans one core out to the
// `total_banks` TSV-bus landing sites.  Level 0 (the root) decodes the most
// significant bank-index bit; level l decodes bit (n-1-l).  Configuring a
// power state drives the don't-care levels into user-defined mode with the
// centre-folding direction (lower-half subtrees force port 1, upper-half
// force port 0) and power-gates every switch that no active path crosses —
// reproducing Fig. 4's gray/white switch pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/power_state.hpp"
#include "core/switch.hpp"

namespace mot3d::core {

class RoutingTree {
 public:
  explicit RoutingTree(std::size_t total_banks);

  /// Program switch modes for `state`; returns the number of powered
  /// switches (for leakage accounting).
  std::size_t configure(const PowerState& state);

  /// Walk the tree for logical destination `bank`; returns the physical
  /// leaf reached, or nullopt if the path crosses a gated switch.
  std::optional<BankId> resolve(BankId bank) const;

  /// Direct access for tests / visualisation: switch at (level, index).
  const RoutingSwitch& switch_at(unsigned level, std::size_t index) const;
  RoutingSwitch& switch_at(unsigned level, std::size_t index);

  unsigned levels() const { return levels_; }
  std::size_t total_banks() const { return total_banks_; }
  std::size_t powered_switches() const;

 private:
  std::size_t node_index(unsigned level, std::size_t index) const;

  std::size_t total_banks_;
  unsigned levels_;
  std::vector<RoutingSwitch> nodes_;  ///< level-major: 2^l nodes at level l
};

}  // namespace mot3d::core
