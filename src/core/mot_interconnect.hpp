// Cycle-level transport model of the reconfigurable circuit-switched 3-D
// MoT interconnect (the paper's primary contribution).
//
// Semantics follow the circuit-switched MoT of refs [1][10] with the
// paper's modified routing switches:
//  * Each core owns its routing tree — requests from different cores never
//    block each other (non-blocking network).
//  * Contention exists only at the per-bank arbitration trees: when several
//    requests reach the same bank, one wins per cycle (hierarchical
//    round-robin, starvation-free) and the others stall in place.
//  * A granted transaction holds the bank's TSV channel for the bank
//    service time (circuit switching).
//  * The response network is mirrored and contention-free (each in-order
//    core has a single outstanding transaction).
//  * configure(PowerState) reprograms the ctr signals of every routing
//    switch (conventional / user-defined / gated), which remaps logical
//    banks onto the powered centre group and shortens the pipeline
//    latencies (Fig. 5 / Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/interconnect.hpp"
#include "common/ring_buffer.hpp"
#include "core/arbitration_tree.hpp"
#include "core/mot_timing.hpp"
#include "core/power_state.hpp"
#include "core/routing_tree.hpp"

namespace mot3d::core {

struct MotInterconnectConfig {
  /// Circuit hold of a granted bank channel (matches the L2 bank service
  /// time so a second grant cannot overrun the bank).
  unsigned bank_hold_cycles = 2;
};

class MotInterconnect final : public Interconnect {
 public:
  MotInterconnect(const MotTimingModel& timing, const PowerState& initial,
                  MotInterconnectConfig cfg = {});

  const char* name() const override { return "3-D MoT"; }

  bool try_inject_request(const MemRequest& req, Cycle now) override;
  bool try_inject_response(const MemResponse& resp, Cycle now) override;
  void tick(Cycle now) override;
  bool idle() const override;
  Cycle next_event(Cycle now) const override;

  double dynamic_energy_pj() const override { return dynamic_energy_pj_; }
  double leakage_mw() const override { return timing_.leakage_mw(state_); }

  /// Reprogram every switch for `state` (the ctr_0/ctr_1 distribution of
  /// Fig. 3); instantaneous — drain + flush sequencing is the
  /// ReconfigManager's job.
  void configure(const PowerState& state);

  const PowerState& state() const { return state_; }
  const MotStateTiming& state_timing() const { return state_timing_; }
  const MotTimingModel& timing_model() const { return timing_; }

  /// Physical bank the current switch configuration sends `logical` to.
  BankId route(BankId logical) const;

  /// Fault injection: a marginal TSV via on bank `b`'s column.  Every
  /// grant to the bank holds the circuit `cycles` longer (degraded-latency
  /// mode) and pays the per-grant retry energy.  Cumulative and permanent
  /// — reconfiguration does not heal silicon.
  void add_bank_fault_penalty(BankId b, unsigned cycles);
  void set_fault_retry_energy_pj(double pj) { fault_retry_pj_per_grant_ = pj; }

  /// Retry energy charged so far to degraded-bank grants (already included
  /// in dynamic_energy_pj(); broken out for the fault report).
  double fault_retry_pj() const { return fault_retry_pj_; }

 private:
  struct InFlight {
    MemRequest req;
    BankId physical_bank = 0;
    Cycle eligible = 0;  ///< cycle it reaches the arbitration stage
    bool valid = false;
  };
  struct PendingResponse {
    MemResponse resp;
    Cycle due = 0;
  };

  MotTimingModel timing_;
  MotInterconnectConfig cfg_;
  PowerState state_;
  MotStateTiming state_timing_;

  void add_waiter(CoreId core, BankId bank);
  void remove_waiter(CoreId core, BankId bank);

  RoutingTree routing_;                    ///< shared resolver (per-core trees
                                           ///< are identically configured)
  std::vector<ArbitrationTree> bank_arbiters_;  ///< one per physical bank
  std::vector<InFlight> core_slot_;        ///< one outstanding per core
  std::vector<Cycle> bank_free_at_;        ///< circuit hold per bank
  RingBuffer<PendingResponse> responses_;  ///< constant-delay return path
  /// Valid slots grouped by target physical bank, plus a bitset of banks
  /// with any waiter.  tick()/next_event() walk only the pending banks and
  /// their waiters instead of the full banks x cores cross product — the
  /// scan that dominated 256-core heavy-sharing runs.
  std::vector<std::vector<CoreId>> bank_waiters_;
  std::vector<std::uint64_t> pending_banks_;
  std::vector<CoreId> candidates_;         ///< tick() scratch (eligible waiters)
  std::size_t valid_slots_ = 0;
  std::vector<unsigned> bank_fault_penalty_;  ///< extra hold per physical bank
  double dynamic_energy_pj_ = 0.0;
  double fault_retry_pj_ = 0.0;
  double fault_retry_pj_per_grant_ = 0.0;
};

}  // namespace mot3d::core
