#include "core/routing_tree.hpp"

#include <stdexcept>

namespace mot3d::core {

RoutingTree::RoutingTree(std::size_t total_banks) : total_banks_(total_banks) {
  if (!is_pow2(total_banks) || total_banks < 2) {
    throw std::invalid_argument("routing tree needs a power-of-two >= 2 leaves");
  }
  levels_ = log2_exact(total_banks);
  nodes_.reserve(total_banks - 1);
  for (unsigned l = 0; l < levels_; ++l) {
    const std::size_t count = std::size_t{1} << l;
    for (std::size_t i = 0; i < count; ++i) {
      // Level l decodes bank-index bit (n-1-l).
      nodes_.emplace_back(levels_ - 1 - l);
    }
  }
}

std::size_t RoutingTree::node_index(unsigned level, std::size_t index) const {
  // Nodes of level l start at 2^l - 1 (complete-binary-tree layout).
  return (std::size_t{1} << level) - 1 + index;
}

const RoutingSwitch& RoutingTree::switch_at(unsigned level, std::size_t index) const {
  return nodes_.at(node_index(level, index));
}

RoutingSwitch& RoutingTree::switch_at(unsigned level, std::size_t index) {
  return nodes_.at(node_index(level, index));
}

std::size_t RoutingTree::configure(const PowerState& state) {
  if (state.total_banks() != total_banks_) {
    throw std::invalid_argument("power state bank count mismatch");
  }
  const unsigned forced = state.forced_bank_levels();

  // Pass 1: everything gated; conventional levels get their mode but stay
  // "gated" until proven reachable.
  for (RoutingSwitch& sw : nodes_) sw.set_mode(RouteMode::kPowerGated);

  // Pass 2: walk every logical bank's path, powering the switches along it
  // with the right mode.  Levels 1..forced run user-defined (centre-fold);
  // all other levels run conventional.  (Level 0 is only forced when a
  // single bank remains; the fold then picks the upper half.)
  for (BankId logical = 0; logical < total_banks_; ++logical) {
    std::size_t idx = 0;
    for (unsigned l = 0; l < levels_; ++l) {
      RoutingSwitch& sw = switch_at(l, idx);
      RouteMode mode;
      const bool level_forced =
          (l >= 1 && l <= forced) || (forced >= levels_ && l == 0);
      if (level_forced) {
        // Centre-fold: subtrees in the lower half of the field fold toward
        // port 1 (higher indices); upper-half subtrees toward port 0.  The
        // root (only forced in the degenerate 1-bank state) folds right.
        const bool upper_half = l == 0 ? false : ((idx >> (l - 1)) & 1u) != 0;
        mode = upper_half ? RouteMode::kForcePort0 : RouteMode::kForcePort1;
      } else {
        mode = RouteMode::kConventional;
      }
      sw.set_mode(mode);
      const std::optional<unsigned> port = sw.route(logical);
      idx = idx * 2 + *port;
    }
  }
  return powered_switches();
}

std::optional<BankId> RoutingTree::resolve(BankId bank) const {
  if (bank >= total_banks_) return std::nullopt;
  std::size_t idx = 0;
  for (unsigned l = 0; l < levels_; ++l) {
    const std::optional<unsigned> port = switch_at(l, idx).route(bank);
    if (!port.has_value()) return std::nullopt;
    idx = idx * 2 + *port;
  }
  return static_cast<BankId>(idx);
}

std::size_t RoutingTree::powered_switches() const {
  std::size_t n = 0;
  for (const RoutingSwitch& sw : nodes_) n += sw.powered() ? 1 : 0;
  return n;
}

}  // namespace mot3d::core
