#include "core/reconfig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mot3d::core {

ReconfigCost ReconfigManager::plan(const PowerState& next, bool execute, Cycle now) {
  ReconfigCost cost;
  const PowerState& current = interconnect_.state();
  const mem::DramConfig& dram_cfg = dram_.config();
  const mem::L2Config& l2_cfg = l2_.config();

  for (BankId b = 0; b < current.total_banks(); ++b) {
    const bool on_now = current.bank_active(b);
    const bool on_next = next.bank_active(b);
    if (!on_now || on_next) continue;  // only banks being switched off flush
    const std::size_t dirty = l2_.dirty_lines(b);
    cost.dirty_lines_flushed += dirty;
    cost.flush_energy_pj += static_cast<double>(dirty) * l2_cfg.read_energy_pj;
    if (execute) {
      for (Addr line : l2_.flush_bank(b)) dram_.write(b, line, now);
    }
  }

  // The Miss bus serialises the write-backs: each occupies the bus and the
  // DRAM channel for the larger of the two occupancies.
  const Cycle per_line = std::max<Cycle>(dram_cfg.bus_transfer_cycles,
                                         dram_cfg.channel_burst_cycles);
  cost.flush_cycles = cost.dirty_lines_flushed * per_line;

  // ctr-signal distribution: one control word per routing-tree level,
  // serialised over a narrow configuration chain.
  cost.reprogram_cycles =
      2 * (log2_exact(current.total_banks()) + log2_exact(current.total_cores()));

  if (execute) {
    interconnect_.configure(next);
    l2_.set_active_banks(next.bank_mask());
    if (dir_ != nullptr) {
      // The drain precondition guarantees no transaction (and no
      // invalidation) is in flight, so the directory can be re-sliced
      // atomically: every tracked line moves to the physical bank its
      // logical index now routes to.  Sharer/owner state survives — the
      // L1s were not flushed, only the L2 banks being gated were.
      const std::uint64_t before = dir_->stats().dir_migrations;
      dir_->remap([this](BankId logical) { return interconnect_.route(logical); });
      cost.dir_entries_migrated = dir_->stats().dir_migrations - before;
    }
  }
  return cost;
}

ReconfigCost ReconfigManager::apply(const PowerState& next, Cycle now) {
  // The fault-degradation path can request arbitrary gating masks; a state
  // with no powered bank would brick the cluster mid-run, so reject it
  // loudly instead of tripping asserts downstream.
  if (next.active_banks() == 0) {
    throw std::invalid_argument(
        "reconfiguration rejected: target power state '" + next.name() +
        "' would leave zero active banks");
  }
  assert(interconnect_.idle() && "cores must be quiesced before reconfiguration");
  return plan(next, /*execute=*/true, now);
}

ReconfigCost ReconfigManager::estimate(const PowerState& next) const {
  return const_cast<ReconfigManager*>(this)->plan(next, /*execute=*/false, 0);
}

}  // namespace mot3d::core
