// Timing, energy and leakage model of the (pipelined) circuit-switched
// 3-D MoT interconnect.
//
// Latency: a request crosses its core's routing tree (log2(banks) switch
// levels + the tree's wires), the target bank's arbitration tree
// (log2(cores) levels + wires) and the TSV stack; the response returns
// through the mirrored network.  Pipeline registers are retimed along the
// combinational path (the pipelining of ref [10]), so the stage count of
// each direction is ceil(path delay / clock period).  Power-gating shrinks
// the *active* field spans (Fig. 5), which shortens the wires and removes
// pipeline stages — this is how Table I's latencies arise:
//
//     Full connection  (16 cores, 32 banks):  5 + 3 + 4 = 12 cycles
//     PC16-MB8         (16 cores,  8 banks):  3 + 3 + 3 =  9 cycles
//     PC4-MB32         ( 4 cores, 32 banks):  3 + 3 + 3 =  9 cycles
//     PC4-MB8          ( 4 cores,  8 banks):  2 + 3 + 2 =  7 cycles
//
// (request + bank + response; the bank access comes from the CACTI-lite
// model).  Nothing here is hard-coded to those numbers — they emerge from
// the technology constants in phys::TechnologyParams, and the unit tests
// assert the Table I values.
#pragma once

#include <cstddef>

#include "cacti/sram_model.hpp"
#include "core/power_state.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"
#include "phys/tsv.hpp"
#include "phys/wire.hpp"

namespace mot3d::core {

/// Datapath widths of the MoT buses.
struct MotBusConfig {
  std::size_t addr_bits = 32;
  std::size_t ctl_bits = 8;
  std::size_t data_bits = 64;   ///< per-beat datapath width
  std::size_t line_bytes = 32;  ///< cache-line transfer granule

  std::size_t request_header_bits() const { return addr_bits + ctl_bits; }
  std::size_t response_header_bits() const { return ctl_bits; }
  std::size_t line_bits() const { return line_bytes * 8; }
  std::size_t line_beats() const { return line_bits() / data_bits; }
};

/// Pipeline latencies of one power state.
struct MotStateTiming {
  unsigned request_cycles = 0;   ///< core -> bank pipeline stages
  unsigned bank_cycles = 0;      ///< SRAM bank access (CACTI-lite)
  unsigned response_cycles = 0;  ///< bank -> core pipeline stages
  double request_delay_ns = 0.0;
  double response_delay_ns = 0.0;

  unsigned l2_round_trip() const {
    return request_cycles + bank_cycles + response_cycles;
  }
};

class MotTimingModel {
 public:
  MotTimingModel(const phys::TechnologyParams& tech,
                 const phys::FloorplanParams& floorplan,
                 const cacti::SramBankConfig& bank_cfg,
                 MotBusConfig bus = {});

  /// Pipeline timing with `active_cores` / `active_banks` powered.
  MotStateTiming timing(std::size_t active_cores, std::size_t active_banks) const;
  MotStateTiming timing(const PowerState& state) const {
    return timing(state.active_cores(), state.active_banks());
  }

  /// Dynamic energy of one request traversal (header, plus the line for
  /// write-backs), pJ.
  double request_energy_pj(const PowerState& state, bool carries_line) const;

  /// Dynamic energy of one response traversal, pJ.
  double response_energy_pj(const PowerState& state, bool carries_line) const;

  /// Leakage of the powered network: repeater inverters along the active
  /// wires + powered routing/arbitration switches (both directions), mW.
  double leakage_mw(const PowerState& state) const;

  /// Same at junction temperature `temp_c` (the thermal loop's view of the
  /// channel; `leakage_mw` quotes the reference temperature of `temp`).
  double leakage_mw_at(const PowerState& state, double temp_c,
                       const LeakageTempParams& temp = {}) const;

  /// Powered switch instances (both networks) — Fig. 4's white+gray set.
  std::size_t powered_switches(const PowerState& state) const;

  /// Repeater inverters on the active network, per state (the inverters
  /// the paper explicitly power-gates), summed over all bus bits.
  std::size_t powered_repeaters(const PowerState& state) const;

  const phys::ClusterGeometry& geometry() const { return geometry_; }
  const phys::WireModel& wire() const { return wire_; }
  const MotBusConfig& bus() const { return bus_; }
  unsigned bank_access_cycles() const { return bank_cycles_; }

 private:
  /// Sum of per-level repeated-wire delays of a tree with `levels` levels
  /// spanning `span_mm`.
  double tree_wire_delay_ns(double span_mm, unsigned levels) const;
  double path_energy_pj(double path_mm, unsigned switch_levels,
                        std::size_t bits) const;

  phys::TechnologyParams tech_;
  phys::ClusterGeometry geometry_;
  phys::WireModel wire_;
  phys::TsvModel tsv_;
  MotBusConfig bus_;
  unsigned bank_cycles_;
  unsigned levels_banks_;  ///< log2(total banks)
  unsigned levels_cores_;  ///< log2(total cores)
};

}  // namespace mot3d::core
