#include "core/mot_timing.hpp"

#include <cmath>

#include "core/arbitration_tree.hpp"
#include "core/routing_tree.hpp"

namespace mot3d::core {

MotTimingModel::MotTimingModel(const phys::TechnologyParams& tech,
                               const phys::FloorplanParams& floorplan,
                               const cacti::SramBankConfig& bank_cfg,
                               MotBusConfig bus)
    : tech_(tech),
      geometry_(floorplan, tech),
      wire_(tech),
      tsv_(tech),
      bus_(bus),
      bank_cycles_(cacti::access_cycles(bank_cfg, tech.clock_period_ns)),
      levels_banks_(log2_exact(floorplan.max_banks)),
      levels_cores_(log2_exact(floorplan.max_cores)) {}

double MotTimingModel::tree_wire_delay_ns(double span_mm, unsigned levels) const {
  double sum = 0.0;
  for (unsigned l = 0; l < levels; ++l) {
    sum += wire_.repeated_delay_ns(
        phys::ClusterGeometry::tree_level_length_mm(span_mm, l));
  }
  return sum;
}

MotStateTiming MotTimingModel::timing(std::size_t active_cores,
                                      std::size_t active_banks) const {
  MotStateTiming t;
  const double span_b = geometry_.bank_field_span_mm(active_banks);
  const double span_c = geometry_.core_field_span_mm(active_cores);
  const double tsv = tsv_.stack_delay_ns(2);  // worst case: top tier

  // Request: core interface -> routing tree (all structural levels; the
  // forced/user-defined switches are still on the path) -> arbitration
  // tree -> TSV stack.  Wires span only the *active* fields.
  t.request_delay_ns = tech_.interface_delay_ns +
                       levels_banks_ * tech_.routing_switch_delay_ns +
                       tree_wire_delay_ns(span_b, levels_banks_) +
                       levels_cores_ * tech_.arbitration_switch_delay_ns +
                       tree_wire_delay_ns(span_c, levels_cores_) + tsv;

  // Response: mirrored network of plain-mux collectors (no arbitration —
  // each core has a single outstanding transaction).
  t.response_delay_ns =
      tech_.interface_delay_ns +
      (levels_banks_ + levels_cores_) * tech_.response_switch_delay_ns +
      tree_wire_delay_ns(span_b, levels_banks_) +
      tree_wire_delay_ns(span_c, levels_cores_) + tsv;

  const double T = tech_.clock_period_ns;
  t.request_cycles = static_cast<unsigned>(std::ceil(t.request_delay_ns / T - 1e-9));
  t.response_cycles = static_cast<unsigned>(std::ceil(t.response_delay_ns / T - 1e-9));
  t.bank_cycles = bank_cycles_;
  return t;
}

double MotTimingModel::path_energy_pj(double path_mm, unsigned switch_levels,
                                      std::size_t bits) const {
  const double wire_fj = wire_.switch_energy_fj_per_bit(path_mm);
  const double switch_fj = switch_levels * tech_.switch_energy_fj_per_bit;
  const double tsv_fj = 2.0 * tsv_.energy_fj_per_bit();  // two bonded tiers
  return (wire_fj + switch_fj + tsv_fj) * static_cast<double>(bits) * 1e-3;
}

double MotTimingModel::request_energy_pj(const PowerState& state,
                                         bool carries_line) const {
  const double path =
      geometry_.request_path_mm(state.active_cores(), state.active_banks());
  const std::size_t bits =
      bus_.request_header_bits() + (carries_line ? bus_.line_bits() : 0);
  return path_energy_pj(path, levels_banks_ + levels_cores_, bits);
}

double MotTimingModel::response_energy_pj(const PowerState& state,
                                          bool carries_line) const {
  const double path =
      geometry_.response_path_mm(state.active_cores(), state.active_banks());
  const std::size_t bits =
      bus_.response_header_bits() + (carries_line ? bus_.line_bits() : 0);
  return path_energy_pj(path, levels_banks_ + levels_cores_, bits);
}

std::size_t MotTimingModel::powered_switches(const PowerState& state) const {
  // Exact structural count: build scratch trees and configure them (cheap:
  // at most total_banks-1 nodes each).  Request network: one routing tree
  // per active core + one arbitration tree per active bank; the response
  // network mirrors it.
  RoutingTree rt(state.total_banks());
  const std::size_t rt_powered = rt.configure(state);
  ArbitrationTree at(state.total_cores());
  const std::size_t at_powered = at.configure(state);

  RoutingTree resp_rt(state.total_cores());
  // Response routing is by core index; its don't-care levels follow the
  // core fold.  Build an equivalent bank/core-swapped state.
  const PowerState swapped("resp", state.total_banks(), state.active_banks(),
                           state.total_cores(), state.active_cores());
  const std::size_t resp_rt_powered = resp_rt.configure(swapped);
  ArbitrationTree resp_at(state.total_banks());
  const std::size_t resp_at_powered = resp_at.configure(swapped);

  return state.active_cores() * rt_powered + state.active_banks() * at_powered +
         state.active_banks() * resp_rt_powered +
         state.active_cores() * resp_at_powered;
}

std::size_t MotTimingModel::powered_repeaters(const PowerState& state) const {
  const double span_b = geometry_.bank_field_span_mm(state.active_banks());
  const double span_c = geometry_.core_field_span_mm(state.active_cores());

  auto per_tree = [this](double span, unsigned levels) {
    std::size_t n = 0;
    for (unsigned l = 0; l < levels; ++l) {
      const double edge = phys::ClusterGeometry::tree_level_length_mm(span, l);
      n += (std::size_t{1} << (l + 1)) * wire_.repeater_count(edge);
    }
    return n;
  };

  const std::size_t req_bits = bus_.request_header_bits() + bus_.line_bits();
  const std::size_t resp_bits = bus_.response_header_bits() + bus_.line_bits();

  // Request network: routing trees over the bank field (one per active
  // core) and arbitration trees over the core field (one per active bank);
  // response network mirrored.
  const std::size_t req =
      (state.active_cores() * per_tree(span_b, levels_banks_) +
       state.active_banks() * per_tree(span_c, levels_cores_)) *
      req_bits;
  const std::size_t resp =
      (state.active_banks() * per_tree(span_c, levels_cores_) +
       state.active_cores() * per_tree(span_b, levels_banks_)) *
      resp_bits;
  return req + resp;
}

double MotTimingModel::leakage_mw(const PowerState& state) const {
  const double switches =
      static_cast<double>(powered_switches(state)) * tech_.switch_leak_uw * 1e-3;
  const double repeaters =
      static_cast<double>(powered_repeaters(state)) * tech_.repeater_leak_uw * 1e-3;
  return switches + repeaters;
}

double MotTimingModel::leakage_mw_at(const PowerState& state, double temp_c,
                                     const LeakageTempParams& temp) const {
  // Switch logic and repeater inverters share the channel and leak by the
  // same sub-threshold law, so the whole network scales with one factor.
  return leakage_mw(state) * leakage_temp_scale(temp_c, temp);
}

}  // namespace mot3d::core
