// The MoT switch primitives (paper Fig. 2(b), Fig. 2(c), Fig. 3).
//
// RoutingSwitch models the paper's *modified* routing switch: the classic
// MUX + DEMUX + address-decode control, extended with one extra multiplexer
// and two control signals (ctr_0, ctr_1) that select between conventional
// (address-based) routing and a user-defined direction — the mechanism that
// makes the interconnect reconfigurable for power-gating.  The original
// (unmodified) switch is simply a modified switch pinned to conventional
// mode.
//
// ArbitrationSwitch models the 2-input round-robin arbitration switch: the
// packet "must be arbitrated among the other simultaneous packets heading
// for the same cache bank"; round-robin makes it starvation-free.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/types.hpp"

namespace mot3d::core {

/// Operating mode of a (modified) routing switch.
enum class RouteMode : std::uint8_t {
  kConventional,  ///< direction = packet's bank-index address bit
  kForcePort0,    ///< user-defined: always port 0 (lower subtree)
  kForcePort1,    ///< user-defined: always port 1 (upper subtree)
  kPowerGated,    ///< switch off; no packet may traverse
};

/// Control-signal encoding of Fig. 3(b): {ctr_1, ctr_0} selects the mode.
///   (0,0) conventional, (0,1) force port 0, (1,0) force port 1,
///   (1,1) power-gated.
struct ControlSignals {
  bool ctr_0 = false;
  bool ctr_1 = false;
};

RouteMode mode_from_signals(ControlSignals s);
ControlSignals signals_from_mode(RouteMode m);

/// One (modified) routing switch examining bank-index bit `addr_bit`.
class RoutingSwitch {
 public:
  explicit RoutingSwitch(unsigned addr_bit = 0) : addr_bit_(addr_bit) {}

  void set_mode(RouteMode m) { mode_ = m; }
  RouteMode mode() const { return mode_; }

  /// Drive the ctr wires directly (Fig. 3(b)).
  void set_control(ControlSignals s) { mode_ = mode_from_signals(s); }
  ControlSignals control() const { return signals_from_mode(mode_); }

  /// Which bank-index bit the conventional decode examines.
  unsigned addr_bit() const { return addr_bit_; }

  /// Route a packet destined for logical bank `bank_index`.
  /// Returns the output port (0 or 1), or nullopt if the switch is gated.
  std::optional<unsigned> route(BankId bank_index) const {
    switch (mode_) {
      case RouteMode::kConventional:
        return (bank_index >> addr_bit_) & 1u;
      case RouteMode::kForcePort0:
        return 0u;
      case RouteMode::kForcePort1:
        return 1u;
      case RouteMode::kPowerGated:
        return std::nullopt;
    }
    return std::nullopt;
  }

  bool powered() const { return mode_ != RouteMode::kPowerGated; }

 private:
  unsigned addr_bit_;
  RouteMode mode_ = RouteMode::kConventional;
};

/// One 2-input round-robin arbitration switch (Fig. 2(c)).  The priority
/// pointer flips on every grant, which makes a tree of these switches
/// starvation-free with bounded waiting.
class ArbitrationSwitch {
 public:
  /// Grant one of the requesting inputs; nullopt when neither requests or
  /// the switch is power-gated.
  std::optional<unsigned> arbitrate(bool req0, bool req1) {
    const std::optional<unsigned> winner = peek(req0, req1);
    if (winner.has_value()) commit(*winner);
    return winner;
  }

  /// Combinational grant decision without touching the round-robin state
  /// (the hardware only rotates priority on switches along the *granted*
  /// path; see ArbitrationTree).
  std::optional<unsigned> peek(bool req0, bool req1) const {
    if (!powered_) return std::nullopt;
    if (!req0 && !req1) return std::nullopt;
    if (req0 && req1) return prefer_;
    return req0 ? 0u : 1u;
  }

  /// Rotate priority after a grant travelled through this switch.
  void commit(unsigned winner) { prefer_ = 1u - winner; }

  unsigned preferred_input() const { return prefer_; }
  void set_powered(bool on) { powered_ = on; }
  bool powered() const { return powered_; }

 private:
  unsigned prefer_ = 0;
  bool powered_ = true;
};

}  // namespace mot3d::core
