// Power states of the reconfigurable 3-D MoT cluster (paper Section III,
// Table I, Figs. 4/7/8).
//
// A power state selects how many cores and L2 banks stay powered.  Gating
// is *centre-folding*: the routing-tree levels that become don't-care run
// in user-defined mode and force packets toward the die centre, so the
// surviving banks are the contiguous centre group and the active wire
// spans shrink (Fig. 5).  This reproduces the paper's Fig. 4 example
// exactly: with 8 banks and level 1 forced, M0->M2, M1->M3, M6->M4, M7->M5
// while M2..M5 survive in place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mot3d::core {

class PowerState {
 public:
  /// `total_*` describe the physical cluster; `active_*` what stays on.
  /// All four values must be powers of two, active <= total.
  PowerState(std::string name, std::size_t total_cores, std::size_t active_cores,
             std::size_t total_banks, std::size_t active_banks);

  // -- the paper's four states (Table I) --
  static PowerState full();       ///< 16 cores, 32 banks
  static PowerState pc16_mb8();   ///< 16 cores,  8 banks
  static PowerState pc4_mb32();   ///<  4 cores, 32 banks
  static PowerState pc4_mb8();    ///<  4 cores,  8 banks
  static const std::vector<PowerState>& paper_states();

  const std::string& name() const { return name_; }
  std::size_t total_cores() const { return total_cores_; }
  std::size_t active_cores() const { return active_cores_; }
  std::size_t total_banks() const { return total_banks_; }
  std::size_t active_banks() const { return active_banks_; }

  /// Number of routing-tree levels running in user-defined mode
  /// (log2(total/active) bank-index bits become don't-care).
  unsigned forced_bank_levels() const;
  /// Same for the response-side routing by core index.
  unsigned forced_core_levels() const;

  /// Physical bank serving logical bank `logical` in this state — the
  /// centre-fold map implemented by the user-defined routing switches.
  BankId remap_bank(BankId logical) const;

  /// Physical core hosting software thread `thread` (0-based among the
  /// active cores); active cores are the centre group.
  CoreId core_of_thread(std::size_t thread) const;

  /// Powered-bank mask over the physical banks.
  std::vector<bool> bank_mask() const;
  /// Powered-core mask over the physical cores.
  std::vector<bool> core_mask() const;

  bool bank_active(BankId b) const;
  bool core_active(CoreId c) const;

  bool operator==(const PowerState& o) const {
    return total_cores_ == o.total_cores_ && active_cores_ == o.active_cores_ &&
           total_banks_ == o.total_banks_ && active_banks_ == o.active_banks_;
  }

  /// First physical id of the active centre group of `active` out of
  /// `total` slots (shared by banks and cores).
  static std::uint32_t centre_base(std::size_t total, std::size_t active,
                                   bool upper_half);

  /// Centre-fold of `logical` among `total` slots onto the active group.
  static std::uint32_t centre_fold(std::uint32_t logical, std::size_t total,
                                   std::size_t active);

 private:
  std::string name_;
  std::size_t total_cores_;
  std::size_t active_cores_;
  std::size_t total_banks_;
  std::size_t active_banks_;
};

}  // namespace mot3d::core
