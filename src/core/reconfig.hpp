// Power-state reconfiguration sequencing (paper Section III).
//
// "If cache banks are turned off at runtime, dirty cache blocks in the
// power-off banks must be written back to the off-cluster memory for data
// coherency.  After turning on the cache banks again, the old cache data
// that does not belong to cache banks any more will be removed by the
// cache replacement policy."
//
// The manager performs exactly that protocol: with the cores quiesced it
// (1) flushes the dirty lines of every bank about to be gated, posting the
// write-backs on the round-robin Miss bus, (2) reprograms the ctr signals
// of every routing switch, (3) updates the L2 powered-bank mask.  Stale
// lines in surviving banks are left to die by replacement, as in the paper.
#pragma once

#include <cstdint>

#include "coherence/directory.hpp"
#include "common/types.hpp"
#include "core/mot_interconnect.hpp"
#include "core/power_state.hpp"
#include "mem/memory_backend.hpp"
#include "mem/l2_system.hpp"

namespace mot3d::core {

/// Cost summary of one state transition.
struct ReconfigCost {
  std::uint64_t dirty_lines_flushed = 0;
  Cycle flush_cycles = 0;       ///< Miss-bus serialisation of the write-backs
  Cycle reprogram_cycles = 0;   ///< ctr-signal distribution to the switches
  double flush_energy_pj = 0.0; ///< bank read-outs for the flushed lines
  /// Directory entries re-sliced onto the surviving banks (0 without a
  /// coherence directory).  L1 contents are not flushed by a bank-gating
  /// transition, so the sharer/owner state must follow the remap.
  std::uint64_t dir_entries_migrated = 0;

  Cycle total_cycles() const { return flush_cycles + reprogram_cycles; }
};

class ReconfigManager {
 public:
  ReconfigManager(MotInterconnect& interconnect, mem::L2System& l2,
                  mem::MemoryBackend& dram)
      : interconnect_(interconnect), l2_(l2), dram_(dram) {}

  /// Transition to `next` at time `now`.  Preconditions: the cores are
  /// quiesced (no request in flight through the interconnect) — asserted
  /// via Interconnect::idle().  Throws std::invalid_argument (a clear
  /// error, not an assert) if `next` would leave zero active banks — a
  /// request the fault-degradation path can generate.
  ReconfigCost apply(const PowerState& next, Cycle now);

  /// Write-back cost estimate without performing the transition (used by
  /// runtime policies deciding whether a switch is worth it).
  ReconfigCost estimate(const PowerState& next) const;

  /// Coherence directory to migrate alongside the bank remap (optional;
  /// null when the run has no sharing workload).
  void set_directory(coherence::CoherenceDirectory* dir) { dir_ = dir; }

 private:
  ReconfigCost plan(const PowerState& next, bool execute, Cycle now);

  MotInterconnect& interconnect_;
  mem::L2System& l2_;
  mem::MemoryBackend& dram_;
  coherence::CoherenceDirectory* dir_ = nullptr;
};

}  // namespace mot3d::core
