#include "core/power_state.hpp"

#include <stdexcept>

namespace mot3d::core {

PowerState::PowerState(std::string name, std::size_t total_cores,
                       std::size_t active_cores, std::size_t total_banks,
                       std::size_t active_banks)
    : name_(std::move(name)),
      total_cores_(total_cores),
      active_cores_(active_cores),
      total_banks_(total_banks),
      active_banks_(active_banks) {
  if (!is_pow2(total_cores) || !is_pow2(active_cores) || !is_pow2(total_banks) ||
      !is_pow2(active_banks)) {
    throw std::invalid_argument("power state sizes must be powers of two");
  }
  if (active_cores > total_cores || active_banks > total_banks) {
    throw std::invalid_argument("active count exceeds total");
  }
}

PowerState PowerState::full() { return {"Full", 16, 16, 32, 32}; }
PowerState PowerState::pc16_mb8() { return {"PC16-MB8", 16, 16, 32, 8}; }
PowerState PowerState::pc4_mb32() { return {"PC4-MB32", 16, 4, 32, 32}; }
PowerState PowerState::pc4_mb8() { return {"PC4-MB8", 16, 4, 32, 8}; }

const std::vector<PowerState>& PowerState::paper_states() {
  static const std::vector<PowerState> states = {full(), pc16_mb8(), pc4_mb32(),
                                                 pc4_mb8()};
  return states;
}

unsigned PowerState::forced_bank_levels() const {
  return log2_exact(total_banks_ / active_banks_);
}

unsigned PowerState::forced_core_levels() const {
  return log2_exact(total_cores_ / active_cores_);
}

std::uint32_t PowerState::centre_base(std::size_t total, std::size_t active,
                                      bool upper_half) {
  const auto t = static_cast<std::uint32_t>(total);
  const auto a = static_cast<std::uint32_t>(active);
  return upper_half ? t / 2 : t / 2 - a / 2;
}

std::uint32_t PowerState::centre_fold(std::uint32_t logical, std::size_t total,
                                      std::size_t active) {
  const auto t = static_cast<std::uint32_t>(total);
  const auto a = static_cast<std::uint32_t>(active);
  if (a >= t) return logical;        // nothing gated
  if (a == 1) return t / 2;          // every level forced; root folds right
  const unsigned n = log2_exact(t);
  const bool upper = (logical >> (n - 1)) != 0;
  const std::uint32_t low = logical & (a / 2 - 1);
  return centre_base(total, active, upper) + low;
}

BankId PowerState::remap_bank(BankId logical) const {
  return centre_fold(logical, total_banks_, active_banks_);
}

CoreId PowerState::core_of_thread(std::size_t thread) const {
  if (thread >= active_cores_) throw std::out_of_range("thread beyond active cores");
  if (active_cores_ == total_cores_) return static_cast<CoreId>(thread);
  return static_cast<CoreId>(total_cores_ / 2 - active_cores_ / 2 + thread);
}

std::vector<bool> PowerState::bank_mask() const {
  std::vector<bool> mask(total_banks_, false);
  for (std::size_t b = 0; b < total_banks_; ++b) {
    mask[b] = bank_active(static_cast<BankId>(b));
  }
  return mask;
}

std::vector<bool> PowerState::core_mask() const {
  std::vector<bool> mask(total_cores_, false);
  for (std::size_t c = 0; c < total_cores_; ++c) {
    mask[c] = core_active(static_cast<CoreId>(c));
  }
  return mask;
}

bool PowerState::bank_active(BankId b) const {
  if (active_banks_ == total_banks_) return b < total_banks_;
  if (active_banks_ == 1) return b == total_banks_ / 2;
  const std::uint32_t lo = centre_base(total_banks_, active_banks_, false);
  return b >= lo && b < lo + active_banks_;
}

bool PowerState::core_active(CoreId c) const {
  if (active_cores_ == total_cores_) return c < total_cores_;
  if (active_cores_ == 1) return c == total_cores_ / 2;
  const std::uint32_t lo = centre_base(total_cores_, active_cores_, false);
  return c >= lo && c < lo + active_cores_;
}

}  // namespace mot3d::core
