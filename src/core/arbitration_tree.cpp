#include "core/arbitration_tree.hpp"

#include <cassert>
#include <stdexcept>

namespace mot3d::core {

ArbitrationTree::ArbitrationTree(std::size_t total_cores)
    : total_cores_(total_cores) {
  if (!is_pow2(total_cores) || total_cores < 2) {
    throw std::invalid_argument("arbitration tree needs a power-of-two >= 2 inputs");
  }
  levels_ = log2_exact(total_cores);
  nodes_.resize(total_cores - 1);
  node_req_.assign(2 * total_cores - 1, 0);
}

std::size_t ArbitrationTree::configure(const PowerState& state) {
  if (state.total_cores() != total_cores_) {
    throw std::invalid_argument("power state core count mismatch");
  }
  // A switch stays powered iff at least one core in its subtree is active.
  for (unsigned l = 0; l < levels_; ++l) {
    const std::size_t count = std::size_t{1} << l;
    const std::size_t span = total_cores_ >> l;  // cores per subtree
    for (std::size_t i = 0; i < count; ++i) {
      bool any = false;
      for (std::size_t c = i * span; c < (i + 1) * span; ++c) {
        if (state.core_active(static_cast<CoreId>(c))) {
          any = true;
          break;
        }
      }
      nodes_[node_index(l, i)].set_powered(any);
    }
  }
  return powered_switches();
}

ArbitrationTree::Outcome ArbitrationTree::descend(unsigned level, std::size_t index,
                                                  const std::vector<bool>& requesting) {
  const std::size_t span = total_cores_ >> level;
  if (span == 1) {
    // Virtual leaf: the core's request wire.
    const bool req = index < requesting.size() && requesting[index];
    return {req, static_cast<CoreId>(index)};
  }
  ArbitrationSwitch& sw = nodes_[node_index(level, index)];
  if (!sw.powered()) return {false, 0};

  const Outcome left = descend(level + 1, index * 2, requesting);
  const Outcome right = descend(level + 1, index * 2 + 1, requesting);
  const std::optional<unsigned> choice = sw.peek(left.requesting, right.requesting);
  if (!choice.has_value()) return {false, 0};
  return {true, *choice == 0 ? left.winner : right.winner};
}

void ArbitrationTree::commit_path(unsigned level, std::size_t index,
                                  const std::vector<bool>& requesting) {
  const std::size_t span = total_cores_ >> level;
  if (span == 1) return;
  ArbitrationSwitch& sw = nodes_[node_index(level, index)];
  const Outcome left = descend(level + 1, index * 2, requesting);
  const Outcome right = descend(level + 1, index * 2 + 1, requesting);
  const std::optional<unsigned> choice = sw.peek(left.requesting, right.requesting);
  if (!choice.has_value()) return;
  // Round-robin priority rotates only along the granted spine; switches in
  // losing subtrees keep their pointers — this is what bounds any core's
  // wait by the number of contenders.
  sw.commit(*choice);
  commit_path(level + 1, index * 2 + *choice, requesting);
}

std::optional<CoreId> ArbitrationTree::arbitrate(const std::vector<bool>& requesting) {
  const Outcome out = descend(0, 0, requesting);
  if (!out.requesting) return std::nullopt;
  commit_path(0, 0, requesting);
  return out.winner;
}

std::optional<CoreId> ArbitrationTree::arbitrate_sparse(const CoreId* candidates,
                                                        std::size_t count) {
  // Phase 1: raise each candidate's request wire and propagate it upward
  // through powered switches.  A node's flag ends up true exactly when the
  // recursive descend() would report Outcome.requesting for it: the node is
  // powered and some candidate leaf reaches it through powered switches.
  for (std::size_t k = 0; k < count; ++k) {
    const CoreId c = candidates[k];
    assert(c < total_cores_);
    std::size_t idx = total_cores_ - 1 + c;  // virtual leaf heap slot
    if (node_req_[idx]) continue;
    node_req_[idx] = 1;
    marked_.push_back(static_cast<std::uint32_t>(idx));
    while (idx != 0) {
      idx = (idx - 1) / 2;
      if (node_req_[idx]) break;            // path already raised
      if (!nodes_[idx].powered()) break;    // gated subtree blocks the wire
      node_req_[idx] = 1;
      marked_.push_back(static_cast<std::uint32_t>(idx));
    }
  }

  std::optional<CoreId> winner;
  if (node_req_[0]) {
    // Phase 2: one root-to-leaf descent.  Each peek sees the same child
    // request flags the full recursive walk computes, so the round-robin
    // choices — and the committed spine — are identical.
    std::size_t idx = 0;
    while (idx < total_cores_ - 1) {
      const std::size_t l = idx * 2 + 1;
      const std::size_t r = idx * 2 + 2;
      const std::optional<unsigned> choice =
          nodes_[idx].peek(node_req_[l] != 0, node_req_[r] != 0);
      assert(choice.has_value());
      nodes_[idx].commit(*choice);
      idx = (*choice == 0) ? l : r;
    }
    winner = static_cast<CoreId>(idx - (total_cores_ - 1));
  }

  for (const std::uint32_t m : marked_) node_req_[m] = 0;
  marked_.clear();
  return winner;
}

std::size_t ArbitrationTree::powered_switches() const {
  std::size_t n = 0;
  for (const ArbitrationSwitch& sw : nodes_) n += sw.powered() ? 1 : 0;
  return n;
}

const ArbitrationSwitch& ArbitrationTree::switch_at(unsigned level,
                                                    std::size_t index) const {
  return nodes_.at(node_index(level, index));
}

}  // namespace mot3d::core
