#include "core/mot_interconnect.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"

namespace mot3d::core {

MotInterconnect::MotInterconnect(const MotTimingModel& timing,
                                 const PowerState& initial,
                                 MotInterconnectConfig cfg)
    : timing_(timing),
      cfg_(cfg),
      state_(initial),
      state_timing_(timing.timing(initial)),
      routing_(initial.total_banks()),
      core_slot_(initial.total_cores()),
      bank_free_at_(initial.total_banks(), 0),
      bank_waiters_(initial.total_banks()),
      pending_banks_((initial.total_banks() + 63) / 64, 0),
      bank_fault_penalty_(initial.total_banks(), 0) {
  bank_arbiters_.reserve(initial.total_banks());
  for (std::size_t b = 0; b < initial.total_banks(); ++b) {
    bank_arbiters_.emplace_back(initial.total_cores());
  }
  configure(initial);
}

void MotInterconnect::configure(const PowerState& state) {
  state_ = state;
  state_timing_ = timing_.timing(state);
  routing_.configure(state);
  for (ArbitrationTree& at : bank_arbiters_) at.configure(state);
  // Rebuild the waiter index from the slots.  Reconfiguration normally
  // happens drained (no valid slots); in-flight requests keep the physical
  // bank they were routed to at injection, exactly as before.
  for (std::vector<CoreId>& w : bank_waiters_) w.clear();
  std::fill(pending_banks_.begin(), pending_banks_.end(), 0);
  valid_slots_ = 0;
  for (CoreId c = 0; c < core_slot_.size(); ++c) {
    if (core_slot_[c].valid) add_waiter(c, core_slot_[c].physical_bank);
  }
}

void MotInterconnect::add_waiter(CoreId core, BankId bank) {
  bank_waiters_[bank].push_back(core);
  pending_banks_[bank >> 6] |= std::uint64_t{1} << (bank & 63);
  ++valid_slots_;
}

void MotInterconnect::remove_waiter(CoreId core, BankId bank) {
  std::vector<CoreId>& w = bank_waiters_[bank];
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] == core) {
      // Waiter order is immaterial: the arbitration tree alone picks the
      // winner, and arbitrate_sparse is candidate-order independent.
      w[i] = w.back();
      w.pop_back();
      break;
    }
  }
  if (w.empty()) {
    pending_banks_[bank >> 6] &= ~(std::uint64_t{1} << (bank & 63));
  }
  --valid_slots_;
}

void MotInterconnect::add_bank_fault_penalty(BankId b, unsigned cycles) {
  if (b >= bank_fault_penalty_.size()) throw std::out_of_range("bad bank id");
  bank_fault_penalty_[b] += cycles;
}

BankId MotInterconnect::route(BankId logical) const {
  const std::optional<BankId> phys = routing_.resolve(logical);
  assert(phys.has_value() && "routing tree blocked an in-range bank index");
  return *phys;
}

bool MotInterconnect::try_inject_request(const MemRequest& req, Cycle now) {
  if (req.core >= core_slot_.size()) throw std::out_of_range("bad core id");
  assert(state_.core_active(req.core) && "gated core injected a request");
  InFlight& slot = core_slot_[req.core];
  if (slot.valid) return false;  // circuit already held by this core

  slot.req = req;
  slot.physical_bank = route(req.bank);
  slot.eligible = now + state_timing_.request_cycles;
  slot.valid = true;
  add_waiter(req.core, slot.physical_bank);
  ++stats_.requests_injected;
  dynamic_energy_pj_ += timing_.request_energy_pj(state_, req.is_write);
  return true;
}

bool MotInterconnect::try_inject_response(const MemResponse& resp, Cycle now) {
  responses_.push_back(PendingResponse{resp, now + state_timing_.response_cycles});
  ++stats_.responses_injected;
  // Read responses carry the refilled line; write acks are header-only.
  dynamic_energy_pj_ += timing_.response_energy_pj(state_, !resp.is_write);
  return true;
}

void MotInterconnect::tick(Cycle now) {
  // 1. Deliver responses whose constant-delay return path has elapsed.
  while (!responses_.empty() && responses_.front().due <= now) {
    const PendingResponse& pr = responses_.front();
    ++stats_.responses_delivered;
    emit_response(pr.resp, now);
    responses_.pop_front();
  }

  // 2. Per-bank arbitration among the requests that have traversed their
  //    routing trees.  One grant per bank per cycle, gated by the circuit
  //    hold of the previous transaction.  Only banks with waiters are
  //    visited (ascending bank id, same order as the dense scan); grants at
  //    one bank cannot create or remove contenders at another within the
  //    same cycle, since each core holds exactly one slot.
  for (std::size_t w = 0; w < pending_banks_.size(); ++w) {
    std::uint64_t word = pending_banks_[w];
    while (word != 0) {
      const BankId b = static_cast<BankId>(
          (w << 6) + static_cast<unsigned>(std::countr_zero(word)));
      word &= word - 1;
      if (!state_.bank_active(b) || bank_free_at_[b] > now) continue;
      candidates_.clear();
      for (const CoreId c : bank_waiters_[b]) {
        if (core_slot_[c].eligible <= now) candidates_.push_back(c);
      }
      if (candidates_.empty()) continue;
      const std::optional<CoreId> winner =
          bank_arbiters_[b].arbitrate_sparse(candidates_.data(),
                                             candidates_.size());
      assert(winner.has_value());
      InFlight& s = core_slot_[*winner];
      stats_.arbitration_wait_cycles += now - s.eligible;
      ++stats_.requests_delivered;
      if (trace_ != nullptr) {
        // One complete event per grant: ts = routing-tree arrival, dur =
        // cycles lost to arbitration/circuit hold.  Grant count and the
        // sum of durations therefore reproduce requests_delivered and
        // arbitration_wait_cycles exactly (pinned by the obs cross-check
        // test).
        trace_->complete("grant", trace_track_, s.eligible, now - s.eligible,
                         "core", *winner, "bank", b);
      }
      bank_free_at_[b] = now + cfg_.bank_hold_cycles + bank_fault_penalty_[b];
      if (bank_fault_penalty_[b] > 0) {
        // Degraded TSV column: the circuit establishment needs retry pulses.
        dynamic_energy_pj_ += fault_retry_pj_per_grant_;
        fault_retry_pj_ += fault_retry_pj_per_grant_;
      }
      MemRequest delivered = s.req;
      delivered.bank = b;  // physical
      s.valid = false;
      remove_waiter(*winner, b);
      emit_request(delivered, now);
    }
  }
}

Cycle MotInterconnect::next_event(Cycle now) const {
  Cycle next = kNeverCycle;
  // Head-of-line response delivery: tick() drains strictly from the front.
  if (!responses_.empty()) {
    next = std::max(responses_.front().due, now);
    if (next <= now) return now;
  }
  // Earliest possible grant per held circuit: the request must have
  // traversed its routing tree and the target bank's circuit hold must
  // have expired.  Losing arbitration can only delay a grant to a later
  // cycle that this bound re-derives after the winning grant is ticked.
  // Every valid slot sits in exactly one bank's waiter list, so walking
  // the pending banks visits the same set the dense slot scan did.
  for (std::size_t w = 0; w < pending_banks_.size(); ++w) {
    std::uint64_t word = pending_banks_[w];
    while (word != 0) {
      const BankId b = static_cast<BankId>(
          (w << 6) + static_cast<unsigned>(std::countr_zero(word)));
      word &= word - 1;
      const Cycle free_at = bank_free_at_[b];
      for (const CoreId c : bank_waiters_[b]) {
        const Cycle cand = std::max({core_slot_[c].eligible, free_at, now});
        next = std::min(next, cand);
        if (next <= now) return now;
      }
    }
  }
  return next;
}

bool MotInterconnect::idle() const {
  return responses_.empty() && valid_slots_ == 0;
}

}  // namespace mot3d::core
