#include "core/mot_interconnect.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mot3d::core {

MotInterconnect::MotInterconnect(const MotTimingModel& timing,
                                 const PowerState& initial,
                                 MotInterconnectConfig cfg)
    : timing_(timing),
      cfg_(cfg),
      state_(initial),
      state_timing_(timing.timing(initial)),
      routing_(initial.total_banks()),
      core_slot_(initial.total_cores()),
      bank_free_at_(initial.total_banks(), 0),
      requesting_(initial.total_cores(), false),
      bank_fault_penalty_(initial.total_banks(), 0) {
  bank_arbiters_.reserve(initial.total_banks());
  for (std::size_t b = 0; b < initial.total_banks(); ++b) {
    bank_arbiters_.emplace_back(initial.total_cores());
  }
  configure(initial);
}

void MotInterconnect::configure(const PowerState& state) {
  state_ = state;
  state_timing_ = timing_.timing(state);
  routing_.configure(state);
  for (ArbitrationTree& at : bank_arbiters_) at.configure(state);
}

void MotInterconnect::add_bank_fault_penalty(BankId b, unsigned cycles) {
  if (b >= bank_fault_penalty_.size()) throw std::out_of_range("bad bank id");
  bank_fault_penalty_[b] += cycles;
}

BankId MotInterconnect::route(BankId logical) const {
  const std::optional<BankId> phys = routing_.resolve(logical);
  assert(phys.has_value() && "routing tree blocked an in-range bank index");
  return *phys;
}

bool MotInterconnect::try_inject_request(const MemRequest& req, Cycle now) {
  if (req.core >= core_slot_.size()) throw std::out_of_range("bad core id");
  assert(state_.core_active(req.core) && "gated core injected a request");
  InFlight& slot = core_slot_[req.core];
  if (slot.valid) return false;  // circuit already held by this core

  slot.req = req;
  slot.physical_bank = route(req.bank);
  slot.eligible = now + state_timing_.request_cycles;
  slot.valid = true;
  ++stats_.requests_injected;
  dynamic_energy_pj_ += timing_.request_energy_pj(state_, req.is_write);
  return true;
}

bool MotInterconnect::try_inject_response(const MemResponse& resp, Cycle now) {
  responses_.push_back(PendingResponse{resp, now + state_timing_.response_cycles});
  ++stats_.responses_injected;
  // Read responses carry the refilled line; write acks are header-only.
  dynamic_energy_pj_ += timing_.response_energy_pj(state_, !resp.is_write);
  return true;
}

void MotInterconnect::tick(Cycle now) {
  // 1. Deliver responses whose constant-delay return path has elapsed.
  while (!responses_.empty() && responses_.front().due <= now) {
    const PendingResponse& pr = responses_.front();
    ++stats_.responses_delivered;
    if (response_sink_) response_sink_(pr.resp, now);
    responses_.pop_front();
  }

  // 2. Per-bank arbitration among the requests that have traversed their
  //    routing trees.  One grant per bank per cycle, gated by the circuit
  //    hold of the previous transaction.
  for (BankId b = 0; b < bank_arbiters_.size(); ++b) {
    if (!state_.bank_active(b) || bank_free_at_[b] > now) continue;
    bool any = false;
    for (CoreId c = 0; c < core_slot_.size(); ++c) {
      const InFlight& s = core_slot_[c];
      const bool wants = s.valid && s.physical_bank == b && s.eligible <= now;
      requesting_[c] = wants;
      any = any || wants;
    }
    if (!any) continue;
    const std::optional<CoreId> winner = bank_arbiters_[b].arbitrate(requesting_);
    assert(winner.has_value());
    InFlight& s = core_slot_[*winner];
    stats_.arbitration_wait_cycles += now - s.eligible;
    ++stats_.requests_delivered;
    bank_free_at_[b] = now + cfg_.bank_hold_cycles + bank_fault_penalty_[b];
    if (bank_fault_penalty_[b] > 0) {
      // Degraded TSV column: the circuit establishment needs retry pulses.
      dynamic_energy_pj_ += fault_retry_pj_per_grant_;
      fault_retry_pj_ += fault_retry_pj_per_grant_;
    }
    MemRequest delivered = s.req;
    delivered.bank = b;  // physical
    s.valid = false;
    if (request_sink_) request_sink_(delivered, now);
  }
}

Cycle MotInterconnect::next_event(Cycle now) const {
  Cycle next = kNeverCycle;
  // Head-of-line response delivery: tick() drains strictly from the front.
  if (!responses_.empty()) {
    next = std::max(responses_.front().due, now);
    if (next <= now) return now;
  }
  // Earliest possible grant per held circuit: the request must have
  // traversed its routing tree and the target bank's circuit hold must
  // have expired.  Losing arbitration can only delay a grant to a later
  // cycle that this bound re-derives after the winning grant is ticked.
  for (const InFlight& s : core_slot_) {
    if (!s.valid) continue;
    const Cycle c = std::max({s.eligible, bank_free_at_[s.physical_bank], now});
    next = std::min(next, c);
    if (next <= now) return now;
  }
  return next;
}

bool MotInterconnect::idle() const {
  if (!responses_.empty()) return false;
  for (const InFlight& s : core_slot_) {
    if (s.valid) return false;
  }
  return true;
}

}  // namespace mot3d::core
