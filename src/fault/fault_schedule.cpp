#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace mot3d::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTsvDegrade: return "tsv-degrade";
    case FaultKind::kTsvFail: return "tsv-fail";
    case FaultKind::kBankFail: return "bank-fail";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kRouterFail: return "router-fail";
    case FaultKind::kDropInvalidate: return "drop-invalidate";
    case FaultKind::kVaultFail: return "vault-fail";
  }
  return "?";
}

namespace {

std::uint64_t expected_events(double rate_per_10k, Cycle horizon) {
  if (rate_per_10k <= 0.0 || horizon == 0) return 0;
  return static_cast<std::uint64_t>(
      std::llround(rate_per_10k * static_cast<double>(horizon) / 10'000.0));
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultConfig& cfg, bool mot_fabric,
                             std::size_t total_banks, std::size_t num_routers) {
  events_ = cfg.events;

  // All randomness happens here, in a fixed draw order, from one seeded
  // SplitMix64 stream: the trace is a pure function of the config.
  Rng rng(cfg.seed);
  const std::uint64_t n_degrade = expected_events(cfg.tsv_fault_rate, cfg.horizon_cycles);
  const std::uint64_t n_hard = expected_events(cfg.bank_fault_rate, cfg.horizon_cycles);

  for (std::uint64_t i = 0; i < n_degrade; ++i) {
    FaultEvent ev;
    ev.cycle = 1 + rng.next_below(cfg.horizon_cycles);
    if (mot_fabric || num_routers == 0) {
      ev.kind = FaultKind::kTsvDegrade;
      ev.target = static_cast<std::uint32_t>(rng.next_below(total_banks));
    } else {
      ev.kind = FaultKind::kLinkDegrade;
      ev.target = static_cast<std::uint32_t>(rng.next_below(num_routers));
    }
    events_.push_back(ev);
  }

  for (std::uint64_t i = 0; i < n_hard; ++i) {
    FaultEvent ev;
    ev.cycle = 1 + rng.next_below(cfg.horizon_cycles);
    ev.target = static_cast<std::uint32_t>(rng.next_below(total_banks));
    // On the MoT, alternate between the two hard-fault flavours (a dead
    // TSV column and a dead bank array reach the same gating path but are
    // reported distinctly); the packet fabrics only see bank faults.
    ev.kind = (mot_fabric && i % 2 == 1) ? FaultKind::kTsvFail : FaultKind::kBankFail;
    events_.push_back(ev);
  }

  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.target != b.target) return a.target < b.target;
              return a.magnitude < b.magnitude;
            });
}

}  // namespace mot3d::fault
