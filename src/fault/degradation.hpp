// Graceful-degradation policy: maps an injected fault to the reaction the
// cluster executes through its existing machinery (bank-gating drains via
// ReconfigManager, MoT grant penalties, NoC router throttles) or to a
// structured unrecoverable verdict.
//
// The state machine (see DESIGN.md):
//
//   healthy --tsv-degrade--> degraded (penalty on the bank's TSV column)
//   healthy --link-degrade-> degraded (router serialises its flits)
//   healthy --bank/tsv-fail, MoT, bank gateable--> degraded
//            (drain, flush, directory migration, centre-fold remap)
//   any     --bank/tsv-fail, bank inside the minimum centre group-->
//            failed (structured outcome, partial results)
//   any     --bank/router-fail on a packet-switched fabric--> failed
//            (no reconfiguration path: the comparison point of the paper's
//             MoT, whose tree degrades instead of dying)
//
// The policy is a pure function of (event, current power state); all
// mutation happens in the cluster, so both schedulers take identical
// decisions at identical cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "core/power_state.hpp"
#include "fault/fault_schedule.hpp"

namespace mot3d::fault {

enum class DegradeActionKind {
  kNone,            ///< benign: the faulted unit is already gated out
  kDegradeMotBank,  ///< add grant penalty cycles to a MoT bank channel
  kGateBanks,       ///< reconfigure to `target` (drain/flush/migrate/remap)
  kThrottleRouter,  ///< serialise a NoC router's output links
  kDropInvalidate,  ///< directed-test message drop (cluster sink handles)
  kFailVault,       ///< stacked DRAM: remap traffic off the dead vault
  kUnrecoverable,   ///< end the run with a structured "failed" outcome
};

struct DegradeAction {
  DegradeActionKind kind = DegradeActionKind::kNone;
  std::optional<core::PowerState> target;  ///< kGateBanks
  unsigned penalty_cycles = 0;             ///< degrade / throttle magnitude
  std::uint32_t unit = 0;                  ///< bank or router id
  std::string note;                        ///< human-readable reason
};

class DegradationManager {
 public:
  /// `num_vaults` > 0 enables the stacked-DRAM vault remap path; 0 means
  /// the constant-latency backend, for which a vault fault is fatal.
  DegradationManager(bool mot_fabric, std::size_t min_banks,
                     std::size_t num_vaults = 0);

  /// Decide the reaction to `ev` given the fabric's current power state.
  /// `default_penalty_cycles` substitutes for a zero event magnitude.
  DegradeAction react(const FaultEvent& ev, const core::PowerState& current,
                      unsigned default_penalty_cycles) const;

  /// Smallest centre-fold state (halving active banks, cores unchanged)
  /// that excludes `faulted`, or nullopt if the bank sits inside the
  /// minimum centre group and cannot be gated out.
  std::optional<core::PowerState> gate_target(const core::PowerState& current,
                                              BankId faulted) const;

 private:
  bool mot_fabric_;
  std::size_t min_banks_;
  std::size_t num_vaults_;
};

}  // namespace mot3d::fault
