#include "fault/degradation.hpp"

namespace mot3d::fault {

DegradationManager::DegradationManager(bool mot_fabric, std::size_t min_banks,
                                       std::size_t num_vaults)
    : mot_fabric_(mot_fabric),
      min_banks_(min_banks == 0 ? 1 : min_banks),
      num_vaults_(num_vaults) {}

std::optional<core::PowerState> DegradationManager::gate_target(
    const core::PowerState& current, BankId faulted) const {
  std::size_t banks = current.active_banks();
  while (banks / 2 >= min_banks_) {
    banks /= 2;
    core::PowerState next("PC" + std::to_string(current.active_cores()) +
                              "-MB" + std::to_string(banks),
                          current.total_cores(), current.active_cores(),
                          current.total_banks(), banks);
    if (!next.bank_active(faulted)) return next;
  }
  return std::nullopt;
}

DegradeAction DegradationManager::react(const FaultEvent& ev,
                                        const core::PowerState& current,
                                        unsigned default_penalty_cycles) const {
  DegradeAction act;
  act.unit = ev.target;
  act.penalty_cycles = ev.magnitude != 0 ? ev.magnitude : default_penalty_cycles;

  switch (ev.kind) {
    case FaultKind::kTsvDegrade:
      // The marginal via is permanent — the penalty applies even to a
      // currently-gated bank in case a thermal restore re-activates it.
      act.kind = DegradeActionKind::kDegradeMotBank;
      act.note = "tsv-degrade: bank " + std::to_string(ev.target);
      return act;

    case FaultKind::kLinkDegrade:
      act.kind = DegradeActionKind::kThrottleRouter;
      act.note = "link-degrade: router " + std::to_string(ev.target);
      return act;

    case FaultKind::kDropInvalidate:
      act.kind = DegradeActionKind::kDropInvalidate;
      act.note = "drop-invalidate";
      return act;

    case FaultKind::kVaultFail:
      // Vault faults route through the stacked backend's remap machinery;
      // the constant-latency controller has no vault structure to fall
      // back on.  Whether a remap target survives is the backend's call
      // (the cluster converts an impossible remap into "failed").
      if (num_vaults_ == 0) {
        act.kind = DegradeActionKind::kUnrecoverable;
        act.note = "vault " + std::to_string(ev.target) +
                   " hard-faulted: no stacked-DRAM backend to remap";
      } else {
        act.kind = DegradeActionKind::kFailVault;
        act.note = "vault " + std::to_string(ev.target) +
                   " hard-faulted: remap traffic onto surviving vaults";
      }
      return act;

    case FaultKind::kRouterFail:
      // Static dimension-order routing has no detour around a dead router.
      act.kind = DegradeActionKind::kUnrecoverable;
      act.note = "router " + std::to_string(ev.target) +
                 " hard-faulted: packet-switched fabric cannot reroute";
      return act;

    case FaultKind::kTsvFail:
    case FaultKind::kBankFail:
      break;
  }

  // Hard bank / TSV-column faults.
  const char* what = ev.kind == FaultKind::kTsvFail ? "tsv column" : "bank";
  if (!mot_fabric_) {
    act.kind = DegradeActionKind::kUnrecoverable;
    act.note = std::string(what) + " " + std::to_string(ev.target) +
               " hard-faulted: fabric has no reconfiguration path";
    return act;
  }
  if (!current.bank_active(ev.target)) {
    act.kind = DegradeActionKind::kNone;  // already outside the active set
    act.note = std::string(what) + " " + std::to_string(ev.target) +
               " already gated";
    return act;
  }
  if (auto target = gate_target(current, ev.target)) {
    act.kind = DegradeActionKind::kGateBanks;
    act.target = std::move(target);
    act.note = std::string(what) + " " + std::to_string(ev.target) +
               " hard-faulted: gating to " + act.target->name();
    return act;
  }
  act.kind = DegradeActionKind::kUnrecoverable;
  act.note = std::string(what) + " " + std::to_string(ev.target) +
             " hard-faulted inside the minimum centre group (MB" +
             std::to_string(min_banks_) + ")";
  return act;
}

}  // namespace mot3d::fault
