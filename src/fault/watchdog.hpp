// Simulation watchdog: turns hangs into diagnosable failures.
//
// Contract (see DESIGN.md):
//  * Check boundaries are *simulated* cycles, so both schedulers evaluate
//    the watchdog at identical instants (a boundary is an event in the
//    event-driven loop).  Enabling the watchdog never changes a run's
//    results — boundaries only split event-horizon skips, which the skip
//    linearity contract guarantees is invisible.
//  * Progress is a monotone signature of real work (instructions retired,
//    L2/DRAM traffic, messages delivered) — NOT stall or spin cycles,
//    which keep advancing while a run is wedged.  A signature frozen for
//    `stall_checks` consecutive boundaries is a no-progress stall and the
//    cluster throws WatchdogError carrying a parked-state dump.
//  * The optional wall-clock deadline (mot3d_experiments --timeout) is
//    evaluated at the same boundaries.  It is inherently non-deterministic
//    (real time) and exists only to bound CI jobs; golden runs never set it.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"

namespace mot3d::fault {

struct WatchdogConfig {
  bool enabled = false;
  Cycle check_interval_cycles = 50'000;
  /// Consecutive zero-progress checks before declaring a stall.  Sized so
  /// legitimate quiet spells (DRAM round trips, governor holds of a few
  /// tens of kcycles) never trip it.
  unsigned stall_checks = 4;
  /// Wall-clock budget in seconds; 0 disables the deadline.
  double wall_deadline_seconds = 0.0;
  /// Deadline polling interval.  Finer than the progress interval so a
  /// tiny --timeout fires early in a run; still a simulated-cycle
  /// boundary, so determinism of results is unaffected.
  Cycle deadline_check_interval_cycles = 4'096;
};

/// Thrown by Cluster::run() when the watchdog fires; what() carries the
/// one-line verdict followed by the parked-state diagnostic dump.
class WatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class WatchdogVerdict {
  kOk,
  kStalled,           ///< no forward progress for `stall_checks` checks
  kDeadlineExceeded,  ///< wall-clock budget exhausted
};

class Watchdog {
 public:
  explicit Watchdog(const WatchdogConfig& cfg);

  /// Earliest cycle at which poll() will do work again; folded into
  /// Cluster::next_event_cycle() so the event scheduler lands on it.
  Cycle next_check_cycle() const { return next_check_; }

  /// Evaluate the watchdog at cycle `now` with the current progress
  /// signature.  Cheap no-op before the next boundary; callers may guard
  /// on next_check_cycle() to skip computing the signature.
  WatchdogVerdict poll(Cycle now, std::uint64_t signature);

  double wall_deadline_seconds() const { return cfg_.wall_deadline_seconds; }
  unsigned stall_checks() const { return cfg_.stall_checks; }
  Cycle check_interval_cycles() const { return cfg_.check_interval_cycles; }

 private:
  void advance_boundary();

  WatchdogConfig cfg_;
  Cycle next_check_ = 0;
  Cycle next_progress_check_ = 0;
  Cycle next_deadline_check_ = 0;
  bool have_signature_ = false;
  std::uint64_t last_signature_ = 0;
  unsigned frozen_checks_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mot3d::fault
