// Deterministic fault injection for the 3-D cluster (robustness axis).
//
// The paper's MoT interconnect and stacked L2 live or die by their TSV
// columns and banks; this subsystem models what happens when they stop
// being perfect.  A FaultSchedule turns a seeded fault envelope (or an
// explicit event list) into a sorted, reproducible sequence of timed
// fault events before the run starts — the same seed always produces the
// same injection trace, independent of scheduler mode or thread count,
// which is what the dense-vs-event differentials under faults pin.
//
// Fault taxonomy (see DESIGN.md):
//   kTsvDegrade     MoT: a bank's TSV column develops a marginal via and
//                   every grant pays extra circuit-hold cycles (degraded-
//                   latency mode) plus a retry-energy charge.
//   kTsvFail        MoT: the TSV column is dead — the bank is unreachable
//                   and must be gated out via the ReconfigManager.
//   kBankFail       an L2 bank hard-faults.  The MoT gates around it
//                   (drain, flush, directory migration, remap); the
//                   packet-switched baselines have no reconfiguration
//                   path and the run ends with a structured failure.
//   kLinkDegrade    NoC: a router's link serialises — one flit per
//                   (1 + magnitude) cycles instead of one per cycle.
//   kRouterFail     NoC: a router hard-faults; the static dimension-order
//                   routing cannot route around it — unrecoverable.
//   kDropInvalidate directed-test fault: swallow the next `magnitude`
//                   coherence invalidation messages, wedging the issuing
//                   bank (the watchdog's no-progress detector must catch
//                   it and turn the hang into a diagnosable failure).
//   kVaultFail      stacked DRAM: a physical vault hard-faults.  The
//                   stacked backend remaps its logical vaults onto the
//                   least-loaded survivor; the constant-latency backend
//                   (or the last alive vault dying) has no remap target
//                   and the run ends with a structured failure.  Injected
//                   through explicit event lists only, never rate-drawn,
//                   so existing seeded schedules stay byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mot3d::fault {

enum class FaultKind {
  kTsvDegrade,
  kTsvFail,
  kBankFail,
  kLinkDegrade,
  kRouterFail,
  kDropInvalidate,
  kVaultFail,
};

const char* fault_kind_name(FaultKind k);

/// One timed fault.  `target` is a physical bank id (MoT/bank faults) or a
/// router id (NoC faults); `magnitude` is the degrade penalty in cycles
/// (0 = the configured default) or the drop count for kDropInvalidate.
struct FaultEvent {
  Cycle cycle = 0;
  FaultKind kind = FaultKind::kTsvDegrade;
  std::uint32_t target = 0;
  std::uint32_t magnitude = 0;

  bool operator==(const FaultEvent&) const = default;
};

/// One cell of a scenario's fault axis (ScenarioSpec::fault_envelopes).
/// Rates are expected events per 10'000 cycles over the injection horizon.
struct FaultEnvelope {
  bool enabled = false;
  double tsv_fault_rate = 0.0;   ///< degraded-latency faults (TSV/link)
  double bank_fault_rate = 0.0;  ///< hard faults (bank/TSV-dead/router)
  std::uint64_t seed = 7;

  bool operator==(const FaultEnvelope&) const = default;
};

/// Full configuration of the fault subsystem (ClusterConfig::fault).
struct FaultConfig {
  bool enabled = false;
  /// Explicit events injected in addition to the rate-generated ones
  /// (directed tests use this; empty for scenario sweeps).
  std::vector<FaultEvent> events;
  double tsv_fault_rate = 0.0;
  double bank_fault_rate = 0.0;
  std::uint64_t seed = 7;
  /// Injection horizon: generated fault cycles are uniform in
  /// [1, horizon_cycles]; events past the run's end never fire.
  Cycle horizon_cycles = 20'000;
  /// Default extra circuit-hold / serialisation cycles of a degraded unit.
  unsigned degrade_penalty_cycles = 2;
  /// One-off control/repair action cost (drain sequencing, ctr reprogram
  /// masking, spare-resource switch) charged to the interconnect ledger
  /// per applied degradation action.
  double repair_energy_pj = 50.0;
  /// Per-grant retry energy of a degraded MoT bank channel (the marginal
  /// via needs a stronger drive/retry pulse each circuit establishment).
  double retry_energy_pj = 0.5;
  /// Smallest bank count graceful degradation may gate down to (Table I's
  /// MB8 floor, matching the thermal governor).
  std::size_t min_banks = 8;

  static FaultConfig from_envelope(const FaultEnvelope& env) {
    FaultConfig cfg;
    cfg.enabled = env.enabled;
    cfg.tsv_fault_rate = env.tsv_fault_rate;
    cfg.bank_fault_rate = env.bank_fault_rate;
    cfg.seed = env.seed;
    return cfg;
  }
};

/// Everything a run reports about its fault trajectory (SimResult).
struct FaultSummary {
  bool enabled = false;
  /// "ok" (no material degradation), "degraded" (faults absorbed via
  /// penalties/throttles/gating) or "failed" (unrecoverable topology —
  /// the run ended early with partial results instead of wedging).
  std::string outcome = "ok";
  std::uint64_t injected = 0;       ///< events processed before run end
  std::uint64_t recovered = 0;      ///< absorbed (incl. already-gated no-ops)
  std::uint64_t unrecoverable = 0;
  std::uint64_t bank_gate_events = 0;  ///< reconfigurations triggered by faults
  std::uint64_t degraded_cycles = 0;   ///< cycles after the first degradation
  double repair_energy_pj = 0.0;       ///< repair actions + degraded-grant retries
  std::string fail_reason;             ///< non-empty when outcome == "failed"
};

/// The pre-computed, sorted fault event trace of one run.  Construction is
/// the only place randomness exists: the cluster replays the list at exact
/// cycles, so both schedulers see identical injections.
class FaultSchedule {
 public:
  FaultSchedule(const FaultConfig& cfg, bool mot_fabric,
                std::size_t total_banks, std::size_t num_routers);

  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mot3d::fault
