#include "fault/watchdog.hpp"

#include <algorithm>

namespace mot3d::fault {

Watchdog::Watchdog(const WatchdogConfig& cfg)
    : cfg_(cfg), start_(std::chrono::steady_clock::now()) {
  if (cfg_.check_interval_cycles == 0) cfg_.check_interval_cycles = 1;
  if (cfg_.deadline_check_interval_cycles == 0) cfg_.deadline_check_interval_cycles = 1;
  next_progress_check_ = cfg_.check_interval_cycles;
  next_deadline_check_ = cfg_.wall_deadline_seconds > 0.0
                             ? cfg_.deadline_check_interval_cycles
                             : kNeverCycle;
  advance_boundary();
}

void Watchdog::advance_boundary() {
  next_check_ = std::min(next_progress_check_, next_deadline_check_);
}

WatchdogVerdict Watchdog::poll(Cycle now, std::uint64_t signature) {
  if (now < next_check_) return WatchdogVerdict::kOk;

  WatchdogVerdict verdict = WatchdogVerdict::kOk;
  if (now >= next_deadline_check_) {
    while (next_deadline_check_ <= now) {
      next_deadline_check_ += cfg_.deadline_check_interval_cycles;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed > cfg_.wall_deadline_seconds) {
      verdict = WatchdogVerdict::kDeadlineExceeded;
    }
  }
  if (now >= next_progress_check_) {
    while (next_progress_check_ <= now) {
      next_progress_check_ += cfg_.check_interval_cycles;
    }
    if (have_signature_ && signature == last_signature_) {
      ++frozen_checks_;
      if (frozen_checks_ >= cfg_.stall_checks &&
          verdict == WatchdogVerdict::kOk) {
        verdict = WatchdogVerdict::kStalled;
      }
    } else {
      frozen_checks_ = 0;
    }
    last_signature_ = signature;
    have_signature_ = true;
  }
  advance_boundary();
  return verdict;
}

}  // namespace mot3d::fault
