#include "dram3d/vault_remap.hpp"

namespace mot3d::dram3d {

std::optional<VaultSwap> VaultRemapPolicy::decide(
    const std::vector<double>& temps, const std::vector<bool>& alive,
    Cycle now) {
  if (!cfg_.enabled) return std::nullopt;
  if (ever_swapped_ && now - last_swap_ < cfg_.cooldown_cycles) {
    return std::nullopt;
  }

  std::size_t hot = temps.size(), cool = temps.size();
  for (std::size_t v = 0; v < temps.size(); ++v) {
    if (v >= alive.size() || !alive[v]) continue;
    // Strict comparisons: ties keep the lowest index, deterministically.
    if (hot == temps.size() || temps[v] > temps[hot]) hot = v;
    if (cool == temps.size() || temps[v] < temps[cool]) cool = v;
  }
  if (hot == temps.size() || hot == cool) return std::nullopt;
  if (temps[hot] <= cfg_.too_hot_c) return std::nullopt;
  if (temps[hot] - temps[cool] <= cfg_.min_delta_c) return std::nullopt;

  ever_swapped_ = true;
  last_swap_ = now;
  return VaultSwap{hot, cool};
}

}  // namespace mot3d::dram3d
