// Thermal-aware vault remapping policy: a hysteresis "isTooHot" swap
// balancer in the spirit of thermal-aware DRAM management.  Pure decision
// logic — the cluster evaluates it at thermal sampling boundaries (exact
// cycles both schedulers land on) and executes accepted swaps through the
// existing reconfiguration drain, so the policy itself never perturbs
// scheduler bit-identity.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace mot3d::dram3d {

struct VaultRemapConfig {
  bool enabled = false;
  double too_hot_c = 70.0;     ///< a vault above this is a swap candidate
  double min_delta_c = 3.0;    ///< hysteresis: hot-cool spread must exceed
  Cycle cooldown_cycles = 30'000;  ///< minimum spacing between swaps
  /// Cores stay clock-held this long after a swap while the logical
  /// address map migrates (charged like a reconfig reprogram delay).
  Cycle migrate_freeze_cycles = 500;
};

/// An accepted decision: exchange the traffic of two physical vaults.
struct VaultSwap {
  std::size_t hot = 0;
  std::size_t cool = 0;
};

class VaultRemapPolicy {
 public:
  explicit VaultRemapPolicy(const VaultRemapConfig& cfg) : cfg_(cfg) {}

  /// Evaluate one thermal sample: `temps[v]` is the current temperature of
  /// physical vault v (NaN-free), `alive[v]` gates candidates.  Returns a
  /// swap when the hottest alive vault isTooHot, the spread to the coolest
  /// alive vault clears the hysteresis band, and the cooldown has elapsed.
  std::optional<VaultSwap> decide(const std::vector<double>& temps,
                                  const std::vector<bool>& alive, Cycle now);

  const VaultRemapConfig& config() const { return cfg_; }

 private:
  VaultRemapConfig cfg_;
  bool ever_swapped_ = false;
  Cycle last_swap_ = 0;
};

}  // namespace mot3d::dram3d
