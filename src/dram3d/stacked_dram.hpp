// 3-D stacked-DRAM backend: vault-parallel organisation in the spirit of
// in-package memory stacks (HMC-style vaults, arXiv 1709.07529), replacing
// the single constant-latency controller of mem::DramBackend.
//
// Model:
//   * The address space is interleaved across `num_vaults` vaults in
//     `vault_interleave_bytes` chunks; a logical->physical vault map
//     supports thermal remapping and fault isolation.
//   * Each vault has one controller: a request queue served FR-FCFS
//     (first ready row hit wins, else the oldest request), `banks_per_vault`
//     banks with open-row state (kNoOpenPage when closed), and a serial
//     service port (`busy_until`).
//   * Refresh is deterministic interference: every vault blocks for
//     `refresh_cycles` at staggered `refresh_interval_cycles` boundaries.
//     Boundaries are exposed through next_event(), so the event-driven
//     scheduler lands on the exact cycles the dense scheduler walks through
//     — refresh counts and timings are scheduler-bit-identical.
//
// Everything is computed from model quantities only (no wall clock, no
// RNG): given the same request stream, both schedulers observe identical
// grants, completions, refreshes, and energy.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/memory_backend.hpp"
#include "obs/metrics.hpp"

namespace mot3d::dram3d {

struct Dram3dConfig {
  std::size_t num_vaults = 8;
  std::size_t banks_per_vault = 8;
  std::size_t row_bytes = 2048;              ///< open-row granularity
  std::size_t vault_interleave_bytes = 256;  ///< chunk spread across vaults
  unsigned link_cycles = 2;        ///< TSV link serialisation per access
  unsigned row_hit_cycles = 18;    ///< CAS-only access on an open row
  unsigned row_miss_cycles = 42;   ///< precharge+activate+CAS (Weis-style 3-D)
  unsigned refresh_interval_cycles = 3'900;  ///< per-vault boundary spacing
  unsigned refresh_cycles = 120;   ///< vault blocked per refresh burst
  double energy_per_access_pj = 2600.0;   ///< cheaper than off-chip DDR3
  double energy_per_refresh_pj = 900.0;
  double remap_migration_pj = 4000.0;     ///< charged per executed swap
};

/// Per-physical-vault counters (thermal sources, obs probes).
struct VaultStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refreshes = 0;
  double energy_pj = 0.0;
};

/// What a run reports about its stacked-DRAM trajectory (SimResult).
/// `enabled == false` (the constant-latency backend) keeps every dram3d_*
/// scenario-JSON field absent, so legacy goldens stay byte-identical.
struct Dram3dSummary {
  bool enabled = false;
  std::size_t vaults = 0;
  std::size_t alive_vaults = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t remaps = 0;        ///< executed thermal swaps
  std::uint64_t vault_faults = 0;  ///< kVaultFail events absorbed by remap
  bool remap_enabled = false;
  double peak_vault_c = 0.0;       ///< 0 when the run had no thermal model
  std::size_t peak_vault = 0;      ///< physical vault holding the peak
};

/// Vault-parallel stacked-DRAM controller bank behind MemoryBackend.
class StackedDram final : public mem::MemoryBackend {
 public:
  StackedDram(const Dram3dConfig& cfg, std::size_t num_requesters);

  void read(std::uint32_t requester, Addr addr, Cycle now,
            Callback cb) override;
  void write(std::uint32_t requester, Addr addr, Cycle now) override;
  void tick(Cycle now) override;
  bool idle() const override;
  Cycle next_event(Cycle now) const override;

  const mem::DramStats& stats() const override { return stats_; }

  /// Timing view for the reconfiguration planner's flush-cost math.
  const mem::DramConfig& config() const override { return timing_view_; }

  void set_service_observer(std::function<void(Cycle)> obs) override {
    service_obs_ = std::move(obs);
  }

  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const override;

  // ---- stacked-specific surface --------------------------------------------

  const Dram3dConfig& stacked_config() const { return cfg_; }
  std::size_t num_vaults() const { return cfg_.num_vaults; }
  std::size_t alive_vaults() const { return alive_count_; }
  bool vault_alive(std::size_t phys) const { return alive_.at(phys); }
  std::size_t physical_vault(std::size_t logical) const {
    return map_.at(logical);
  }
  const std::vector<VaultStats>& vault_stats() const { return vault_stats_; }
  std::uint64_t total_refreshes() const;
  std::uint64_t remap_count() const { return remap_count_; }
  std::uint64_t vault_fault_count() const { return vault_fault_count_; }

  /// Thermal remap: exchange the logical assignments of two physical
  /// vaults.  Must be called drained (idle()); charges migration energy.
  void swap_physical(std::size_t hot, std::size_t cool, Cycle now);

  /// Vault hard fault: kill `phys` and remap its logical vaults onto the
  /// least-loaded survivor; queued requests migrate in order.  Returns
  /// false (and explains in `note`) when no recovery is possible — the
  /// last alive vault died.  A fault on an already-dead vault is benign.
  bool fail_vault(std::size_t phys, Cycle now, std::string* note);

  /// Per-vault service-latency observer: (physical vault, latency).
  void set_vault_service_observer(
      std::function<void(std::size_t, Cycle)> obs) {
    vault_service_obs_ = std::move(obs);
  }

 private:
  struct Txn {
    std::uint32_t requester = 0;
    Addr addr = 0;
    bool is_write = false;
    Cycle enqueued = 0;
    Callback cb;  ///< empty for writes
  };
  struct Completion {
    Cycle due;
    std::uint32_t requester;
    Addr addr;
    Callback cb;
    bool operator>(const Completion& o) const { return due > o.due; }
  };
  struct Vault {
    std::deque<Txn> queue;
    std::vector<Addr> open_rows;  ///< per bank; kNoOpenPage = closed
    Cycle busy_until = 0;
    Cycle next_refresh = 0;
  };

  std::size_t logical_vault(Addr addr) const {
    return (addr / cfg_.vault_interleave_bytes) % cfg_.num_vaults;
  }
  Addr row_of(Addr addr) const {
    const Addr chunk = addr / cfg_.vault_interleave_bytes;
    const Addr local = chunk / cfg_.num_vaults;
    return (local * cfg_.vault_interleave_bytes) / cfg_.row_bytes;
  }
  void enqueue(std::uint32_t requester, Addr addr, bool is_write, Cycle now,
               Callback cb);
  void run_refresh(std::size_t v, Cycle now);
  void serve_vault(std::size_t v, Cycle now);

  Dram3dConfig cfg_;
  mem::DramConfig timing_view_;
  std::size_t num_requesters_;
  std::vector<Vault> vaults_;
  std::vector<std::size_t> map_;  ///< logical -> physical vault
  std::vector<bool> alive_;
  std::size_t alive_count_;
  std::size_t pending_count_ = 0;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions_;
  std::size_t in_flight_ = 0;
  mem::DramStats stats_;
  std::vector<VaultStats> vault_stats_;
  std::uint64_t remap_count_ = 0;
  std::uint64_t vault_fault_count_ = 0;
  std::function<void(Cycle)> service_obs_;
  std::function<void(std::size_t, Cycle)> vault_service_obs_;
};

}  // namespace mot3d::dram3d
