#include "dram3d/stacked_dram.hpp"

#include <algorithm>
#include <stdexcept>

namespace mot3d::dram3d {

StackedDram::StackedDram(const Dram3dConfig& cfg, std::size_t num_requesters)
    : cfg_(cfg),
      num_requesters_(num_requesters),
      vaults_(cfg.num_vaults),
      map_(cfg.num_vaults),
      alive_(cfg.num_vaults, true),
      alive_count_(cfg.num_vaults),
      vault_stats_(cfg.num_vaults) {
  if (num_requesters == 0) throw std::invalid_argument("need >= 1 requester");
  if (cfg_.num_vaults == 0) throw std::invalid_argument("need >= 1 vault");
  if (cfg_.banks_per_vault == 0) throw std::invalid_argument("need >= 1 bank");
  if (cfg_.vault_interleave_bytes == 0 || cfg_.row_bytes == 0) {
    throw std::invalid_argument("interleave and row granularity must be > 0");
  }
  for (std::size_t v = 0; v < cfg_.num_vaults; ++v) {
    map_[v] = v;
    vaults_[v].open_rows.assign(cfg_.banks_per_vault, kNoOpenPage);
    // Stagger refresh boundaries so vaults never refresh in lock-step;
    // vault 0 lands at interval/num_vaults, the last at one full interval.
    vaults_[v].next_refresh =
        (static_cast<Cycle>(v + 1) * cfg_.refresh_interval_cycles) /
        cfg_.num_vaults;
  }
  // The reconfiguration planner prices flushed lines off these knobs: one
  // TSV link transfer per line, serialised on the vault port.
  timing_view_.access_latency_ns = cfg_.row_miss_cycles;
  timing_view_.bus_transfer_cycles = cfg_.link_cycles;
  timing_view_.channel_burst_cycles = cfg_.link_cycles;
  timing_view_.page_bytes = cfg_.row_bytes;
  timing_view_.open_page_policy = true;
  timing_view_.energy_per_access_pj = cfg_.energy_per_access_pj;
}

void StackedDram::enqueue(std::uint32_t requester, Addr addr, bool is_write,
                          Cycle now, Callback cb) {
  if (requester >= num_requesters_) {
    throw std::out_of_range("stacked-DRAM requester out of range");
  }
  const std::size_t phys = map_[logical_vault(addr)];
  vaults_[phys].queue.push_back(
      Txn{requester, addr, is_write, now, std::move(cb)});
  ++pending_count_;
}

void StackedDram::read(std::uint32_t requester, Addr addr, Cycle now,
                       Callback cb) {
  enqueue(requester, addr, /*is_write=*/false, now, std::move(cb));
}

void StackedDram::write(std::uint32_t requester, Addr addr, Cycle now) {
  enqueue(requester, addr, /*is_write=*/true, now, {});
}

void StackedDram::run_refresh(std::size_t v, Cycle now) {
  Vault& vault = vaults_[v];
  while (now >= vault.next_refresh) {
    // The refresh burst claims the vault port at its exact boundary (or as
    // soon as the in-progress access releases it) and closes every row.
    vault.busy_until =
        std::max(vault.busy_until, vault.next_refresh) + cfg_.refresh_cycles;
    std::fill(vault.open_rows.begin(), vault.open_rows.end(), kNoOpenPage);
    ++vault_stats_[v].refreshes;
    vault_stats_[v].energy_pj += cfg_.energy_per_refresh_pj;
    stats_.dynamic_energy_pj += cfg_.energy_per_refresh_pj;
    vault.next_refresh += cfg_.refresh_interval_cycles;
  }
}

void StackedDram::serve_vault(std::size_t v, Cycle now) {
  Vault& vault = vaults_[v];
  if (vault.busy_until > now || vault.queue.empty()) return;
  if (vault.queue.front().enqueued > now) return;  // arrival order per vault

  // FR-FCFS: the oldest ready row hit wins; with no open-row match the
  // oldest ready request is served (plain FCFS among misses).
  std::size_t pick = 0;
  bool pick_is_hit = false;
  for (std::size_t i = 0; i < vault.queue.size(); ++i) {
    const Txn& t = vault.queue[i];
    if (t.enqueued > now) break;  // queue is in arrival order
    const Addr row = row_of(t.addr);
    const std::size_t bank = row % cfg_.banks_per_vault;
    if (vault.open_rows[bank] == row) {
      pick = i;
      pick_is_hit = true;
      break;
    }
  }

  Txn txn = std::move(vault.queue[pick]);
  vault.queue.erase(vault.queue.begin() +
                    static_cast<std::ptrdiff_t>(pick));
  --pending_count_;

  const Addr row = row_of(txn.addr);
  const std::size_t bank = row % cfg_.banks_per_vault;
  vault.open_rows[bank] = row;

  stats_.total_wait_cycles += now - txn.enqueued;
  const Cycle start = now + cfg_.link_cycles;
  const Cycle done =
      start + (pick_is_hit ? cfg_.row_hit_cycles : cfg_.row_miss_cycles);
  vault.busy_until = done;

  VaultStats& vs = vault_stats_[v];
  if (pick_is_hit) {
    ++stats_.page_hits;
    ++vs.row_hits;
  } else {
    ++stats_.page_misses;
    ++vs.row_misses;
  }
  stats_.dynamic_energy_pj += cfg_.energy_per_access_pj;
  vs.energy_pj += cfg_.energy_per_access_pj;

  if (txn.is_write) {
    ++stats_.writes;
    ++vs.writes;
    // Posted: occupies the vault port only.
  } else {
    ++stats_.reads;
    ++vs.reads;
    const Cycle latency = done - txn.enqueued;
    if (service_obs_) service_obs_(latency);
    if (vault_service_obs_) vault_service_obs_(v, latency);
    completions_.push(
        Completion{done, txn.requester, txn.addr, std::move(txn.cb)});
    ++in_flight_;
  }
}

void StackedDram::tick(Cycle now) {
  while (!completions_.empty() && completions_.top().due <= now) {
    Completion c = completions_.top();
    completions_.pop();
    --in_flight_;
    if (c.cb) c.cb(c.requester, c.addr, now);
  }
  for (std::size_t v = 0; v < vaults_.size(); ++v) {
    if (!alive_[v]) continue;
    run_refresh(v, now);
    serve_vault(v, now);
  }
}

bool StackedDram::idle() const {
  return pending_count_ == 0 && in_flight_ == 0;
}

Cycle StackedDram::next_event(Cycle now) const {
  Cycle next = kNeverCycle;
  if (!completions_.empty()) next = std::max(completions_.top().due, now);
  for (std::size_t v = 0; v < vaults_.size(); ++v) {
    if (!alive_[v]) continue;
    const Vault& vault = vaults_[v];
    // Refresh boundaries are model events: both schedulers must land on
    // them exactly, or refresh timing (and thus energy) would diverge.
    next = std::min(next, std::max(vault.next_refresh, now));
    if (!vault.queue.empty()) {
      next = std::min(next, std::max({vault.busy_until,
                                      vault.queue.front().enqueued, now}));
    }
    if (next <= now) return now;
  }
  return next;
}

std::uint64_t StackedDram::total_refreshes() const {
  std::uint64_t sum = 0;
  for (const VaultStats& vs : vault_stats_) sum += vs.refreshes;
  return sum;
}

void StackedDram::register_metrics(obs::MetricsRegistry& m,
                                   const std::string& prefix) const {
  m.add(prefix + ".reads",
        [this] { return static_cast<double>(stats_.reads); });
  m.add(prefix + ".writes",
        [this] { return static_cast<double>(stats_.writes); });
  m.add(prefix + ".page_hits",
        [this] { return static_cast<double>(stats_.page_hits); });
  m.add(prefix + ".page_misses",
        [this] { return static_cast<double>(stats_.page_misses); });
  m.add(prefix + ".total_wait_cycles",
        [this] { return static_cast<double>(stats_.total_wait_cycles); });
  m.add(prefix + ".dynamic_energy_pj",
        [this] { return stats_.dynamic_energy_pj; });
  m.add(prefix + ".refreshes",
        [this] { return static_cast<double>(total_refreshes()); });
  m.add(prefix + ".remaps",
        [this] { return static_cast<double>(remap_count_); });
  for (std::size_t v = 0; v < vault_stats_.size(); ++v) {
    const std::string vp = prefix + ".vault" + std::to_string(v);
    m.add(vp + ".accesses", [this, v] {
      return static_cast<double>(vault_stats_[v].reads +
                                 vault_stats_[v].writes);
    });
    m.add(vp + ".row_hits", [this, v] {
      return static_cast<double>(vault_stats_[v].row_hits);
    });
    m.add(vp + ".refreshes", [this, v] {
      return static_cast<double>(vault_stats_[v].refreshes);
    });
    m.add(vp + ".energy_pj", [this, v] { return vault_stats_[v].energy_pj; });
  }
}

void StackedDram::swap_physical(std::size_t hot, std::size_t cool,
                                Cycle /*now*/) {
  if (hot >= cfg_.num_vaults || cool >= cfg_.num_vaults || hot == cool) {
    throw std::invalid_argument("bad vault swap");
  }
  if (!idle()) throw std::logic_error("vault swap requires a drained backend");
  if (!alive_[hot] || !alive_[cool]) {
    throw std::logic_error("vault swap across a dead vault");
  }
  for (std::size_t l = 0; l < map_.size(); ++l) {
    if (map_[l] == hot) {
      map_[l] = cool;
    } else if (map_[l] == cool) {
      map_[l] = hot;
    }
  }
  // Migration cost: the drained working set crosses the TSV links once.
  stats_.dynamic_energy_pj += cfg_.remap_migration_pj;
  vault_stats_[hot].energy_pj += cfg_.remap_migration_pj / 2.0;
  vault_stats_[cool].energy_pj += cfg_.remap_migration_pj / 2.0;
  ++remap_count_;
}

bool StackedDram::fail_vault(std::size_t phys, Cycle /*now*/,
                             std::string* note) {
  if (phys >= cfg_.num_vaults) {
    if (note) *note = "vault index out of range";
    return false;
  }
  if (!alive_[phys]) {
    if (note) *note = "vault already dead: benign";
    return true;
  }
  if (alive_count_ <= 1) {
    if (note) *note = "last alive vault failed: no remap target";
    return false;
  }
  alive_[phys] = false;
  --alive_count_;
  ++vault_fault_count_;

  // Least-loaded survivor (queued requests; tie -> lowest index).
  std::size_t target = cfg_.num_vaults;
  for (std::size_t v = 0; v < cfg_.num_vaults; ++v) {
    if (!alive_[v]) continue;
    if (target == cfg_.num_vaults ||
        vaults_[v].queue.size() < vaults_[target].queue.size()) {
      target = v;
    }
  }
  for (std::size_t l = 0; l < map_.size(); ++l) {
    if (map_[l] == phys) map_[l] = target;
  }
  // Queued requests migrate in arrival order; in-flight reads already left
  // the arrays and complete normally.  Note: migrated requests keep their
  // enqueue cycle, but the target queue must stay sorted by arrival for
  // the FR-FCFS ready-window scan — merge, then stable-sort by enqueue.
  Vault& dead = vaults_[phys];
  Vault& tgt = vaults_[target];
  for (Txn& t : dead.queue) tgt.queue.push_back(std::move(t));
  std::stable_sort(tgt.queue.begin(), tgt.queue.end(),
                   [](const Txn& a, const Txn& b) {
                     return a.enqueued < b.enqueued;
                   });
  dead.queue.clear();
  std::fill(dead.open_rows.begin(), dead.open_rows.end(), kNoOpenPage);

  if (note) {
    *note = "vault " + std::to_string(phys) + " remapped onto vault " +
            std::to_string(target);
  }
  return true;
}

}  // namespace mot3d::dram3d
