#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace mot3d {

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto fit = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  fit(header_);
  for (const auto& row : rows_) fit(row);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  os.flush();
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << (fraction * 100.0) << '%';
  return ss.str();
}

}  // namespace mot3d
