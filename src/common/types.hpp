// Fundamental value types shared by every mot3d module.
//
// All simulation time is expressed in core clock cycles of the 1 GHz cluster
// clock (1 cycle == 1 ns).  Physical-model code (src/phys) works in SI units
// (seconds, ohms, farads, metres) and converts at the boundary.
#pragma once

#include <cstdint>
#include <limits>

namespace mot3d {

/// Simulation time in core clock cycles (1 GHz -> 1 cycle = 1 ns).
using Cycle = std::uint64_t;

/// Byte address within the cluster's physical address space.
using Addr = std::uint64_t;

/// Index of a processing core within the cluster (0-based).
using CoreId = std::uint32_t;

/// Index of an L2 cache bank within the stacked L2 (0-based).
using BankId = std::uint32_t;

/// Sentinel for "no cycle" / "not scheduled".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Sentinel for invalid core / bank ids.
inline constexpr std::uint32_t kInvalidId = std::numeric_limits<std::uint32_t>::max();

/// Sentinel for "no DRAM page open" in open-row trackers.  Addr and Cycle
/// are both uint64_t, so this shares the bit pattern of kNeverCycle, but it
/// is typed as an address: page trackers must never compare against a time
/// sentinel.
inline constexpr Addr kNoOpenPage = std::numeric_limits<Addr>::max();

/// Kind of memory reference issued by a core.
enum class MemOp : std::uint8_t {
  kInstrFetch,  ///< instruction fetch (L1I)
  kLoad,        ///< data read (L1D)
  kStore,       ///< data write (L1D)
};

/// Returns true for operations that dirty a cache line.
constexpr bool is_write(MemOp op) { return op == MemOp::kStore; }

/// Integer log2 for powers of two; precondition: x is a power of two, x > 0.
constexpr unsigned log2_exact(std::uint64_t x) {
  unsigned n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

/// True if x is a (positive) power of two.
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace mot3d
