// Deterministic pseudo-random number generation for workload synthesis.
//
// Simulation results must be exactly reproducible across runs and platforms,
// so we use a self-contained SplitMix64/xoshiro-style generator instead of
// std::mt19937 + std::distributions (whose outputs are not portable across
// standard-library implementations).
#pragma once

#include <cstdint>

namespace mot3d {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG.  Used both directly and
/// to seed larger state.  Reference: Steele, Lea & Flood, "Fast splittable
/// pseudorandom number generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic RNG with convenience draws used by the workload generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed ^ 0xA5A5A5A55A5A5A5AULL) {
    // Warm up so that small seeds diverge immediately.
    (void)gen_.next();
    (void)gen_.next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() { return gen_.next(); }

  /// Uniform in [0, bound) for bound >= 1 (Lemire reduction, bias-free enough
  /// for simulation purposes; bound << 2^64 here).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : gen_.next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Geometric-ish draw: number of failures before a success with prob p,
  /// capped at `cap` to bound trace-record lengths.  p in (0,1].
  std::uint32_t next_geometric(double p, std::uint32_t cap) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return cap;
    std::uint32_t n = 0;
    while (n < cap && !next_bool(p)) ++n;
    return n;
  }

 private:
  SplitMix64 gen_;
};

}  // namespace mot3d
