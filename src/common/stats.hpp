// Lightweight statistics collection: counters, means, histograms.
//
// Every simulator component exposes its activity through these types so the
// cluster top level and the bench harnesses can roll results up uniformly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mot3d {

/// Running scalar summary: count / sum / min / max / mean.
class RunningStat {
 public:
  void add(double x) {
    if (count_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  // min()/max() return 0.0 when empty — indistinguishable from a real
  // zero sample, so serialisers must consult empty() and emit an
  // explicit null/omission instead (obs::MetricsRegistry does).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  bool empty() const { return count_ == 0; }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width bucket histogram over [0, bucket_width * num_buckets); values
/// beyond the last bucket land in the overflow bucket.
class Histogram {
 public:
  Histogram() : Histogram(1, 64) {}
  Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

  void add(std::uint64_t value);

  std::uint64_t count() const { return stat_.count(); }
  double mean() const { return stat_.mean(); }
  std::uint64_t min() const { return static_cast<std::uint64_t>(stat_.min()); }
  std::uint64_t max() const { return static_cast<std::uint64_t>(stat_.max()); }

  /// Value v such that at least `q` (0..1) of samples are <= v, computed from
  /// bucket upper bounds (conservative).
  std::uint64_t quantile(double q) const;

  std::uint64_t bucket_count(std::size_t i) const { return buckets_.at(i); }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t overflow() const { return overflow_; }

  void reset();

 private:
  std::uint64_t bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  RunningStat stat_;
};

}  // namespace mot3d
