// Flat growable FIFO used on the simulator hot paths (L2 bank queues, the
// MoT response pipe, core coherence queues).
//
// std::deque allocates page-sized chunks per queue; with hundreds of banks
// and cores the queue heads scatter across the heap and every tick chases
// pointers.  This ring keeps the live elements in one contiguous arena
// (power-of-two capacity, head/tail masks), so draining a queue walks a
// cache line, and a drained queue frees nothing — capacity is retained for
// the next burst.  Growth copies into a fresh arena in FIFO order;
// semantics match the deque usage exactly (push_back / front / pop_front).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mot3d {

template <typename T>
class RingBuffer {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = T(std::forward<Args>(args)...);
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Element `i` positions behind the front (0 == front).
  const T& at(std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace mot3d
