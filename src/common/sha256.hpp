// SHA-256 (FIPS 180-4) — the content hash behind the sweep service's
// result cache.
//
// Cache keys must be collision-resistant across millions of memoized
// experiment specs and stable across platforms and releases, which rules
// out std::hash (unspecified) and 64-bit FNV (birthday collisions at
// cache sizes we actually expect).  This is the plain portable reference
// construction — no external dependency, byte-identical everywhere.
#pragma once

#include <cstdint>
#include <string>

namespace mot3d {

/// Lowercase hex digest (64 chars) of `data`.
std::string sha256_hex(const std::string& data);

}  // namespace mot3d
