// Abstract on-chip interconnect: the pluggable transport between the cores'
// L1 miss ports and the stacked L2 banks.
//
// Implementations: the paper's circuit-switched reconfigurable 3-D MoT
// (src/core) and the three packet-switched baselines it is compared against
// (src/noc: True 3-D Mesh, 3-D Hybrid Bus-Mesh, 3-D Hybrid Bus-Tree).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/messages.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace mot3d::obs {
class TraceBuffer;
}  // namespace mot3d::obs

namespace mot3d {

/// Transport-level counters common to every interconnect.
struct InterconnectStats {
  std::uint64_t requests_injected = 0;
  std::uint64_t requests_delivered = 0;
  std::uint64_t responses_injected = 0;
  std::uint64_t responses_delivered = 0;
  std::uint64_t arbitration_wait_cycles = 0;  ///< (MoT) lost-arbitration cycles
};

/// Cycle-driven transport.  The cluster drives tick() once per cycle after
/// the cores; deliveries happen through the registered sinks.
///
/// Implementations additionally honour the *next-event contract* (see
/// DESIGN.md): next_event(now) returns the earliest cycle >= now at which
/// tick() could change any observable state or statistic.  A tick() at any
/// cycle strictly before that value must be a no-op, which lets the cluster
/// scheduler fast-forward over quiescent stretches without changing modeled
/// results.
class Interconnect {
 public:
  /// Request arriving at a bank: `bank` already rewritten to the physical
  /// bank (power-gating remap applied by the routing switches).
  using RequestSink = std::function<void(const MemRequest&, Cycle)>;
  /// Response arriving back at its core.
  using ResponseSink = std::function<void(const MemResponse&, Cycle)>;

  virtual ~Interconnect() = default;

  virtual const char* name() const = 0;

  /// Core-side injection; false == port busy this cycle (retry next tick).
  virtual bool try_inject_request(const MemRequest& req, Cycle now) = 0;

  /// Bank-side injection; false == port busy this cycle.
  virtual bool try_inject_response(const MemResponse& resp, Cycle now) = 0;

  /// Advance one cycle; may call the sinks.
  virtual void tick(Cycle now) = 0;

  /// Nothing in flight.
  virtual bool idle() const = 0;

  /// Earliest cycle >= `now` at which tick() could change state or stats;
  /// kNeverCycle when nothing will ever happen without new input.  The
  /// default is maximally conservative (an event every cycle), which keeps
  /// unknown implementations correct but disables cycle skipping.
  virtual Cycle next_event(Cycle now) const { return now; }

  /// Cumulative transport dynamic energy, pJ.
  virtual double dynamic_energy_pj() const = 0;

  /// Leakage power of the (currently powered) network, mW.
  virtual double leakage_mw() const = 0;

  void set_request_sink(RequestSink s) { request_sink_ = std::move(s); }
  void set_response_sink(ResponseSink s) { response_sink_ = std::move(s); }

  /// Batched delivery: when no sink is registered, tick() appends each
  /// delivery to these vectors instead of dispatching through a
  /// std::function per message.  The caller drains them after tick() —
  /// responses first, then requests, matching the in-tick phase order of
  /// every implementation.  Within one tick the two classes touch disjoint
  /// simulator state (requests mutate bank queues and directory slices,
  /// responses mutate core state and latency histograms), and within each
  /// class the vector preserves delivery order, so draining after tick()
  /// is bit-identical to in-tick sink dispatch (see DESIGN.md).
  const std::vector<MemRequest>& delivered_requests() const {
    return delivered_requests_;
  }
  const std::vector<MemResponse>& delivered_responses() const {
    return delivered_responses_;
  }
  void clear_deliveries() {
    delivered_requests_.clear();
    delivered_responses_.clear();
  }

  const InterconnectStats& stats() const { return stats_; }

  /// Observability: point the fabric at a trace sink (null = off) and
  /// the track id its events are stamped with.  Implementations record
  /// grant/route events only on model state changes, never on failed
  /// injection attempts — a retry polled every cycle is invisible to the
  /// event-driven scheduler, and recording it would break the
  /// dense-vs-event trace differential.
  void set_trace(obs::TraceBuffer* trace, std::uint32_t track) {
    trace_ = trace;
    trace_track_ = track;
  }

  /// Registers the transport counters under `prefix` (e.g. "fabric").
  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const {
    m.add(prefix + ".requests_delivered", [this] {
      return static_cast<double>(stats_.requests_delivered);
    });
    m.add(prefix + ".responses_delivered", [this] {
      return static_cast<double>(stats_.responses_delivered);
    });
    m.add(prefix + ".arbitration_wait_cycles", [this] {
      return static_cast<double>(stats_.arbitration_wait_cycles);
    });
    m.add(prefix + ".dynamic_energy_pj", [this] { return dynamic_energy_pj(); });
  }

 protected:
  /// Implementations deliver through these: dispatches to the registered
  /// sink when present (unit tests, custom harnesses), otherwise appends
  /// to the batch vectors for the cluster to drain.
  void emit_request(const MemRequest& req, Cycle now) {
    if (request_sink_) {
      request_sink_(req, now);
    } else {
      delivered_requests_.push_back(req);
    }
  }
  void emit_response(const MemResponse& resp, Cycle now) {
    if (response_sink_) {
      response_sink_(resp, now);
    } else {
      delivered_responses_.push_back(resp);
    }
  }

  RequestSink request_sink_;
  ResponseSink response_sink_;
  std::vector<MemRequest> delivered_requests_;
  std::vector<MemResponse> delivered_responses_;
  InterconnectStats stats_;
  obs::TraceBuffer* trace_ = nullptr;  ///< null = observability off
  std::uint32_t trace_track_ = 0;
};

}  // namespace mot3d
