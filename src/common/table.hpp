// Plain-text table rendering for the bench harnesses.
//
// The paper's figures are bar charts over (benchmark x configuration); every
// bench binary prints the corresponding series as an aligned text table plus
// normalised columns, so EXPERIMENTS.md can quote the rows directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mot3d {

/// Column-aligned text table with a title, header row and string cells.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Render with column widths fitted to content.
  void print(std::ostream& os) const;

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by benches: fixed-precision double and percentages.
std::string fmt_fixed(double v, int precision);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace mot3d
