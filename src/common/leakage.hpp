// Temperature dependence of sub-threshold leakage, shared by every power
// model (cacti::sram_model, phys::wire, power::core_power, the MoT switch
// leakage) and by the thermal subsystem's leakage-feedback fixed point.
//
// Sub-threshold leakage grows exponentially with junction temperature; over
// the 40-110 °C range a single e-folding constant fits both BSIM curves and
// published 45 nm silicon well.  Every model quotes its datasheet leakage at
// the reference temperature and scales it with the same exponential, so the
// closed power->temperature->leakage->power loop uses one consistent law.
#pragma once

#include <cmath>

namespace mot3d {

/// Exponential leakage-vs-temperature law: scale = exp((T - Tref) / T0).
struct LeakageTempParams {
  double ref_temp_c = 45.0;  ///< temperature the datasheet leakage is quoted at
  double efold_c = 25.0;     ///< e-folding constant (leakage doubles per ~17 °C)
};

/// Multiplier on reference leakage at junction temperature `temp_c`.
/// Equal to 1 at the reference temperature; monotone increasing in `temp_c`.
inline double leakage_temp_scale(double temp_c, const LeakageTempParams& p = {}) {
  return std::exp((temp_c - p.ref_temp_c) / p.efold_c);
}

}  // namespace mot3d
