#include "common/stats.hpp"

namespace mot3d {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(num_buckets == 0 ? 1 : num_buckets, 0) {}

void Histogram::add(std::uint64_t value) {
  stat_.add(static_cast<double>(value));
  const std::size_t idx = static_cast<std::size_t>(value / bucket_width_);
  if (idx < buckets_.size()) {
    ++buckets_[idx];
  } else {
    ++overflow_;
  }
}

std::uint64_t Histogram::quantile(double q) const {
  if (stat_.count() == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const double target = q * static_cast<double>(stat_.count());
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return (static_cast<std::uint64_t>(i) + 1) * bucket_width_ - 1;
    }
  }
  return max();
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  stat_.reset();
}

}  // namespace mot3d
