// Cluster-wide message types: the lingua franca between cores, the
// interconnect (circuit-switched MoT or packet-switched NoC baselines),
// the banked L2 and the DRAM backend.
//
// With the coherence subsystem (src/coherence/) the same two wire formats
// also carry the directory-protocol message classes.  The fabrics stay
// payload-agnostic: `is_write` doubles as the "carries a cache line"
// payload bit on both directions (requests: write-backs and dirty data
// forwards carry a line; responses: only kData refills do), so the MoT and
// NoC energy models charge coherence traffic without knowing the protocol.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mot3d {

/// Protocol class of a core->L2 message.  Non-coherent runs only use
/// kGetS/kGetX/kWriteback, which the L2 serves identically to the
/// pre-coherence model (the directory is simply not consulted).
enum class ReqKind : std::uint8_t {
  kGetS,         ///< load-miss line fetch (response installs clean)
  kGetX,         ///< store-miss line fetch (response installs dirty)
  kUpgrade,      ///< S -> M permission upgrade, no data needed
  kWriteback,    ///< dirty L1 victim pushed down (carries the line)
  kInvAck,       ///< invalidation acknowledged, copy was clean
  kDataForward,  ///< invalidation acknowledged, copy was dirty (carries line)
};

/// Protocol class of an L2->core message.
enum class RespKind : std::uint8_t {
  kData,        ///< line refill (carries the line) or write-back ack
  kUpgradeAck,  ///< upgrade granted, line may be dirtied in place
  kInvalidate,  ///< directory orders the core to drop its L1 copy
};

/// Static-lifetime names for trace events and dumps.
constexpr const char* req_kind_name(ReqKind k) {
  switch (k) {
    case ReqKind::kGetS: return "GetS";
    case ReqKind::kGetX: return "GetX";
    case ReqKind::kUpgrade: return "Upgrade";
    case ReqKind::kWriteback: return "Writeback";
    case ReqKind::kInvAck: return "InvAck";
    case ReqKind::kDataForward: return "DataForward";
  }
  return "?";
}

constexpr const char* resp_kind_name(RespKind k) {
  switch (k) {
    case RespKind::kData: return "Data";
    case RespKind::kUpgradeAck: return "UpgradeAck";
    case RespKind::kInvalidate: return "Invalidate";
  }
  return "?";
}

/// A core-to-L2 transaction travelling through the on-chip interconnect.
/// `bank` is the *logical* bank index derived from the line address; the
/// interconnect rewrites it to the physical bank when routing switches run
/// in user-defined (power-gating) mode.
struct MemRequest {
  std::uint64_t id = 0;        ///< unique per run, for matching responses
  CoreId core = 0;             ///< requester
  BankId bank = 0;             ///< logical destination bank
  Addr addr = 0;               ///< full byte address
  bool is_write = false;       ///< message carries a line payload
  Cycle issue_cycle = 0;       ///< when the core injected it
  ReqKind kind = ReqKind::kGetS;
};

/// The L2's answer routed back to the requesting core.
struct MemResponse {
  std::uint64_t id = 0;
  CoreId core = 0;
  BankId bank = 0;             ///< physical bank that served the request
  Addr addr = 0;
  bool is_write = false;       ///< header-only message (no line payload)
  bool l2_hit = false;         ///< served from SRAM vs. refilled from DRAM
  Cycle issue_cycle = 0;       ///< copied from the request
  RespKind kind = RespKind::kData;
  /// kData only: the refill must be installed in Shared (read-only) state —
  /// other cores hold the line too, so a later store needs an upgrade.
  bool shared = false;
};

}  // namespace mot3d
