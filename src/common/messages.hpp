// Cluster-wide message types: the lingua franca between cores, the
// interconnect (circuit-switched MoT or packet-switched NoC baselines),
// the banked L2 and the DRAM backend.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mot3d {

/// A core-to-L2 transaction travelling through the on-chip interconnect.
/// `bank` is the *logical* bank index derived from the line address; the
/// interconnect rewrites it to the physical bank when routing switches run
/// in user-defined (power-gating) mode.
struct MemRequest {
  std::uint64_t id = 0;        ///< unique per run, for matching responses
  CoreId core = 0;             ///< requester
  BankId bank = 0;             ///< logical destination bank
  Addr addr = 0;               ///< full byte address
  bool is_write = false;       ///< write-back from L1 (carries a line)
  Cycle issue_cycle = 0;       ///< when the core injected it
};

/// The L2's answer routed back to the requesting core.
struct MemResponse {
  std::uint64_t id = 0;
  CoreId core = 0;
  BankId bank = 0;             ///< physical bank that served the request
  Addr addr = 0;
  bool is_write = false;
  bool l2_hit = false;         ///< served from SRAM vs. refilled from DRAM
  Cycle issue_cycle = 0;       ///< copied from the request
};

}  // namespace mot3d
