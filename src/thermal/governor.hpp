// Thermal-aware power-state governor: the closed-loop controller that
// keeps the stack under a temperature ceiling using the same Table-I
// power-state machinery the paper's EDP experiments exploit.
//
// The governor is consulted at every thermal sampling interval with the
// hottest tile temperature and escalates through a demotion ladder:
//
//   level 0  free running at the baseline power state
//   level 1  L2 banks gated down to `min_banks` (MoT fabric only — the
//            reconfigurable network is what makes this step exist; the
//            packet-switched baselines skip straight to level 2)
//   level 2  cores clock-held (the classic stop-clock throttle); a
//            duty-cycle guard forces a release after
//            `max_hold_intervals` consecutive held intervals so the run
//            always makes forward progress, whatever the ambient
//
// Demotion triggers when the peak crosses the ceiling; restoration walks
// back down the ladder only once the peak has cooled below
// ceiling - hysteresis, so the controller cannot chatter across the
// threshold.  The governor itself only decides — the cluster executes
// (drain + core::ReconfigManager for bank gating, tick gating for holds)
// at deterministic cycle boundaries, which keeps both schedulers
// bit-identical.
#pragma once

#include <cstdint>
#include <optional>

#include "core/power_state.hpp"

namespace mot3d::thermal {

struct GovernorConfig {
  double ceiling_c = 80.0;
  double hysteresis_c = 5.0;
  bool allow_bank_gating = false;  ///< true only on the MoT fabric
  std::size_t min_banks = 8;       ///< level-1 floor (Table I's MB8)
  std::size_t max_hold_intervals = 4;  ///< duty-cycle forward-progress guard
};

/// What the cluster must do after one decide() call.
struct GovernorDecision {
  /// Reconfigure to this state (drain first); set on bank gate/restore.
  std::optional<core::PowerState> reconfigure;
  bool hold_cores = false;  ///< cores must be clock-held this interval
};

struct GovernorStats {
  std::uint64_t throttle_events = 0;   ///< demotions of either kind
  std::uint64_t bank_gate_events = 0;
  std::uint64_t core_hold_events = 0;  ///< hold *starts*, not held intervals
  std::uint64_t held_intervals = 0;
  std::uint64_t duty_cycle_releases = 0;
};

class ThermalGovernor {
 public:
  /// `baseline` is the power state the run was configured with — the
  /// ceiling of every restoration.
  ThermalGovernor(const GovernorConfig& cfg, const core::PowerState& baseline);

  /// One control step at a sampling boundary.  `peak_c` is the hottest
  /// tile of the interval that just ended.
  GovernorDecision decide(double peak_c);

  bool holding() const { return level_ == 2 && !duty_release_; }
  unsigned level() const { return level_; }
  const core::PowerState& current_state() const { return current_; }
  const GovernorStats& stats() const { return stats_; }

  /// The level-1 target: baseline cores, banks gated to the floor.
  core::PowerState gated_state() const;

 private:
  bool can_gate_banks() const;

  GovernorConfig cfg_;
  core::PowerState baseline_;
  core::PowerState current_;
  unsigned level_ = 0;
  std::uint64_t consecutive_holds_ = 0;
  bool duty_release_ = false;  ///< forced-release interval in progress
  GovernorStats stats_;
};

}  // namespace mot3d::thermal
