#include "thermal/rc_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mot3d::thermal {

namespace {
/// Fraction of the stability bound actually used per substep.
constexpr double kStabilitySafety = 0.5;
/// Gauss-Seidel convergence: max per-sweep temperature change, °C.
constexpr double kSteadyTolC = 1e-9;
constexpr std::size_t kSteadyMaxSweeps = 20000;
}  // namespace

ThermalRcSolver::ThermalRcSolver(const ThermalFloorplan& flp, double ambient_c)
    : layers_(flp.layers()), columns_(flp.columns()), ambient_c_(ambient_c) {
  const std::size_t n = flp.tile_count();
  cap_.resize(n);
  sink_g_.assign(n, 0.0);
  g_sum_.assign(n, 0.0);
  edges_.assign(n, {});
  temp_.assign(n, ambient_c_);
  scratch_.assign(n, ambient_c_);

  for (std::size_t i = 0; i < n; ++i) cap_[i] = flp.tiles()[i].capacitance_j_k;

  auto connect = [this](std::size_t a, std::size_t b, double g) {
    edges_[a].push_back({b, g});
    edges_[b].push_back({a, g});
    g_sum_[a] += g;
    g_sum_[b] += g;
  };

  for (std::size_t layer = 0; layer < layers_; ++layer) {
    const double lat = flp.lateral_g_w_k(layer);
    for (std::size_t col = 0; col + 1 < columns_; ++col) {
      connect(flp.tile_index(layer, col), flp.tile_index(layer, col + 1), lat);
    }
  }
  for (std::size_t layer = 0; layer + 1 < layers_; ++layer) {
    const double vert = flp.vertical_g_w_k(layer);
    for (std::size_t col = 0; col < columns_; ++col) {
      connect(flp.tile_index(layer, col), flp.tile_index(layer + 1, col), vert);
    }
  }
  const double sink = flp.sink_g_w_k();
  for (std::size_t col = 0; col < columns_; ++col) {
    const std::size_t i = flp.tile_index(0, col);
    sink_g_[i] = sink;
    g_sum_[i] += sink;
  }

  stable_dt_s_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (g_sum_[i] > 0.0) stable_dt_s_ = std::min(stable_dt_s_, cap_[i] / g_sum_[i]);
  }
}

void ThermalRcSolver::step(const std::vector<double>& power_w, double dt_s) {
  assert(power_w.size() == cap_.size());
  if (dt_s <= 0.0) return;
  const double max_sub = kStabilitySafety * stable_dt_s_;
  const auto substeps =
      static_cast<std::size_t>(std::max(1.0, std::ceil(dt_s / max_sub)));
  const double dt_sub = dt_s / static_cast<double>(substeps);

  const std::size_t n = cap_.size();
  for (std::size_t s = 0; s < substeps; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      double flow_w = power_w[i] + sink_g_[i] * (ambient_c_ - temp_[i]);
      for (const Edge& e : edges_[i]) flow_w += e.g_w_k * (temp_[e.other] - temp_[i]);
      scratch_[i] = temp_[i] + dt_sub * flow_w / cap_[i];
    }
    temp_.swap(scratch_);
  }
}

std::vector<double> ThermalRcSolver::steady_state(
    const std::vector<double>& power_w) const {
  assert(power_w.size() == cap_.size());
  const std::size_t n = cap_.size();
  // Seed from the transient state: close to the answer during a run.
  std::vector<double> t = temp_;
  for (std::size_t sweep = 0; sweep < kSteadyMaxSweeps; ++sweep) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (g_sum_[i] <= 0.0) continue;  // isolated node: keep its seed
      double num = power_w[i] + sink_g_[i] * ambient_c_;
      for (const Edge& e : edges_[i]) num += e.g_w_k * t[e.other];
      const double next = num / g_sum_[i];
      max_delta = std::max(max_delta, std::abs(next - t[i]));
      t[i] = next;
    }
    if (max_delta < kSteadyTolC) break;
  }
  return t;
}

void ThermalRcSolver::set_temperatures(const std::vector<double>& temps_c) {
  assert(temps_c.size() == temp_.size());
  temp_ = temps_c;
}

double ThermalRcSolver::peak_c() const {
  double m = ambient_c_;
  for (double t : temp_) m = std::max(m, t);
  return m;
}

double ThermalRcSolver::peak_layer_c(std::size_t layer) const {
  double m = ambient_c_;
  for (std::size_t col = 0; col < columns_; ++col) {
    m = std::max(m, temp_[layer * columns_ + col]);
  }
  return m;
}

}  // namespace mot3d::thermal
