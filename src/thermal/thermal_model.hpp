// The thermal subsystem's front door: couples the floorplan-derived RC
// network to the power models and closes the power -> temperature ->
// leakage -> power loop.
//
// Each scheduler sampling interval the cluster hands over the per-tile
// *dynamic* power (from power::EnergyLedger deltas) and the per-tile
// *reference-temperature* leakage of cores / L2 banks / interconnect.
// advance() then iterates leakage and temperature to a fixed point —
// leakage is evaluated at the interval-end temperature estimate through
// the shared exponential law (common/leakage.hpp, the same law
// cacti::leakage_mw_at, phys::WireModel::leakage_uw_per_bit_at and
// power::CorePowerModel::leakage_mw_at implement), the RC network is
// re-stepped from the saved interval-start state, and the loop repeats
// until the end temperatures stop moving.  The converged, temperature-
// scaled leakage energies are accumulated per component next to a
// temperature-independent baseline, so runs can report the leakage-energy
// delta the 3-D stack actually costs.
//
// Thermal time scale: RC time constants are milliseconds while scaled-down
// traces simulate micro-seconds, so the thermal clock runs `time_scale`
// times faster than simulated time (the synthetic traces stand in for
// full-length SPLASH-2 runs; the stretch restores the thermal trajectory
// of the full run).  Energy bookkeeping always uses *simulated* time —
// only the RC dynamics are accelerated.
#pragma once

#include <cstddef>
#include <vector>

#include "common/leakage.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_solver.hpp"

namespace mot3d::thermal {

/// One cell of a scenario's thermal axis (ambient x ceiling, and whether
/// the subsystem runs at all).  Everything else uses ThermalConfig
/// defaults.
struct ThermalEnvelope {
  bool enabled = false;
  double ambient_c = 45.0;
  double ceiling_c = 80.0;

  bool operator==(const ThermalEnvelope&) const = default;
};

/// Full configuration of the thermal subsystem (ClusterConfig::thermal).
struct ThermalConfig {
  bool enabled = false;
  double ambient_c = 45.0;
  double ceiling_c = 80.0;       ///< governor throttling threshold
  double hysteresis_c = 5.0;     ///< governor restore margin below ceiling
  Cycle sample_interval_cycles = 10'000;
  /// Thermal seconds per simulated second (see header comment).
  double time_scale = 2000.0;
  /// Initialise tile temperatures from the steady state of the first
  /// sampling interval's power (HotSpot's "-init steady" convention) so
  /// short runs report meaningful temperatures instead of a cold start.
  bool warm_start = true;
  std::size_t max_leakage_iters = 12;
  double leakage_tol_c = 1e-6;   ///< fixed-point convergence, °C
  /// Temperature cap for leakage evaluation.  Above roughly 60-65 °C
  /// ambient this package's leakage loop gain exceeds one — genuine
  /// thermal runaway.  The exponential is evaluated at min(T, clamp) so
  /// a runaway saturates to a finite (still obviously catastrophic)
  /// temperature instead of overflowing; the reported peaks expose it.
  double leakage_clamp_c = 150.0;
  /// THE temperature law of the feedback loop.  The per-model `_at` APIs
  /// (cacti::leakage_mw_at, WireModel::leakage_uw_per_bit_at,
  /// CorePowerModel::leakage_mw_at, MotTimingModel::leakage_mw_at) expose
  /// the same shared exponential for external consumers (advisors,
  /// tables, tests); keep their LeakageTempParams equal to this one or
  /// the two views of leakage will disagree.
  LeakageTempParams leakage;
  ThermalStackParams stack;
  /// Governor: lowest bank count a thermal demotion may gate down to.
  std::size_t governor_min_banks = 8;
  /// Governor: consecutive held intervals before a forced duty-cycle
  /// release (guarantees forward progress under any ambient).
  std::size_t governor_max_hold_intervals = 4;

  static ThermalConfig from_envelope(const ThermalEnvelope& env) {
    ThermalConfig cfg;
    cfg.enabled = env.enabled;
    cfg.ambient_c = env.ambient_c;
    cfg.ceiling_c = env.ceiling_c;
    return cfg;
  }
};

/// Per-tile power inputs for one sampling interval.  All vectors are
/// tile-indexed (ThermalFloorplan::tile_index) and sized tile_count().
/// Leakage vectors carry the *reference-temperature* values; the model
/// applies the temperature scaling itself inside the fixed point.
struct ThermalSources {
  std::vector<double> dynamic_w;
  std::vector<double> core_leak_ref_w;
  std::vector<double> l2_leak_ref_w;
  std::vector<double> icn_leak_ref_w;
};

/// Everything a run reports about its thermal trajectory (SimResult).
struct ThermalSummary {
  bool enabled = false;
  double ambient_c = 0.0;
  double ceiling_c = 0.0;
  std::vector<double> peak_layer_c;  ///< max over the run, per layer
  double peak_c = 0.0;               ///< max over the run, all layers
  double final_peak_c = 0.0;         ///< hottest tile at run end
  double steady_peak_c = 0.0;        ///< steady state at run-average power
  std::uint64_t samples = 0;

  // Governor activity (filled by the cluster).
  std::uint64_t throttle_events = 0;   ///< demotions (bank gates + holds)
  std::uint64_t bank_gate_events = 0;
  std::uint64_t core_hold_events = 0;
  std::uint64_t throttled_cycles = 0;  ///< cycles with cores held

  // Temperature-dependent static energy vs. the flat-temperature model.
  double leakage_pj = 0.0;       ///< converged, temperature-scaled
  double leakage_ref_pj = 0.0;   ///< same intervals at reference temperature
  double leakage_delta_pj() const { return leakage_pj - leakage_ref_pj; }
};

class ThermalModel {
 public:
  ThermalModel(const ThermalConfig& cfg, const phys::FloorplanParams& fp,
               const phys::TechnologyParams& tech);

  const ThermalFloorplan& floorplan() const { return flp_; }
  const ThermalRcSolver& solver() const { return solver_; }
  const ThermalConfig& config() const { return cfg_; }

  ThermalSources make_sources() const;

  /// Advance one sampling interval of `cycles` simulated cycles; iterates
  /// the leakage/temperature fixed point and accumulates static energy.
  void advance(const ThermalSources& src, Cycle cycles);

  /// Hottest tile right now, °C.
  double peak_c() const { return solver_.peak_c(); }

  /// Per-component temperature-scaled static energy so far, pJ.
  double core_static_pj() const { return core_static_pj_; }
  double l2_static_pj() const { return l2_static_pj_; }
  double icn_static_pj() const { return icn_static_pj_; }

  /// Temperature, peak and leakage bookkeeping for the final report;
  /// computes the steady-state solve at run-average power.
  ThermalSummary summary() const;

  /// Registers current-temperature / leakage probes under `prefix` (e.g.
  /// "thermal").  Cheap reads only — no steady-state solve per sample.
  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const {
    m.add(prefix + ".peak_c", [this] { return peak_c(); });
    m.add(prefix + ".samples",
          [this] { return static_cast<double>(samples_); });
    m.add(prefix + ".leakage_pj", [this] {
      return core_static_pj_ + l2_static_pj_ + icn_static_pj_;
    });
  }

 private:
  /// Leakage power of tile `i` at temperature `t_c`, W.
  double tile_leak_w(const ThermalSources& src, std::size_t i, double t_c) const;

  /// Steady-state temperatures under `src` with the leakage fixed point.
  std::vector<double> steady_fixed_point(const ThermalSources& src) const;

  ThermalConfig cfg_;
  ThermalFloorplan flp_;
  ThermalRcSolver solver_;
  bool warmed_ = false;

  std::uint64_t samples_ = 0;
  Cycle total_cycles_ = 0;
  std::vector<double> peak_layer_c_;
  double peak_c_;

  // Run totals for the steady-state solve at average power.
  std::vector<double> dynamic_pj_accum_;
  std::vector<double> core_leak_ref_pj_accum_;
  std::vector<double> l2_leak_ref_pj_accum_;
  std::vector<double> icn_leak_ref_pj_accum_;

  double core_static_pj_ = 0.0;
  double l2_static_pj_ = 0.0;
  double icn_static_pj_ = 0.0;
  double baseline_static_pj_ = 0.0;
};

}  // namespace mot3d::thermal
