// Transient 3-D compact thermal model: a HotSpot-style RC network over the
// floorplan's tile grid, solved by explicit (forward-Euler) stepping with a
// stability-checked time step, plus a deterministic steady-state solver.
//
// Each tile is one node with a thermal capacitance C_i and conductances
//   * laterally to its column neighbours within a layer,
//   * vertically to the tiles above/below (bond layer + TSV copper),
//   * from the core die into the sink (the only path to ambient).
//
// dT_i/dt = (P_i + sum_j G_ij (T_j - T_i) + G_sink_i (T_amb - T_i)) / C_i
//
// Forward Euler is stable iff dt < C_i / sum(G_i) for every node; step()
// subdivides any requested interval into substeps below that bound times a
// safety factor, so callers can hand it scheduler-sized intervals without
// thinking about stiffness.  All arithmetic is straight double evaluation
// in a fixed order — results are bit-identical across schedulers and
// thread counts, which the golden suite relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/floorplan.hpp"

namespace mot3d::thermal {

class ThermalRcSolver {
 public:
  /// Builds the RC network from the floorplan; every tile starts at
  /// `ambient_c`.
  ThermalRcSolver(const ThermalFloorplan& flp, double ambient_c);

  std::size_t node_count() const { return cap_.size(); }
  double ambient_c() const { return ambient_c_; }

  /// Largest forward-Euler step that is stable for this network, seconds
  /// (min_i C_i / sum(G_i), before the safety factor).
  double stable_dt_s() const { return stable_dt_s_; }

  /// Advance the transient solution by `dt_s` seconds with per-tile heat
  /// input `power_w` (W, size node_count()), internally subdividing into
  /// stability-bounded substeps.
  void step(const std::vector<double>& power_w, double dt_s);

  /// Steady-state temperatures for constant `power_w`, by Gauss-Seidel
  /// sweeps to a fixed tolerance (deterministic order and iteration
  /// count); does not modify the transient state.
  std::vector<double> steady_state(const std::vector<double>& power_w) const;

  /// Replace the transient state (e.g. warm-start from a steady solve).
  void set_temperatures(const std::vector<double>& temps_c);

  const std::vector<double>& temperatures_c() const { return temp_; }
  double tile_c(std::size_t i) const { return temp_[i]; }
  double peak_c() const;
  double peak_layer_c(std::size_t layer) const;

 private:
  struct Edge {
    std::size_t other;
    double g_w_k;
  };

  std::size_t layers_;
  std::size_t columns_;
  double ambient_c_;
  double stable_dt_s_;
  std::vector<double> cap_;                 ///< C_i, J/K
  std::vector<double> sink_g_;              ///< G to ambient, W/K
  std::vector<double> g_sum_;               ///< sum of all conductances at i
  std::vector<std::vector<Edge>> edges_;    ///< adjacency (both directions)
  std::vector<double> temp_;                ///< transient state, °C
  std::vector<double> scratch_;             ///< step() double-buffer
};

}  // namespace mot3d::thermal
