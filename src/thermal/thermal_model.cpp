#include "thermal/thermal_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mot3d::thermal {

ThermalModel::ThermalModel(const ThermalConfig& cfg,
                           const phys::FloorplanParams& fp,
                           const phys::TechnologyParams& tech)
    : cfg_(cfg),
      flp_(fp, tech, cfg.stack),
      solver_(flp_, cfg.ambient_c),
      peak_layer_c_(flp_.layers(), cfg.ambient_c),
      peak_c_(cfg.ambient_c) {
  const std::size_t n = flp_.tile_count();
  dynamic_pj_accum_.assign(n, 0.0);
  core_leak_ref_pj_accum_.assign(n, 0.0);
  l2_leak_ref_pj_accum_.assign(n, 0.0);
  icn_leak_ref_pj_accum_.assign(n, 0.0);
}

ThermalSources ThermalModel::make_sources() const {
  ThermalSources src;
  const std::size_t n = flp_.tile_count();
  src.dynamic_w.assign(n, 0.0);
  src.core_leak_ref_w.assign(n, 0.0);
  src.l2_leak_ref_w.assign(n, 0.0);
  src.icn_leak_ref_w.assign(n, 0.0);
  return src;
}

double ThermalModel::tile_leak_w(const ThermalSources& src, std::size_t i,
                                 double t_c) const {
  // The same exponential law the per-module APIs (cacti::leakage_mw_at,
  // WireModel::leakage_uw_per_bit_at, CorePowerModel::leakage_mw_at)
  // expose, applied to their reference-temperature values per tile.  The
  // clamp keeps genuine thermal runaway finite (see ThermalConfig).
  const double scale =
      leakage_temp_scale(std::min(t_c, cfg_.leakage_clamp_c), cfg_.leakage);
  return (src.core_leak_ref_w[i] + src.l2_leak_ref_w[i] + src.icn_leak_ref_w[i]) *
         scale;
}

void ThermalModel::advance(const ThermalSources& src, Cycle cycles) {
  const std::size_t n = flp_.tile_count();
  assert(src.dynamic_w.size() == n);
  if (cycles == 0) return;

  if (cfg_.warm_start && !warmed_) {
    solver_.set_temperatures(steady_fixed_point(src));
    warmed_ = true;
  }

  const double dt_s =
      static_cast<double>(cycles) * 1e-9 * cfg_.time_scale;
  const std::vector<double> start = solver_.temperatures_c();
  std::vector<double> end_estimate = start;
  std::vector<double> power(n, 0.0);

  for (std::size_t iter = 0; iter < cfg_.max_leakage_iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      power[i] = src.dynamic_w[i] + tile_leak_w(src, i, end_estimate[i]);
    }
    solver_.set_temperatures(start);
    solver_.step(power, dt_s);
    const std::vector<double>& end = solver_.temperatures_c();
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_delta = std::max(max_delta, std::abs(end[i] - end_estimate[i]));
    }
    end_estimate = end;
    if (max_delta < cfg_.leakage_tol_c) break;
  }

  // Static energy of the interval at the converged temperatures (the
  // trapezoid start/end distinction is below the fixed-point tolerance).
  // mW * cycle(ns) == pJ; W * cycles == 1e3 pJ.
  const double cyc = static_cast<double>(cycles);
  double core_w = 0.0, l2_w = 0.0, icn_w = 0.0, ref_w = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = leakage_temp_scale(
        std::min(end_estimate[i], cfg_.leakage_clamp_c), cfg_.leakage);
    core_w += src.core_leak_ref_w[i] * scale;
    l2_w += src.l2_leak_ref_w[i] * scale;
    icn_w += src.icn_leak_ref_w[i] * scale;
    ref_w += src.core_leak_ref_w[i] + src.l2_leak_ref_w[i] + src.icn_leak_ref_w[i];

    dynamic_pj_accum_[i] += src.dynamic_w[i] * cyc * 1e3;
    core_leak_ref_pj_accum_[i] += src.core_leak_ref_w[i] * cyc * 1e3;
    l2_leak_ref_pj_accum_[i] += src.l2_leak_ref_w[i] * cyc * 1e3;
    icn_leak_ref_pj_accum_[i] += src.icn_leak_ref_w[i] * cyc * 1e3;
  }
  core_static_pj_ += core_w * cyc * 1e3;
  l2_static_pj_ += l2_w * cyc * 1e3;
  icn_static_pj_ += icn_w * cyc * 1e3;
  baseline_static_pj_ += ref_w * cyc * 1e3;

  total_cycles_ += cycles;
  ++samples_;
  for (std::size_t layer = 0; layer < flp_.layers(); ++layer) {
    peak_layer_c_[layer] =
        std::max(peak_layer_c_[layer], solver_.peak_layer_c(layer));
  }
  peak_c_ = std::max(peak_c_, solver_.peak_c());
}

std::vector<double> ThermalModel::steady_fixed_point(
    const ThermalSources& src) const {
  const std::size_t n = flp_.tile_count();
  std::vector<double> temps = solver_.temperatures_c();
  std::vector<double> power(n, 0.0);
  for (std::size_t iter = 0; iter < cfg_.max_leakage_iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      power[i] = src.dynamic_w[i] + tile_leak_w(src, i, temps[i]);
    }
    const std::vector<double> next = solver_.steady_state(power);
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_delta = std::max(max_delta, std::abs(next[i] - temps[i]));
    }
    temps = next;
    if (max_delta < cfg_.leakage_tol_c) break;
  }
  return temps;
}

ThermalSummary ThermalModel::summary() const {
  ThermalSummary s;
  s.enabled = cfg_.enabled;
  s.ambient_c = cfg_.ambient_c;
  s.ceiling_c = cfg_.ceiling_c;
  s.peak_layer_c = peak_layer_c_;
  s.peak_c = peak_c_;
  s.final_peak_c = solver_.peak_c();
  s.samples = samples_;
  s.leakage_pj = core_static_pj_ + l2_static_pj_ + icn_static_pj_;
  s.leakage_ref_pj = baseline_static_pj_;

  // Steady state at the run-average power mix.
  if (total_cycles_ > 0) {
    ThermalSources avg = make_sources();
    const double cyc = static_cast<double>(total_cycles_);
    for (std::size_t i = 0; i < flp_.tile_count(); ++i) {
      avg.dynamic_w[i] = dynamic_pj_accum_[i] / cyc * 1e-3;
      avg.core_leak_ref_w[i] = core_leak_ref_pj_accum_[i] / cyc * 1e-3;
      avg.l2_leak_ref_w[i] = l2_leak_ref_pj_accum_[i] / cyc * 1e-3;
      avg.icn_leak_ref_w[i] = icn_leak_ref_pj_accum_[i] / cyc * 1e-3;
    }
    const std::vector<double> steady = steady_fixed_point(avg);
    double m = cfg_.ambient_c;
    for (double t : steady) m = std::max(m, t);
    s.steady_peak_c = m;
  } else {
    s.steady_peak_c = cfg_.ambient_c;
  }
  return s;
}

}  // namespace mot3d::thermal
