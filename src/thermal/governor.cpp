#include "thermal/governor.hpp"

#include <string>

namespace mot3d::thermal {

ThermalGovernor::ThermalGovernor(const GovernorConfig& cfg,
                                 const core::PowerState& baseline)
    : cfg_(cfg), baseline_(baseline), current_(baseline) {}

bool ThermalGovernor::can_gate_banks() const {
  return cfg_.allow_bank_gating && baseline_.active_banks() > cfg_.min_banks;
}

core::PowerState ThermalGovernor::gated_state() const {
  const std::size_t banks = cfg_.min_banks;
  const std::size_t cores = baseline_.active_cores();
  return core::PowerState("PC" + std::to_string(cores) + "-MB" + std::to_string(banks),
                          baseline_.total_cores(), cores, baseline_.total_banks(),
                          banks);
}

GovernorDecision ThermalGovernor::decide(double peak_c) {
  GovernorDecision d;
  const bool hot = peak_c >= cfg_.ceiling_c;
  const bool cool = peak_c <= cfg_.ceiling_c - cfg_.hysteresis_c;

  switch (level_) {
    case 0:
      if (hot) {
        ++stats_.throttle_events;
        if (can_gate_banks()) {
          level_ = 1;
          ++stats_.bank_gate_events;
          current_ = gated_state();
          d.reconfigure = current_;
        } else {
          level_ = 2;
          ++stats_.core_hold_events;
          consecutive_holds_ = 0;
        }
      }
      break;
    case 1:
      if (hot) {
        // Bank gating alone did not arrest the rise: escalate to holds.
        ++stats_.throttle_events;
        ++stats_.core_hold_events;
        level_ = 2;
        consecutive_holds_ = 0;
      } else if (cool) {
        level_ = 0;
        current_ = baseline_;
        d.reconfigure = current_;
      }
      break;
    case 2:
      if (cool) {
        // Walk back one rung: banks stay gated (if they were) until a
        // further cool interval confirms the headroom.
        level_ = current_ == baseline_ ? 0 : 1;
        consecutive_holds_ = 0;
        duty_release_ = false;
      } else if (duty_release_) {
        // The forced-release interval has passed; resume holding.
        duty_release_ = false;
        consecutive_holds_ = 0;
      } else if (consecutive_holds_ >= cfg_.max_hold_intervals) {
        duty_release_ = true;
        ++stats_.duty_cycle_releases;
      }
      break;
    default:
      break;
  }

  d.hold_cores = holding();
  if (d.hold_cores) {
    ++consecutive_holds_;
    ++stats_.held_intervals;
  }
  return d;
}

}  // namespace mot3d::thermal
