#include "thermal/floorplan.hpp"

#include <algorithm>

#include "core/power_state.hpp"

namespace mot3d::thermal {

namespace {
constexpr double kMmToM = 1e-3;
constexpr double kUmToM = 1e-6;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

ThermalFloorplan::ThermalFloorplan(const phys::FloorplanParams& fp,
                                   const phys::TechnologyParams& tech,
                                   const ThermalStackParams& stack)
    : fp_(fp), stack_(stack), columns_(fp.max_cores) {
  column_width_mm_ = fp_.die_x_mm / static_cast<double>(columns_);

  // Copper TSV bus per landing column, in parallel with the bond layer.
  const double tsv_area_m2 =
      kPi * 0.25 * (stack_.tsv_diameter_um * kUmToM) * (stack_.tsv_diameter_um * kUmToM);
  const double tsv_height_m = tech.tsv_height_um * kUmToM;
  tsv_g_per_column_w_k_ = static_cast<double>(stack_.tsvs_per_column) *
                          stack_.k_tsv_cu_w_mk * tsv_area_m2 / tsv_height_m;

  tiles_.reserve(kLayers * columns_);
  const double area_m2 =
      (column_width_mm_ * kMmToM) * (fp_.die_y_mm * kMmToM);
  for (std::size_t layer = 0; layer < kLayers; ++layer) {
    const double thickness_m =
        (layer == 0 ? stack_.core_die_thickness_mm : stack_.stacked_die_thickness_mm) *
        kMmToM;
    for (std::size_t col = 0; col < columns_; ++col) {
      ThermalTile t;
      t.layer = layer;
      t.column = col;
      t.capacitance_j_k = stack_.c_vol_j_m3k * area_m2 * thickness_m;
      tiles_.push_back(t);
    }
  }
}

std::vector<std::size_t> ThermalFloorplan::channel_tiles(
    std::size_t active_cores, std::size_t active_banks) const {
  // Active spans are centre-folded (core::PowerState): the channel covers
  // the union of the active core columns and the active bank landing
  // columns.  Bank landing columns: two banks per column.
  const std::size_t core_base = core::PowerState::centre_base(
      columns_, std::min(active_cores, columns_), /*upper_half=*/false);
  const std::size_t core_end = core_base + std::min(active_cores, columns_);
  const std::size_t bank_cols = std::max<std::size_t>(1, active_banks / 2);
  const std::size_t bank_base = core::PowerState::centre_base(
      columns_, std::min(bank_cols, columns_), /*upper_half=*/false);
  const std::size_t bank_end = bank_base + std::min(bank_cols, columns_);

  const std::size_t lo = std::min(core_base, bank_base);
  const std::size_t hi = std::max(core_end, bank_end);
  std::vector<std::size_t> out;
  out.reserve(hi - lo);
  for (std::size_t col = lo; col < hi; ++col) out.push_back(tile_index(0, col));
  return out;
}

double ThermalFloorplan::lateral_g_w_k(std::size_t layer) const {
  const double thickness_m =
      (layer == 0 ? stack_.core_die_thickness_mm : stack_.stacked_die_thickness_mm) *
      kMmToM;
  const double cross_section_m2 = (fp_.die_y_mm * kMmToM) * thickness_m;
  return stack_.k_silicon_w_mk * cross_section_m2 / (column_width_mm_ * kMmToM);
}

double ThermalFloorplan::vertical_g_w_k(std::size_t lower) const {
  (void)lower;  // both bond interfaces share the tier gap and TSV geometry
  const double area_m2 = (column_width_mm_ * kMmToM) * (fp_.die_y_mm * kMmToM);
  const double gap_m = fp_.tier_gap_mm * kMmToM;
  const double bond_g = stack_.k_bond_w_mk * area_m2 / gap_m;
  return bond_g + tsv_g_per_column_w_k_;
}

double ThermalFloorplan::sink_g_w_k() const {
  return 1.0 / (stack_.sink_resistance_k_w * static_cast<double>(columns_));
}

}  // namespace mot3d::thermal
