// Thermal floorplan of the 3-D stack: the per-layer tile grid the RC
// solver works on, derived from the electrical floorplan (phys::geometry).
//
// The stack has three silicon layers (paper Fig. 1(b)):
//
//   layer 2   L2 tier B   (odd banks: one 64 KB bank per landing column)
//   layer 1   L2 tier A   (even banks)
//   layer 0   core die    (16 cores + the MoT channel), attached to the
//                         heat spreader / sink
//
// Each layer is tiled into `columns` equal slices across the die's x
// extent — one column per core site, which is also one TSV-bus landing
// column (two banks share a landing column, one on each stacked tier, so
// 32 banks land on 16 columns; see ClusterGeometry::bank_field_span_mm).
// Heat flows laterally between column neighbours within a layer, and
// vertically between layers through the bonding interface, whose
// conductance is boosted by the copper TSV bus at every landing column.
// The only path to ambient is through the core die into the sink — the
// classic stacked-cache asymmetry: upper tiers are cooled through the
// logic die below them, so they run hotter for the same power.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"

namespace mot3d::thermal {

/// Material / package constants of the thermal stack.  Lengths in the
/// same units as phys (mm, µm) — converted to SI internally.
struct ThermalStackParams {
  double k_silicon_w_mk = 130.0;   ///< bulk silicon conductivity, W/(m K)
  double k_bond_w_mk = 1.5;        ///< underfill + micro-bump bond layer
  double k_tsv_cu_w_mk = 400.0;    ///< copper TSV fill
  double c_vol_j_m3k = 1.75e6;     ///< volumetric heat capacity of silicon
  double core_die_thickness_mm = 0.30;   ///< bulk die on the package
  double stacked_die_thickness_mm = 0.05;///< thinned stacked tiers
  double tsv_diameter_um = 5.0;    ///< per-TSV copper cross-section
  std::size_t tsvs_per_column = 128;  ///< TSV bus lands per column (data+ctl)
  /// Junction-to-ambient resistance of the whole package through the core
  /// die, K/W (spreader + sink + convection, lumped).
  double sink_resistance_k_w = 12.0;
};

/// One tile of the 3-D grid (a column slice of one layer).
struct ThermalTile {
  std::size_t layer = 0;   ///< 0 = core die, 1/2 = stacked L2 tiers
  std::size_t column = 0;  ///< x slice index
  double capacitance_j_k = 0.0;
};

/// The derived RC network: tiles plus the three conductance families the
/// solver needs.  Indexing: tile(layer, column) = layer * columns + column.
class ThermalFloorplan {
 public:
  ThermalFloorplan(const phys::FloorplanParams& fp,
                   const phys::TechnologyParams& tech,
                   const ThermalStackParams& stack = {});

  std::size_t layers() const { return kLayers; }
  std::size_t columns() const { return columns_; }
  std::size_t tile_count() const { return tiles_.size(); }
  std::size_t tile_index(std::size_t layer, std::size_t column) const {
    return layer * columns_ + column;
  }
  const std::vector<ThermalTile>& tiles() const { return tiles_; }

  /// Tile hosting physical core `c` (core die).
  std::size_t core_tile(CoreId c) const { return tile_index(0, c % columns_); }

  /// Tile hosting physical L2 bank `b`: two banks share landing column
  /// b/2, the even bank on tier A (layer 1), the odd bank on tier B
  /// (layer 2) — the tier sharing phys::geometry folds into its pitch.
  std::size_t bank_tile(BankId b) const {
    return tile_index(1 + (b % 2), (b / 2) % columns_);
  }

  /// Tile hosting stacked-DRAM vault `vault` (dram3d backend): vaults
  /// share the stacked tiers' thermal footprint with the L2 banks — the
  /// DRAM dies are bonded into the same column grid, so vault heat lands
  /// on the tier tiles above the matching landing columns, alternating
  /// tiers exactly like banks do.
  std::size_t vault_tile(std::size_t vault) const {
    return tile_index(1 + (vault % 2), (vault / 2) % columns_);
  }

  /// Core-die tiles carrying the MoT channel for an active centre span of
  /// `active_cores` cores and `active_banks` banks: the union of the two
  /// centre-folded fields (the Fig. 5 active-span shrink, thermally).
  std::vector<std::size_t> channel_tiles(std::size_t active_cores,
                                         std::size_t active_banks) const;

  /// Lateral conductance between column neighbours of `layer`, W/K.
  double lateral_g_w_k(std::size_t layer) const;

  /// Vertical conductance between a tile of layer `lower` and the tile
  /// above it (bond layer + TSV copper in parallel), W/K.
  double vertical_g_w_k(std::size_t lower) const;

  /// Conductance of one core-die tile into the heat sink, W/K (the whole
  /// package resistance split evenly over the columns).
  double sink_g_w_k() const;

  const ThermalStackParams& stack() const { return stack_; }

 private:
  static constexpr std::size_t kLayers = 3;

  phys::FloorplanParams fp_;
  ThermalStackParams stack_;
  std::size_t columns_;
  double column_width_mm_;
  double tsv_g_per_column_w_k_;
  std::vector<ThermalTile> tiles_;
};

}  // namespace mot3d::thermal
