// service.* metrics probes for the sweep service (src/sim/sweep_service).
//
// The sweep service is host-side infrastructure, not simulated hardware,
// so its counters are NOT part of the per-run MetricsRegistry time series
// (those sample simulated-cycle epochs).  Instead they are lock-free
// atomics incremented on cache-resolution events and snapshotted on
// demand — the `cache stats` subcommand and the serve-mode `stats`
// request serialise them under the same dotted "service.*" names the
// rest of the observability layer uses, and the concurrency tests
// cross-check them against per-response provenance fields.
#pragma once

#include <atomic>
#include <cstdint>

namespace mot3d::obs {

/// One snapshot of every service counter (plain values, safe to copy).
struct ServiceSnapshot {
  std::uint64_t hits = 0;             ///< jobs served without computing
  std::uint64_t misses = 0;           ///< jobs this service computed
  std::uint64_t computed = 0;         ///< cluster simulations actually run
  std::uint64_t evictions = 0;        ///< cache entries removed by the cap
  std::uint64_t corrupt_entries = 0;  ///< truncated/hash-mismatched loads
  std::uint64_t job_errors = 0;       ///< jobs that failed (never cached)
  std::uint64_t protocol_errors = 0;  ///< malformed request lines
  std::uint64_t requests = 0;         ///< request lines accepted
  std::int64_t queue_depth = 0;       ///< jobs claimed but not yet published
};

/// Thread-safe counters; every field matches a ServiceSnapshot field.
class ServiceCounters {
 public:
  void add_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void add_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void add_computed() { computed_.fetch_add(1, std::memory_order_relaxed); }
  void add_evictions(std::uint64_t n) {
    evictions_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_corrupt() { corrupt_.fetch_add(1, std::memory_order_relaxed); }
  void add_job_error() { job_errors_.fetch_add(1, std::memory_order_relaxed); }
  void add_protocol_error() {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_request() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void enqueue() { queue_depth_.fetch_add(1, std::memory_order_relaxed); }
  void dequeue() { queue_depth_.fetch_sub(1, std::memory_order_relaxed); }

  ServiceSnapshot snapshot() const {
    ServiceSnapshot s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.computed = computed_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.corrupt_entries = corrupt_.load(std::memory_order_relaxed);
    s.job_errors = job_errors_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> job_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::int64_t> queue_depth_{0};
};

}  // namespace mot3d::obs
