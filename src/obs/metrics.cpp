#include "obs/metrics.hpp"

#include <charconv>
#include <cmath>
#include <limits>

namespace mot3d::obs {

namespace {

// Shortest round-trip formatting (std::to_chars), so the exported time
// series is a deterministic function of the sampled doubles alone.
void write_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "null";
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, res.ptr - buf);
}

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else os << c;
  }
}

}  // namespace

void MetricsRegistry::add(std::string name, std::function<double()> probe,
                          std::function<bool()> empty) {
  Counter c;
  c.name = std::move(name);
  c.probe = std::move(probe);
  c.empty = std::move(empty);
  c.series.reserve(16);
  counters_.push_back(std::move(c));
}

void MetricsRegistry::sample(Cycle now) {
  for (const auto& hook : prepare_) hook();
  cycles_.push_back(now);
  for (Counter& c : counters_) {
    const bool is_empty = c.empty && c.empty();
    c.series.push_back(is_empty ? std::numeric_limits<double>::quiet_NaN()
                                : c.probe());
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"cycles\":[";
  for (std::size_t s = 0; s < cycles_.size(); ++s) {
    if (s != 0) os << ',';
    os << cycles_[s];
  }
  os << "],\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) os << ',';
    os << "\n  \"";
    write_escaped(os, counters_[i].name);
    os << "\":[";
    for (std::size_t s = 0; s < counters_[i].series.size(); ++s) {
      if (s != 0) os << ',';
      write_number(os, counters_[i].series[s]);
    }
    os << ']';
  }
  os << "\n}}";
}

void MetricsRegistry::write_csv_rows(std::ostream& os,
                                     const std::string& run) const {
  for (std::size_t s = 0; s < cycles_.size(); ++s) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      os << run << ',' << cycles_[s] << ',' << counters_[i].name << ',';
      const double v = counters_[i].series[s];
      if (!std::isnan(v)) write_number(os, v);
      os << '\n';
    }
  }
}

}  // namespace mot3d::obs
