// Trace sink: Chrome-trace-event / Perfetto JSON emission for one run.
//
// A TraceBuffer records model *state changes* (request issue, fabric
// grant, response delivery, fault injection, reconfiguration drains…)
// stamped in simulated cycles, one track per core / L2 bank / fabric /
// governor.  Because only state changes are recorded — never wall-clock
// or iteration-count artefacts — the event stream is bit-identical
// between the dense-tick and event-driven schedulers (the differential
// test in tests/test_obs.cpp pins this).
//
// Two operating modes share the one type:
//   capacity == 0   unbounded buffer, exported as a full trace file;
//   capacity  > 0   drop-oldest ring — the watchdog "flight recorder"
//                   that attaches the last N events to a parked-state
//                   dump without ever growing.
//
// Recording is allocation-free on the hot path: event names and arg
// keys must be string literals (static lifetime), and every emission
// site is guarded by a null-sink pointer check so a run without
// observability pays a single untaken branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace mot3d::obs {

/// One recorded event.  `phase` follows the Chrome trace-event format:
/// 'X' = complete (ts + dur), 'i' = instant.  Up to two integer args.
struct TraceEvent {
  const char* name = "";
  std::uint32_t track = 0;
  Cycle ts = 0;
  Cycle dur = 0;
  char phase = 'i';
  const char* key1 = nullptr;  ///< string literal or nullptr
  std::uint64_t val1 = 0;
  const char* key2 = nullptr;  ///< string literal or nullptr
  std::uint64_t val2 = 0;
};

class TraceBuffer {
 public:
  /// capacity == 0: unbounded; capacity > 0: ring of the newest events.
  explicit TraceBuffer(std::size_t capacity = 0);

  /// Registers a named track (Chrome "thread") and returns its id.
  std::uint32_t add_track(std::string name);
  std::size_t track_count() const { return tracks_.size(); }
  const std::string& track_name(std::uint32_t id) const { return tracks_[id]; }

  void instant(const char* name, std::uint32_t track, Cycle ts,
               const char* key1 = nullptr, std::uint64_t val1 = 0,
               const char* key2 = nullptr, std::uint64_t val2 = 0) {
    push(TraceEvent{name, track, ts, 0, 'i', key1, val1, key2, val2});
  }

  void complete(const char* name, std::uint32_t track, Cycle ts, Cycle dur,
                const char* key1 = nullptr, std::uint64_t val1 = 0,
                const char* key2 = nullptr, std::uint64_t val2 = 0) {
    push(TraceEvent{name, track, ts, dur, 'X', key1, val1, key2, val2});
  }

  /// Events currently retained (== recorded() unless the ring dropped).
  std::size_t size() const { return events_.size(); }
  /// Total events ever recorded, including ones the ring dropped.
  std::uint64_t recorded() const { return recorded_; }
  /// i-th retained event, oldest first.
  const TraceEvent& event(std::size_t i) const;

  /// Appends this buffer's events to an open Chrome "traceEvents" array.
  /// `first` tracks whether a comma is needed and is updated in place.
  void append_json_events(std::ostream& os, std::uint32_t pid,
                          bool& first) const;

  /// Human-readable tail ("flight recorder") for watchdog dumps.
  std::string flight_dump(std::size_t max_events) const;

 private:
  void push(const TraceEvent& e);

  std::size_t capacity_;  ///< 0 = unbounded
  std::size_t head_ = 0;  ///< ring mode: index of the oldest event
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
};

/// Writes a complete Chrome-trace JSON document: one "process" per run
/// (pid = run index, labelled with the run name), one "thread" per
/// track.  Open the file in https://ui.perfetto.dev or chrome://tracing.
void write_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const TraceBuffer*>>& runs);

}  // namespace mot3d::obs
