#include "obs/trace.hpp"

#include <sstream>

namespace mot3d::obs {

namespace {

// Track and event names are first-party string literals, but escape the
// JSON-special characters anyway so a future name cannot corrupt a file.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (c == '\n') os << "\\n";
    else os << c;
  }
}

void write_event_json(std::ostream& os, const TraceEvent& e,
                      std::uint32_t pid) {
  os << "{\"name\":\"";
  write_escaped(os, e.name);
  os << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts;
  if (e.phase == 'X') os << ",\"dur\":" << e.dur;
  os << ",\"pid\":" << pid << ",\"tid\":" << e.track;
  if (e.phase == 'i') os << ",\"s\":\"t\"";
  if (e.key1 != nullptr || e.key2 != nullptr) {
    os << ",\"args\":{";
    bool first = true;
    if (e.key1 != nullptr) {
      os << '"';
      write_escaped(os, e.key1);
      os << "\":" << e.val1;
      first = false;
    }
    if (e.key2 != nullptr) {
      if (!first) os << ',';
      os << '"';
      write_escaped(os, e.key2);
      os << "\":" << e.val2;
    }
    os << '}';
  }
  os << '}';
}

void write_metadata(std::ostream& os, const char* kind, std::uint32_t pid,
                    std::uint32_t tid, bool with_tid, const std::string& name,
                    bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (with_tid) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"";
  write_escaped(os, name);
  os << "\"}}";
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) events_.reserve(capacity_);
}

std::uint32_t TraceBuffer::add_track(std::string name) {
  tracks_.push_back(std::move(name));
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceBuffer::push(const TraceEvent& e) {
  ++recorded_;
  if (capacity_ == 0 || events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  events_[head_] = e;  // drop-oldest ring
  head_ = (head_ + 1) % capacity_;
}

const TraceEvent& TraceBuffer::event(std::size_t i) const {
  if (capacity_ == 0 || events_.size() < capacity_) return events_[i];
  return events_[(head_ + i) % capacity_];
}

void TraceBuffer::append_json_events(std::ostream& os, std::uint32_t pid,
                                     bool& first) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (!first) os << ",\n";
    first = false;
    write_event_json(os, event(i), pid);
  }
}

std::string TraceBuffer::flight_dump(std::size_t max_events) const {
  const std::size_t n = size() < max_events ? size() : max_events;
  std::ostringstream os;
  os << "-- flight recorder (last " << n << " of " << recorded_
     << " events) --\n";
  for (std::size_t i = size() - n; i < size(); ++i) {
    const TraceEvent& e = event(i);
    os << "  cycle " << e.ts;
    if (e.phase == 'X') os << "+" << e.dur;
    os << " [" << (e.track < tracks_.size() ? tracks_[e.track] : "?") << "] "
       << e.name;
    if (e.key1 != nullptr) os << ' ' << e.key1 << '=' << e.val1;
    if (e.key2 != nullptr) os << ' ' << e.key2 << '=' << e.val2;
    os << '\n';
  }
  return os.str();
}

void write_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const TraceBuffer*>>& runs) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t pid = 0; pid < runs.size(); ++pid) {
    const auto& [name, buf] = runs[pid];
    const std::uint32_t p = static_cast<std::uint32_t>(pid);
    write_metadata(os, "process_name", p, 0, false, name, first);
    for (std::uint32_t t = 0; t < buf->track_count(); ++t) {
      write_metadata(os, "thread_name", p, t, true, buf->track_name(t), first);
    }
    buf->append_json_events(os, p, first);
  }
  os << "\n]}\n";
}

}  // namespace mot3d::obs
