// Host-side phase attribution for bench_scale reports.
//
// Timing every tick with steady_clock would dominate the hot path, so
// the timer stamps one tick in 64 and extrapolates: good enough to say
// *where* simulator wall-time goes (fabric vs L2 vs coherence vs
// workload), useless for sub-percent accounting — which is all the
// perf-trajectory baselines need.  Clock reads never influence model
// state, so modeled metrics are unchanged whether timing is on or off.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/obs_config.hpp"

namespace mot3d::obs {

class PhaseTimer {
 public:
  enum Phase : std::size_t {
    kWorkload = 0,
    kCoherence,
    kFabric,
    kL2,
    kDram,
    kPhaseCount,
  };

  using clock = std::chrono::steady_clock;
  static constexpr std::uint64_t kSampleMask = 63;  ///< time 1 tick in 64

  /// Call once per tick; true when this tick should be timed.
  bool should_sample() { return (ticks_++ & kSampleMask) == 0; }

  void add(Phase p, clock::time_point begin, clock::time_point end) {
    ns_[p] += std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                  .count();
  }

  /// Extrapolated totals (sampled nanoseconds x 64).
  PhaseSeconds totals() const {
    PhaseSeconds t;
    t.valid = true;
    const double scale = static_cast<double>(kSampleMask + 1) * 1e-9;
    t.workload = static_cast<double>(ns_[kWorkload]) * scale;
    t.coherence = static_cast<double>(ns_[kCoherence]) * scale;
    t.fabric = static_cast<double>(ns_[kFabric]) * scale;
    t.l2 = static_cast<double>(ns_[kL2]) * scale;
    t.dram = static_cast<double>(ns_[kDram]) * scale;
    return t;
  }

 private:
  std::uint64_t ticks_ = 0;
  std::array<std::int64_t, kPhaseCount> ns_{};
};

}  // namespace mot3d::obs
