// Exact-bucket latency histograms with true percentiles.
//
// The simulator's latencies are small integers (cycles), so instead of
// log-spaced buckets with conservative upper-bound quantiles
// (common/stats.hpp Histogram), observability keeps one exact count per
// latency value up to kMaxExact and computes p50/p95/p99 by rank walk —
// the reported percentile is a latency that actually occurred.  Values
// above kMaxExact land in a single overflow bucket that remembers its
// maximum (a percentile that falls there reports that maximum).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mot3d::obs {

/// Summary of one latency population (SimResult / scenario JSON).
struct LatencyDigest {
  std::uint64_t count = 0;
  Cycle min = 0;
  Cycle max = 0;
  Cycle p50 = 0;
  Cycle p95 = 0;
  Cycle p99 = 0;

  bool empty() const { return count == 0; }
  bool operator==(const LatencyDigest&) const = default;
};

class LatencyHistogram {
 public:
  /// Largest latency tracked exactly; larger samples share one bucket.
  static constexpr Cycle kMaxExact = 1u << 20;

  void record(Cycle v) {
    ++count_;
    if (v >= kMaxExact) {
      ++overflow_count_;
      if (v > overflow_max_) overflow_max_ = v;
      return;
    }
    if (v >= counts_.size()) counts_.resize(static_cast<std::size_t>(v) + 1, 0);
    ++counts_[static_cast<std::size_t>(v)];
  }

  std::uint64_t count() const { return count_; }

  /// Exact percentiles (or the overflow maximum when the rank falls in
  /// the overflow bucket); all zero when no sample was recorded.
  LatencyDigest digest() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t overflow_count_ = 0;
  Cycle overflow_max_ = 0;
};

}  // namespace mot3d::obs
