// Observability configuration and per-run summary types.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "obs/latency.hpp"

namespace mot3d::obs {

/// ClusterConfig::obs — everything defaults to off; a run without
/// observability records nothing and pays only null-pointer checks.
struct ObsConfig {
  /// Record a full event trace (exported as Chrome-trace JSON).
  bool trace = false;
  /// Sample the interval metrics registry every epoch.
  bool metrics = false;
  Cycle metrics_epoch_cycles = 10'000;
  /// Keep a bounded ring of recent events for watchdog dumps even when
  /// no full trace is requested.  Fault-injection runs (which always
  /// carry a watchdog) engage the ring automatically.
  bool flight_recorder = false;
  std::size_t flight_recorder_events = 128;
  /// Attribute host wall-time to simulator phases (bench_scale --json).
  bool phase_timing = false;

  /// True when any latency histogram / trace / metrics machinery runs.
  bool enabled() const { return trace || metrics; }
};

/// Latency digests surfaced as obs_* fields in scenario JSON.
struct ObsSummary {
  bool enabled = false;
  LatencyDigest l2_rt;         ///< L2 request round-trip (issue -> response)
  LatencyDigest inv_rt;        ///< invalidation round-trip (send -> ack)
  LatencyDigest dram_service;  ///< DRAM enqueue -> completion
  /// Per-physical-vault service digests (stacked-DRAM runs only; empty for
  /// the constant-latency backend, so legacy reporting is unchanged).
  std::vector<LatencyDigest> dram_vault_service;
};

/// Host wall-seconds attributed to simulator phases (extrapolated from
/// a 1-in-64 tick sample; see PhaseTimer).
struct PhaseSeconds {
  bool valid = false;
  double workload = 0.0;   ///< core ticks (trace replay, L1)
  double coherence = 0.0;  ///< coherence ack injection
  double fabric = 0.0;     ///< demand injection + interconnect tick/drain
  double l2 = 0.0;         ///< L2 bank pipelines + directory
  double dram = 0.0;       ///< DRAM backend
};

}  // namespace mot3d::obs
