// Interval metrics registry: hierarchical named counters sampled on
// deterministic epoch boundaries.
//
// Components register read-only probes ("l2.misses", "fabric.grants",
// "energy.core_pj"…) at construction time; the cluster samples every
// probe when the simulated clock crosses an epoch boundary.  The
// boundary is folded into the cluster's next_event computation — the
// same pattern as thermal sampling — so the event-driven scheduler
// lands on exactly the cycles the dense scheduler walks through, and
// the exported time series is bit-identical between the two (pinned by
// tests/test_obs.cpp).
//
// A probe may be paired with an `empty` predicate: statistics with no
// samples yet (RunningStat and friends return 0.0 for min()/max() when
// empty, indistinguishable from a real zero) are recorded as NaN and
// serialised as explicit JSON null / an empty CSV cell.
#pragma once

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mot3d::obs {

class MetricsRegistry {
 public:
  explicit MetricsRegistry(Cycle epoch_cycles) : epoch_(epoch_cycles) {}

  Cycle epoch_cycles() const { return epoch_; }

  /// Hook run once per sample before any probe is read (e.g. refresh a
  /// scratch EnergyLedger that several probes then read).
  void add_prepare(std::function<void()> hook) {
    prepare_.push_back(std::move(hook));
  }

  /// Registers counter `name` (dotted hierarchy, e.g. "l2.misses").
  /// When `empty` is provided and true at sample time, the sample is
  /// recorded as null instead of the probe value.
  void add(std::string name, std::function<double()> probe,
           std::function<bool()> empty = nullptr);

  /// Records one row at simulated cycle `now`.
  void sample(Cycle now);

  std::size_t counter_count() const { return counters_.size(); }
  const std::string& counter_name(std::size_t i) const {
    return counters_[i].name;
  }
  std::size_t sample_count() const { return cycles_.size(); }
  Cycle sample_cycle(std::size_t s) const { return cycles_[s]; }
  /// NaN encodes an explicit null sample.
  double value(std::size_t counter, std::size_t s) const {
    return counters_[counter].series[s];
  }
  Cycle last_sample_cycle() const {
    return cycles_.empty() ? kNeverCycle : cycles_.back();
  }

  /// One run object: {"cycles":[...],"counters":{"name":[...],...}}.
  void write_json(std::ostream& os) const;
  /// Long-format CSV rows "run,cycle,counter,value" (header is the
  /// caller's; null samples leave the value cell empty).
  void write_csv_rows(std::ostream& os, const std::string& run) const;

 private:
  struct Counter {
    std::string name;
    std::function<double()> probe;
    std::function<bool()> empty;  ///< may be null: never empty
    std::vector<double> series;
  };

  Cycle epoch_;
  std::vector<Cycle> cycles_;
  std::vector<std::function<void()>> prepare_;
  std::vector<Counter> counters_;
};

}  // namespace mot3d::obs
