#include "obs/latency.hpp"

namespace mot3d::obs {

LatencyDigest LatencyHistogram::digest() const {
  LatencyDigest d;
  d.count = count_;
  if (count_ == 0) return d;

  // Percentile q: the smallest recorded value whose cumulative count
  // reaches ceil(q * count) — a value that actually occurred.
  const std::uint64_t rank50 = (count_ * 50 + 99) / 100;
  const std::uint64_t rank95 = (count_ * 95 + 99) / 100;
  const std::uint64_t rank99 = (count_ * 99 + 99) / 100;

  bool have_min = false;
  std::uint64_t cum = 0;
  Cycle last_seen = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] == 0) continue;
    if (!have_min) {
      d.min = static_cast<Cycle>(v);
      have_min = true;
    }
    last_seen = static_cast<Cycle>(v);
    const std::uint64_t prev = cum;
    cum += counts_[v];
    if (prev < rank50 && rank50 <= cum) d.p50 = last_seen;
    if (prev < rank95 && rank95 <= cum) d.p95 = last_seen;
    if (prev < rank99 && rank99 <= cum) d.p99 = last_seen;
  }
  if (overflow_count_ > 0) {
    if (!have_min) d.min = overflow_max_;
    last_seen = overflow_max_;
    if (cum < rank50) d.p50 = overflow_max_;
    if (cum < rank95) d.p95 = overflow_max_;
    if (cum < rank99) d.p99 = overflow_max_;
  }
  d.max = last_seen;
  return d;
}

}  // namespace mot3d::obs
