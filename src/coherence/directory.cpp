#include "coherence/directory.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace mot3d::coherence {

namespace {

/// Deterministic 64-bit mix (splitmix64 finaliser) — the probe sequence is
/// a pure function of the line address, so table layout never depends on
/// insertion history beyond occupancy.
std::uint64_t mix_addr(Addr a) {
  std::uint64_t z = static_cast<std::uint64_t>(a) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::size_t kInitialSlots = 16;

}  // namespace

CoherenceDirectory::CoherenceDirectory(const CoherenceConfig& cfg) : cfg_(cfg) {
  if (!is_pow2(cfg.total_banks) || !is_pow2(cfg.line_bytes)) {
    throw std::invalid_argument("directory geometry must be power of two");
  }
  if (cfg.total_cores == 0) {
    throw std::invalid_argument("directory needs at least one core");
  }
  line_shift_ = log2_exact(cfg.line_bytes);
  words_ = (cfg.total_cores + 63) / 64;
  slices_.resize(cfg.total_banks);
}

// ---- slice table plumbing ---------------------------------------------------

std::size_t CoherenceDirectory::find(const Slice& s, Addr line) const {
  if (s.mask == 0) return kNpos;
  std::size_t i = mix_addr(line) & s.mask;
  while (s.slot[i] != kEmpty) {
    if (s.slot[i] == kOccupied && s.line[i] == line) return i;
    i = (i + 1) & s.mask;
  }
  return kNpos;
}

void CoherenceDirectory::grow(Slice& s) {
  const std::size_t new_cap = s.mask == 0 ? kInitialSlots : (s.mask + 1) * 2;
  Slice next;
  next.line.resize(new_cap);
  next.slot.assign(new_cap, kEmpty);
  next.owned.resize(new_cap);
  next.owner.resize(new_cap);
  next.sharers.assign(new_cap * words_, 0);
  next.mask = new_cap - 1;
  for (std::size_t i = 0; i <= s.mask && s.mask != 0; ++i) {
    if (s.slot[i] != kOccupied) continue;
    std::size_t j = mix_addr(s.line[i]) & next.mask;
    while (next.slot[j] != kEmpty) j = (j + 1) & next.mask;
    next.slot[j] = kOccupied;
    next.line[j] = s.line[i];
    next.owned[j] = s.owned[i];
    next.owner[j] = s.owner[i];
    std::memcpy(next.sharers.data() + j * words_, s.sharers.data() + i * words_,
                words_ * sizeof(std::uint64_t));
    ++next.size;
  }
  next.used = next.size;
  s = std::move(next);
}

std::size_t CoherenceDirectory::find_or_insert(Slice& s, Addr line) {
  // Grow at 3/4 load including tombstones: probes stay short and a
  // delete-heavy slice is compacted instead of crawling over tombstones.
  if (s.mask == 0 || (s.used + 1) * 4 > (s.mask + 1) * 3) grow(s);
  std::size_t i = mix_addr(line) & s.mask;
  std::size_t tomb = kNpos;
  while (s.slot[i] != kEmpty) {
    if (s.slot[i] == kOccupied && s.line[i] == line) return i;
    if (s.slot[i] == kTombstone && tomb == kNpos) tomb = i;
    i = (i + 1) & s.mask;
  }
  if (tomb != kNpos) {
    i = tomb;
  } else {
    ++s.used;
  }
  s.slot[i] = kOccupied;
  s.line[i] = line;
  s.owned[i] = 0;
  s.owner[i] = 0;
  clear_sharers(s, i);
  ++s.size;
  ++entries_;
  return i;
}

void CoherenceDirectory::erase_at(Slice& s, std::size_t idx) {
  s.slot[idx] = kTombstone;
  --s.size;
  --entries_;
}

void CoherenceDirectory::clear_sharers(Slice& s, std::size_t idx) {
  std::uint64_t* w = sharer_at(s, idx);
  for (std::size_t i = 0; i < words_; ++i) w[i] = 0;
}

bool CoherenceDirectory::any_other_sharer(const Slice& s, std::size_t idx,
                                          CoreId self) const {
  const std::uint64_t* w = sharer_at(s, idx);
  const std::size_t sw = self >> 6;
  for (std::size_t i = 0; i < words_; ++i) {
    std::uint64_t word = w[i];
    if (i == sw) word &= ~(std::uint64_t{1} << (self & 63));
    if (word != 0) return true;
  }
  return false;
}

void CoherenceDirectory::collect_other_sharers(const Slice& s, std::size_t idx,
                                               CoreId self,
                                               std::vector<CoreId>& out) const {
  // Word-then-ctz iteration yields ascending core ids — the same order the
  // per-core scan produced, so invalidation timing is unchanged.
  const std::uint64_t* w = sharer_at(s, idx);
  const std::size_t sw = self >> 6;
  for (std::size_t i = 0; i < words_; ++i) {
    std::uint64_t word = w[i];
    if (i == sw) word &= ~(std::uint64_t{1} << (self & 63));
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      out.push_back(static_cast<CoreId>((i << 6) + bit));
      word &= word - 1;
    }
  }
}

// ---- protocol ---------------------------------------------------------------

void CoherenceDirectory::note_occupancy() {
  stats_.dir_peak_entries = std::max<std::uint64_t>(
      stats_.dir_peak_entries, static_cast<std::uint64_t>(occupancy()));
}

DirOutcome CoherenceDirectory::on_request(const MemRequest& req, BankId bank) {
  assert(bank < slices_.size());
  ++stats_.dir_accesses;
  DirOutcome out;
  Slice& slice = slices_[bank];
  const Addr line = req.addr;  // line-aligned by the issuing core

  if (req.kind == ReqKind::kWriteback) {
    // The dirty line moved from the owner's L1 down into the L2: no L1
    // copy remains, so the entry is dropped.  If another core re-acquired
    // the line while the write-back was in flight (the directory already
    // reassigned ownership), the entry is theirs — leave it alone.
    const std::size_t idx = find(slice, line);
    if (idx != kNpos) {
      if (slice.owned[idx] != 0 && slice.owner[idx] == req.core) {
        erase_at(slice, idx);
      } else if (slice.owned[idx] == 0) {
        clear_sharer(slice, idx, req.core);  // imprecise-sharer cleanup
      }
    }
    return out;
  }

  const std::size_t idx = find_or_insert(slice, line);
  switch (req.kind) {
    case ReqKind::kGetS:
      if (slice.owned[idx] != 0) {
        if (slice.owner[idx] != req.core) {
          // Forward-invalidate the (possibly dirty) owner: the fresh data
          // lands in the bank with the ack and the reader is granted
          // Shared — from here on the line builds a sharer set and stores
          // must win upgrades.
          out.invalidate.push_back(slice.owner[idx]);
          ++stats_.sharing_misses;
          ++stats_.invalidations;
          slice.owned[idx] = 0;
          slice.owner[idx] = 0;
          clear_sharers(slice, idx);
          set_sharer(slice, idx, req.core);
          out.install_shared = true;
          note_occupancy();
          return out;
        }
        // Stale self-ownership (silent clean eviction): re-grant Exclusive.
      } else if (any_other_sharer(slice, idx, req.core)) {
        set_sharer(slice, idx, req.core);
        out.install_shared = true;
        ++stats_.sharing_misses;
        note_occupancy();
        return out;  // stays kShared
      }
      // Untracked line or stale self-only bits: Exclusive grant.
      break;

    case ReqKind::kUpgrade:
      if (slice.owned[idx] == 0 && test_sharer(slice, idx, req.core)) {
        collect_other_sharers(slice, idx, req.core, out.invalidate);
        if (!out.invalidate.empty()) ++stats_.sharing_misses;
        out.upgrade_ack = true;
        ++stats_.upgrades;
        break;
      }
      if (slice.owned[idx] != 0 && slice.owner[idx] == req.core) {
        // Stale self-ownership; grant in place.
        out.upgrade_ack = true;
        ++stats_.upgrades;
        break;
      }
      // The requester's copy was invalidated while the upgrade was in
      // flight: the transaction degenerates to a full GetX with data.
      [[fallthrough]];

    case ReqKind::kGetX:
      if (slice.owned[idx] != 0) {
        if (slice.owner[idx] != req.core) {
          out.invalidate.push_back(slice.owner[idx]);
          ++stats_.sharing_misses;
        }
      } else {
        collect_other_sharers(slice, idx, req.core, out.invalidate);
        if (!out.invalidate.empty()) ++stats_.sharing_misses;
      }
      break;

    case ReqKind::kWriteback:
    case ReqKind::kInvAck:
    case ReqKind::kDataForward:
      assert(false && "acks are routed to on_ack, not on_request");
      return out;
  }

  slice.owned[idx] = 1;
  slice.owner[idx] = req.core;
  clear_sharers(slice, idx);
  stats_.invalidations += out.invalidate.size();
  note_occupancy();
  return out;
}

void CoherenceDirectory::on_ack(const MemRequest& ack) {
  ++stats_.dir_accesses;
  if (ack.kind == ReqKind::kDataForward) {
    ++stats_.data_forwards;
  } else {
    assert(ack.kind == ReqKind::kInvAck);
    ++stats_.inv_acks;
  }
}

void CoherenceDirectory::remap(const std::function<BankId(BankId)>& route) {
  std::vector<Slice> next(slices_.size());
  std::uint64_t moved = 0;
  entries_ = 0;  // re-counted by the inserts below; the total is unchanged
  for (BankId b = 0; b < slices_.size(); ++b) {
    const Slice& src = slices_[b];
    if (src.mask == 0) continue;
    for (std::size_t i = 0; i <= src.mask; ++i) {
      if (src.slot[i] != kOccupied) continue;
      const Addr line = src.line[i];
      const BankId dest = route(logical_bank_of(line));
      assert(dest < next.size());
      if (dest != b) ++moved;
      Slice& d = next[dest];
      const std::size_t j = find_or_insert(d, line);
      d.owned[j] = src.owned[i];
      d.owner[j] = src.owner[i];
      std::memcpy(sharer_at(d, j), sharer_at(src, i),
                  words_ * sizeof(std::uint64_t));
    }
  }
  slices_ = std::move(next);
  stats_.dir_migrations += moved;
}

}  // namespace mot3d::coherence
