#include "coherence/directory.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mot3d::coherence {

CoherenceDirectory::CoherenceDirectory(const CoherenceConfig& cfg) : cfg_(cfg) {
  if (!is_pow2(cfg.total_banks) || !is_pow2(cfg.line_bytes)) {
    throw std::invalid_argument("directory geometry must be power of two");
  }
  if (cfg.total_cores > 32) {
    throw std::invalid_argument("sharer bitvector holds at most 32 cores");
  }
  line_shift_ = log2_exact(cfg.line_bytes);
  slices_.resize(cfg.total_banks);
}

void CoherenceDirectory::note_occupancy() {
  stats_.dir_peak_entries = std::max<std::uint64_t>(
      stats_.dir_peak_entries, static_cast<std::uint64_t>(occupancy()));
}

DirOutcome CoherenceDirectory::on_request(const MemRequest& req, BankId bank) {
  assert(bank < slices_.size());
  ++stats_.dir_accesses;
  DirOutcome out;
  Slice& slice = slices_[bank];
  const Addr line = req.addr;  // line-aligned by the issuing core
  const std::uint32_t self = 1u << req.core;

  if (req.kind == ReqKind::kWriteback) {
    // The dirty line moved from the owner's L1 down into the L2: no L1
    // copy remains, so the entry is dropped.  If another core re-acquired
    // the line while the write-back was in flight (the directory already
    // reassigned ownership), the entry is theirs — leave it alone.
    auto it = slice.find(line);
    if (it != slice.end()) {
      DirEntry& e = it->second;
      if (e.owned && e.owner == req.core) {
        slice.erase(it);
      } else if (!e.owned) {
        e.sharers &= ~self;  // imprecise-sharer cleanup
      }
    }
    return out;
  }

  DirEntry& e = slice[line];
  switch (req.kind) {
    case ReqKind::kGetS:
      if (e.owned) {
        if (e.owner != req.core) {
          // Forward-invalidate the (possibly dirty) owner: the fresh data
          // lands in the bank with the ack and the reader is granted
          // Shared — from here on the line builds a sharer set and stores
          // must win upgrades.
          out.invalidate.push_back(e.owner);
          ++stats_.sharing_misses;
          ++stats_.invalidations;
          e.owned = false;
          e.owner = 0;
          e.sharers = self;
          out.install_shared = true;
          note_occupancy();
          return out;
        }
        // Stale self-ownership (silent clean eviction): re-grant Exclusive.
      } else if ((e.sharers & ~self) != 0) {
        e.sharers |= self;
        out.install_shared = true;
        ++stats_.sharing_misses;
        note_occupancy();
        return out;  // stays kShared
      }
      // Untracked line or stale self-only bits: Exclusive grant.
      break;

    case ReqKind::kUpgrade:
      if (!e.owned && (e.sharers & self) != 0) {
        for (CoreId c = 0; c < cfg_.total_cores; ++c) {
          if (c != req.core && (e.sharers & (1u << c)) != 0) {
            out.invalidate.push_back(c);
          }
        }
        if (!out.invalidate.empty()) ++stats_.sharing_misses;
        out.upgrade_ack = true;
        ++stats_.upgrades;
        break;
      }
      if (e.owned && e.owner == req.core) {
        // Stale self-ownership; grant in place.
        out.upgrade_ack = true;
        ++stats_.upgrades;
        break;
      }
      // The requester's copy was invalidated while the upgrade was in
      // flight: the transaction degenerates to a full GetX with data.
      [[fallthrough]];

    case ReqKind::kGetX:
      if (e.owned) {
        if (e.owner != req.core) {
          out.invalidate.push_back(e.owner);
          ++stats_.sharing_misses;
        }
      } else {
        for (CoreId c = 0; c < cfg_.total_cores; ++c) {
          if (c != req.core && (e.sharers & (1u << c)) != 0) {
            out.invalidate.push_back(c);
          }
        }
        if (!out.invalidate.empty()) ++stats_.sharing_misses;
      }
      break;

    case ReqKind::kWriteback:
    case ReqKind::kInvAck:
    case ReqKind::kDataForward:
      assert(false && "acks are routed to on_ack, not on_request");
      return out;
  }

  e.owned = true;
  e.owner = req.core;
  e.sharers = 0;
  stats_.invalidations += out.invalidate.size();
  note_occupancy();
  return out;
}

void CoherenceDirectory::on_ack(const MemRequest& ack) {
  ++stats_.dir_accesses;
  if (ack.kind == ReqKind::kDataForward) {
    ++stats_.data_forwards;
  } else {
    assert(ack.kind == ReqKind::kInvAck);
    ++stats_.inv_acks;
  }
}

void CoherenceDirectory::remap(const std::function<BankId(BankId)>& route) {
  std::vector<Slice> next(slices_.size());
  std::uint64_t moved = 0;
  for (BankId b = 0; b < slices_.size(); ++b) {
    for (auto& [line, entry] : slices_[b]) {
      const BankId dest = route(logical_bank_of(line));
      assert(dest < next.size());
      if (dest != b) ++moved;
      next[dest].emplace(line, entry);
    }
  }
  slices_ = std::move(next);
  stats_.dir_migrations += moved;
}

std::size_t CoherenceDirectory::occupancy() const {
  std::size_t n = 0;
  for (const Slice& s : slices_) n += s.size();
  return n;
}

}  // namespace mot3d::coherence
