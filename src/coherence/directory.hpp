// Directory-based MESI coherence for the stacked L2 (cf. MemPool-3D and
// the 3D-MPSoC cache-support work: directory slices co-located with the
// cache banks on the stacked tiers).
//
// One directory slice per *physical* L2 bank tracks, for every line with
// (potential) L1 copies, either the set of sharers (a bitvector sized to
// the core count) or the single exclusive owner.  The directory is a
// full-map duplicate-tag structure independent of L2 residency: entries
// outlive L2 evictions (non-inclusive hierarchy), so no back-invalidation
// traffic is modelled.  Clean L1 evictions are silent, which leaves
// imprecise (superset) sharer bits — the standard trade-off; spurious
// invalidations are acknowledged without data.
//
// The protocol is MESI with forward-invalidate on remote dirty hits: a
// read that finds the line exclusively owned elsewhere invalidates the
// owner (who forwards dirty data down to the bank) and grants the new
// reader Shared — from then on the line accumulates a sharer set and
// stores must win upgrades.  E and M are indistinguishable to the
// directory (silent E->M stores), so both are one kOwned state; the
// owner's ack tells the bank whether data flowed.
//
// Storage is sized to the core count: sharer bitvectors are arrays of
// 64-bit words ((cores + 63) / 64 of them), so 256- and 1024-core
// clusters track full-map sharer sets.  Each slice is an open-addressing
// hash table over line addresses whose entry fields live in parallel
// arenas (struct-of-arrays: keys, slot states, owner ids, and one flat
// sharer-word arena) — no per-entry heap nodes, so the slice walk of a
// heavy-sharing run stays cache-resident.
//
// Timing and transport live in mem::L2System (bank occupancy, out-queue
// delays) and the fabrics (message traversal); this class is the pure
// protocol state machine, which keeps it unit-testable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/messages.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace mot3d::coherence {

struct CoherenceConfig {
  std::size_t total_cores = 16;
  std::size_t total_banks = 32;
  std::size_t line_bytes = 32;
  /// Energy of one directory slice consult (lookup + state update), pJ —
  /// a narrow tag/bitvector array next to the 64 KB data bank.  Charged to
  /// the L2 component of the EnergyLedger.
  double dir_access_energy_pj = 2.0;
};

/// Run-wide coherence counters (surfaced in the canonical metrics JSON).
struct CoherenceStats {
  std::uint64_t invalidations = 0;   ///< directory -> L1 invalidate messages
  std::uint64_t inv_acks = 0;        ///< clean acknowledgements received
  std::uint64_t data_forwards = 0;   ///< dirty acknowledgements (carry a line)
  std::uint64_t upgrades = 0;        ///< S -> M upgrade transactions granted
  std::uint64_t sharing_misses = 0;  ///< requests that hit remote L1 state
  std::uint64_t dir_accesses = 0;    ///< slice consults (energy accounting)
  std::uint64_t dir_peak_entries = 0;
  std::uint64_t dir_migrations = 0;  ///< entries moved by bank-gating remaps
};

/// What the bank must do for one request, as decided by the directory.
struct DirOutcome {
  /// Cores whose L1 copy must be invalidated before the request completes.
  /// Empty => the request proceeds immediately (no coherence stall).
  /// Always in ascending core-id order.
  std::vector<CoreId> invalidate;
  /// Answer with kUpgradeAck (header-only) instead of a kData refill.
  bool upgrade_ack = false;
  /// kData refills install in Shared state (other sharers remain).
  bool install_shared = false;
};

class CoherenceDirectory {
 public:
  explicit CoherenceDirectory(const CoherenceConfig& cfg);

  /// Protocol step for a demand request (kGetS/kGetX/kUpgrade/kWriteback)
  /// arriving at physical bank `bank`.  Updates directory state eagerly
  /// (sharers are removed when the invalidation is *sent*); the returned
  /// invalidation list only gates the requester's completion timing.
  DirOutcome on_request(const MemRequest& req, BankId bank);

  /// An invalidation acknowledgement (kInvAck/kDataForward) arrived.
  void on_ack(const MemRequest& ack);

  /// Re-slice every entry after a power-state remap: `route` maps a
  /// logical bank id to the physical bank now serving it.  Entries whose
  /// slice changes are migrated (counted); sharer/owner state survives the
  /// reconfiguration, matching L1 contents which are not flushed.
  /// Precondition: no transaction in flight (the reconfiguration drain).
  void remap(const std::function<BankId(BankId)>& route);

  std::size_t occupancy() const { return entries_; }  ///< tracked lines, all slices
  std::size_t slice_entries(BankId b) const { return slices_[b].size; }
  /// 64-bit words per sharer bitvector ((total_cores + 63) / 64).
  std::size_t sharer_words() const { return words_; }

  const CoherenceStats& stats() const { return stats_; }
  const CoherenceConfig& config() const { return cfg_; }

  /// Registers the protocol counters under `prefix` (e.g. "coherence").
  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const {
    m.add(prefix + ".invalidations",
          [this] { return static_cast<double>(stats_.invalidations); });
    m.add(prefix + ".inv_acks",
          [this] { return static_cast<double>(stats_.inv_acks); });
    m.add(prefix + ".data_forwards",
          [this] { return static_cast<double>(stats_.data_forwards); });
    m.add(prefix + ".upgrades",
          [this] { return static_cast<double>(stats_.upgrades); });
    m.add(prefix + ".sharing_misses",
          [this] { return static_cast<double>(stats_.sharing_misses); });
    m.add(prefix + ".dir_occupancy",
          [this] { return static_cast<double>(occupancy()); });
  }

 private:
  /// One slice: an open-addressing (linear-probe, tombstone-delete) table
  /// whose entry fields are parallel arrays over the slot index.  The
  /// sharer bitvectors of all slots live in one flat arena, words_ words
  /// per slot.
  struct Slice {
    std::vector<Addr> line;             ///< key, valid when kOccupied
    std::vector<std::uint8_t> slot;     ///< kEmpty / kOccupied / kTombstone
    std::vector<std::uint8_t> owned;    ///< one exclusive owner (MESI E/M)
    std::vector<CoreId> owner;          ///< valid when owned
    std::vector<std::uint64_t> sharers; ///< words_ per slot, valid when !owned
    std::size_t size = 0;               ///< occupied slots
    std::size_t used = 0;               ///< occupied + tombstone slots
    std::size_t mask = 0;               ///< capacity - 1 (0 = unallocated)
  };
  static constexpr std::uint8_t kEmpty = 0, kOccupied = 1, kTombstone = 2;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t find(const Slice& s, Addr line) const;
  /// Existing slot for `line`, or a fresh zeroed entry (grows the table).
  std::size_t find_or_insert(Slice& s, Addr line);
  void erase_at(Slice& s, std::size_t idx);
  void grow(Slice& s);

  std::uint64_t* sharer_at(Slice& s, std::size_t idx) {
    return s.sharers.data() + idx * words_;
  }
  const std::uint64_t* sharer_at(const Slice& s, std::size_t idx) const {
    return s.sharers.data() + idx * words_;
  }
  void clear_sharers(Slice& s, std::size_t idx);
  bool test_sharer(const Slice& s, std::size_t idx, CoreId c) const {
    return (sharer_at(s, idx)[c >> 6] >> (c & 63)) & 1u;
  }
  void set_sharer(Slice& s, std::size_t idx, CoreId c) {
    sharer_at(s, idx)[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
  void clear_sharer(Slice& s, std::size_t idx, CoreId c) {
    sharer_at(s, idx)[c >> 6] &= ~(std::uint64_t{1} << (c & 63));
  }
  /// Any sharer bit set besides `self`?
  bool any_other_sharer(const Slice& s, std::size_t idx, CoreId self) const;
  /// Append every sharer except `self` to `out`, ascending core id.
  void collect_other_sharers(const Slice& s, std::size_t idx, CoreId self,
                             std::vector<CoreId>& out) const;

  BankId logical_bank_of(Addr line) const {
    return static_cast<BankId>((line >> line_shift_) & (cfg_.total_banks - 1));
  }
  void note_occupancy();

  CoherenceConfig cfg_;
  unsigned line_shift_;
  std::size_t words_;          ///< sharer words per entry
  std::vector<Slice> slices_;  ///< one per physical bank
  std::size_t entries_ = 0;    ///< occupied slots across all slices
  CoherenceStats stats_;
};

}  // namespace mot3d::coherence
