// Directory-based MESI coherence for the stacked L2 (cf. MemPool-3D and
// the 3D-MPSoC cache-support work: directory slices co-located with the
// cache banks on the stacked tiers).
//
// One directory slice per *physical* L2 bank tracks, for every line with
// (potential) L1 copies, either the set of sharers (a bitvector sized to
// the core count) or the single exclusive owner.  The directory is a
// full-map duplicate-tag structure independent of L2 residency: entries
// outlive L2 evictions (non-inclusive hierarchy), so no back-invalidation
// traffic is modelled.  Clean L1 evictions are silent, which leaves
// imprecise (superset) sharer bits — the standard trade-off; spurious
// invalidations are acknowledged without data.
//
// The protocol is MESI with forward-invalidate on remote dirty hits: a
// read that finds the line exclusively owned elsewhere invalidates the
// owner (who forwards dirty data down to the bank) and grants the new
// reader Shared — from then on the line accumulates a sharer set and
// stores must win upgrades.  E and M are indistinguishable to the
// directory (silent E->M stores), so both are one kOwned state; the
// owner's ack tells the bank whether data flowed.
//
// Timing and transport live in mem::L2System (bank occupancy, out-queue
// delays) and the fabrics (message traversal); this class is the pure
// protocol state machine, which keeps it unit-testable.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/messages.hpp"
#include "common/types.hpp"

namespace mot3d::coherence {

struct CoherenceConfig {
  std::size_t total_cores = 16;
  std::size_t total_banks = 32;
  std::size_t line_bytes = 32;
  /// Energy of one directory slice consult (lookup + state update), pJ —
  /// a narrow tag/bitvector array next to the 64 KB data bank.  Charged to
  /// the L2 component of the EnergyLedger.
  double dir_access_energy_pj = 2.0;
};

/// Run-wide coherence counters (surfaced in the canonical metrics JSON).
struct CoherenceStats {
  std::uint64_t invalidations = 0;   ///< directory -> L1 invalidate messages
  std::uint64_t inv_acks = 0;        ///< clean acknowledgements received
  std::uint64_t data_forwards = 0;   ///< dirty acknowledgements (carry a line)
  std::uint64_t upgrades = 0;        ///< S -> M upgrade transactions granted
  std::uint64_t sharing_misses = 0;  ///< requests that hit remote L1 state
  std::uint64_t dir_accesses = 0;    ///< slice consults (energy accounting)
  std::uint64_t dir_peak_entries = 0;
  std::uint64_t dir_migrations = 0;  ///< entries moved by bank-gating remaps
};

/// What the bank must do for one request, as decided by the directory.
struct DirOutcome {
  /// Cores whose L1 copy must be invalidated before the request completes.
  /// Empty => the request proceeds immediately (no coherence stall).
  std::vector<CoreId> invalidate;
  /// Answer with kUpgradeAck (header-only) instead of a kData refill.
  bool upgrade_ack = false;
  /// kData refills install in Shared state (other sharers remain).
  bool install_shared = false;
};

class CoherenceDirectory {
 public:
  explicit CoherenceDirectory(const CoherenceConfig& cfg);

  /// Protocol step for a demand request (kGetS/kGetX/kUpgrade/kWriteback)
  /// arriving at physical bank `bank`.  Updates directory state eagerly
  /// (sharers are removed when the invalidation is *sent*); the returned
  /// invalidation list only gates the requester's completion timing.
  DirOutcome on_request(const MemRequest& req, BankId bank);

  /// An invalidation acknowledgement (kInvAck/kDataForward) arrived.
  void on_ack(const MemRequest& ack);

  /// Re-slice every entry after a power-state remap: `route` maps a
  /// logical bank id to the physical bank now serving it.  Entries whose
  /// slice changes are migrated (counted); sharer/owner state survives the
  /// reconfiguration, matching L1 contents which are not flushed.
  /// Precondition: no transaction in flight (the reconfiguration drain).
  void remap(const std::function<BankId(BankId)>& route);

  std::size_t occupancy() const;             ///< tracked lines, all slices
  std::size_t slice_entries(BankId b) const { return slices_.at(b).size(); }

  const CoherenceStats& stats() const { return stats_; }
  const CoherenceConfig& config() const { return cfg_; }

 private:
  struct DirEntry {
    bool owned = false;         ///< one exclusive owner (MESI E or M)
    CoreId owner = 0;           ///< valid when owned
    std::uint32_t sharers = 0;  ///< bitvector over cores, valid when !owned
  };
  using Slice = std::unordered_map<Addr, DirEntry>;

  BankId logical_bank_of(Addr line) const {
    return static_cast<BankId>((line >> line_shift_) & (cfg_.total_banks - 1));
  }
  void note_occupancy();

  CoherenceConfig cfg_;
  unsigned line_shift_;
  std::vector<Slice> slices_;  ///< one per physical bank
  CoherenceStats stats_;
};

}  // namespace mot3d::coherence
