// Off-cluster DRAM backend: the round-robin Miss bus plus a single DRAM
// controller (Table I: one controller, 2 Gb, 4 KB page).
//
// Three latency presets from the paper:
//   * 200 ns — off-chip 2-D DDR3 SDRAM [18]
//   *  63 ns — on-chip 3-D Wide I/O SDR DRAM, JEDEC JESD229 [17]
//   *  42 ns — on-chip 3-D DRAM after Weis et al. [16]
//
// Requesters (the 32 L2 banks and, for instruction-miss line refills, the
// 16 cores — the paper's "Miss bus handles line refills in a round-robin
// manner") contend for the bus; the controller serialises bursts on one
// channel.  An optional open-page model refines the fixed latency.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "mem/memory_backend.hpp"
#include "obs/metrics.hpp"

namespace mot3d::mem {

/// DRAM latency presets used across the paper's figures.
enum class DramPreset : std::uint8_t {
  kDdr3_200ns,    ///< off-chip 2-D DRAM [18]
  kWideIo_63ns,   ///< JEDEC Wide I/O [17]
  kWeis3d_42ns,   ///< Weis 3-D DRAM [16]
};

double dram_latency_ns(DramPreset preset);
const char* dram_preset_name(DramPreset preset);

/// Miss bus + controller, cycle-driven.
///
/// Requesters enqueue (requester id, address, read/write) and — for reads —
/// receive a completion callback when the line has been fetched.  Writes
/// (dirty write-backs) are posted: they consume bus and channel bandwidth
/// but complete silently.
class DramBackend final : public MemoryBackend {
 public:
  DramBackend(const DramConfig& cfg, std::size_t num_requesters);

  void read(std::uint32_t requester, Addr addr, Cycle now,
            Callback cb) override;
  void write(std::uint32_t requester, Addr addr, Cycle now) override;

  /// Advance one cycle: run bus arbitration, start channel bursts, fire
  /// completions due at `now`.
  void tick(Cycle now) override;

  bool idle() const override;
  Cycle next_event(Cycle now) const override;

  const DramStats& stats() const override { return stats_; }
  const DramConfig& config() const override { return cfg_; }

  void set_service_observer(std::function<void(Cycle)> obs) override {
    service_obs_ = std::move(obs);
  }

  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const override {
    m.add(prefix + ".reads",
          [this] { return static_cast<double>(stats_.reads); });
    m.add(prefix + ".writes",
          [this] { return static_cast<double>(stats_.writes); });
    m.add(prefix + ".page_hits",
          [this] { return static_cast<double>(stats_.page_hits); });
    m.add(prefix + ".page_misses",
          [this] { return static_cast<double>(stats_.page_misses); });
    m.add(prefix + ".total_wait_cycles",
          [this] { return static_cast<double>(stats_.total_wait_cycles); });
    m.add(prefix + ".dynamic_energy_pj",
          [this] { return stats_.dynamic_energy_pj; });
  }

 private:
  struct Txn {
    std::uint32_t requester = 0;
    Addr addr = 0;
    bool is_write = false;
    Cycle enqueued = 0;
    Callback cb;  ///< empty for writes
  };
  struct Completion {
    Cycle due;
    std::uint32_t requester;
    Addr addr;
    Callback cb;
    bool operator>(const Completion& o) const { return due > o.due; }
  };

  /// Latency for one access honouring the page policy.
  Cycle access_latency_cycles(Addr addr);

  DramConfig cfg_;
  std::vector<std::deque<Txn>> queues_;  ///< one per requester (Miss bus RR)
  std::size_t rr_next_ = 0;
  std::size_t pending_count_ = 0;
  Cycle bus_free_at_ = 0;
  Cycle channel_free_at_ = 0;
  Addr open_page_ = kNoOpenPage;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions_;
  std::size_t in_flight_ = 0;
  DramStats stats_;
  std::function<void(Cycle)> service_obs_;  ///< null = observability off
};

}  // namespace mot3d::mem
