// Multi-banked shared L2 cache stacked over the core tier (paper Fig. 1).
//
// 32 SRAM banks of 64 KB on two stacked tiers (Table I), line-interleaved:
// the logical bank index is the low log2(banks) bits of the line address.
// Each bank is an independent Cache (tags store full line identity, so
// lines that alias after power-gating remap coexist) with its own input
// queue, busy/occupancy model and DRAM miss handling through the shared
// round-robin Miss bus.
//
// The L2System is interconnect-agnostic: requests arrive via deliver()
// already carrying the *physical* bank id (the MoT routing switches, or
// their simulated equivalent, perform the logical->physical remap), and
// responses leave through an injection callback that may exert
// back-pressure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "coherence/directory.hpp"
#include "common/messages.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/memory_backend.hpp"
#include "obs/metrics.hpp"

namespace mot3d {
class Interconnect;
}

namespace mot3d::obs {
class TraceBuffer;
}  // namespace mot3d::obs

namespace mot3d::mem {

struct L2Config {
  std::size_t total_banks = 32;       ///< physical banks present on the stack
  std::size_t line_bytes = 32;
  std::size_t bank_capacity_bytes = 64 * 1024;
  std::size_t associativity = 8;
  unsigned access_cycles = 3;         ///< array access incl. bank interface
  unsigned service_cycles = 2;        ///< bank occupancy between accesses
  double read_energy_pj = 40.0;       ///< from the CACTI-lite model
  double write_energy_pj = 44.0;
  double leakage_mw_per_bank = 1.3;
};

struct L2Stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;       ///< dirty evictions pushed to DRAM
  std::uint64_t bank_conflict_cycles = 0;  ///< cycles requests waited on busy banks
  double dynamic_energy_pj = 0.0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_rate() const {
    const auto a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(a);
  }
};

/// The stacked L2: banks + miss path.  Cycle-driven via tick().
class L2System {
 public:
  /// Tries to hand a response to the interconnect; returns false if the
  /// bank's response port is blocked this cycle.
  using ResponseInjector = std::function<bool(const MemResponse&, Cycle)>;

  /// `dram_requester_base`: this system uses DRAM requester ids
  /// [base, base + total_banks) on the shared Miss bus.
  L2System(const L2Config& cfg, MemoryBackend& dram, std::uint32_t dram_requester_base = 0);

  void set_response_injector(ResponseInjector injector) {
    injector_ = std::move(injector);
  }

  /// Hot-path alternative to set_response_injector: responses go straight
  /// to `t->try_inject_response()` with no std::function indirection.  A
  /// registered injector (unit tests, custom back-pressure harnesses)
  /// takes precedence.
  void set_transport(Interconnect* t) { transport_ = t; }

  /// Engage directory-based coherence: each bank consults its co-located
  /// directory slice before serving a request, and requests that hit
  /// remote L1 state stall at the bank head until every invalidation is
  /// acknowledged.  Null (the default) keeps the exact pre-coherence
  /// behaviour, bit for bit.
  void attach_directory(coherence::CoherenceDirectory* dir) { dir_ = dir; }
  coherence::CoherenceDirectory* directory() const { return dir_; }

  /// Interconnect delivers a request whose `bank` is the physical bank.
  void deliver(const MemRequest& req, Cycle now);

  /// Advance one cycle: start bank accesses, retire completed ones, push
  /// ready responses into the interconnect.
  void tick(Cycle now);

  /// All queues empty and no access or miss in flight.
  bool idle() const;

  /// Next-event contract (see DESIGN.md): earliest cycle >= `now` at which
  /// tick() could start a bank access or release a response.  Misses in
  /// flight carry no event of their own — the DRAM completion that ends
  /// them is the DRAM backend's event.
  Cycle next_event(Cycle now) const;

  /// Which banks are powered (affects leakage accounting and asserts that
  /// no request reaches a gated bank).  Does not move data — use flush().
  /// Throws std::invalid_argument if `active` would leave every bank off —
  /// a request the fault-degradation path can generate and must surface as
  /// a clear error rather than a downstream assert.
  void set_active_banks(const std::vector<bool>& active);
  const std::vector<bool>& active_banks() const { return active_; }
  std::size_t num_active_banks() const;

  /// Drop every line in bank `b`, returning dirty line addresses that the
  /// caller must write back before gating the bank.
  std::vector<Addr> flush_bank(BankId b);

  /// Dirty-line count of a bank (reconfiguration cost estimation).
  std::size_t dirty_lines(BankId b) const;

  /// Valid lines currently resident across all banks — the observable
  /// working-set footprint a power-state policy reasons about.
  std::size_t resident_lines() const;

  const L2Stats& stats() const { return stats_; }
  const L2Config& config() const { return cfg_; }
  const CacheStats& bank_cache_stats(BankId b) const { return banks_.at(b).cache.stats(); }

  /// Observability: bank events ("l2_miss", "inv_send") are stamped on
  /// track `bank_track_base + physical_bank`.  Null = off (one untaken
  /// branch per miss / invalidation batch).
  void set_trace(obs::TraceBuffer* trace, std::uint32_t bank_track_base) {
    trace_ = trace;
    trace_bank_base_ = bank_track_base;
  }

  /// Registers the L2 counters under `prefix` (e.g. "l2").
  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const {
    m.add(prefix + ".hits",
          [this] { return static_cast<double>(stats_.hits); });
    m.add(prefix + ".misses",
          [this] { return static_cast<double>(stats_.misses); });
    m.add(prefix + ".writebacks",
          [this] { return static_cast<double>(stats_.writebacks); });
    m.add(prefix + ".bank_conflict_cycles", [this] {
      return static_cast<double>(stats_.bank_conflict_cycles);
    });
    m.add(prefix + ".dynamic_energy_pj",
          [this] { return stats_.dynamic_energy_pj; });
  }

  /// Parked-state snapshot of one bank for watchdog / deadlock dumps.
  struct BankDebug {
    std::size_t in_queue = 0;
    std::size_t out_queue = 0;
    std::size_t misses_in_flight = 0;
    bool coh_stalled = false;       ///< transaction parked on invalidations
    unsigned coh_acks_remaining = 0;
  };
  BankDebug bank_debug(BankId b) const;

  /// Leakage power of the currently-powered banks, mW.
  double leakage_mw() const {
    return static_cast<double>(num_active_banks()) * cfg_.leakage_mw_per_bank;
  }

 private:
  struct PendingAccess {
    MemRequest req;
    Cycle arrived = 0;
  };
  struct ReadyResponse {
    MemResponse resp;
    Cycle due = 0;  ///< earliest cycle it may leave the bank
  };
  /// A transaction stalled at the bank head waiting for invalidation
  /// acknowledgements (head-of-line blocking: the directory slice
  /// serialises transactions per bank).
  struct CohPending {
    MemRequest req;
    unsigned acks_remaining = 0;
    bool forwarded_dirty = false;  ///< an ack carried the owner's dirty line
    bool upgrade_ack = false;      ///< answer kUpgradeAck instead of data
    bool install_shared = false;   ///< kData grant must install Shared
  };
  struct Bank {
    explicit Bank(const CacheConfig& cc) : cache(cc) {}
    Cache cache;
    RingBuffer<PendingAccess> in_queue;
    RingBuffer<ReadyResponse> out_queue;
    std::optional<CohPending> coh_pending;
    Cycle busy_until = 0;
    std::size_t misses_in_flight = 0;
  };

  void on_refill(BankId bank, const MemRequest& req, Cycle now,
                 bool install_shared);

  /// Queue `req`'s answer on its bank's out-queue, due after the array
  /// access latency.
  void respond(BankId bank_id, const MemRequest& req, Cycle now, RespKind kind,
               bool l2_hit, bool is_write, bool shared);

  /// The array access + response of a request whose coherence actions (if
  /// any) have completed; the legacy non-coherent path calls it with all
  /// flags false and is unchanged.
  void finish_request(BankId bank_id, const MemRequest& req, Cycle now,
                      bool upgrade_ack, bool install_shared,
                      bool forwarded_dirty);

  /// A bank is *live* when tick() or next_event() has anything to look at:
  /// a non-empty out-queue, a runnable (all acks in) coherence stall, or a
  /// queued access with no coherence stall ahead of it.  deliver(), the
  /// final-ack path and respond() raise the bit; tick() clears it once the
  /// bank drains.  tick()/next_event()/idle() walk only the live bits, so
  /// an idle 512-bank stack costs eight words per cycle instead of a full
  /// bank sweep — the other half of the 256-core hot-path cost.
  void mark_live(BankId b) {
    live_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }

  L2Config cfg_;
  MemoryBackend& dram_;
  std::uint32_t dram_base_;
  std::vector<Bank> banks_;
  std::vector<bool> active_;
  std::vector<std::uint64_t> live_;
  std::size_t misses_total_ = 0;   ///< sum of banks' misses_in_flight
  std::size_t coh_stalls_ = 0;     ///< banks with a parked CohPending
  ResponseInjector injector_;
  Interconnect* transport_ = nullptr;
  coherence::CoherenceDirectory* dir_ = nullptr;
  L2Stats stats_;
  obs::TraceBuffer* trace_ = nullptr;  ///< null = observability off
  std::uint32_t trace_bank_base_ = 0;
};

}  // namespace mot3d::mem
