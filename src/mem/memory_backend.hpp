// Common interface for the cluster's off-stack memory side.
//
// Two implementations exist:
//   * mem::DramBackend      — the paper's constant-latency Miss-bus model
//                             with three presets (200/63/42 ns), and
//   * dram3d::StackedDram   — the vault-parallel 3-D stacked-DRAM backend
//                             with per-vault FR-FCFS controllers.
//
// Everything above the memory boundary (L2 system, reconfiguration drain,
// cluster scheduling) talks to this interface only.  The contract mirrors
// every other component: tick(now) performs all work due at `now`,
// next_event(now) names the earliest cycle >= now at which tick() could do
// anything, and idle() is the drain predicate.  Virtual dispatch changes no
// arithmetic, so swapping call sites from DramBackend to MemoryBackend is
// bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace mot3d::mem {

struct DramConfig {
  double access_latency_ns = 200.0;   ///< request-to-data latency
  unsigned channel_burst_cycles = 2;  ///< 32 B line over a DDR3-1600 channel
  unsigned bus_transfer_cycles = 2;   ///< Miss-bus occupancy per transaction
  std::size_t page_bytes = 4096;      ///< Table I page size
  bool open_page_policy = false;      ///< row-hit shortcut (off: fixed)
  double row_hit_fraction_saved = 0.35;
  std::size_t capacity_bytes = 256ull * 1024 * 1024;  ///< 2 Gb
  double energy_per_access_pj = 8000.0;  ///< tracked, excluded from EDP
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t page_hits = 0;
  std::uint64_t page_misses = 0;
  std::uint64_t total_wait_cycles = 0;  ///< queueing before service
  double dynamic_energy_pj = 0.0;
};

/// Abstract memory backend behind the cluster's miss path.
class MemoryBackend {
 public:
  /// Callback: (requester, addr, completion cycle).
  using Callback = std::function<void(std::uint32_t, Addr, Cycle)>;

  virtual ~MemoryBackend() = default;

  /// Enqueue a line read for `requester`; `cb` fires from tick() on the
  /// cycle the data is back at the cluster boundary.
  virtual void read(std::uint32_t requester, Addr addr, Cycle now,
                    Callback cb) = 0;

  /// Post a line write-back (no completion callback).
  virtual void write(std::uint32_t requester, Addr addr, Cycle now) = 0;

  /// Advance to `now`: arbitration, burst starts, completions due at `now`.
  virtual void tick(Cycle now) = 0;

  /// True when no transaction is queued or in flight (used to detect
  /// end-of-run and reconfiguration drain).
  virtual bool idle() const = 0;

  /// Next-event contract (see DESIGN.md): earliest cycle >= `now` at which
  /// tick() could fire a completion, grant a request, or run a refresh.
  virtual Cycle next_event(Cycle now) const = 0;

  virtual const DramStats& stats() const = 0;

  /// Timing knobs the reconfiguration planner needs for flush-cost math
  /// (bus occupancy and channel burst length per written-back line).
  virtual const DramConfig& config() const = 0;

  /// Observability: fires once per read grant with the modeled service
  /// latency (enqueue -> data back at the cluster boundary).  Computed
  /// from model quantities only, so it is identical in both scheduler
  /// modes; null (the default) costs one untaken branch per grant.
  virtual void set_service_observer(std::function<void(Cycle)> obs) = 0;

  /// Registers the backend counters under `prefix` (e.g. "dram").
  virtual void register_metrics(obs::MetricsRegistry& m,
                                const std::string& prefix) const = 0;
};

}  // namespace mot3d::mem
