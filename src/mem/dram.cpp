#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mot3d::mem {

double dram_latency_ns(DramPreset preset) {
  switch (preset) {
    case DramPreset::kDdr3_200ns: return 200.0;
    case DramPreset::kWideIo_63ns: return 63.0;
    case DramPreset::kWeis3d_42ns: return 42.0;
  }
  return 200.0;
}

const char* dram_preset_name(DramPreset preset) {
  switch (preset) {
    case DramPreset::kDdr3_200ns: return "off-chip DDR3 (200ns)";
    case DramPreset::kWideIo_63ns: return "3-D Wide I/O (63ns)";
    case DramPreset::kWeis3d_42ns: return "3-D DRAM Weis (42ns)";
  }
  return "?";
}

DramBackend::DramBackend(const DramConfig& cfg, std::size_t num_requesters)
    : cfg_(cfg), queues_(num_requesters) {
  if (num_requesters == 0) throw std::invalid_argument("need >= 1 requester");
}

void DramBackend::read(std::uint32_t requester, Addr addr, Cycle now, Callback cb) {
  queues_.at(requester).push_back(
      Txn{requester, addr, /*is_write=*/false, now, std::move(cb)});
  ++pending_count_;
}

void DramBackend::write(std::uint32_t requester, Addr addr, Cycle now) {
  queues_.at(requester).push_back(Txn{requester, addr, /*is_write=*/true, now, {}});
  ++pending_count_;
}

Cycle DramBackend::access_latency_cycles(Addr addr) {
  double latency = cfg_.access_latency_ns;  // 1 ns == 1 cycle at 1 GHz
  if (cfg_.open_page_policy) {
    const Addr page = addr / cfg_.page_bytes;
    if (page == open_page_) {
      latency *= (1.0 - cfg_.row_hit_fraction_saved);
      ++stats_.page_hits;
    } else {
      ++stats_.page_misses;
    }
    open_page_ = page;
  }
  return static_cast<Cycle>(std::llround(latency));
}

void DramBackend::tick(Cycle now) {
  // Fire completions due now (or earlier, defensively).
  while (!completions_.empty() && completions_.top().due <= now) {
    Completion c = completions_.top();
    completions_.pop();
    --in_flight_;
    if (c.cb) c.cb(c.requester, c.addr, now);
  }

  // Miss-bus arbitration: one grant per bus-free window, round-robin over
  // requester queues (the paper's round-robin line-refill policy).  A
  // transaction enqueued with a future cycle (the L2 dates miss refills
  // after the tag check) only competes once that cycle has arrived.
  if (bus_free_at_ > now || pending_count_ == 0) return;
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t q = (rr_next_ + i) % n;
    if (queues_[q].empty() || queues_[q].front().enqueued > now) continue;
    Txn txn = std::move(queues_[q].front());
    queues_[q].pop_front();
    --pending_count_;
    rr_next_ = (q + 1) % n;

    stats_.total_wait_cycles += now - txn.enqueued;
    bus_free_at_ = now + cfg_.bus_transfer_cycles;

    // Channel serialisation at the controller.
    const Cycle start = std::max(now + cfg_.bus_transfer_cycles, channel_free_at_);
    channel_free_at_ = start + cfg_.channel_burst_cycles;
    stats_.dynamic_energy_pj += cfg_.energy_per_access_pj;

    if (txn.is_write) {
      ++stats_.writes;
      // Posted: occupies bandwidth only.
    } else {
      ++stats_.reads;
      const Cycle done = start + access_latency_cycles(txn.addr);
      if (service_obs_) service_obs_(done - txn.enqueued);
      completions_.push(Completion{done, txn.requester, txn.addr, std::move(txn.cb)});
      ++in_flight_;
    }
    break;  // one bus grant per cycle window
  }
}

bool DramBackend::idle() const { return pending_count_ == 0 && in_flight_ == 0; }

Cycle DramBackend::next_event(Cycle now) const {
  Cycle next = kNeverCycle;
  if (!completions_.empty()) next = std::max(completions_.top().due, now);
  if (pending_count_ > 0) {
    // Per-requester FIFOs grant strictly from the head; the earliest
    // grant is bounded by the bus and the earliest head arrival.
    for (const auto& q : queues_) {
      if (q.empty()) continue;
      next = std::min(next, std::max({bus_free_at_, q.front().enqueued, now}));
      if (next <= now) break;
    }
  }
  return next;
}

}  // namespace mot3d::mem
