// Set-associative cache with true-LRU replacement and write-back /
// write-allocate policy.  Used for the private L1 I/D caches (Table I:
// 4 KB, 32 B line, 4-way, LRU) and for each stacked L2 SRAM bank (64 KB,
// 32 B line, 8-way).
//
// The cache stores *line identities* (full line address) as tags, so two
// lines that alias into the same bank after power-gating remap coexist and
// compete for ways — exactly the behaviour the paper relies on ("the old
// cache data ... will be removed by the cache replacement policy").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace mot3d::mem {

/// Cache organisation.  `index_shift` selects which line-address bit the
/// set index starts at: 0 for a private L1; log2(total banks) for an L2
/// bank, whose low line bits are the (fixed) bank-interleave bits.
struct CacheConfig {
  std::size_t capacity_bytes = 4 * 1024;
  std::size_t line_bytes = 32;
  std::size_t associativity = 4;
  unsigned index_shift = 0;

  std::size_t num_lines() const { return capacity_bytes / line_bytes; }
  std::size_t num_sets() const { return num_lines() / associativity; }
};

/// Outcome of a lookup-and-touch.
struct LookupResult {
  bool hit = false;
  /// Write hit on a line held in Shared (read-only) state: the line was
  /// touched but NOT dirtied — the caller must win a coherence upgrade
  /// first (complete_upgrade()).  Never set in non-coherent runs, where no
  /// line is ever inserted shared.
  bool needs_upgrade = false;
};

/// Outcome of inserting a line after a refill.
struct InsertResult {
  bool evicted = false;        ///< a valid line was displaced
  bool evicted_dirty = false;  ///< ... and it was dirty (needs write-back)
  Addr evicted_line_addr = 0;  ///< full byte address of the displaced line
};

/// Aggregate counters.
struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(a);
  }
};

/// The cache proper.  Timing is modelled by the caller; this class is the
/// pure content/replacement state machine, which keeps it unit-testable.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Look up `addr`; on hit, touches LRU and (for writes) sets dirty.
  /// Does NOT allocate on miss — the caller fetches the line and calls
  /// insert() when the refill arrives.
  LookupResult lookup(Addr addr, bool is_write);

  /// Non-destructive presence check (no LRU update, no stats).
  bool probe(Addr addr) const;

  /// Install the line containing `addr`, evicting the LRU way if the set
  /// is full.  `dirty` marks the new line dirty immediately (write-allocate
  /// for a store miss, or an L1 write-back landing in the L2).  `shared`
  /// installs the line in Shared (read-only MESI) state: stores report
  /// needs_upgrade until complete_upgrade() promotes it.
  InsertResult insert(Addr addr, bool dirty, bool shared = false);

  /// Coherence upgrade granted: promote the line to Modified (dirty,
  /// exclusive).  No-op if the line was invalidated while the upgrade was
  /// in flight; returns whether the line was present.
  bool complete_upgrade(Addr addr);

  /// MESI Shared bit of the line holding `addr` (false if absent).
  bool line_shared(Addr addr) const;

  /// Remove all lines; returns the full addresses of dirty lines (the
  /// write-back set the reconfiguration manager must push to DRAM before
  /// power-gating this bank).
  std::vector<Addr> flush();

  /// Invalidate a single line if present; returns whether it was dirty.
  std::optional<bool> invalidate(Addr addr);

  /// Number of currently valid lines (for occupancy checks in tests).
  std::size_t valid_lines() const;
  /// Number of currently dirty lines.
  std::size_t dirty_lines() const;

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Way {
    Addr line = 0;       ///< full line-aligned byte address (identity tag)
    bool valid = false;
    bool dirty = false;
    bool shared = false; ///< MESI Shared: read-only until upgraded
    std::uint64_t lru = 0;  ///< larger == more recently used
  };

  Addr line_of(Addr addr) const { return addr & ~static_cast<Addr>(cfg_.line_bytes - 1); }
  std::size_t set_of(Addr line) const;
  Way* find(Addr line);
  const Way* find(Addr line) const;

  CacheConfig cfg_;
  unsigned line_shift_;
  std::vector<Way> ways_;      ///< num_sets * associativity, set-major
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace mot3d::mem
