#include "mem/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace mot3d::mem {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (!is_pow2(cfg.line_bytes) || !is_pow2(cfg.capacity_bytes)) {
    throw std::invalid_argument("cache geometry must be power of two");
  }
  if (cfg.associativity == 0 || cfg.num_lines() % cfg.associativity != 0) {
    throw std::invalid_argument("associativity must divide line count");
  }
  if (!is_pow2(cfg.num_sets())) {
    throw std::invalid_argument("set count must be a power of two");
  }
  line_shift_ = log2_exact(cfg.line_bytes);
  ways_.resize(cfg.num_sets() * cfg.associativity);
}

std::size_t Cache::set_of(Addr line) const {
  const Addr line_id = line >> line_shift_;
  return static_cast<std::size_t>((line_id >> cfg_.index_shift) &
                                  (cfg_.num_sets() - 1));
}

Cache::Way* Cache::find(Addr line) {
  const std::size_t base = set_of(line) * cfg_.associativity;
  for (std::size_t i = 0; i < cfg_.associativity; ++i) {
    Way& w = ways_[base + i];
    if (w.valid && w.line == line) return &w;
  }
  return nullptr;
}

const Cache::Way* Cache::find(Addr line) const {
  return const_cast<Cache*>(this)->find(line);
}

LookupResult Cache::lookup(Addr addr, bool is_write) {
  const Addr line = line_of(addr);
  Way* w = find(line);
  if (w != nullptr) {
    w->lru = ++lru_clock_;
    // A store on a Shared line may not dirty it in place: the caller must
    // obtain an upgrade first.  Non-coherent runs never install shared
    // lines, so this branch is dead there and behaviour is unchanged.
    const bool needs_upgrade = is_write && w->shared;
    if (is_write && !w->shared) w->dirty = true;
    if (is_write) {
      ++stats_.write_hits;
    } else {
      ++stats_.read_hits;
    }
    return {.hit = true, .needs_upgrade = needs_upgrade};
  }
  if (is_write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }
  return {.hit = false};
}

bool Cache::probe(Addr addr) const { return find(line_of(addr)) != nullptr; }

InsertResult Cache::insert(Addr addr, bool dirty, bool shared) {
  const Addr line = line_of(addr);
  InsertResult result;
  if (Way* existing = find(line)) {
    // Refill raced with an earlier install (e.g. two L1s missing on the
    // same L2 line): just refresh.
    existing->lru = ++lru_clock_;
    existing->dirty = existing->dirty || dirty;
    existing->shared = shared && !existing->dirty;
    return result;
  }
  const std::size_t base = set_of(line) * cfg_.associativity;
  Way* victim = nullptr;
  for (std::size_t i = 0; i < cfg_.associativity; ++i) {
    Way& w = ways_[base + i];
    if (!w.valid) {
      victim = &w;
      break;
    }
    if (victim == nullptr || w.lru < victim->lru) victim = &w;
  }
  assert(victim != nullptr);
  if (victim->valid) {
    result.evicted = true;
    result.evicted_dirty = victim->dirty;
    result.evicted_line_addr = victim->line;
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->line = line;
  victim->valid = true;
  victim->dirty = dirty;
  victim->shared = shared && !dirty;  // Shared is read-only by invariant
  victim->lru = ++lru_clock_;
  return result;
}

bool Cache::complete_upgrade(Addr addr) {
  Way* w = find(line_of(addr));
  if (w == nullptr) return false;
  w->shared = false;
  w->dirty = true;
  return true;
}

bool Cache::line_shared(Addr addr) const {
  const Way* w = find(line_of(addr));
  return w != nullptr && w->shared;
}

std::vector<Addr> Cache::flush() {
  std::vector<Addr> dirty;
  for (Way& w : ways_) {
    if (w.valid && w.dirty) dirty.push_back(w.line);
    w.valid = false;
    w.dirty = false;
    w.shared = false;
  }
  return dirty;
}

std::optional<bool> Cache::invalidate(Addr addr) {
  Way* w = find(line_of(addr));
  if (w == nullptr) return std::nullopt;
  const bool was_dirty = w->dirty;
  w->valid = false;
  w->dirty = false;
  w->shared = false;
  return was_dirty;
}

std::size_t Cache::valid_lines() const {
  std::size_t n = 0;
  for (const Way& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

std::size_t Cache::dirty_lines() const {
  std::size_t n = 0;
  for (const Way& w : ways_) n += (w.valid && w.dirty) ? 1 : 0;
  return n;
}

}  // namespace mot3d::mem
