#include "mem/l2_system.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "common/interconnect.hpp"
#include "obs/trace.hpp"

namespace mot3d::mem {

L2System::L2System(const L2Config& cfg, MemoryBackend& dram, std::uint32_t dram_requester_base)
    : cfg_(cfg), dram_(dram), dram_base_(dram_requester_base) {
  if (!is_pow2(cfg.total_banks)) {
    throw std::invalid_argument("bank count must be a power of two");
  }
  const CacheConfig cc{
      .capacity_bytes = cfg.bank_capacity_bytes,
      .line_bytes = cfg.line_bytes,
      .associativity = cfg.associativity,
      // Skip the bank-interleave bits when indexing sets inside a bank.
      .index_shift = log2_exact(cfg.total_banks),
  };
  banks_.reserve(cfg.total_banks);
  for (std::size_t i = 0; i < cfg.total_banks; ++i) banks_.emplace_back(cc);
  active_.assign(cfg.total_banks, true);
  live_.assign((cfg.total_banks + 63) / 64, 0);
}

void L2System::deliver(const MemRequest& req, Cycle now) {
  assert(req.bank < banks_.size());
  assert(active_[req.bank] && "request routed to a power-gated bank");
  // Invalidation acknowledgements are directory control traffic: they are
  // consumed on arrival (the directory slice sits next to the bank) and
  // never occupy the SRAM array, so they cannot deadlock behind the very
  // transaction that is waiting for them.
  if (dir_ != nullptr &&
      (req.kind == ReqKind::kInvAck || req.kind == ReqKind::kDataForward)) {
    dir_->on_ack(req);
    stats_.dynamic_energy_pj += dir_->config().dir_access_energy_pj;
    Bank& bank = banks_[req.bank];
    assert(bank.coh_pending.has_value() && bank.coh_pending->acks_remaining > 0 &&
           "ack without a stalled transaction");
    --bank.coh_pending->acks_remaining;
    if (req.kind == ReqKind::kDataForward) bank.coh_pending->forwarded_dirty = true;
    if (bank.coh_pending->acks_remaining == 0) mark_live(req.bank);
    (void)now;
    return;
  }
  banks_[req.bank].in_queue.push_back(PendingAccess{req, now});
  mark_live(req.bank);
}

void L2System::on_refill(BankId bank_id, const MemRequest& req, Cycle now,
                         bool install_shared) {
  Bank& bank = banks_[bank_id];
  --bank.misses_in_flight;
  --misses_total_;
  const InsertResult ins = bank.cache.insert(req.addr, /*dirty=*/req.is_write);
  stats_.dynamic_energy_pj += cfg_.write_energy_pj;  // fill write
  if (ins.evicted_dirty) {
    ++stats_.writebacks;
    stats_.dynamic_energy_pj += cfg_.read_energy_pj;  // victim read-out
    dram_.write(dram_base_ + bank_id, ins.evicted_line_addr, now);
  }
  respond(bank_id, req, now, RespKind::kData, /*l2_hit=*/false, req.is_write,
          install_shared);
}

void L2System::respond(BankId bank_id, const MemRequest& req, Cycle now,
                       RespKind kind, bool l2_hit, bool is_write, bool shared) {
  banks_[bank_id].out_queue.push_back(
      ReadyResponse{MemResponse{.id = req.id,
                                .core = req.core,
                                .bank = bank_id,
                                .addr = req.addr,
                                .is_write = is_write,
                                .l2_hit = l2_hit,
                                .issue_cycle = req.issue_cycle,
                                .kind = kind,
                                .shared = shared},
                    now + cfg_.access_cycles});
  mark_live(bank_id);
}

void L2System::finish_request(BankId bank_id, const MemRequest& req, Cycle now,
                              bool upgrade_ack, bool install_shared,
                              bool forwarded_dirty) {
  Bank& bank = banks_[bank_id];
  if (upgrade_ack) {
    // Permission grant: the directory/tag probe was the whole access; the
    // response is header-only (is_write => no line payload on the fabric).
    respond(bank_id, req, now, RespKind::kUpgradeAck, /*l2_hit=*/true,
            /*is_write=*/true, /*shared=*/false);
    return;
  }
  // The owner's forwarded line *is* the data: when the (non-inclusive)
  // bank has evicted its copy, the forward installs it like a refill —
  // no Miss-bus round trip, and no demand lookup charged to the bank's
  // CacheStats (so the per-bank hit-rate spread keeps counting only
  // demand accesses, consistent with the run's l2_hits/l2_misses).
  if (forwarded_dirty && !bank.cache.probe(req.addr)) {
    ++stats_.hits;
    const InsertResult ins = bank.cache.insert(req.addr, /*dirty=*/true);
    stats_.dynamic_energy_pj += cfg_.write_energy_pj;  // fill write
    if (ins.evicted_dirty) {
      ++stats_.writebacks;
      stats_.dynamic_energy_pj += cfg_.read_energy_pj;  // victim read-out
      dram_.write(dram_base_ + bank_id, ins.evicted_line_addr, now);
    }
    respond(bank_id, req, now, RespKind::kData, /*l2_hit=*/true, req.is_write,
            install_shared);
    return;
  }
  // A forwarded dirty line landing on a resident copy turns the access
  // into a write (the data is deposited as part of the same array pass).
  const bool array_write = req.is_write || forwarded_dirty;
  const LookupResult lr = bank.cache.lookup(req.addr, array_write);
  stats_.dynamic_energy_pj +=
      array_write ? cfg_.write_energy_pj : cfg_.read_energy_pj;
  if (lr.hit) {
    ++stats_.hits;
    respond(bank_id, req, now, RespKind::kData, /*l2_hit=*/true, req.is_write,
            install_shared);
  } else {
    ++stats_.misses;
    ++bank.misses_in_flight;
    ++misses_total_;
    if (trace_ != nullptr) {
      trace_->instant("l2_miss", trace_bank_base_ + bank_id, now, "core",
                      req.core, "addr", req.addr);
    }
    // Tag check took access_cycles; then the line refill goes out on
    // the round-robin Miss bus.
    const MemRequest miss_req = req;
    dram_.read(dram_base_ + bank_id, req.addr, now + cfg_.access_cycles,
               [this, bank_id, miss_req, install_shared](std::uint32_t, Addr,
                                                         Cycle done) {
                 on_refill(bank_id, miss_req, done, install_shared);
               });
  }
}

void L2System::tick(Cycle now) {
  // Only live banks can have work (deliver/ack/respond raise the bit);
  // ascending bank order matches the old dense sweep, so every stat and
  // energy accumulation happens in the same sequence.
  for (std::size_t w = 0; w < live_.size(); ++w) {
    std::uint64_t word = live_[w];
    while (word != 0) {
      const BankId b = static_cast<BankId>(
          (w << 6) + static_cast<unsigned>(std::countr_zero(word)));
      word &= word - 1;
      Bank& bank = banks_[b];

      // Resume a coherence-stalled transaction once every invalidation has
      // been acknowledged (head-of-line: the queue waits behind it).
      if (bank.coh_pending.has_value()) {
        if (bank.coh_pending->acks_remaining == 0 && bank.busy_until <= now) {
          const CohPending p = *bank.coh_pending;
          bank.coh_pending.reset();
          --coh_stalls_;
          bank.busy_until = now + cfg_.service_cycles;
          finish_request(b, p.req, now, p.upgrade_ack, p.install_shared,
                         p.forwarded_dirty);
        }
      } else if (!bank.in_queue.empty() && bank.busy_until <= now) {
        // Start the next access when the bank array is free.
        PendingAccess pa = bank.in_queue.front();
        bank.in_queue.pop_front();
        stats_.bank_conflict_cycles += now - pa.arrived;
        bank.busy_until = now + cfg_.service_cycles;

        if (dir_ != nullptr) {
          const coherence::DirOutcome d = dir_->on_request(pa.req, b);
          stats_.dynamic_energy_pj += dir_->config().dir_access_energy_pj;
          if (!d.invalidate.empty()) {
            // Invalidations ride the response network to the sharers; the
            // transaction parks at the bank head until every ack is back.
            for (CoreId target : d.invalidate) {
              MemResponse inv{
                  .id = pa.req.id,
                  .core = target,
                  .bank = b,
                  .addr = pa.req.addr,
                  .is_write = true,  // header-only message
                  .l2_hit = true,
                  .issue_cycle = now,
                  .kind = RespKind::kInvalidate,
                  .shared = false,
              };
              bank.out_queue.push_back(ReadyResponse{inv, now + cfg_.access_cycles});
            }
            bank.coh_pending =
                CohPending{pa.req, static_cast<unsigned>(d.invalidate.size()),
                           false, d.upgrade_ack, d.install_shared};
            ++coh_stalls_;
            if (trace_ != nullptr) {
              // One instant per parked transaction; the per-sharer
              // invalidations and acks appear on the core tracks.
              trace_->instant("inv_send", trace_bank_base_ + b, now, "core",
                              pa.req.core, "acks", d.invalidate.size());
            }
          } else {
            finish_request(b, pa.req, now, d.upgrade_ack, d.install_shared,
                           false);
          }
        } else {
          finish_request(b, pa.req, now, false, false, false);
        }
      }

      // Push ready responses into the interconnect, preserving order.
      while (!bank.out_queue.empty() && bank.out_queue.front().due <= now) {
        const MemResponse& head = bank.out_queue.front().resp;
        const bool accepted = injector_ ? injector_(head, now)
                              : transport_ != nullptr
                                  ? transport_->try_inject_response(head, now)
                                  : false;
        if (!accepted) break;
        bank.out_queue.pop_front();
      }

      // Drop the bank from the live set once nothing remains observable:
      // a stall awaiting acks wakes up via the final-ack delivery, an
      // in-flight miss via the DRAM refill — both re-raise the bit.
      const bool keep = !bank.out_queue.empty() ||
                        (bank.coh_pending.has_value()
                             ? bank.coh_pending->acks_remaining == 0
                             : !bank.in_queue.empty());
      if (!keep) {
        live_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      }
    }
  }
}

Cycle L2System::next_event(Cycle now) const {
  // Non-live banks contribute no event by construction: they have an empty
  // out-queue and either an ack-blocked stall (woken by delivery, not by
  // time) or an empty in-queue.
  Cycle next = kNeverCycle;
  for (std::size_t w = 0; w < live_.size(); ++w) {
    std::uint64_t word = live_[w];
    while (word != 0) {
      const BankId b = static_cast<BankId>(
          (w << 6) + static_cast<unsigned>(std::countr_zero(word)));
      word &= word - 1;
      const Bank& bank = banks_[b];
      if (bank.coh_pending.has_value()) {
        // A stalled transaction only becomes serviceable when its last ack
        // arrives — an interconnect-delivery event, not an L2 one.  Once the
        // acks are in, resumption is gated by the bank occupancy alone.
        if (bank.coh_pending->acks_remaining == 0) {
          const Cycle start = std::max(bank.busy_until, now);
          if (start <= now) return now;
          next = std::min(next, start);
        }
      } else if (!bank.in_queue.empty()) {
        const Cycle start = std::max(bank.busy_until, now);
        if (start <= now) return now;
        next = std::min(next, start);
      }
      // Responses leave strictly from the front; a due-but-blocked response
      // (interconnect back-pressure) keeps the bank ticking densely.
      if (!bank.out_queue.empty()) {
        const Cycle due = std::max(bank.out_queue.front().due, now);
        if (due <= now) return now;
        next = std::min(next, due);
      }
    }
  }
  return next;
}

bool L2System::idle() const {
  if (misses_total_ > 0 || coh_stalls_ > 0) return false;
  // No misses and no stalls: any queued work keeps its bank's live bit up.
  for (const std::uint64_t w : live_) {
    if (w != 0) return false;
  }
  return true;
}

void L2System::set_active_banks(const std::vector<bool>& active) {
  if (active.size() != banks_.size()) {
    throw std::invalid_argument("active mask size mismatch");
  }
  if (std::none_of(active.begin(), active.end(), [](bool a) { return a; })) {
    throw std::invalid_argument(
        "reconfiguration rejected: gating request would leave zero active "
        "L2 banks");
  }
  active_ = active;
}

std::size_t L2System::num_active_banks() const {
  std::size_t n = 0;
  for (bool a : active_) n += a ? 1 : 0;
  return n;
}

std::vector<Addr> L2System::flush_bank(BankId b) {
  return banks_.at(b).cache.flush();
}

std::size_t L2System::dirty_lines(BankId b) const {
  return banks_.at(b).cache.dirty_lines();
}

std::size_t L2System::resident_lines() const {
  std::size_t n = 0;
  for (const Bank& bank : banks_) n += bank.cache.valid_lines();
  return n;
}

L2System::BankDebug L2System::bank_debug(BankId b) const {
  const Bank& bank = banks_.at(b);
  BankDebug d;
  d.in_queue = bank.in_queue.size();
  d.out_queue = bank.out_queue.size();
  d.misses_in_flight = bank.misses_in_flight;
  d.coh_stalled = bank.coh_pending.has_value();
  d.coh_acks_remaining =
      bank.coh_pending.has_value() ? bank.coh_pending->acks_remaining : 0;
  return d;
}

}  // namespace mot3d::mem
