#include "mem/l2_system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mot3d::mem {

L2System::L2System(const L2Config& cfg, DramBackend& dram, std::uint32_t dram_requester_base)
    : cfg_(cfg), dram_(dram), dram_base_(dram_requester_base) {
  if (!is_pow2(cfg.total_banks)) {
    throw std::invalid_argument("bank count must be a power of two");
  }
  const CacheConfig cc{
      .capacity_bytes = cfg.bank_capacity_bytes,
      .line_bytes = cfg.line_bytes,
      .associativity = cfg.associativity,
      // Skip the bank-interleave bits when indexing sets inside a bank.
      .index_shift = log2_exact(cfg.total_banks),
  };
  banks_.reserve(cfg.total_banks);
  for (std::size_t i = 0; i < cfg.total_banks; ++i) banks_.emplace_back(cc);
  active_.assign(cfg.total_banks, true);
}

void L2System::deliver(const MemRequest& req, Cycle now) {
  assert(req.bank < banks_.size());
  assert(active_[req.bank] && "request routed to a power-gated bank");
  banks_[req.bank].in_queue.push_back(PendingAccess{req, now});
}

void L2System::on_refill(BankId bank_id, const MemRequest& req, Cycle now) {
  Bank& bank = banks_[bank_id];
  --bank.misses_in_flight;
  const InsertResult ins = bank.cache.insert(req.addr, /*dirty=*/req.is_write);
  stats_.dynamic_energy_pj += cfg_.write_energy_pj;  // fill write
  if (ins.evicted_dirty) {
    ++stats_.writebacks;
    stats_.dynamic_energy_pj += cfg_.read_energy_pj;  // victim read-out
    dram_.write(dram_base_ + bank_id, ins.evicted_line_addr, now);
  }
  MemResponse resp{
      .id = req.id,
      .core = req.core,
      .bank = bank_id,
      .addr = req.addr,
      .is_write = req.is_write,
      .l2_hit = false,
      .issue_cycle = req.issue_cycle,
  };
  bank.out_queue.push_back(ReadyResponse{resp, now + cfg_.access_cycles});
}

void L2System::tick(Cycle now) {
  for (BankId b = 0; b < banks_.size(); ++b) {
    Bank& bank = banks_[b];

    // Start the next access when the bank array is free.
    if (!bank.in_queue.empty() && bank.busy_until <= now) {
      PendingAccess pa = bank.in_queue.front();
      bank.in_queue.pop_front();
      stats_.bank_conflict_cycles += now - pa.arrived;
      bank.busy_until = now + cfg_.service_cycles;

      const LookupResult lr = bank.cache.lookup(pa.req.addr, pa.req.is_write);
      stats_.dynamic_energy_pj +=
          pa.req.is_write ? cfg_.write_energy_pj : cfg_.read_energy_pj;
      if (lr.hit) {
        ++stats_.hits;
        MemResponse resp{
            .id = pa.req.id,
            .core = pa.req.core,
            .bank = b,
            .addr = pa.req.addr,
            .is_write = pa.req.is_write,
            .l2_hit = true,
            .issue_cycle = pa.req.issue_cycle,
        };
        bank.out_queue.push_back(ReadyResponse{resp, now + cfg_.access_cycles});
      } else {
        ++stats_.misses;
        ++bank.misses_in_flight;
        // Tag check took access_cycles; then the line refill goes out on
        // the round-robin Miss bus.
        const MemRequest req = pa.req;
        dram_.read(dram_base_ + b, pa.req.addr, now + cfg_.access_cycles,
                   [this, b, req](std::uint32_t, Addr, Cycle done) {
                     on_refill(b, req, done);
                   });
      }
    }

    // Push ready responses into the interconnect, preserving order.
    while (!bank.out_queue.empty() && bank.out_queue.front().due <= now) {
      if (!injector_ || !injector_(bank.out_queue.front().resp, now)) break;
      bank.out_queue.pop_front();
    }
  }
}

Cycle L2System::next_event(Cycle now) const {
  Cycle next = kNeverCycle;
  for (const Bank& bank : banks_) {
    if (!bank.in_queue.empty()) {
      const Cycle start = std::max(bank.busy_until, now);
      if (start <= now) return now;
      next = std::min(next, start);
    }
    // Responses leave strictly from the front; a due-but-blocked response
    // (interconnect back-pressure) keeps the bank ticking densely.
    if (!bank.out_queue.empty()) {
      const Cycle due = std::max(bank.out_queue.front().due, now);
      if (due <= now) return now;
      next = std::min(next, due);
    }
  }
  return next;
}

bool L2System::idle() const {
  for (const Bank& bank : banks_) {
    if (!bank.in_queue.empty() || !bank.out_queue.empty() || bank.misses_in_flight > 0) {
      return false;
    }
  }
  return true;
}

void L2System::set_active_banks(const std::vector<bool>& active) {
  if (active.size() != banks_.size()) {
    throw std::invalid_argument("active mask size mismatch");
  }
  active_ = active;
}

std::size_t L2System::num_active_banks() const {
  std::size_t n = 0;
  for (bool a : active_) n += a ? 1 : 0;
  return n;
}

std::vector<Addr> L2System::flush_bank(BankId b) {
  return banks_.at(b).cache.flush();
}

std::size_t L2System::dirty_lines(BankId b) const {
  return banks_.at(b).cache.dirty_lines();
}

std::size_t L2System::resident_lines() const {
  std::size_t n = 0;
  for (const Bank& bank : banks_) n += bank.cache.valid_lines();
  return n;
}

}  // namespace mot3d::mem
