// CACTI-lite: analytical SRAM bank timing / energy / area model.
//
// The paper estimates "the size of a cache bank and the propagation delay
// from bank I/Os to memory core cells" with CACTI 4.0 [13].  We reimplement
// the role CACTI plays — capacity/organisation in, access time + energy +
// leakage + area out — with compact analytical fits whose constants are
// anchored to published CACTI 45 nm data points (a 64 KB bank lands at
// ~0.94 ns access / ~40 pJ per read / ~1.3 mW leakage).
//
// The fits follow CACTI's structural scaling: decoder + wordline + bitline
// delay grows with the square root of the array's bit count; energy per
// access likewise (bitline swing dominates); leakage is linear in bits.
#pragma once

#include <cstddef>

#include "common/leakage.hpp"

namespace mot3d::cacti {

/// Organisation of one SRAM cache bank.
struct SramBankConfig {
  std::size_t capacity_bytes = 64 * 1024;
  std::size_t line_bytes = 32;
  std::size_t associativity = 8;
  double tech_nm = 45.0;  ///< feature size; fits are anchored at 45 nm
};

/// Derived timing / power / area for one bank.
struct SramBankResult {
  double access_ns = 0.0;      ///< I/O-to-cell-and-back propagation delay
  double cycle_ns = 0.0;       ///< bank busy time between accesses
  double read_energy_pj = 0.0; ///< per read access
  double write_energy_pj = 0.0;///< per write access
  double leakage_mw = 0.0;     ///< static power while powered
  double area_mm2 = 0.0;       ///< silicon footprint
};

/// Evaluate the model.  Associativity adds tag-compare/way-select overhead
/// on both delay and energy (a few percent per doubling, as in CACTI).
SramBankResult evaluate(const SramBankConfig& cfg);

/// Access latency in whole 1 GHz cycles, incl. bank-side interface flops
/// (decode-in + array + data-out pipeline as in the paper's 3-cycle bank).
unsigned access_cycles(const SramBankConfig& cfg, double clock_period_ns);

/// Bank leakage at junction temperature `temp_c`, mW.  `evaluate()` quotes
/// leakage at the reference temperature of `temp`; the thermal subsystem's
/// leakage-feedback loop evaluates this per tile each sampling interval.
double leakage_mw_at(const SramBankConfig& cfg, double temp_c,
                     const LeakageTempParams& temp = {});

}  // namespace mot3d::cacti
