#include "cacti/sram_model.hpp"

#include <cmath>

namespace mot3d::cacti {

namespace {
// Anchored at 45 nm; other nodes scale delay ~linearly and energy
// ~quadratically with feature size (constant-field scaling).
constexpr double kBaseNm = 45.0;

double tech_delay_scale(double nm) { return nm / kBaseNm; }
double tech_energy_scale(double nm) { return (nm / kBaseNm) * (nm / kBaseNm); }

double assoc_penalty(std::size_t assoc) {
  // Way-select mux + tag compare: ~3% per doubling beyond direct-mapped.
  double p = 1.0;
  for (std::size_t a = 1; a < assoc; a <<= 1) p *= 1.03;
  return p;
}
}  // namespace

SramBankResult evaluate(const SramBankConfig& cfg) {
  SramBankResult r;
  const double kb = static_cast<double>(cfg.capacity_bytes) / 1024.0;
  const double sqrt_kb = std::sqrt(kb);
  const double ds = tech_delay_scale(cfg.tech_nm);
  const double es = tech_energy_scale(cfg.tech_nm);
  const double ap = assoc_penalty(cfg.associativity);

  // Decoder + wordline + bitline + senseamp + output driver.
  r.access_ns = (0.30 + 0.08 * sqrt_kb) * ds * ap;
  // Banks are internally pipelined (decode / array / output).
  r.cycle_ns = r.access_ns * 0.60;

  // Bitline + senseamp + output energy; reads and writes within ~10%.
  const double line_scale =
      static_cast<double>(cfg.line_bytes) / 32.0;  // wider line -> more I/O energy
  r.read_energy_pj = (2.0 + 4.75 * sqrt_kb) * es * ap * (0.7 + 0.3 * line_scale);
  r.write_energy_pj = r.read_energy_pj * 1.10;

  // Leakage: linear in capacity; 6T cell + peripheral share.
  r.leakage_mw = 0.020 * kb * es;

  // Area: slightly sub-linear in capacity (peripheral amortisation).
  r.area_mm2 = 0.009 * std::pow(kb, 0.92) * (cfg.tech_nm / kBaseNm) * (cfg.tech_nm / kBaseNm);
  return r;
}

double leakage_mw_at(const SramBankConfig& cfg, double temp_c,
                     const LeakageTempParams& temp) {
  return evaluate(cfg).leakage_mw * leakage_temp_scale(temp_c, temp);
}

unsigned access_cycles(const SramBankConfig& cfg, double clock_period_ns) {
  const SramBankResult r = evaluate(cfg);
  // The array access takes ceil(access/clock) cycles, plus one TSV-bus
  // interface stage (the bank-side flops shown in Fig. 1).
  const auto array_cycles =
      static_cast<unsigned>(std::ceil(r.access_ns / clock_period_ns - 1e-9));
  return array_cycles + 1;
}

}  // namespace mot3d::cacti
