#include "phys/wire.hpp"

#include <cmath>

namespace mot3d::phys {

namespace {
constexpr double kDriverFactor = 0.69;  // lumped RC step response
constexpr double kWireFactor = 0.38;    // distributed RC Elmore factor
}  // namespace

double WireModel::unrepeated_delay_ns(double mm) const {
  if (mm <= 0.0) return 0.0;
  const double r = tech_.wire_res_ohm_per_mm;       // ohm/mm
  const double c = tech_.wire_cap_ff_per_mm * 1e-15;  // F/mm
  // ohm * F = seconds; convert to ns.
  return kWireFactor * r * c * mm * mm * 1e9;
}

double WireModel::segment_delay_ns(double mm) const {
  if (mm <= 0.0) return 0.0;
  const double r = tech_.wire_res_ohm_per_mm;
  const double c = tech_.wire_cap_ff_per_mm * 1e-15;
  const double rd = tech_.repeater_res_ohm;
  const double cg = tech_.repeater_cap_ff * 1e-15;
  const double driver = kDriverFactor * rd * (cg + c * mm);
  const double wire = kWireFactor * r * c * mm * mm;
  const double load = kDriverFactor * r * mm * cg;
  return (driver + wire + load) * 1e9;
}

double WireModel::repeated_delay_ns(double mm) const {
  if (mm <= 0.0) return 0.0;
  const double spacing = tech_.repeater_spacing_mm;
  if (spacing <= 0.0 || mm <= spacing) return segment_delay_ns(mm);
  const auto full = static_cast<std::size_t>(mm / spacing);
  const double rest = mm - static_cast<double>(full) * spacing;
  double delay = static_cast<double>(full) * segment_delay_ns(spacing);
  if (rest > 1e-12) delay += segment_delay_ns(rest);
  return delay;
}

std::size_t WireModel::repeater_count(double mm) const {
  const double spacing = tech_.repeater_spacing_mm;
  if (mm <= 0.0 || spacing <= 0.0) return 0;
  // One driver at the source always exists (network interface); repeaters
  // are the inverters at interior spacing boundaries.
  const double interior = mm / spacing;
  auto n = static_cast<std::size_t>(interior);
  if (std::abs(interior - static_cast<double>(n)) < 1e-12 && n > 0) --n;
  return n;
}

double WireModel::optimal_spacing_mm() const {
  const double r = tech_.wire_res_ohm_per_mm;
  const double c = tech_.wire_cap_ff_per_mm * 1e-15;
  const double rd = tech_.repeater_res_ohm;
  const double cg = tech_.repeater_cap_ff * 1e-15;
  return std::sqrt((kDriverFactor * rd * cg) / (kWireFactor * r * c));
}

double WireModel::switch_energy_fj_per_bit(double mm) const {
  if (mm <= 0.0) return 0.0;
  const double c_wire_ff = tech_.wire_cap_ff_per_mm * mm;
  const double c_rep_ff =
      static_cast<double>(repeater_count(mm)) * tech_.repeater_cap_ff;
  // alpha = 0.5 activity on a switching event; E = a * C * V^2.
  return 0.5 * (c_wire_ff + c_rep_ff) * tech_.vdd_v * tech_.vdd_v;
}

double WireModel::leakage_uw_per_bit(double mm) const {
  return static_cast<double>(repeater_count(mm)) * tech_.repeater_leak_uw;
}

double WireModel::leakage_uw_per_bit_at(double mm, double temp_c,
                                        const LeakageTempParams& temp) const {
  return leakage_uw_per_bit(mm) * leakage_temp_scale(temp_c, temp);
}

}  // namespace mot3d::phys
