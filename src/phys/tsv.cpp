#include "phys/tsv.hpp"

namespace mot3d::phys {

double TsvModel::tsv_rc_ns() const {
  return tech_.tsv_res_ohm * tech_.tsv_cap_ff * 1e-15 * 1e9;
}

double TsvModel::tsv_delay_ns() const {
  // 0.69 * (R_drv + R_tsv) * C_tsv: driver charging the TSV capacitance.
  const double r = tech_.repeater_res_ohm + tech_.tsv_res_ohm;
  return 0.69 * r * tech_.tsv_cap_ff * 1e-15 * 1e9;
}

double TsvModel::stack_delay_ns(std::size_t tiers_crossed) const {
  return static_cast<double>(tiers_crossed) * tsv_delay_ns();
}

double TsvModel::bus_length_mm(std::size_t signals, std::size_t rows) const {
  if (rows == 0) rows = 1;
  const std::size_t per_row = (signals + rows - 1) / rows;
  return static_cast<double>(per_row) * tech_.bump_pitch_x_um * 1e-3;
}

}  // namespace mot3d::phys
