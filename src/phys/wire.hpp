// Elmore distributed-RC wire delay with repeater (inverter) insertion.
//
// Implements the delay model the paper cites ([15] for Elmore RC, [20]
// Liao-He for repeated-wire power).  A wire of length L is split into
// segments of `repeater_spacing_mm`; each segment is driven by an inverter
// and contributes
//
//   t_seg = 0.69 * R_drv * (C_gate + c*l) + 0.38 * r*c*l^2 + 0.69 * r*l*C_gate
//
// (classic lumped-driver + distributed-RC Elmore expression).
#pragma once

#include <cstddef>

#include "common/leakage.hpp"
#include "phys/technology.hpp"

namespace mot3d::phys {

/// Delay / energy / repeater-count model for a repeated on-chip wire.
class WireModel {
 public:
  explicit WireModel(const TechnologyParams& tech) : tech_(tech) {}

  /// Elmore delay of an unrepeated distributed RC wire of length `mm`.
  double unrepeated_delay_ns(double mm) const;

  /// Delay of one repeated segment of length `mm` (driver + wire).
  double segment_delay_ns(double mm) const;

  /// Delay of a repeated wire of length `mm` with repeaters every
  /// `repeater_spacing_mm` (partial last segment handled exactly).
  double repeated_delay_ns(double mm) const;

  /// Number of repeater inverters placed along a wire of length `mm`
  /// (one per full spacing boundary; a zero-length wire has none).
  std::size_t repeater_count(double mm) const;

  /// Repeater spacing that minimises repeated delay for this technology
  /// (sqrt(0.38/0.69 * R_drv*C_gate / (r*c))); exposed for the ablation
  /// bench comparing design-point spacing against the optimum.
  double optimal_spacing_mm() const;

  /// Dynamic energy to switch one bit across `mm` of wire once
  /// (0.5 * c * L * Vdd^2 + repeater gate energy), in femtojoules.
  double switch_energy_fj_per_bit(double mm) const;

  /// Leakage of the repeaters along `mm` of one bit-wire, in microwatts.
  double leakage_uw_per_bit(double mm) const;

  /// Repeater leakage at junction temperature `temp_c` (datasheet leakage
  /// is quoted at the reference temperature of `temp`), in microwatts.
  double leakage_uw_per_bit_at(double mm, double temp_c,
                               const LeakageTempParams& temp = {}) const;

  const TechnologyParams& tech() const { return tech_; }

 private:
  TechnologyParams tech_;
};

}  // namespace mot3d::phys
