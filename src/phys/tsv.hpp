// Through-silicon-via (TSV) electrical model after Katti et al. [15] and the
// IMEC micro-bump bonding data [14] the paper uses (40 µm x 50 µm minimum
// bump pitch).
//
// A "TSV bus" is the set of vertical wires (address + data + control) that
// connects one stacked SRAM bank to the MoT interconnect on the core tier.
#pragma once

#include <cstddef>

#include "phys/technology.hpp"

namespace mot3d::phys {

/// Electrical and floorplan model of a vertical TSV bus.
class TsvModel {
 public:
  explicit TsvModel(const TechnologyParams& tech) : tech_(tech) {}

  /// RC product of a single TSV (lumped), in ns.
  double tsv_rc_ns() const;

  /// Signal propagation delay through one TSV including its driver,
  /// in ns.  Dominated by the driver; TSVs are electrically short.
  double tsv_delay_ns() const;

  /// Delay through a two-tier stack (worst case: bank on the top tier,
  /// i.e. two bonded interfaces in series).
  double stack_delay_ns(std::size_t tiers_crossed) const;

  /// Dynamic energy of toggling one TSV once, in femtojoules.
  double energy_fj_per_bit() const { return tech_.tsv_energy_fj_per_bit; }

  /// Footprint of a `signals`-wide TSV bus laid out in `rows` bump rows,
  /// in mm (length along the MoT channel).  Determines the bank-site pitch
  /// used by the cluster geometry.
  double bus_length_mm(std::size_t signals, std::size_t rows) const;

 private:
  TechnologyParams tech_;
};

}  // namespace mot3d::phys
