// Technology parameters for the 45 nm-class process assumed by the paper's
// physical models (Elmore RC wires [15][20], TSV electrical model [15],
// micro-bump bonding [14]).
//
// All lengths are millimetres, times nanoseconds, capacitances femtofarads,
// resistances ohms, unless a suffix says otherwise.  The cluster clock is
// 1 GHz, so 1 ns == 1 cycle.
#pragma once

namespace mot3d::phys {

/// Process/circuit constants shared by the wire, TSV and switch models.
struct TechnologyParams {
  // -- global --
  double vdd_v = 1.0;             ///< supply voltage
  double clock_period_ns = 1.0;   ///< 1 GHz cluster clock (Table I)

  // -- minimum-pitch channel wire (per mm), 45 nm ITRS-range RC for the
  //    dense MoT routing channel --
  double wire_res_ohm_per_mm = 2000.0;
  double wire_cap_ff_per_mm = 400.0;

  // -- repeater (inverter) inserted along on-chip wires; the paper
  //    power-gates exactly these inverters --
  double repeater_res_ohm = 500.0;    ///< effective drive resistance
  double repeater_cap_ff = 2.0;       ///< input gate capacitance
  double repeater_spacing_mm = 1.0;   ///< area/power-constrained spacing
  double repeater_leak_uw = 1.2;      ///< leakage per repeater, µW

  // -- MoT switch combinational delays (from the synthesizable designs in
  //    refs [8][9][10]; the request-side routing switch carries the address
  //    decode, the arbitration grant is precomputed round-robin, and the
  //    response-side collectors are plain 2:1 muxes) --
  double routing_switch_delay_ns = 0.10;
  double arbitration_switch_delay_ns = 0.075;
  double response_switch_delay_ns = 0.04;
  double interface_delay_ns = 0.25;  ///< core/bank network-interface flop+drv

  // -- switch energy/leakage (logic path, per traversal / per instance) --
  double switch_energy_fj_per_bit = 4.0;  ///< mux+demux toggle per data bit
  double switch_leak_uw = 6.0;            ///< per bus-wide switch instance

  // -- TSV / micro-bump (Katti [15]; IMEC bump pitch 40x50 µm [14]) --
  double tsv_res_ohm = 0.25;
  double tsv_cap_ff = 35.0;
  double tsv_height_um = 40.0;
  double bump_pitch_x_um = 40.0;
  double bump_pitch_y_um = 50.0;
  double tsv_energy_fj_per_bit = 17.5;  ///< 0.5 * C_tsv * Vdd^2
};

/// Default technology: 45 nm-class, 1 V, 1 GHz.
inline constexpr TechnologyParams default_technology() { return TechnologyParams{}; }

}  // namespace mot3d::phys
