// Floorplan geometry of the 3-D multi-core cluster (paper Fig. 1(b), Fig. 5).
//
// The die is ~5 mm x 5 mm; the MoT interconnect sits in a channel across the
// middle of the core tier so that core-to-bank distances are balanced.  The
// two L2 tiers sit 40 µm above, reached through TSV buses whose landing pads
// occupy the channel.  Power-gating shrinks the *active* spans: with 8 of 32
// banks on, only a quarter of the TSV field is used; with 4 of 16 cores on,
// only a quarter of the core row participates — this is the wire-length
// asymmetry of Fig. 5 that makes the gated network faster as well as cooler.
#pragma once

#include <cstddef>
#include <vector>

#include "phys/technology.hpp"

namespace mot3d::phys {

/// Static floorplan parameters.
struct FloorplanParams {
  double die_x_mm = 5.0;            ///< Fig. 5: x ~ 5 mm
  double die_y_mm = 5.0;            ///< Fig. 5: y ~ 5 mm
  double tier_gap_mm = 0.040;       ///< Fig. 5: z ~ 40 µm
  double core_site_pitch_mm = 0.25; ///< width of one core slot on the row
  double bank_site_pitch_mm = 0.125;///< width of one TSV-bus landing site
  double core_to_channel_mm = 0.0;  ///< vertical offset core row -> channel
  std::size_t max_cores = 16;
  std::size_t max_banks = 32;
};

/// Wire-length bookkeeping for the MoT trees as a function of how many
/// cores / banks are powered.
class ClusterGeometry {
 public:
  ClusterGeometry(const FloorplanParams& fp, const TechnologyParams& tech)
      : fp_(fp), tech_(tech) {}

  /// Horizontal span (mm) of the active TSV-bus field for `banks` banks.
  double bank_field_span_mm(std::size_t banks) const;

  /// Horizontal span (mm) of the active core row for `cores` cores.
  double core_field_span_mm(std::size_t cores) const;

  /// Wire length of tree level `level` (0 = root) for a binary tree
  /// spanning `span_mm`: an H-tree-style halving, w_l = span / 2^(l+1).
  static double tree_level_length_mm(double span_mm, std::size_t level);

  /// Per-level wire lengths of a routing tree addressing `banks` leaves.
  std::vector<double> routing_tree_levels_mm(std::size_t banks) const;

  /// Per-level wire lengths of an arbitration tree merging `cores` inputs.
  std::vector<double> arbitration_tree_levels_mm(std::size_t cores) const;

  /// Total wire traversed by one request from a core to a bank (sum of the
  /// tree levels plus interface stubs), in mm — the dynamic-energy length.
  double request_path_mm(std::size_t cores, std::size_t banks) const;

  /// Total wire on the response path (mirrored network), in mm.
  double response_path_mm(std::size_t cores, std::size_t banks) const;

  /// Worst-case single link (longest wire segment that must be driven in
  /// one clock), Fig. 5's quantity, in mm.
  double longest_link_mm(std::size_t cores, std::size_t banks) const;

  /// Total wire length of the whole request+response network (all trees,
  /// all levels, per bit), in mm — the leakage length.
  double total_network_wire_mm(std::size_t cores, std::size_t banks) const;

  /// Vertical distance crossed to reach a bank on stacked tier `tier`
  /// (1 or 2), in mm.
  double vertical_mm(std::size_t tier) const {
    return fp_.tier_gap_mm * static_cast<double>(tier);
  }

  const FloorplanParams& floorplan() const { return fp_; }

 private:
  FloorplanParams fp_;
  TechnologyParams tech_;
};

}  // namespace mot3d::phys
