#include "phys/geometry.hpp"

#include "common/types.hpp"

namespace mot3d::phys {

double ClusterGeometry::bank_field_span_mm(std::size_t banks) const {
  // Two stacked tiers share each landing site column, so `banks` banks
  // occupy banks/2 sites; span counts sites actually powered.  We keep the
  // paper's convention of quoting the full per-bank row span (32 banks ->
  // 4 mm with a 0.125 mm site pitch), which subsumes the 2-tier sharing in
  // the pitch constant.
  return fp_.bank_site_pitch_mm * static_cast<double>(banks);
}

double ClusterGeometry::core_field_span_mm(std::size_t cores) const {
  return fp_.core_site_pitch_mm * static_cast<double>(cores);
}

double ClusterGeometry::tree_level_length_mm(double span_mm, std::size_t level) {
  double len = span_mm / 2.0;
  for (std::size_t i = 0; i < level; ++i) len /= 2.0;
  return len;
}

std::vector<double> ClusterGeometry::routing_tree_levels_mm(std::size_t banks) const {
  const unsigned levels = banks > 1 ? log2_exact(banks) : 0;
  const double span = bank_field_span_mm(banks);
  std::vector<double> out;
  out.reserve(levels);
  for (unsigned l = 0; l < levels; ++l) out.push_back(tree_level_length_mm(span, l));
  return out;
}

std::vector<double> ClusterGeometry::arbitration_tree_levels_mm(std::size_t cores) const {
  const unsigned levels = cores > 1 ? log2_exact(cores) : 0;
  const double span = core_field_span_mm(cores);
  std::vector<double> out;
  out.reserve(levels);
  for (unsigned l = 0; l < levels; ++l) out.push_back(tree_level_length_mm(span, l));
  return out;
}

namespace {
double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}
}  // namespace

double ClusterGeometry::request_path_mm(std::size_t cores, std::size_t banks) const {
  return fp_.core_to_channel_mm + sum(routing_tree_levels_mm(banks)) +
         sum(arbitration_tree_levels_mm(cores));
}

double ClusterGeometry::response_path_mm(std::size_t cores, std::size_t banks) const {
  // Mirrored network: routed by core index across the core field, collected
  // per bank across the bank field; same total span.
  return fp_.core_to_channel_mm + sum(arbitration_tree_levels_mm(cores)) +
         sum(routing_tree_levels_mm(banks));
}

double ClusterGeometry::longest_link_mm(std::size_t cores, std::size_t banks) const {
  // The root level of each tree is the longest single segment; a request
  // traverses both roots plus the vertical hop (negligible next to mm-scale
  // horizontal wires but reported for completeness).
  const double root_r = banks > 1 ? tree_level_length_mm(bank_field_span_mm(banks), 0) : 0.0;
  const double root_a = cores > 1 ? tree_level_length_mm(core_field_span_mm(cores), 0) : 0.0;
  return fp_.core_to_channel_mm + root_r + root_a + vertical_mm(2);
}

double ClusterGeometry::total_network_wire_mm(std::size_t cores, std::size_t banks) const {
  // Routing trees: one per core, each with `levels` levels; level l has 2^(l+1)
  // edges of length span/2^(l+1) -> each level contributes `span` mm of wire.
  const unsigned rt_levels = banks > 1 ? log2_exact(banks) : 0;
  const unsigned at_levels = cores > 1 ? log2_exact(cores) : 0;
  const double span_b = bank_field_span_mm(banks);
  const double span_c = core_field_span_mm(cores);
  const double per_routing_tree = static_cast<double>(rt_levels) * span_b;
  const double per_arb_tree = static_cast<double>(at_levels) * span_c;
  // Request network: cores routing trees + banks arbitration trees.
  const double request = static_cast<double>(cores) * per_routing_tree +
                         static_cast<double>(banks) * per_arb_tree;
  // Response network mirrors it: banks routing trees over the core field +
  // cores collection trees over the bank field.
  const double per_resp_routing = static_cast<double>(at_levels) * span_c;
  const double per_resp_collect = static_cast<double>(rt_levels) * span_b;
  const double response = static_cast<double>(banks) * per_resp_routing +
                          static_cast<double>(cores) * per_resp_collect;
  return request + response;
}

}  // namespace mot3d::phys
