#include "noc/noc_interconnect.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace mot3d::noc {

const char* topology_name(NocTopology t) {
  switch (t) {
    case NocTopology::kTrueMesh3d: return "True 3-D Mesh";
    case NocTopology::kHybridBusMesh: return "3-D Hybrid Bus-Mesh";
    case NocTopology::kHybridBusTree: return "3-D Hybrid Bus-Tree";
  }
  return "?";
}

namespace {
NocNetwork build(NocTopology t, const NocConfig& cfg) {
  switch (t) {
    case NocTopology::kTrueMesh3d: return build_true_mesh_3d(cfg);
    case NocTopology::kHybridBusMesh: return build_hybrid_bus_mesh(cfg);
    case NocTopology::kHybridBusTree: return build_hybrid_bus_tree(cfg);
  }
  throw std::invalid_argument("unknown topology");
}
}  // namespace

NocInterconnect::NocInterconnect(NocTopology topology, const NocConfig& cfg,
                                 const power::InterconnectPowerModel& power)
    : topology_(topology), net_(build(topology, cfg)), power_(power) {
  net_.set_delivery([this](const Packet& p, Cycle now) {
    if (p.kind == PacketKind::kRequest) {
      ++stats_.requests_delivered;
      if (trace_ != nullptr) {
        // ts = injection, dur = full in-network latency (queueing +
        // serialisation + hops); recorded only at delivery, which is a
        // model state change in both scheduler modes.
        trace_->complete("route_req", trace_track_, p.created,
                         now - p.created, "core", p.req.core, "bank",
                         p.req.bank);
      }
      emit_request(p.req, now);
    } else {
      ++stats_.responses_delivered;
      if (trace_ != nullptr) {
        trace_->complete("route_resp", trace_track_, p.created,
                         now - p.created, "core", p.resp.core, "bank",
                         p.resp.bank);
      }
      emit_response(p.resp, now);
    }
  });
}

bool NocInterconnect::try_inject_request(const MemRequest& req, Cycle now) {
  Packet p;
  p.id = next_packet_++;
  p.kind = PacketKind::kRequest;
  p.src = core_node(req.core);
  p.dst = bank_node(req.bank);  // the NoC baselines run the full (ungated)
                                // configuration: logical == physical bank
  p.length_flits = 1 + (req.is_write ? net_.config().line_flits() : 0);
  p.created = now;
  p.req = req;
  if (!net_.try_inject(p, now)) {
    --next_packet_;
    return false;
  }
  ++stats_.requests_injected;
  return true;
}

bool NocInterconnect::try_inject_response(const MemResponse& resp, Cycle now) {
  Packet p;
  p.id = next_packet_++;
  p.kind = PacketKind::kResponse;
  p.src = bank_node(resp.bank);
  p.dst = core_node(resp.core);
  p.length_flits = 1 + (resp.is_write ? 0 : net_.config().line_flits());
  p.created = now;
  p.resp = resp;
  if (!net_.try_inject(p, now)) {
    --next_packet_;
    return false;
  }
  ++stats_.responses_injected;
  return true;
}

void NocInterconnect::tick(Cycle now) { net_.tick(now); }

double NocInterconnect::dynamic_energy_pj() const {
  const NocTransportStats& s = net_.transport_stats();
  const double router_pj =
      static_cast<double>(s.flit_router_traversals) * power_.router_hop_pj();
  const double link_pj =
      power_.wire_transfer_pj(s.flit_link_mm, net_.config().flit_bits);
  // Bus transfers cross the TSV stack: charge the TSV capacitance per bit.
  const double bus_pj = static_cast<double>(s.flit_bus_transfers) *
                        power_.wire().tech().tsv_energy_fj_per_bit * 1e-3 *
                        static_cast<double>(net_.config().flit_bits);
  return router_pj + link_pj + bus_pj;
}

double NocInterconnect::leakage_mw() const {
  const double routers =
      static_cast<double>(net_.num_routers()) * power_.router_leakage_mw();
  const double links =
      power_.wire_leakage_mw(net_.total_link_mm(), net_.config().flit_bits);
  return routers + links;
}

std::unique_ptr<NocInterconnect> make_noc(NocTopology topology, const NocConfig& cfg,
                                          const power::InterconnectPowerModel& power) {
  return std::make_unique<NocInterconnect>(topology, cfg, power);
}

}  // namespace mot3d::noc
