// Flit-level cycle-driven NoC fabric: wormhole routers, TSV buses, network
// interfaces, plus builders for the paper's three packet-switched 3-D
// baselines (True 3-D Mesh, Hybrid Bus-Mesh [2], Hybrid Bus-Tree [21]).
//
// Router micro-architecture: input-buffered, one flit per output per cycle,
// round-robin switch allocation, wormhole output locking (head locks, tail
// releases), table-based routing (XYZ dimension-order for the mesh, up*/
// down* on the tree — both deadlock-free), `router_pipeline_cycles` of
// per-hop latency plus `link_cycles` of wire latency.  Back-pressure is by
// buffer occupancy at the downstream input.  Endpoint ejection is always
// accepted (sink consumption), which rules out protocol deadlock between
// request and response traffic.
//
// TSV buses carry one flit per cycle, round-robin among their attachments —
// the "dTDMA bus" of ref [2]; in the Bus-Tree topology each bus is shared
// by eight stacked banks, which is exactly the serialisation that makes it
// the worst performer in the paper's Fig. 6.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"

namespace mot3d::noc {

struct NocConfig {
  std::size_t num_cores = 16;
  std::size_t num_banks = 32;
  std::size_t buffer_flits = 4;          ///< per router input port, per VC
  unsigned router_pipeline_cycles = 1;   ///< speculative single-cycle router
  unsigned link_cycles = 1;
  std::size_t flit_bits = 128;           ///< link width of the baselines
  std::size_t line_bytes = 32;
  /// dTDMA TSV-bus slot times (arbitration + turnaround between masters;
  /// ref [2]'s bus is time-multiplexed among all attached tiers).  The
  /// Bus-Tree's quadrant buses carry 9 drops over two tiers, so their slot
  /// time is longer — the physical root of the paper's Fig. 6 finding.
  unsigned pillar_bus_cycles_per_flit = 2;   ///< Bus-Mesh: 3-drop pillar
  unsigned quadrant_bus_cycles_per_flit = 4; ///< Bus-Tree: 9-drop quadrant
  double mesh_pitch_mm = 1.25;           ///< 5 mm die / 4 columns
  double tree_link_mm = 1.25;

  std::size_t line_flits() const { return line_bytes * 8 / flit_bits; }
  std::size_t num_endpoints() const { return num_cores + num_banks; }
};

struct NocTransportStats {
  std::uint64_t packets_delivered = 0;
  std::uint64_t flit_router_traversals = 0;  ///< buffer+xbar energy events
  std::uint64_t flit_bus_transfers = 0;
  double flit_link_mm = 0.0;                 ///< wire-length-weighted flits
  Histogram packet_latency{1, 512};
};

/// Where an output port / bus grant sends a flit.
struct Target {
  enum class Kind : std::uint8_t { kNone, kRouterPort, kEndpoint, kBus };
  Kind kind = Kind::kNone;
  std::uint32_t index = 0;  ///< router id / endpoint id / bus id
  std::uint32_t port = 0;   ///< router input port (kRouterPort only)
  double wire_mm = 0.0;     ///< physical link length (energy accounting)
};

/// The assembled network.  Topology builders populate the graph; the
/// NocInterconnect adapter drives inject/tick/delivery.
class NocNetwork {
 public:
  explicit NocNetwork(const NocConfig& cfg);

  // ---- construction (builders only) ----
  /// Adds a router with `num_ports` ports; returns its id.
  std::uint32_t add_router(std::size_t num_ports);
  /// Wire router output (r, port) to `target`.
  void set_output(std::uint32_t router, std::uint32_t port, Target target);
  /// Adds a TSV bus; returns its id.  Attachments are added separately.
  /// `cycles_per_flit` is the dTDMA slot time: a lightly-loaded 3-drop
  /// pillar (Bus-Mesh) moves a flit every 2 cycles; a 9-drop quadrant bus
  /// (Bus-Tree) pays more capacitive load and a longer TDMA frame.
  std::uint32_t add_bus(double wire_mm, unsigned cycles_per_flit);
  /// Attach a sender to the bus: flits from this slot are arbitrated RR.
  /// Returns the attachment slot id used with bus_push.
  std::uint32_t add_bus_attachment(std::uint32_t bus);
  /// Where the bus delivers flits destined to endpoint `e`.
  void set_bus_route(std::uint32_t bus, NodeId e, Target target);
  /// Attach endpoint `e`'s injection to a router input port or a bus slot.
  void set_endpoint_injection(NodeId e, Target target,
                              std::optional<std::uint32_t> bus_slot = {});
  /// Routing table entry: at `router`, packets for endpoint `dst` leave by
  /// `out_port`.
  void set_route(std::uint32_t router, NodeId dst, std::uint32_t out_port);

  // ---- runtime ----
  using Delivery = std::function<void(const Packet&, Cycle)>;
  void set_delivery(Delivery d) { delivery_ = std::move(d); }

  /// Queue `p` at its source endpoint NI; false if the NI queue is full.
  bool try_inject(const Packet& p, Cycle now);

  void tick(Cycle now);
  bool idle() const;

  /// Next-event contract (see DESIGN.md): earliest cycle >= `now` at which
  /// tick() could move a flit.  Any flit that is ready but back-pressured
  /// pins the result to `now` (dense ticking resumes until it drains).
  Cycle next_event(Cycle now) const;

  const NocConfig& config() const { return cfg_; }
  const NocTransportStats& transport_stats() const { return stats_; }
  std::size_t num_routers() const { return routers_.size(); }
  std::size_t num_buses() const { return buses_.size(); }

  /// Fault injection: serialise router `router`'s crossbar — at most one
  /// flit moves per window and each moved flit costs `extra_cycles` extra
  /// pause (a degraded link retrains/retries every transfer).  Cumulative
  /// and permanent.
  void set_router_throttle(std::uint32_t router, unsigned extra_cycles);

  /// Total link wire in the topology (leakage accounting), mm.
  double total_link_mm() const { return total_link_mm_; }

 private:
  struct InPort {
    std::array<std::deque<Flit>, kNumVcs> q;  ///< one buffer per virtual net
  };
  struct OutPort {
    Target target;
    std::array<int, kNumVcs> locked_in{-1, -1};  ///< wormhole lock per VC
    std::uint32_t rr = 0;      ///< round-robin pointer over inputs
    std::uint8_t vc_rr = 0;    ///< round-robin between virtual networks
  };
  struct Router {
    std::vector<InPort> in;
    std::vector<OutPort> out;
    std::vector<std::uint32_t> route;  ///< per endpoint -> out port
    unsigned throttle = 0;   ///< fault: extra cycles per moved flit (0 = healthy)
    Cycle busy_until = 0;    ///< fault: serialisation pacing
  };
  struct Bus {
    struct Slot {
      std::deque<Flit> q;
    };
    std::vector<Slot> slots;
    std::uint32_t rr = 0;
    int locked_slot = -1;  ///< wormhole: slot owning the bus until tail
    Cycle busy_until = 0;  ///< dTDMA slot pacing
    unsigned cycles_per_flit = 2;
    std::vector<Target> route;  ///< per endpoint -> delivery target
    double wire_mm = 0.0;
  };
  struct EndpointNi {
    Target injection;                      ///< router port or bus slot
    std::optional<std::uint32_t> bus_slot; ///< slot id when injecting via bus
    std::deque<Flit> inject_q;
    std::size_t assembled = 0;             ///< flits of the arriving packet
    static constexpr std::size_t kMaxInjectQ = 64;
  };

  bool deliver_to_target(const Target& t, Flit flit, Cycle now);
  void eject(NodeId e, const Flit& flit, Cycle now);
  bool router_in_has_space(std::uint32_t router, std::uint32_t port,
                           std::uint8_t vc) const;
  /// Try to move one flit of virtual network `vc` through output `po` of
  /// router `ri`; returns true if a flit moved.
  bool router_output_step(std::uint32_t ri, std::uint32_t po, std::uint8_t vc,
                          Cycle now);

  NocConfig cfg_;
  std::vector<Router> routers_;
  std::vector<Bus> buses_;
  std::vector<EndpointNi> endpoints_;
  std::unordered_map<PacketId, Packet> packets_;
  Delivery delivery_;
  NocTransportStats stats_;
  double total_link_mm_ = 0.0;
};

/// Builders for the paper's three baselines (16 cores, 32 banks over two
/// stacked tiers).  Each returns a fully wired network.
NocNetwork build_true_mesh_3d(const NocConfig& cfg);
NocNetwork build_hybrid_bus_mesh(const NocConfig& cfg);
NocNetwork build_hybrid_bus_tree(const NocConfig& cfg);

}  // namespace mot3d::noc
