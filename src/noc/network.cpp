#include "noc/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mot3d::noc {

NocNetwork::NocNetwork(const NocConfig& cfg)
    : cfg_(cfg), endpoints_(cfg.num_endpoints()) {}

std::uint32_t NocNetwork::add_router(std::size_t num_ports) {
  Router r;
  r.in.resize(num_ports);
  r.out.resize(num_ports);
  r.route.assign(cfg_.num_endpoints(), 0);
  routers_.push_back(std::move(r));
  return static_cast<std::uint32_t>(routers_.size() - 1);
}

void NocNetwork::set_output(std::uint32_t router, std::uint32_t port, Target target) {
  routers_.at(router).out.at(port).target = target;
  if (target.kind == Target::Kind::kRouterPort) total_link_mm_ += target.wire_mm;
}

std::uint32_t NocNetwork::add_bus(double wire_mm, unsigned cycles_per_flit) {
  Bus b;
  b.wire_mm = wire_mm;
  b.cycles_per_flit = cycles_per_flit == 0 ? 1 : cycles_per_flit;
  b.route.assign(cfg_.num_endpoints(), Target{});
  buses_.push_back(std::move(b));
  return static_cast<std::uint32_t>(buses_.size() - 1);
}

std::uint32_t NocNetwork::add_bus_attachment(std::uint32_t bus) {
  Bus& b = buses_.at(bus);
  b.slots.emplace_back();
  return static_cast<std::uint32_t>(b.slots.size() - 1);
}

void NocNetwork::set_bus_route(std::uint32_t bus, NodeId e, Target target) {
  buses_.at(bus).route.at(e) = target;
}

void NocNetwork::set_endpoint_injection(NodeId e, Target target,
                                        std::optional<std::uint32_t> bus_slot) {
  endpoints_.at(e).injection = target;
  endpoints_.at(e).bus_slot = bus_slot;
}

void NocNetwork::set_route(std::uint32_t router, NodeId dst, std::uint32_t out_port) {
  routers_.at(router).route.at(dst) = out_port;
}

void NocNetwork::set_router_throttle(std::uint32_t router, unsigned extra_cycles) {
  routers_.at(router).throttle += extra_cycles;
}

bool NocNetwork::try_inject(const Packet& p, Cycle now) {
  EndpointNi& ni = endpoints_.at(p.src);
  if (ni.inject_q.size() + p.length_flits > EndpointNi::kMaxInjectQ) return false;
  packets_.emplace(p.id, p);
  for (std::size_t f = 0; f < p.length_flits; ++f) {
    Flit flit;
    flit.packet = p.id;
    flit.dst = p.dst;
    flit.head = (f == 0);
    flit.tail = (f + 1 == p.length_flits);
    flit.vc = p.kind == PacketKind::kRequest ? kRequestVc : kResponseVc;
    flit.ready_at = now;
    ni.inject_q.push_back(flit);
  }
  return true;
}

bool NocNetwork::router_in_has_space(std::uint32_t router, std::uint32_t port,
                                     std::uint8_t vc) const {
  return routers_.at(router).in.at(port).q[vc].size() < cfg_.buffer_flits;
}

void NocNetwork::eject(NodeId e, const Flit& flit, Cycle now) {
  EndpointNi& ni = endpoints_.at(e);
  ++ni.assembled;
  if (!flit.tail) return;
  ni.assembled = 0;
  auto it = packets_.find(flit.packet);
  assert(it != packets_.end());
  stats_.packet_latency.add(now - it->second.created);
  ++stats_.packets_delivered;
  if (delivery_) delivery_(it->second, now);
  packets_.erase(it);
}

bool NocNetwork::deliver_to_target(const Target& t, Flit flit, Cycle now) {
  switch (t.kind) {
    case Target::Kind::kRouterPort: {
      if (!router_in_has_space(t.index, t.port, flit.vc)) return false;
      flit.ready_at = now + cfg_.link_cycles + cfg_.router_pipeline_cycles;
      routers_[t.index].in[t.port].q[flit.vc].push_back(flit);
      stats_.flit_link_mm += t.wire_mm;
      return true;
    }
    case Target::Kind::kEndpoint:
      eject(t.index, flit, now);
      stats_.flit_link_mm += t.wire_mm;
      return true;
    case Target::Kind::kBus: {
      Bus& bus = buses_[t.index];
      Bus::Slot& slot = bus.slots.at(t.port);
      if (slot.q.size() >= cfg_.buffer_flits) return false;
      flit.ready_at = now + 1;  // bus request/arbitration setup
      slot.q.push_back(flit);
      return true;
    }
    case Target::Kind::kNone:
      break;
  }
  assert(false && "flit sent into an unwired target");
  return false;
}

bool NocNetwork::router_output_step(std::uint32_t ri, std::uint32_t po,
                                    std::uint8_t vc, Cycle now) {
  Router& r = routers_[ri];
  OutPort& op = r.out[po];

  int chosen = -1;
  if (op.locked_in[vc] >= 0) {
    // Wormhole: within this virtual network only the owning input sends.
    InPort& ip = r.in[static_cast<std::size_t>(op.locked_in[vc])];
    if (!ip.q[vc].empty() && ip.q[vc].front().ready_at <= now) {
      chosen = op.locked_in[vc];
    }
  } else {
    const std::size_t np = r.in.size();
    for (std::size_t k = 0; k < np; ++k) {
      const std::size_t pi = (op.rr + k) % np;
      InPort& ip = r.in[pi];
      if (ip.q[vc].empty() || ip.q[vc].front().ready_at > now) continue;
      if (!ip.q[vc].front().head) continue;  // body flits follow their lock
      if (r.route.at(ip.q[vc].front().dst) != po) continue;
      chosen = static_cast<int>(pi);
      break;
    }
  }
  if (chosen < 0) return false;

  InPort& ip = r.in[static_cast<std::size_t>(chosen)];
  Flit flit = ip.q[vc].front();
  if (!deliver_to_target(op.target, flit, now)) return false;  // back-pressure
  ip.q[vc].pop_front();
  ++stats_.flit_router_traversals;
  if (flit.head && !flit.tail) {
    op.locked_in[vc] = chosen;
  } else if (flit.tail) {
    op.locked_in[vc] = -1;
    op.rr = (static_cast<std::size_t>(chosen) + 1) % r.in.size();
  }
  return true;
}

void NocNetwork::tick(Cycle now) {
  // 1. Buses: one flit per bus per cycle, wormhole-locked to the granted
  //    slot so multi-flit packets stay contiguous at the receiving router.
  //    The lock is *hard*: even if the owning slot has no flit ready this
  //    cycle, no other slot may use the bus — otherwise two packets
  //    interleave into one router input queue and break worm framing.
  for (std::uint32_t bi = 0; bi < buses_.size(); ++bi) {
    Bus& bus = buses_[bi];
    const std::size_t n = bus.slots.size();
    if (n == 0 || bus.busy_until > now) continue;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t s = bus.locked_slot >= 0
                                ? static_cast<std::size_t>(bus.locked_slot)
                                : (bus.rr + k) % n;
      Bus::Slot& slot = bus.slots[s];
      if (bus.locked_slot < 0 && (slot.q.empty() || slot.q.front().ready_at > now ||
                                  !slot.q.front().head)) {
        continue;  // unlocked bus only grants a fresh head flit
      }
      if (slot.q.empty() || slot.q.front().ready_at > now) break;  // hold bus
      const Flit& head = slot.q.front();
      const Target& t = bus.route.at(head.dst);
      Flit moving = head;
      if (!deliver_to_target(t, moving, now)) break;  // blocked: hold the bus
      slot.q.pop_front();
      ++stats_.flit_bus_transfers;
      bus.busy_until = now + bus.cycles_per_flit;
      if (moving.tail) {
        bus.locked_slot = -1;
        bus.rr = (s + 1) % n;
      } else {
        bus.locked_slot = static_cast<int>(s);
      }
      break;  // one transfer per bus per slot time
    }
  }

  // 2. Routers: every output port moves at most one flit per cycle,
  //    alternating fairly between the two virtual networks (requests may
  //    never starve responses, and vice versa).  A fault-throttled router
  //    is serialised: at most one flit total per window, then it pauses
  //    `throttle` cycles (degraded link retrains every transfer).
  for (std::uint32_t ri = 0; ri < routers_.size(); ++ri) {
    Router& r = routers_[ri];
    if (r.throttle > 0 && r.busy_until > now) continue;
    bool moved = false;
    for (std::uint32_t po = 0; po < r.out.size(); ++po) {
      OutPort& op = r.out[po];
      if (op.target.kind == Target::Kind::kNone) continue;
      const std::uint8_t first = op.vc_rr;
      for (std::uint8_t i = 0; i < kNumVcs; ++i) {
        const auto vc = static_cast<std::uint8_t>((first + i) % kNumVcs);
        if (router_output_step(ri, po, vc, now)) {
          op.vc_rr = static_cast<std::uint8_t>((vc + 1) % kNumVcs);
          moved = true;
          break;
        }
      }
      if (moved && r.throttle > 0) break;  // serialised crossbar
    }
    if (moved && r.throttle > 0) r.busy_until = now + 1 + r.throttle;
  }

  // 3. Endpoint NIs: one flit per cycle enters the fabric.
  for (NodeId e = 0; e < endpoints_.size(); ++e) {
    EndpointNi& ni = endpoints_[e];
    if (ni.inject_q.empty() || ni.inject_q.front().ready_at > now) continue;
    const Target& t = ni.injection;
    Flit flit = ni.inject_q.front();
    if (t.kind == Target::Kind::kRouterPort) {
      if (!router_in_has_space(t.index, t.port, flit.vc)) continue;
      flit.ready_at = now + cfg_.router_pipeline_cycles;
      routers_[t.index].in[t.port].q[flit.vc].push_back(flit);
      ni.inject_q.pop_front();
    } else if (t.kind == Target::Kind::kBus) {
      Bus& bus = buses_[t.index];
      Bus::Slot& slot = bus.slots.at(*ni.bus_slot);
      if (slot.q.size() >= cfg_.buffer_flits) continue;
      flit.ready_at = now + 1;
      slot.q.push_back(flit);
      ni.inject_q.pop_front();
    } else {
      assert(false && "endpoint without injection wiring");
    }
  }
}

bool NocNetwork::idle() const { return packets_.empty(); }

Cycle NocNetwork::next_event(Cycle now) const {
  if (packets_.empty()) return kNeverCycle;
  Cycle next = kNeverCycle;
  // Every queued flit sits at the head of exactly one FIFO (NI inject
  // queue, bus slot, or router input buffer); only heads can move, so the
  // earliest head ready_at bounds the next state change.  A head that is
  // already ready may still be blocked by back-pressure or wormhole locks,
  // which this bound conservatively reports as "event now".
  for (const EndpointNi& ni : endpoints_) {
    if (ni.inject_q.empty()) continue;
    if (ni.inject_q.front().ready_at <= now) return now;
    next = std::min(next, ni.inject_q.front().ready_at);
  }
  for (const Bus& bus : buses_) {
    for (const Bus::Slot& slot : bus.slots) {
      if (slot.q.empty()) continue;
      const Cycle ready = std::max(slot.q.front().ready_at, bus.busy_until);
      if (ready <= now) return now;
      next = std::min(next, ready);
    }
  }
  for (const Router& r : routers_) {
    for (const InPort& ip : r.in) {
      for (const auto& q : ip.q) {
        if (q.empty()) continue;
        Cycle ready = q.front().ready_at;
        if (r.throttle > 0) ready = std::max(ready, r.busy_until);
        if (ready <= now) return now;
        next = std::min(next, ready);
      }
    }
  }
  return next;
}

}  // namespace mot3d::noc
