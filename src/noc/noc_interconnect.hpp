// Interconnect adapter over the flit-level NoC fabric: packetises L2
// transactions, drives the network, and accounts energy with the Liao-He /
// Orion-class coefficients.
#pragma once

#include <memory>

#include "common/interconnect.hpp"
#include "noc/network.hpp"
#include "power/interconnect_power.hpp"

namespace mot3d::noc {

/// Which baseline to instantiate.
enum class NocTopology { kTrueMesh3d, kHybridBusMesh, kHybridBusTree };

const char* topology_name(NocTopology t);

class NocInterconnect final : public Interconnect {
 public:
  NocInterconnect(NocTopology topology, const NocConfig& cfg,
                  const power::InterconnectPowerModel& power);

  const char* name() const override { return topology_name(topology_); }

  bool try_inject_request(const MemRequest& req, Cycle now) override;
  bool try_inject_response(const MemResponse& resp, Cycle now) override;
  void tick(Cycle now) override;
  bool idle() const override { return net_.idle(); }
  Cycle next_event(Cycle now) const override { return net_.next_event(now); }

  double dynamic_energy_pj() const override;
  double leakage_mw() const override;

  const NocNetwork& network() const { return net_; }
  NocTopology topology() const { return topology_; }

  /// Fault injection: serialise one router's crossbar (see
  /// NocNetwork::set_router_throttle).
  void set_router_throttle(std::uint32_t router, unsigned extra_cycles) {
    net_.set_router_throttle(router, extra_cycles);
  }
  std::size_t num_routers() const { return net_.num_routers(); }

 private:
  NodeId core_node(CoreId c) const { return c; }
  NodeId bank_node(BankId b) const {
    return static_cast<NodeId>(net_.config().num_cores + b);
  }

  NocTopology topology_;
  NocNetwork net_;
  power::InterconnectPowerModel power_;
  PacketId next_packet_ = 1;
};

/// Convenience factory.
std::unique_ptr<NocInterconnect> make_noc(NocTopology topology, const NocConfig& cfg,
                                          const power::InterconnectPowerModel& power);

}  // namespace mot3d::noc
