// Topology builders for the paper's three packet-switched 3-D baselines.
//
// Geometry: a 4x4 grid of tiles on the core tier (one core per tile) and
// two stacked bank tiers of 16 banks each (bank b sits at tile b%16, tier
// 1 + b/16), mirroring the MoT cluster's floorplan.
#include <array>
#include <cstdlib>

#include "noc/network.hpp"

namespace mot3d::noc {

namespace {

constexpr std::uint32_t kEast = 0, kWest = 1, kNorth = 2, kSouth = 3;

struct Tile {
  int x = 0;
  int y = 0;
};

Tile tile_of_core(NodeId c) { return {static_cast<int>(c % 4), static_cast<int>(c / 4)}; }
Tile tile_of_bank(std::uint32_t b) {
  const std::uint32_t t = b % 16;
  return {static_cast<int>(t % 4), static_cast<int>(t / 4)};
}
int tier_of_bank(std::uint32_t b) { return 1 + static_cast<int>(b / 16); }

NodeId bank_endpoint(const NocConfig& cfg, std::uint32_t b) {
  return static_cast<NodeId>(cfg.num_cores + b);
}

/// XY-dimension-order next hop within one tier's 4x4 mesh; returns the port
/// or -1 when (x, y) is the destination tile.
int xy_next_port(Tile at, Tile to) {
  if (to.x > at.x) return kEast;
  if (to.x < at.x) return kWest;
  if (to.y > at.y) return kNorth;
  if (to.y < at.y) return kSouth;
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// True 3-D Mesh: 4x4x3 routers, 7 ports (E W N S Up Down Local), XYZ
// dimension-order routing (deadlock-free).
// ---------------------------------------------------------------------------
NocNetwork build_true_mesh_3d(const NocConfig& cfg) {
  NocNetwork net(cfg);
  constexpr std::uint32_t kUp = 4, kDown = 5, kLocal = 6;
  const double pitch = cfg.mesh_pitch_mm;
  const double tsv_mm = 0.04;  // 40 µm tier gap

  auto rid = [](int x, int y, int z) {
    return static_cast<std::uint32_t>(z * 16 + y * 4 + x);
  };

  for (int z = 0; z < 3; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const std::uint32_t r = net.add_router(7);
        (void)r;
      }
    }
  }
  // Mesh + vertical links.
  for (int z = 0; z < 3; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const std::uint32_t r = rid(x, y, z);
        if (x < 3)
          net.set_output(r, kEast,
                         {Target::Kind::kRouterPort, rid(x + 1, y, z), kWest, pitch});
        if (x > 0)
          net.set_output(r, kWest,
                         {Target::Kind::kRouterPort, rid(x - 1, y, z), kEast, pitch});
        if (y < 3)
          net.set_output(r, kNorth,
                         {Target::Kind::kRouterPort, rid(x, y + 1, z), kSouth, pitch});
        if (y > 0)
          net.set_output(r, kSouth,
                         {Target::Kind::kRouterPort, rid(x, y - 1, z), kNorth, pitch});
        if (z < 2)
          net.set_output(r, kUp,
                         {Target::Kind::kRouterPort, rid(x, y, z + 1), kDown, tsv_mm});
        if (z > 0)
          net.set_output(r, kDown,
                         {Target::Kind::kRouterPort, rid(x, y, z - 1), kUp, tsv_mm});
      }
    }
  }
  // Endpoints.
  for (NodeId c = 0; c < cfg.num_cores; ++c) {
    const Tile t = tile_of_core(c);
    const std::uint32_t r = rid(t.x, t.y, 0);
    net.set_output(r, kLocal, {Target::Kind::kEndpoint, c, 0, 0.1});
    net.set_endpoint_injection(c, {Target::Kind::kRouterPort, r, kLocal, 0.1});
  }
  for (std::uint32_t b = 0; b < cfg.num_banks; ++b) {
    const Tile t = tile_of_bank(b);
    const std::uint32_t r = rid(t.x, t.y, tier_of_bank(b));
    const NodeId e = bank_endpoint(cfg, b);
    net.set_output(r, kLocal, {Target::Kind::kEndpoint, e, 0, 0.1});
    net.set_endpoint_injection(e, {Target::Kind::kRouterPort, r, kLocal, 0.1});
  }
  // XYZ routing tables.
  auto dst_place = [&cfg](NodeId e, Tile& t, int& z) {
    if (e < cfg.num_cores) {
      t = tile_of_core(e);
      z = 0;
    } else {
      const std::uint32_t b = static_cast<std::uint32_t>(e - cfg.num_cores);
      t = tile_of_bank(b);
      z = tier_of_bank(b);
    }
  };
  for (int z = 0; z < 3; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const std::uint32_t r = rid(x, y, z);
        for (NodeId e = 0; e < cfg.num_endpoints(); ++e) {
          Tile dt;
          int dz;
          dst_place(e, dt, dz);
          int port = xy_next_port({x, y}, dt);
          if (port < 0) port = dz > z ? static_cast<int>(kUp)
                             : dz < z ? static_cast<int>(kDown)
                                      : static_cast<int>(kLocal);
          net.set_route(r, e, static_cast<std::uint32_t>(port));
        }
      }
    }
  }
  return net;
}

// ---------------------------------------------------------------------------
// 3-D Hybrid Bus-Mesh (Li et al., ISCA'06 "network-in-memory"): a 2-D mesh
// on the core tier; each router owns a vertical dTDMA TSV-bus pillar shared
// by the two banks stacked above its tile.
// ---------------------------------------------------------------------------
NocNetwork build_hybrid_bus_mesh(const NocConfig& cfg) {
  NocNetwork net(cfg);
  constexpr std::uint32_t kLocal = 4, kBusPort = 5;
  const double pitch = cfg.mesh_pitch_mm;

  auto rid = [](int x, int y) { return static_cast<std::uint32_t>(y * 4 + x); };

  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) (void)net.add_router(6);
  }
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const std::uint32_t r = rid(x, y);
      if (x < 3) net.set_output(r, kEast, {Target::Kind::kRouterPort, rid(x + 1, y), kWest, pitch});
      if (x > 0) net.set_output(r, kWest, {Target::Kind::kRouterPort, rid(x - 1, y), kEast, pitch});
      if (y < 3) net.set_output(r, kNorth, {Target::Kind::kRouterPort, rid(x, y + 1), kSouth, pitch});
      if (y > 0) net.set_output(r, kSouth, {Target::Kind::kRouterPort, rid(x, y - 1), kNorth, pitch});
    }
  }
  // One pillar bus per tile: slots = {router, bank tier1, bank tier2}.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const std::uint32_t r = rid(x, y);
      const std::uint32_t bus = net.add_bus(0.08, cfg.pillar_bus_cycles_per_flit);
      const std::uint32_t router_slot = net.add_bus_attachment(bus);
      net.set_output(r, kBusPort, {Target::Kind::kBus, bus, router_slot, 0.04});
      for (int tier = 0; tier < 2; ++tier) {
        const std::uint32_t b = static_cast<std::uint32_t>(tier * 16 + y * 4 + x);
        const NodeId e = bank_endpoint(cfg, b);
        const std::uint32_t slot = net.add_bus_attachment(bus);
        net.set_endpoint_injection(e, {Target::Kind::kBus, bus, slot, 0.04}, slot);
        net.set_bus_route(bus, e, {Target::Kind::kEndpoint, e, 0, 0.04});
      }
      // Anything not a pillar bank returns into the router.
      for (NodeId e = 0; e < cfg.num_cores; ++e) {
        net.set_bus_route(bus, e, {Target::Kind::kRouterPort, r, kBusPort, 0.04});
      }
    }
  }
  for (NodeId c = 0; c < cfg.num_cores; ++c) {
    const Tile t = tile_of_core(c);
    const std::uint32_t r = rid(t.x, t.y);
    net.set_output(r, kLocal, {Target::Kind::kEndpoint, c, 0, 0.1});
    net.set_endpoint_injection(c, {Target::Kind::kRouterPort, r, kLocal, 0.1});
  }
  // Routing: XY to the destination tile; there, Local for cores, the
  // pillar bus for banks.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const std::uint32_t r = rid(x, y);
      for (NodeId e = 0; e < cfg.num_endpoints(); ++e) {
        const Tile dt = e < cfg.num_cores
                            ? tile_of_core(e)
                            : tile_of_bank(static_cast<std::uint32_t>(e - cfg.num_cores));
        int port = xy_next_port({x, y}, dt);
        if (port < 0) port = e < cfg.num_cores ? static_cast<int>(kLocal)
                                               : static_cast<int>(kBusPort);
        net.set_route(r, e, static_cast<std::uint32_t>(port));
      }
    }
  }
  return net;
}

// ---------------------------------------------------------------------------
// 3-D Hybrid Bus-Tree (Madan et al., HPCA'09 flavour): an in-plane tree of
// routers (four quad routers + one root) and four vertical buses, each
// shared by the EIGHT banks above one quadrant — less hop count than the
// mesh but far more bus sharing, which is why it performs worst.
// ---------------------------------------------------------------------------
NocNetwork build_hybrid_bus_tree(const NocConfig& cfg) {
  NocNetwork net(cfg);
  constexpr std::uint32_t kUpPort = 4, kBusPort = 5;
  const double link = cfg.tree_link_mm;

  auto quad_of_core = [](NodeId c) { return static_cast<std::uint32_t>(c / 4); };
  auto quad_of_bank = [](std::uint32_t b) { return (b % 16) / 4; };

  std::array<std::uint32_t, 4> quad{};
  for (std::uint32_t q = 0; q < 4; ++q) quad[q] = net.add_router(6);
  const std::uint32_t root = net.add_router(4);

  for (std::uint32_t q = 0; q < 4; ++q) {
    net.set_output(quad[q], kUpPort, {Target::Kind::kRouterPort, root, q, link});
    net.set_output(root, q, {Target::Kind::kRouterPort, quad[q], kUpPort, link});
  }
  // Cores: four local ports per quad router.
  for (NodeId c = 0; c < cfg.num_cores; ++c) {
    const std::uint32_t q = quad_of_core(c);
    const std::uint32_t port = c % 4;
    net.set_output(quad[q], port, {Target::Kind::kEndpoint, c, 0, 0.6});
    net.set_endpoint_injection(c, {Target::Kind::kRouterPort, quad[q], port, 0.6});
  }
  // Buses: one per quadrant, eight banks each.
  for (std::uint32_t q = 0; q < 4; ++q) {
    const std::uint32_t bus = net.add_bus(0.08, cfg.quadrant_bus_cycles_per_flit);
    const std::uint32_t router_slot = net.add_bus_attachment(bus);
    net.set_output(quad[q], kBusPort, {Target::Kind::kBus, bus, router_slot, 0.04});
    for (std::uint32_t b = 0; b < cfg.num_banks; ++b) {
      if (quad_of_bank(b) != q) continue;
      const NodeId e = bank_endpoint(cfg, b);
      const std::uint32_t slot = net.add_bus_attachment(bus);
      net.set_endpoint_injection(e, {Target::Kind::kBus, bus, slot, 0.04}, slot);
      net.set_bus_route(bus, e, {Target::Kind::kEndpoint, e, 0, 0.04});
    }
    for (NodeId c = 0; c < cfg.num_cores; ++c) {
      net.set_bus_route(bus, c, {Target::Kind::kRouterPort, quad[q], kBusPort, 0.04});
    }
  }
  // Routing tables.
  for (std::uint32_t q = 0; q < 4; ++q) {
    for (NodeId e = 0; e < cfg.num_endpoints(); ++e) {
      std::uint32_t port;
      if (e < cfg.num_cores) {
        port = quad_of_core(e) == q ? e % 4 : kUpPort;
      } else {
        const std::uint32_t b = static_cast<std::uint32_t>(e - cfg.num_cores);
        port = quad_of_bank(b) == q ? kBusPort : kUpPort;
      }
      net.set_route(quad[q], e, port);
    }
  }
  for (NodeId e = 0; e < cfg.num_endpoints(); ++e) {
    const std::uint32_t q =
        e < cfg.num_cores
            ? quad_of_core(e)
            : quad_of_bank(static_cast<std::uint32_t>(e - cfg.num_cores));
    net.set_route(root, e, q);
  }
  return net;
}

}  // namespace mot3d::noc
