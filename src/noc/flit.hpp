// Flits and packets for the packet-switched 3-D NoC baselines.
//
// The paper compares its circuit-switched MoT against True 3-D Mesh,
// 3-D Hybrid Bus-Mesh [2] and 3-D Hybrid Bus-Tree [21]; all three are
// wormhole networks with 64-bit flits here.  A 32 B cache line is four
// data flits, so:  read request = 1 flit, write-back request = 1 + 4,
// read response = 1 + 4, write acknowledge = 1.
#pragma once

#include <cstdint>

#include "common/messages.hpp"
#include "common/types.hpp"

namespace mot3d::noc {

/// Endpoint id: cores are [0, num_cores), banks [num_cores, num_cores+banks).
using NodeId = std::uint32_t;
using PacketId = std::uint64_t;

enum class PacketKind : std::uint8_t { kRequest, kResponse };

struct Packet {
  PacketId id = 0;
  PacketKind kind = PacketKind::kRequest;
  NodeId src = 0;
  NodeId dst = 0;
  std::size_t length_flits = 1;
  Cycle created = 0;
  // Payload (one of the two is meaningful, per kind).
  MemRequest req;
  MemResponse resp;
};

struct Flit {
  PacketId packet = 0;
  NodeId dst = 0;        ///< destination endpoint (head carries the route)
  bool head = false;
  bool tail = false;
  std::uint8_t vc = 0;   ///< virtual network: 0 = request, 1 = response
  Cycle ready_at = 0;    ///< when this flit clears the current pipeline stage
};

/// Message-class virtual networks.  Requests and responses must not share
/// buffer queues, or a response worm stalled behind a request worm that
/// itself waits on the response's resources deadlocks the fabric (the
/// standard protocol-deadlock argument; see Dally & Towles ch. 14).
inline constexpr std::uint8_t kRequestVc = 0;
inline constexpr std::uint8_t kResponseVc = 1;
inline constexpr std::size_t kNumVcs = 2;

}  // namespace mot3d::noc
