// Liao-He-style interconnect power model [20]: wire switching, repeater
// dynamic + leakage, pipeline flip-flops, and (for the packet-switched
// baselines) router buffer/crossbar/arbiter energy.
#pragma once

#include <cstddef>
#include <cstdint>

#include "phys/wire.hpp"

namespace mot3d::power {

/// Per-router energy coefficients for the packet-switched NoCs (Orion-class
/// numbers for a 5-7 port 64-bit wormhole router at 45 nm).
struct RouterPowerParams {
  double buffer_write_pj_per_flit = 1.6;
  double buffer_read_pj_per_flit = 1.2;
  double crossbar_pj_per_flit = 2.4;
  double arbitration_pj_per_flit = 0.4;
  double leakage_mw = 1.8;  ///< per router instance
};

/// Energy helpers bridging the phys wire model to ledger entries.
class InterconnectPowerModel {
 public:
  InterconnectPowerModel(const phys::WireModel& wire, RouterPowerParams router = {})
      : wire_(wire), router_(router) {}

  /// Dynamic energy of moving `bits` across `mm` of repeated wire, pJ.
  double wire_transfer_pj(double mm, std::size_t bits) const {
    return wire_.switch_energy_fj_per_bit(mm) * 1e-3 * static_cast<double>(bits);
  }

  /// Leakage power of a `bits`-wide repeated bus of length `mm`, mW.
  double wire_leakage_mw(double mm, std::size_t bits) const {
    return wire_.leakage_uw_per_bit(mm) * 1e-3 * static_cast<double>(bits);
  }

  /// Energy of one flit traversing one router (write+read+xbar+arb), pJ.
  double router_hop_pj() const {
    return router_.buffer_write_pj_per_flit + router_.buffer_read_pj_per_flit +
           router_.crossbar_pj_per_flit + router_.arbitration_pj_per_flit;
  }

  double router_leakage_mw() const { return router_.leakage_mw; }

  const phys::WireModel& wire() const { return wire_; }
  const RouterPowerParams& router_params() const { return router_; }

 private:
  phys::WireModel wire_;
  RouterPowerParams router_;
};

}  // namespace mot3d::power
