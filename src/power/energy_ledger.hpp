// Energy accounting and energy-delay product (EDP).
//
// Mirrors the paper's metric: total energy of cores + L2 cache +
// interconnect over a run, multiplied by execution time.  DRAM energy is
// tracked but excluded from EDP, matching the paper ("to estimate power
// consumption of core, L2 cache, and interconnect we used [19][13][20]").
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace mot3d::power {

/// Components whose energy the ledger distinguishes.
enum class Component {
  kCore,
  kL1,
  kL2,
  kInterconnect,
  kDram,
};

inline const char* component_name(Component c) {
  switch (c) {
    case Component::kCore: return "core";
    case Component::kL1: return "l1";
    case Component::kL2: return "l2";
    case Component::kInterconnect: return "interconnect";
    case Component::kDram: return "dram";
  }
  return "?";
}

/// Per-component energy deltas between two ledger snapshots, pJ — the
/// "what happened since the last sample" view that interval consumers
/// (the thermal sampler, rate telemetry) need, so none of them re-diffs
/// running totals by hand.
struct EnergySample {
  static constexpr std::size_t kNumComponents = 5;

  std::array<double, kNumComponents> dynamic_pj{};
  std::array<double, kNumComponents> static_pj{};

  double dynamic(Component c) const {
    return dynamic_pj[static_cast<std::size_t>(c)];
  }
  double total(Component c) const {
    return dynamic(c) + static_pj[static_cast<std::size_t>(c)];
  }

  /// Average power of one component over an interval of `cycles` 1 ns
  /// cycles, in watts (pJ / ns == W).
  double power_w(Component c, Cycle cycles) const {
    return cycles == 0 ? 0.0 : total(c) / static_cast<double>(cycles);
  }
  double dynamic_power_w(Component c, Cycle cycles) const {
    return cycles == 0 ? 0.0 : dynamic(c) / static_cast<double>(cycles);
  }
};

/// Per-run energy totals in picojoules, split dynamic vs. static.
class EnergyLedger {
 public:
  EnergyLedger() : dynamic_pj_(kNumComponents, 0.0), static_pj_(kNumComponents, 0.0) {}

  void add_dynamic(Component c, double pj) { dynamic_pj_[index(c)] += pj; }
  void add_static(Component c, double pj) { static_pj_[index(c)] += pj; }

  double dynamic_pj(Component c) const { return dynamic_pj_[index(c)]; }
  double static_pj(Component c) const { return static_pj_[index(c)]; }
  double component_pj(Component c) const { return dynamic_pj(c) + static_pj(c); }

  /// Total energy counted toward EDP (everything except DRAM), pJ.
  double edp_energy_pj() const {
    double sum = 0.0;
    for (Component c : {Component::kCore, Component::kL1, Component::kL2,
                        Component::kInterconnect}) {
      sum += component_pj(c);
    }
    return sum;
  }

  /// Total including DRAM, pJ.
  double total_pj() const { return edp_energy_pj() + component_pj(Component::kDram); }

  /// EDP in picojoule-seconds for a run of `cycles` 1 ns cycles.
  double edp_pj_s(Cycle cycles) const {
    return edp_energy_pj() * static_cast<double>(cycles) * 1e-9;
  }

  /// Average power over `cycles` (EDP components only), in watts.
  double average_power_w(Cycle cycles) const {
    if (cycles == 0) return 0.0;
    return edp_energy_pj() * 1e-12 / (static_cast<double>(cycles) * 1e-9);
  }

  void merge(const EnergyLedger& other) {
    for (std::size_t i = 0; i < kNumComponents; ++i) {
      dynamic_pj_[i] += other.dynamic_pj_[i];
      static_pj_[i] += other.static_pj_[i];
    }
  }

  /// Registers one dynamic-energy counter per component under `prefix`
  /// (e.g. "energy.core_pj").  The probes read *this* ledger, so the
  /// owner must keep it refreshed (the cluster re-accumulates a scratch
  /// ledger in a MetricsRegistry prepare hook before each sample).
  void register_metrics(obs::MetricsRegistry& m,
                        const std::string& prefix) const {
    for (Component c : {Component::kCore, Component::kL1, Component::kL2,
                        Component::kInterconnect, Component::kDram}) {
      m.add(prefix + '.' + component_name(c) + "_pj",
            [this, c] { return dynamic_pj(c); });
    }
  }

  /// Per-component delta of this ledger relative to an `earlier` snapshot
  /// of the same accumulation.  The caller keeps the previous snapshot and
  /// asks for the delta each sampling interval.
  EnergySample delta_since(const EnergyLedger& earlier) const {
    EnergySample s;
    for (std::size_t i = 0; i < kNumComponents; ++i) {
      s.dynamic_pj[i] = dynamic_pj_[i] - earlier.dynamic_pj_[i];
      s.static_pj[i] = static_pj_[i] - earlier.static_pj_[i];
    }
    return s;
  }

 private:
  static constexpr std::size_t kNumComponents = 5;
  static_assert(kNumComponents == EnergySample::kNumComponents,
                "EnergySample's arrays are indexed with the ledger's "
                "component count — update both together");
  static std::size_t index(Component c) { return static_cast<std::size_t>(c); }

  std::vector<double> dynamic_pj_;
  std::vector<double> static_pj_;
};

}  // namespace mot3d::power
