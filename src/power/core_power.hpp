// McPAT-lite: power model for an ARM Cortex-A5-class in-order core.
//
// The paper uses McPAT [19] to estimate core power.  For an A5-class
// single-issue in-order core at 45 nm / 1 V / 1 GHz the McPAT-style
// decomposition collapses to three well-separated terms, which is all the
// EDP experiments need:
//   * dynamic energy per committed instruction (fetch/decode/execute),
//   * dynamic energy per L1 access (separate, since L1 size is a knob),
//   * static leakage while the core is powered (zero when power-gated).
// Cores waiting at a barrier spin on a flag (SPLASH-2 style), burning a
// configurable fraction of full dynamic power — this is exactly the waste
// that PC4-* power states recover by gating idle cores.
#pragma once

#include <cstdint>

#include "common/leakage.hpp"

namespace mot3d::power {

/// Per-core energy/power coefficients (45 nm, 1 V, 1 GHz defaults).
struct CorePowerParams {
  double energy_per_instr_pj = 90.0;   ///< pipeline energy per instruction
  double energy_per_l1_access_pj = 8.0;
  double leakage_mw = 12.0;            ///< while powered (incl. L1 leakage)
  double spin_fraction = 0.25;         ///< busy-wait dynamic vs. active
  double clock_tree_mw = 3.0;          ///< always-on while powered
};

/// Accumulates one core's energy over a run.
class CorePowerModel {
 public:
  explicit CorePowerModel(const CorePowerParams& p = {}) : p_(p) {}

  /// Dynamic energy of `instructions` committed instructions plus
  /// `l1_accesses` L1 lookups, in picojoules.
  double dynamic_pj(std::uint64_t instructions, std::uint64_t l1_accesses) const {
    return static_cast<double>(instructions) * p_.energy_per_instr_pj +
           static_cast<double>(l1_accesses) * p_.energy_per_l1_access_pj;
  }

  /// Dynamic energy burnt while spin-waiting for `cycles` cycles, in pJ
  /// (spinning executes ~1 instruction/cycle at reduced datapath activity).
  double spin_pj(std::uint64_t cycles) const {
    return static_cast<double>(cycles) * p_.energy_per_instr_pj * p_.spin_fraction;
  }

  /// Static energy over `cycles` cycles while powered (leakage + clock
  /// tree), in pJ; a power-gated core contributes zero.
  double static_pj(std::uint64_t cycles) const {
    // mW * ns == pJ.
    return static_cast<double>(cycles) * (p_.leakage_mw + p_.clock_tree_mw);
  }

  /// Core leakage at junction temperature `temp_c`, mW.  The clock tree is
  /// switching power, not sub-threshold leakage — it does not scale with
  /// temperature and is excluded here.
  double leakage_mw_at(double temp_c, const LeakageTempParams& temp = {}) const {
    return p_.leakage_mw * leakage_temp_scale(temp_c, temp);
  }

  /// Static energy over `cycles` cycles at junction temperature `temp_c`
  /// (temperature-scaled leakage + unscaled clock tree), in pJ.
  double static_pj_at(std::uint64_t cycles, double temp_c,
                      const LeakageTempParams& temp = {}) const {
    return static_cast<double>(cycles) *
           (leakage_mw_at(temp_c, temp) + p_.clock_tree_mw);
  }

  const CorePowerParams& params() const { return p_; }

 private:
  CorePowerParams p_;
};

}  // namespace mot3d::power
