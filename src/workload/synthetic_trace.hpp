// Deterministic synthetic trace generation from an AppProfile.
//
// A Workload instance describes one benchmark run on `num_threads` cores.
// All cores share one barrier-fenced phase plan (alternating parallel and
// serial phases; serial work runs on thread 0 while the others spin), so
// the Amdahl behaviour and the barrier spin energy emerge naturally in the
// core model rather than being asserted analytically.
//
// Generation is lazy — records are produced on demand, so a multi-million
// instruction run needs O(1) memory per core — and fully deterministic in
// (profile, num_threads, scale, seed).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "cpu/trace.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::workload {

/// The barrier-fenced execution skeleton shared by all cores of a run.
struct PhasePlan {
  struct Phase {
    bool serial = false;           ///< all work on thread 0
    std::uint64_t instructions = 0;///< total work in this phase
    std::uint32_t barrier_id = 0;  ///< barrier closing this phase
  };
  std::vector<Phase> phases;
  std::uint32_t num_barriers = 0;

  static PhasePlan build(const AppProfile& profile, double scale);
};

/// Address-space layout constants for the synthetic streams.
struct AddressMap {
  static constexpr Addr kPrivateBase = 0x4000'0000;
  /// 2 MB per core slot, staggered by 40 KB so that different cores'
  /// private regions land on different L2 sets.  (The L2 set period is
  /// 32 banks * 256 sets * 32 B = 256 KB; an exact 2 MB stride would alias
  /// every core onto the same sets.  Real systems get this spread from
  /// page-colouring in the OS's virtual-to-physical mapping.)
  static constexpr Addr kPrivateStride = 0x0020'0000 + 0x0000'A000;
  static constexpr Addr kSharedBase = 0x8000'0000;
  static constexpr Addr kCodeBase = 0x0001'0000;

  static Addr private_base(std::size_t thread) {
    return kPrivateBase + static_cast<Addr>(thread) * kPrivateStride;
  }
};

/// Per-core lazy record stream.
class SyntheticTrace final : public cpu::TraceSource {
 public:
  SyntheticTrace(const AppProfile& profile, const PhasePlan& plan,
                 std::size_t thread, std::size_t num_threads, std::uint64_t seed);

  cpu::TraceRecord next() override;

 private:
  /// One data reference with its operation: coherent sharing patterns must
  /// correlate op and address (a producer *writes* its chunk), which the
  /// independent op/addr draws of the legacy stream cannot express.
  struct DataAccess {
    MemOp op = MemOp::kLoad;
    Addr addr = 0;
  };

  void refill();
  std::uint64_t phase_share(std::size_t phase_idx) const;
  Addr next_data_addr();
  Addr next_code_addr();

  // -- region walkers shared by the legacy and coherent paths (exact RNG
  //    draw order preserved for kNone profiles) --
  MemOp draw_op();
  Addr stack_addr();
  Addr shared_walk_addr();
  Addr private_addr();

  /// Pattern-specific (op, addr) for profiles with a sharing pattern.
  DataAccess next_coherent_access();

  const AppProfile& profile_;
  const PhasePlan& plan_;
  std::size_t thread_;
  std::size_t num_threads_;
  std::uint64_t seed_;
  Rng rng_;

  std::size_t phase_idx_ = 0;
  std::uint64_t share_remaining_ = 0;
  bool phase_initialised_ = false;
  double ifetch_credit_ = 0.0;

  // spatial-locality walkers
  Addr private_ptr_;
  Addr shared_ptr_;
  Addr code_ptr_;
  Addr stack_ptr_;
  std::uint32_t private_run_ = 0;
  std::uint32_t shared_run_ = 0;

  // sharing-pattern walkers (coherent profiles only)
  Addr prod_off_ = 0;               ///< producer-consumer: own-chunk cursor
  Addr cons_off_ = 0;               ///< producer-consumer: peer-chunk cursor
  std::uint64_t migr_obj_ = 0;      ///< migratory: current record
  std::uint32_t migr_phase_ = 0;    ///< migratory: read/modify alternation
  std::size_t a2a_peer_ = 0;        ///< all-to-all: peer slot being read
  Addr a2a_own_off_ = 0;
  Addr a2a_peer_off_ = 0;

  std::deque<cpu::TraceRecord> buffer_;
};

/// One benchmark run: builds the shared plan and per-core streams.
class Workload {
 public:
  /// `scale` multiplies the profile's work_instructions (benches use < 1 to
  /// keep runs fast; results are shape-stable in scale).
  Workload(AppProfile profile, std::size_t num_threads, double scale,
           std::uint64_t seed);

  /// Stream for thread `t` (0-based).  Each call creates a fresh,
  /// independent generator over the same plan.
  std::unique_ptr<SyntheticTrace> make_trace(std::size_t thread) const;

  std::size_t num_threads() const { return num_threads_; }
  const AppProfile& profile() const { return profile_; }
  const PhasePlan& plan() const { return plan_; }

 private:
  AppProfile profile_;
  std::size_t num_threads_;
  std::uint64_t seed_;
  PhasePlan plan_;
};

}  // namespace mot3d::workload
