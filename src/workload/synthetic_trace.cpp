#include "workload/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>

namespace mot3d::workload {

using cpu::TraceKind;
using cpu::TraceRecord;

PhasePlan PhasePlan::build(const AppProfile& profile, double scale) {
  PhasePlan plan;
  const auto total = static_cast<std::uint64_t>(
      static_cast<double>(profile.work_instructions) * scale);
  const auto serial_total =
      static_cast<std::uint64_t>(static_cast<double>(total) * profile.serial_fraction);
  const std::uint64_t parallel_total = total - serial_total;
  const std::size_t n = std::max<std::size_t>(profile.phases, 1);

  std::uint32_t bid = 0;
  for (std::size_t p = 0; p < n; ++p) {
    // Parallel slice then its serial successor, each fenced by a barrier —
    // the classic SPLASH-2 "compute / reduce" alternation.
    plan.phases.push_back(Phase{false, parallel_total / n, bid++});
    const std::uint64_t ser = serial_total / n;
    if (ser > 0) plan.phases.push_back(Phase{true, ser, bid++});
  }
  plan.num_barriers = bid;
  return plan;
}

SyntheticTrace::SyntheticTrace(const AppProfile& profile, const PhasePlan& plan,
                               std::size_t thread, std::size_t num_threads,
                               std::uint64_t seed)
    : profile_(profile),
      plan_(plan),
      thread_(thread),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      seed_(seed),
      rng_(seed ^ (0x9E3779B97F4A7C15ULL * (thread + 1))),
      private_ptr_(AddressMap::private_base(thread)),
      shared_ptr_(AddressMap::kSharedBase),
      code_ptr_(AddressMap::kCodeBase),
      stack_ptr_(AddressMap::private_base(thread)) {}

std::uint64_t SyntheticTrace::phase_share(std::size_t phase_idx) const {
  const PhasePlan::Phase& ph = plan_.phases[phase_idx];
  if (ph.serial) return thread_ == 0 ? ph.instructions : 0;
  const double base =
      static_cast<double>(ph.instructions) / static_cast<double>(num_threads_);
  // Deterministic per-(phase, thread) jitter models load imbalance; the
  // slowest core sets the phase length, so imbalance directly hurts
  // scalability (raytrace/cholesky are the imbalanced ones).
  SplitMix64 h(seed_ ^ (phase_idx * 0x100000001B3ULL) ^ (thread_ * 0x1000193ULL));
  const double u =
      static_cast<double>(h.next() >> 11) * 0x1.0p-53;  // [0,1)
  const double factor = 1.0 + profile_.imbalance * (2.0 * u - 1.0);
  return static_cast<std::uint64_t>(std::max(1.0, base * factor));
}

Addr SyntheticTrace::next_data_addr() {
  // Stack/spill traffic: a tiny per-core region at the bottom of the
  // private range, hot enough to live in the L1 permanently.
  if (rng_.next_bool(profile_.stack_fraction)) {
    stack_ptr_ += 4;
    if (stack_ptr_ >= AddressMap::private_base(thread_) + profile_.stack_bytes ||
        rng_.next_bool(0.2)) {
      stack_ptr_ = AddressMap::private_base(thread_) +
                   rng_.next_below(profile_.stack_bytes / 4) * 4;
    }
    return stack_ptr_;
  }
  const bool shared = rng_.next_bool(profile_.shared_fraction);
  if (shared) {
    if (shared_run_ == 0) {
      const Addr ws = profile_.working_set_bytes;
      Addr offset;
      if (rng_.next_bool(profile_.hot_access_prob)) {
        const Addr hot =
            std::max<Addr>(64, static_cast<Addr>(static_cast<double>(ws) *
                                                 profile_.hot_fraction));
        offset = rng_.next_below(hot / 4) * 4;
      } else {
        offset = rng_.next_below(ws / 4) * 4;
      }
      shared_ptr_ = AddressMap::kSharedBase + offset;
      shared_run_ = 1 + static_cast<std::uint32_t>(
                            rng_.next_below(static_cast<std::uint64_t>(
                                2.0 * profile_.seq_run_mean)));
    }
    --shared_run_;
    const Addr a = shared_ptr_;
    shared_ptr_ += 4;
    if (shared_ptr_ >= AddressMap::kSharedBase + profile_.working_set_bytes) {
      shared_ptr_ = AddressMap::kSharedBase;
    }
    return a;
  }
  if (private_run_ == 0) {
    const Addr offset = rng_.next_below(profile_.private_bytes / 4) * 4;
    private_ptr_ = AddressMap::private_base(thread_) + offset;
    private_run_ = 1 + static_cast<std::uint32_t>(rng_.next_below(
                           static_cast<std::uint64_t>(2.0 * profile_.seq_run_mean)));
  }
  --private_run_;
  const Addr a = private_ptr_;
  private_ptr_ += 4;
  if (private_ptr_ >= AddressMap::private_base(thread_) + profile_.private_bytes) {
    private_ptr_ = AddressMap::private_base(thread_);
  }
  return a;
}

Addr SyntheticTrace::next_code_addr() {
  // Sequential fetch with occasional taken branches looping inside the
  // code footprint.
  if (rng_.next_bool(0.15)) {
    code_ptr_ = AddressMap::kCodeBase + rng_.next_below(profile_.code_bytes / 32) * 32;
  } else {
    code_ptr_ += 32;
    if (code_ptr_ >= AddressMap::kCodeBase + profile_.code_bytes) {
      code_ptr_ = AddressMap::kCodeBase;
    }
  }
  return code_ptr_;
}

void SyntheticTrace::refill() {
  while (buffer_.empty()) {
    if (phase_idx_ >= plan_.phases.size()) {
      buffer_.push_back(TraceRecord::end());
      return;
    }
    if (!phase_initialised_) {
      share_remaining_ = phase_share(phase_idx_);
      phase_initialised_ = true;
    }
    if (share_remaining_ == 0) {
      buffer_.push_back(TraceRecord::barrier(plan_.phases[phase_idx_].barrier_id));
      ++phase_idx_;
      phase_initialised_ = false;
      return;
    }

    // Instruction fetch pressure: one I-fetch record per ~ifetch_every
    // instructions, charged against a running credit.
    if (ifetch_credit_ <= 0.0) {
      buffer_.push_back(TraceRecord::mem(MemOp::kInstrFetch, next_code_addr()));
      ifetch_credit_ += profile_.ifetch_every;
    }

    // A compute burst followed by one memory operation.
    const double mean_burst =
        std::max(1.0, (1.0 - profile_.mem_fraction) / profile_.mem_fraction);
    const auto burst_draw = static_cast<std::uint64_t>(
        1 + rng_.next_below(static_cast<std::uint64_t>(2.0 * mean_burst)));
    const std::uint64_t burst = std::min<std::uint64_t>(burst_draw, share_remaining_);
    buffer_.push_back(TraceRecord::compute(static_cast<std::uint32_t>(burst)));
    share_remaining_ -= burst;
    ifetch_credit_ -= static_cast<double>(burst);

    if (share_remaining_ > 0) {
      const MemOp op =
          rng_.next_bool(profile_.read_fraction) ? MemOp::kLoad : MemOp::kStore;
      buffer_.push_back(TraceRecord::mem(op, next_data_addr()));
      --share_remaining_;
      ifetch_credit_ -= 1.0;
    }
  }
}

TraceRecord SyntheticTrace::next() {
  if (buffer_.empty()) refill();
  const TraceRecord r = buffer_.front();
  buffer_.pop_front();
  return r;
}

Workload::Workload(AppProfile profile, std::size_t num_threads, double scale,
                   std::uint64_t seed)
    : profile_(std::move(profile)),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      seed_(seed),
      plan_(PhasePlan::build(profile_, scale)) {}

std::unique_ptr<SyntheticTrace> Workload::make_trace(std::size_t thread) const {
  return std::make_unique<SyntheticTrace>(profile_, plan_, thread, num_threads_,
                                          seed_);
}

}  // namespace mot3d::workload
