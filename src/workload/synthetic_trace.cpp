#include "workload/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>

namespace mot3d::workload {

using cpu::TraceKind;
using cpu::TraceRecord;

PhasePlan PhasePlan::build(const AppProfile& profile, double scale) {
  PhasePlan plan;
  const auto total = static_cast<std::uint64_t>(
      static_cast<double>(profile.work_instructions) * scale);
  const auto serial_total =
      static_cast<std::uint64_t>(static_cast<double>(total) * profile.serial_fraction);
  const std::uint64_t parallel_total = total - serial_total;
  const std::size_t n = std::max<std::size_t>(profile.phases, 1);

  std::uint32_t bid = 0;
  for (std::size_t p = 0; p < n; ++p) {
    // Parallel slice then its serial successor, each fenced by a barrier —
    // the classic SPLASH-2 "compute / reduce" alternation.
    plan.phases.push_back(Phase{false, parallel_total / n, bid++});
    const std::uint64_t ser = serial_total / n;
    if (ser > 0) plan.phases.push_back(Phase{true, ser, bid++});
  }
  plan.num_barriers = bid;
  return plan;
}

SyntheticTrace::SyntheticTrace(const AppProfile& profile, const PhasePlan& plan,
                               std::size_t thread, std::size_t num_threads,
                               std::uint64_t seed)
    : profile_(profile),
      plan_(plan),
      thread_(thread),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      seed_(seed),
      rng_(seed ^ (0x9E3779B97F4A7C15ULL * (thread + 1))),
      private_ptr_(AddressMap::private_base(thread)),
      shared_ptr_(AddressMap::kSharedBase),
      code_ptr_(AddressMap::kCodeBase),
      stack_ptr_(AddressMap::private_base(thread)) {}

std::uint64_t SyntheticTrace::phase_share(std::size_t phase_idx) const {
  const PhasePlan::Phase& ph = plan_.phases[phase_idx];
  if (ph.serial) return thread_ == 0 ? ph.instructions : 0;
  const double base =
      static_cast<double>(ph.instructions) / static_cast<double>(num_threads_);
  // Deterministic per-(phase, thread) jitter models load imbalance; the
  // slowest core sets the phase length, so imbalance directly hurts
  // scalability (raytrace/cholesky are the imbalanced ones).
  SplitMix64 h(seed_ ^ (phase_idx * 0x100000001B3ULL) ^ (thread_ * 0x1000193ULL));
  const double u =
      static_cast<double>(h.next() >> 11) * 0x1.0p-53;  // [0,1)
  const double factor = 1.0 + profile_.imbalance * (2.0 * u - 1.0);
  return static_cast<std::uint64_t>(std::max(1.0, base * factor));
}

MemOp SyntheticTrace::draw_op() {
  return rng_.next_bool(profile_.read_fraction) ? MemOp::kLoad : MemOp::kStore;
}

Addr SyntheticTrace::stack_addr() {
  // Stack/spill traffic: a tiny per-core region at the bottom of the
  // private range, hot enough to live in the L1 permanently.
  stack_ptr_ += 4;
  if (stack_ptr_ >= AddressMap::private_base(thread_) + profile_.stack_bytes ||
      rng_.next_bool(0.2)) {
    stack_ptr_ = AddressMap::private_base(thread_) +
                 rng_.next_below(profile_.stack_bytes / 4) * 4;
  }
  return stack_ptr_;
}

Addr SyntheticTrace::shared_walk_addr() {
  if (shared_run_ == 0) {
    const Addr ws = profile_.working_set_bytes;
    Addr offset;
    if (rng_.next_bool(profile_.hot_access_prob)) {
      const Addr hot =
          std::max<Addr>(64, static_cast<Addr>(static_cast<double>(ws) *
                                               profile_.hot_fraction));
      offset = rng_.next_below(hot / 4) * 4;
    } else {
      offset = rng_.next_below(ws / 4) * 4;
    }
    shared_ptr_ = AddressMap::kSharedBase + offset;
    shared_run_ = 1 + static_cast<std::uint32_t>(
                          rng_.next_below(static_cast<std::uint64_t>(
                              2.0 * profile_.seq_run_mean)));
  }
  --shared_run_;
  const Addr a = shared_ptr_;
  shared_ptr_ += 4;
  if (shared_ptr_ >= AddressMap::kSharedBase + profile_.working_set_bytes) {
    shared_ptr_ = AddressMap::kSharedBase;
  }
  return a;
}

Addr SyntheticTrace::private_addr() {
  if (private_run_ == 0) {
    const Addr offset = rng_.next_below(profile_.private_bytes / 4) * 4;
    private_ptr_ = AddressMap::private_base(thread_) + offset;
    private_run_ = 1 + static_cast<std::uint32_t>(rng_.next_below(
                           static_cast<std::uint64_t>(2.0 * profile_.seq_run_mean)));
  }
  --private_run_;
  const Addr a = private_ptr_;
  private_ptr_ += 4;
  if (private_ptr_ >= AddressMap::private_base(thread_) + profile_.private_bytes) {
    private_ptr_ = AddressMap::private_base(thread_);
  }
  return a;
}

Addr SyntheticTrace::next_data_addr() {
  if (rng_.next_bool(profile_.stack_fraction)) return stack_addr();
  const bool shared = rng_.next_bool(profile_.shared_fraction);
  if (shared) return shared_walk_addr();
  return private_addr();
}

SyntheticTrace::DataAccess SyntheticTrace::next_coherent_access() {
  // Cache-line granularity of the Table I hierarchy; the sharing patterns
  // are phrased in lines because that is the coherence unit.
  constexpr Addr kLine = 32;

  if (rng_.next_bool(profile_.stack_fraction)) {
    return {draw_op(), stack_addr()};
  }
  if (!rng_.next_bool(profile_.shared_fraction)) {
    return {draw_op(), private_addr()};
  }

  switch (profile_.sharing) {
    case SharingPattern::kReadMostly: {
      // Everybody reads a common table; rare updates invalidate the
      // (wide) sharer sets the reads build up.
      const bool update = rng_.next_bool(profile_.sharing_write_fraction);
      return {update ? MemOp::kStore : MemOp::kLoad, shared_walk_addr()};
    }

    case SharingPattern::kProducerConsumer: {
      // The shared region is split into one chunk per thread: thread t
      // streams stores through chunk t and loads through chunk t+1, so
      // every line ping-pongs M -> (forward-invalidate) -> consumer.
      const Addr chunk = std::max<Addr>(
          kLine, (profile_.working_set_bytes / num_threads_) & ~(kLine - 1));
      if (rng_.next_bool(0.5)) {
        const Addr a = AddressMap::kSharedBase +
                       static_cast<Addr>(thread_) * chunk + prod_off_;
        prod_off_ = (prod_off_ + 4) % chunk;
        return {MemOp::kStore, a};
      }
      const std::size_t upstream = (thread_ + 1) % num_threads_;
      const Addr a = AddressMap::kSharedBase +
                     static_cast<Addr>(upstream) * chunk + cons_off_;
      cons_off_ = (cons_off_ + 4) % chunk;
      return {MemOp::kLoad, a};
    }

    case SharingPattern::kMigratory: {
      // Line-sized records read-modify-written by one core at a time; a
      // record hand-off moves the dirty line core-to-core through the
      // directory's forward-invalidate path.
      if (migr_phase_ == 0 || rng_.next_bool(0.15)) {
        migr_obj_ = rng_.next_below(profile_.migratory_objects);
      }
      const Addr a = AddressMap::kSharedBase + migr_obj_ * kLine +
                     static_cast<Addr>((migr_phase_ >> 1) % (kLine / 4)) * 4;
      const MemOp op = (migr_phase_ & 1) != 0 ? MemOp::kStore : MemOp::kLoad;
      ++migr_phase_;
      return {op, a};
    }

    case SharingPattern::kAllToAll: {
      // Barrier-data exchange: each core publishes into its own slot and
      // sweeps every peer's slot, so writers hit full-width sharer sets.
      const Addr slot = static_cast<Addr>(profile_.slot_lines_per_core) * kLine;
      if (num_threads_ > 1 && a2a_peer_ == thread_) {
        a2a_peer_ = (a2a_peer_ + 1) % num_threads_;
      }
      if (num_threads_ == 1 || rng_.next_bool(0.5)) {
        const Addr a = AddressMap::kSharedBase +
                       static_cast<Addr>(thread_) * slot + a2a_own_off_;
        a2a_own_off_ = (a2a_own_off_ + 4) % slot;
        return {MemOp::kStore, a};
      }
      const Addr a = AddressMap::kSharedBase +
                     static_cast<Addr>(a2a_peer_) * slot + a2a_peer_off_;
      a2a_peer_off_ += 4;
      if (a2a_peer_off_ >= slot) {
        a2a_peer_off_ = 0;
        a2a_peer_ = (a2a_peer_ + 1) % num_threads_;
        if (a2a_peer_ == thread_) a2a_peer_ = (a2a_peer_ + 1) % num_threads_;
      }
      return {MemOp::kLoad, a};
    }

    case SharingPattern::kNone:
      break;  // unreachable: the coherent path is gated on coherent()
  }
  return {draw_op(), shared_walk_addr()};
}

Addr SyntheticTrace::next_code_addr() {
  // Sequential fetch with occasional taken branches looping inside the
  // code footprint.
  if (rng_.next_bool(0.15)) {
    code_ptr_ = AddressMap::kCodeBase + rng_.next_below(profile_.code_bytes / 32) * 32;
  } else {
    code_ptr_ += 32;
    if (code_ptr_ >= AddressMap::kCodeBase + profile_.code_bytes) {
      code_ptr_ = AddressMap::kCodeBase;
    }
  }
  return code_ptr_;
}

void SyntheticTrace::refill() {
  while (buffer_.empty()) {
    if (phase_idx_ >= plan_.phases.size()) {
      buffer_.push_back(TraceRecord::end());
      return;
    }
    if (!phase_initialised_) {
      share_remaining_ = phase_share(phase_idx_);
      phase_initialised_ = true;
    }
    if (share_remaining_ == 0) {
      buffer_.push_back(TraceRecord::barrier(plan_.phases[phase_idx_].barrier_id));
      ++phase_idx_;
      phase_initialised_ = false;
      return;
    }

    // Instruction fetch pressure: one I-fetch record per ~ifetch_every
    // instructions, charged against a running credit.
    if (ifetch_credit_ <= 0.0) {
      buffer_.push_back(TraceRecord::mem(MemOp::kInstrFetch, next_code_addr()));
      ifetch_credit_ += profile_.ifetch_every;
    }

    // A compute burst followed by one memory operation.
    const double mean_burst =
        std::max(1.0, (1.0 - profile_.mem_fraction) / profile_.mem_fraction);
    const auto burst_draw = static_cast<std::uint64_t>(
        1 + rng_.next_below(static_cast<std::uint64_t>(2.0 * mean_burst)));
    const std::uint64_t burst = std::min<std::uint64_t>(burst_draw, share_remaining_);
    buffer_.push_back(TraceRecord::compute(static_cast<std::uint32_t>(burst)));
    share_remaining_ -= burst;
    ifetch_credit_ -= static_cast<double>(burst);

    if (share_remaining_ > 0) {
      if (profile_.coherent()) {
        const DataAccess a = next_coherent_access();
        buffer_.push_back(TraceRecord::mem(a.op, a.addr));
      } else {
        const MemOp op = draw_op();  // same draw order as ever: op, then addr
        buffer_.push_back(TraceRecord::mem(op, next_data_addr()));
      }
      --share_remaining_;
      ifetch_credit_ -= 1.0;
    }
  }
}

TraceRecord SyntheticTrace::next() {
  if (buffer_.empty()) refill();
  const TraceRecord r = buffer_.front();
  buffer_.pop_front();
  return r;
}

Workload::Workload(AppProfile profile, std::size_t num_threads, double scale,
                   std::uint64_t seed)
    : profile_(std::move(profile)),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      seed_(seed),
      plan_(PhasePlan::build(profile_, scale)) {}

std::unique_ptr<SyntheticTrace> Workload::make_trace(std::size_t thread) const {
  return std::make_unique<SyntheticTrace>(profile_, plan_, thread, num_threads_,
                                          seed_);
}

}  // namespace mot3d::workload
