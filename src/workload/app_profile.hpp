// SPLASH-2 application profiles (substitute for ref [12]).
//
// The paper's conclusions rest on two per-application axes:
//
//  1. *Parallelism scalability* — Fig. 7(b): fmm, radix, ocean_contiguous
//     and water-nsquared keep scaling to 16 cores (up to 69 % / avg 64 %
//     faster than on 4 cores), while cholesky, fft, volrend and raytrace
//     are limited (up to 33 % / avg 19 %).  We encode this as an Amdahl
//     serial fraction plus per-phase load imbalance around barriers.
//
//  2. *L2 capacity demand* — Fig. 7(a): with 8 of 32 banks powered
//     (PC16-MB8, 512 KB of L2) fft, fmm, volrend, raytrace and
//     water-nsquared still fit (exec +4.7 % avg) whereas cholesky, radix
//     and ocean_contiguous thrash (+24 % avg).  We encode this as the
//     shared working-set size plus a hot-subset locality model.
//
// Every other field shapes the memory reference stream (compute/memory mix,
// read ratio, spatial-run locality, code footprint) to SPLASH-2-like
// first-order statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mot3d::workload {

/// Inter-core sharing structure of the shared region (src/coherence/).
/// kNone keeps the pre-coherence reference stream bit-for-bit and leaves
/// the directory detached; every other pattern correlates the op and the
/// address of shared accesses to provoke a characteristic invalidation /
/// upgrade / data-forward mix on the fabric.
enum class SharingPattern : std::uint8_t {
  kNone,              ///< uncoordinated shared reads/writes (legacy model)
  kReadMostly,        ///< all cores read a common table; rare global updates
  kProducerConsumer,  ///< core t writes chunk t, core t+1 reads it
  kMigratory,         ///< line-sized records read-modify-written in turns
  kAllToAll,          ///< every core writes its slot, reads everyone else's
};

const char* sharing_pattern_name(SharingPattern p);

struct AppProfile {
  std::string name;

  // -- parallelism structure --
  double serial_fraction = 0.05;   ///< Amdahl serial share of total work
  std::size_t phases = 16;         ///< parallel phases (each barrier-fenced)
  double imbalance = 0.15;         ///< per-core work jitter within a phase

  // -- instruction mix --
  double mem_fraction = 0.30;      ///< loads+stores per instruction
  double read_fraction = 0.70;     ///< loads among memory ops
  double ifetch_every = 12.0;      ///< one I-fetch record per N instructions

  // -- data footprint / locality --
  std::size_t working_set_bytes = 256 * 1024;  ///< shared region
  double hot_fraction = 0.25;      ///< hot subset size / working set
  double hot_access_prob = 0.55;   ///< P(shared access hits hot subset)
  double shared_fraction = 0.55;   ///< P(mem op targets shared region)
  std::size_t private_bytes = 16 * 1024;       ///< per-core private region
  double seq_run_mean = 8.0;       ///< mean sequential 4 B-word run length
  /// P(mem op hits the per-core stack/spill region, ~1 KB, L1-resident):
  /// register-spill and call-frame traffic that gives real codes their
  /// high L1 temporal locality.
  double stack_fraction = 0.30;
  std::size_t stack_bytes = 1024;

  // -- instruction footprint --
  std::size_t code_bytes = 4 * 1024;

  // -- size --
  std::uint64_t work_instructions = 2'000'000;  ///< total work at scale 1.0

  // -- inter-core sharing (coherence subsystem knobs) --
  SharingPattern sharing = SharingPattern::kNone;
  /// kReadMostly: P(a shared access is a global-table update).
  double sharing_write_fraction = 0.05;
  /// kMigratory: number of line-sized migratory records.
  std::size_t migratory_objects = 64;
  /// kAllToAll: per-core slot size in cache lines.
  std::size_t slot_lines_per_core = 8;

  /// A sharing pattern engages the directory-MESI coherence subsystem.
  bool coherent() const { return sharing != SharingPattern::kNone; }

  /// True if the app keeps scaling to 16 cores (paper's fmm/radix/ocean/
  /// water group).
  bool scalable() const { return serial_fraction < 0.15; }

  /// Approximate L2 footprint: shared working set + per-core private data.
  std::size_t l2_footprint_bytes(std::size_t cores) const {
    return working_set_bytes + cores * private_bytes;
  }
};

/// The eight SPLASH-2 programs the paper evaluates (Figs. 6-8).
const std::vector<AppProfile>& splash2_profiles();

/// The four sharing-pattern microworkloads of the coherence_sharing
/// scenario (read_mostly, producer_consumer, migratory, all_to_all).
const std::vector<AppProfile>& sharing_profiles();

/// Lookup by name over SPLASH-2 and sharing profiles; throws
/// std::out_of_range if unknown.
const AppProfile& profile_by_name(const std::string& name);

/// Names in the paper's presentation order.
std::vector<std::string> splash2_names();

/// Sharing-workload names in registry order.
std::vector<std::string> sharing_profile_names();

}  // namespace mot3d::workload
