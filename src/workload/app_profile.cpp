#include "workload/app_profile.hpp"

#include <stdexcept>

namespace mot3d::workload {

namespace {

std::vector<AppProfile> make_profiles() {
  std::vector<AppProfile> apps;

  // -- limited-scalability group (cholesky, fft, volrend, raytrace) --
  // Serial fractions chosen so 4->16 cores buys ~19 % on average (<= 33 %),
  // matching Fig. 7(b)'s description.

  apps.push_back(AppProfile{
      .name = "cholesky",
      .serial_fraction = 0.38,
      .phases = 24,
      .imbalance = 0.30,
      .mem_fraction = 0.32,
      .read_fraction = 0.72,
      .ifetch_every = 12.0,
      .working_set_bytes = 768 * 1024,  // capacity-hungry: thrashes MB8
      .hot_fraction = 0.60,
      .hot_access_prob = 0.60,
      .shared_fraction = 0.60,
      .private_bytes = 24 * 1024,
      .seq_run_mean = 6.0,
      .code_bytes = 4 * 1024,
      .work_instructions = 2'400'000,
  });

  apps.push_back(AppProfile{
      .name = "fft",
      .serial_fraction = 0.30,
      .phases = 12,
      .imbalance = 0.10,
      .mem_fraction = 0.30,
      .read_fraction = 0.65,
      .ifetch_every = 12.0,
      .working_set_bytes = 256 * 1024,  // fits 8 banks (tightly)
      .hot_fraction = 0.20,
      .hot_access_prob = 0.50,
      .shared_fraction = 0.60,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 12.0,
      .code_bytes = 3 * 1024,
      .work_instructions = 2'000'000,
  });

  apps.push_back(AppProfile{
      .name = "volrend",
      .serial_fraction = 0.36,
      .phases = 20,
      .imbalance = 0.25,
      .mem_fraction = 0.28,
      .read_fraction = 0.80,
      .ifetch_every = 10.0,
      .working_set_bytes = 224 * 1024,
      .hot_fraction = 0.30,
      .hot_access_prob = 0.60,
      .shared_fraction = 0.50,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 4 * 1024,
      .work_instructions = 1'800'000,
  });

  apps.push_back(AppProfile{
      .name = "raytrace",
      .serial_fraction = 0.28,
      .phases = 16,
      .imbalance = 0.30,
      .mem_fraction = 0.30,
      .read_fraction = 0.85,
      .ifetch_every = 10.0,
      .working_set_bytes = 256 * 1024,
      .hot_fraction = 0.25,
      .hot_access_prob = 0.55,
      .shared_fraction = 0.55,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 6.0,
      .code_bytes = 4 * 1024,
      .work_instructions = 2'200'000,
  });

  // -- scalable group (fmm, radix, ocean_contiguous, water-nsquared) --
  // Tiny serial fractions: 4->16 cores buys ~64 % on average (<= 69 %).

  apps.push_back(AppProfile{
      .name = "fmm",
      .serial_fraction = 0.015,
      .phases = 16,
      .imbalance = 0.15,
      .mem_fraction = 0.28,
      .read_fraction = 0.75,
      .ifetch_every = 12.0,
      .working_set_bytes = 256 * 1024,
      .hot_fraction = 0.30,
      .hot_access_prob = 0.60,
      .shared_fraction = 0.50,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 4 * 1024,
      .work_instructions = 2'600'000,
  });

  apps.push_back(AppProfile{
      .name = "radix",
      .serial_fraction = 0.020,
      .phases = 10,
      .imbalance = 0.05,
      .mem_fraction = 0.35,
      .read_fraction = 0.55,
      .ifetch_every = 14.0,
      .working_set_bytes = 896 * 1024,  // capacity-hungry
      .hot_fraction = 0.55,
      .hot_access_prob = 0.55,
      .shared_fraction = 0.70,
      .private_bytes = 20 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 2 * 1024,
      .work_instructions = 2'400'000,
  });

  apps.push_back(AppProfile{
      .name = "ocean_contiguous",
      .serial_fraction = 0.020,
      .phases = 28,
      .imbalance = 0.10,
      .mem_fraction = 0.33,
      .read_fraction = 0.70,
      .ifetch_every = 14.0,
      .working_set_bytes = 1024 * 1024,  // capacity-hungry
      .hot_fraction = 0.55,
      .hot_access_prob = 0.60,
      .shared_fraction = 0.75,
      .private_bytes = 16 * 1024,
      .seq_run_mean = 6.0,
      .code_bytes = 4 * 1024,
      .work_instructions = 2'800'000,
  });

  apps.push_back(AppProfile{
      .name = "water_nsquared",
      .serial_fraction = 0.015,
      .phases = 14,
      .imbalance = 0.20,
      .mem_fraction = 0.27,
      .read_fraction = 0.78,
      .ifetch_every = 12.0,
      .working_set_bytes = 224 * 1024,
      .hot_fraction = 0.30,
      .hot_access_prob = 0.60,
      .shared_fraction = 0.50,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 4 * 1024,
      .work_instructions = 2'400'000,
  });

  return apps;
}

// The coherence_sharing microworkloads: one profile per sharing pattern.
// Footprints are modest (the point is the invalidation traffic, not L2
// capacity pressure) and the instruction budgets small enough that the
// golden-pinned runs stay quick.
std::vector<AppProfile> make_sharing_profiles() {
  std::vector<AppProfile> apps;

  apps.push_back(AppProfile{
      .name = "read_mostly",
      .serial_fraction = 0.02,
      .phases = 8,
      .imbalance = 0.10,
      .mem_fraction = 0.30,
      .read_fraction = 0.75,
      .ifetch_every = 12.0,
      .working_set_bytes = 128 * 1024,
      .hot_fraction = 0.25,
      .hot_access_prob = 0.60,
      .shared_fraction = 0.55,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 3 * 1024,
      .work_instructions = 1'200'000,
      .sharing = SharingPattern::kReadMostly,
      .sharing_write_fraction = 0.04,
  });

  apps.push_back(AppProfile{
      .name = "producer_consumer",
      .serial_fraction = 0.02,
      .phases = 12,
      .imbalance = 0.10,
      .mem_fraction = 0.32,
      .read_fraction = 0.65,
      .ifetch_every = 12.0,
      .working_set_bytes = 128 * 1024,
      .hot_fraction = 0.25,
      .hot_access_prob = 0.55,
      .shared_fraction = 0.55,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 3 * 1024,
      .work_instructions = 1'200'000,
      .sharing = SharingPattern::kProducerConsumer,
  });

  apps.push_back(AppProfile{
      .name = "migratory",
      .serial_fraction = 0.02,
      .phases = 8,
      .imbalance = 0.15,
      .mem_fraction = 0.30,
      .read_fraction = 0.70,
      .ifetch_every = 12.0,
      .working_set_bytes = 128 * 1024,
      .hot_fraction = 0.25,
      .hot_access_prob = 0.55,
      .shared_fraction = 0.45,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 6.0,
      .code_bytes = 3 * 1024,
      .work_instructions = 1'200'000,
      .sharing = SharingPattern::kMigratory,
      .migratory_objects = 64,
  });

  apps.push_back(AppProfile{
      .name = "all_to_all",
      .serial_fraction = 0.02,
      .phases = 16,
      .imbalance = 0.10,
      .mem_fraction = 0.30,
      .read_fraction = 0.70,
      .ifetch_every = 12.0,
      .working_set_bytes = 128 * 1024,
      .hot_fraction = 0.25,
      .hot_access_prob = 0.55,
      .shared_fraction = 0.50,
      .private_bytes = 12 * 1024,
      .seq_run_mean = 8.0,
      .code_bytes = 3 * 1024,
      .work_instructions = 1'200'000,
      .sharing = SharingPattern::kAllToAll,
      .slot_lines_per_core = 8,
  });

  return apps;
}

}  // namespace

const char* sharing_pattern_name(SharingPattern p) {
  switch (p) {
    case SharingPattern::kNone: return "none";
    case SharingPattern::kReadMostly: return "read-mostly";
    case SharingPattern::kProducerConsumer: return "producer-consumer";
    case SharingPattern::kMigratory: return "migratory";
    case SharingPattern::kAllToAll: return "all-to-all";
  }
  return "?";
}

const std::vector<AppProfile>& splash2_profiles() {
  static const std::vector<AppProfile> apps = make_profiles();
  return apps;
}

const std::vector<AppProfile>& sharing_profiles() {
  static const std::vector<AppProfile> apps = make_sharing_profiles();
  return apps;
}

const AppProfile& profile_by_name(const std::string& name) {
  for (const AppProfile& a : splash2_profiles()) {
    if (a.name == name) return a;
  }
  for (const AppProfile& a : sharing_profiles()) {
    if (a.name == name) return a;
  }
  throw std::out_of_range("unknown workload profile: " + name);
}

std::vector<std::string> splash2_names() {
  std::vector<std::string> names;
  for (const AppProfile& a : splash2_profiles()) names.push_back(a.name);
  return names;
}

std::vector<std::string> sharing_profile_names() {
  std::vector<std::string> names;
  for (const AppProfile& a : sharing_profiles()) names.push_back(a.name);
  return names;
}

}  // namespace mot3d::workload
