// Tests for the runtime power-state advisor: the paper's two app axes
// (parallelism scalability, L2 demand) must map onto the right Table I
// states, and the Fig. 8 effect (fast DRAM relaxes the bank guard) must
// show in the recommendation.
#include <gtest/gtest.h>

#include "cluster/advisor.hpp"

namespace mot3d::cluster {
namespace {

SimResult profile(const char* app, mem::DramPreset dram, double scale = 0.2) {
  return Cluster(make_paper_config(workload::profile_by_name(app), Fabric::kMot,
                                   core::PowerState::full(), dram, scale, 42))
      .run();
}

TEST(Advisor, LimitedSmallWsAppGetsPc4Mb8) {
  // volrend: high serial fraction, 352 KB footprint.
  const SimResult r = profile("volrend", mem::DramPreset::kDdr3_200ns);
  const StateRecommendation rec = recommend_power_state(r);
  EXPECT_TRUE(rec.gate_cores) << rec.rationale;
  EXPECT_TRUE(rec.gate_banks) << rec.rationale;
  EXPECT_EQ(rec.state.name(), "PC4-MB8");
}

TEST(Advisor, ScalableSmallWsAppGetsPc16Mb8) {
  // water: scales to 16 cores, 416 KB footprint.
  const SimResult r = profile("water_nsquared", mem::DramPreset::kDdr3_200ns);
  const StateRecommendation rec = recommend_power_state(r);
  EXPECT_FALSE(rec.gate_cores) << rec.rationale;
  EXPECT_TRUE(rec.gate_banks) << rec.rationale;
  EXPECT_EQ(rec.state.name(), "PC16-MB8");
}

TEST(Advisor, ScalableCapacityHungryAppStaysFull) {
  // ocean: scales and demands capacity — at 200 ns nothing can be gated.
  const SimResult r = profile("ocean_contiguous", mem::DramPreset::kDdr3_200ns, 0.4);
  const StateRecommendation rec = recommend_power_state(r);
  EXPECT_FALSE(rec.gate_cores) << rec.rationale;
  EXPECT_FALSE(rec.gate_banks) << rec.rationale;
  EXPECT_EQ(rec.state.name(), "Full");
}

TEST(Advisor, FastDramRelaxesBankGuard) {
  // Same capacity-hungry app at 42 ns on-chip DRAM: misses are cheap, the
  // advisor gates the banks (the Fig. 8 trend made operational).
  const SimResult r = profile("ocean_contiguous", mem::DramPreset::kWeis3d_42ns, 0.4);
  const StateRecommendation rec = recommend_power_state(r);
  EXPECT_TRUE(rec.gate_banks) << rec.rationale;
}

TEST(Advisor, RecommendationActuallyImprovesEdp) {
  // Closing the loop: running the recommended state must beat Full on EDP.
  const SimResult full = profile("volrend", mem::DramPreset::kDdr3_200ns);
  const StateRecommendation rec = recommend_power_state(full);
  ASSERT_NE(rec.state.name(), "Full");
  const SimResult gated =
      Cluster(make_paper_config(workload::profile_by_name("volrend"), Fabric::kMot,
                                rec.state, mem::DramPreset::kDdr3_200ns, 0.2, 42))
          .run();
  EXPECT_LT(gated.edp_pj_s, full.edp_pj_s) << rec.rationale;
}

TEST(Advisor, SpinRatioMeasured) {
  const SimResult limited = profile("cholesky", mem::DramPreset::kDdr3_200ns);
  const SimResult scalable = profile("fmm", mem::DramPreset::kDdr3_200ns);
  const StateRecommendation rl = recommend_power_state(limited);
  const StateRecommendation rs = recommend_power_state(scalable);
  EXPECT_GT(rl.spin_ratio, rs.spin_ratio + 0.15);
}

TEST(Advisor, EmptyProfileStaysFull) {
  SimResult empty;
  const StateRecommendation rec = recommend_power_state(empty);
  EXPECT_EQ(rec.state.name(), "Full");
}

TEST(Advisor, RationaleIsHumanReadable) {
  const SimResult r = profile("fft", mem::DramPreset::kDdr3_200ns);
  const StateRecommendation rec = recommend_power_state(r);
  EXPECT_NE(rec.rationale.find("spin_ratio"), std::string::npos);
  EXPECT_NE(rec.rationale.find("resident L2"), std::string::npos);
}

}  // namespace
}  // namespace mot3d::cluster
