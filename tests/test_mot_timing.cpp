// Unit tests for the MoT timing/energy model.  The headline assertion is
// Table I: the four power states must come out at 12 / 9 / 9 / 7 cycles of
// L2 access latency, *derived* from the Elmore wire + TSV + CACTI models
// rather than hard-coded.
#include <gtest/gtest.h>

#include "cacti/sram_model.hpp"
#include "core/mot_timing.hpp"
#include "core/power_state.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"

namespace mot3d::core {
namespace {

class MotTimingTest : public ::testing::Test {
 protected:
  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams fp;
  cacti::SramBankConfig bank;  // 64 KB, 8-way, 32 B (paper defaults)
  MotTimingModel model{tech, fp, bank};
};

TEST_F(MotTimingTest, TableIRoundTripLatencies) {
  EXPECT_EQ(model.timing(PowerState::full()).l2_round_trip(), 12u);
  EXPECT_EQ(model.timing(PowerState::pc16_mb8()).l2_round_trip(), 9u);
  EXPECT_EQ(model.timing(PowerState::pc4_mb32()).l2_round_trip(), 9u);
  EXPECT_EQ(model.timing(PowerState::pc4_mb8()).l2_round_trip(), 7u);
}

TEST_F(MotTimingTest, TableIStageDecomposition) {
  const MotStateTiming full = model.timing(PowerState::full());
  EXPECT_EQ(full.request_cycles, 5u);
  EXPECT_EQ(full.bank_cycles, 3u);
  EXPECT_EQ(full.response_cycles, 4u);
  const MotStateTiming pc4mb8 = model.timing(PowerState::pc4_mb8());
  EXPECT_EQ(pc4mb8.request_cycles, 2u);
  EXPECT_EQ(pc4mb8.response_cycles, 2u);
}

TEST_F(MotTimingTest, DelaysFitInTheirStageCount) {
  // Pipeline stages must cover the combinational delay at 1 GHz.
  for (const PowerState& s : PowerState::paper_states()) {
    const MotStateTiming t = model.timing(s);
    EXPECT_LE(t.request_delay_ns, t.request_cycles * tech.clock_period_ns);
    EXPECT_GT(t.request_delay_ns, (t.request_cycles - 1) * tech.clock_period_ns);
    EXPECT_LE(t.response_delay_ns, t.response_cycles * tech.clock_period_ns);
  }
}

TEST_F(MotTimingTest, GatingNeverSlowsTheNetwork) {
  const unsigned full = model.timing(16, 32).l2_round_trip();
  for (std::size_t cores : {4u, 8u, 16u}) {
    for (std::size_t banks : {8u, 16u, 32u}) {
      EXPECT_LE(model.timing(cores, banks).l2_round_trip(), full)
          << cores << "C/" << banks << "B";
    }
  }
}

TEST_F(MotTimingTest, EnergyDropsWithGating) {
  const double e_full = model.request_energy_pj(PowerState::full(), false);
  const double e_gated = model.request_energy_pj(PowerState::pc4_mb8(), false);
  EXPECT_LT(e_gated, e_full * 0.5);
  EXPECT_GT(e_gated, 0.0);
}

TEST_F(MotTimingTest, LineTransfersCostMore) {
  const PowerState s = PowerState::full();
  EXPECT_GT(model.request_energy_pj(s, true), 2.0 * model.request_energy_pj(s, false));
  EXPECT_GT(model.response_energy_pj(s, true), model.response_energy_pj(s, false));
}

TEST_F(MotTimingTest, LeakageDropsSteeplyWithGating) {
  const double full = model.leakage_mw(PowerState::full());
  const double mb8 = model.leakage_mw(PowerState::pc16_mb8());
  const double pc4mb8 = model.leakage_mw(PowerState::pc4_mb8());
  EXPECT_LT(mb8, full);
  EXPECT_LT(pc4mb8, 0.25 * full);
  EXPECT_GT(pc4mb8, 0.0);
}

TEST_F(MotTimingTest, LeakageMagnitudePlausible) {
  // Tens of mW for the full 16x32 network at 45 nm (paper-scale cluster).
  const double full = model.leakage_mw(PowerState::full());
  EXPECT_GT(full, 5.0);
  EXPECT_LT(full, 100.0);
}

TEST_F(MotTimingTest, PoweredSwitchCountsMatchStructuralTrees) {
  // Full: request net = 16 routing trees (31 switches) + 32 arbitration
  // trees (15); the response net mirrors with swapped roles.
  const std::size_t full = model.powered_switches(PowerState::full());
  EXPECT_EQ(full, 16u * 31 + 32u * 15 + 32u * 15 + 16u * 31);
}

TEST_F(MotTimingTest, RepeatersVanishInGatedStates) {
  // With a quarter of the spans, every edge drops below the repeater
  // spacing: the inverters the paper gates are exactly these.
  EXPECT_GT(model.powered_repeaters(PowerState::full()), 0u);
  EXPECT_EQ(model.powered_repeaters(PowerState::pc4_mb8()), 0u);
}

TEST_F(MotTimingTest, BankAccessFromCacti) {
  EXPECT_EQ(model.bank_access_cycles(), 3u);
}

TEST_F(MotTimingTest, RequestEnergyMagnitude) {
  // Order of magnitude: tens of pJ for a header, hundreds with a line.
  const double hdr = model.request_energy_pj(PowerState::full(), false);
  EXPECT_GT(hdr, 5.0);
  EXPECT_LT(hdr, 200.0);
  const double line = model.response_energy_pj(PowerState::full(), true);
  EXPECT_GT(line, 100.0);
  EXPECT_LT(line, 2000.0);
}

}  // namespace
}  // namespace mot3d::core
