// Unit tests for the power-state reconfiguration protocol: dirty lines of
// gated banks must be written back to DRAM, the switch fabric reprogrammed,
// the L2 mask updated, and cost estimates consistent.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cacti/sram_model.hpp"
#include "core/mot_interconnect.hpp"
#include "core/reconfig.hpp"
#include "mem/dram.hpp"
#include "mem/l2_system.hpp"

namespace mot3d::core {
namespace {

class ReconfigTest : public ::testing::Test {
 protected:
  ReconfigTest()
      : model(tech, fp, bank_cfg),
        icn(model, PowerState::full()),
        dram(dram_cfg(), 32),
        l2(l2_cfg(), dram, 0),
        mgr(icn, l2, dram) {}

  static mem::DramConfig dram_cfg() {
    mem::DramConfig c;
    c.access_latency_ns = 200.0;
    return c;
  }
  static mem::L2Config l2_cfg() {
    mem::L2Config c;
    c.total_banks = 32;
    c.bank_capacity_bytes = 64 * 1024;
    return c;
  }

  /// Warm bank `b` with `n` dirty lines via direct delivery + DRAM drain.
  void dirty_lines(BankId b, int n) {
    for (int i = 0; i < n; ++i) {
      // Bank-local lines: stride = 32 banks * 32 B.
      const Addr addr = static_cast<Addr>(b) * 32 + static_cast<Addr>(i) * 1024;
      l2.deliver(MemRequest{.id = static_cast<std::uint64_t>(i),
                            .core = 0,
                            .bank = b,
                            .addr = addr,
                            .is_write = true,
                            .issue_cycle = 0},
                 now);
      for (int t = 0; t < 400; ++t) {
        l2.tick(now);
        dram.tick(now);
        ++now;
      }
    }
  }

  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams fp;
  cacti::SramBankConfig bank_cfg;
  MotTimingModel model;
  MotInterconnect icn;
  mem::DramBackend dram;
  mem::L2System l2;
  ReconfigManager mgr;
  Cycle now = 0;
};

TEST_F(ReconfigTest, FlushWritesBackExactlyDirtyLines) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  dirty_lines(0, 3);   // bank 0 will be gated by PC16-MB8
  dirty_lines(15, 2);  // bank 15 survives (centre group 12..19)
  const std::uint64_t writes_before = dram.stats().writes;

  const ReconfigCost cost = mgr.apply(PowerState::pc16_mb8(), now);
  EXPECT_EQ(cost.dirty_lines_flushed, 3u);
  EXPECT_GT(cost.flush_cycles, 0u);
  EXPECT_GT(cost.flush_energy_pj, 0.0);

  for (int t = 0; t < 2000; ++t) {
    dram.tick(now);
    ++now;
  }
  EXPECT_EQ(dram.stats().writes - writes_before, 3u);
  // Survivor bank keeps its dirty lines.
  EXPECT_EQ(l2.dirty_lines(15), 2u);
  EXPECT_EQ(l2.dirty_lines(0), 0u);
}

TEST_F(ReconfigTest, AppliesMasksAndTiming) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  mgr.apply(PowerState::pc4_mb8(), 0);
  EXPECT_EQ(l2.num_active_banks(), 8u);
  EXPECT_EQ(icn.state().name(), "PC4-MB8");
  EXPECT_EQ(icn.state_timing().l2_round_trip(), 7u);
  EXPECT_FALSE(l2.active_banks()[0]);
  EXPECT_TRUE(l2.active_banks()[16]);
}

TEST_F(ReconfigTest, EstimateDoesNotMutate) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  dirty_lines(0, 4);
  const ReconfigCost est = mgr.estimate(PowerState::pc16_mb8());
  EXPECT_EQ(est.dirty_lines_flushed, 4u);
  // Nothing actually flushed or reconfigured.
  EXPECT_EQ(l2.dirty_lines(0), 4u);
  EXPECT_EQ(icn.state().name(), "Full");
  EXPECT_EQ(l2.num_active_banks(), 32u);
}

TEST_F(ReconfigTest, WakeUpCostsNoFlush) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  mgr.apply(PowerState::pc16_mb8(), 0);
  const ReconfigCost cost = mgr.apply(PowerState::full(), 100);
  EXPECT_EQ(cost.dirty_lines_flushed, 0u);  // turning banks ON flushes nothing
  EXPECT_EQ(l2.num_active_banks(), 32u);
  EXPECT_GT(cost.reprogram_cycles, 0u);
}

TEST_F(ReconfigTest, RoundTripPreservesOperation) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  mgr.apply(PowerState::pc4_mb8(), 0);
  mgr.apply(PowerState::full(), 50);
  EXPECT_EQ(icn.route(0), 0u);  // conventional routing restored
  EXPECT_EQ(icn.state_timing().l2_round_trip(), 12u);
}

// ---- power-state transition round-trips ------------------------------------

/// Table I latency of each paper state, by name.
unsigned expected_round_trip(const std::string& state) {
  if (state == "Full") return 12;
  if (state == "PC4-MB8") return 7;
  return 9;  // PC16-MB8 and PC4-MB32
}

TEST_F(ReconfigTest, EveryOrderedStatePairKeepsMasksAndTimingConsistent) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  const auto& states = PowerState::paper_states();
  for (const PowerState& from : states) {
    for (const PowerState& to : states) {
      mgr.apply(from, now);
      now += 100;
      const ReconfigCost cost = mgr.apply(to, now);
      now += 100;

      // The fabric and the L2 must agree on the new state after EVERY
      // transition, regardless of history.
      EXPECT_EQ(icn.state().name(), to.name()) << from.name() << " -> " << to.name();
      EXPECT_EQ(l2.num_active_banks(), to.active_banks())
          << from.name() << " -> " << to.name();
      EXPECT_EQ(icn.state_timing().l2_round_trip(), expected_round_trip(to.name()))
          << from.name() << " -> " << to.name();
      const std::vector<bool> mask = to.bank_mask();
      for (BankId b = 0; b < 32; ++b) {
        EXPECT_EQ(l2.active_banks()[b], mask[b])
            << from.name() << " -> " << to.name() << " bank " << b;
      }
      // Nothing was dirty, so no transition may write anything back.
      EXPECT_EQ(cost.dirty_lines_flushed, 0u)
          << from.name() << " -> " << to.name();
    }
  }
}

TEST_F(ReconfigTest, RoundTripThroughEveryStateRestoresFullExactly) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  for (const PowerState& s : PowerState::paper_states()) {
    mgr.apply(s, now);
    now += 100;
    mgr.apply(PowerState::full(), now);
    now += 100;
    EXPECT_EQ(icn.state().name(), "Full") << "via " << s.name();
    EXPECT_EQ(l2.num_active_banks(), 32u) << "via " << s.name();
    EXPECT_EQ(icn.state_timing().l2_round_trip(), 12u) << "via " << s.name();
    // Conventional (identity) routing restored on every tree.
    for (BankId b : {0u, 7u, 15u, 31u}) {
      EXPECT_EQ(icn.route(b), b) << "via " << s.name();
    }
  }
}

TEST_F(ReconfigTest, FlushHappensOnlyWhenDirtyBanksTurnOff) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  dirty_lines(0, 3);  // bank 0: outside every gated centre group
  // PC4-MB32 keeps all 32 banks — gating cores must not flush any cache.
  EXPECT_EQ(mgr.estimate(PowerState::pc4_mb32()).dirty_lines_flushed, 0u);
  // Both 8-bank states gate bank 0 — its dirty lines must go back to DRAM.
  EXPECT_EQ(mgr.estimate(PowerState::pc16_mb8()).dirty_lines_flushed, 3u);
  EXPECT_EQ(mgr.estimate(PowerState::pc4_mb8()).dirty_lines_flushed, 3u);

  // After actually gating, survivors in the centre group keep their data
  // and a same-mask transition (PC16-MB8 -> PC4-MB8) flushes nothing.
  dirty_lines(15, 2);  // centre group 12..19 survives both 8-bank states
  mgr.apply(PowerState::pc16_mb8(), now);
  now += 2000;
  EXPECT_EQ(l2.dirty_lines(15), 2u);
  const ReconfigCost cost = mgr.apply(PowerState::pc4_mb8(), now);
  EXPECT_EQ(cost.dirty_lines_flushed, 0u);
  EXPECT_EQ(l2.dirty_lines(15), 2u);
}

// ---- zero-active-bank gating must be rejected loudly -----------------------
//
// The fault-degradation path can request arbitrary gating masks; a state
// with no powered bank would brick the cluster mid-run.  Every layer that
// could produce one throws a clear std::invalid_argument instead of
// tripping asserts downstream: the PowerState constructor (0 is not a
// power of two), the L2 mask setter, and ReconfigManager::apply's guard.

TEST_F(ReconfigTest, ZeroBankPowerStateCannotBeConstructed) {
  EXPECT_THROW(PowerState("dead", 16, 16, 32, 0), std::invalid_argument);
  EXPECT_THROW(PowerState("dead", 16, 0, 32, 8), std::invalid_argument);
}

TEST_F(ReconfigTest, AllOffBankMaskIsRejectedWithClearError) {
  const std::vector<bool> all_off(32, false);
  try {
    l2.set_active_banks(all_off);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zero active"), std::string::npos)
        << e.what();
  }
  // The rejected request must not have clobbered the live mask.
  EXPECT_EQ(l2.num_active_banks(), 32u);
  EXPECT_THROW(l2.set_active_banks(std::vector<bool>(16, true)),
               std::invalid_argument);  // size mismatch is also an error
}

TEST_F(ReconfigTest, DirtySurvivorsPersistAcrossFullRoundTrip) {
  l2.set_response_injector([](const MemResponse&, Cycle) { return true; });
  dirty_lines(15, 4);  // centre bank: survives PC16-MB8
  mgr.apply(PowerState::pc16_mb8(), now);
  now += 2000;
  mgr.apply(PowerState::full(), now);
  now += 2000;
  // Waking banks up neither flushes nor invalidates the survivors.
  EXPECT_EQ(l2.dirty_lines(15), 4u);
  EXPECT_EQ(l2.num_active_banks(), 32u);
}

}  // namespace
}  // namespace mot3d::core
