// Unit tests for the power states: Table I presets, the centre-fold bank
// remap (must reproduce the paper's Fig. 4 example exactly), masks and
// thread placement.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/power_state.hpp"

namespace mot3d::core {
namespace {

TEST(PowerState, PaperPresets) {
  EXPECT_EQ(PowerState::full().active_cores(), 16u);
  EXPECT_EQ(PowerState::full().active_banks(), 32u);
  EXPECT_EQ(PowerState::pc16_mb8().active_banks(), 8u);
  EXPECT_EQ(PowerState::pc4_mb32().active_cores(), 4u);
  EXPECT_EQ(PowerState::pc4_mb8().active_cores(), 4u);
  EXPECT_EQ(PowerState::pc4_mb8().active_banks(), 8u);
  EXPECT_EQ(PowerState::paper_states().size(), 4u);
}

TEST(PowerState, ForcedLevels) {
  EXPECT_EQ(PowerState::full().forced_bank_levels(), 0u);
  EXPECT_EQ(PowerState::pc16_mb8().forced_bank_levels(), 2u);
  EXPECT_EQ(PowerState::pc4_mb32().forced_core_levels(), 2u);
  EXPECT_EQ(PowerState::full().forced_core_levels(), 0u);
}

TEST(PowerState, Fig4ExampleExactRemap) {
  // The paper's 8-bank example: M0->M2, M1->M3, M6->M4, M7->M5 while
  // M2..M5 stay in place.
  const PowerState s("fig4", 4, 4, 8, 4);
  EXPECT_EQ(s.remap_bank(0), 2u);
  EXPECT_EQ(s.remap_bank(1), 3u);
  EXPECT_EQ(s.remap_bank(6), 4u);
  EXPECT_EQ(s.remap_bank(7), 5u);
  EXPECT_EQ(s.remap_bank(2), 2u);
  EXPECT_EQ(s.remap_bank(3), 3u);
  EXPECT_EQ(s.remap_bank(4), 4u);
  EXPECT_EQ(s.remap_bank(5), 5u);
}

TEST(PowerState, RemapIdentityWhenFull) {
  const PowerState s = PowerState::full();
  for (BankId b = 0; b < 32; ++b) EXPECT_EQ(s.remap_bank(b), b);
}

TEST(PowerState, RemapTargetsAreActiveCentreGroup) {
  const PowerState s = PowerState::pc16_mb8();
  std::set<BankId> targets;
  for (BankId b = 0; b < 32; ++b) {
    const BankId p = s.remap_bank(b);
    EXPECT_TRUE(s.bank_active(p)) << "logical " << b << " -> " << p;
    targets.insert(p);
  }
  // Every active bank receives data (the fold is onto, not into).
  EXPECT_EQ(targets.size(), 8u);
  // Centre group of 32: banks 12..19.
  EXPECT_TRUE(targets.count(12));
  EXPECT_TRUE(targets.count(19));
  EXPECT_FALSE(targets.count(11));
  EXPECT_FALSE(targets.count(20));
}

TEST(PowerState, SurvivorsMapToThemselves) {
  const PowerState s = PowerState::pc16_mb8();
  for (BankId b = 0; b < 32; ++b) {
    if (s.bank_active(b)) {
      EXPECT_EQ(s.remap_bank(b), b);
    }
  }
}

TEST(PowerState, FoldIsBalanced) {
  // Each active bank absorbs exactly total/active logical banks.
  const PowerState s = PowerState::pc16_mb8();
  std::map<BankId, int> load;
  for (BankId b = 0; b < 32; ++b) ++load[s.remap_bank(b)];
  for (const auto& [bank, n] : load) EXPECT_EQ(n, 4) << "bank " << bank;
}

TEST(PowerState, SingleBankDegenerateCase) {
  const PowerState s("one", 4, 4, 8, 1);
  for (BankId b = 0; b < 8; ++b) EXPECT_EQ(s.remap_bank(b), 4u);
  EXPECT_TRUE(s.bank_active(4));
  EXPECT_FALSE(s.bank_active(3));
}

TEST(PowerState, CoreMaskCentred) {
  const PowerState s = PowerState::pc4_mb32();
  std::vector<bool> mask = s.core_mask();
  std::size_t active = 0;
  for (bool m : mask) active += m ? 1 : 0;
  EXPECT_EQ(active, 4u);
  EXPECT_TRUE(mask[6] && mask[7] && mask[8] && mask[9]);
  EXPECT_FALSE(mask[5] || mask[10]);
}

TEST(PowerState, ThreadPlacement) {
  const PowerState s = PowerState::pc4_mb32();
  EXPECT_EQ(s.core_of_thread(0), 6u);
  EXPECT_EQ(s.core_of_thread(3), 9u);
  EXPECT_THROW(s.core_of_thread(4), std::out_of_range);
  EXPECT_EQ(PowerState::full().core_of_thread(13), 13u);
}

TEST(PowerState, Validation) {
  EXPECT_THROW(PowerState("bad", 16, 3, 32, 32), std::invalid_argument);
  EXPECT_THROW(PowerState("bad", 16, 32, 32, 32), std::invalid_argument);
}

TEST(PowerState, EqualityIgnoresName) {
  EXPECT_TRUE(PowerState("a", 16, 16, 32, 32) == PowerState::full());
  EXPECT_FALSE(PowerState::pc16_mb8() == PowerState::full());
}

class RemapProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RemapProperty, FoldOntoActiveForEveryGatingDepth) {
  const std::size_t active = GetParam();
  const PowerState s("p", 16, 16, 32, active);
  std::set<BankId> targets;
  for (BankId b = 0; b < 32; ++b) {
    const BankId p = s.remap_bank(b);
    EXPECT_TRUE(s.bank_active(p));
    targets.insert(p);
  }
  EXPECT_EQ(targets.size(), active);
}

INSTANTIATE_TEST_SUITE_P(GatingDepths, RemapProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace mot3d::core
