// Unit tests for the MoT routing and arbitration trees: full-connectivity
// resolution, the Fig. 4 user-defined/gated switch pattern, consistency
// with PowerState::remap_bank, and hierarchical round-robin fairness /
// starvation freedom.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/arbitration_tree.hpp"
#include "core/power_state.hpp"
#include "core/routing_tree.hpp"

namespace mot3d::core {
namespace {

TEST(RoutingTree, FullConfigIsIdentity) {
  RoutingTree rt(32);
  rt.configure(PowerState::full());
  for (BankId b = 0; b < 32; ++b) {
    ASSERT_TRUE(rt.resolve(b).has_value());
    EXPECT_EQ(*rt.resolve(b), b);
  }
  EXPECT_EQ(rt.powered_switches(), 31u);  // all switches on
}

TEST(RoutingTree, MatchesPowerStateRemapEverywhere) {
  for (std::size_t active : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const PowerState s("p", 16, 16, 32, active);
    RoutingTree rt(32);
    rt.configure(s);
    for (BankId b = 0; b < 32; ++b) {
      ASSERT_TRUE(rt.resolve(b).has_value()) << "active=" << active << " b=" << b;
      EXPECT_EQ(*rt.resolve(b), s.remap_bank(b)) << "active=" << active << " b=" << b;
    }
  }
}

TEST(RoutingTree, Fig4SwitchPattern) {
  // 8 banks, 4 active: level 1 runs user-defined, everything else on the
  // active paths conventional, unreachable switches gated.
  const PowerState s("fig4", 4, 4, 8, 4);
  RoutingTree rt(8);
  rt.configure(s);
  // Root: conventional.
  EXPECT_EQ(static_cast<int>(rt.switch_at(0, 0).mode()),
            static_cast<int>(RouteMode::kConventional));
  // Level 1 (the paper's "second level"): user-defined, folding centre-ward.
  EXPECT_EQ(static_cast<int>(rt.switch_at(1, 0).mode()),
            static_cast<int>(RouteMode::kForcePort1));
  EXPECT_EQ(static_cast<int>(rt.switch_at(1, 1).mode()),
            static_cast<int>(RouteMode::kForcePort0));
  // Level 2: switches over gated banks are off, over active banks on.
  EXPECT_FALSE(rt.switch_at(2, 0).powered());  // banks 0,1
  EXPECT_TRUE(rt.switch_at(2, 1).powered());   // banks 2,3
  EXPECT_TRUE(rt.switch_at(2, 2).powered());   // banks 4,5
  EXPECT_FALSE(rt.switch_at(2, 3).powered());  // banks 6,7
}

TEST(RoutingTree, PoweredSwitchCountDropsWithGating) {
  RoutingTree rt(32);
  const std::size_t full = rt.configure(PowerState::full());
  const std::size_t mb8 = rt.configure(PowerState::pc16_mb8());
  EXPECT_LT(mb8, full);
  // Visited switches per level for 32 banks folded onto 8 (forced levels
  // 1 and 2 each pass through a single child): 1 + 2 + 2 + 2 + 4 = 11.
  EXPECT_EQ(mb8, 11u);
}

TEST(RoutingTree, RejectsBadShape) {
  EXPECT_THROW(RoutingTree(0), std::invalid_argument);
  EXPECT_THROW(RoutingTree(1), std::invalid_argument);
  EXPECT_THROW(RoutingTree(12), std::invalid_argument);
  RoutingTree rt(16);
  EXPECT_THROW(rt.configure(PowerState::full()), std::invalid_argument);  // 32 != 16
}

TEST(RoutingTree, OutOfRangeBankRejected) {
  RoutingTree rt(8);
  rt.configure(PowerState("p", 4, 4, 8, 8));
  EXPECT_EQ(rt.resolve(8), std::nullopt);
}

TEST(ArbitrationTree, SingleRequesterAlwaysWins) {
  ArbitrationTree at(16);
  at.configure(PowerState::full());
  std::vector<bool> req(16, false);
  req[11] = true;
  EXPECT_EQ(at.arbitrate(req), 11u);
  EXPECT_EQ(at.arbitrate(req), 11u);
}

TEST(ArbitrationTree, NobodyRequesting) {
  ArbitrationTree at(8);
  at.configure(PowerState("p", 8, 8, 32, 32));
  EXPECT_EQ(at.arbitrate(std::vector<bool>(8, false)), std::nullopt);
}

TEST(ArbitrationTree, GrantsExactlyOnePerCycle) {
  ArbitrationTree at(16);
  at.configure(PowerState::full());
  std::vector<bool> req(16, true);
  const auto w = at.arbitrate(req);
  ASSERT_TRUE(w.has_value());
  EXPECT_LT(*w, 16u);
}

TEST(ArbitrationTree, StarvationFreedomUnderFullContention) {
  // All 16 cores request every cycle; within 16 grants each core must win
  // at least once (bounded wait == round-robin fairness).
  ArbitrationTree at(16);
  at.configure(PowerState::full());
  std::vector<bool> req(16, true);
  std::set<CoreId> winners;
  for (int i = 0; i < 16; ++i) winners.insert(*at.arbitrate(req));
  EXPECT_EQ(winners.size(), 16u);
}

TEST(ArbitrationTree, FairShareUnderAsymmetricPersistence) {
  // Two persistent requesters + one intermittent: nobody starves.
  ArbitrationTree at(4);
  at.configure(PowerState("p", 4, 4, 32, 32));
  std::map<CoreId, int> grants;
  for (int round = 0; round < 300; ++round) {
    std::vector<bool> req(4, false);
    req[0] = true;
    req[1] = true;
    req[2] = (round % 3 == 0);
    const auto w = at.arbitrate(req);
    ASSERT_TRUE(w.has_value());
    ++grants[*w];
    // The winner's request is consumed; persistent ones re-request.
  }
  EXPECT_GT(grants[0], 60);
  EXPECT_GT(grants[1], 60);
  EXPECT_GT(grants[2], 30);
}

TEST(ArbitrationTree, BoundedWaitProperty) {
  // Worst-case wait for any persistent requester is <= #contenders rounds.
  ArbitrationTree at(8);
  at.configure(PowerState("p", 8, 8, 32, 32));
  std::vector<bool> req(8, true);
  std::vector<int> last_grant(8, -1);
  for (int round = 0; round < 64; ++round) {
    const CoreId w = *at.arbitrate(req);
    if (last_grant[w] >= 0) {
      EXPECT_LE(round - last_grant[w], 8);
    }
    last_grant[w] = round;
  }
}

TEST(ArbitrationTree, GatedSubtreeNeverWins) {
  ArbitrationTree at(16);
  at.configure(PowerState::pc4_mb32());  // only cores 6..9 powered
  // Requests from gated cores must not be granted (they cannot occur in a
  // correct system; the tree guards anyway because their switches are off).
  std::vector<bool> req(16, false);
  req[0] = true;   // gated
  req[7] = true;   // active
  const auto w = at.arbitrate(req);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 7u);
}

TEST(ArbitrationTree, PoweredSwitchCount) {
  ArbitrationTree at(16);
  EXPECT_EQ(at.configure(PowerState::full()), 15u);
  // PC4: cores 6..9 -> subtrees {6,7} and {8,9} plus their ancestors.
  const std::size_t pc4 = at.configure(PowerState::pc4_mb32());
  EXPECT_LT(pc4, 15u);
  EXPECT_GE(pc4, 5u);
}

TEST(ArbitrationTree, RejectsBadShape) {
  EXPECT_THROW(ArbitrationTree(1), std::invalid_argument);
  EXPECT_THROW(ArbitrationTree(6), std::invalid_argument);
}

}  // namespace
}  // namespace mot3d::core
