// Stacked-DRAM backend: vault interleaving, FR-FCFS row-hit-first service,
// deterministic refresh interference, thermal vault remapping and vault
// fault isolation — plus full-cluster differentials proving the backend is
// scheduler-bit-identical and that remapping cools a hot vault.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "dram3d/stacked_dram.hpp"
#include "dram3d/vault_remap.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::dram3d {
namespace {

// Two vaults x two banks, 64 B rows interleaved at 64 B so address math is
// easy to reason about: chunk = addr/64, vault = chunk%2, row = chunk/2,
// bank = row%2.  Refresh far away unless a test pulls it in.
Dram3dConfig small_cfg() {
  Dram3dConfig c;
  c.num_vaults = 2;
  c.banks_per_vault = 2;
  c.row_bytes = 64;
  c.vault_interleave_bytes = 64;
  c.link_cycles = 2;
  c.row_hit_cycles = 10;
  c.row_miss_cycles = 30;
  c.refresh_interval_cycles = 100'000;
  c.refresh_cycles = 50;
  return c;
}

void tick_until(StackedDram& d, Cycle last) {
  for (Cycle t = 0; t <= last; ++t) d.tick(t);
}

TEST(StackedDram, SingleReadIsLinkPlusRowMiss) {
  StackedDram d(small_cfg(), 4);
  Cycle done = 0;
  d.read(0, 0, 0, [&](std::uint32_t, Addr, Cycle at) { done = at; });
  tick_until(d, 100);
  EXPECT_EQ(done, 2u + 30u);  // link + row miss (cold bank)
  EXPECT_TRUE(d.idle());
  EXPECT_EQ(d.stats().reads, 1u);
  EXPECT_EQ(d.stats().page_misses, 1u);
  EXPECT_EQ(d.stats().page_hits, 0u);
}

TEST(StackedDram, OpenRowHitIsServedFaster) {
  StackedDram d(small_cfg(), 1);
  std::vector<Cycle> done;
  d.read(0, 0, 0, [&](std::uint32_t, Addr, Cycle at) { done.push_back(at); });
  d.read(0, 32, 0, [&](std::uint32_t, Addr, Cycle at) { done.push_back(at); });
  tick_until(d, 200);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 32u);        // miss
  EXPECT_EQ(done[1], 32u + 12u);  // served at 32, link 2 + hit 10
  EXPECT_EQ(d.stats().page_hits, 1u);
  EXPECT_EQ(d.stats().page_misses, 1u);
}

TEST(StackedDram, FrFcfsServesRowHitBeforeOlderMiss) {
  // Same vault: A opens row 0; B (row 1) is older than C (row 0), but C
  // hits the open row and is granted first — FCFS only among misses.
  StackedDram d(small_cfg(), 1);
  std::vector<Addr> order;
  auto record = [&](std::uint32_t, Addr a, Cycle) { order.push_back(a); };
  d.read(0, 0, 0, record);     // A: vault 0, row 0
  d.read(0, 128, 0, record);   // B: vault 0, row 1
  d.read(0, 32, 0, record);    // C: vault 0, row 0 again
  tick_until(d, 300);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<Addr>{0, 32, 128}));
  EXPECT_EQ(d.stats().page_hits, 1u);
}

TEST(StackedDram, VaultsServeInParallel) {
  StackedDram d(small_cfg(), 2);
  std::vector<Cycle> done;
  d.read(0, 0, 0, [&](std::uint32_t, Addr, Cycle at) { done.push_back(at); });
  d.read(1, 64, 0, [&](std::uint32_t, Addr, Cycle at) { done.push_back(at); });
  tick_until(d, 100);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 32u);  // both vaults grant at t=0: no serialisation
  EXPECT_EQ(done[1], 32u);
  EXPECT_EQ(d.vault_stats()[0].reads, 1u);
  EXPECT_EQ(d.vault_stats()[1].reads, 1u);
}

TEST(StackedDram, RefreshIsDeterministicAndClosesRows) {
  Dram3dConfig cfg = small_cfg();
  cfg.num_vaults = 1;
  cfg.refresh_interval_cycles = 200;
  StackedDram d(cfg, 1);
  // Open row 0, let a refresh boundary pass, then re-touch the row: the
  // refresh closed it, so the second access must be a miss again.
  d.read(0, 0, 0, {});
  tick_until(d, 250);
  EXPECT_EQ(d.total_refreshes(), 1u);  // the 200-cycle boundary fired once
  d.read(0, 32, 251, {});
  for (Cycle t = 251; t <= 400; ++t) d.tick(t);
  EXPECT_EQ(d.stats().page_misses, 2u);
  EXPECT_EQ(d.stats().page_hits, 0u);
  // Energy: every access and refresh is charged.
  const double expected = 2.0 * cfg.energy_per_access_pj +
                          static_cast<double>(d.total_refreshes()) *
                              cfg.energy_per_refresh_pj;
  EXPECT_DOUBLE_EQ(d.stats().dynamic_energy_pj, expected);
}

TEST(StackedDram, NextEventLandsOnRefreshBoundary) {
  Dram3dConfig cfg = small_cfg();
  cfg.refresh_interval_cycles = 100;
  StackedDram d(cfg, 1);
  // Staggered boundaries: vault 0 at 50, vault 1 at 100; nothing queued.
  EXPECT_EQ(d.next_event(0), 50u);
  // An overdue boundary (vault 0's at 50, not yet ticked past) is an event
  // *now* — the scheduler must not skip over pending refresh work.
  EXPECT_EQ(d.next_event(60), 60u);
  // Once ticked past it, the next boundary is vault 1's at 100.
  tick_until(d, 60);
  EXPECT_EQ(d.next_event(60), 100u);
}

TEST(StackedDram, SwapPhysicalExchangesVaultTraffic) {
  StackedDram d(small_cfg(), 1);
  d.swap_physical(0, 1, 0);
  EXPECT_EQ(d.remap_count(), 1u);
  EXPECT_EQ(d.physical_vault(0), 1u);
  EXPECT_EQ(d.physical_vault(1), 0u);
  // Logical vault 0 traffic now lands on physical vault 1.
  d.read(0, 0, 0, {});
  tick_until(d, 100);
  EXPECT_EQ(d.vault_stats()[1].reads, 1u);
  EXPECT_EQ(d.vault_stats()[0].reads, 0u);
  // Migration energy charged once, split across the pair.
  EXPECT_DOUBLE_EQ(d.vault_stats()[0].energy_pj,
                   small_cfg().remap_migration_pj / 2.0);
}

TEST(StackedDram, SwapValidatesArgumentsAndIdleness) {
  StackedDram d(small_cfg(), 1);
  EXPECT_THROW(d.swap_physical(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(d.swap_physical(0, 9, 0), std::invalid_argument);
  d.read(0, 0, 0, {});  // pending work: the backend is not drained
  EXPECT_THROW(d.swap_physical(0, 1, 0), std::logic_error);
}

TEST(StackedDram, FailVaultRemapsQueuedTraffic) {
  StackedDram d(small_cfg(), 1);
  int completions = 0;
  auto count = [&](std::uint32_t, Addr, Cycle) { ++completions; };
  d.read(0, 0, 0, count);   // vault 0
  d.read(0, 64, 0, count);  // vault 1
  std::string note;
  ASSERT_TRUE(d.fail_vault(0, 0, &note));
  EXPECT_NE(note.find("remapped onto vault 1"), std::string::npos);
  EXPECT_EQ(d.alive_vaults(), 1u);
  EXPECT_EQ(d.vault_fault_count(), 1u);
  tick_until(d, 300);
  EXPECT_EQ(completions, 2);  // the queued request migrated and completed
  EXPECT_TRUE(d.idle());
  // All traffic — including logical vault 0 — now serves from vault 1.
  d.read(0, 0, 301, count);
  for (Cycle t = 301; t <= 400; ++t) d.tick(t);
  EXPECT_EQ(d.vault_stats()[1].reads, 3u);

  // A fault on a dead vault is benign; losing the last vault is not.
  EXPECT_TRUE(d.fail_vault(0, 400, &note));
  EXPECT_NE(note.find("benign"), std::string::npos);
  EXPECT_FALSE(d.fail_vault(1, 400, &note));
  EXPECT_NE(note.find("no remap target"), std::string::npos);
}

TEST(StackedDram, RejectsDegenerateConfigs) {
  Dram3dConfig cfg = small_cfg();
  cfg.num_vaults = 0;
  EXPECT_THROW(StackedDram(cfg, 1), std::invalid_argument);
  cfg = small_cfg();
  cfg.row_bytes = 0;
  EXPECT_THROW(StackedDram(cfg, 1), std::invalid_argument);
  EXPECT_THROW(StackedDram(small_cfg(), 0), std::invalid_argument);
}

// ---- vault remap policy ----------------------------------------------------

TEST(VaultRemapPolicy, HysteresisAndCooldownGateSwaps) {
  VaultRemapConfig cfg;
  cfg.enabled = true;
  cfg.too_hot_c = 70.0;
  cfg.min_delta_c = 3.0;
  cfg.cooldown_cycles = 1'000;
  VaultRemapPolicy policy(cfg);
  const std::vector<bool> alive{true, true, true};

  // Below threshold: nothing, even with a large spread.
  EXPECT_FALSE(policy.decide({60.0, 40.0, 50.0}, alive, 0).has_value());
  // Above threshold but inside the hysteresis band: nothing.
  EXPECT_FALSE(policy.decide({71.0, 69.0, 70.0}, alive, 0).has_value());
  // Hot with spread: hottest swaps with coolest.
  auto swap = policy.decide({75.0, 50.0, 60.0}, alive, 100);
  ASSERT_TRUE(swap.has_value());
  EXPECT_EQ(swap->hot, 0u);
  EXPECT_EQ(swap->cool, 1u);
  // Cooldown: an immediate re-trigger is suppressed, then allowed.
  EXPECT_FALSE(policy.decide({75.0, 50.0, 60.0}, alive, 500).has_value());
  EXPECT_TRUE(policy.decide({75.0, 50.0, 60.0}, alive, 1'200).has_value());
}

TEST(VaultRemapPolicy, DeadVaultsAreNeverCandidates) {
  VaultRemapConfig cfg;
  cfg.enabled = true;
  cfg.too_hot_c = 70.0;
  cfg.min_delta_c = 3.0;
  VaultRemapPolicy policy(cfg);
  // The hottest vault is dead and the coolest vault is dead: the policy
  // must pick among the alive pair only.
  auto swap = policy.decide({90.0, 75.0, 71.0, 40.0},
                            {false, true, true, false}, 0);
  ASSERT_TRUE(swap.has_value());
  EXPECT_EQ(swap->hot, 1u);
  EXPECT_EQ(swap->cool, 2u);
}

// ---- full-cluster integration ----------------------------------------------

cluster::ClusterConfig stacked_cfg(const char* app, double scale = 0.02) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), cluster::Fabric::kMot,
      core::PowerState::full(), mem::DramPreset::kDdr3_200ns, scale, 42);
  cfg.stacked_dram = true;
  return cfg;
}

void expect_same_run(const cluster::SimResult& a, const cluster::SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l2.misses, b.l2.misses);
  EXPECT_EQ(a.dram.reads, b.dram.reads);
  EXPECT_EQ(a.dram.writes, b.dram.writes);
  EXPECT_EQ(a.dram.page_hits, b.dram.page_hits);
  EXPECT_EQ(a.dram.page_misses, b.dram.page_misses);
  EXPECT_EQ(a.dram3d.enabled, b.dram3d.enabled);
  EXPECT_EQ(a.dram3d.refreshes, b.dram3d.refreshes);
  EXPECT_EQ(a.dram3d.remaps, b.dram3d.remaps);
  EXPECT_DOUBLE_EQ(a.energy.edp_energy_pj(), b.energy.edp_energy_pj());
}

TEST(StackedCluster, SchedulerBitIdentical) {
  cluster::ClusterConfig cfg = stacked_cfg("fft");
  cfg.scheduler = cluster::SchedulerMode::kEventDriven;
  const cluster::SimResult event = cluster::Cluster(cfg).run();
  cfg.scheduler = cluster::SchedulerMode::kDenseTick;
  const cluster::SimResult dense = cluster::Cluster(cfg).run();
  expect_same_run(event, dense);
  EXPECT_TRUE(event.dram3d.enabled);
  EXPECT_GT(event.dram3d.refreshes, 0u);
  EXPECT_GT(event.dram3d.row_hits + event.dram3d.row_misses, 0u);
}

TEST(StackedCluster, SchedulerBitIdenticalWithThermalRemap) {
  cluster::ClusterConfig cfg = stacked_cfg("ocean_contiguous");
  cfg.thermal.enabled = true;
  cfg.thermal.sample_interval_cycles = 2'000;
  cfg.vault_remap.enabled = true;
  cfg.vault_remap.too_hot_c = 46.0;  // just above ambient: swaps will fire
  cfg.vault_remap.min_delta_c = 0.05;
  cfg.vault_remap.cooldown_cycles = 4'000;
  cfg.dram3d.vault_interleave_bytes = 1u << 20;  // concentrate the heat
  cfg.scheduler = cluster::SchedulerMode::kEventDriven;
  const cluster::SimResult event = cluster::Cluster(cfg).run();
  cfg.scheduler = cluster::SchedulerMode::kDenseTick;
  const cluster::SimResult dense = cluster::Cluster(cfg).run();
  expect_same_run(event, dense);
  EXPECT_DOUBLE_EQ(event.dram3d.peak_vault_c, dense.dram3d.peak_vault_c);
  EXPECT_EQ(event.dram3d.peak_vault, dense.dram3d.peak_vault);
}

TEST(StackedCluster, HotVaultRemapReducesPeakVaultTemperature) {
  // Interleave at 1 MB so the working set concentrates on few vaults: one
  // vault runs hot.  With the remap policy armed just above ambient, the
  // hysteresis balancer must fire and spread the heat; without it the hot
  // vault integrates every access.
  cluster::ClusterConfig cfg = stacked_cfg("ocean_contiguous");
  cfg.thermal.enabled = true;
  cfg.thermal.sample_interval_cycles = 2'000;
  cfg.dram3d.vault_interleave_bytes = 1u << 20;
  cfg.vault_remap.too_hot_c = 46.0;
  cfg.vault_remap.min_delta_c = 0.05;
  cfg.vault_remap.cooldown_cycles = 4'000;

  cfg.vault_remap.enabled = false;
  const cluster::SimResult still = cluster::Cluster(cfg).run();
  cfg.vault_remap.enabled = true;
  const cluster::SimResult remapped = cluster::Cluster(cfg).run();

  EXPECT_EQ(still.dram3d.remaps, 0u);
  EXPECT_GE(remapped.dram3d.remaps, 1u);
  EXPECT_GT(still.dram3d.peak_vault_c, 0.0);
  EXPECT_LT(remapped.dram3d.peak_vault_c, still.dram3d.peak_vault_c);
}

TEST(StackedCluster, ObsRecordsPerVaultServiceDigests) {
  cluster::ClusterConfig cfg = stacked_cfg("fft");
  cfg.obs.metrics = true;
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  ASSERT_TRUE(r.obs.enabled);
  ASSERT_EQ(r.obs.dram_vault_service.size(), cfg.dram3d.num_vaults);
  std::uint64_t vault_reads = 0;
  for (const auto& digest : r.obs.dram_vault_service) {
    vault_reads += digest.count;
  }
  // Every read completion was observed on exactly one vault.
  EXPECT_EQ(vault_reads, r.dram.reads);
  EXPECT_EQ(r.obs.dram_service.count, r.dram.reads);
}

}  // namespace
}  // namespace mot3d::dram3d
