// SweepRunner: determinism under parallelism.  The same sweep executed at
// --threads=1 and --threads=4 must yield byte-identical ordered results,
// and task exceptions must surface deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "sim/perf_report.hpp"
#include "sim/sweep_runner.hpp"

namespace mot3d::sim {
namespace {

std::vector<SweepRunner::Task> fig6_style_tasks() {
  using cluster::Fabric;
  std::vector<SweepRunner::Task> tasks;
  for (const char* app : {"fft", "volrend"}) {
    for (Fabric fabric : {Fabric::kMot, Fabric::kTrueMesh3d,
                          Fabric::kHybridBusMesh, Fabric::kHybridBusTree}) {
      tasks.push_back([app, fabric] {
        return cluster::Cluster(cluster::make_paper_config(
                                    workload::profile_by_name(app), fabric,
                                    core::PowerState::full(),
                                    mem::DramPreset::kDdr3_200ns, 0.005, 42))
            .run();
      });
    }
  }
  return tasks;
}

TEST(SweepRunner, SingleVsFourThreadsIdenticalOrderedResults) {
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto a = serial.run(fig6_style_tasks());
  const auto b = parallel.run(fig6_style_tasks());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app) << i;
    EXPECT_EQ(a[i].fabric, b[i].fabric) << i;
    EXPECT_EQ(a[i].cycles, b[i].cycles) << i;
    EXPECT_EQ(a[i].instructions, b[i].instructions) << i;
    EXPECT_EQ(a[i].l2.hits, b[i].l2.hits) << i;
    EXPECT_EQ(a[i].l2.misses, b[i].l2.misses) << i;
    EXPECT_EQ(a[i].dram.reads, b[i].dram.reads) << i;
    EXPECT_DOUBLE_EQ(a[i].energy.edp_energy_pj(), b[i].energy.edp_energy_pj()) << i;
    EXPECT_DOUBLE_EQ(a[i].edp_pj_s, b[i].edp_pj_s) << i;
  }
}

TEST(SweepRunner, ResultsArriveInTaskOrder) {
  SweepRunner runner(4);
  const auto results = runner.run(fig6_style_tasks());
  ASSERT_EQ(results.size(), 8u);
  EXPECT_EQ(results[0].app, "fft");
  EXPECT_EQ(results[0].fabric, "3-D MoT");
  EXPECT_EQ(results[3].fabric, "3-D Hybrid Bus-Tree");
  EXPECT_EQ(results[4].app, "volrend");
}

TEST(SweepRunner, TelemetryAccumulates) {
  SweepRunner runner(2);
  const auto results = runner.run(fig6_style_tasks());
  const PerfTelemetry& t = runner.telemetry();
  EXPECT_EQ(t.threads, 2u);
  EXPECT_EQ(t.runs, results.size());
  std::uint64_t cycles = 0;
  for (const auto& r : results) cycles += r.cycles;
  EXPECT_EQ(t.simulated_cycles, cycles);
  EXPECT_GT(t.wall_seconds, 0.0);
  EXPECT_GT(t.cycles_per_second(), 0.0);
}

TEST(SweepRunner, ParallelForCoversEveryIndexOnce) {
  SweepRunner runner(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  runner.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(SweepRunner, FirstExceptionByIndexPropagates) {
  SweepRunner runner(4);
  EXPECT_THROW(
      runner.parallel_for(16,
                          [](std::size_t i) {
                            if (i % 2 == 1) {
                              throw std::runtime_error("task " + std::to_string(i));
                            }
                          }),
      std::runtime_error);
  try {
    runner.parallel_for(16, [](std::size_t i) {
      if (i >= 3) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
}

TEST(SweepRunner, RunIsolatedRecordsPerTaskErrorsWithoutAbortingPeers) {
  // A deliberately-throwing task must become its own error string; every
  // other task still runs and the ordering stays deterministic.
  std::vector<SweepRunner::Task> tasks = fig6_style_tasks();
  tasks.insert(tasks.begin() + 2, []() -> cluster::SimResult {
    throw std::runtime_error("injected task failure");
  });
  for (unsigned threads : {1u, 4u}) {
    SweepRunner runner(threads);
    const std::vector<IsolatedResult> results = runner.run_isolated(tasks);
    ASSERT_EQ(results.size(), 9u) << threads;
    EXPECT_FALSE(results[2].ok()) << threads;
    EXPECT_EQ(results[2].error, "injected task failure") << threads;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i == 2) continue;
      EXPECT_TRUE(results[i].ok()) << "thread=" << threads << " task=" << i;
      EXPECT_GT(results[i].result.cycles, 0u) << i;
    }
    // Task order: the throwing task displaced index 2; its neighbours are
    // still the fig6-style grid in declaration order.
    EXPECT_EQ(results[0].result.app, "fft");
    EXPECT_EQ(results[1].result.fabric, "True 3-D Mesh");
    EXPECT_EQ(results[3].result.fabric, "3-D Hybrid Bus-Mesh");
  }
}

TEST(SweepRunner, RunIsolatedAllTasksThrowStillCompletes) {
  SweepRunner runner(4);
  std::vector<SweepRunner::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> cluster::SimResult {
      throw std::runtime_error("task " + std::to_string(i));
    });
  }
  const std::vector<IsolatedResult> results = runner.run_isolated(tasks);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].error, "task " + std::to_string(i)) << i;
  }
}

TEST(SweepRunner, ZeroThreadsResolvesToHardware) {
  EXPECT_GE(SweepRunner(0).threads(), 1u);
  EXPECT_EQ(SweepRunner(3).threads(), 3u);
}

TEST(PerfReport, JsonObjectSerialisesDeterministically) {
  JsonObject o;
  o.set("bench", "fig6a").set("runs", std::uint64_t{32}).set("scale", 0.25);
  EXPECT_EQ(o.str(), "{\"bench\": \"fig6a\", \"runs\": 32, \"scale\": 0.25}");
}

TEST(PerfReport, WritesMergedReport) {
  PerfTelemetry t;
  t.threads = 2;
  t.runs = 4;
  t.simulated_cycles = 1000;
  t.wall_seconds = 0.5;
  JsonObject extra;
  extra.set("scale", 0.1);
  const std::string path = ::testing::TempDir() + "mot3d_perf_report.json";
  ASSERT_TRUE(write_perf_report(path, "unit", t, extra));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"bench\": \"unit\", \"threads\": 2, \"runs\": 4, "
            "\"simulated_cycles\": 1000, \"wall_seconds\": 0.5, "
            "\"cycles_per_second\": 2000, \"scale\": 0.1}");
}

}  // namespace
}  // namespace mot3d::sim
