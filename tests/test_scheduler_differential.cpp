// Differential tests for the event-driven scheduler: the quiescence-
// skipping run loop must produce *bit-identical* results to the dense
// per-cycle reference on every fabric, power state and DRAM preset —
// cycles, latency histograms, every counter and every energy ledger entry.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace mot3d::cluster {
namespace {

ClusterConfig cfg_for(const char* app, Fabric fabric, const core::PowerState& state,
                      mem::DramPreset dram, SchedulerMode scheduler,
                      double scale = 0.01) {
  ClusterConfig cfg = make_paper_config(workload::profile_by_name(app), fabric,
                                        state, dram, scale, 42);
  cfg.scheduler = scheduler;
  return cfg;
}

void expect_same_histogram(const Histogram& a, const Histogram& b,
                           const char* what) {
  ASSERT_EQ(a.num_buckets(), b.num_buckets()) << what;
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
  EXPECT_DOUBLE_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.overflow(), b.overflow()) << what;
  for (std::size_t i = 0; i < a.num_buckets(); ++i) {
    ASSERT_EQ(a.bucket_count(i), b.bucket_count(i)) << what << " bucket " << i;
  }
}

void expect_same_result(const SimResult& dense, const SimResult& event) {
  EXPECT_EQ(dense.cycles, event.cycles);
  EXPECT_EQ(dense.instructions, event.instructions);

  expect_same_histogram(dense.l2_latency, event.l2_latency, "l2_latency");
  expect_same_histogram(dense.l2_hit_latency, event.l2_hit_latency,
                        "l2_hit_latency");

  EXPECT_EQ(dense.l2.hits, event.l2.hits);
  EXPECT_EQ(dense.l2.misses, event.l2.misses);
  EXPECT_EQ(dense.l2.writebacks, event.l2.writebacks);
  EXPECT_EQ(dense.l2.bank_conflict_cycles, event.l2.bank_conflict_cycles);
  EXPECT_DOUBLE_EQ(dense.l2.dynamic_energy_pj, event.l2.dynamic_energy_pj);

  EXPECT_EQ(dense.dram.reads, event.dram.reads);
  EXPECT_EQ(dense.dram.writes, event.dram.writes);
  EXPECT_EQ(dense.dram.total_wait_cycles, event.dram.total_wait_cycles);
  EXPECT_DOUBLE_EQ(dense.dram.dynamic_energy_pj, event.dram.dynamic_energy_pj);

  EXPECT_EQ(dense.interconnect.requests_injected,
            event.interconnect.requests_injected);
  EXPECT_EQ(dense.interconnect.requests_delivered,
            event.interconnect.requests_delivered);
  EXPECT_EQ(dense.interconnect.responses_injected,
            event.interconnect.responses_injected);
  EXPECT_EQ(dense.interconnect.responses_delivered,
            event.interconnect.responses_delivered);
  EXPECT_EQ(dense.interconnect.arbitration_wait_cycles,
            event.interconnect.arbitration_wait_cycles);

  EXPECT_EQ(dense.l2_resident_lines, event.l2_resident_lines);
  EXPECT_DOUBLE_EQ(dense.l1d_miss_rate, event.l1d_miss_rate);
  EXPECT_DOUBLE_EQ(dense.l1i_miss_rate, event.l1i_miss_rate);

  for (power::Component c :
       {power::Component::kCore, power::Component::kL1, power::Component::kL2,
        power::Component::kInterconnect, power::Component::kDram}) {
    EXPECT_DOUBLE_EQ(dense.energy.dynamic_pj(c), event.energy.dynamic_pj(c))
        << power::component_name(c);
    EXPECT_DOUBLE_EQ(dense.energy.static_pj(c), event.energy.static_pj(c))
        << power::component_name(c);
  }
  EXPECT_DOUBLE_EQ(dense.edp_pj_s, event.edp_pj_s);
  EXPECT_DOUBLE_EQ(dense.avg_power_w, event.avg_power_w);

  // Coherence traffic is a modeled quantity like any other: the directory
  // counters must agree to the last message.
  EXPECT_EQ(dense.coherence_enabled, event.coherence_enabled);
  EXPECT_EQ(dense.coherence.invalidations, event.coherence.invalidations);
  EXPECT_EQ(dense.coherence.inv_acks, event.coherence.inv_acks);
  EXPECT_EQ(dense.coherence.data_forwards, event.coherence.data_forwards);
  EXPECT_EQ(dense.coherence.upgrades, event.coherence.upgrades);
  EXPECT_EQ(dense.coherence.sharing_misses, event.coherence.sharing_misses);
  EXPECT_EQ(dense.coherence.dir_accesses, event.coherence.dir_accesses);
  EXPECT_EQ(dense.coherence.dir_peak_entries, event.coherence.dir_peak_entries);
  EXPECT_EQ(dense.coh_dir_entries, event.coh_dir_entries);

  EXPECT_DOUBLE_EQ(dense.l2_bank_hit_rate_min, event.l2_bank_hit_rate_min);
  EXPECT_DOUBLE_EQ(dense.l2_bank_hit_rate_max, event.l2_bank_hit_rate_max);
  EXPECT_DOUBLE_EQ(dense.l2_bank_hit_rate_spread, event.l2_bank_hit_rate_spread);

  ASSERT_EQ(dense.cores.size(), event.cores.size());
  for (std::size_t i = 0; i < dense.cores.size(); ++i) {
    EXPECT_EQ(dense.cores[i].instructions, event.cores[i].instructions) << i;
    EXPECT_EQ(dense.cores[i].busy_cycles, event.cores[i].busy_cycles) << i;
    EXPECT_EQ(dense.cores[i].stall_cycles, event.cores[i].stall_cycles) << i;
    EXPECT_EQ(dense.cores[i].spin_cycles, event.cores[i].spin_cycles) << i;
    EXPECT_EQ(dense.cores[i].idle_cycles, event.cores[i].idle_cycles) << i;
    EXPECT_EQ(dense.cores[i].l2_requests, event.cores[i].l2_requests) << i;
    EXPECT_EQ(dense.cores[i].l1_writebacks, event.cores[i].l1_writebacks) << i;
    EXPECT_EQ(dense.cores[i].ifetch_misses, event.cores[i].ifetch_misses) << i;
    EXPECT_EQ(dense.cores[i].invalidations_received,
              event.cores[i].invalidations_received)
        << i;
    EXPECT_EQ(dense.cores[i].upgrades, event.cores[i].upgrades) << i;
    EXPECT_EQ(dense.cores[i].coherence_forwards, event.cores[i].coherence_forwards)
        << i;
    EXPECT_EQ(dense.cores[i].finish_cycle, event.cores[i].finish_cycle) << i;
  }
}

void run_differential(const char* app, Fabric fabric,
                      const core::PowerState& state, mem::DramPreset dram,
                      double scale = 0.01) {
  const SimResult dense =
      Cluster(cfg_for(app, fabric, state, dram, SchedulerMode::kDenseTick, scale))
          .run();
  const SimResult event =
      Cluster(cfg_for(app, fabric, state, dram, SchedulerMode::kEventDriven, scale))
          .run();
  expect_same_result(dense, event);
}

TEST(SchedulerDifferential, MotFullDdr3) {
  run_differential("fft", Fabric::kMot, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, TrueMesh3dFullDdr3) {
  run_differential("fft", Fabric::kTrueMesh3d, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, HybridBusMeshFullDdr3) {
  run_differential("volrend", Fabric::kHybridBusMesh, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, HybridBusTreeFullDdr3) {
  run_differential("radix", Fabric::kHybridBusTree, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, MotGatedPc4Mb8) {
  run_differential("cholesky", Fabric::kMot, core::PowerState::pc4_mb8(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, MotGatedPc16Mb8FastDram) {
  run_differential("fmm", Fabric::kMot, core::PowerState::pc16_mb8(),
                   mem::DramPreset::kWeis3d_42ns);
}

TEST(SchedulerDifferential, MotGatedPc4Mb32WideIo) {
  run_differential("ocean_contiguous", Fabric::kMot, core::PowerState::pc4_mb32(),
                   mem::DramPreset::kWideIo_63ns);
}

// -- coherence traffic: every sharing pattern, both fabrics, gated too --

TEST(SchedulerDifferential, CoherenceProducerConsumerMot) {
  run_differential("producer_consumer", Fabric::kMot, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, CoherenceReadMostlyNoc) {
  run_differential("read_mostly", Fabric::kTrueMesh3d, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

TEST(SchedulerDifferential, CoherenceMigratoryGatedMot) {
  run_differential("migratory", Fabric::kMot, core::PowerState::pc16_mb8(),
                   mem::DramPreset::kWideIo_63ns);
}

TEST(SchedulerDifferential, CoherenceAllToAllMot) {
  run_differential("all_to_all", Fabric::kMot, core::PowerState::full(),
                   mem::DramPreset::kDdr3_200ns);
}

// Coherence + thermal governor: invalidation traffic across a mid-run
// drain/flush/remap (directory migration) and clock-held cores whose
// acknowledgements must keep flowing.
TEST(SchedulerDifferential, CoherenceUnderThermalGovernor) {
  ClusterConfig dense = cfg_for("producer_consumer", Fabric::kMot,
                                core::PowerState::full(),
                                mem::DramPreset::kDdr3_200ns,
                                SchedulerMode::kDenseTick, 0.02);
  dense.thermal = thermal::ThermalConfig::from_envelope(
      thermal::ThermalEnvelope{true, 60.0, 70.0});
  ClusterConfig event = dense;
  event.scheduler = SchedulerMode::kEventDriven;
  expect_same_result(Cluster(dense).run(), Cluster(event).run());
}

TEST(SchedulerDifferential, ColdInstructionCachesExerciseIFetchPath) {
  ClusterConfig dense = cfg_for("fft", Fabric::kMot, core::PowerState::full(),
                                mem::DramPreset::kDdr3_200ns,
                                SchedulerMode::kDenseTick);
  dense.warm_instruction_caches = false;
  ClusterConfig event = dense;
  event.scheduler = SchedulerMode::kEventDriven;
  expect_same_result(Cluster(dense).run(), Cluster(event).run());
}

// Open-page policy changes per-access service latency based on row-buffer
// state; both schedulers must observe identical hit/miss sequences.
TEST(SchedulerDifferential, OpenPagePolicyBitIdentical) {
  ClusterConfig dense = cfg_for("fft", Fabric::kMot, core::PowerState::full(),
                                mem::DramPreset::kDdr3_200ns,
                                SchedulerMode::kDenseTick);
  dense.dram.open_page_policy = true;
  ClusterConfig event = dense;
  event.scheduler = SchedulerMode::kEventDriven;
  const SimResult d = Cluster(dense).run();
  const SimResult e = Cluster(event).run();
  expect_same_result(d, e);
  EXPECT_EQ(d.dram.page_hits, e.dram.page_hits);
  EXPECT_EQ(d.dram.page_misses, e.dram.page_misses);
  EXPECT_GT(d.dram.page_hits + d.dram.page_misses, 0u);
}

TEST(SchedulerDifferential, EventModeIsTheDefault) {
  EXPECT_EQ(ClusterConfig{}.scheduler, SchedulerMode::kEventDriven);
  EXPECT_STREQ(scheduler_name(SchedulerMode::kEventDriven), "event");
  EXPECT_STREQ(scheduler_name(SchedulerMode::kDenseTick), "dense");
}

}  // namespace
}  // namespace mot3d::cluster
