// Differential test: the production Cache against an obviously-correct
// reference model (std::list-based true LRU with full-address tags) under
// long randomized access/insert/flush sequences, across geometries.
// This is the strongest correctness net for the component every timing
// result in the repo stands on.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mem/cache.hpp"

namespace mot3d::mem {
namespace {

/// Reference: per-set std::list, most-recent at front.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& cfg) : cfg_(cfg) {}

  bool lookup(Addr addr, bool is_write) {
    const Addr line = line_of(addr);
    auto& set = sets_[set_of(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        Entry e = *it;
        e.dirty = e.dirty || is_write;
        set.erase(it);
        set.push_front(e);
        return true;
      }
    }
    return false;
  }

  // Returns evicted (line, dirty) if any.
  std::optional<std::pair<Addr, bool>> insert(Addr addr, bool dirty) {
    const Addr line = line_of(addr);
    auto& set = sets_[set_of(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        Entry e = *it;
        e.dirty = e.dirty || dirty;
        set.erase(it);
        set.push_front(e);
        return std::nullopt;
      }
    }
    std::optional<std::pair<Addr, bool>> evicted;
    if (set.size() == cfg_.associativity) {
      evicted = {set.back().line, set.back().dirty};
      set.pop_back();
    }
    set.push_front(Entry{line, dirty});
    return evicted;
  }

  std::vector<Addr> flush() {
    std::vector<Addr> dirty;
    for (auto& [idx, set] : sets_) {
      for (const Entry& e : set) {
        if (e.dirty) dirty.push_back(e.line);
      }
    }
    sets_.clear();
    std::sort(dirty.begin(), dirty.end());
    return dirty;
  }

  std::size_t valid_lines() const {
    std::size_t n = 0;
    for (const auto& [idx, set] : sets_) n += set.size();
    return n;
  }

 private:
  struct Entry {
    Addr line;
    bool dirty;
  };
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(cfg_.line_bytes - 1); }
  std::size_t set_of(Addr line) const {
    return static_cast<std::size_t>(
        ((line >> log2_exact(cfg_.line_bytes)) >> cfg_.index_shift) &
        (cfg_.num_sets() - 1));
  }
  CacheConfig cfg_;
  std::map<std::size_t, std::list<Entry>> sets_;
};

struct Geometry {
  std::size_t capacity, line, ways;
  unsigned shift;
};

class CacheDifferential : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheDifferential, RandomisedAgreement) {
  const Geometry g = GetParam();
  const CacheConfig cfg{.capacity_bytes = g.capacity,
                        .line_bytes = g.line,
                        .associativity = g.ways,
                        .index_shift = g.shift};
  Cache dut(cfg);
  ReferenceCache ref(cfg);
  Rng rng(0xC0FFEE ^ g.capacity ^ (g.ways << 8));

  // Address pool sized to create real eviction pressure.
  const Addr pool = static_cast<Addr>(g.capacity) * 3;

  for (int step = 0; step < 20000; ++step) {
    const Addr addr = rng.next_below(pool);
    const int op = static_cast<int>(rng.next_below(100));
    if (op < 55) {
      // lookup (reads and writes)
      const bool w = rng.next_bool(0.3);
      ASSERT_EQ(dut.lookup(addr, w).hit, ref.lookup(addr, w)) << "step " << step;
    } else if (op < 97) {
      // miss-refill insert
      const bool dirty = rng.next_bool(0.25);
      const InsertResult di = dut.insert(addr, dirty);
      const auto ri = ref.insert(addr, dirty);
      ASSERT_EQ(di.evicted, ri.has_value()) << "step " << step;
      if (ri.has_value()) {
        ASSERT_EQ(di.evicted_line_addr, ri->first) << "step " << step;
        ASSERT_EQ(di.evicted_dirty, ri->second) << "step " << step;
      }
    } else {
      // occasional full flush (the power-gating path)
      std::vector<Addr> dd = dut.flush();
      std::sort(dd.begin(), dd.end());
      ASSERT_EQ(dd, ref.flush()) << "step " << step;
    }
    if (step % 997 == 0) {
      ASSERT_EQ(dut.valid_lines(), ref.valid_lines()) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(Geometry{4 * 1024, 32, 4, 0},    // the paper's L1
                      Geometry{64 * 1024, 32, 8, 5},   // the paper's L2 bank
                      Geometry{1024, 32, 1, 0},        // direct-mapped corner
                      Geometry{2048, 64, 16, 0},       // fully assoc-ish, big lines
                      Geometry{8 * 1024, 16, 2, 3}),   // small lines, shifted index
    [](const auto& info) {
      return "cap" + std::to_string(info.param.capacity) + "w" +
             std::to_string(info.param.ways) + "s" + std::to_string(info.param.shift);
    });

}  // namespace
}  // namespace mot3d::mem
