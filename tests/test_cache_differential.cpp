// Differential test: the production Cache against an obviously-correct
// reference model (std::list-based true LRU with full-address tags) under
// long randomized access/insert/flush sequences, across geometries.
// This is the strongest correctness net for the component every timing
// result in the repo stands on.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mem/cache.hpp"

namespace mot3d::mem {
namespace {

/// Reference: per-set std::list, most-recent at front.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& cfg) : cfg_(cfg) {}

  bool lookup(Addr addr, bool is_write) {
    const Addr line = line_of(addr);
    auto& set = sets_[set_of(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        Entry e = *it;
        e.dirty = e.dirty || is_write;
        set.erase(it);
        set.push_front(e);
        return true;
      }
    }
    return false;
  }

  // Returns evicted (line, dirty) if any.
  std::optional<std::pair<Addr, bool>> insert(Addr addr, bool dirty) {
    const Addr line = line_of(addr);
    auto& set = sets_[set_of(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        Entry e = *it;
        e.dirty = e.dirty || dirty;
        set.erase(it);
        set.push_front(e);
        return std::nullopt;
      }
    }
    std::optional<std::pair<Addr, bool>> evicted;
    if (set.size() == cfg_.associativity) {
      evicted = {set.back().line, set.back().dirty};
      set.pop_back();
    }
    set.push_front(Entry{line, dirty});
    return evicted;
  }

  std::vector<Addr> flush() {
    std::vector<Addr> dirty;
    for (auto& [idx, set] : sets_) {
      for (const Entry& e : set) {
        if (e.dirty) dirty.push_back(e.line);
      }
    }
    sets_.clear();
    std::sort(dirty.begin(), dirty.end());
    return dirty;
  }

  std::size_t valid_lines() const {
    std::size_t n = 0;
    for (const auto& [idx, set] : sets_) n += set.size();
    return n;
  }

 private:
  struct Entry {
    Addr line;
    bool dirty;
  };
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(cfg_.line_bytes - 1); }
  std::size_t set_of(Addr line) const {
    return static_cast<std::size_t>(
        ((line >> log2_exact(cfg_.line_bytes)) >> cfg_.index_shift) &
        (cfg_.num_sets() - 1));
  }
  CacheConfig cfg_;
  std::map<std::size_t, std::list<Entry>> sets_;
};

struct Geometry {
  std::size_t capacity, line, ways;
  unsigned shift;
};

class CacheDifferential : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheDifferential, RandomisedAgreement) {
  const Geometry g = GetParam();
  const CacheConfig cfg{.capacity_bytes = g.capacity,
                        .line_bytes = g.line,
                        .associativity = g.ways,
                        .index_shift = g.shift};
  Cache dut(cfg);
  ReferenceCache ref(cfg);
  Rng rng(0xC0FFEE ^ g.capacity ^ (g.ways << 8));

  // Address pool sized to create real eviction pressure.
  const Addr pool = static_cast<Addr>(g.capacity) * 3;

  for (int step = 0; step < 20000; ++step) {
    const Addr addr = rng.next_below(pool);
    const int op = static_cast<int>(rng.next_below(100));
    if (op < 55) {
      // lookup (reads and writes)
      const bool w = rng.next_bool(0.3);
      ASSERT_EQ(dut.lookup(addr, w).hit, ref.lookup(addr, w)) << "step " << step;
    } else if (op < 97) {
      // miss-refill insert
      const bool dirty = rng.next_bool(0.25);
      const InsertResult di = dut.insert(addr, dirty);
      const auto ri = ref.insert(addr, dirty);
      ASSERT_EQ(di.evicted, ri.has_value()) << "step " << step;
      if (ri.has_value()) {
        ASSERT_EQ(di.evicted_line_addr, ri->first) << "step " << step;
        ASSERT_EQ(di.evicted_dirty, ri->second) << "step " << step;
      }
    } else {
      // occasional full flush (the power-gating path)
      std::vector<Addr> dd = dut.flush();
      std::sort(dd.begin(), dd.end());
      ASSERT_EQ(dd, ref.flush()) << "step " << step;
    }
    if (step % 997 == 0) {
      ASSERT_EQ(dut.valid_lines(), ref.valid_lines()) << "step " << step;
    }
  }
}

// ---- directed eviction / write-back cases ----------------------------------
// The randomized differential proves DUT == reference; these pin the
// *intended* semantics directly, so a bug shared with the reference model
// cannot hide.

TEST(CacheDirected, TrueLruEvictionOrderWithTouches) {
  // 8 sets; addresses k * 256 all land in set 0 (line 32 B, 4-way).
  const CacheConfig cfg{.capacity_bytes = 1024,
                        .line_bytes = 32,
                        .associativity = 4,
                        .index_shift = 0};
  Cache cache(cfg);
  auto addr = [](Addr k) { return k * 256; };

  for (Addr k = 0; k < 4; ++k) {
    const InsertResult r = cache.insert(addr(k), false);
    EXPECT_FALSE(r.evicted) << k;
  }
  // Touch A0: recency becomes A0, A3, A2, A1.
  EXPECT_TRUE(cache.lookup(addr(0), false).hit);

  // A4 must displace the true LRU, A1 — not the oldest-inserted A0.
  const InsertResult e1 = cache.insert(addr(4), false);
  ASSERT_TRUE(e1.evicted);
  EXPECT_EQ(e1.evicted_line_addr, addr(1));
  EXPECT_FALSE(e1.evicted_dirty);

  // Dirty A2 via a write hit; recency: A2, A4, A0, A3.
  EXPECT_TRUE(cache.lookup(addr(2), true).hit);

  // Three more inserts evict A3, A0, A4 (all clean) in LRU order...
  for (Addr k = 5; k < 8; ++k) {
    const InsertResult r = cache.insert(addr(k), false);
    ASSERT_TRUE(r.evicted) << k;
    EXPECT_FALSE(r.evicted_dirty) << k;
  }
  // ...so the next eviction is the dirty A2, and it must demand write-back.
  const InsertResult e2 = cache.insert(addr(8), false);
  ASSERT_TRUE(e2.evicted);
  EXPECT_EQ(e2.evicted_line_addr, addr(2));
  EXPECT_TRUE(e2.evicted_dirty);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(CacheDirected, FlushReturnsExactlyTheDirtyLines) {
  const CacheConfig cfg{.capacity_bytes = 4 * 1024,
                        .line_bytes = 32,
                        .associativity = 4,
                        .index_shift = 0};
  Cache cache(cfg);
  std::vector<Addr> dirty_expected;
  for (Addr k = 0; k < 32; ++k) {
    const bool dirty = (k % 3) == 0;
    cache.insert(k * 32, dirty);
    if (dirty) dirty_expected.push_back(k * 32);
  }
  std::vector<Addr> flushed = cache.flush();
  std::sort(flushed.begin(), flushed.end());
  EXPECT_EQ(flushed, dirty_expected);
  EXPECT_EQ(cache.valid_lines(), 0u);
  EXPECT_EQ(cache.dirty_lines(), 0u);
  // A flushed cache misses everything it previously held.
  for (Addr k = 0; k < 32; ++k) EXPECT_FALSE(cache.probe(k * 32)) << k;
}

TEST(CacheDirected, InsertingDirtyOverCleanUpgradesAndSticks) {
  const CacheConfig cfg{.capacity_bytes = 1024,
                        .line_bytes = 32,
                        .associativity = 4,
                        .index_shift = 0};
  Cache cache(cfg);
  cache.insert(0, false);
  EXPECT_EQ(cache.dirty_lines(), 0u);
  // An L1 write-back landing on a resident clean line marks it dirty.
  cache.insert(0, true);
  EXPECT_EQ(cache.dirty_lines(), 1u);
  EXPECT_EQ(cache.valid_lines(), 1u);
  // A later clean re-insert must not wash the dirty bit out.
  cache.insert(0, false);
  EXPECT_EQ(cache.dirty_lines(), 1u);
}

// ---- multi-bank interleave (the L2's organisation) -------------------------
// The stacked L2 is 32 banks with the low log2(banks) line-address bits as
// the (fixed) bank index and index_shift = 5 stripping them from each
// bank's set index.  These tests drive a 32-bank ensemble exactly the way
// L2System routes lines, against one reference model per bank.

struct BankEnsemble {
  static constexpr std::size_t kBanks = 32;
  static constexpr std::size_t kLine = 32;

  explicit BankEnsemble(std::size_t bank_capacity) {
    const CacheConfig cfg{.capacity_bytes = bank_capacity,
                          .line_bytes = kLine,
                          .associativity = 8,
                          .index_shift = 5};  // log2(kBanks)
    for (std::size_t b = 0; b < kBanks; ++b) {
      duts.emplace_back(cfg);
      refs.emplace_back(cfg);
    }
  }

  static std::size_t bank_of(Addr addr) { return (addr / kLine) % kBanks; }

  std::vector<Cache> duts;
  std::vector<ReferenceCache> refs;
};

TEST(CacheMultiBank, SequentialLinesInterleaveUniformly) {
  BankEnsemble e(64 * 1024);
  const std::size_t lines = 32 * 128;
  for (Addr i = 0; i < lines; ++i) {
    const Addr addr = i * BankEnsemble::kLine;
    e.duts[BankEnsemble::bank_of(addr)].insert(addr, false);
  }
  for (std::size_t b = 0; b < BankEnsemble::kBanks; ++b) {
    EXPECT_EQ(e.duts[b].valid_lines(), 128u) << "bank " << b;
  }
  // Each line lives only in its home bank — never aliased elsewhere.
  for (Addr i = 0; i < lines; i += 37) {
    const Addr addr = i * BankEnsemble::kLine;
    for (std::size_t b = 0; b < BankEnsemble::kBanks; ++b) {
      EXPECT_EQ(e.duts[b].probe(addr), b == BankEnsemble::bank_of(addr))
          << "line " << i << " bank " << b;
    }
  }
}

TEST(CacheMultiBank, RandomisedEnsembleAgreementAndIsolation) {
  // Small banks (2 KB) so random traffic creates real per-bank eviction
  // pressure; a set-index bug that mixes bank bits into the set (or vice
  // versa) diverges from the per-bank reference immediately.
  BankEnsemble e(2 * 1024);
  Rng rng(0xBA2C);
  const Addr pool = 32 * 2 * 1024 * 3;

  for (int step = 0; step < 30000; ++step) {
    const Addr addr = rng.next_below(pool) & ~static_cast<Addr>(31);
    const std::size_t b = BankEnsemble::bank_of(addr);
    const int op = static_cast<int>(rng.next_below(100));
    if (op < 50) {
      const bool w = rng.next_bool(0.3);
      ASSERT_EQ(e.duts[b].lookup(addr, w).hit, e.refs[b].lookup(addr, w))
          << "step " << step << " bank " << b;
    } else if (op < 97) {
      const bool dirty = rng.next_bool(0.25);
      const InsertResult di = e.duts[b].insert(addr, dirty);
      const auto ri = e.refs[b].insert(addr, dirty);
      ASSERT_EQ(di.evicted, ri.has_value()) << "step " << step << " bank " << b;
      if (ri.has_value()) {
        ASSERT_EQ(di.evicted_line_addr, ri->first) << "step " << step;
        ASSERT_EQ(di.evicted_dirty, ri->second) << "step " << step;
        // An eviction never crosses banks: the victim belongs here too.
        ASSERT_EQ(BankEnsemble::bank_of(di.evicted_line_addr), b) << "step " << step;
      }
    } else {
      // Flush one bank (the power-gating path) — neighbours keep their state.
      std::vector<Addr> dd = e.duts[b].flush();
      std::sort(dd.begin(), dd.end());
      ASSERT_EQ(dd, e.refs[b].flush()) << "step " << step << " bank " << b;
    }
  }
  for (std::size_t b = 0; b < BankEnsemble::kBanks; ++b) {
    EXPECT_EQ(e.duts[b].valid_lines(), e.refs[b].valid_lines()) << "bank " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(Geometry{4 * 1024, 32, 4, 0},    // the paper's L1
                      Geometry{64 * 1024, 32, 8, 5},   // the paper's L2 bank
                      Geometry{1024, 32, 1, 0},        // direct-mapped corner
                      Geometry{2048, 64, 16, 0},       // fully assoc-ish, big lines
                      Geometry{8 * 1024, 16, 2, 3}),   // small lines, shifted index
    [](const auto& info) {
      return "cap" + std::to_string(info.param.capacity) + "w" +
             std::to_string(info.param.ways) + "s" + std::to_string(info.param.shift);
    });

}  // namespace
}  // namespace mot3d::mem
