// Integration tests: the full cluster (cores + L1 + interconnect + stacked
// L2 + Miss bus + DRAM) running synthetic SPLASH-2 workloads end to end.
// Checks determinism, conservation invariants, Table I latency visibility,
// power-state plumbing and basic cross-fabric sanity.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace mot3d::cluster {
namespace {

ClusterConfig small_cfg(const char* app, Fabric fabric,
                        core::PowerState state = core::PowerState::full(),
                        double scale = 0.01, std::uint64_t seed = 42) {
  return make_paper_config(workload::profile_by_name(app), fabric, state,
                           mem::DramPreset::kDdr3_200ns, scale, seed);
}

TEST(Cluster, RunsToCompletionOnMot) {
  Cluster c(small_cfg("fft", Fabric::kMot));
  const SimResult r = c.run();
  EXPECT_GT(r.cycles, 1000u);
  EXPECT_GT(r.instructions, 10000u);
  EXPECT_EQ(r.cores.size(), 16u);
  EXPECT_EQ(r.fabric, "3-D MoT");
}

TEST(Cluster, DeterministicAcrossRuns) {
  const SimResult a = Cluster(small_cfg("volrend", Fabric::kMot)).run();
  const SimResult b = Cluster(small_cfg("volrend", Fabric::kMot)).run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l2.accesses(), b.l2.accesses());
  EXPECT_DOUBLE_EQ(a.energy.edp_energy_pj(), b.energy.edp_energy_pj());
}

TEST(Cluster, SeedChangesChangeOutcome) {
  const SimResult a = Cluster(small_cfg("volrend", Fabric::kMot)).run();
  const SimResult b =
      Cluster(small_cfg("volrend", Fabric::kMot, core::PowerState::full(), 0.01, 43))
          .run();
  EXPECT_NE(a.cycles, b.cycles);
}

TEST(Cluster, ConservationInvariants) {
  Cluster c(small_cfg("raytrace", Fabric::kMot));
  const SimResult r = c.run();
  // Every injected request is delivered and answered.
  EXPECT_EQ(r.interconnect.requests_injected, r.interconnect.requests_delivered);
  EXPECT_EQ(r.interconnect.responses_injected, r.interconnect.responses_delivered);
  EXPECT_EQ(r.interconnect.requests_injected, r.interconnect.responses_injected);
  // L2 served exactly the delivered requests.
  EXPECT_EQ(r.l2.accesses(), r.interconnect.requests_delivered);
  // Responses measured at the cores match the L2 latency histogram count.
  EXPECT_EQ(r.l2_latency.count(), r.interconnect.responses_delivered);
  // Energy is positive in every accounted component.
  EXPECT_GT(r.energy.component_pj(power::Component::kCore), 0.0);
  EXPECT_GT(r.energy.component_pj(power::Component::kL2), 0.0);
  EXPECT_GT(r.energy.component_pj(power::Component::kInterconnect), 0.0);
  EXPECT_GT(r.edp_pj_s, 0.0);
}

TEST(Cluster, MotHitLatencyMatchesTableI) {
  // Unloaded L2 hits travel in exactly 12 cycles at Full connection; with
  // load the mean can only go up.  The minimum observed must be 12.
  Cluster c(small_cfg("fft", Fabric::kMot));
  const SimResult r = c.run();
  ASSERT_GT(r.l2_hit_latency.count(), 0u);
  EXPECT_EQ(r.l2_hit_latency.min(), 12u);
  EXPECT_GE(r.l2_hit_latency.mean(), 12.0);
}

TEST(Cluster, Pc4Mb8HitLatencyMatchesTableI) {
  Cluster c(small_cfg("fft", Fabric::kMot, core::PowerState::pc4_mb8()));
  const SimResult r = c.run();
  ASSERT_GT(r.l2_hit_latency.count(), 0u);
  EXPECT_EQ(r.l2_hit_latency.min(), 7u);
}

TEST(Cluster, PowerGatedRunUsesOnlyActiveResources) {
  Cluster c(small_cfg("fft", Fabric::kMot, core::PowerState::pc4_mb32()));
  const SimResult r = c.run();
  EXPECT_EQ(r.cores.size(), 4u);
  EXPECT_EQ(r.power_state, "PC4-MB32");
  EXPECT_GT(r.cycles, 0u);
}

TEST(Cluster, FewerCoresRunLonger) {
  const SimResult full =
      Cluster(small_cfg("radix", Fabric::kMot, core::PowerState::full(), 0.02)).run();
  const SimResult pc4 =
      Cluster(small_cfg("radix", Fabric::kMot, core::PowerState::pc4_mb32(), 0.02))
          .run();
  // radix scales, so 4 cores are much slower than 16.
  EXPECT_GT(pc4.cycles, full.cycles * 2);
}

TEST(Cluster, NocFabricsRunToCompletion) {
  for (Fabric f : {Fabric::kTrueMesh3d, Fabric::kHybridBusMesh,
                   Fabric::kHybridBusTree}) {
    Cluster c(small_cfg("fft", f));
    const SimResult r = c.run();
    EXPECT_GT(r.cycles, 1000u) << fabric_name(f);
    EXPECT_EQ(r.interconnect.requests_injected, r.interconnect.responses_delivered)
        << fabric_name(f);
  }
}

TEST(Cluster, MotIsFasterThanPacketSwitchedBaselines) {
  // The headline of Fig. 6: the circuit-switched MoT beats all three
  // packet-switched baselines on the same workload.
  const SimResult mot = Cluster(small_cfg("fmm", Fabric::kMot)).run();
  for (Fabric f : {Fabric::kTrueMesh3d, Fabric::kHybridBusMesh,
                   Fabric::kHybridBusTree}) {
    const SimResult other = Cluster(small_cfg("fmm", f)).run();
    EXPECT_LT(mot.cycles, other.cycles) << fabric_name(f);
    EXPECT_LT(mot.l2_hit_latency.mean(), other.l2_hit_latency.mean())
        << fabric_name(f);
  }
}

TEST(Cluster, GatedStatesRejectedOnNocFabrics) {
  EXPECT_THROW(
      Cluster(small_cfg("fft", Fabric::kTrueMesh3d, core::PowerState::pc16_mb8())),
      std::invalid_argument);
}

TEST(Cluster, DramPresetWiredThrough) {
  ClusterConfig cfg = small_cfg("fft", Fabric::kMot);
  cfg.dram_preset = mem::DramPreset::kWeis3d_42ns;
  Cluster c(cfg);
  const SimResult r = c.run();
  EXPECT_DOUBLE_EQ(r.dram_latency_ns, 42.0);
}

TEST(Cluster, FasterDramShortensRuns) {
  ClusterConfig slow = small_cfg("ocean_contiguous", Fabric::kMot);
  ClusterConfig fast = slow;
  fast.dram_preset = mem::DramPreset::kWeis3d_42ns;
  const SimResult rs = Cluster(slow).run();
  const SimResult rf = Cluster(fast).run();
  EXPECT_LT(rf.cycles, rs.cycles);
}

TEST(Cluster, StepAndFinishedApi) {
  Cluster c(small_cfg("fft", Fabric::kMot));
  EXPECT_FALSE(c.finished());
  c.step(100);
  EXPECT_EQ(c.now(), 100u);
  const SimResult partial = c.collect_result();
  EXPECT_EQ(partial.cycles, 100u);
}

TEST(Cluster, L1MissRatesInPlausibleBand) {
  Cluster c(small_cfg("fft", Fabric::kMot, core::PowerState::full(), 0.02));
  const SimResult r = c.run();
  EXPECT_GT(r.l1d_miss_rate, 0.01);
  EXPECT_LT(r.l1d_miss_rate, 0.30);
  // Warmed I-caches: steady-state instruction stream barely misses.
  EXPECT_LT(r.l1i_miss_rate, 0.05);
}

TEST(Cluster, ColdInstructionCachesMissOnFirstSweep) {
  ClusterConfig cfg = small_cfg("fft", Fabric::kMot);
  cfg.warm_instruction_caches = false;
  const SimResult cold = Cluster(cfg).run();
  const SimResult warm = Cluster(small_cfg("fft", Fabric::kMot)).run();
  EXPECT_GT(cold.l1i_miss_rate, warm.l1i_miss_rate);
  EXPECT_GT(cold.cycles, warm.cycles);  // I-refills ride the 200 ns Miss bus
}

}  // namespace
}  // namespace mot3d::cluster
