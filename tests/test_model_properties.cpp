// Cross-cutting model properties that individual unit files don't pin
// down: the stack stream's L1 residency, MoT latency monotonicity over the
// whole (cores x banks) gating grid, bus slot pacing, and energy-model
// consistency between the two directions of the MoT.
#include <gtest/gtest.h>

#include <set>

#include "cacti/sram_model.hpp"
#include "core/mot_timing.hpp"
#include "noc/noc_interconnect.hpp"
#include "workload/synthetic_trace.hpp"

namespace mot3d {
namespace {

// ---- workload: stack stream ----

TEST(StackStream, StaysInsideItsRegionAndIsHot) {
  const workload::AppProfile& app = workload::profile_by_name("fft");
  workload::Workload w(app, 4, 0.05, 99);
  auto trace = w.make_trace(2);
  const Addr base = workload::AddressMap::private_base(2);
  std::set<Addr> stack_lines;
  std::size_t stack_hits = 0, data_ops = 0;
  for (int i = 0; i < 200000; ++i) {
    const cpu::TraceRecord r = trace->next();
    if (r.kind == cpu::TraceKind::kEnd) break;
    if (r.kind != cpu::TraceKind::kMem || r.op == MemOp::kInstrFetch) continue;
    ++data_ops;
    if (r.addr >= base && r.addr < base + app.stack_bytes) {
      ++stack_hits;
      stack_lines.insert(r.addr / 32);
    }
  }
  ASSERT_GT(data_ops, 1000u);
  // Roughly the configured stack fraction of data references...
  EXPECT_NEAR(static_cast<double>(stack_hits) / static_cast<double>(data_ops),
              app.stack_fraction, 0.06);
  // ... confined to a region that fits inside the 4 KB L1 permanently.
  EXPECT_LE(stack_lines.size() * 32, app.stack_bytes);
}

// ---- MoT timing: monotonicity over the whole gating grid ----

struct GridPoint {
  std::size_t cores, banks;
};

class MotGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams fp;
  cacti::SramBankConfig bank;
  core::MotTimingModel model{tech, fp, bank};
};

TEST_P(MotGrid, GatingNeverSlowsOrLeaksMore) {
  const GridPoint g = GetParam();
  const auto full = model.timing(16, 32);
  const auto gated = model.timing(g.cores, g.banks);
  EXPECT_LE(gated.l2_round_trip(), full.l2_round_trip());
  EXPECT_LE(gated.request_delay_ns, full.request_delay_ns + 1e-9);

  const core::PowerState full_state = core::PowerState::full();
  const core::PowerState state("grid", 16, g.cores, 32, g.banks);
  EXPECT_LE(model.leakage_mw(state), model.leakage_mw(full_state) + 1e-9);
  EXPECT_LE(model.powered_switches(state), model.powered_switches(full_state));
  EXPECT_LE(model.request_energy_pj(state, false),
            model.request_energy_pj(full_state, false) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MotGrid,
    ::testing::Values(GridPoint{16, 32}, GridPoint{16, 16}, GridPoint{16, 8},
                      GridPoint{8, 32}, GridPoint{8, 16}, GridPoint{8, 8},
                      GridPoint{4, 32}, GridPoint{4, 16}, GridPoint{4, 8},
                      GridPoint{2, 8}, GridPoint{4, 4}),
    [](const auto& info) {
      return "c" + std::to_string(info.param.cores) + "b" +
             std::to_string(info.param.banks);
    });

TEST(MotEnergyModel, DirectionsAreSymmetricForEqualBits) {
  // The request and response networks are mirrored; with equal payloads
  // their wire energy must match (only header widths differ in practice).
  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams fp;
  cacti::SramBankConfig bank;
  core::MotBusConfig bus;
  bus.addr_bits = 0;
  bus.ctl_bits = 8;  // equal 8-bit headers both ways
  core::MotTimingModel model(tech, fp, bank, bus);
  const core::PowerState s = core::PowerState::full();
  EXPECT_NEAR(model.request_energy_pj(s, true), model.response_energy_pj(s, true),
              1e-9);
}

// ---- NoC: bus slot pacing ----

TEST(BusPacing, QuadrantBusIsSlowerPerFlit) {
  // One 5-flit... (1 + line_flits) response over an otherwise idle bus:
  // the Bus-Tree's 4-cycle slots must space delivery accordingly compared
  // with the Bus-Mesh's 2-cycle pillar slots.
  noc::NocConfig cfg;
  const power::InterconnectPowerModel pm(
      phys::WireModel(phys::default_technology()));
  auto measure = [&](noc::NocTopology topo) {
    auto icn = noc::make_noc(topo, cfg, pm);
    Cycle done = 0;
    icn->set_response_sink([&](const MemResponse&, Cycle t) { done = t; });
    MemResponse resp{.id = 1, .core = 0, .bank = 0, .addr = 0, .is_write = false,
                     .l2_hit = true, .issue_cycle = 0};
    icn->try_inject_response(resp, 0);
    for (Cycle t = 0; t < 500 && done == 0; ++t) icn->tick(t);
    return done;
  };
  const Cycle mesh = measure(noc::NocTopology::kHybridBusMesh);
  const Cycle tree = measure(noc::NocTopology::kHybridBusTree);
  ASSERT_GT(mesh, 0u);
  ASSERT_GT(tree, 0u);
  // 3 flits: two extra bus slots at +2 cycles each difference minimum.
  EXPECT_GE(tree, mesh + 2);
}

TEST(NocZeroLoad, MeshLatencyTracksHopFormula) {
  // Corner-to-corner single request on the True 3-D Mesh: 3+3 XY hops +
  // 2 Z hops + source/sink; per hop pipeline(1)+link(1).  The measured
  // zero-load latency must sit within a small window of the formula.
  noc::NocConfig cfg;
  const power::InterconnectPowerModel pm(
      phys::WireModel(phys::default_technology()));
  auto icn = noc::make_noc(noc::NocTopology::kTrueMesh3d, cfg, pm);
  Cycle done = 0;
  icn->set_request_sink([&](const MemRequest&, Cycle t) { done = t; });
  MemRequest r{.id = 1, .core = 0, .bank = 31, .addr = 0, .is_write = false,
               .issue_cycle = 0};
  icn->try_inject_request(r, 0);
  for (Cycle t = 0; t < 200 && done == 0; ++t) icn->tick(t);
  // 9 router traversals (src tile + 6 in-plane + 2 vertical), ~2 cy each,
  // + injection pipeline.
  EXPECT_GE(done, 16u);
  EXPECT_LE(done, 26u);
}

}  // namespace
}  // namespace mot3d
