// Experiment-shape regression tests: small-scale versions of the paper's
// headline findings.  These guard the calibration — if a model change
// flips who wins (not just by how much), these fail before the full
// bench harnesses would show it.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace mot3d::cluster {
namespace {

SimResult run(const char* app, Fabric fabric, const core::PowerState& state,
              mem::DramPreset dram, double scale = 0.2) {
  return Cluster(make_paper_config(workload::profile_by_name(app), fabric, state,
                                   dram, scale, 42))
      .run();
}

double edp_norm(const char* app, const core::PowerState& state,
                mem::DramPreset dram, double scale = 0.2) {
  const SimResult full =
      run(app, Fabric::kMot, core::PowerState::full(), dram, scale);
  const SimResult gated = run(app, Fabric::kMot, state, dram, scale);
  return gated.edp_pj_s / full.edp_pj_s;
}

// ---- Fig. 6 shapes ----

TEST(ExperimentShapes, Fig6aLatencyOrdering) {
  // MoT < Bus-Mesh <= True Mesh < Bus-Tree on L2 hit latency.
  const auto dram = mem::DramPreset::kDdr3_200ns;
  const double mot =
      run("fft", Fabric::kMot, core::PowerState::full(), dram).l2_hit_latency.mean();
  const double mesh = run("fft", Fabric::kTrueMesh3d, core::PowerState::full(), dram)
                          .l2_hit_latency.mean();
  const double busmesh =
      run("fft", Fabric::kHybridBusMesh, core::PowerState::full(), dram)
          .l2_hit_latency.mean();
  const double bustree =
      run("fft", Fabric::kHybridBusTree, core::PowerState::full(), dram)
          .l2_hit_latency.mean();
  EXPECT_LT(mot, busmesh);
  EXPECT_LE(busmesh, mesh);
  EXPECT_LT(mesh, bustree);
}

TEST(ExperimentShapes, Fig6bMotWinsModestly) {
  // The MoT's execution-time win over the True Mesh is real but bounded
  // (paper: ~13 % average; we accept 5..25 % per app).
  const auto dram = mem::DramPreset::kDdr3_200ns;
  for (const char* app : {"volrend", "radix"}) {
    const double mot =
        static_cast<double>(run(app, Fabric::kMot, core::PowerState::full(), dram).cycles);
    const double mesh = static_cast<double>(
        run(app, Fabric::kTrueMesh3d, core::PowerState::full(), dram).cycles);
    const double gain = 1.0 - mot / mesh;
    EXPECT_GT(gain, 0.05) << app;
    EXPECT_LT(gain, 0.25) << app;
  }
}

// ---- Fig. 7 shapes ----

TEST(ExperimentShapes, Fig7aPc4HelpsLimitedApps) {
  const auto dram = mem::DramPreset::kDdr3_200ns;
  EXPECT_LT(edp_norm("volrend", core::PowerState::pc4_mb32(), dram), 0.75);
  EXPECT_LT(edp_norm("volrend", core::PowerState::pc4_mb8(), dram), 0.65);
}

TEST(ExperimentShapes, Fig7aPc4HurtsScalableApps) {
  const auto dram = mem::DramPreset::kDdr3_200ns;
  EXPECT_GT(edp_norm("water_nsquared", core::PowerState::pc4_mb32(), dram), 1.1);
}

TEST(ExperimentShapes, Fig7aPc16Mb8SplitsByWorkingSet) {
  const auto dram = mem::DramPreset::kDdr3_200ns;
  // Small working set: bank gating pays.
  EXPECT_LT(edp_norm("water_nsquared", core::PowerState::pc16_mb8(), dram), 1.0);
  // Capacity-hungry: it backfires.  The thrashing needs enough working-set
  // reuse to show, hence the bench-default scale here.
  EXPECT_GT(edp_norm("ocean_contiguous", core::PowerState::pc16_mb8(), dram, 0.5),
            1.0);
}

TEST(ExperimentShapes, Fig7bScalabilityGroups) {
  const auto dram = mem::DramPreset::kDdr3_200ns;
  const double lim_t4 = static_cast<double>(
      run("volrend", Fabric::kMot, core::PowerState::pc4_mb32(), dram).cycles);
  const double lim_t16 = static_cast<double>(
      run("volrend", Fabric::kMot, core::PowerState::full(), dram).cycles);
  const double sca_t4 = static_cast<double>(
      run("fmm", Fabric::kMot, core::PowerState::pc4_mb32(), dram).cycles);
  const double sca_t16 = static_cast<double>(
      run("fmm", Fabric::kMot, core::PowerState::full(), dram).cycles);
  const double lim_gain = 1.0 - lim_t16 / lim_t4;
  const double sca_gain = 1.0 - sca_t16 / sca_t4;
  EXPECT_LT(lim_gain, 0.35);       // paper: <= 33 %
  EXPECT_GT(sca_gain, 0.45);       // paper: up to 69 %, avg 64 %
  EXPECT_GT(sca_gain, lim_gain + 0.2);
}

// ---- Fig. 8 shape ----

TEST(ExperimentShapes, Fig8FasterDramFavoursBankGating) {
  // The capacity-hungry app's PC16-MB8 EDP must improve monotonically as
  // the DRAM gets faster (the whole point of Fig. 8).
  const double e200 =
      edp_norm("ocean_contiguous", core::PowerState::pc16_mb8(),
               mem::DramPreset::kDdr3_200ns, 0.4);
  const double e63 =
      edp_norm("ocean_contiguous", core::PowerState::pc16_mb8(),
               mem::DramPreset::kWideIo_63ns, 0.4);
  const double e42 =
      edp_norm("ocean_contiguous", core::PowerState::pc16_mb8(),
               mem::DramPreset::kWeis3d_42ns, 0.4);
  EXPECT_LT(e63, e200);
  EXPECT_LT(e42, e200);
}

// ---- Table I shape ----

TEST(ExperimentShapes, TableIGatedStatesAreFasterPerAccess) {
  const auto dram = mem::DramPreset::kDdr3_200ns;
  const SimResult full = run("fft", Fabric::kMot, core::PowerState::full(), dram);
  const SimResult pc4mb8 =
      run("fft", Fabric::kMot, core::PowerState::pc4_mb8(), dram);
  EXPECT_EQ(full.l2_hit_latency.min(), 12u);
  EXPECT_EQ(pc4mb8.l2_hit_latency.min(), 7u);
}

}  // namespace
}  // namespace mot3d::cluster
