// Property tests for the synthetic workload generators, cross-checked over
// ALL eight SPLASH-2 profiles (test_workload.cpp probes individual apps;
// here every invariant must hold for every profile):
//  * full determinism of the trace stream in (profile, threads, scale, seed)
//    and sensitivity to the seed;
//  * the PhasePlan is a pure function of (profile, scale) — independent of
//    thread count and seed — and conserves the scaled instruction budget;
//  * the Amdahl structure: the serial share of every plan tracks the
//    profile's serial_fraction;
//  * barrier-count invariants: every thread of every profile emits exactly
//    the plan's barriers, in order, once each.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cpu/trace.hpp"
#include "workload/app_profile.hpp"
#include "workload/synthetic_trace.hpp"

namespace mot3d::workload {
namespace {

using cpu::TraceKind;
using cpu::TraceRecord;

bool same_record(const TraceRecord& a, const TraceRecord& b) {
  return a.kind == b.kind && a.addr == b.addr &&
         a.compute_cycles == b.compute_cycles && a.barrier_id == b.barrier_id &&
         a.op == b.op;
}

/// Drain a trace to kEnd, recording instructions and the barrier sequence.
struct Drained {
  std::uint64_t instructions = 0;
  std::vector<std::uint32_t> barriers;
  bool terminated = false;
};

Drained drain(cpu::TraceSource& src, std::size_t limit = 5'000'000) {
  Drained d;
  for (std::size_t i = 0; i < limit; ++i) {
    const TraceRecord r = src.next();
    switch (r.kind) {
      case TraceKind::kEnd:
        d.terminated = true;
        return d;
      case TraceKind::kCompute:
        d.instructions += r.compute_cycles;
        break;
      case TraceKind::kBarrier:
        d.barriers.push_back(r.barrier_id);
        break;
      case TraceKind::kMem:
        if (r.op != MemOp::kInstrFetch) ++d.instructions;
        break;
    }
  }
  return d;
}

TEST(WorkloadProperties, TraceDeterministicForEveryProfile) {
  for (const AppProfile& app : splash2_profiles()) {
    Workload w1(app, 4, 0.02, 91);
    Workload w2(app, 4, 0.02, 91);
    for (std::size_t t = 0; t < 4; ++t) {
      auto a = w1.make_trace(t);
      auto b = w2.make_trace(t);
      for (int i = 0; i < 20000; ++i) {
        const TraceRecord ra = a->next();
        const TraceRecord rb = b->next();
        ASSERT_TRUE(same_record(ra, rb))
            << app.name << " thread " << t << " record " << i;
        if (ra.kind == TraceKind::kEnd) break;
      }
    }
  }
}

TEST(WorkloadProperties, SeedChangesEveryProfilesStream) {
  for (const AppProfile& app : splash2_profiles()) {
    Workload w1(app, 4, 0.02, 91);
    Workload w2(app, 4, 0.02, 92);
    auto a = w1.make_trace(1);
    auto b = w2.make_trace(1);
    int diffs = 0;
    for (int i = 0; i < 2000; ++i) {
      if (!same_record(a->next(), b->next())) ++diffs;
    }
    EXPECT_GT(diffs, 50) << app.name;
  }
}

// Satellite: the sharing-pattern generators must be exactly as
// deterministic as the legacy stream — same (profile, threads, scale,
// seed) => identical per-core streams (the scheduler-differential suite
// covers the both-schedulers half of the guarantee).
TEST(WorkloadProperties, SharingProfilesDeterministicPerThread) {
  ASSERT_EQ(sharing_profiles().size(), 4u);
  for (const AppProfile& app : sharing_profiles()) {
    ASSERT_TRUE(app.coherent()) << app.name;
    Workload w1(app, 16, 0.02, 91);
    Workload w2(app, 16, 0.02, 91);
    for (std::size_t t = 0; t < 16; t += 5) {
      auto a = w1.make_trace(t);
      auto b = w2.make_trace(t);
      for (int i = 0; i < 20000; ++i) {
        const TraceRecord ra = a->next();
        const TraceRecord rb = b->next();
        ASSERT_TRUE(same_record(ra, rb))
            << app.name << " thread " << t << " record " << i;
        if (ra.kind == TraceKind::kEnd) break;
      }
    }
  }
}

TEST(WorkloadProperties, SharingProfilesSeedSensitive) {
  for (const AppProfile& app : sharing_profiles()) {
    Workload w1(app, 16, 0.02, 91);
    Workload w2(app, 16, 0.02, 92);
    auto a = w1.make_trace(3);
    auto b = w2.make_trace(3);
    int diffs = 0;
    for (int i = 0; i < 2000; ++i) {
      if (!same_record(a->next(), b->next())) ++diffs;
    }
    EXPECT_GT(diffs, 50) << app.name;
  }
}

// Sharing patterns emit correlated (op, addr) shared traffic: a
// producer-consumer thread must store into its own chunk and load from its
// upstream neighbour's, never the reverse.
TEST(WorkloadProperties, ProducerConsumerRolesAreDirectional) {
  const AppProfile& app = profile_by_name("producer_consumer");
  const std::size_t threads = 16;
  const Addr chunk = (app.working_set_bytes / threads) & ~static_cast<Addr>(31);
  Workload w(app, threads, 0.05, 42);
  for (std::size_t t : {std::size_t{0}, std::size_t{7}, std::size_t{15}}) {
    auto trace = w.make_trace(t);
    int shared_ops = 0;
    for (int i = 0; i < 50000; ++i) {
      const TraceRecord r = trace->next();
      if (r.kind == TraceKind::kEnd) break;
      if (r.kind != TraceKind::kMem || r.op == MemOp::kInstrFetch) continue;
      if (r.addr < AddressMap::kSharedBase) continue;
      const std::size_t owner =
          static_cast<std::size_t>((r.addr - AddressMap::kSharedBase) / chunk);
      if (owner >= threads) continue;  // hot-table tail beyond the chunks
      ++shared_ops;
      if (r.op == MemOp::kStore) {
        EXPECT_EQ(owner, t) << "producer wrote a foreign chunk";
      } else {
        EXPECT_EQ(owner, (t + 1) % threads) << "consumer read the wrong chunk";
      }
    }
    EXPECT_GT(shared_ops, 100) << "thread " << t;
  }
}

// Satellite: the kPrivateStride stagger must keep spreading the cores'
// private regions across distinct L2 sets.  Guards the 256 KB set-period
// comment in synthetic_trace.hpp against config drift: if the L2 geometry
// (banks x sets x line) or the stride changes so that private bases
// re-alias, this fails before the performance model quietly degrades.
TEST(WorkloadProperties, PrivateStrideSpreadsCoresAcrossL2Sets) {
  // Recompute the set period from the same Table I bank geometry the
  // cluster derives (32 banks x (64 KB / 32 B / 8-way = 256 sets) x 32 B).
  const std::size_t banks = 32;
  const std::size_t line = 32;
  const std::size_t sets_per_bank = (64 * 1024) / line / 8;
  const Addr set_period = static_cast<Addr>(banks * sets_per_bank * line);
  ASSERT_EQ(set_period, 256u * 1024u) << "Table I L2 geometry drifted";

  // An exact multiple of the set period would alias every core's private
  // base onto the same L2 sets — the failure mode the stagger prevents.
  ASSERT_NE(AddressMap::kPrivateStride % set_period, 0u);

  // Private regions must stay disjoint in address space (>= the largest
  // per-core private footprint of any registered profile).
  std::size_t max_private = 0;
  for (const AppProfile& a : splash2_profiles()) {
    max_private = std::max(max_private, a.private_bytes);
  }
  for (const AppProfile& a : sharing_profiles()) {
    max_private = std::max(max_private, a.private_bytes);
  }
  ASSERT_GE(AddressMap::kPrivateStride, max_private);

  // The 16 staggered bases must land on 16 distinct (bank, set) start
  // positions; with the stride rounded to 2 MB they would all collide.
  const unsigned line_shift = 5, bank_shift = 5;
  auto start_set = [&](Addr base) {
    return ((base >> line_shift) >> bank_shift) & (sets_per_bank - 1);
  };
  std::vector<Addr> sets;
  for (std::size_t t = 0; t < 16; ++t) {
    sets.push_back(start_set(AddressMap::private_base(t)));
  }
  std::sort(sets.begin(), sets.end());
  EXPECT_EQ(std::unique(sets.begin(), sets.end()), sets.end())
      << "two cores' private regions start on the same L2 set";

  // Control: the un-staggered 2 MB stride collapses every base to one set.
  std::vector<Addr> aliased;
  for (std::size_t t = 0; t < 16; ++t) {
    aliased.push_back(start_set(0x4000'0000 + t * 0x0020'0000));
  }
  std::sort(aliased.begin(), aliased.end());
  EXPECT_EQ(std::unique(aliased.begin(), aliased.end()) - aliased.begin(), 1);
}

TEST(WorkloadProperties, PhasePlanIndependentOfThreadsAndSeed) {
  for (const AppProfile& app : splash2_profiles()) {
    const PhasePlan reference = PhasePlan::build(app, 0.1);
    for (std::size_t threads : {1u, 4u, 16u}) {
      for (std::uint64_t seed : {1ull, 42ull}) {
        const Workload w(app, threads, 0.1, seed);
        const PhasePlan& plan = w.plan();
        ASSERT_EQ(plan.phases.size(), reference.phases.size()) << app.name;
        ASSERT_EQ(plan.num_barriers, reference.num_barriers) << app.name;
        for (std::size_t i = 0; i < plan.phases.size(); ++i) {
          EXPECT_EQ(plan.phases[i].serial, reference.phases[i].serial) << app.name;
          EXPECT_EQ(plan.phases[i].instructions, reference.phases[i].instructions)
              << app.name;
          EXPECT_EQ(plan.phases[i].barrier_id, reference.phases[i].barrier_id)
              << app.name;
        }
      }
    }
  }
}

TEST(WorkloadProperties, PlanConservesScaledWorkForEveryProfile) {
  for (const AppProfile& app : splash2_profiles()) {
    for (double scale : {0.05, 0.25, 1.0}) {
      const PhasePlan plan = PhasePlan::build(app, scale);
      std::uint64_t total = 0;
      for (const auto& ph : plan.phases) total += ph.instructions;
      const double expected = static_cast<double>(app.work_instructions) * scale;
      EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.01)
          << app.name << " scale " << scale;
    }
  }
}

TEST(WorkloadProperties, AmdahlSerialShareTracksProfileForEveryProfile) {
  for (const AppProfile& app : splash2_profiles()) {
    const PhasePlan plan = PhasePlan::build(app, 0.1);
    std::uint64_t serial = 0, total = 0;
    for (const auto& ph : plan.phases) {
      total += ph.instructions;
      if (ph.serial) serial += ph.instructions;
    }
    ASSERT_GT(total, 0u) << app.name;
    const double share = static_cast<double>(serial) / static_cast<double>(total);
    EXPECT_NEAR(share, app.serial_fraction, 0.02) << app.name;
    // The scalability predicate must agree with the realised plan: the
    // paper's scalable group has a small serial share, the limited group a
    // visible one (this is what Fig. 7(b)'s 4 -> 16 core gap rests on).
    if (app.scalable()) {
      EXPECT_LT(share, 0.15) << app.name;
    } else {
      EXPECT_GT(share, 0.10) << app.name;
    }
  }
}

TEST(WorkloadProperties, EveryThreadEmitsEveryBarrierOnceInOrder) {
  for (const AppProfile& app : splash2_profiles()) {
    const std::size_t threads = 4;
    Workload w(app, threads, 0.01, 7);
    for (std::size_t t = 0; t < threads; ++t) {
      auto trace = w.make_trace(t);
      const Drained d = drain(*trace);
      ASSERT_TRUE(d.terminated) << app.name << " thread " << t;
      ASSERT_EQ(d.barriers.size(), w.plan().num_barriers)
          << app.name << " thread " << t;
      for (std::uint32_t i = 0; i < d.barriers.size(); ++i) {
        ASSERT_EQ(d.barriers[i], i) << app.name << " thread " << t;
      }
      // After kEnd the stream stays ended (cores poll it when draining).
      EXPECT_EQ(static_cast<int>(trace->next().kind),
                static_cast<int>(TraceKind::kEnd))
          << app.name;
    }
  }
}

TEST(WorkloadProperties, BarrierCountMatchesPlanPhaseCount) {
  for (const AppProfile& app : splash2_profiles()) {
    for (double scale : {0.02, 0.2}) {
      const PhasePlan plan = PhasePlan::build(app, scale);
      EXPECT_EQ(plan.num_barriers, plan.phases.size()) << app.name;
      // Barrier ids label the phases 0..N-1 in order.
      for (std::size_t i = 0; i < plan.phases.size(); ++i) {
        EXPECT_EQ(plan.phases[i].barrier_id, static_cast<std::uint32_t>(i))
            << app.name;
      }
    }
  }
}

}  // namespace
}  // namespace mot3d::workload
