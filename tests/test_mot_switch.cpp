// Unit tests for the MoT switch primitives: the modified routing switch of
// Fig. 3 (mode/ctr-signal duality, conventional vs. user-defined routing,
// power gating) and the round-robin arbitration switch of Fig. 2(c).
#include <gtest/gtest.h>

#include "core/switch.hpp"

namespace mot3d::core {
namespace {

TEST(RoutingSwitch, ConventionalRoutesByAddressBit) {
  RoutingSwitch sw(/*addr_bit=*/2);
  EXPECT_EQ(sw.route(0b000), 0u);
  EXPECT_EQ(sw.route(0b100), 1u);
  EXPECT_EQ(sw.route(0b011), 0u);
  EXPECT_EQ(sw.route(0b111), 1u);
}

TEST(RoutingSwitch, UserDefinedIgnoresAddress) {
  RoutingSwitch sw(2);
  sw.set_mode(RouteMode::kForcePort0);
  EXPECT_EQ(sw.route(0b100), 0u);
  EXPECT_EQ(sw.route(0b000), 0u);
  sw.set_mode(RouteMode::kForcePort1);
  EXPECT_EQ(sw.route(0b000), 1u);
  EXPECT_EQ(sw.route(0b100), 1u);
}

TEST(RoutingSwitch, PowerGatedBlocks) {
  RoutingSwitch sw(0);
  sw.set_mode(RouteMode::kPowerGated);
  EXPECT_EQ(sw.route(0), std::nullopt);
  EXPECT_FALSE(sw.powered());
}

TEST(RoutingSwitch, ControlSignalRoundTrip) {
  // Fig. 3(b): every mode must map to a unique (ctr_1, ctr_0) pair and back.
  RoutingSwitch sw(1);
  for (RouteMode m : {RouteMode::kConventional, RouteMode::kForcePort0,
                      RouteMode::kForcePort1, RouteMode::kPowerGated}) {
    sw.set_mode(m);
    const ControlSignals s = sw.control();
    RoutingSwitch other(1);
    other.set_control(s);
    EXPECT_EQ(static_cast<int>(other.mode()), static_cast<int>(m));
  }
}

TEST(RoutingSwitch, ControlEncodingTable) {
  EXPECT_EQ(static_cast<int>(mode_from_signals({false, false})),
            static_cast<int>(RouteMode::kConventional));
  EXPECT_EQ(static_cast<int>(mode_from_signals({true, false})),
            static_cast<int>(RouteMode::kForcePort0));
  EXPECT_EQ(static_cast<int>(mode_from_signals({false, true})),
            static_cast<int>(RouteMode::kForcePort1));
  EXPECT_EQ(static_cast<int>(mode_from_signals({true, true})),
            static_cast<int>(RouteMode::kPowerGated));
}

TEST(ArbitrationSwitch, SingleRequesterWins) {
  ArbitrationSwitch sw;
  EXPECT_EQ(sw.arbitrate(true, false), 0u);
  EXPECT_EQ(sw.arbitrate(false, true), 1u);
  EXPECT_EQ(sw.arbitrate(false, false), std::nullopt);
}

TEST(ArbitrationSwitch, RoundRobinAlternatesUnderContention) {
  ArbitrationSwitch sw;
  const unsigned first = *sw.arbitrate(true, true);
  const unsigned second = *sw.arbitrate(true, true);
  const unsigned third = *sw.arbitrate(true, true);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(ArbitrationSwitch, GrantRotatesPriorityEvenWithoutContention) {
  ArbitrationSwitch sw;
  EXPECT_EQ(*sw.arbitrate(true, false), 0u);
  // After granting 0, a tie must go to 1.
  EXPECT_EQ(*sw.arbitrate(true, true), 1u);
}

TEST(ArbitrationSwitch, PeekDoesNotMutate) {
  ArbitrationSwitch sw;
  const unsigned p1 = *sw.peek(true, true);
  const unsigned p2 = *sw.peek(true, true);
  EXPECT_EQ(p1, p2);
  sw.commit(p1);
  EXPECT_NE(*sw.peek(true, true), p1);
}

TEST(ArbitrationSwitch, GatedGrantsNothing) {
  ArbitrationSwitch sw;
  sw.set_powered(false);
  EXPECT_EQ(sw.arbitrate(true, true), std::nullopt);
  EXPECT_FALSE(sw.powered());
}

}  // namespace
}  // namespace mot3d::core
