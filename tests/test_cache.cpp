// Unit tests for the set-associative write-back cache (L1s and L2 banks):
// LRU order, write-allocate dirtiness, eviction reporting, flush semantics
// and the banked-index aliasing behaviour power-gating relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "mem/cache.hpp"

namespace mot3d::mem {
namespace {

CacheConfig small_cfg() {
  // 2 sets x 2 ways x 32 B lines = 128 B: easy to reason about.
  return CacheConfig{.capacity_bytes = 128,
                     .line_bytes = 32,
                     .associativity = 2,
                     .index_shift = 0};
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{.capacity_bytes = 100,
                                 .line_bytes = 32,
                                 .associativity = 2,
                                 .index_shift = 0}),
               std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{.capacity_bytes = 128,
                                 .line_bytes = 24,
                                 .associativity = 2,
                                 .index_shift = 0}),
               std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{.capacity_bytes = 128,
                                 .line_bytes = 32,
                                 .associativity = 3,
                                 .index_shift = 0}),
               std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cfg());
  EXPECT_FALSE(c.lookup(0x1000, false).hit);
  c.insert(0x1000, false);
  EXPECT_TRUE(c.lookup(0x1000, false).hit);
  EXPECT_TRUE(c.lookup(0x101F, false).hit);   // same line
  EXPECT_FALSE(c.lookup(0x1020, false).hit);  // next line
}

TEST(Cache, StatsCounting) {
  Cache c(small_cfg());
  c.lookup(0x0, false);
  c.insert(0x0, false);
  c.lookup(0x0, false);
  c.lookup(0x0, true);
  c.lookup(0x40, true);
  const CacheStats& s = c.stats();
  EXPECT_EQ(s.read_misses, 1u);
  EXPECT_EQ(s.read_hits, 1u);
  EXPECT_EQ(s.write_hits, 1u);
  EXPECT_EQ(s.write_misses, 1u);
  EXPECT_EQ(s.accesses(), 4u);
  EXPECT_NEAR(s.miss_rate(), 0.5, 1e-12);
}

TEST(Cache, LruEvictsOldest) {
  Cache c(small_cfg());
  // Set 0 lines (2 sets, 32 B lines -> set = bit 5): 0x00, 0x40, 0x80.
  c.insert(0x00, false);
  c.insert(0x40, false);
  c.lookup(0x00, false);  // touch 0x00: 0x40 becomes LRU
  const InsertResult ev = c.insert(0x80, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.evicted_line_addr, 0x40u);
  EXPECT_TRUE(c.probe(0x00));
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_TRUE(c.probe(0x80));
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(small_cfg());
  c.insert(0x00, false);
  c.lookup(0x00, true);  // dirty it
  c.insert(0x40, false);
  const InsertResult ev = c.insert(0x80, false);  // evicts 0x00 (LRU)
  EXPECT_TRUE(ev.evicted);
  EXPECT_TRUE(ev.evicted_dirty);
  EXPECT_EQ(ev.evicted_line_addr, 0x00u);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, CleanEvictionNotDirty) {
  Cache c(small_cfg());
  c.insert(0x00, false);
  c.insert(0x40, false);
  const InsertResult ev = c.insert(0x80, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_FALSE(ev.evicted_dirty);
}

TEST(Cache, InsertDirtyFlagForWriteAllocate) {
  Cache c(small_cfg());
  c.insert(0x00, true);  // store-miss refill installs dirty
  EXPECT_EQ(c.dirty_lines(), 1u);
}

TEST(Cache, DoubleInsertRefreshesInsteadOfDuplicating) {
  Cache c(small_cfg());
  c.insert(0x00, false);
  const InsertResult r = c.insert(0x00, true);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.valid_lines(), 1u);
  EXPECT_EQ(c.dirty_lines(), 1u);  // dirtiness is sticky
}

TEST(Cache, SetsAreIndependent) {
  Cache c(small_cfg());
  c.insert(0x00, false);  // set 0
  c.insert(0x20, false);  // set 1
  c.insert(0x40, false);  // set 0
  c.insert(0x60, false);  // set 1
  EXPECT_EQ(c.valid_lines(), 4u);  // no evictions: 2 ways per set
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, FlushReturnsExactlyDirtyLines) {
  Cache c(small_cfg());
  c.insert(0x00, true);
  c.insert(0x20, false);
  c.insert(0x40, true);
  std::vector<Addr> dirty = c.flush();
  std::sort(dirty.begin(), dirty.end());
  EXPECT_EQ(dirty, (std::vector<Addr>{0x00, 0x40}));
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_FALSE(c.probe(0x20));
}

TEST(Cache, InvalidateReportsDirtiness) {
  Cache c(small_cfg());
  c.insert(0x00, true);
  c.insert(0x20, false);
  EXPECT_EQ(c.invalidate(0x00), std::optional<bool>(true));
  EXPECT_EQ(c.invalidate(0x20), std::optional<bool>(false));
  EXPECT_EQ(c.invalidate(0x999), std::nullopt);
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(Cache, IndexShiftSkipsBankBits) {
  // L2-bank style: 32 banks -> index_shift 5 skips the bank-interleave bits,
  // so lines 0x000 and 0x400 (same set without shift) spread over sets.
  CacheConfig cfg{.capacity_bytes = 2048,
                  .line_bytes = 32,
                  .associativity = 2,
                  .index_shift = 5};
  Cache c(cfg);
  // Lines whose bits 5..9 are the bank id: within one bank, consecutive
  // *bank-local* lines are 32 banks * 32 B = 1024 B apart.
  c.insert(0x0000, false);
  c.insert(0x0400, false);
  c.insert(0x0800, false);
  // With 32 sets and index starting at bit 10, these fall in sets 0,1,2.
  EXPECT_EQ(c.valid_lines(), 3u);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, AliasedLinesCoexistAfterRemap) {
  // Power-gating remap sends lines that differ only in (dropped) bank bits
  // to the same bank; full-line tags must keep them distinct.
  CacheConfig cfg{.capacity_bytes = 2048,
                  .line_bytes = 32,
                  .associativity = 2,
                  .index_shift = 5};
  Cache c(cfg);
  // 0x0000 and 0x0100 differ in bank bits only (bits 5..9): same set after
  // the shift, different tags.
  c.insert(0x0000, false);
  c.insert(0x0100, false);
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_TRUE(c.probe(0x0100));
  EXPECT_TRUE(c.lookup(0x0000, false).hit);
  EXPECT_TRUE(c.lookup(0x0100, false).hit);
}

class CacheAssocTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheAssocTest, CapacityEvictionAtEveryAssociativity) {
  const std::size_t ways = GetParam();
  CacheConfig cfg{.capacity_bytes = 32 * ways * 4,  // 4 sets
                  .line_bytes = 32,
                  .associativity = ways,
                  .index_shift = 0};
  Cache c(cfg);
  const std::size_t lines = cfg.num_lines();
  for (std::size_t i = 0; i < lines; ++i) c.insert(i * 32, false);
  EXPECT_EQ(c.valid_lines(), lines);
  EXPECT_EQ(c.stats().evictions, 0u);
  // One more round evicts exactly one per insert.
  for (std::size_t i = 0; i < 4; ++i) c.insert((lines + i) * 32, false);
  EXPECT_EQ(c.stats().evictions, 4u);
  EXPECT_EQ(c.valid_lines(), lines);
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheAssocTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Cache, LruIsExactWithinSet) {
  // 1 set, 4 ways: access pattern must evict in LRU order.
  CacheConfig cfg{.capacity_bytes = 128,
                  .line_bytes = 32,
                  .associativity = 4,
                  .index_shift = 0};
  Cache c(cfg);
  for (Addr a : {0x0, 0x20, 0x40, 0x60}) c.insert(a, false);
  c.lookup(0x0, false);
  c.lookup(0x40, false);
  // LRU is now 0x20.
  EXPECT_EQ(c.insert(0x80, false).evicted_line_addr, 0x20u);
  // Then 0x60.
  EXPECT_EQ(c.insert(0xA0, false).evicted_line_addr, 0x60u);
}

}  // namespace
}  // namespace mot3d::mem
