// Observability subsystem: trace-buffer ring semantics, latency-digest
// percentiles, metrics-registry null encoding, and the two properties
// the tentpole promises at the cluster level —
//  * enabling observability never perturbs the model (same cycles,
//    instructions, energy as an untraced run), and
//  * the exported trace + metrics documents are bit-identical between
//    the dense-tick and event-driven schedulers, on coherent and
//    fault-injected runs alike;
// plus the cross-check that per-component event counts derived from a
// trace exactly equal the statistics aggregates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>

#include "cluster/cluster.hpp"
#include "fault/fault_schedule.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::obs {
namespace {

// ---- trace buffer: unbounded vs drop-oldest ring ---------------------------

TEST(TraceBuffer, UnboundedKeepsEverythingInOrder) {
  TraceBuffer buf;  // capacity 0 = unbounded
  const std::uint32_t t = buf.add_track("fabric");
  for (Cycle c = 0; c < 10; ++c) buf.instant("tick", t, c);
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.recorded(), 10u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf.event(i).ts, static_cast<Cycle>(i));
  }
}

TEST(TraceBuffer, RingDropsOldestAndRemembersTotal) {
  TraceBuffer ring(4);
  const std::uint32_t t = ring.add_track("core 0");
  for (Cycle c = 0; c < 10; ++c) ring.instant("tick", t, c, "n", c);
  EXPECT_EQ(ring.size(), 4u);      // only the newest four retained
  EXPECT_EQ(ring.recorded(), 10u);  // but all ten were recorded
  // Oldest-first iteration over the survivors: cycles 6..9.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.event(i).ts, static_cast<Cycle>(6 + i));
  }
}

TEST(TraceBuffer, FlightDumpNamesTracksArgsAndDropCount) {
  TraceBuffer ring(4);
  const std::uint32_t gov = ring.add_track("governor");
  for (Cycle c = 0; c < 10; ++c) {
    ring.instant("demote", gov, 100 + c, "peak_c_x100", 7200 + c);
  }
  const std::string dump = ring.flight_dump(4);
  EXPECT_NE(dump.find("last 4 of 10 events"), std::string::npos) << dump;
  EXPECT_NE(dump.find("[governor]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("demote"), std::string::npos) << dump;
  EXPECT_NE(dump.find("peak_c_x100=7209"), std::string::npos) << dump;
  // The dropped events (cycles 100..105) must not appear.
  EXPECT_EQ(dump.find("cycle 100 "), std::string::npos) << dump;
}

// ---- latency digests -------------------------------------------------------

TEST(LatencyHistogram, ExactPercentilesOnKnownDistribution) {
  LatencyHistogram h;
  // 100 samples with value == rank: pN is exactly N.
  for (Cycle v = 1; v <= 100; ++v) h.record(v);
  const LatencyDigest d = h.digest();
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 100u);
  EXPECT_EQ(d.p50, 50u);
  EXPECT_EQ(d.p95, 95u);
  EXPECT_EQ(d.p99, 99u);
}

TEST(LatencyHistogram, EmptyDigestIsExplicitlyEmptyNotZeroLatency) {
  const LatencyDigest d = LatencyHistogram{}.digest();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.count, 0u);
}

TEST(LatencyHistogram, OverflowBucketKeepsCountAndTrueMax) {
  LatencyHistogram h;
  h.record(10);
  h.record(LatencyHistogram::kMaxExact + 500);
  const LatencyDigest d = h.digest();
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.min, 10u);
  EXPECT_EQ(d.max, LatencyHistogram::kMaxExact + 500);
}

// ---- metrics registry: explicit null for empty statistics ------------------
// Regression for the RunningStat::min()/max()==0.0-when-empty ambiguity: an
// empty stat must serialise as JSON null / an empty CSV cell, never as a
// fake zero sample.

TEST(MetricsRegistry, EmptyStatSerialisesAsNullThenRealValue) {
  bool empty = true;
  double value = 0.0;
  MetricsRegistry reg(100);
  reg.add("stat.min", [&] { return value; }, [&] { return empty; });

  reg.sample(100);  // stat still empty -> null
  empty = false;
  value = 3.5;
  reg.sample(200);  // first real sample

  ASSERT_EQ(reg.sample_count(), 2u);
  EXPECT_TRUE(std::isnan(reg.value(0, 0)));
  EXPECT_DOUBLE_EQ(reg.value(0, 1), 3.5);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"stat.min\":[null,3.5]"), std::string::npos)
      << json.str();

  std::ostringstream csv;
  reg.write_csv_rows(csv, "runA");
  EXPECT_NE(csv.str().find("runA,100,stat.min,\n"), std::string::npos)
      << csv.str();  // empty value cell, not 0
  EXPECT_NE(csv.str().find("runA,200,stat.min,3.5\n"), std::string::npos)
      << csv.str();
}

TEST(MetricsRegistry, PrepareHookRunsBeforeProbes) {
  double staged = 0.0;
  MetricsRegistry reg(10);
  reg.add_prepare([&] { staged = 42.0; });
  reg.add("x", [&] { return staged; });
  reg.sample(10);
  EXPECT_DOUBLE_EQ(reg.value(0, 0), 42.0);
}

// ---- cluster integration ---------------------------------------------------

cluster::ClusterConfig paper_cfg(const char* app, cluster::Fabric fabric,
                                 cluster::SchedulerMode mode,
                                 double scale = 0.01) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), fabric, core::PowerState::full(),
      mem::DramPreset::kDdr3_200ns, scale, 42);
  cfg.scheduler = mode;
  return cfg;
}

std::string trace_json(const cluster::SimResult& r) {
  std::ostringstream os;
  write_chrome_trace(os, {{"run", r.trace.get()}});
  return os.str();
}

std::string metrics_json(const cluster::SimResult& r) {
  std::ostringstream os;
  r.metrics->write_json(os);
  return os.str();
}

TEST(ObsCluster, ObservabilityDoesNotPerturbTheModel) {
  cluster::ClusterConfig off =
      paper_cfg("producer_consumer", cluster::Fabric::kMot,
                cluster::SchedulerMode::kEventDriven);
  cluster::ClusterConfig on = off;
  on.obs.trace = true;
  on.obs.metrics = true;

  const cluster::SimResult base = cluster::Cluster(off).run();
  const cluster::SimResult traced = cluster::Cluster(on).run();

  EXPECT_EQ(base.cycles, traced.cycles);
  EXPECT_EQ(base.instructions, traced.instructions);
  EXPECT_EQ(base.l2.hits, traced.l2.hits);
  EXPECT_EQ(base.l2.misses, traced.l2.misses);
  EXPECT_EQ(base.coherence.invalidations, traced.coherence.invalidations);
  EXPECT_DOUBLE_EQ(base.energy.edp_energy_pj(), traced.energy.edp_energy_pj());

  // Off by default: no summary, no documents.
  EXPECT_FALSE(base.obs.enabled);
  EXPECT_EQ(base.trace, nullptr);
  EXPECT_EQ(base.metrics, nullptr);
  EXPECT_FALSE(base.phase_seconds.valid);

  // On: digests populated and internally consistent.
  EXPECT_TRUE(traced.obs.enabled);
  ASSERT_NE(traced.trace, nullptr);
  ASSERT_NE(traced.metrics, nullptr);
  EXPECT_GT(traced.trace->size(), 0u);
  EXPECT_GT(traced.obs.l2_rt.count, 0u);
  EXPECT_LE(traced.obs.l2_rt.p50, traced.obs.l2_rt.p95);
  EXPECT_LE(traced.obs.l2_rt.p95, traced.obs.l2_rt.p99);
  EXPECT_LE(traced.obs.l2_rt.p99, traced.obs.l2_rt.max);
  EXPECT_GT(traced.obs.inv_rt.count, 0u);     // sharing pattern invalidates
  EXPECT_GT(traced.obs.dram_service.count, 0u);
}

TEST(ObsCluster, MetricsSamplesLandOnEpochBoundariesAndRunEnd) {
  cluster::ClusterConfig cfg =
      paper_cfg("fft", cluster::Fabric::kMot,
                cluster::SchedulerMode::kEventDriven);
  cfg.obs.metrics = true;
  cfg.obs.metrics_epoch_cycles = 1'000;
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  ASSERT_NE(r.metrics, nullptr);
  ASSERT_GT(r.metrics->sample_count(), 1u);
  for (std::size_t s = 0; s + 1 < r.metrics->sample_count(); ++s) {
    EXPECT_EQ(r.metrics->sample_cycle(s), (s + 1) * 1'000);
  }
  // The final sample is the run-end flush at the finish cycle.
  EXPECT_EQ(r.metrics->last_sample_cycle(), r.cycles);
}

// Satellite cross-check: counts derived from the trace equal the stats
// aggregates — the trace is the same model, not a parallel accounting.
void expect_trace_matches_stats(cluster::SchedulerMode mode) {
  cluster::ClusterConfig cfg =
      paper_cfg("producer_consumer", cluster::Fabric::kMot, mode);
  cfg.obs.trace = true;
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  ASSERT_NE(r.trace, nullptr);

  std::uint64_t invalidates = 0, l2_misses = 0, grants = 0;
  std::uint64_t inv_acks = 0, data_forwards = 0;
  Cycle grant_wait = 0;
  for (std::size_t i = 0; i < r.trace->size(); ++i) {
    const TraceEvent& e = r.trace->event(i);
    if (std::strcmp(e.name, "Invalidate") == 0) ++invalidates;
    if (std::strcmp(e.name, "l2_miss") == 0) ++l2_misses;
    if (std::strcmp(e.name, "grant") == 0) {
      ++grants;
      grant_wait += e.dur;
    }
    // The ack legs appear twice (injection instant at the core, round-trip
    // complete at the bank); count only the completes.
    if (e.phase == 'X' && std::strcmp(e.name, "InvAck") == 0) ++inv_acks;
    if (e.phase == 'X' && std::strcmp(e.name, "DataForward") == 0) {
      ++data_forwards;
    }
  }
  EXPECT_EQ(invalidates, r.coherence.invalidations);
  EXPECT_EQ(l2_misses, r.l2.misses);
  EXPECT_EQ(inv_acks, r.coherence.inv_acks);
  EXPECT_EQ(data_forwards, r.coherence.data_forwards);
  // One MoT grant per delivered request; the summed grant durations are
  // exactly the fabric's aggregate arbitration wait.
  EXPECT_EQ(grants, r.interconnect.requests_delivered);
  EXPECT_EQ(grant_wait, r.interconnect.arbitration_wait_cycles);
}

TEST(ObsCluster, TraceCountsMatchStatsAggregatesEventDriven) {
  expect_trace_matches_stats(cluster::SchedulerMode::kEventDriven);
}

TEST(ObsCluster, TraceCountsMatchStatsAggregatesDenseTick) {
  expect_trace_matches_stats(cluster::SchedulerMode::kDenseTick);
}

// Satellite cross-check, DRAM leg: the final metrics-registry sample of
// every "dram.*" counter equals the corresponding stats aggregate — the
// probes read the same model state, not a parallel accounting.
double final_metric(const cluster::SimResult& r, const std::string& name) {
  const std::size_t last = r.metrics->sample_count() - 1;
  for (std::size_t i = 0; i < r.metrics->counter_count(); ++i) {
    if (r.metrics->counter_name(i) == name) return r.metrics->value(i, last);
  }
  ADD_FAILURE() << "no metrics counter named " << name;
  return -1.0;
}

TEST(ObsCluster, DramMetricsCountersMatchStatsAggregates) {
  cluster::ClusterConfig cfg =
      paper_cfg("fft", cluster::Fabric::kMot,
                cluster::SchedulerMode::kEventDriven);
  cfg.obs.metrics = true;
  cfg.dram.open_page_policy = true;  // nonzero page_hits/page_misses
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  ASSERT_NE(r.metrics, nullptr);
  ASSERT_GT(r.metrics->sample_count(), 0u);

  EXPECT_EQ(final_metric(r, "dram.reads"), static_cast<double>(r.dram.reads));
  EXPECT_EQ(final_metric(r, "dram.writes"), static_cast<double>(r.dram.writes));
  EXPECT_EQ(final_metric(r, "dram.page_hits"),
            static_cast<double>(r.dram.page_hits));
  EXPECT_EQ(final_metric(r, "dram.page_misses"),
            static_cast<double>(r.dram.page_misses));
  EXPECT_EQ(final_metric(r, "dram.total_wait_cycles"),
            static_cast<double>(r.dram.total_wait_cycles));
  EXPECT_GT(r.dram.page_hits + r.dram.page_misses, 0u);
  // Every tracked access is either a row hit or a row miss.
  EXPECT_EQ(r.dram.page_hits + r.dram.page_misses, r.dram.reads);
}

TEST(ObsCluster, StackedDramVaultMetricsSumToBackendStats) {
  cluster::ClusterConfig cfg =
      paper_cfg("fft", cluster::Fabric::kMot,
                cluster::SchedulerMode::kEventDriven);
  cfg.obs.metrics = true;
  cfg.stacked_dram = true;
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  ASSERT_NE(r.metrics, nullptr);

  EXPECT_EQ(final_metric(r, "dram.page_hits"),
            static_cast<double>(r.dram.page_hits));
  EXPECT_EQ(final_metric(r, "dram.page_misses"),
            static_cast<double>(r.dram.page_misses));
  double vault_accesses = 0.0, vault_row_hits = 0.0;
  for (std::size_t v = 0; v < r.dram3d.vaults; ++v) {
    const std::string vp = "dram.vault" + std::to_string(v);
    vault_accesses += final_metric(r, vp + ".accesses");
    vault_row_hits += final_metric(r, vp + ".row_hits");
  }
  EXPECT_EQ(vault_accesses, static_cast<double>(r.dram.reads + r.dram.writes));
  EXPECT_EQ(vault_row_hits, static_cast<double>(r.dram3d.row_hits));
}

// The tentpole differential: the serialised trace and metrics documents —
// not just the aggregate counters — are bit-identical between schedulers.
void expect_obs_documents_identical(cluster::ClusterConfig cfg) {
  cfg.obs.trace = true;
  cfg.obs.metrics = true;

  cfg.scheduler = cluster::SchedulerMode::kDenseTick;
  const cluster::SimResult dense = cluster::Cluster(cfg).run();
  cfg.scheduler = cluster::SchedulerMode::kEventDriven;
  const cluster::SimResult event = cluster::Cluster(cfg).run();

  ASSERT_NE(dense.trace, nullptr);
  ASSERT_NE(event.trace, nullptr);
  EXPECT_EQ(dense.trace->size(), event.trace->size());
  EXPECT_EQ(trace_json(dense), trace_json(event));
  EXPECT_EQ(metrics_json(dense), metrics_json(event));
  EXPECT_EQ(dense.obs.l2_rt, event.obs.l2_rt);
  EXPECT_EQ(dense.obs.inv_rt, event.obs.inv_rt);
  EXPECT_EQ(dense.obs.dram_service, event.obs.dram_service);
}

TEST(ObsCluster, TraceAndMetricsBitIdenticalOnCoherentRun) {
  expect_obs_documents_identical(paper_cfg("producer_consumer",
                                           cluster::Fabric::kMot,
                                           cluster::SchedulerMode::kDenseTick));
}

TEST(ObsCluster, TraceAndMetricsBitIdenticalOnNocRun) {
  expect_obs_documents_identical(paper_cfg("read_mostly",
                                           cluster::Fabric::kTrueMesh3d,
                                           cluster::SchedulerMode::kDenseTick));
}

TEST(ObsCluster, TraceAndMetricsBitIdenticalUnderInjectedFaults) {
  cluster::ClusterConfig cfg =
      paper_cfg("fft", cluster::Fabric::kMot,
                cluster::SchedulerMode::kDenseTick, 0.02);
  cfg.fault = fault::FaultConfig::from_envelope(
      fault::FaultEnvelope{true, 1.0, 0.5, 101});
  expect_obs_documents_identical(cfg);
}

}  // namespace
}  // namespace mot3d::obs
