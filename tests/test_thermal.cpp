// Thermal subsystem tests: floorplan derivation, RC solver physics
// (closed-form steady state, dt stability), leakage monotonicity and the
// shared temperature law, governor hysteresis/duty-cycling, the
// EnergyLedger delta API, and end-to-end determinism of thermal runs
// across schedulers.
#include <gtest/gtest.h>

#include <cmath>

#include "cacti/sram_model.hpp"
#include "cluster/advisor.hpp"
#include "cluster/cluster.hpp"
#include "common/leakage.hpp"
#include "phys/wire.hpp"
#include "power/core_power.hpp"
#include "power/energy_ledger.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/governor.hpp"
#include "thermal/rc_solver.hpp"
#include "thermal/thermal_model.hpp"

namespace mot3d {
namespace {

using thermal::ThermalFloorplan;
using thermal::ThermalRcSolver;
using thermal::ThermalStackParams;

ThermalFloorplan paper_floorplan(ThermalStackParams stack = {}) {
  return ThermalFloorplan(phys::FloorplanParams{}, phys::default_technology(),
                          stack);
}

// ---- floorplan derivation --------------------------------------------------

TEST(ThermalFloorplan, DerivesGridFromElectricalFloorplan) {
  const ThermalFloorplan flp = paper_floorplan();
  EXPECT_EQ(flp.layers(), 3u);
  EXPECT_EQ(flp.columns(), 16u);  // one per core site / TSV landing column
  EXPECT_EQ(flp.tile_count(), 48u);

  // Cores live on the core die; banks pair up per landing column, one on
  // each stacked tier.
  EXPECT_EQ(flp.core_tile(0), flp.tile_index(0, 0));
  EXPECT_EQ(flp.core_tile(15), flp.tile_index(0, 15));
  EXPECT_EQ(flp.bank_tile(0), flp.tile_index(1, 0));
  EXPECT_EQ(flp.bank_tile(1), flp.tile_index(2, 0));
  EXPECT_EQ(flp.bank_tile(30), flp.tile_index(1, 15));
  EXPECT_EQ(flp.bank_tile(31), flp.tile_index(2, 15));

  // The core die is thicker than the thinned stacked tiers: more thermal
  // mass and more lateral spreading.
  EXPECT_GT(flp.tiles()[flp.tile_index(0, 0)].capacitance_j_k,
            flp.tiles()[flp.tile_index(1, 0)].capacitance_j_k);
  EXPECT_GT(flp.lateral_g_w_k(0), flp.lateral_g_w_k(1));
  EXPECT_GT(flp.vertical_g_w_k(0), 0.0);
  EXPECT_GT(flp.sink_g_w_k(), 0.0);
}

TEST(ThermalFloorplan, ChannelTilesFollowTheActiveSpan) {
  const ThermalFloorplan flp = paper_floorplan();
  // Full connection: the whole channel.
  EXPECT_EQ(flp.channel_tiles(16, 32).size(), 16u);
  // PC4-MB8: 4 centre core columns, 4 bank landing columns -> centre span.
  const auto gated = flp.channel_tiles(4, 8);
  EXPECT_EQ(gated.size(), 4u);
  EXPECT_EQ(gated.front(), flp.tile_index(0, 6));
  EXPECT_EQ(gated.back(), flp.tile_index(0, 9));
}

// ---- RC solver physics -----------------------------------------------------

/// Single-column configuration: lateral conduction is irrelevant when all
/// power is uniform per layer, so each column is an independent 1-D stack
/// with the closed-form solution
///   T0 = Tamb + (P0+P1+P2)/Gs,  T1 = T0 + (P1+P2)/Gv,  T2 = T1 + P2/Gv.
TEST(ThermalRcSolver, SteadyStateMatchesClosedFormStackSolution) {
  const ThermalFloorplan flp = paper_floorplan();
  const double ambient = 45.0;
  ThermalRcSolver solver(flp, ambient);

  const std::size_t cols = flp.columns();
  const double p0 = 0.08, p1 = 0.03, p2 = 0.02;  // W per tile, uniform
  std::vector<double> power(flp.tile_count(), 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    power[flp.tile_index(0, c)] = p0;
    power[flp.tile_index(1, c)] = p1;
    power[flp.tile_index(2, c)] = p2;
  }

  const double gs = flp.sink_g_w_k();
  const double gv0 = flp.vertical_g_w_k(0);
  const double gv1 = flp.vertical_g_w_k(1);
  const double t0 = ambient + (p0 + p1 + p2) / gs;
  const double t1 = t0 + (p1 + p2) / gv0;
  const double t2 = t1 + p2 / gv1;

  // Uniform per-layer power leaves no lateral gradients, so the 1-D
  // closed form holds exactly per column, via the steady solver...
  const std::vector<double> steady = solver.steady_state(power);
  for (std::size_t c = 0; c < cols; ++c) {
    EXPECT_NEAR(steady[flp.tile_index(0, c)], t0, 1e-6);
    EXPECT_NEAR(steady[flp.tile_index(1, c)], t1, 1e-6);
    EXPECT_NEAR(steady[flp.tile_index(2, c)], t2, 1e-6);
  }

  // ...and via long transient stepping (several sink time constants).
  solver.step(power, 50.0);
  EXPECT_NEAR(solver.tile_c(flp.tile_index(0, 7)), t0, 1e-3);
  EXPECT_NEAR(solver.tile_c(flp.tile_index(1, 7)), t1, 1e-3);
  EXPECT_NEAR(solver.tile_c(flp.tile_index(2, 7)), t2, 1e-3);

  // The stacked-cache asymmetry: upper tiers are strictly hotter.
  EXPECT_GT(t2, t1);
  EXPECT_GT(t1, t0);
  EXPECT_GT(t0, ambient);
}

TEST(ThermalRcSolver, ExplicitSteppingIsStableFarBeyondTheBound) {
  const ThermalFloorplan flp = paper_floorplan();
  ThermalRcSolver solver(flp, 45.0);
  ASSERT_GT(solver.stable_dt_s(), 0.0);

  // Hammer one corner tile hard and ask for a step 1e6x the stability
  // bound: internal substepping must keep every temperature finite and
  // below the (conservative) all-power-into-one-resistor bound.
  std::vector<double> power(flp.tile_count(), 0.0);
  power[flp.tile_index(2, 0)] = 5.0;
  solver.step(power, 1e6 * solver.stable_dt_s());
  const double bound =
      45.0 + 5.0 / flp.sink_g_w_k() + 5.0 / flp.vertical_g_w_k(0) +
      5.0 / flp.vertical_g_w_k(1) + 1.0;
  for (double t : solver.temperatures_c()) {
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 45.0 - 1e-9);
    EXPECT_LT(t, bound);
  }
}

// ---- leakage law -----------------------------------------------------------

TEST(ThermalLeakage, MonotoneInTemperatureAcrossAllThreeModels) {
  const cacti::SramBankConfig bank;
  const phys::WireModel wire{phys::default_technology()};
  const power::CorePowerModel core;

  double prev_sram = 0.0, prev_wire = 0.0, prev_core = 0.0;
  for (double t = 25.0; t <= 110.0; t += 5.0) {
    const double s = cacti::leakage_mw_at(bank, t);
    const double w = wire.leakage_uw_per_bit_at(4.0, t);
    const double c = core.leakage_mw_at(t);
    EXPECT_GT(s, prev_sram);
    EXPECT_GT(w, prev_wire);
    EXPECT_GT(c, prev_core);
    prev_sram = s;
    prev_wire = w;
    prev_core = c;
  }

  // At the reference temperature every *_at API equals its flat model.
  const LeakageTempParams ref;
  EXPECT_DOUBLE_EQ(cacti::leakage_mw_at(bank, ref.ref_temp_c),
                   cacti::evaluate(bank).leakage_mw);
  EXPECT_DOUBLE_EQ(wire.leakage_uw_per_bit_at(4.0, ref.ref_temp_c),
                   wire.leakage_uw_per_bit(4.0));
  EXPECT_DOUBLE_EQ(core.leakage_mw_at(ref.ref_temp_c), core.params().leakage_mw);

  // All three share one law: the ratio at any temperature is the shared
  // exponential scale.
  EXPECT_DOUBLE_EQ(cacti::leakage_mw_at(bank, 85.0),
                   cacti::evaluate(bank).leakage_mw * leakage_temp_scale(85.0));
}

// ---- governor --------------------------------------------------------------

thermal::GovernorConfig governor_cfg(bool banks) {
  thermal::GovernorConfig cfg;
  cfg.ceiling_c = 80.0;
  cfg.hysteresis_c = 5.0;
  cfg.allow_bank_gating = banks;
  cfg.min_banks = 8;
  cfg.max_hold_intervals = 3;
  return cfg;
}

TEST(ThermalGovernor, DemotesBanksFirstOnMotThenHoldsAndRestoresWithHysteresis) {
  thermal::ThermalGovernor gov(governor_cfg(true), core::PowerState::full());

  // Below the ceiling: nothing happens.
  auto d = gov.decide(70.0);
  EXPECT_FALSE(d.reconfigure.has_value());
  EXPECT_FALSE(d.hold_cores);

  // Cross the ceiling: first rung is bank gating, not a hold.
  d = gov.decide(81.0);
  ASSERT_TRUE(d.reconfigure.has_value());
  EXPECT_EQ(d.reconfigure->active_banks(), 8u);
  EXPECT_EQ(d.reconfigure->active_cores(), 16u);
  EXPECT_FALSE(d.hold_cores);
  EXPECT_EQ(gov.stats().bank_gate_events, 1u);

  // Still hot: escalate to core holds.
  d = gov.decide(82.0);
  EXPECT_FALSE(d.reconfigure.has_value());
  EXPECT_TRUE(d.hold_cores);
  EXPECT_EQ(gov.stats().core_hold_events, 1u);

  // In the hysteresis band (ceiling-hys < T < ceiling): keep holding.
  d = gov.decide(77.0);
  EXPECT_TRUE(d.hold_cores);

  // Cooled below ceiling - hysteresis: release the hold, banks stay gated.
  d = gov.decide(74.0);
  EXPECT_FALSE(d.hold_cores);
  EXPECT_FALSE(d.reconfigure.has_value());
  EXPECT_EQ(gov.level(), 1u);

  // A further cool interval restores the baseline banks.
  d = gov.decide(74.0);
  ASSERT_TRUE(d.reconfigure.has_value());
  EXPECT_EQ(d.reconfigure->active_banks(), 32u);
  EXPECT_EQ(gov.level(), 0u);
}

TEST(ThermalGovernor, PacketSwitchedFabricSkipsStraightToHolds) {
  thermal::ThermalGovernor gov(governor_cfg(false), core::PowerState::full());
  const auto d = gov.decide(90.0);
  EXPECT_FALSE(d.reconfigure.has_value());
  EXPECT_TRUE(d.hold_cores);
  EXPECT_EQ(gov.stats().bank_gate_events, 0u);
}

TEST(ThermalGovernor, DutyCycleGuardForcesPeriodicProgress) {
  thermal::ThermalGovernor gov(governor_cfg(false), core::PowerState::full());
  EXPECT_TRUE(gov.decide(95.0).hold_cores);  // demote to holds
  // Sustained heat: after max_hold_intervals consecutive holds the guard
  // must force one released interval, then resume.
  std::size_t released = 0, held = 0;
  for (int i = 0; i < 16; ++i) {
    if (gov.decide(95.0).hold_cores) {
      ++held;
    } else {
      ++released;
    }
  }
  EXPECT_GE(released, 3u);  // ~one release per (max_hold_intervals + 1)
  EXPECT_GT(held, released);
  EXPECT_EQ(gov.stats().duty_cycle_releases, released);
}

// ---- EnergyLedger delta API ------------------------------------------------

TEST(EnergyLedgerDelta, DeltaSinceReportsPerIntervalRates) {
  power::EnergyLedger ledger;
  ledger.add_dynamic(power::Component::kCore, 100.0);
  ledger.add_static(power::Component::kL2, 40.0);

  power::EnergyLedger snap = ledger;  // sample 1
  ledger.add_dynamic(power::Component::kCore, 60.0);
  ledger.add_dynamic(power::Component::kDram, 10.0);
  ledger.add_static(power::Component::kL2, 5.0);

  const power::EnergySample d = ledger.delta_since(snap);
  EXPECT_DOUBLE_EQ(d.dynamic(power::Component::kCore), 60.0);
  EXPECT_DOUBLE_EQ(d.dynamic(power::Component::kDram), 10.0);
  EXPECT_DOUBLE_EQ(d.total(power::Component::kL2), 5.0);
  EXPECT_DOUBLE_EQ(d.dynamic(power::Component::kL1), 0.0);

  // Rates: pJ over 1 ns cycles -> watts (100 pJ over 50 cycles = 2 mW).
  EXPECT_DOUBLE_EQ(d.power_w(power::Component::kCore, 30), 2.0);
  EXPECT_DOUBLE_EQ(d.power_w(power::Component::kCore, 0), 0.0);

  // A fresh delta against the current state is all zeros.
  const power::EnergySample z = ledger.delta_since(ledger);
  for (auto c : {power::Component::kCore, power::Component::kL1,
                 power::Component::kL2, power::Component::kInterconnect,
                 power::Component::kDram}) {
    EXPECT_DOUBLE_EQ(z.total(c), 0.0);
  }
}

// ---- end-to-end: thermal runs through the cluster --------------------------

cluster::SimResult thermal_run(const char* app, cluster::Fabric fabric,
                               double ambient_c, double ceiling_c,
                               cluster::SchedulerMode mode,
                               double scale = 0.02) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), fabric, core::PowerState::full(),
      mem::DramPreset::kDdr3_200ns, scale, 42);
  cfg.scheduler = mode;
  cfg.thermal = thermal::ThermalConfig::from_envelope(
      thermal::ThermalEnvelope{true, ambient_c, ceiling_c});
  return cluster::Cluster(cfg).run();
}

TEST(ThermalCluster, SchedulersAgreeBitForBitIncludingThrottledRuns) {
  // One cool envelope and one that provokes governor action, on both the
  // reconfigurable MoT and a packet-switched baseline.
  struct Case {
    cluster::Fabric fabric;
    double ambient, ceiling;
  };
  const Case cases[] = {
      {cluster::Fabric::kMot, 45.0, 85.0},
      {cluster::Fabric::kMot, 60.0, 70.0},
      {cluster::Fabric::kTrueMesh3d, 60.0, 70.0},
  };
  for (const Case& c : cases) {
    const cluster::SimResult ev = thermal_run(
        "fft", c.fabric, c.ambient, c.ceiling, cluster::SchedulerMode::kEventDriven);
    const cluster::SimResult de = thermal_run(
        "fft", c.fabric, c.ambient, c.ceiling, cluster::SchedulerMode::kDenseTick);
    EXPECT_EQ(ev.cycles, de.cycles);
    EXPECT_EQ(ev.instructions, de.instructions);
    EXPECT_EQ(ev.thermal.samples, de.thermal.samples);
    EXPECT_EQ(ev.thermal.throttle_events, de.thermal.throttle_events);
    EXPECT_EQ(ev.thermal.throttled_cycles, de.thermal.throttled_cycles);
    EXPECT_EQ(ev.thermal.peak_c, de.thermal.peak_c);              // exact
    EXPECT_EQ(ev.thermal.steady_peak_c, de.thermal.steady_peak_c);
    EXPECT_EQ(ev.thermal.leakage_pj, de.thermal.leakage_pj);
    EXPECT_EQ(ev.energy.edp_energy_pj(), de.energy.edp_energy_pj());
  }
}

TEST(ThermalCluster, SchedulersAgreeWhenGovernorDecidesOnIdleTransport) {
  // Regression: a governor reconfiguration decided at a boundary where
  // the transport is *already idle* (compute phase, nothing in flight)
  // must apply in that same poll.  If completion waited for a later
  // poll, the event scheduler — seeing no component events — would only
  // look again at the next sampling boundary, a full interval after the
  // dense reference.  A short interval makes idle-at-boundary frequent.
  for (auto fabric : {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d}) {
    cluster::SimResult results[2];
    int i = 0;
    for (auto mode : {cluster::SchedulerMode::kEventDriven,
                      cluster::SchedulerMode::kDenseTick}) {
      cluster::ClusterConfig cfg = cluster::make_paper_config(
          workload::profile_by_name("fft"), fabric, core::PowerState::full(),
          mem::DramPreset::kDdr3_200ns, 0.02, 42);
      cfg.scheduler = mode;
      cfg.thermal = thermal::ThermalConfig::from_envelope(
          thermal::ThermalEnvelope{true, 60.0, 68.0});
      cfg.thermal.sample_interval_cycles = 500;
      results[i++] = cluster::Cluster(cfg).run();
    }
    EXPECT_GT(results[0].thermal.throttle_events, 0u);
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].thermal.throttled_cycles,
              results[1].thermal.throttled_cycles);
    EXPECT_EQ(results[0].thermal.peak_c, results[1].thermal.peak_c);
    EXPECT_EQ(results[0].energy.edp_energy_pj(),
              results[1].energy.edp_energy_pj());
  }
}

TEST(ThermalCluster, LeakageFeedbackIsMonotoneInAmbient) {
  const cluster::SimResult cool =
      thermal_run("fft", cluster::Fabric::kMot, 35.0, 1000.0,
                  cluster::SchedulerMode::kEventDriven);
  const cluster::SimResult warm =
      thermal_run("fft", cluster::Fabric::kMot, 55.0, 1000.0,
                  cluster::SchedulerMode::kEventDriven);
  // 75 °C ambient puts this package's leakage loop gain above one —
  // genuine thermal runaway, which must saturate finitely at the clamp
  // instead of overflowing, and still read as the hottest of the three.
  const cluster::SimResult runaway =
      thermal_run("fft", cluster::Fabric::kMot, 75.0, 1000.0,
                  cluster::SchedulerMode::kEventDriven);
  // Ceiling far above reach: identical execution, only leakage moves.
  ASSERT_EQ(cool.cycles, warm.cycles);
  ASSERT_EQ(warm.cycles, runaway.cycles);
  EXPECT_LT(cool.thermal.peak_c, warm.thermal.peak_c);
  EXPECT_LT(warm.thermal.peak_c, runaway.thermal.peak_c);
  EXPECT_LT(cool.thermal.leakage_pj, warm.thermal.leakage_pj);
  EXPECT_LT(warm.thermal.leakage_pj, runaway.thermal.leakage_pj);
  // And the delta vs. the temperature-independent model grows with it.
  EXPECT_LT(cool.thermal.leakage_delta_pj(), warm.thermal.leakage_delta_pj());
  EXPECT_LT(warm.thermal.leakage_delta_pj(), runaway.thermal.leakage_delta_pj());
  // Saturated runaway stays finite and visibly catastrophic.
  EXPECT_TRUE(std::isfinite(runaway.thermal.peak_c));
  EXPECT_TRUE(std::isfinite(runaway.thermal.leakage_pj));
  EXPECT_GT(runaway.thermal.peak_c, 120.0);
}

TEST(ThermalCluster, GovernorThrottlesHotEnvelopeAndStacksRunHotter) {
  const cluster::SimResult free_run =
      thermal_run("fft", cluster::Fabric::kMot, 60.0, 150.0,
                  cluster::SchedulerMode::kEventDriven);
  const cluster::SimResult capped =
      thermal_run("fft", cluster::Fabric::kMot, 60.0, 70.0,
                  cluster::SchedulerMode::kEventDriven);

  EXPECT_EQ(free_run.thermal.throttle_events, 0u);
  EXPECT_GT(capped.thermal.throttle_events, 0u);
  EXPECT_GT(capped.thermal.throttled_cycles, 0u);
  EXPECT_GT(capped.cycles, free_run.cycles);  // throttling costs time
  // The cap works: the governed run stays cooler than the free one.
  EXPECT_LT(capped.thermal.final_peak_c, free_run.thermal.final_peak_c);

  // Stacked tiers at or above the core die (cooled through it).
  ASSERT_EQ(free_run.thermal.peak_layer_c.size(), 3u);
  EXPECT_GE(free_run.thermal.peak_layer_c[1] + 1e-9,
            free_run.thermal.peak_layer_c[0]);
  EXPECT_GE(free_run.thermal.peak_layer_c[2] + 1e-9,
            free_run.thermal.peak_layer_c[1]);
}

TEST(ThermalCluster, DisabledThermalLeavesResultsUntouched) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name("fft"), cluster::Fabric::kMot,
      core::PowerState::full(), mem::DramPreset::kDdr3_200ns, 0.02, 42);
  const cluster::SimResult plain = cluster::Cluster(cfg).run();
  EXPECT_FALSE(plain.thermal.enabled);
  EXPECT_EQ(plain.thermal.samples, 0u);

  // A thermal run with an unreachable ceiling must not perturb timing.
  const cluster::SimResult with_thermal =
      thermal_run("fft", cluster::Fabric::kMot, 45.0, 1000.0,
                  cluster::SchedulerMode::kEventDriven);
  EXPECT_EQ(plain.cycles, with_thermal.cycles);
  EXPECT_EQ(plain.instructions, with_thermal.instructions);
}

// ---- thermal-aware advisor layer -------------------------------------------

TEST(ThermalAdvisor, DemotesBanksWhenTheProfileRanThrottled) {
  // A capacity-hungry, scalable profile: big resident footprint (the
  // bank guard says keep 32 banks), symmetric low spin (keep 16 cores).
  cluster::SimResult profile;
  profile.cycles = 1'000'000;
  profile.dram_latency_ns = 200.0;
  profile.cores.assign(16, cpu::CoreStats{});
  profile.l2_resident_lines = 20'000;  // 640 KB >> the 512 KB 8-bank guard

  const cluster::StateRecommendation base =
      cluster::recommend_power_state(profile);
  ASSERT_FALSE(base.gate_banks);
  ASSERT_FALSE(base.gate_cores);

  // The same profile measured against a violated thermal envelope: the
  // thermal layer overrides the footprint guard for headroom.
  profile.thermal.enabled = true;
  profile.thermal.ceiling_c = 70.0;
  profile.thermal.peak_c = 72.5;
  profile.thermal.throttle_events = 3;
  profile.thermal.throttled_cycles = 200'000;
  const cluster::StateRecommendation with_thermal =
      cluster::recommend_power_state_thermal(profile);
  EXPECT_TRUE(with_thermal.gate_banks);
  EXPECT_EQ(with_thermal.state.active_banks(), 8u);
  EXPECT_EQ(with_thermal.state.active_cores(), 16u);
  EXPECT_NE(with_thermal.rationale.find("thermal"), std::string::npos);

  // A cool thermal summary passes the base recommendation through.
  profile.thermal.peak_c = 55.0;
  profile.thermal.throttle_events = 0;
  profile.thermal.throttled_cycles = 0;
  const cluster::StateRecommendation cool_rec =
      cluster::recommend_power_state_thermal(profile);
  EXPECT_FALSE(cool_rec.gate_banks);
  EXPECT_EQ(cool_rec.state.active_banks(), 32u);

  // And an end-to-end throttled run feeds the layer for real.
  const cluster::SimResult hot =
      thermal_run("fft", cluster::Fabric::kMot, 60.0, 70.0,
                  cluster::SchedulerMode::kEventDriven);
  ASSERT_GT(hot.thermal.throttle_events, 0u);
  const cluster::StateRecommendation hot_rec =
      cluster::recommend_power_state_thermal(hot);
  EXPECT_TRUE(hot_rec.gate_banks);
}

}  // namespace
}  // namespace mot3d
