// Energy-conservation property tests: the EnergyLedger a run reports must
// be exactly the sum of its per-component contributions — cores (McPAT-lite
// terms over per-core stats), L1, L2, interconnect (MoT or NoC) and DRAM —
// and the derived metrics (EDP, average power) must be consistent with the
// ledger.  Checked under both schedulers: energy is one of the modeled
// quantities the event-driven loop must reproduce bit-for-bit.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "power/core_power.hpp"

namespace mot3d::cluster {
namespace {

ClusterConfig small_cfg(Fabric fabric, const core::PowerState& state,
                        SchedulerMode scheduler, const char* app = "fft") {
  ClusterConfig cfg = make_paper_config(workload::profile_by_name(app), fabric,
                                        state, mem::DramPreset::kDdr3_200ns,
                                        /*scale=*/0.01, /*seed=*/42);
  cfg.scheduler = scheduler;
  return cfg;
}

void check_conservation(const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  const SimResult r = cluster.run();
  const power::EnergyLedger& e = r.energy;

  using power::Component;

  // Every EDP component of a live cluster is exercised: cores commit
  // instructions, L1s are looked up, the L2 and the transport carry misses,
  // and powered components leak.
  EXPECT_GT(e.dynamic_pj(Component::kCore), 0.0);
  EXPECT_GT(e.static_pj(Component::kCore), 0.0);
  EXPECT_GT(e.dynamic_pj(Component::kL1), 0.0);
  EXPECT_GT(e.dynamic_pj(Component::kL2), 0.0);
  EXPECT_GT(e.static_pj(Component::kL2), 0.0);
  EXPECT_GT(e.dynamic_pj(Component::kInterconnect), 0.0);
  EXPECT_GT(e.static_pj(Component::kInterconnect), 0.0);
  EXPECT_GT(e.dynamic_pj(Component::kDram), 0.0);

  // Totals are exactly the per-component sums (no hidden or double-counted
  // energy), and the EDP total excludes DRAM per the paper's metric.
  const double edp_sum =
      e.component_pj(Component::kCore) + e.component_pj(Component::kL1) +
      e.component_pj(Component::kL2) + e.component_pj(Component::kInterconnect);
  EXPECT_DOUBLE_EQ(e.edp_energy_pj(), edp_sum);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.edp_energy_pj() + e.component_pj(Component::kDram));

  // Cross-check the ledger against each component's own accounting.
  EXPECT_DOUBLE_EQ(e.dynamic_pj(Component::kL2), r.l2.dynamic_energy_pj);
  EXPECT_DOUBLE_EQ(e.dynamic_pj(Component::kDram), r.dram.dynamic_energy_pj);

  // Core + L1 contributions recomputed from per-core stats with the same
  // McPAT-lite model, in the same per-core accumulation order.  Coherence
  // invalidations probe the L1D array and are charged like an access.
  const power::CorePowerModel core_model(cfg.core_power);
  double core_dynamic = 0.0, core_static = 0.0, l1_inval_pj = 0.0;
  for (const cpu::CoreStats& c : r.cores) {
    core_dynamic += static_cast<double>(c.instructions) *
                    cfg.core_power.energy_per_instr_pj;
    core_dynamic += core_model.spin_pj(c.spin_cycles);
    core_static += core_model.static_pj(r.cycles);
    l1_inval_pj += static_cast<double>(c.invalidations_received) *
                   cfg.core_power.energy_per_l1_access_pj;
  }
  EXPECT_DOUBLE_EQ(e.dynamic_pj(Component::kCore), core_dynamic);
  EXPECT_DOUBLE_EQ(e.static_pj(Component::kCore), core_static);
  if (!r.coherence_enabled) {
    EXPECT_DOUBLE_EQ(l1_inval_pj, 0.0);
  }

  // Derived metrics are pure functions of the ledger and the cycle count.
  EXPECT_DOUBLE_EQ(r.edp_pj_s,
                   e.edp_energy_pj() * static_cast<double>(r.cycles) * 1e-9);
  EXPECT_DOUBLE_EQ(r.avg_power_w, e.edp_energy_pj() * 1e-12 /
                                      (static_cast<double>(r.cycles) * 1e-9));
}

TEST(EnergyConservation, MotFullBothSchedulers) {
  check_conservation(small_cfg(Fabric::kMot, core::PowerState::full(),
                               SchedulerMode::kEventDriven));
  check_conservation(small_cfg(Fabric::kMot, core::PowerState::full(),
                               SchedulerMode::kDenseTick));
}

TEST(EnergyConservation, MotGatedBothSchedulers) {
  check_conservation(small_cfg(Fabric::kMot, core::PowerState::pc4_mb8(),
                               SchedulerMode::kEventDriven));
  check_conservation(small_cfg(Fabric::kMot, core::PowerState::pc4_mb8(),
                               SchedulerMode::kDenseTick));
}

TEST(EnergyConservation, NocFabricBothSchedulers) {
  check_conservation(small_cfg(Fabric::kTrueMesh3d, core::PowerState::full(),
                               SchedulerMode::kEventDriven));
  check_conservation(small_cfg(Fabric::kTrueMesh3d, core::PowerState::full(),
                               SchedulerMode::kDenseTick));
}

TEST(EnergyConservation, CoherenceTrafficBothSchedulers) {
  // Sharing workload: invalidations, upgrades and forwards all charge the
  // ledger (fabric messages -> interconnect, directory consults -> L2, L1
  // invalidation probes -> L1); the books must still balance exactly.
  for (SchedulerMode mode :
       {SchedulerMode::kEventDriven, SchedulerMode::kDenseTick}) {
    const ClusterConfig cfg = small_cfg(Fabric::kMot, core::PowerState::full(),
                                        mode, "producer_consumer");
    check_conservation(cfg);
    const SimResult r = Cluster(cfg).run();
    ASSERT_TRUE(r.coherence_enabled);
    ASSERT_GT(r.coherence.invalidations, 0u);
  }
}

TEST(EnergyConservation, SchedulersProduceIdenticalLedgers) {
  const SimResult dense =
      Cluster(small_cfg(Fabric::kMot, core::PowerState::pc16_mb8(),
                        SchedulerMode::kDenseTick))
          .run();
  const SimResult event =
      Cluster(small_cfg(Fabric::kMot, core::PowerState::pc16_mb8(),
                        SchedulerMode::kEventDriven))
          .run();
  for (power::Component c :
       {power::Component::kCore, power::Component::kL1, power::Component::kL2,
        power::Component::kInterconnect, power::Component::kDram}) {
    EXPECT_DOUBLE_EQ(dense.energy.dynamic_pj(c), event.energy.dynamic_pj(c))
        << power::component_name(c);
    EXPECT_DOUBLE_EQ(dense.energy.static_pj(c), event.energy.static_pj(c))
        << power::component_name(c);
  }
  EXPECT_DOUBLE_EQ(dense.energy.total_pj(), event.energy.total_pj());
}

}  // namespace
}  // namespace mot3d::cluster
