// Golden-figure regression suite: every registered figure/table scenario is
// re-run at its pinned golden options and its canonical metrics JSON is
// compared byte-for-byte against the committed baseline under tests/golden/.
// Each scenario is checked under BOTH schedulers — the event-driven loop
// must serialise to the exact bytes of the dense-tick reference, so a
// scheduler bug and a model drift are caught by the same net.
//
// To change a baseline on purpose (a deliberate model change):
//   ./build/mot3d_experiments update-golden
// then commit the JSON diff together with the change that motivated it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/scenario.hpp"
#include "sim/scenario_registry.hpp"

#ifndef MOT3D_GOLDEN_DIR
#define MOT3D_GOLDEN_DIR "tests/golden"
#endif

namespace mot3d::sim {
namespace {

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class GoldenFigures : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenFigures, MatchesBaselineUnderBothSchedulers) {
  const ScenarioSpec* spec = find_scenario(GetParam());
  ASSERT_NE(spec, nullptr);
  ASSERT_TRUE(spec->has_golden);

  const std::string path = std::string(MOT3D_GOLDEN_DIR) + "/" + spec->name + ".json";
  bool ok = false;
  const std::string golden = read_file(path, &ok);
  ASSERT_TRUE(ok) << "missing baseline " << path
                  << " — regenerate with: mot3d_experiments update-golden";

  for (cluster::SchedulerMode mode :
       {cluster::SchedulerMode::kEventDriven, cluster::SchedulerMode::kDenseTick}) {
    ScenarioOptions opt = golden_options(*spec);
    opt.scheduler = mode;
    const ScenarioOutcome out = run_scenario(*spec, opt);
    EXPECT_EQ(scenario_metrics_json(out), golden)
        << "scenario " << spec->name << " drifted from its baseline under the "
        << cluster::scheduler_name(mode)
        << " scheduler.  If the model change is intentional, regenerate with "
           "mot3d_experiments update-golden and commit the diff.";
  }
}

std::string pretty_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string n = info.param;
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(Registry, GoldenFigures,
                         ::testing::ValuesIn(golden_scenario_names()),
                         pretty_name);

// The registry itself is part of the contract: every figure/table of the
// paper must stay registered, discoverable, and golden-pinned.
TEST(ScenarioRegistry, AllFigureAndTableScenariosRegistered) {
  for (const char* name :
       {"table1_config", "fig5_wire_lengths", "fig6a_l2_latency",
        "fig6b_exec_time", "fig7a_edp_200ns", "fig7b_exec_time_states",
        "fig8a_edp_63ns", "fig8b_edp_42ns", "thermal_envelope",
        "coherence_sharing", "fault_resilience", "scale_smoke",
        "stacked_dram"}) {
    const ScenarioSpec* spec = find_scenario(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_TRUE(spec->has_golden) << name;
  }
  for (const char* name : {"ablation_wire", "ablation_pipeline", "micro_sim"}) {
    const ScenarioSpec* spec = find_scenario(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->kind, ScenarioSpec::Kind::kCustom) << name;
    EXPECT_FALSE(spec->has_golden) << name;
  }
  EXPECT_EQ(all_scenarios().size(), 16u);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, GridExpansionDropsInvalidCombos) {
  ScenarioSpec spec;
  spec.apps = {"fft"};
  spec.fabrics = {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d};
  spec.power_states = {core::PowerState::full(), core::PowerState::pc4_mb8()};
  spec.dram_presets = {mem::DramPreset::kDdr3_200ns};
  std::size_t skipped = 0;
  auto runs = expand_grid(spec, &skipped);
  // MoT runs both states; the packet-switched mesh only runs Full.
  EXPECT_EQ(runs.size(), 3u);
  EXPECT_EQ(skipped, 1u);
  // No thermal axis: every cell carries the disabled envelope.
  for (const ScenarioRun& r : runs) EXPECT_FALSE(r.thermal.enabled);

  // A thermal axis multiplies the valid grid and decorates each run.
  spec.thermal_envelopes = {thermal::ThermalEnvelope{true, 45.0, 85.0},
                            thermal::ThermalEnvelope{true, 60.0, 70.0}};
  EXPECT_EQ(spec.grid_size(), 8u);
  runs = expand_grid(spec, &skipped);
  EXPECT_EQ(runs.size(), 6u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_TRUE(runs[0].thermal.enabled);
  EXPECT_EQ(runs[0].thermal.ambient_c, 45.0);
  EXPECT_EQ(runs[1].thermal.ambient_c, 60.0);

  // A fault axis multiplies further, as the innermost dimension.
  spec.fault_envelopes = {fault::FaultEnvelope{true, 1.0, 0.0, 101},
                          fault::FaultEnvelope{true, 2.0, 1.0, 202}};
  EXPECT_EQ(spec.grid_size(), 16u);
  runs = expand_grid(spec, &skipped);
  EXPECT_EQ(runs.size(), 12u);
  EXPECT_EQ(skipped, 4u);
  EXPECT_TRUE(runs[0].fault.enabled);
  EXPECT_EQ(runs[0].fault.seed, 101u);
  EXPECT_EQ(runs[1].fault.seed, 202u);
  EXPECT_EQ(runs[1].fault.bank_fault_rate, 1.0);
}

TEST(ScenarioRegistry, AxisParsersRoundTrip) {
  for (cluster::Fabric f :
       {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d,
        cluster::Fabric::kHybridBusMesh, cluster::Fabric::kHybridBusTree}) {
    EXPECT_EQ(fabric_by_key(fabric_key(f)), f);
  }
  EXPECT_THROW(fabric_by_key("ring"), std::invalid_argument);

  for (const core::PowerState& s : core::PowerState::paper_states()) {
    EXPECT_EQ(power_state_by_name(s.name()), s);
  }
  // Generic gating levels beyond the paper's four states.
  const core::PowerState pc8 = power_state_by_name("PC8-MB16");
  EXPECT_EQ(pc8.active_cores(), 8u);
  EXPECT_EQ(pc8.active_banks(), 16u);
  EXPECT_THROW(power_state_by_name("PCx-MBy"), std::invalid_argument);
  // Trailing garbage after a valid pattern is a typo, not a state.
  EXPECT_THROW(power_state_by_name("PC4-MB8x"), std::invalid_argument);

  EXPECT_EQ(dram_preset_by_key("200"), mem::DramPreset::kDdr3_200ns);
  EXPECT_EQ(dram_preset_by_key("wideio"), mem::DramPreset::kWideIo_63ns);
  EXPECT_EQ(dram_preset_by_key("42"), mem::DramPreset::kWeis3d_42ns);
  EXPECT_THROW(dram_preset_by_key("100"), std::invalid_argument);
}

}  // namespace
}  // namespace mot3d::sim
