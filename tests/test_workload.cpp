// Unit tests for the SPLASH-2 synthetic workload generators: determinism,
// the phase/barrier skeleton, serial-fraction structure, address-space
// discipline and the published per-app characteristics the paper's
// conclusions rest on (scalability group vs. L2-demand group).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/app_profile.hpp"
#include "workload/synthetic_trace.hpp"

namespace mot3d::workload {
namespace {

using cpu::TraceKind;
using cpu::TraceRecord;

struct Drained {
  std::uint64_t instructions = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t stores = 0;
  std::vector<std::uint32_t> barriers;
  std::set<Addr> shared_lines;
  std::set<Addr> private_lines;
  std::set<Addr> code_lines;
};

Drained drain(cpu::TraceSource& src, std::size_t limit = 5'000'000) {
  Drained d;
  for (std::size_t i = 0; i < limit; ++i) {
    const TraceRecord r = src.next();
    switch (r.kind) {
      case TraceKind::kEnd:
        return d;
      case TraceKind::kCompute:
        d.instructions += r.compute_cycles;
        break;
      case TraceKind::kBarrier:
        d.barriers.push_back(r.barrier_id);
        break;
      case TraceKind::kMem:
        if (r.op == MemOp::kInstrFetch) {
          ++d.ifetches;
          d.code_lines.insert(r.addr / 32);
        } else {
          ++d.instructions;
          ++d.mem_ops;
          if (r.op == MemOp::kStore) ++d.stores;
          if (r.addr >= AddressMap::kSharedBase) {
            d.shared_lines.insert(r.addr / 32);
          } else {
            d.private_lines.insert(r.addr / 32);
          }
        }
        break;
    }
  }
  ADD_FAILURE() << "trace did not terminate";
  return d;
}

TEST(Profiles, EightPaperApps) {
  const auto names = splash2_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "cholesky");
  EXPECT_NO_THROW(profile_by_name("radix"));
  EXPECT_THROW(profile_by_name("doesnotexist"), std::out_of_range);
}

TEST(Profiles, ScalabilityGroups) {
  // Paper Fig. 7(b): fmm/radix/ocean/water scale; cholesky/fft/volrend/
  // raytrace do not.
  for (const char* n : {"fmm", "radix", "ocean_contiguous", "water_nsquared"}) {
    EXPECT_TRUE(profile_by_name(n).scalable()) << n;
  }
  for (const char* n : {"cholesky", "fft", "volrend", "raytrace"}) {
    EXPECT_FALSE(profile_by_name(n).scalable()) << n;
  }
}

TEST(Profiles, L2DemandGroups) {
  // Paper Fig. 7(a): cholesky/radix/ocean thrash with 8 banks (512 KB);
  // the other five fit.
  const std::size_t mb8 = 8 * 64 * 1024;
  for (const char* n : {"cholesky", "radix", "ocean_contiguous"}) {
    EXPECT_GT(profile_by_name(n).l2_footprint_bytes(16), 2 * mb8) << n;
  }
  for (const char* n : {"fft", "fmm", "volrend", "raytrace", "water_nsquared"}) {
    EXPECT_LT(profile_by_name(n).l2_footprint_bytes(16), mb8) << n;
  }
}

TEST(PhasePlan, WorkConservation) {
  const AppProfile& app = profile_by_name("fft");
  const PhasePlan plan = PhasePlan::build(app, 0.1);
  std::uint64_t total = 0;
  for (const auto& ph : plan.phases) total += ph.instructions;
  const auto expected = static_cast<std::uint64_t>(app.work_instructions * 0.1);
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(expected),
              static_cast<double>(expected) * 0.01);
  EXPECT_EQ(plan.num_barriers, plan.phases.size());
}

TEST(PhasePlan, SerialPhasesMatchFraction) {
  const AppProfile& app = profile_by_name("cholesky");
  const PhasePlan plan = PhasePlan::build(app, 0.1);
  std::uint64_t serial = 0, total = 0;
  for (const auto& ph : plan.phases) {
    total += ph.instructions;
    if (ph.serial) serial += ph.instructions;
  }
  EXPECT_NEAR(static_cast<double>(serial) / static_cast<double>(total),
              app.serial_fraction, 0.02);
}

TEST(PhasePlan, ScalableAppHasTinySerialShare) {
  const PhasePlan plan = PhasePlan::build(profile_by_name("radix"), 0.1);
  std::uint64_t serial = 0, total = 0;
  for (const auto& ph : plan.phases) {
    total += ph.instructions;
    if (ph.serial) serial += ph.instructions;
  }
  EXPECT_LT(static_cast<double>(serial) / static_cast<double>(total), 0.06);
}

TEST(Trace, DeterministicInSeed) {
  const AppProfile& app = profile_by_name("fft");
  Workload w(app, 4, 0.02, 7);
  auto a = w.make_trace(1);
  auto b = w.make_trace(1);
  for (int i = 0; i < 10000; ++i) {
    const TraceRecord ra = a->next();
    const TraceRecord rb = b->next();
    ASSERT_EQ(static_cast<int>(ra.kind), static_cast<int>(rb.kind));
    ASSERT_EQ(ra.addr, rb.addr);
    ASSERT_EQ(ra.compute_cycles, rb.compute_cycles);
    if (ra.kind == TraceKind::kEnd) break;
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  const AppProfile& app = profile_by_name("fft");
  Workload w1(app, 4, 0.02, 7);
  Workload w2(app, 4, 0.02, 8);
  auto a = w1.make_trace(1);
  auto b = w2.make_trace(1);
  int diffs = 0;
  for (int i = 0; i < 2000; ++i) {
    const TraceRecord ra = a->next();
    const TraceRecord rb = b->next();
    if (ra.kind != rb.kind || ra.addr != rb.addr ||
        ra.compute_cycles != rb.compute_cycles) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 100);
}

TEST(Trace, AllThreadsEmitEveryBarrierInOrder) {
  const AppProfile& app = profile_by_name("volrend");
  const std::size_t threads = 4;
  Workload w(app, threads, 0.02, 11);
  for (std::size_t t = 0; t < threads; ++t) {
    auto trace = w.make_trace(t);
    const Drained d = drain(*trace);
    ASSERT_EQ(d.barriers.size(), w.plan().num_barriers) << "thread " << t;
    for (std::uint32_t i = 0; i < d.barriers.size(); ++i) {
      EXPECT_EQ(d.barriers[i], i);
    }
  }
}

TEST(Trace, SerialWorkOnlyOnThreadZero) {
  AppProfile app = profile_by_name("cholesky");
  Workload w(app, 4, 0.02, 3);
  const Drained d0 = drain(*w.make_trace(0));
  const Drained d1 = drain(*w.make_trace(1));
  // Thread 0 carries the serial phases on top of its parallel share.
  EXPECT_GT(static_cast<double>(d0.instructions),
            1.5 * static_cast<double>(d1.instructions));
}

TEST(Trace, MemFractionCalibrated) {
  const AppProfile& app = profile_by_name("radix");
  Workload w(app, 4, 0.02, 5);
  const Drained d = drain(*w.make_trace(2));
  EXPECT_NEAR(static_cast<double>(d.mem_ops) / static_cast<double>(d.instructions),
              app.mem_fraction, 0.06);
}

TEST(Trace, ReadFractionCalibrated) {
  const AppProfile& app = profile_by_name("raytrace");
  Workload w(app, 4, 0.02, 5);
  const Drained d = drain(*w.make_trace(0));
  const double writes =
      static_cast<double>(d.stores) / static_cast<double>(d.mem_ops);
  EXPECT_NEAR(writes, 1.0 - app.read_fraction, 0.05);
}

TEST(Trace, AddressesStayInsideRegions) {
  const AppProfile& app = profile_by_name("ocean_contiguous");
  Workload w(app, 8, 0.01, 13);
  auto trace = w.make_trace(3);
  for (int i = 0; i < 50000; ++i) {
    const TraceRecord r = trace->next();
    if (r.kind == TraceKind::kEnd) break;
    if (r.kind != TraceKind::kMem) continue;
    if (r.op == MemOp::kInstrFetch) {
      EXPECT_GE(r.addr, AddressMap::kCodeBase);
      EXPECT_LT(r.addr, AddressMap::kCodeBase + app.code_bytes);
    } else if (r.addr >= AddressMap::kSharedBase) {
      EXPECT_LT(r.addr, AddressMap::kSharedBase + app.working_set_bytes);
    } else {
      EXPECT_GE(r.addr, AddressMap::private_base(3));
      EXPECT_LT(r.addr, AddressMap::private_base(3) + app.private_bytes);
    }
  }
}

TEST(Trace, WorkingSetCoverageTracksProfile) {
  // Across all threads, a capacity-hungry app (ocean, 2.5 MB) touches far
  // more distinct shared lines than a small-WS app (volrend, 160 KB),
  // because the small app *saturates* its region — this is exactly why
  // PC16-MB8 (512 KB of L2) hurts one group and not the other.
  auto coverage = [](const char* name) {
    Workload w(profile_by_name(name), 4, 0.2, 17);
    std::set<Addr> lines;
    for (std::size_t t = 0; t < 4; ++t) {
      const Drained d = drain(*w.make_trace(t));
      lines.insert(d.shared_lines.begin(), d.shared_lines.end());
    }
    return lines.size();
  };
  const std::size_t big = coverage("ocean_contiguous");
  const std::size_t small = coverage("volrend");
  // volrend cannot exceed its working set...
  EXPECT_LE(small, profile_by_name("volrend").working_set_bytes / 32);
  // ...while ocean blows far past volrend's entire region.
  EXPECT_GT(big, 2 * small);
}

TEST(Trace, IfetchCadence) {
  const AppProfile& app = profile_by_name("fft");
  Workload w(app, 4, 0.02, 5);
  const Drained d = drain(*w.make_trace(1));
  const double per_ifetch =
      static_cast<double>(d.instructions) / static_cast<double>(d.ifetches);
  EXPECT_NEAR(per_ifetch, app.ifetch_every, app.ifetch_every * 0.25);
}

TEST(Trace, ImbalanceSpreadsShares) {
  AppProfile app = profile_by_name("raytrace");  // imbalance 0.30
  Workload w(app, 8, 0.05, 23);
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::size_t t = 0; t < 8; ++t) {
    const Drained d = drain(*w.make_trace(t));
    lo = std::min(lo, d.instructions);
    hi = std::max(hi, d.instructions);
  }
  EXPECT_GT(static_cast<double>(hi) / static_cast<double>(lo), 1.05);
}

}  // namespace
}  // namespace mot3d::workload
