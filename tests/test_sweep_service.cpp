// Sweep service: content-addressed caching must be invisible except for
// speed.  The properties pinned here are the service's whole contract:
//  * the spec hash is byte-stable — permuting request-axis value order or
//    request-field order never changes it, changing any modeled input
//    always does;
//  * a cache hit is bit-identical to recomputation (including across the
//    scheduler axis, which is deliberately not part of the key);
//  * concurrent batches compute each unique spec exactly once;
//  * truncated / tampered entries are detected and recomputed, never
//    served; errors are never cached; unwritable dirs fail loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/sha256.hpp"
#include "sim/json_reader.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/sweep_service.hpp"

namespace mot3d::sim {
namespace {

namespace fs = std::filesystem;

/// A small, fast job: fft on the paper config at reduced scale.
SweepJob make_job(const std::string& app, double scale = 0.01) {
  SweepJob j;
  j.run.app = app;
  j.scale = scale;
  j.seed = 7;
  return j;
}

/// Fresh cache directory per test so entries never leak across cases.
class SweepServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("sweep_cache_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServiceConfig config() const {
    ServiceConfig cfg;
    cfg.cache_dir = dir_.string();
    cfg.threads = 2;
    return cfg;
  }

  static SweepJob job(const std::string& app, double scale = 0.01) {
    return make_job(app, scale);
  }

  fs::path entry_file() const {
    for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".entry") return e.path();
    }
    ADD_FAILURE() << "no .entry file in " << dir_;
    return {};
  }

  fs::path dir_;
};

// ---- SHA-256 ---------------------------------------------------------------

TEST(Sha256, Fips180KnownVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Exercise the two-tail-block padding path (length 56..63 mod 64).
  EXPECT_EQ(sha256_hex(std::string(56, 'a')).size(), 64u);
  EXPECT_NE(sha256_hex(std::string(64, 'a')), sha256_hex(std::string(65, 'a')));
}

// ---- spec hash stability ---------------------------------------------------

TEST(SpecHash, RequestAxisOrderAndFieldOrderDoNotMatter) {
  // Same grid, permuted axis-value order AND permuted JSON field order:
  // the canonicalisation must make the hash sets identical.
  const ServiceRequest a = parse_service_request(
      R"({"apps":["fft","radix"],"fabrics":["mot","mesh3d"],"scale":0.01,"seed":3})");
  const ServiceRequest b = parse_service_request(
      R"({"seed":3,"fabrics":["mesh3d","mot"],"scale":0.01,"apps":["radix","fft"]})");
  ASSERT_EQ(a.jobs.size(), 4u);
  ASSERT_EQ(b.jobs.size(), 4u);
  std::set<std::string> ha, hb;
  for (const SweepJob& j : a.jobs) ha.insert(job_hash(j));
  for (const SweepJob& j : b.jobs) hb.insert(job_hash(j));
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(ha.size(), 4u) << "distinct cells must hash distinctly";
}

TEST(SpecHash, EverySingleModeledFieldChangesTheHash) {
  SweepJob base;
  base.run.app = "fft";
  base.scale = 0.01;
  base.seed = 7;
  const std::string h0 = job_hash(base);

  std::vector<std::pair<const char*, SweepJob>> variants;
  variants.reserve(16);
  {
    SweepJob j = base;
    j.run.app = "radix";
    variants.emplace_back("app", j);
  }
  {
    SweepJob j = base;
    j.run.fabric = cluster::Fabric::kTrueMesh3d;
    variants.emplace_back("fabric", j);
  }
  {
    SweepJob j = base;
    j.run.state = power_state_by_name("PC8-MB16");
    variants.emplace_back("power state", j);
  }
  {
    SweepJob j = base;
    j.run.dram = mem::DramPreset::kWideIo_63ns;
    variants.emplace_back("dram preset", j);
  }
  {
    SweepJob j = base;
    j.run.dram_backend = DramBackendMode::kStacked;
    variants.emplace_back("dram backend", j);
  }
  {
    SweepJob j = base;
    j.run.thermal.enabled = true;
    variants.emplace_back("thermal enabled", j);
  }
  {
    SweepJob j = base;
    j.run.thermal.ambient_c = 55.0;
    variants.emplace_back("thermal ambient", j);
  }
  {
    SweepJob j = base;
    j.run.thermal.ceiling_c = 75.0;
    variants.emplace_back("thermal ceiling", j);
  }
  {
    SweepJob j = base;
    j.run.fault.enabled = true;
    variants.emplace_back("fault enabled", j);
  }
  {
    SweepJob j = base;
    j.run.fault.tsv_fault_rate = 0.5;
    variants.emplace_back("tsv fault rate", j);
  }
  {
    SweepJob j = base;
    j.run.fault.bank_fault_rate = 0.5;
    variants.emplace_back("bank fault rate", j);
  }
  {
    SweepJob j = base;
    j.run.fault.seed = 99;
    variants.emplace_back("fault seed", j);
  }
  {
    SweepJob j = base;
    j.scale = 0.02;
    variants.emplace_back("scale", j);
  }
  {
    SweepJob j = base;
    j.seed = 8;
    variants.emplace_back("seed", j);
  }
  std::set<std::string> seen{h0};
  for (const auto& [field, j] : variants) {
    const std::string h = job_hash(j);
    EXPECT_NE(h, h0) << "changing " << field << " must change the hash";
    EXPECT_TRUE(seen.insert(h).second)
        << field << " collided with another variant";
  }
}

TEST(SpecHash, WatchdogBudgetIsNotPartOfTheKey) {
  // The watchdog only bounds recomputation; errors are never cached, so a
  // different budget must still address the same cached result.
  SweepJob a = make_job("fft");
  SweepJob b = a;
  b.timeout_seconds = 30.0;
  EXPECT_EQ(job_hash(a), job_hash(b));
}

TEST(SpecHash, CanonicalJsonIsByteStable) {
  const SweepJob j = make_job("fft");
  const std::string doc = canonical_job_json(j);
  EXPECT_EQ(doc, canonical_job_json(j));
  EXPECT_EQ(job_hash(j), sha256_hex(doc));
  // Field order is part of the format: pin the prefix so an accidental
  // reordering (which would orphan every existing cache) fails here.
  EXPECT_EQ(doc.rfind(R"({"format": 1, "app": "fft", "fabric": "mot")", 0), 0u)
      << doc;
}

// ---- cache behaviour -------------------------------------------------------

TEST_F(SweepServiceTest, ColdThenWarmIsBitIdenticalWithZeroRecompute) {
  SweepService service(config());
  const std::vector<SweepJob> jobs = {job("fft"), job("radix")};
  const std::vector<JobOutcome> cold = service.run_batch(jobs);
  ASSERT_EQ(cold.size(), 2u);
  for (const JobOutcome& o : cold) {
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_FALSE(o.cache_hit);
    EXPECT_FALSE(o.payload.empty());
  }
  const std::vector<JobOutcome> warm = service.run_batch(jobs);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    ASSERT_TRUE(warm[i].ok());
    EXPECT_TRUE(warm[i].cache_hit);
    EXPECT_EQ(warm[i].payload, cold[i].payload) << "hit must be bit-identical";
    EXPECT_EQ(warm[i].spec_hash, cold[i].spec_hash);
  }
  const obs::ServiceSnapshot s = service.counters().snapshot();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.computed, 2u) << "warm pass must recompute nothing";
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.queue_depth, 0);
}

TEST_F(SweepServiceTest, SchedulerIsNotPartOfTheKeyAndHitsAreBitIdentical) {
  ServiceConfig event_cfg = config();
  event_cfg.scheduler = cluster::SchedulerMode::kEventDriven;
  std::string computed;
  {
    SweepService service(event_cfg);
    const auto out = service.run_batch({job("fft")});
    ASSERT_TRUE(out[0].ok()) << out[0].error;
    computed = out[0].payload;
  }
  ServiceConfig dense_cfg = config();
  dense_cfg.scheduler = cluster::SchedulerMode::kDenseTick;
  SweepService service(dense_cfg);
  const auto out = service.run_batch({job("fft")});
  ASSERT_TRUE(out[0].ok());
  EXPECT_TRUE(out[0].cache_hit)
      << "dense-tick must be served by the event-driven entry";
  EXPECT_EQ(out[0].payload, computed);
  EXPECT_EQ(service.counters().snapshot().computed, 0u);
}

TEST_F(SweepServiceTest, DuplicateJobsInOneBatchComputeOnce) {
  SweepService service(config());
  const auto out = service.run_batch({job("fft"), job("fft"), job("fft")});
  ASSERT_EQ(out.size(), 3u);
  for (const JobOutcome& o : out) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.payload, out[0].payload);
    EXPECT_EQ(o.spec_hash, out[0].spec_hash);
  }
  const obs::ServiceSnapshot s = service.counters().snapshot();
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST_F(SweepServiceTest, ConcurrentClientsComputeEachJobExactlyOnce) {
  SweepService service(config());
  const std::vector<SweepJob> jobs = {job("fft", 0.005), job("radix", 0.005),
                                      job("volrend", 0.005)};
  constexpr int kClients = 4;
  std::vector<std::vector<JobOutcome>> results(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back(
          [&, c] { results[c] = service.run_batch(jobs); });
    }
    for (std::thread& t : clients) t.join();
  }
  std::uint64_t response_misses = 0;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[c].size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(results[c][i].ok()) << results[c][i].error;
      EXPECT_EQ(results[c][i].payload, results[0][i].payload)
          << "client " << c << " job " << i;
      if (!results[c][i].cache_hit) ++response_misses;
    }
  }
  // Cross-check per-response provenance against the service.* probes:
  // every unique spec computed exactly once, every other serve was a hit.
  const obs::ServiceSnapshot s = service.counters().snapshot();
  EXPECT_EQ(s.computed, jobs.size());
  EXPECT_EQ(s.misses, jobs.size());
  EXPECT_EQ(response_misses, jobs.size());
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kClients - 1) * jobs.size());
  EXPECT_EQ(s.queue_depth, 0);
  EXPECT_EQ(s.job_errors, 0u);
}

// ---- corruption + error paths ----------------------------------------------

TEST_F(SweepServiceTest, TruncatedEntryIsRecomputedAndRewritten) {
  SweepService service(config());
  const auto cold = service.run_batch({job("fft")});
  ASSERT_TRUE(cold[0].ok());
  const fs::path entry = entry_file();
  fs::resize_file(entry, fs::file_size(entry) / 2);

  const auto recomputed = service.run_batch({job("fft")});
  ASSERT_TRUE(recomputed[0].ok());
  EXPECT_FALSE(recomputed[0].cache_hit) << "a truncated entry was served";
  EXPECT_EQ(recomputed[0].payload, cold[0].payload);
  EXPECT_EQ(service.counters().snapshot().corrupt_entries, 1u);

  // The rewrite must restore a servable entry.
  const auto warm = service.run_batch({job("fft")});
  EXPECT_TRUE(warm[0].cache_hit);
  EXPECT_EQ(warm[0].payload, cold[0].payload);
}

TEST_F(SweepServiceTest, TamperedPayloadFailsItsHashAndIsNeverServed) {
  SweepService service(config());
  const auto cold = service.run_batch({job("fft")});
  ASSERT_TRUE(cold[0].ok());
  const fs::path entry = entry_file();
  // Flip one payload byte without changing the length: only the payload
  // hash can catch this.
  std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  f.put('X');
  f.close();

  const auto recomputed = service.run_batch({job("fft")});
  ASSERT_TRUE(recomputed[0].ok());
  EXPECT_FALSE(recomputed[0].cache_hit) << "a tampered entry was served";
  EXPECT_EQ(recomputed[0].payload, cold[0].payload);
  EXPECT_GE(service.counters().snapshot().corrupt_entries, 1u);
}

TEST_F(SweepServiceTest, ErrorsAreNeverCached) {
  SweepService service(config());
  SweepJob wedged = job("fft");
  wedged.timeout_seconds = 1e-6;  // watchdog kills the run immediately
  const auto failed = service.run_batch({wedged});
  ASSERT_FALSE(failed[0].ok());
  EXPECT_FALSE(failed[0].cache_hit);
  EXPECT_NE(failed[0].error.find("watchdog"), std::string::npos)
      << failed[0].error;
  EXPECT_EQ(service.cache_stats().entries, 0u) << "an error was cached";
  EXPECT_EQ(service.counters().snapshot().job_errors, 1u);

  // Same spec without the budget: computes fresh (nothing was cached).
  const auto ok = service.run_batch({job("fft")});
  ASSERT_TRUE(ok[0].ok());
  EXPECT_FALSE(ok[0].cache_hit);
}

TEST_F(SweepServiceTest, EvictionKeepsTheCacheUnderItsByteCap) {
  ServiceConfig cfg = config();
  cfg.max_cache_bytes = 1;  // every store immediately over-caps
  SweepService service(cfg);
  const auto out = service.run_batch({job("fft"), job("radix")});
  ASSERT_TRUE(out[0].ok());
  ASSERT_TRUE(out[1].ok());
  EXPECT_LE(service.cache_stats().entries, 1u);
  EXPECT_GE(service.counters().snapshot().evictions, 1u);
}

TEST(SweepServiceConstruct, UnwritableCacheDirThrowsOneCleanError) {
  // /dev/null/sub cannot be created even by root (unlike /nonexistent/...).
  ServiceConfig cfg;
  cfg.cache_dir = "/dev/null/sub";
  EXPECT_THROW(SweepService{cfg}, std::runtime_error);
  cfg.cache_dir = "";
  EXPECT_THROW(SweepService{cfg}, std::runtime_error);
}

// ---- request protocol ------------------------------------------------------

TEST(ServiceRequestParse, ScenarioRequestsUseGoldenOptions) {
  const ServiceRequest req =
      parse_service_request(R"({"id":9,"scenario":"fig6b_exec_time"})");
  ASSERT_FALSE(req.jobs.empty());
  const ScenarioSpec* spec = find_scenario("fig6b_exec_time");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(req.jobs.size(), expand_grid(*spec).size());
  EXPECT_EQ(req.jobs.front().scale, spec->golden_scale);
  EXPECT_EQ(req.jobs.front().seed, spec->seed);
  EXPECT_EQ(req.id, "9");
}

TEST(ServiceRequestParse, MalformedRequestsThrowWithOneLineReasons) {
  EXPECT_THROW(parse_service_request("not json"), std::invalid_argument);
  EXPECT_THROW(parse_service_request("[1,2]"), std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"frobnicate":1})"),
               std::invalid_argument);  // unknown field
  EXPECT_THROW(parse_service_request(R"({"cmd":"dance"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"cmd":"ping","apps":["fft"]})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_service_request(R"({"scenario":"fig6b_exec_time","apps":["fft"]})"),
      std::invalid_argument);  // mixing shapes
  EXPECT_THROW(parse_service_request(R"({"scenario":"no_such"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"scenario":"fig5_wire_lengths"})"),
               std::invalid_argument);  // timing scenario: nothing to memoize
  EXPECT_THROW(parse_service_request(R"({"apps":["notanapp"]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"apps":[]})"), std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"apps":["fft"],"scale":-1})"),
               std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"apps":["fft"],"seed":1.5})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_service_request(R"({"apps":["fft"],"timeout_seconds":-1})"),
      std::invalid_argument);
  EXPECT_THROW(parse_service_request(R"({"id":[1],"apps":["fft"]})"),
               std::invalid_argument);  // non-scalar id
}

// ---- the loop, end to end over stringstreams -------------------------------

namespace {
std::vector<JsonValue> parse_lines(const std::string& text) {
  std::vector<JsonValue> docs;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    std::optional<JsonValue> doc = JsonReader(line).parse();
    EXPECT_TRUE(doc.has_value()) << "unparseable response line: " << line;
    if (doc) docs.push_back(std::move(*doc));
  }
  return docs;
}

const JsonValue* field(const JsonValue& doc, const char* key) {
  return doc.find(key);
}
}  // namespace

TEST_F(SweepServiceTest, ServeLoopAnswersReadyPingRunStatsShutdown) {
  SweepService service(config());
  std::istringstream in(
      "{\"id\":1,\"cmd\":\"ping\"}\n"
      "{\"id\":2,\"apps\":[\"fft\"],\"scale\":0.01,\"seed\":7}\n"
      "{\"id\":3,\"cmd\":\"stats\"}\n"
      "{\"id\":4,\"cmd\":\"shutdown\"}\n"
      "{\"id\":5,\"cmd\":\"ping\"}\n");  // after shutdown: must not run
  std::ostringstream out;
  EXPECT_EQ(service_loop(in, out, service, ServiceLoopMode::kServe), 0);

  const std::vector<JsonValue> docs = parse_lines(out.str());
  ASSERT_EQ(docs.size(), 6u) << out.str();  // ready,pong,job,done,stats,bye
  EXPECT_NE(field(docs[0], "ready"), nullptr);
  EXPECT_NE(field(docs[1], "pong"), nullptr);
  ASSERT_NE(field(docs[2], "spec_hash"), nullptr);
  EXPECT_EQ(field(docs[2], "cache_hit")->boolean, false);
  ASSERT_NE(field(docs[2], "result"), nullptr);
  EXPECT_EQ(field(docs[2], "result")->type, JsonValue::Type::kObject);
  ASSERT_NE(field(docs[3], "done"), nullptr);
  EXPECT_EQ(field(docs[3], "cache_misses")->number, 1.0);
  ASSERT_NE(field(docs[4], "stats"), nullptr);
  EXPECT_EQ(field(*field(docs[4], "stats"), "service.computed")->number, 1.0);
  EXPECT_NE(field(docs[5], "bye"), nullptr);
}

TEST_F(SweepServiceTest, BatchLoopExitsNonZeroOnProtocolOrJobErrors) {
  SweepService service(config());
  {
    std::istringstream in("this is not json\n");
    std::ostringstream out;
    EXPECT_EQ(service_loop(in, out, service, ServiceLoopMode::kBatch), 1);
    const std::vector<JsonValue> docs = parse_lines(out.str());
    ASSERT_EQ(docs.size(), 2u);  // error line + batch_done
    EXPECT_NE(field(docs[0], "error"), nullptr);
    EXPECT_EQ(field(docs[1], "protocol_errors")->number, 1.0);
  }
  {
    // A wedged job (absurd watchdog budget) must yield a structured error
    // response AND a non-zero batch exit — never a wedged process.
    std::istringstream in(
        "{\"apps\":[\"fft\"],\"scale\":0.01,\"timeout_seconds\":0.000001}\n");
    std::ostringstream out;
    EXPECT_EQ(service_loop(in, out, service, ServiceLoopMode::kBatch), 1);
    const std::vector<JsonValue> docs = parse_lines(out.str());
    ASSERT_EQ(docs.size(), 3u);  // job error + done + batch_done
    ASSERT_NE(field(docs[0], "error"), nullptr);
    EXPECT_NE(field(docs[0], "error")->string.find("watchdog"),
              std::string::npos);
    EXPECT_EQ(field(docs[1], "errors")->number, 1.0);
  }
}

TEST_F(SweepServiceTest, WarmBatchReportsZeroMissesByteIdentically) {
  // The CI smoke in script form: same requests, cold then warm, responses
  // byte-identical and the warm summary reports zero misses.
  const std::string requests =
      "{\"id\":1,\"apps\":[\"fft\",\"radix\"],\"scale\":0.01,\"seed\":7}\n";
  std::string cold_text, warm_text;
  {
    SweepService service(config());
    std::istringstream in(requests);
    std::ostringstream out;
    EXPECT_EQ(service_loop(in, out, service, ServiceLoopMode::kBatch), 0);
    cold_text = out.str();
  }
  {
    SweepService service(config());
    std::istringstream in(requests);
    std::ostringstream out;
    EXPECT_EQ(service_loop(in, out, service, ServiceLoopMode::kBatch), 0);
    warm_text = out.str();
  }
  EXPECT_NE(cold_text.find("\"cache_misses\": 2"), std::string::npos);
  EXPECT_NE(warm_text.find("\"cache_misses\": 0"), std::string::npos);
  EXPECT_NE(warm_text.find("\"cache_hits\": 2"), std::string::npos);
  // Every response line must be byte-identical once the one legitimate
  // difference — the cache_hit provenance flag — is normalised away.
  auto normalize = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
      if (line.find("\"spec_hash\"") == std::string::npos) continue;
      const std::string from = "\"cache_hit\": true";
      const std::size_t at = line.find(from);
      if (at != std::string::npos) {
        line.replace(at, from.size(), "\"cache_hit\": false");
      }
      lines.push_back(line);
    }
    return lines;
  };
  const std::vector<std::string> cold_lines = normalize(cold_text);
  const std::vector<std::string> warm_lines = normalize(warm_text);
  ASSERT_EQ(cold_lines.size(), 2u);
  ASSERT_EQ(warm_lines.size(), 2u);
  for (std::size_t i = 0; i < cold_lines.size(); ++i) {
    EXPECT_EQ(cold_lines[i], warm_lines[i]) << "warm line " << i
                                            << " is not bit-identical";
  }
}

}  // namespace
}  // namespace mot3d::sim
