// Fault subsystem: deterministic schedules, the graceful-degradation
// policy, full-cluster differentials under injected faults (both
// schedulers must agree bit-for-bit), structured unrecoverable outcomes,
// and the watchdog's no-progress detector fed by a directed coherence
// wedge (a dropped invalidation whose ack never returns).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/watchdog.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::fault {
namespace {

// ---- fault schedule determinism --------------------------------------------

FaultConfig rate_config(double tsv, double bank, std::uint64_t seed) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.tsv_fault_rate = tsv;
  cfg.bank_fault_rate = bank;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultSchedule, SameSeedSameTraceEveryConstruction) {
  const FaultConfig cfg = rate_config(2.0, 1.0, 99);
  const FaultSchedule a(cfg, /*mot=*/true, 32, 0);
  const FaultSchedule b(cfg, /*mot=*/true, 32, 0);
  EXPECT_EQ(a.events(), b.events());

  // Rates are expected events per 10k cycles over the 20k-cycle horizon.
  ASSERT_EQ(a.events().size(), 6u);  // 4 degrades + 2 hard faults
  Cycle prev = 0;
  for (const FaultEvent& ev : a.events()) {
    EXPECT_GE(ev.cycle, prev);  // sorted
    EXPECT_GE(ev.cycle, 1u);
    EXPECT_LE(ev.cycle, cfg.horizon_cycles);
    EXPECT_LT(ev.target, 32u);
    prev = ev.cycle;
  }
}

TEST(FaultSchedule, DifferentSeedDifferentTrace) {
  const FaultSchedule a(rate_config(2.0, 1.0, 1), true, 32, 0);
  const FaultSchedule b(rate_config(2.0, 1.0, 2), true, 32, 0);
  EXPECT_NE(a.events(), b.events());
}

TEST(FaultSchedule, FabricSelectsFaultFlavours) {
  // MoT draws TSV degrades and alternates hard faults between a dead TSV
  // column and a dead bank array.
  const FaultSchedule mot(rate_config(2.0, 1.0, 7), true, 32, 0);
  for (const FaultEvent& ev : mot.events()) {
    EXPECT_TRUE(ev.kind == FaultKind::kTsvDegrade ||
                ev.kind == FaultKind::kTsvFail || ev.kind == FaultKind::kBankFail)
        << fault_kind_name(ev.kind);
  }
  // A packet fabric with routers degrades links instead.
  const FaultSchedule mesh(rate_config(2.0, 0.0, 7), false, 32, 48);
  ASSERT_EQ(mesh.events().size(), 4u);
  for (const FaultEvent& ev : mesh.events()) {
    EXPECT_EQ(ev.kind, FaultKind::kLinkDegrade);
    EXPECT_LT(ev.target, 48u);
  }
}

TEST(FaultSchedule, ZeroRatesNoEventsAndExplicitEventsPassThrough) {
  FaultConfig cfg = rate_config(0.0, 0.0, 5);
  EXPECT_TRUE(FaultSchedule(cfg, true, 32, 0).events().empty());

  cfg.events = {{500, FaultKind::kDropInvalidate, 0, 2},
                {100, FaultKind::kTsvDegrade, 3, 0}};
  const FaultSchedule sched(cfg, true, 32, 0);
  ASSERT_EQ(sched.events().size(), 2u);  // explicit events, sorted by cycle
  EXPECT_EQ(sched.events()[0].cycle, 100u);
  EXPECT_EQ(sched.events()[1].kind, FaultKind::kDropInvalidate);
}

// ---- degradation policy ----------------------------------------------------

TEST(DegradationManager, GateTargetCentreFoldsUntilFaultExcluded) {
  const DegradationManager mot(/*mot=*/true, /*min_banks=*/8);
  // Bank 0 sits outside the 16-bank centre group (8..23): one halving.
  auto t = mot.gate_target(core::PowerState::full(), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->name(), "PC16-MB16");
  EXPECT_EQ(t->active_banks(), 16u);
  EXPECT_FALSE(t->bank_active(0));

  // Bank 8 survives MB16 but not MB8 (12..19): halve again from there.
  t = mot.gate_target(*t, 8);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->name(), "PC16-MB8");
  EXPECT_FALSE(t->bank_active(8));

  // Bank 15 lives inside the minimum centre group: nothing excludes it.
  EXPECT_FALSE(mot.gate_target(core::PowerState::full(), 15).has_value());
  EXPECT_FALSE(mot.gate_target(core::PowerState::pc16_mb8(), 15).has_value());
}

TEST(DegradationManager, ReactMapsEveryFaultKind) {
  const DegradationManager mot(true, 8);
  const core::PowerState full = core::PowerState::full();

  DegradeAction act = mot.react({100, FaultKind::kTsvDegrade, 5, 0}, full, 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kDegradeMotBank);
  EXPECT_EQ(act.penalty_cycles, 2u);  // zero magnitude -> configured default
  act = mot.react({100, FaultKind::kTsvDegrade, 5, 9}, full, 2);
  EXPECT_EQ(act.penalty_cycles, 9u);

  act = mot.react({200, FaultKind::kBankFail, 0, 0}, full, 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kGateBanks);
  ASSERT_TRUE(act.target.has_value());
  EXPECT_EQ(act.target->name(), "PC16-MB16");

  // An already-gated bank hard-faulting is benign.
  act = mot.react({200, FaultKind::kBankFail, 0, 0}, core::PowerState::pc16_mb8(), 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kNone);

  // Inside the minimum centre group there is no gating escape.
  act = mot.react({200, FaultKind::kTsvFail, 15, 0}, full, 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kUnrecoverable);
  EXPECT_NE(act.note.find("minimum centre group"), std::string::npos);

  // Packet fabrics have no reconfiguration path at all.
  const DegradationManager mesh(false, 8);
  act = mesh.react({200, FaultKind::kBankFail, 0, 0}, full, 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kUnrecoverable);
  EXPECT_NE(act.note.find("no reconfiguration path"), std::string::npos);
  act = mesh.react({200, FaultKind::kRouterFail, 3, 0}, full, 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kUnrecoverable);
  act = mesh.react({300, FaultKind::kLinkDegrade, 3, 0}, full, 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kThrottleRouter);
}

// ---- watchdog unit behaviour -----------------------------------------------

TEST(Watchdog, StallVerdictAfterConsecutiveFrozenChecks) {
  WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.check_interval_cycles = 100;
  cfg.stall_checks = 3;
  Watchdog w(cfg);
  EXPECT_EQ(w.next_check_cycle(), 100u);

  EXPECT_EQ(w.poll(99, 5), WatchdogVerdict::kOk);    // before the boundary
  EXPECT_EQ(w.poll(100, 5), WatchdogVerdict::kOk);   // records the baseline
  EXPECT_EQ(w.next_check_cycle(), 200u);
  EXPECT_EQ(w.poll(200, 5), WatchdogVerdict::kOk);   // frozen x1
  EXPECT_EQ(w.poll(300, 5), WatchdogVerdict::kOk);   // frozen x2
  EXPECT_EQ(w.poll(400, 5), WatchdogVerdict::kStalled);

  // Any forward progress resets the stall counter.
  Watchdog w2(cfg);
  EXPECT_EQ(w2.poll(100, 5), WatchdogVerdict::kOk);
  EXPECT_EQ(w2.poll(200, 5), WatchdogVerdict::kOk);
  EXPECT_EQ(w2.poll(300, 6), WatchdogVerdict::kOk);  // progress
  EXPECT_EQ(w2.poll(400, 6), WatchdogVerdict::kOk);
  EXPECT_EQ(w2.poll(500, 6), WatchdogVerdict::kOk);
  EXPECT_EQ(w2.poll(600, 6), WatchdogVerdict::kStalled);
}

TEST(Watchdog, TinyWallDeadlineFiresAtFirstBoundary) {
  WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.wall_deadline_seconds = 1e-9;
  cfg.deadline_check_interval_cycles = 16;
  Watchdog w(cfg);
  EXPECT_EQ(w.next_check_cycle(), 16u);
  EXPECT_EQ(w.poll(16, 1), WatchdogVerdict::kDeadlineExceeded);
}

// ---- full-cluster integration ----------------------------------------------

cluster::ClusterConfig paper_cfg(const char* app, cluster::Fabric fabric,
                                 double scale = 0.02) {
  return cluster::make_paper_config(workload::profile_by_name(app), fabric,
                                    core::PowerState::full(),
                                    mem::DramPreset::kDdr3_200ns, scale, 42);
}

void expect_same_run(const cluster::SimResult& a, const cluster::SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l2.misses, b.l2.misses);
  EXPECT_EQ(a.dram.reads, b.dram.reads);
  EXPECT_EQ(a.dram.writes, b.dram.writes);
  EXPECT_DOUBLE_EQ(a.energy.edp_energy_pj(), b.energy.edp_energy_pj());
  EXPECT_EQ(a.fault.enabled, b.fault.enabled);
  EXPECT_EQ(a.fault.outcome, b.fault.outcome);
  EXPECT_EQ(a.fault.injected, b.fault.injected);
  EXPECT_EQ(a.fault.recovered, b.fault.recovered);
  EXPECT_EQ(a.fault.unrecoverable, b.fault.unrecoverable);
  EXPECT_EQ(a.fault.bank_gate_events, b.fault.bank_gate_events);
  EXPECT_EQ(a.fault.degraded_cycles, b.fault.degraded_cycles);
  EXPECT_DOUBLE_EQ(a.fault.repair_energy_pj, b.fault.repair_energy_pj);
  EXPECT_EQ(a.fault.fail_reason, b.fault.fail_reason);
}

TEST(FaultCluster, SchedulersAgreeBitForBitUnderSeededFaults) {
  const FaultEnvelope env{true, 1.0, 0.5, 101};
  for (cluster::Fabric fabric :
       {cluster::Fabric::kMot, cluster::Fabric::kTrueMesh3d}) {
    cluster::ClusterConfig cfg = paper_cfg("fft", fabric);
    cfg.fault = FaultConfig::from_envelope(env);

    cfg.scheduler = cluster::SchedulerMode::kEventDriven;
    const cluster::SimResult event = cluster::Cluster(cfg).run();
    cfg.scheduler = cluster::SchedulerMode::kDenseTick;
    const cluster::SimResult dense = cluster::Cluster(cfg).run();

    EXPECT_TRUE(event.fault.enabled);
    expect_same_run(event, dense);
  }
}

TEST(FaultCluster, EmptyScheduleIsByteIdenticalToFaultFreeRun) {
  // Enabling the subsystem with nothing to inject must not perturb the
  // model: the watchdog and the fault poll only split event-horizon skips.
  cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
  const cluster::SimResult off = cluster::Cluster(cfg).run();
  cfg.fault.enabled = true;  // zero rates, no explicit events
  const cluster::SimResult on = cluster::Cluster(cfg).run();
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.instructions, on.instructions);
  EXPECT_EQ(off.l2.hits, on.l2.hits);
  EXPECT_EQ(off.dram.reads, on.dram.reads);
  EXPECT_DOUBLE_EQ(off.energy.edp_energy_pj(), on.energy.edp_energy_pj());
  EXPECT_FALSE(off.fault.enabled);
  EXPECT_TRUE(on.fault.enabled);
  EXPECT_EQ(on.fault.outcome, "ok");
  EXPECT_EQ(on.fault.injected, 0u);
}

TEST(FaultCluster, MotGatesAroundHardBankFault) {
  cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
  cfg.fault.enabled = true;
  cfg.fault.events = {{200, FaultKind::kBankFail, 0, 0}};
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  EXPECT_EQ(r.fault.outcome, "degraded");
  EXPECT_EQ(r.fault.injected, 1u);
  EXPECT_EQ(r.fault.recovered, 1u);
  EXPECT_EQ(r.fault.bank_gate_events, 1u);
  EXPECT_EQ(r.fault.unrecoverable, 0u);
  EXPECT_GT(r.fault.degraded_cycles, 0u);
  EXPECT_GT(r.fault.repair_energy_pj, 0.0);
  EXPECT_GT(r.instructions, 0u);  // the run completed on the folded tree
}

TEST(FaultCluster, TsvDegradeIsAbsorbedWithRetryEnergy) {
  cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
  cfg.fault.enabled = true;
  cfg.fault.events = {{100, FaultKind::kTsvDegrade, 0, 0}};
  const cluster::SimResult degraded = cluster::Cluster(cfg).run();
  EXPECT_EQ(degraded.fault.outcome, "degraded");
  EXPECT_EQ(degraded.fault.recovered, 1u);
  EXPECT_EQ(degraded.fault.bank_gate_events, 0u);
  EXPECT_GT(degraded.fault.repair_energy_pj, 0.0);

  // The marginal via costs latency: the degraded run is never faster.
  cfg.fault.events.clear();
  const cluster::SimResult clean = cluster::Cluster(cfg).run();
  EXPECT_GE(degraded.cycles, clean.cycles);
}

TEST(FaultCluster, CentreGroupFaultEndsWithStructuredFailure) {
  // Bank 15 sits inside the MB8 minimum centre group: no fold excludes it,
  // so even the MoT must end the run early with a structured outcome.
  for (cluster::SchedulerMode mode : {cluster::SchedulerMode::kEventDriven,
                                      cluster::SchedulerMode::kDenseTick}) {
    cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
    cfg.scheduler = mode;
    cfg.fault.enabled = true;
    cfg.fault.events = {{300, FaultKind::kBankFail, 15, 0}};
    const cluster::SimResult r = cluster::Cluster(cfg).run();
    EXPECT_EQ(r.fault.outcome, "failed");
    EXPECT_EQ(r.fault.unrecoverable, 1u);
    EXPECT_NE(r.fault.fail_reason.find("minimum centre group"), std::string::npos)
        << r.fault.fail_reason;
    EXPECT_LE(r.cycles, 301u);  // ended at the fault, not at app completion
  }
}

TEST(FaultCluster, PacketMeshFailsStructuredOnHardFault) {
  cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kTrueMesh3d);
  cfg.fault.enabled = true;
  cfg.fault.events = {{300, FaultKind::kBankFail, 4, 0}};
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  EXPECT_EQ(r.fault.outcome, "failed");
  EXPECT_NE(r.fault.fail_reason.find("no reconfiguration path"), std::string::npos)
      << r.fault.fail_reason;
}

// ---- stacked-DRAM vault faults ---------------------------------------------

TEST(DegradationManager, VaultFaultNeedsAStackedBackend) {
  // Constant-latency backend (num_vaults == 0): nothing to remap onto.
  const DegradationManager flat(true, 8, 0);
  DegradeAction act =
      flat.react({100, FaultKind::kVaultFail, 3, 0}, core::PowerState::full(), 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kUnrecoverable);
  EXPECT_NE(act.note.find("no stacked-DRAM backend"), std::string::npos);

  // Stacked backend present: route to the vault remap machinery.
  const DegradationManager stacked(true, 8, 8);
  act = stacked.react({100, FaultKind::kVaultFail, 3, 0},
                      core::PowerState::full(), 2);
  EXPECT_EQ(act.kind, DegradeActionKind::kFailVault);
  EXPECT_EQ(act.unit, 3u);
}

TEST(FaultCluster, VaultFaultRemapsOntoSurvivorsAndDegrades) {
  for (cluster::SchedulerMode mode : {cluster::SchedulerMode::kEventDriven,
                                      cluster::SchedulerMode::kDenseTick}) {
    cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
    cfg.scheduler = mode;
    cfg.stacked_dram = true;
    cfg.fault.enabled = true;
    cfg.fault.events = {{500, FaultKind::kVaultFail, 2, 0}};
    const cluster::SimResult r = cluster::Cluster(cfg).run();
    EXPECT_EQ(r.fault.outcome, "degraded");
    EXPECT_EQ(r.fault.injected, 1u);
    EXPECT_EQ(r.fault.recovered, 1u);
    EXPECT_EQ(r.fault.unrecoverable, 0u);
    EXPECT_GT(r.fault.repair_energy_pj, 0.0);
    EXPECT_TRUE(r.dram3d.enabled);
    EXPECT_EQ(r.dram3d.vault_faults, 1u);
    EXPECT_EQ(r.dram3d.alive_vaults, r.dram3d.vaults - 1);
    EXPECT_GT(r.instructions, 0u);  // the run completed on surviving vaults
  }
}

TEST(FaultCluster, VaultFaultOnConstantBackendFailsStructured) {
  cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
  cfg.fault.enabled = true;
  cfg.fault.events = {{500, FaultKind::kVaultFail, 2, 0}};
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  EXPECT_EQ(r.fault.outcome, "failed");
  EXPECT_EQ(r.fault.unrecoverable, 1u);
  EXPECT_NE(r.fault.fail_reason.find("no stacked-DRAM backend"),
            std::string::npos)
      << r.fault.fail_reason;
  EXPECT_LE(r.cycles, 501u);  // ended at the fault, not at app completion
}

TEST(FaultCluster, LastAliveVaultFaultFailsStructured) {
  cluster::ClusterConfig cfg = paper_cfg("fft", cluster::Fabric::kMot);
  cfg.stacked_dram = true;
  cfg.dram3d.num_vaults = 2;
  cfg.fault.enabled = true;
  cfg.fault.events = {{300, FaultKind::kVaultFail, 0, 0},
                      {600, FaultKind::kVaultFail, 1, 0}};
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  // The first fault remaps onto the survivor; the second has no target.
  EXPECT_EQ(r.fault.outcome, "failed");
  EXPECT_EQ(r.fault.recovered, 1u);
  EXPECT_EQ(r.fault.unrecoverable, 1u);
  EXPECT_NE(r.fault.fail_reason.find("last alive vault"), std::string::npos)
      << r.fault.fail_reason;
  EXPECT_EQ(r.dram3d.alive_vaults, 1u);
}

// ---- the directed no-progress wedge ----------------------------------------

TEST(FaultCluster, WatchdogCatchesNeverAckedInvalidationWedge) {
  // Swallow one coherence invalidation mid-run: its ack never returns, the
  // directory transaction parks its bank forever, and the sharers hit the
  // barrier and stop retiring.  The progress signature freezes and the
  // watchdog must convert the hang into a diagnosable WatchdogError whose
  // message carries the parked-state dump — under BOTH schedulers.
  for (cluster::SchedulerMode mode : {cluster::SchedulerMode::kEventDriven,
                                      cluster::SchedulerMode::kDenseTick}) {
    cluster::ClusterConfig cfg =
        paper_cfg("producer_consumer", cluster::Fabric::kMot, 0.05);
    cfg.scheduler = mode;
    cfg.fault.enabled = true;
    cfg.fault.events = {{500, FaultKind::kDropInvalidate, 0, 1}};
    cfg.watchdog.check_interval_cycles = 2'000;
    cfg.watchdog.stall_checks = 2;
    try {
      cluster::Cluster(cfg).run();
      FAIL() << "expected the watchdog to fire under "
             << cluster::scheduler_name(mode);
    } catch (const WatchdogError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("no forward progress"), std::string::npos) << what;
      EXPECT_NE(what.find("parked state at cycle"), std::string::npos) << what;
      EXPECT_NE(what.find("core 0"), std::string::npos) << what;
      // Fault-injected runs engage the flight-recorder ring automatically:
      // the dump must carry the last pre-wedge trace events for triage.
      EXPECT_NE(what.find("-- flight recorder (last"), std::string::npos)
          << what;
    }
  }
}

}  // namespace
}  // namespace mot3d::fault
