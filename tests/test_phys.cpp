// Unit tests for the physical models: Elmore wire delay with repeater
// insertion, the TSV/micro-bump model, and the cluster floorplan geometry
// (Fig. 5's wire-length asymmetry).
#include <gtest/gtest.h>

#include "phys/geometry.hpp"
#include "phys/technology.hpp"
#include "phys/tsv.hpp"
#include "phys/wire.hpp"

namespace mot3d::phys {
namespace {

class WireTest : public ::testing::Test {
 protected:
  TechnologyParams tech = default_technology();
  WireModel wire{tech};
};

TEST_F(WireTest, ZeroLengthIsFree) {
  EXPECT_DOUBLE_EQ(wire.unrepeated_delay_ns(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wire.repeated_delay_ns(0.0), 0.0);
  EXPECT_EQ(wire.repeater_count(0.0), 0u);
  EXPECT_DOUBLE_EQ(wire.switch_energy_fj_per_bit(0.0), 0.0);
}

TEST_F(WireTest, UnrepeatedDelayIsQuadratic) {
  const double d1 = wire.unrepeated_delay_ns(1.0);
  const double d2 = wire.unrepeated_delay_ns(2.0);
  const double d4 = wire.unrepeated_delay_ns(4.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
  EXPECT_NEAR(d4 / d1, 16.0, 1e-9);
}

TEST_F(WireTest, RepeatedDelayIsLinearBeyondSpacing) {
  // With repeaters every 1 mm, doubling a long wire doubles the delay.
  const double d4 = wire.repeated_delay_ns(4.0);
  const double d8 = wire.repeated_delay_ns(8.0);
  EXPECT_NEAR(d8 / d4, 2.0, 1e-9);
}

TEST_F(WireTest, RepeatedBeatsUnrepeatedForLongWires) {
  EXPECT_LT(wire.repeated_delay_ns(5.0), wire.unrepeated_delay_ns(5.0));
}

TEST_F(WireTest, ShortWireHasNoRepeaters) {
  EXPECT_EQ(wire.repeater_count(0.5), 0u);
  EXPECT_EQ(wire.repeater_count(1.0), 0u);  // boundary: driver only
  EXPECT_EQ(wire.repeater_count(1.5), 1u);
  EXPECT_EQ(wire.repeater_count(2.0), 1u);
  EXPECT_EQ(wire.repeater_count(3.5), 3u);
}

TEST_F(WireTest, SegmentDelayCalibration) {
  // 1 mm of the calibrated channel wire: ~0.445 ns (see DESIGN.md).
  EXPECT_NEAR(wire.segment_delay_ns(1.0), 0.445, 0.01);
}

TEST_F(WireTest, OptimalSpacingIsPositiveAndFinite) {
  const double s = wire.optimal_spacing_mm();
  EXPECT_GT(s, 0.01);
  EXPECT_LT(s, 10.0);
}

TEST_F(WireTest, EnergyScalesWithLengthAndVdd) {
  const double e1 = wire.switch_energy_fj_per_bit(1.0);
  const double e2 = wire.switch_energy_fj_per_bit(2.0);
  EXPECT_GT(e2, 1.9 * e1);  // capacitance is ~linear in length

  TechnologyParams hot = tech;
  hot.vdd_v = 1.2;
  WireModel hot_wire(hot);
  EXPECT_NEAR(hot_wire.switch_energy_fj_per_bit(1.0) / e1, 1.44, 0.01);
}

TEST_F(WireTest, LeakageCountsRepeaters) {
  EXPECT_DOUBLE_EQ(wire.leakage_uw_per_bit(0.5), 0.0);
  EXPECT_NEAR(wire.leakage_uw_per_bit(2.0), tech.repeater_leak_uw, 1e-9);
}

class TsvTest : public ::testing::Test {
 protected:
  TechnologyParams tech = default_technology();
  TsvModel tsv{tech};
};

TEST_F(TsvTest, TsvIsElectricallyShort) {
  // Vertical hops are tens of picoseconds — the premise of 3-D stacking.
  EXPECT_LT(tsv.tsv_delay_ns(), 0.05);
  EXPECT_GT(tsv.tsv_delay_ns(), 0.0);
}

TEST_F(TsvTest, StackDelayScalesWithTiers) {
  EXPECT_NEAR(tsv.stack_delay_ns(2), 2.0 * tsv.tsv_delay_ns(), 1e-12);
}

TEST_F(TsvTest, BusLengthFromBumpPitch) {
  // 100 signals in 2 rows at 40 µm pitch: 50 bumps * 0.04 mm = 2 mm.
  EXPECT_NEAR(tsv.bus_length_mm(100, 2), 2.0, 1e-9);
  EXPECT_NEAR(tsv.bus_length_mm(100, 0), 4.0, 1e-9);  // rows clamped to 1
}

class GeometryTest : public ::testing::Test {
 protected:
  TechnologyParams tech = default_technology();
  FloorplanParams fp;
  ClusterGeometry geo{fp, tech};
};

TEST_F(GeometryTest, SpansScaleWithActiveCount) {
  EXPECT_NEAR(geo.bank_field_span_mm(32), 4.0, 1e-9);
  EXPECT_NEAR(geo.bank_field_span_mm(8), 1.0, 1e-9);
  EXPECT_NEAR(geo.core_field_span_mm(16), 4.0, 1e-9);
  EXPECT_NEAR(geo.core_field_span_mm(4), 1.0, 1e-9);
}

TEST_F(GeometryTest, TreeLevelsHalve) {
  EXPECT_NEAR(ClusterGeometry::tree_level_length_mm(4.0, 0), 2.0, 1e-12);
  EXPECT_NEAR(ClusterGeometry::tree_level_length_mm(4.0, 1), 1.0, 1e-12);
  EXPECT_NEAR(ClusterGeometry::tree_level_length_mm(4.0, 4), 0.125, 1e-12);
}

TEST_F(GeometryTest, RoutingTreeLevelCount) {
  EXPECT_EQ(geo.routing_tree_levels_mm(32).size(), 5u);
  EXPECT_EQ(geo.routing_tree_levels_mm(8).size(), 3u);
  EXPECT_EQ(geo.arbitration_tree_levels_mm(16).size(), 4u);
}

TEST_F(GeometryTest, GatingShortensWorstCaseWire) {
  // Fig. 5: the gated state's longest link is much shorter.
  const double full = geo.longest_link_mm(16, 32);
  const double gated = geo.longest_link_mm(4, 8);
  EXPECT_GT(full, 3.0 * gated * 0.9);
  EXPECT_GT(full, gated);
}

TEST_F(GeometryTest, PathLengthsShrinkWithGating) {
  EXPECT_GT(geo.request_path_mm(16, 32), geo.request_path_mm(16, 8));
  EXPECT_GT(geo.request_path_mm(16, 32), geo.request_path_mm(4, 32));
  EXPECT_GT(geo.request_path_mm(4, 32), geo.request_path_mm(4, 8));
}

TEST_F(GeometryTest, RequestAndResponsePathsMirror) {
  EXPECT_NEAR(geo.request_path_mm(16, 32), geo.response_path_mm(16, 32), 1e-9);
}

TEST_F(GeometryTest, TotalNetworkWireShrinksWithGating) {
  const double full = geo.total_network_wire_mm(16, 32);
  const double gated = geo.total_network_wire_mm(4, 8);
  EXPECT_GT(full, 10.0 * gated);
  EXPECT_GT(full, 1000.0);  // ~1.7 m of bit-wire channel in the full cluster
}

TEST_F(GeometryTest, VerticalDistanceTiny) {
  EXPECT_NEAR(geo.vertical_mm(2), 0.08, 1e-9);
}

}  // namespace
}  // namespace mot3d::phys
