// Unit tests for the packet-switched baselines: reachability on all three
// topologies, zero-load latency ordering, wormhole integrity, bus
// round-robin sharing, back-pressure, and energy/stat accounting.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "noc/noc_interconnect.hpp"

namespace mot3d::noc {
namespace {

power::InterconnectPowerModel power_model() {
  return power::InterconnectPowerModel(phys::WireModel(phys::default_technology()));
}

class NocTest : public ::testing::TestWithParam<NocTopology> {
 protected:
  NocConfig cfg;
  std::vector<std::pair<MemRequest, Cycle>> requests;
  std::vector<std::pair<MemResponse, Cycle>> responses;

  std::unique_ptr<NocInterconnect> make() {
    auto icn = make_noc(GetParam(), cfg, power_model());
    icn->set_request_sink(
        [this](const MemRequest& r, Cycle t) { requests.emplace_back(r, t); });
    icn->set_response_sink(
        [this](const MemResponse& r, Cycle t) { responses.emplace_back(r, t); });
    return icn;
  }

  static MemRequest req(CoreId c, BankId b, bool write = false,
                        std::uint64_t id = 1) {
    return MemRequest{.id = id, .core = c, .bank = b, .addr = 0,
                      .is_write = write, .issue_cycle = 0};
  }
};

TEST_P(NocTest, EveryCoreReachesEveryBank) {
  auto icn = make();
  std::uint64_t id = 1;
  Cycle t = 0;  // monotonic: bus pacing state is in absolute time
  for (CoreId c = 0; c < 16; ++c) {
    for (BankId b = 0; b < 32; ++b) {
      requests.clear();
      ASSERT_TRUE(icn->try_inject_request(req(c, b, false, id++), t));
      const Cycle deadline = t + 500;
      for (; t < deadline && requests.empty(); ++t) icn->tick(t);
      ASSERT_EQ(requests.size(), 1u) << "core " << c << " bank " << b;
      EXPECT_EQ(requests[0].first.bank, b);
      EXPECT_EQ(requests[0].first.core, c);
    }
  }
}

TEST_P(NocTest, EveryBankReachesEveryCore) {
  auto icn = make();
  std::uint64_t id = 1;
  Cycle t = 0;
  for (BankId b = 0; b < 32; b += 5) {
    for (CoreId c = 0; c < 16; c += 3) {
      responses.clear();
      MemResponse resp{.id = id++, .core = c, .bank = b, .addr = 0,
                       .is_write = false, .l2_hit = true, .issue_cycle = t};
      ASSERT_TRUE(icn->try_inject_response(resp, t));
      const Cycle deadline = t + 500;
      for (; t < deadline && responses.empty(); ++t) icn->tick(t);
      ASSERT_EQ(responses.size(), 1u) << "bank " << b << " core " << c;
      EXPECT_EQ(responses[0].first.core, c);
    }
  }
}

TEST_P(NocTest, WritePacketsCarryTheLine) {
  // A write-back is 1 + line_flits flits: its serialisation must make it
  // slower than a 1-flit read request over the same path.
  auto icn = make();
  ASSERT_TRUE(icn->try_inject_request(req(0, 31, false, 1), 0));
  for (Cycle t = 0; t < 500 && requests.empty(); ++t) icn->tick(t);
  ASSERT_EQ(requests.size(), 1u);
  const Cycle read_lat = requests[0].second;

  requests.clear();
  auto icn2 = make();
  ASSERT_TRUE(icn2->try_inject_request(req(0, 31, true, 2), 0));
  for (Cycle t = 0; t < 500 && requests.empty(); ++t) icn2->tick(t);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_GE(requests[0].second, read_lat + cfg.line_flits());
}

TEST_P(NocTest, ManyOutstandingAllComplete) {
  // 16 cores each fire at 8 different banks in sequence — conservation.
  auto icn = make();
  std::uint64_t id = 1;
  std::size_t injected = 0;
  for (int round = 0; round < 8; ++round) {
    for (CoreId c = 0; c < 16; ++c) {
      const BankId b = static_cast<BankId>((c * 7 + round * 5) % 32);
      if (icn->try_inject_request(req(c, b, (round % 2) == 0, id++), 0)) {
        ++injected;
      }
    }
  }
  for (Cycle t = 0; t < 5000 && !icn->idle(); ++t) icn->tick(t);
  EXPECT_TRUE(icn->idle());
  EXPECT_EQ(requests.size(), injected);
}

TEST_P(NocTest, EnergyAndStatsAccumulate) {
  auto icn = make();
  icn->try_inject_request(req(0, 31), 0);
  for (Cycle t = 0; t < 500 && !icn->idle(); ++t) icn->tick(t);
  EXPECT_GT(icn->dynamic_energy_pj(), 0.0);
  EXPECT_GT(icn->leakage_mw(), 0.0);
  EXPECT_EQ(icn->stats().requests_injected, 1u);
  EXPECT_EQ(icn->stats().requests_delivered, 1u);
  EXPECT_GT(icn->network().transport_stats().flit_router_traversals, 0u);
}

INSTANTIATE_TEST_SUITE_P(Topologies, NocTest,
                         ::testing::Values(NocTopology::kTrueMesh3d,
                                           NocTopology::kHybridBusMesh,
                                           NocTopology::kHybridBusTree),
                         [](const auto& info) {
                           switch (info.param) {
                             case NocTopology::kTrueMesh3d: return "TrueMesh3d";
                             case NocTopology::kHybridBusMesh: return "BusMesh";
                             case NocTopology::kHybridBusTree: return "BusTree";
                           }
                           return "unknown";
                         });

class NocStressTest : public ::testing::TestWithParam<NocTopology> {};

TEST_P(NocStressTest, BidirectionalHeavyTrafficDrains) {
  // Protocol-deadlock regression: saturate the fabric with multi-flit
  // request worms (write-backs) in one direction while every bank pumps
  // multi-flit response worms the other way.  Without per-class virtual
  // networks this wedges (a response worm holding a TSV bus waits on a
  // mesh link held by a request worm that waits on that bus).
  NocConfig cfg;
  auto icn = make_noc(GetParam(), cfg, power_model());
  std::size_t req_seen = 0, resp_seen = 0;
  icn->set_request_sink([&](const MemRequest&, Cycle) { ++req_seen; });
  icn->set_response_sink([&](const MemResponse&, Cycle) { ++resp_seen; });

  std::uint64_t id = 1;
  std::size_t req_in = 0, resp_in = 0;
  Cycle t = 0;
  for (int round = 0; round < 40; ++round) {
    for (CoreId c = 0; c < 16; ++c) {
      MemRequest r{.id = id++, .core = c,
                   .bank = static_cast<BankId>((c * 3 + round) % 32), .addr = 0,
                   .is_write = true, .issue_cycle = t};
      if (icn->try_inject_request(r, t)) ++req_in;
    }
    for (BankId b = 0; b < 32; ++b) {
      MemResponse resp{.id = id++, .core = static_cast<CoreId>((b + round) % 16),
                       .bank = b, .addr = 0, .is_write = false, .l2_hit = true,
                       .issue_cycle = t};
      if (icn->try_inject_response(resp, t)) ++resp_in;
    }
    for (int i = 0; i < 8; ++i) icn->tick(t++);
  }
  for (; t < 300000 && !icn->idle(); ++t) icn->tick(t);
  EXPECT_TRUE(icn->idle()) << "fabric wedged: " << req_seen << "/" << req_in
                           << " requests, " << resp_seen << "/" << resp_in
                           << " responses delivered";
  EXPECT_EQ(req_seen, req_in);
  EXPECT_EQ(resp_seen, resp_in);
}

INSTANTIATE_TEST_SUITE_P(Topologies, NocStressTest,
                         ::testing::Values(NocTopology::kTrueMesh3d,
                                           NocTopology::kHybridBusMesh,
                                           NocTopology::kHybridBusTree),
                         [](const auto& info) {
                           switch (info.param) {
                             case NocTopology::kTrueMesh3d: return "TrueMesh3d";
                             case NocTopology::kHybridBusMesh: return "BusMesh";
                             case NocTopology::kHybridBusTree: return "BusTree";
                           }
                           return "unknown";
                         });

TEST(NocOrdering, BusMeshBeatsTrueMeshAtZeroLoad) {
  // The hybrid's single bus hop replaces two mesh hops vertically (ref [2]).
  NocConfig cfg;
  const auto pm = power_model();
  Cycle mesh_lat = 0, busmesh_lat = 0;
  for (int which = 0; which < 2; ++which) {
    auto icn = make_noc(which == 0 ? NocTopology::kTrueMesh3d
                                   : NocTopology::kHybridBusMesh,
                        cfg, pm);
    Cycle got = 0;
    icn->set_request_sink([&](const MemRequest&, Cycle t) { got = t; });
    // Core 0 (corner) to bank 31 (opposite corner, top tier): worst case.
    MemRequest r{.id = 1, .core = 0, .bank = 31, .addr = 0, .is_write = false,
                 .issue_cycle = 0};
    icn->try_inject_request(r, 0);
    for (Cycle t = 0; t < 500 && got == 0; ++t) icn->tick(t);
    (which == 0 ? mesh_lat : busmesh_lat) = got;
  }
  EXPECT_GT(mesh_lat, 0u);
  EXPECT_GT(busmesh_lat, 0u);
  EXPECT_LT(busmesh_lat, mesh_lat);
}

TEST(NocOrdering, BusTreeSaturatesUnderLoad) {
  // Hammer all banks behind one quadrant bus: the Bus-Tree must show far
  // worse aggregate completion time than Bus-Mesh (the paper's Fig. 6
  // explanation: "increased vertical bus accesses ... offset the benefit").
  NocConfig cfg;
  const auto pm = power_model();
  auto run = [&](NocTopology topo) {
    auto icn = make_noc(topo, cfg, pm);
    std::size_t delivered = 0;
    icn->set_response_sink([&](const MemResponse&, Cycle) { ++delivered; });
    std::uint64_t id = 1;
    // Uniform response traffic: every bank answers 8 cores.  The Bus-Mesh
    // spreads this over 16 pillar buses (2 banks each); the Bus-Tree
    // funnels 8 banks through each of its 4 buses.
    for (int round = 0; round < 8; ++round) {
      for (BankId b = 0; b < 32; ++b) {
        MemResponse resp{.id = id++,
                         .core = static_cast<CoreId>((b + round) % 16),
                         .bank = b, .addr = 0, .is_write = false,
                         .l2_hit = true, .issue_cycle = 0};
        icn->try_inject_response(resp, 0);
      }
    }
    Cycle t = 0;
    for (; t < 50000 && !icn->idle(); ++t) icn->tick(t);
    EXPECT_EQ(delivered, 256u);
    return t;
  };
  const Cycle tree_time = run(NocTopology::kHybridBusTree);
  const Cycle mesh_time = run(NocTopology::kHybridBusMesh);
  EXPECT_GT(tree_time, mesh_time * 3 / 2);
}

}  // namespace
}  // namespace mot3d::noc
