// Coherence subsystem tests: the directory-MESI state machine in
// isolation, the end-to-end invalidation traffic of the sharing-pattern
// workloads, the zero-traffic guarantee for private-only streams, and the
// directory-vs-bank-gating migration protocol.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "coherence/directory.hpp"
#include "core/reconfig.hpp"

namespace mot3d {
namespace {

using coherence::CoherenceConfig;
using coherence::CoherenceDirectory;
using coherence::DirOutcome;

MemRequest req(CoreId core, Addr line, ReqKind kind) {
  return MemRequest{.id = 0,
                    .core = core,
                    .bank = static_cast<BankId>((line >> 5) & 31),
                    .addr = line,
                    .is_write = kind == ReqKind::kWriteback,
                    .issue_cycle = 0,
                    .kind = kind};
}

CoherenceConfig small_dir_cfg() {
  CoherenceConfig cc;
  cc.total_cores = 4;
  cc.total_banks = 8;
  cc.line_bytes = 32;
  return cc;
}

// ---- directory state machine ----------------------------------------------

TEST(CoherenceDirectory, FirstReaderGetsExclusiveSilently) {
  CoherenceDirectory dir(small_dir_cfg());
  const DirOutcome out = dir.on_request(req(0, 0x1000, ReqKind::kGetS), 0);
  EXPECT_TRUE(out.invalidate.empty());
  EXPECT_FALSE(out.install_shared);
  EXPECT_FALSE(out.upgrade_ack);
  EXPECT_EQ(dir.occupancy(), 1u);
  EXPECT_EQ(dir.stats().sharing_misses, 0u);
}

TEST(CoherenceDirectory, ReadConflictSharesTheLineAndLaterReadersJoinFree) {
  CoherenceDirectory dir(small_dir_cfg());
  (void)dir.on_request(req(0, 0x1000, ReqKind::kGetS), 0);
  // Reader 1 finds core 0 owning (E/M indistinguishable): the owner is
  // forward-invalidated and the line turns Shared{1}.
  const DirOutcome r1 = dir.on_request(req(1, 0x1000, ReqKind::kGetS), 0);
  ASSERT_EQ(r1.invalidate.size(), 1u);
  EXPECT_EQ(r1.invalidate[0], 0u);
  EXPECT_TRUE(r1.install_shared);
  // Further readers join the sharer set with no coherence traffic.
  const DirOutcome r2 = dir.on_request(req(2, 0x1000, ReqKind::kGetS), 0);
  EXPECT_TRUE(r2.invalidate.empty());
  EXPECT_TRUE(r2.install_shared);
  const DirOutcome r0 = dir.on_request(req(0, 0x1000, ReqKind::kGetS), 0);
  EXPECT_TRUE(r0.invalidate.empty());
  EXPECT_TRUE(r0.install_shared);
  EXPECT_EQ(dir.stats().invalidations, 1u);
  EXPECT_EQ(dir.stats().sharing_misses, 3u);
}

TEST(CoherenceDirectory, StoreInvalidatesEverySharer) {
  CoherenceDirectory dir(small_dir_cfg());
  // Build a 3-wide sharer set {0,1,2}.
  (void)dir.on_request(req(0, 0x2000, ReqKind::kGetS), 0);  // E{0}
  (void)dir.on_request(req(1, 0x2000, ReqKind::kGetS), 0);  // S{1}, inval 0
  (void)dir.on_request(req(0, 0x2000, ReqKind::kGetS), 0);  // S{0,1}
  (void)dir.on_request(req(2, 0x2000, ReqKind::kGetS), 0);  // S{0,1,2}
  const DirOutcome wr = dir.on_request(req(3, 0x2000, ReqKind::kGetX), 0);
  ASSERT_EQ(wr.invalidate.size(), 3u);
  EXPECT_EQ(wr.invalidate[0], 0u);
  EXPECT_EQ(wr.invalidate[1], 1u);
  EXPECT_EQ(wr.invalidate[2], 2u);
  EXPECT_FALSE(wr.install_shared);
  // A second store by the new owner is silent (E/M in place).
  const DirOutcome again = dir.on_request(req(3, 0x2000, ReqKind::kGetX), 0);
  EXPECT_TRUE(again.invalidate.empty());
}

TEST(CoherenceDirectory, UpgradeFromSoleSharerIsFree) {
  CoherenceDirectory dir(small_dir_cfg());
  // Writeback from the owner drops the entry; a re-read re-creates it.
  (void)dir.on_request(req(0, 0x3000, ReqKind::kGetS), 0);
  (void)dir.on_request(req(0, 0x3000, ReqKind::kWriteback), 0);
  EXPECT_EQ(dir.occupancy(), 0u);
  (void)dir.on_request(req(0, 0x3000, ReqKind::kGetS), 0);
  const DirOutcome up = dir.on_request(req(0, 0x3000, ReqKind::kUpgrade), 0);
  EXPECT_TRUE(up.upgrade_ack);
  EXPECT_TRUE(up.invalidate.empty());
  EXPECT_EQ(dir.stats().upgrades, 1u);
}

TEST(CoherenceDirectory, UpgradeFromInvalidatedSharerDegeneratesToGetX) {
  CoherenceDirectory dir(small_dir_cfg());
  (void)dir.on_request(req(0, 0x4000, ReqKind::kGetS), 0);
  // Core 1 steals the line (invalidates 0) before 0's upgrade arrives.
  (void)dir.on_request(req(1, 0x4000, ReqKind::kGetX), 0);
  const DirOutcome up = dir.on_request(req(0, 0x4000, ReqKind::kUpgrade), 0);
  EXPECT_FALSE(up.upgrade_ack) << "must answer with data, not a bare grant";
  ASSERT_EQ(up.invalidate.size(), 1u);
  EXPECT_EQ(up.invalidate[0], 1u);
}

TEST(CoherenceDirectory, AckCountersDistinguishCleanAndDirty) {
  CoherenceDirectory dir(small_dir_cfg());
  dir.on_ack(req(2, 0x5000, ReqKind::kInvAck));
  dir.on_ack(req(3, 0x5000, ReqKind::kDataForward));
  dir.on_ack(req(1, 0x5000, ReqKind::kDataForward));
  EXPECT_EQ(dir.stats().inv_acks, 1u);
  EXPECT_EQ(dir.stats().data_forwards, 2u);
}

TEST(CoherenceDirectory, RemapMigratesEntriesBetweenSlices) {
  CoherenceConfig cc = small_dir_cfg();
  CoherenceDirectory dir(cc);
  // Lines 0x1000*k map to logical banks (line >> 5) & 7; place a few.
  for (Addr line : {Addr{0x20}, Addr{0x40}, Addr{0x60}, Addr{0x80}}) {
    (void)dir.on_request(req(0, line, ReqKind::kGetS),
                         static_cast<BankId>((line >> 5) & 7));
  }
  const std::size_t before = dir.occupancy();
  // Fold all 8 logical banks onto physical banks {2,3} (centre group).
  dir.remap([](BankId logical) { return static_cast<BankId>(2 + (logical & 1)); });
  EXPECT_EQ(dir.occupancy(), before) << "migration must not lose entries";
  for (BankId b : {0u, 1u, 4u, 5u, 6u, 7u}) {
    EXPECT_EQ(dir.slice_entries(b), 0u) << "entry left on a gated bank " << b;
  }
  EXPECT_EQ(dir.slice_entries(2) + dir.slice_entries(3), before);
  EXPECT_GT(dir.stats().dir_migrations, 0u);
}

// ---- L1 MESI shared-bit mechanics -------------------------------------------

TEST(CoherenceL1, SharedLinesUpgradeBeforeDirtying) {
  mem::Cache l1(mem::CacheConfig{});
  l1.insert(0x1000, /*dirty=*/false, /*shared=*/true);
  ASSERT_TRUE(l1.line_shared(0x1000));

  // Reads hit normally; a store hits but may not dirty the line in place.
  EXPECT_TRUE(l1.lookup(0x1000, /*is_write=*/false).hit);
  const mem::LookupResult store = l1.lookup(0x1000, /*is_write=*/true);
  EXPECT_TRUE(store.hit);
  EXPECT_TRUE(store.needs_upgrade);
  EXPECT_EQ(l1.dirty_lines(), 0u);
  EXPECT_TRUE(l1.line_shared(0x1000));

  // The upgrade grant promotes Shared -> Modified.
  EXPECT_TRUE(l1.complete_upgrade(0x1000));
  EXPECT_FALSE(l1.line_shared(0x1000));
  EXPECT_EQ(l1.dirty_lines(), 1u);
  EXPECT_FALSE(l1.lookup(0x1000, /*is_write=*/true).needs_upgrade);

  // Invalidation clears the shared bit with the line; an upgrade for a
  // vanished line reports failure (the core refetches with data).
  EXPECT_TRUE(l1.invalidate(0x1000).has_value());
  EXPECT_FALSE(l1.line_shared(0x1000));
  EXPECT_FALSE(l1.complete_upgrade(0x1000));

  // Exclusive installs never need an upgrade (silent E -> M).
  l1.insert(0x2000, /*dirty=*/false, /*shared=*/false);
  EXPECT_FALSE(l1.line_shared(0x2000));
  EXPECT_FALSE(l1.lookup(0x2000, /*is_write=*/true).needs_upgrade);
  EXPECT_EQ(l1.dirty_lines(), 1u);
}

// ---- end-to-end cluster runs ------------------------------------------------

cluster::ClusterConfig sharing_cfg(const char* app, cluster::Fabric fabric,
                                   const core::PowerState& state,
                                   cluster::SchedulerMode sched =
                                       cluster::SchedulerMode::kEventDriven) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), fabric, state,
      mem::DramPreset::kDdr3_200ns, /*scale=*/0.02, /*seed=*/42);
  cfg.scheduler = sched;
  return cfg;
}

TEST(CoherenceCluster, ProducerConsumerGeneratesInvalidationTraffic) {
  const cluster::SimResult r =
      cluster::Cluster(sharing_cfg("producer_consumer", cluster::Fabric::kMot,
                                   core::PowerState::full()))
          .run();
  ASSERT_TRUE(r.coherence_enabled);
  EXPECT_GT(r.coherence.invalidations, 0u);
  EXPECT_GT(r.coherence.data_forwards, 0u);
  EXPECT_GT(r.coherence.sharing_misses, 0u);
  EXPECT_GT(r.coherence.dir_peak_entries, 0u);
  // Every invalidation is acknowledged exactly once, clean or dirty.
  EXPECT_EQ(r.coherence.invalidations,
            r.coherence.inv_acks + r.coherence.data_forwards);
  // Core counters agree with the directory's.
  std::uint64_t recv = 0, fwd = 0;
  for (const cpu::CoreStats& c : r.cores) {
    recv += c.invalidations_received;
    fwd += c.coherence_forwards;
  }
  EXPECT_EQ(recv, r.coherence.invalidations);
  EXPECT_EQ(fwd, r.coherence.data_forwards);
}

TEST(CoherenceCluster, UpgradesAppearForReadMostlySharing) {
  const cluster::SimResult r =
      cluster::Cluster(sharing_cfg("read_mostly", cluster::Fabric::kMot,
                                   core::PowerState::full()))
          .run();
  ASSERT_TRUE(r.coherence_enabled);
  // Stores into a widely read table hit Shared lines: upgrade path.
  EXPECT_GT(r.coherence.upgrades, 0u);
  EXPECT_GT(r.coherence.invalidations, 0u);
}

TEST(CoherenceCluster, PurelyPrivateSharingWorkloadStaysSilent) {
  // A coherent profile whose references never leave the per-core private
  // regions: the directory is engaged but must see zero sharing.
  workload::AppProfile app = workload::profile_by_name("producer_consumer");
  app.name = "private_only";
  app.shared_fraction = 0.0;
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      app, cluster::Fabric::kMot, core::PowerState::full(),
      mem::DramPreset::kDdr3_200ns, 0.02, 42);
  const cluster::SimResult r = cluster::Cluster(cfg).run();
  ASSERT_TRUE(r.coherence_enabled);
  EXPECT_EQ(r.coherence.invalidations, 0u);
  EXPECT_EQ(r.coherence.upgrades, 0u);
  EXPECT_EQ(r.coherence.data_forwards, 0u);
  EXPECT_EQ(r.coherence.sharing_misses, 0u);
  EXPECT_GT(r.coherence.dir_accesses, 0u) << "directory was not engaged";
}

TEST(CoherenceCluster, NonSharingProfilesLeaveCoherenceDetached) {
  const cluster::SimResult r =
      cluster::Cluster(sharing_cfg("fft", cluster::Fabric::kMot,
                                   core::PowerState::full()))
          .run();
  EXPECT_FALSE(r.coherence_enabled);
  EXPECT_EQ(r.coherence.invalidations, 0u);
  EXPECT_EQ(r.coh_dir_entries, 0u);
}

TEST(CoherenceCluster, SharingRunsWorkOnNocAndGatedMot) {
  const cluster::SimResult noc =
      cluster::Cluster(sharing_cfg("all_to_all", cluster::Fabric::kTrueMesh3d,
                                   core::PowerState::full()))
          .run();
  EXPECT_GT(noc.coherence.invalidations, 0u);

  const cluster::SimResult gated =
      cluster::Cluster(sharing_cfg("migratory", cluster::Fabric::kMot,
                                   core::PowerState::pc16_mb8()))
          .run();
  EXPECT_GT(gated.coherence.invalidations, 0u);
  EXPECT_GT(gated.coherence.data_forwards, 0u) << "migratory must forward dirty";
}

// Directory <-> bank-gating interaction through the full ReconfigManager
// protocol: drain, flush, ctr reprogram, directory re-slice.
TEST(CoherenceCluster, ReconfigMigratesDirectoryOntoSurvivingBanks) {
  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank_cfg;
  const core::MotTimingModel timing(tech, fp, bank_cfg);
  core::MotInterconnect mot(timing, core::PowerState::full());
  mem::DramConfig dram_cfg;
  mem::DramBackend dram(dram_cfg, 33);
  mem::L2Config l2_cfg;
  mem::L2System l2(l2_cfg, dram);
  coherence::CoherenceDirectory dir(coherence::CoherenceConfig{});
  l2.attach_directory(&dir);
  core::ReconfigManager mgr(mot, l2, dram);
  mgr.set_directory(&dir);

  // Track lines covering every logical bank from two cores.
  for (BankId b = 0; b < 32; ++b) {
    const Addr line = 0x8000'0000 + static_cast<Addr>(b) * 32;
    (void)dir.on_request(req(0, line, ReqKind::kGetS), mot.route(b));
    (void)dir.on_request(req(1, line + 32 * 32, ReqKind::kGetS), mot.route(b));
  }
  const std::size_t before = dir.occupancy();
  ASSERT_EQ(before, 64u);

  const core::ReconfigCost cost = mgr.apply(core::PowerState::pc16_mb8(), 0);
  EXPECT_GT(cost.dir_entries_migrated, 0u);
  EXPECT_EQ(dir.occupancy(), before);
  for (BankId b = 0; b < 32; ++b) {
    if (!core::PowerState::pc16_mb8().bank_active(b)) {
      EXPECT_EQ(dir.slice_entries(b), 0u) << "entries stranded on gated bank " << b;
    }
  }
  // Round trip back to Full re-slices again without losing state.
  (void)mgr.apply(core::PowerState::full(), 100);
  EXPECT_EQ(dir.occupancy(), before);
}

}  // namespace
}  // namespace mot3d
