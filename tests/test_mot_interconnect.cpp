// Unit tests for the cycle-level MoT transport: unloaded pipeline latency
// (must equal the Table I budget), non-blocking behaviour across banks,
// per-bank round-robin conflict resolution, remap delivery under gating,
// and energy/stat accounting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cacti/sram_model.hpp"
#include "core/mot_interconnect.hpp"

namespace mot3d::core {
namespace {

class MotIcnTest : public ::testing::Test {
 protected:
  phys::TechnologyParams tech = phys::default_technology();
  phys::FloorplanParams fp;
  cacti::SramBankConfig bank;
  MotTimingModel model{tech, fp, bank};

  struct Delivered {
    MemRequest req;
    Cycle at;
  };
  std::vector<Delivered> requests;
  std::vector<std::pair<MemResponse, Cycle>> responses;

  MotInterconnect make(const PowerState& s) {
    MotInterconnect icn(model, s);
    icn.set_request_sink(
        [this](const MemRequest& r, Cycle t) { requests.push_back({r, t}); });
    icn.set_response_sink(
        [this](const MemResponse& r, Cycle t) { responses.emplace_back(r, t); });
    return icn;
  }

  static MemRequest req(CoreId c, BankId b, std::uint64_t id = 1) {
    return MemRequest{.id = id, .core = c, .bank = b, .addr = 0, .is_write = false,
                      .issue_cycle = 0};
  }
};

TEST_F(MotIcnTest, UnloadedRequestLatencyMatchesPipeline) {
  MotInterconnect icn = make(PowerState::full());
  ASSERT_TRUE(icn.try_inject_request(req(0, 5), 0));
  const unsigned expect = icn.state_timing().request_cycles;
  for (Cycle t = 0; t <= expect + 2; ++t) icn.tick(t);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].at, expect);
  EXPECT_EQ(requests[0].req.bank, 5u);  // identity remap at full
}

TEST_F(MotIcnTest, UnloadedResponseLatencyMatchesPipeline) {
  MotInterconnect icn = make(PowerState::full());
  MemResponse resp{.id = 1, .core = 2, .bank = 7, .addr = 0, .is_write = false,
                   .l2_hit = true, .issue_cycle = 0};
  ASSERT_TRUE(icn.try_inject_response(resp, 10));
  const unsigned expect = icn.state_timing().response_cycles;
  for (Cycle t = 10; t <= 10 + expect + 2; ++t) icn.tick(t);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].second, 10 + expect);
}

TEST_F(MotIcnTest, NonBlockingAcrossDistinctBanks) {
  // All 16 cores hit 16 distinct banks the same cycle: all delivered
  // together — the MoT's non-blocking property.
  MotInterconnect icn = make(PowerState::full());
  for (CoreId c = 0; c < 16; ++c) {
    ASSERT_TRUE(icn.try_inject_request(req(c, c, c + 1), 0));
  }
  const unsigned expect = icn.state_timing().request_cycles;
  for (Cycle t = 0; t <= expect; ++t) icn.tick(t);
  EXPECT_EQ(requests.size(), 16u);
  for (const auto& d : requests) EXPECT_EQ(d.at, expect);
  EXPECT_EQ(icn.stats().arbitration_wait_cycles, 0u);
}

TEST_F(MotIcnTest, SameBankConflictsSerialiseRoundRobin) {
  MotInterconnect icn = make(PowerState::full());
  for (CoreId c = 0; c < 4; ++c) {
    ASSERT_TRUE(icn.try_inject_request(req(c, 9, c + 1), 0));
  }
  for (Cycle t = 0; t <= 60; ++t) icn.tick(t);
  ASSERT_EQ(requests.size(), 4u);
  // Grants spaced by the circuit hold (bank_hold_cycles = 2 default).
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(requests[i].at, requests[i - 1].at + 2);
  }
  // All four cores served (starvation-free).
  std::map<CoreId, int> served;
  for (const auto& d : requests) ++served[d.req.core];
  EXPECT_EQ(served.size(), 4u);
  EXPECT_GT(icn.stats().arbitration_wait_cycles, 0u);
}

TEST_F(MotIcnTest, GatedStateRemapsToPhysicalBanks) {
  MotInterconnect icn = make(PowerState::pc16_mb8());
  // Logical bank 0 folds onto physical bank 12 (centre group).
  ASSERT_TRUE(icn.try_inject_request(req(0, 0), 0));
  for (Cycle t = 0; t <= 20; ++t) icn.tick(t);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].req.bank, 12u);
  EXPECT_EQ(icn.route(31), 19u);
}

TEST_F(MotIcnTest, GatedStateIsFaster) {
  MotInterconnect full = make(PowerState::full());
  MotInterconnect gated = make(PowerState::pc4_mb8());
  EXPECT_LT(gated.state_timing().l2_round_trip(), full.state_timing().l2_round_trip());
  EXPECT_LT(gated.leakage_mw(), full.leakage_mw());
}

TEST_F(MotIcnTest, OneOutstandingPerCore) {
  MotInterconnect icn = make(PowerState::full());
  EXPECT_TRUE(icn.try_inject_request(req(3, 1, 1), 0));
  EXPECT_FALSE(icn.try_inject_request(req(3, 2, 2), 0));  // slot held
  for (Cycle t = 0; t <= 20; ++t) icn.tick(t);
  EXPECT_TRUE(icn.try_inject_request(req(3, 2, 2), 21));
}

TEST_F(MotIcnTest, IdleTracksInFlightWork) {
  MotInterconnect icn = make(PowerState::full());
  EXPECT_TRUE(icn.idle());
  icn.try_inject_request(req(0, 0), 0);
  EXPECT_FALSE(icn.idle());
  for (Cycle t = 0; t <= 20; ++t) icn.tick(t);
  EXPECT_TRUE(icn.idle());
}

TEST_F(MotIcnTest, EnergyAccumulatesPerTransaction) {
  MotInterconnect icn = make(PowerState::full());
  const double e0 = icn.dynamic_energy_pj();
  icn.try_inject_request(req(0, 0), 0);
  const double e1 = icn.dynamic_energy_pj();
  EXPECT_GT(e1, e0);
  MemResponse resp{.id = 1, .core = 0, .bank = 0, .addr = 0, .is_write = false,
                   .l2_hit = true, .issue_cycle = 0};
  icn.try_inject_response(resp, 5);
  EXPECT_GT(icn.dynamic_energy_pj(), e1);
}

TEST_F(MotIcnTest, StatsCount) {
  MotInterconnect icn = make(PowerState::full());
  icn.try_inject_request(req(0, 0), 0);
  for (Cycle t = 0; t <= 20; ++t) icn.tick(t);
  EXPECT_EQ(icn.stats().requests_injected, 1u);
  EXPECT_EQ(icn.stats().requests_delivered, 1u);
  EXPECT_STREQ(icn.name(), "3-D MoT");
}

TEST_F(MotIcnTest, ReconfigureChangesTimingAndRouting) {
  MotInterconnect icn = make(PowerState::full());
  EXPECT_EQ(icn.route(0), 0u);
  EXPECT_EQ(icn.state_timing().l2_round_trip(), 12u);
  icn.configure(PowerState::pc16_mb8());
  EXPECT_EQ(icn.route(0), 12u);
  EXPECT_EQ(icn.state_timing().l2_round_trip(), 9u);
}

}  // namespace
}  // namespace mot3d::core
