// Unit tests for the power substrate: McPAT-lite core model, Liao-He
// interconnect power, and the energy ledger / EDP arithmetic.
#include <gtest/gtest.h>

#include "power/core_power.hpp"
#include "power/energy_ledger.hpp"
#include "power/interconnect_power.hpp"

namespace mot3d::power {
namespace {

TEST(CorePower, DynamicEnergyPerInstruction) {
  CorePowerParams p;
  p.energy_per_instr_pj = 60.0;
  p.energy_per_l1_access_pj = 8.0;
  CorePowerModel m(p);
  EXPECT_DOUBLE_EQ(m.dynamic_pj(1000, 300), 1000 * 60.0 + 300 * 8.0);
}

TEST(CorePower, SpinBurnsFractionOfActivePower) {
  CorePowerParams p;
  CorePowerModel m(p);
  const double full = static_cast<double>(1000) * p.energy_per_instr_pj;
  EXPECT_NEAR(m.spin_pj(1000) / full, p.spin_fraction, 1e-12);
}

TEST(CorePower, StaticEnergyIsLeakagePlusClockTree) {
  CorePowerParams p;
  p.leakage_mw = 12.0;
  p.clock_tree_mw = 3.0;
  CorePowerModel m(p);
  // mW * ns = pJ: 15 mW over 1000 cycles (1 µs) = 15 nJ.
  EXPECT_DOUBLE_EQ(m.static_pj(1000), 15000.0);
}

TEST(EnergyLedger, AccumulatesPerComponent) {
  EnergyLedger l;
  l.add_dynamic(Component::kCore, 100.0);
  l.add_static(Component::kCore, 50.0);
  l.add_dynamic(Component::kL2, 30.0);
  EXPECT_DOUBLE_EQ(l.component_pj(Component::kCore), 150.0);
  EXPECT_DOUBLE_EQ(l.dynamic_pj(Component::kL2), 30.0);
  EXPECT_DOUBLE_EQ(l.static_pj(Component::kL2), 0.0);
}

TEST(EnergyLedger, DramExcludedFromEdp) {
  EnergyLedger l;
  l.add_dynamic(Component::kCore, 100.0);
  l.add_dynamic(Component::kDram, 1e9);
  EXPECT_DOUBLE_EQ(l.edp_energy_pj(), 100.0);
  EXPECT_DOUBLE_EQ(l.total_pj(), 100.0 + 1e9);
}

TEST(EnergyLedger, EdpArithmetic) {
  EnergyLedger l;
  l.add_dynamic(Component::kInterconnect, 2000.0);  // 2 nJ
  // 2000 pJ over 1000 cycles (1 µs): EDP = 2000 pJ * 1e-6 s.
  EXPECT_DOUBLE_EQ(l.edp_pj_s(1000), 2000.0 * 1e-6);
  // Average power: 2 nJ / 1 µs = 2 mW.
  EXPECT_NEAR(l.average_power_w(1000), 0.002, 1e-12);
}

TEST(EnergyLedger, Merge) {
  EnergyLedger a, b;
  a.add_dynamic(Component::kL1, 5.0);
  b.add_dynamic(Component::kL1, 7.0);
  b.add_static(Component::kL2, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.component_pj(Component::kL1), 12.0);
  EXPECT_DOUBLE_EQ(a.static_pj(Component::kL2), 2.0);
}

TEST(EnergyLedger, ComponentNames) {
  EXPECT_STREQ(component_name(Component::kCore), "core");
  EXPECT_STREQ(component_name(Component::kDram), "dram");
}

TEST(InterconnectPower, RouterHopEnergyIsSumOfStages) {
  RouterPowerParams rp;
  phys::WireModel wire{phys::default_technology()};
  InterconnectPowerModel m(wire, rp);
  EXPECT_DOUBLE_EQ(m.router_hop_pj(),
                   rp.buffer_write_pj_per_flit + rp.buffer_read_pj_per_flit +
                       rp.crossbar_pj_per_flit + rp.arbitration_pj_per_flit);
}

TEST(InterconnectPower, WireTransferScalesWithBits) {
  phys::WireModel wire{phys::default_technology()};
  InterconnectPowerModel m(wire);
  const double e64 = m.wire_transfer_pj(2.0, 64);
  const double e128 = m.wire_transfer_pj(2.0, 128);
  EXPECT_NEAR(e128 / e64, 2.0, 1e-9);
  EXPECT_GT(e64, 0.0);
}

TEST(InterconnectPower, WireLeakageNeedsRepeaters) {
  phys::WireModel wire{phys::default_technology()};
  InterconnectPowerModel m(wire);
  EXPECT_DOUBLE_EQ(m.wire_leakage_mw(0.5, 64), 0.0);  // short wire: none
  EXPECT_GT(m.wire_leakage_mw(40.0, 64), 0.0);
}

}  // namespace
}  // namespace mot3d::power
