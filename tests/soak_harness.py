#!/usr/bin/env python3
"""Soak harness for the mot3d_experiments CLI.

Drives the release binary the way a user (or CI) does and checks the
externally visible contract: exit codes, shape-check lines, golden
baselines, and — the robustness PR's point — that a hung simulation is
converted into a structured error instead of wedging the job.  Every
subprocess runs under a hard wall timeout so a simulator deadlock fails
this harness loudly rather than hanging the pipeline.

Usage:
    python3 tests/soak_harness.py [--binary PATH] [--full]

  --binary   path to mot3d_experiments (default: ./mot3d_experiments,
             i.e. run from the build directory)
  --full     also re-verify every golden baseline (slower; the smoke
             subset is sized for per-commit CI)
"""

import argparse
import re
import subprocess
import sys

TIMEOUT = 300  # seconds per subprocess: generous, but deadlocks must die


class TestResult:
    def __init__(self, name, success, details=""):
        self.name = name
        self.success = success
        self.details = details


def run_cmd(binary, args):
    cmd = [binary] + args
    print(f"  command: {' '.join(cmd)}")
    return subprocess.run(cmd, capture_output=True, text=True, timeout=TIMEOUT)


def run_test(binary, name, args, expect_exit=0, expect_patterns=(),
             forbid_patterns=()):
    """Run one CLI invocation and grade exit code + output regexes.

    `expect_exit` is an exact code, or "nonzero" for any failure exit.
    """
    print(f"Running: {name}...")
    try:
        result = run_cmd(binary, args)
    except subprocess.TimeoutExpired:
        return TestResult(name, False,
                          f"timeout after {TIMEOUT}s (possible deadlock)")
    except OSError as e:
        return TestResult(name, False, f"failed to launch: {e}")

    output = result.stdout + result.stderr
    bad_exit = (result.returncode == 0 if expect_exit == "nonzero"
                else result.returncode != expect_exit)
    if bad_exit:
        return TestResult(
            name, False,
            f"exit code {result.returncode}, expected {expect_exit}\n"
            f"stderr: {result.stderr.strip()[:500]}")
    for pattern in expect_patterns:
        if not re.search(pattern, output):
            return TestResult(name, False, f"missing /{pattern}/ in output")
    for pattern in forbid_patterns:
        if re.search(pattern, output):
            return TestResult(name, False, f"forbidden /{pattern}/ in output")
    return TestResult(name, True, f"exit {result.returncode}")


def smoke_tests(binary):
    return [
        run_test(
            binary, "scenario registry lists the fault scenario",
            ["list"],
            expect_patterns=[r"fault_resilience"]),
        run_test(
            binary, "fault resilience at golden scale",
            ["run", "fault_resilience", "--golden"],
            expect_patterns=[
                r"shape check: MoT \(Full\) absorbs every hard fault: PASS",
                r"shape check: packet mesh fails on hard faults: PASS",
                r"shape check: fault-triggered bank gating occurred on the "
                r"MoT: PASS",
            ],
            forbid_patterns=[r"error: run"]),
        # A micro wall deadline must abort the run as a structured one-line
        # error with a non-zero exit — never a hang, never a wedge.
        run_test(
            binary, "watchdog --timeout converts a long run into an error",
            ["grid", "--apps=fft", "--scale=0.01", "--timeout=0.000001"],
            expect_exit=1,
            expect_patterns=[
                r"error: run fft/\S+/\S+ failed: "
                r"watchdog: wall-clock deadline",
            ]),
        run_test(
            binary, "bad --timeout is rejected",
            ["grid", "--apps=fft", "--timeout=-1"],
            expect_exit="nonzero",
            expect_patterns=[r"error:"]),
        # One cheap analytic scenario keeps the golden path honest without
        # re-running the whole baseline set on every commit.
        run_test(
            binary, "golden baseline spot check",
            ["check-golden", "fig5_wire_lengths"],
            expect_patterns=[r"ok: fig5_wire_lengths matches"]),
        run_test(
            binary, "unknown scenario exits non-zero",
            ["run", "no_such_scenario"],
            expect_exit="nonzero",
            expect_patterns=[r"error:"]),
    ]


def full_tests(binary):
    # Re-verify every committed baseline byte-for-byte.
    return [
        run_test(
            binary, "all golden baselines match",
            ["check-golden"],
            expect_patterns=[r"ok: fault_resilience matches"],
            forbid_patterns=[r"error: golden mismatch",
                             r"error: missing golden baseline"]),
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="./mot3d_experiments")
    parser.add_argument("--full", action="store_true",
                        help="also re-verify every golden baseline")
    opts = parser.parse_args()

    results = smoke_tests(opts.binary)
    if opts.full:
        results += full_tests(opts.binary)

    print("\n==== soak harness summary ====")
    failures = 0
    for r in results:
        status = "PASS" if r.success else "FAIL"
        print(f"  [{status}] {r.name}: {r.details}")
        failures += 0 if r.success else 1
    print(f"{len(results) - failures}/{len(results)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
