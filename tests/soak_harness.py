#!/usr/bin/env python3
"""Soak harness for the mot3d_experiments CLI.

Drives the release binary the way a user (or CI) does and checks the
externally visible contract: exit codes, shape-check lines, golden
baselines, and — the robustness PR's point — that a hung simulation is
converted into a structured error instead of wedging the job.  Every
subprocess runs under a hard wall timeout so a simulator deadlock fails
this harness loudly rather than hanging the pipeline.

Usage:
    python3 tests/soak_harness.py [--binary PATH] [--full] [--bench] [--obs]

  --binary   path to mot3d_experiments (default: ./mot3d_experiments,
             i.e. run from the build directory)
  --full     also re-verify every golden baseline (slower; the smoke
             subset is sized for per-commit CI)
  --bench    also exercise the bench_scale perf-guardrail contract:
             JSON report shape and every baseline-comparison exit code
             (0 ok / 1 regression / 2 usage / 3 bad baseline), using
             self-generated and doctored baselines so the checks are
             machine-independent
  --bench-binary
             path to bench_scale (default: ./bench_scale)
  --obs      also exercise the observability contract: run a traced
             scenario, parse the Chrome-trace and interval-metrics
             documents, and check track names, required keys, and
             per-track timestamp monotonicity
  --serve    also exercise the sweep-service contract: cold/warm batch
             determinism over a pipe, an interactive serve session with
             request/response round trips (the watchdog converting a
             wedged job into a structured error), and the
             unwritable-cache-dir error path
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading

TIMEOUT = 300  # seconds per subprocess: generous, but deadlocks must die


class TestResult:
    def __init__(self, name, success, details=""):
        self.name = name
        self.success = success
        self.details = details


def run_cmd(binary, args, input_text=None):
    cmd = [binary] + args
    print(f"  command: {' '.join(cmd)}")
    return subprocess.run(cmd, capture_output=True, text=True, timeout=TIMEOUT,
                          input=input_text)


def run_test(binary, name, args, expect_exit=0, expect_patterns=(),
             forbid_patterns=(), input_text=None):
    """Run one CLI invocation and grade exit code + output regexes.

    `expect_exit` is an exact code, or "nonzero" for any failure exit.
    """
    print(f"Running: {name}...")
    try:
        result = run_cmd(binary, args, input_text)
    except subprocess.TimeoutExpired:
        return TestResult(name, False,
                          f"timeout after {TIMEOUT}s (possible deadlock)")
    except OSError as e:
        return TestResult(name, False, f"failed to launch: {e}")

    output = result.stdout + result.stderr
    bad_exit = (result.returncode == 0 if expect_exit == "nonzero"
                else result.returncode != expect_exit)
    if bad_exit:
        return TestResult(
            name, False,
            f"exit code {result.returncode}, expected {expect_exit}\n"
            f"stderr: {result.stderr.strip()[:500]}")
    for pattern in expect_patterns:
        if not re.search(pattern, output):
            return TestResult(name, False, f"missing /{pattern}/ in output")
    for pattern in forbid_patterns:
        if re.search(pattern, output):
            return TestResult(name, False, f"forbidden /{pattern}/ in output")
    return TestResult(name, True, f"exit {result.returncode}")


def smoke_tests(binary):
    return [
        run_test(
            binary, "scenario registry lists the fault scenario",
            ["list"],
            expect_patterns=[r"fault_resilience"]),
        run_test(
            binary, "fault resilience at golden scale",
            ["run", "fault_resilience", "--golden"],
            expect_patterns=[
                r"shape check: MoT \(Full\) absorbs every hard fault: PASS",
                r"shape check: packet mesh fails on hard faults: PASS",
                r"shape check: fault-triggered bank gating occurred on the "
                r"MoT: PASS",
            ],
            forbid_patterns=[r"error: run"]),
        # A micro wall deadline must abort the run as a structured one-line
        # error with a non-zero exit — never a hang, never a wedge.
        run_test(
            binary, "watchdog --timeout converts a long run into an error",
            ["grid", "--apps=fft", "--scale=0.01", "--timeout=0.000001"],
            expect_exit=1,
            expect_patterns=[
                r"error: run fft/\S+/\S+ failed: "
                r"watchdog: wall-clock deadline",
            ]),
        run_test(
            binary, "bad --timeout is rejected",
            ["grid", "--apps=fft", "--timeout=-1"],
            expect_exit="nonzero",
            expect_patterns=[r"error:"]),
        # One cheap analytic scenario keeps the golden path honest without
        # re-running the whole baseline set on every commit.
        run_test(
            binary, "golden baseline spot check",
            ["check-golden", "fig5_wire_lengths"],
            expect_patterns=[r"ok: fig5_wire_lengths matches"]),
        run_test(
            binary, "unknown scenario exits non-zero",
            ["run", "no_such_scenario"],
            expect_exit="nonzero",
            expect_patterns=[r"error:"]),
        run_test(
            binary, "describe shows the dram_backend axis",
            ["describe", "stacked_dram"],
            expect_patterns=[r"axis dram_backend \(3\):.*constant.*stacked"
                             r".*stacked_remap"]),
    ] + stacked_dram_tests(binary)


# Stacked cells must carry the full dram3d_* block; constant-backend cells
# must carry none of it (the field set of legacy runs is golden-pinned).
REQUIRED_DRAM3D_KEYS = (
    "dram3d_vaults", "dram3d_alive_vaults", "dram3d_row_hits",
    "dram3d_row_misses", "dram3d_refreshes", "dram3d_remaps",
    "dram3d_vault_faults", "dram3d_remap_enabled", "dram3d_peak_vault_c",
    "dram3d_peak_vault")


def check_dram3d_shape(name, path):
    """Grade the stacked_dram --json report: conditional dram3d_* fields."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return TestResult(name, False, f"unreadable report: {e}")
    runs = doc.get("metrics", {}).get("runs")
    if not isinstance(runs, list) or not runs:
        return TestResult(name, False, "missing or empty metrics.runs")
    stacked = 0
    for run in runs:
        backend = run.get("dram_backend")
        if backend is None:
            leaked = [k for k in run if k.startswith("dram3d_")]
            if leaked:
                return TestResult(
                    name, False,
                    f"constant-backend run leaked {leaked} (field-set drift)")
            continue
        stacked += 1
        for key in REQUIRED_DRAM3D_KEYS:
            if key not in run:
                return TestResult(name, False,
                                  f"{backend} run missing '{key}'")
        if run["dram3d_row_hits"] + run["dram3d_row_misses"] <= 0:
            return TestResult(name, False,
                              f"{backend} run tracked no row activity")
        if run["dram3d_refreshes"] <= 0:
            return TestResult(name, False, f"{backend} run never refreshed")
    if stacked == 0:
        return TestResult(name, False, "no stacked cells in the report")
    return TestResult(name, True, f"{stacked} stacked cells ok")


def stacked_dram_tests(binary):
    """Stacked-DRAM scenario contract: shape checks + dram3d_* JSON block."""
    results = []
    with tempfile.TemporaryDirectory(prefix="mot3d_dram3d_soak.") as tmp:
        report = os.path.join(tmp, "stacked.json")
        results.append(run_test(
            binary, "stacked DRAM at golden scale",
            ["run", "stacked_dram", "--golden", f"--json={report}"],
            expect_patterns=[
                r"shape check: stacked runs exploit open-row locality: PASS",
                r"shape check: refresh interference occurred in every "
                r"stacked run: PASS",
                r"shape check: vault remap never raises the peak vault "
                r"temperature: PASS",
            ],
            forbid_patterns=[r"error: run"]))
        if results[-1].success:
            results.append(check_dram3d_shape(
                "dram3d_* JSON report shape", report))
    return results


def full_tests(binary):
    # Re-verify every committed baseline byte-for-byte.
    return [
        run_test(
            binary, "all golden baselines match",
            ["check-golden"],
            expect_patterns=[r"ok: fault_resilience matches"],
            forbid_patterns=[r"error: golden mismatch",
                             r"error: missing golden baseline"]),
    ]


REQUIRED_REPORT_KEYS = ("bench", "scheduler", "scale", "seed", "cells",
                        "total_wall_seconds", "total_simulated_cycles",
                        "cycles_per_second")
REQUIRED_CELL_KEYS = ("app", "cores", "banks", "state", "cycles",
                      "instructions", "wall_seconds", "cycles_per_second")

# A deliberately tiny grid: the soak harness checks the *contract* of
# bench_scale (report shape, exit codes), not its throughput numbers.
BENCH_GRID = ["--cores=16,64", "--patterns=all_to_all", "--scale=0.005"]


def check_report_shape(name, path):
    """Grade the --json report: parseable, required keys, full grid."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return TestResult(name, False, f"unreadable report: {e}")
    for key in REQUIRED_REPORT_KEYS:
        if key not in doc:
            return TestResult(name, False, f"report missing key '{key}'")
    cells = doc["cells"]
    if not isinstance(cells, list) or len(cells) != 2:
        return TestResult(name, False,
                          f"expected 2 cells for {BENCH_GRID}, got {cells!r}")
    for cell in cells:
        for key in REQUIRED_CELL_KEYS:
            if key not in cell:
                return TestResult(name, False, f"cell missing key '{key}'")
        if cell["cycles"] <= 0:
            return TestResult(name, False, f"non-positive cycles in {cell!r}")
    return TestResult(name, True, "report shape ok")


def bench_tests(bench_binary):
    """bench_scale contract checks, all against doctored local baselines."""
    results = []
    with tempfile.TemporaryDirectory(prefix="mot3d_bench_soak.") as tmp:
        report = os.path.join(tmp, "report.json")
        baseline = os.path.join(tmp, "baseline.json")

        # Report shape + baseline generation in one invocation.
        results.append(run_test(
            bench_binary, "bench_scale emits a report and a baseline",
            BENCH_GRID + [f"--json={report}", f"--baseline={baseline}",
                          "--update-baseline"],
            expect_patterns=[r"baseline updated"]))
        if results[-1].success:
            results.append(check_report_shape(
                "bench_scale JSON report shape", report))

        # Exit 0: a fresh run against its own baseline is within tolerance
        # (modeled metrics are deterministic; throughput compares to itself).
        results.append(run_test(
            bench_binary, "bench_scale baseline comparison passes (exit 0)",
            BENCH_GRID + [f"--baseline={baseline}"],
            expect_patterns=[r"baseline OK"]))

        # Exit 1: a doctored baseline claiming 1e12 cycles/s makes every
        # real machine look like a throughput regression.
        fast = os.path.join(tmp, "impossibly_fast.json")
        try:
            with open(baseline, encoding="utf-8") as f:
                doc = json.load(f)
            for cell in doc["cells"]:
                cell["cycles_per_second"] = 1.0e12
            with open(fast, "w", encoding="utf-8") as f:
                json.dump(doc, f)
        except (OSError, ValueError, KeyError) as e:
            results.append(TestResult("doctor throughput baseline", False,
                                      str(e)))
        else:
            results.append(run_test(
                bench_binary, "throughput regression exits 1",
                BENCH_GRID + [f"--baseline={fast}"],
                expect_exit=1,
                expect_patterns=[r"REGRESSION .*throughput"]))

        # Exit 1: doctored modeled cycles = simulator behaviour drift.
        drift = os.path.join(tmp, "drifted.json")
        try:
            with open(baseline, encoding="utf-8") as f:
                doc = json.load(f)
            doc["cells"][0]["cycles"] += 1
            with open(drift, "w", encoding="utf-8") as f:
                json.dump(doc, f)
        except (OSError, ValueError, KeyError, IndexError) as e:
            results.append(TestResult("doctor modeled baseline", False, str(e)))
        else:
            results.append(run_test(
                bench_binary, "modeled drift exits 1",
                BENCH_GRID + [f"--baseline={drift}"],
                expect_exit=1,
                expect_patterns=[r"REGRESSION .*modeled drift"]))

        # Exit 3: missing and malformed baselines.
        results.append(run_test(
            bench_binary, "missing baseline exits 3",
            BENCH_GRID + [f"--baseline={os.path.join(tmp, 'nope.json')}"],
            expect_exit=3,
            expect_patterns=[r"baseline error"]))
        broken = os.path.join(tmp, "broken.json")
        with open(broken, "w", encoding="utf-8") as f:
            f.write('{"bench": truncated')
        results.append(run_test(
            bench_binary, "malformed baseline exits 3",
            BENCH_GRID + [f"--baseline={broken}"],
            expect_exit=3,
            expect_patterns=[r"baseline error"]))

        # Exit 3: a baseline recorded with different knobs is unusable.
        results.append(run_test(
            bench_binary, "knob-mismatched baseline exits 3",
            BENCH_GRID + [f"--baseline={baseline}", "--scheduler=dense"],
            expect_exit=3,
            expect_patterns=[r"baseline error: baseline was recorded with"]))

        # Exit 2: usage errors.
        results.append(run_test(
            bench_binary, "unknown flag exits 2",
            ["--no-such-flag"],
            expect_exit=2,
            expect_patterns=[r"error: unknown option"]))
        results.append(run_test(
            bench_binary, "malformed tolerance exits 2",
            BENCH_GRID + ["--tolerance=2.0"],
            expect_exit=2,
            expect_patterns=[r"--tolerance must be in"]))
    return results


REQUIRED_TRACK_NAMES = ("governor", "fabric", "faults")
REQUIRED_METRIC_COUNTERS = ("cluster.instructions", "l2.hits", "l2.misses",
                            "fabric.requests_delivered", "energy.l2_pj")


def check_trace_document(name, path):
    """Grade a Chrome-trace file: shape, track names, monotone timestamps."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return TestResult(name, False, f"unreadable trace: {e}")
    if doc.get("displayTimeUnit") != "ns":
        return TestResult(name, False, "missing displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return TestResult(name, False, "empty traceEvents array")

    # Collect the track (thread) names declared by metadata events.
    tracks = set()
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks.add(ev["args"]["name"])
    for want in REQUIRED_TRACK_NAMES:
        if want not in tracks:
            return TestResult(name, False, f"missing track '{want}'")
    if not any(t.startswith("core ") for t in tracks):
        return TestResult(name, False, "no per-core tracks")
    if not any(t.startswith("l2 bank ") for t in tracks):
        return TestResult(name, False, "no per-bank tracks")

    # Determinism contract: events are recorded at the moment they end, so
    # per-track end timestamps are monotone nondecreasing in file order.
    last_end = {}
    payload = 0
    for ev in events:
        if ev.get("ph") not in ("X", "i"):
            continue
        payload += 1
        if ev["ts"] < 0 or ev.get("dur", 0) < 0:
            return TestResult(name, False, f"negative time in {ev!r}")
        key = (ev["pid"], ev["tid"])
        end = ev["ts"] + ev.get("dur", 0)
        if end < last_end.get(key, 0):
            return TestResult(
                name, False,
                f"timestamps went backwards on track {key}: {ev!r}")
        last_end[key] = end
    if payload == 0:
        return TestResult(name, False, "no payload events, only metadata")
    return TestResult(name, True, f"{payload} events on {len(tracks)} tracks")


def check_metrics_document(name, path):
    """Grade the interval-metrics file: runs, counters, epoch cycles."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return TestResult(name, False, f"unreadable metrics: {e}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return TestResult(name, False, "missing or empty 'runs'")
    for run in runs:
        for key in ("run", "epoch_cycles", "series"):
            if key not in run:
                return TestResult(name, False, f"run missing key '{key}'")
        cycles = run["series"].get("cycles")
        counters = run["series"].get("counters")
        if not cycles or not counters:
            return TestResult(name, False,
                              f"empty series in run '{run['run']}'")
        if any(b <= a for a, b in zip(cycles, cycles[1:])):
            return TestResult(name, False,
                              f"non-increasing cycles in '{run['run']}'")
        for want in REQUIRED_METRIC_COUNTERS:
            if want not in counters:
                return TestResult(name, False, f"missing counter '{want}'")
        for cname, series in counters.items():
            if len(series) != len(cycles):
                return TestResult(
                    name, False,
                    f"counter '{cname}' has {len(series)} samples for "
                    f"{len(cycles)} epochs")
    return TestResult(name, True, f"{len(runs)} runs ok")


def obs_tests(binary):
    """Observability contract: trace + metrics files of a real traced run."""
    results = []
    with tempfile.TemporaryDirectory(prefix="mot3d_obs_soak.") as tmp:
        trace = os.path.join(tmp, "out.trace.json")
        metrics = os.path.join(tmp, "out.metrics.json")
        results.append(run_test(
            binary, "trace subcommand writes both documents",
            ["trace", "coherence_sharing", "--golden",
             f"--trace={trace}", f"--metrics={metrics}"],
            expect_patterns=[r"\[obs\] trace written to ",
                             r"\[obs\] metrics written to "]))
        if not results[-1].success:
            return results
        results.append(check_trace_document("Chrome-trace document shape",
                                            trace))
        results.append(check_metrics_document("interval-metrics document shape",
                                              metrics))
        # Unwritable destination: one structured line, non-zero exit.
        results.append(run_test(
            binary, "unwritable trace path fails loudly",
            ["trace", "coherence_sharing", "--golden",
             "--trace=/nonexistent/dir/out.trace.json",
             f"--metrics={metrics}"],
            expect_exit=1,
            expect_patterns=[r"error: cannot write trace file "]))
    return results



def serve_session(binary, cache_dir):
    """One interactive serve session: ready line, request/response round
    trips, a wedged job converted to a structured error by the watchdog,
    counter cross-check, clean shutdown — all under a hard kill timer so a
    wedged server fails the harness instead of hanging it."""
    name = "serve session round-trips requests and shuts down cleanly"
    print(f"Running: {name}...")
    proc = subprocess.Popen(
        [binary, "serve", f"--cache-dir={cache_dir}"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, bufsize=1)
    killer = threading.Timer(TIMEOUT, proc.kill)
    killer.start()

    def readline():
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("server closed stdout early")
        return json.loads(line)

    def send(doc):
        proc.stdin.write(json.dumps(doc) + "\n")
        proc.stdin.flush()

    try:
        ready = readline()
        if not ready.get("ready"):
            return TestResult(name, False, f"no ready line: {ready!r}")

        send({"id": 1, "cmd": "ping"})
        if not readline().get("pong"):
            return TestResult(name, False, "ping was not answered with pong")

        # Cold request computes; the identical warm request must hit and
        # return a bit-identical result document.
        request = {"id": 2, "apps": ["fft"], "scale": 0.01, "seed": 7}
        send(request)
        cold = readline()
        cold_done = readline()
        if cold.get("cache_hit") is not False or "result" not in cold:
            return TestResult(name, False, f"bad cold response: {cold!r}")
        if cold_done.get("cache_misses") != 1:
            return TestResult(name, False, f"bad cold summary: {cold_done!r}")
        send(request)
        warm = readline()
        warm_done = readline()
        if warm.get("cache_hit") is not True:
            return TestResult(name, False, f"warm request missed: {warm!r}")
        if warm["result"] != cold["result"]:
            return TestResult(name, False,
                              "warm result differs from cold result")
        if warm_done.get("cache_misses") != 0:
            return TestResult(name, False, f"bad warm summary: {warm_done!r}")

        # A wedged job (micro watchdog budget) must come back as a
        # structured error — and the server must keep serving afterwards.
        send({"id": 3, "apps": ["fft"], "scale": 0.01, "seed": 8,
              "timeout_seconds": 1e-6})
        wedged = readline()
        wedged_done = readline()
        if "watchdog" not in wedged.get("error", ""):
            return TestResult(name, False, f"no watchdog error: {wedged!r}")
        if wedged_done.get("errors") != 1:
            return TestResult(name, False,
                              f"bad wedged summary: {wedged_done!r}")

        # service.* probes must agree with the provenance seen above:
        # 2 misses (cold + wedged), 1 hit (warm), 1 job error.
        send({"id": 4, "cmd": "stats"})
        stats = readline().get("stats", {})
        expected = {"service.misses": 2, "service.hits": 1,
                    "service.computed": 2, "service.job_errors": 1,
                    "service.queue_depth": 0}
        for key, want in expected.items():
            if stats.get(key) != want:
                return TestResult(
                    name, False,
                    f"{key}={stats.get(key)!r}, want {want} ({stats!r})")

        send({"id": 5, "cmd": "shutdown"})
        if not readline().get("bye"):
            return TestResult(name, False, "shutdown was not acknowledged")
        rc = proc.wait(timeout=TIMEOUT)
        if rc != 0:
            return TestResult(name, False, f"server exited {rc}")
        return TestResult(name, True, "ready/ping/run/warm/wedge/stats/bye ok")
    except (RuntimeError, ValueError, OSError,
            subprocess.TimeoutExpired) as e:
        return TestResult(name, False, f"{e} (stderr: "
                          f"{proc.stderr.read()[:300] if proc.stderr else ''})")
    finally:
        killer.cancel()
        proc.kill()


def serve_tests(binary):
    """Sweep-service contract: batch cold/warm determinism over a pipe, an
    interactive serve session, and the unwritable-cache-dir error path."""
    results = []
    requests = ('{"id":1,"apps":["fft"],"scale":0.01,"seed":7}\n'
                '{"id":2,"apps":["radix"],"scale":0.01,"seed":7}\n')
    with tempfile.TemporaryDirectory(prefix="mot3d_serve_soak.") as tmp:
        cache = os.path.join(tmp, "cache")
        cold = run_test(
            binary, "batch over a pipe: cold run computes everything",
            ["batch", f"--cache-dir={cache}"],
            input_text=requests,
            expect_patterns=[r'"cache_misses": 2, "computed": 2, "errors": 0'],
            forbid_patterns=[r'"cache_hit": true'])
        results.append(cold)
        warm = run_test(
            binary, "batch over a pipe: warm run recomputes nothing",
            ["batch", f"--cache-dir={cache}"],
            input_text=requests,
            expect_patterns=[r'"cache_misses": 0, "computed": 0, "errors": 0'],
            forbid_patterns=[r'"cache_hit": false'])
        results.append(warm)
        # A fresh cache dir: the session's cold/warm expectations must not
        # be satisfied by entries the batch tests above already stored.
        results.append(serve_session(binary, os.path.join(tmp, "serve_cache")))
    results.append(run_test(
        binary, "unwritable cache dir is one clean error",
        ["batch", "--cache-dir=/dev/null/sub"],
        input_text="",
        expect_exit="nonzero",
        expect_patterns=[
            r"error: cache directory '/dev/null/sub' is not writable"]))
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="./mot3d_experiments")
    parser.add_argument("--full", action="store_true",
                        help="also re-verify every golden baseline")
    parser.add_argument("--bench", action="store_true",
                        help="also exercise the bench_scale guardrail contract")
    parser.add_argument("--bench-binary", default="./bench_scale")
    parser.add_argument("--obs", action="store_true",
                        help="also exercise the observability contract")
    parser.add_argument("--serve", action="store_true",
                        help="also exercise the sweep-service serve/batch "
                             "contract")
    opts = parser.parse_args()

    results = smoke_tests(opts.binary)
    if opts.full:
        results += full_tests(opts.binary)
    if opts.bench:
        results += bench_tests(opts.bench_binary)
    if opts.obs:
        results += obs_tests(opts.binary)
    if opts.serve:
        results += serve_tests(opts.binary)

    print("\n==== soak harness summary ====")
    failures = 0
    for r in results:
        status = "PASS" if r.success else "FAIL"
        print(f"  [{status}] {r.name}: {r.details}")
        failures += 0 if r.success else 1
    print(f"{len(results) - failures}/{len(results)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
