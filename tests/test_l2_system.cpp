// Unit tests for the banked stacked L2: hit/miss timing, bank conflicts,
// miss refills over the Miss bus, dirty write-backs, flush for
// power-gating, and response back-pressure.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mem/dram.hpp"
#include "mem/l2_system.hpp"

namespace mot3d::mem {
namespace {

struct Harness {
  DramConfig dram_cfg;
  L2Config l2_cfg;
  DramBackend dram;
  L2System l2;
  std::vector<MemResponse> responses;
  bool block_responses = false;

  explicit Harness(double dram_ns = 200.0)
      : dram_cfg(make_dram(dram_ns)), l2_cfg(make_l2()), dram(dram_cfg, 32),
        l2(l2_cfg, dram, 0) {
    l2.set_response_injector([this](const MemResponse& r, Cycle) {
      if (block_responses) return false;
      responses.push_back(r);
      return true;
    });
  }

  static DramConfig make_dram(double ns) {
    DramConfig c;
    c.access_latency_ns = ns;
    return c;
  }
  static L2Config make_l2() {
    L2Config c;
    c.total_banks = 4;  // small for testability
    c.bank_capacity_bytes = 1024;
    c.associativity = 2;
    c.access_cycles = 3;
    c.service_cycles = 2;
    return c;
  }

  MemRequest req(BankId bank, Addr addr, bool write = false, std::uint64_t id = 1) {
    return MemRequest{.id = id,
                      .core = 0,
                      .bank = bank,
                      .addr = addr,
                      .is_write = write,
                      .issue_cycle = 0};
  }

  void run_until(Cycle end) {
    for (Cycle t = 0; t <= end; ++t) {
      l2.tick(t);
      dram.tick(t);
    }
  }
};

TEST(L2System, MissThenHitTiming) {
  Harness h;
  h.l2.deliver(h.req(0, 0x1000), 0);
  h.run_until(400);
  ASSERT_EQ(h.responses.size(), 1u);
  EXPECT_FALSE(h.responses[0].l2_hit);
  EXPECT_EQ(h.l2.stats().misses, 1u);

  // Same line again: now a hit, served in ~access_cycles.
  h.responses.clear();
  const Cycle start = 500;
  h.l2.deliver(h.req(0, 0x1000, false, 2), start);
  for (Cycle t = start; t <= start + 20; ++t) {
    h.l2.tick(t);
    h.dram.tick(t);
  }
  ASSERT_EQ(h.responses.size(), 1u);
  EXPECT_TRUE(h.responses[0].l2_hit);
  EXPECT_EQ(h.l2.stats().hits, 1u);
}

TEST(L2System, MissLatencyIncludesDram) {
  Harness h200(200.0);
  Harness h42(42.0);
  h200.l2.deliver(h200.req(0, 0x40), 0);
  h42.l2.deliver(h42.req(0, 0x40), 0);
  Cycle done200 = 0, done42 = 0;
  for (Cycle t = 0; t <= 400; ++t) {
    h200.l2.tick(t);
    h200.dram.tick(t);
    if (done200 == 0 && !h200.responses.empty()) done200 = t;
    h42.l2.tick(t);
    h42.dram.tick(t);
    if (done42 == 0 && !h42.responses.empty()) done42 = t;
  }
  ASSERT_GT(done200, 0u);
  ASSERT_GT(done42, 0u);
  EXPECT_NEAR(static_cast<double>(done200 - done42), 158.0, 5.0);
}

TEST(L2System, BankConflictSerialises) {
  Harness h;
  // Warm two lines of bank 0 (4 banks, 32 B lines: bank = bits 5..6).
  h.l2.deliver(h.req(0, 0x0000, false, 1), 0);
  h.l2.deliver(h.req(0, 0x0400, false, 2), 0);
  h.run_until(500);
  h.responses.clear();

  // Two simultaneous hits on the same bank: second waits service_cycles.
  h.l2.deliver(h.req(0, 0x0000, false, 3), 1000);
  h.l2.deliver(h.req(0, 0x0400, false, 4), 1000);
  for (Cycle t = 1000; t <= 1030; ++t) {
    h.l2.tick(t);
    h.dram.tick(t);
  }
  EXPECT_EQ(h.responses.size(), 2u);
  EXPECT_GT(h.l2.stats().bank_conflict_cycles, 0u);
}

TEST(L2System, DistinctBanksProceedInParallel) {
  Harness h;
  h.l2.deliver(h.req(0, 0x0000, false, 1), 0);
  h.l2.deliver(h.req(1, 0x0020, false, 2), 0);
  h.run_until(400);
  EXPECT_EQ(h.responses.size(), 2u);
  EXPECT_EQ(h.l2.stats().bank_conflict_cycles, 0u);
}

TEST(L2System, WriteMarksLineDirtyAndFlushFindsIt) {
  Harness h;
  h.l2.deliver(h.req(0, 0x0000, true, 1), 0);  // write miss: allocate dirty
  h.run_until(400);
  EXPECT_EQ(h.l2.dirty_lines(0), 1u);
  const std::vector<Addr> dirty = h.l2.flush_bank(0);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0x0000u);
  EXPECT_EQ(h.l2.dirty_lines(0), 0u);
}

TEST(L2System, CapacityEvictionWritesBackDirtyLines) {
  Harness h;
  // Bank 0, one set has 2 ways; three dirty lines in the same set force a
  // dirty eviction to DRAM.  Bank-local set stride: 4 banks * 32 B = 128 B,
  // 16 sets per bank -> same set every 2048 B.
  h.l2.deliver(h.req(0, 0x0000, true, 1), 0);
  h.run_until(400);
  h.l2.deliver(h.req(0, 0x0800, true, 2), 500);
  h.run_until(900);
  h.l2.deliver(h.req(0, 0x1000, true, 3), 1000);
  h.run_until(1500);
  EXPECT_EQ(h.l2.stats().writebacks, 1u);
  EXPECT_GE(h.dram.stats().writes, 1u);
}

TEST(L2System, ResponseBackpressureRetries) {
  Harness h;
  h.block_responses = true;
  h.l2.deliver(h.req(0, 0x0000), 0);
  h.run_until(300);
  EXPECT_TRUE(h.responses.empty());
  EXPECT_FALSE(h.l2.idle());  // response stuck in the bank's out-queue
  h.block_responses = false;
  h.run_until(310);
  EXPECT_EQ(h.responses.size(), 1u);
  EXPECT_TRUE(h.l2.idle());
}

TEST(L2System, ActiveMaskAccounting) {
  Harness h;
  EXPECT_EQ(h.l2.num_active_banks(), 4u);
  h.l2.set_active_banks({true, false, true, false});
  EXPECT_EQ(h.l2.num_active_banks(), 2u);
  EXPECT_NEAR(h.l2.leakage_mw(), 2.0 * h.l2_cfg.leakage_mw_per_bank, 1e-9);
  EXPECT_THROW(h.l2.set_active_banks({true}), std::invalid_argument);
}

TEST(L2System, EnergyAccumulates) {
  Harness h;
  h.l2.deliver(h.req(0, 0x0000), 0);
  h.run_until(400);
  EXPECT_GT(h.l2.stats().dynamic_energy_pj, 0.0);
}

TEST(L2System, HitRateStatistics) {
  Harness h;
  h.l2.deliver(h.req(0, 0x0000, false, 1), 0);
  h.run_until(400);
  h.l2.deliver(h.req(0, 0x0000, false, 2), 500);
  h.l2.deliver(h.req(0, 0x0000, false, 3), 520);
  h.run_until(600);
  EXPECT_EQ(h.l2.stats().accesses(), 3u);
  EXPECT_NEAR(h.l2.stats().hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(L2System, RejectsNonPow2Banks) {
  DramConfig dc;
  DramBackend dram(dc, 4);
  L2Config lc;
  lc.total_banks = 3;
  EXPECT_THROW(L2System(lc, dram, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mot3d::mem
