// Scale-out directed tests: the data structures behind the 256-1024-core
// hot path, exercised past the boundaries where the 16-core paper shape
// never goes.
//
//  * directory sharer bitvectors and arena slices beyond the 64-core word
//    boundary (invalidate fan-out, remap after bank gating, upgrade races);
//  * RingBuffer FIFO semantics across growth and wraparound;
//  * arbitrate_sparse() lockstep-equivalent to the dense recursive walk,
//    powered and gated, over randomized candidate sets;
//  * 256-core heavy-sharing scheduler differential (dense == event) and
//    SweepRunner determinism (threads=1 == threads=N), both via the
//    canonical metrics serialisation so every modeled byte is compared.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "coherence/directory.hpp"
#include "common/ring_buffer.hpp"
#include "core/arbitration_tree.hpp"
#include "core/power_state.hpp"
#include "sim/scenario.hpp"

namespace mot3d {
namespace {

using coherence::CoherenceConfig;
using coherence::CoherenceDirectory;
using coherence::DirOutcome;

// ---- directory beyond the 64-core sharer word ------------------------------

constexpr std::size_t kWideCores = 256;
constexpr std::size_t kWideBanks = 512;

CoherenceConfig wide_dir_cfg() {
  CoherenceConfig cc;
  cc.total_cores = kWideCores;
  cc.total_banks = kWideBanks;
  cc.line_bytes = 32;
  return cc;
}

MemRequest wide_req(CoreId core, Addr line, ReqKind kind) {
  return MemRequest{.id = 0,
                    .core = core,
                    .bank = static_cast<BankId>((line >> 5) & (kWideBanks - 1)),
                    .addr = line,
                    .is_write = kind == ReqKind::kWriteback,
                    .issue_cycle = 0,
                    .kind = kind};
}

BankId wide_bank(Addr line) {
  return static_cast<BankId>((line >> 5) & (kWideBanks - 1));
}

/// Build a Shared sharer set of exactly `sharers` (ascending) on `line`.
/// The first GetS creates E{s0}; the second invalidates s0 and shares; s0
/// then re-joins, so every listed core ends up a sharer.
void build_sharers(CoherenceDirectory& dir, Addr line,
                   const std::vector<CoreId>& sharers) {
  ASSERT_GE(sharers.size(), 2u);
  (void)dir.on_request(wide_req(sharers[0], line, ReqKind::kGetS), wide_bank(line));
  (void)dir.on_request(wide_req(sharers[1], line, ReqKind::kGetS), wide_bank(line));
  (void)dir.on_request(wide_req(sharers[0], line, ReqKind::kGetS), wide_bank(line));
  for (std::size_t i = 2; i < sharers.size(); ++i) {
    (void)dir.on_request(wide_req(sharers[i], line, ReqKind::kGetS),
                         wide_bank(line));
  }
}

TEST(ScaleOutDirectory, InvalidateFanOutCrossesSharerWordBoundaries) {
  CoherenceDirectory dir(wide_dir_cfg());
  // One sharer in each of the four 64-bit words of a 256-core bitvector,
  // plus both sides of every word boundary.
  const std::vector<CoreId> sharers = {0, 63, 64, 65, 127, 128, 191, 192, 255};
  const Addr line = 0x10000;
  build_sharers(dir, line, sharers);
  // A writer outside the set must invalidate every sharer, in ascending
  // core order (the fan-out order the fabric serialises).
  const DirOutcome wr = dir.on_request(wide_req(10, line, ReqKind::kGetX),
                                       wide_bank(line));
  ASSERT_EQ(wr.invalidate.size(), sharers.size());
  for (std::size_t i = 0; i < sharers.size(); ++i) {
    EXPECT_EQ(wr.invalidate[i], sharers[i]) << "fan-out position " << i;
  }
  EXPECT_FALSE(wr.install_shared);
}

TEST(ScaleOutDirectory, UpgradeRaceAcrossWordBoundaryAt256Cores) {
  CoherenceDirectory dir(wide_dir_cfg());
  // Sharers straddle three different words: {5, 70, 200}.
  const Addr line = 0x20000;
  build_sharers(dir, line, {5, 70, 200});
  // Core 70 wins the upgrade race: bare grant, the other two invalidated.
  const DirOutcome up = dir.on_request(wide_req(70, line, ReqKind::kUpgrade),
                                       wide_bank(line));
  EXPECT_TRUE(up.upgrade_ack);
  ASSERT_EQ(up.invalidate.size(), 2u);
  EXPECT_EQ(up.invalidate[0], 5u);
  EXPECT_EQ(up.invalidate[1], 200u);
  // Core 5 lost the race (no longer a sharer): its upgrade must degenerate
  // to a full GetX that invalidates the new owner — a bare grant would
  // resurrect a copy the directory already dropped.
  const DirOutcome lost = dir.on_request(wide_req(5, line, ReqKind::kUpgrade),
                                         wide_bank(line));
  EXPECT_FALSE(lost.upgrade_ack);
  ASSERT_EQ(lost.invalidate.size(), 1u);
  EXPECT_EQ(lost.invalidate[0], 70u);
}

TEST(ScaleOutDirectory, RemapAfterBankGatingKeepsWideSharerSets) {
  CoherenceDirectory dir(wide_dir_cfg());
  // Entries on several source banks, each with sharers above core 64 so a
  // migration that truncated bitvectors to one word would be caught.
  const std::vector<CoreId> sharers = {3, 66, 130, 250};
  std::vector<Addr> lines;
  for (Addr k = 0; k < 8; ++k) lines.push_back(0x40000 + k * 0x20);
  for (Addr line : lines) build_sharers(dir, line, sharers);
  const std::size_t before = dir.occupancy();
  ASSERT_EQ(before, lines.size());

  // Gate all but 16 banks: fold every logical bank onto physical 0..15.
  dir.remap([](BankId logical) { return static_cast<BankId>(logical & 15); });
  EXPECT_EQ(dir.occupancy(), before) << "migration must not lose entries";
  for (BankId b = 16; b < kWideBanks; ++b) {
    ASSERT_EQ(dir.slice_entries(b), 0u) << "entry left on gated bank " << b;
  }

  // The migrated entries must still know their full sharer sets: a writer
  // fans out to all four, including the cores beyond the first word.
  for (Addr line : lines) {
    const BankId new_bank = static_cast<BankId>(wide_bank(line) & 15);
    const DirOutcome wr =
        dir.on_request(wide_req(20, line, ReqKind::kGetX), new_bank);
    ASSERT_EQ(wr.invalidate.size(), sharers.size()) << "line " << line;
    for (std::size_t i = 0; i < sharers.size(); ++i) {
      EXPECT_EQ(wr.invalidate[i], sharers[i]);
    }
  }
}

// ---- RingBuffer ------------------------------------------------------------

TEST(ScaleOutRingBuffer, FifoOrderSurvivesWraparoundAndGrowth) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  // Interleave pushes and pops so head_ walks away from slot 0, then push
  // enough to force growth while the live region wraps the backing array.
  for (int i = 0; i < 6; ++i) rb.push_back(i);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  for (int i = 6; i < 40; ++i) rb.push_back(i);  // wraps, then doubles twice
  EXPECT_EQ(rb.size(), 36u);
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb.at(i), static_cast<int>(i) + 4) << "at(" << i << ")";
  }
  for (int expect = 4; expect < 40; ++expect) {
    ASSERT_FALSE(rb.empty());
    EXPECT_EQ(rb.front(), expect);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
  rb.push_back(99);
  EXPECT_EQ(rb.front(), 99);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

// ---- sparse arbitration ----------------------------------------------------

/// Deterministic xorshift so the candidate sets are reproducible.
std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// Drive two trees in lockstep — dense recursive arbitrate() vs
/// arbitrate_sparse() — over randomized candidate sets, comparing every
/// grant.  Both trees mutate round-robin pointers on the granted spine, so
/// equal winners each round imply equal internal state throughout.
void lockstep_arbitration(std::size_t total_cores, const core::PowerState* state,
                          std::uint64_t seed, int rounds) {
  core::ArbitrationTree dense(total_cores);
  core::ArbitrationTree sparse(total_cores);
  if (state != nullptr) {
    dense.configure(*state);
    sparse.configure(*state);
  }
  std::vector<bool> requesting(total_cores, false);
  std::vector<CoreId> candidates;
  std::uint64_t s = seed;
  for (int round = 0; round < rounds; ++round) {
    std::fill(requesting.begin(), requesting.end(), false);
    candidates.clear();
    // ~1/8 of the active cores request each round, in scrambled order.
    for (CoreId c = 0; c < total_cores; ++c) {
      if (state != nullptr && !state->core_active(c)) continue;
      if ((xorshift(s) & 7) == 0) {
        requesting[c] = true;
        candidates.push_back(c);
      }
    }
    // Shuffle candidate order: arbitrate_sparse must not depend on it.
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[xorshift(s) % i]);
    }
    const auto want = dense.arbitrate(requesting);
    const auto got = sparse.arbitrate_sparse(candidates.data(), candidates.size());
    ASSERT_EQ(want.has_value(), got.has_value()) << "round " << round;
    if (want.has_value()) {
      ASSERT_EQ(*want, *got) << "round " << round;
    }
  }
}

TEST(ScaleOutArbitration, SparseMatchesDenseAt256Cores) {
  lockstep_arbitration(256, nullptr, 0x9e3779b97f4a7c15ull, 2000);
}

TEST(ScaleOutArbitration, SparseMatchesDenseAt1024Cores) {
  lockstep_arbitration(1024, nullptr, 0xdeadbeefcafef00dull, 500);
}

TEST(ScaleOutArbitration, SparseMatchesDenseUnderCoreGating) {
  // Quarter of the cores powered: gated subtrees must block request-wire
  // propagation in the sparse path exactly as configure() gates descend().
  const core::PowerState state("PC64", 256, 64, 512, 512);
  lockstep_arbitration(256, &state, 0x123456789abcdef1ull, 2000);
}

TEST(ScaleOutArbitration, SparseEmptyAndSingleton) {
  core::ArbitrationTree tree(256);
  EXPECT_FALSE(tree.arbitrate_sparse(nullptr, 0).has_value());
  const CoreId only = 200;
  const auto got = tree.arbitrate_sparse(&only, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, only);
}

// ---- 256-core cluster: scheduler differential + sweep determinism ----------

core::PowerState full_256() {
  return core::PowerState("Full256x512", 256, 256, 512, 512);
}

sim::ScenarioSpec heavy_sharing_256_spec() {
  sim::ScenarioSpec spec;
  spec.name = "scale_out_test";
  spec.kind = sim::ScenarioSpec::Kind::kSweep;
  spec.apps = {"all_to_all", "producer_consumer"};
  spec.fabrics = {cluster::Fabric::kMot};
  spec.power_states = {full_256()};
  spec.dram_presets = {mem::DramPreset::kDdr3_200ns};
  spec.has_golden = false;
  return spec;
}

sim::ScenarioOptions scale_out_options(unsigned threads,
                                       cluster::SchedulerMode scheduler) {
  sim::ScenarioOptions opt;
  opt.scale = 0.01;
  opt.seed = 42;
  opt.threads = threads;
  opt.scheduler = scheduler;
  return opt;
}

TEST(ScaleOutCluster, SchedulerDifferential256CoreHeavySharing) {
  // The canonical metrics document serialises every modeled quantity of
  // every run; byte equality is the strongest dense==event check we have.
  const sim::ScenarioSpec spec = heavy_sharing_256_spec();
  const std::string dense = sim::scenario_metrics_json(sim::run_scenario(
      spec, scale_out_options(1, cluster::SchedulerMode::kDenseTick)));
  const std::string event = sim::scenario_metrics_json(sim::run_scenario(
      spec, scale_out_options(1, cluster::SchedulerMode::kEventDriven)));
  EXPECT_EQ(dense, event);
}

TEST(ScaleOutCluster, SweepDeterminism256CoreThreads1VsN) {
  const sim::ScenarioSpec spec = heavy_sharing_256_spec();
  const std::string one = sim::scenario_metrics_json(sim::run_scenario(
      spec, scale_out_options(1, cluster::SchedulerMode::kEventDriven)));
  const std::string many = sim::scenario_metrics_json(sim::run_scenario(
      spec, scale_out_options(4, cluster::SchedulerMode::kEventDriven)));
  EXPECT_EQ(one, many);
}

}  // namespace
}  // namespace mot3d
