// Unit tests for the DRAM backend: latency presets, Miss-bus round-robin
// fairness, channel serialisation and the optional open-page policy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mem/dram.hpp"

namespace mot3d::mem {
namespace {

DramConfig cfg_200() {
  DramConfig c;
  c.access_latency_ns = 200.0;
  c.bus_transfer_cycles = 2;
  c.channel_burst_cycles = 4;
  return c;
}

TEST(DramPresets, PaperLatencies) {
  EXPECT_DOUBLE_EQ(dram_latency_ns(DramPreset::kDdr3_200ns), 200.0);
  EXPECT_DOUBLE_EQ(dram_latency_ns(DramPreset::kWideIo_63ns), 63.0);
  EXPECT_DOUBLE_EQ(dram_latency_ns(DramPreset::kWeis3d_42ns), 42.0);
  EXPECT_NE(std::string(dram_preset_name(DramPreset::kWideIo_63ns)).find("63"),
            std::string::npos);
}

TEST(Dram, SingleReadLatency) {
  DramBackend dram(cfg_200(), 4);
  Cycle done_at = 0;
  dram.read(0, 0x1000, 0, [&](std::uint32_t, Addr, Cycle done) { done_at = done; });
  for (Cycle t = 0; t <= 300 && done_at == 0; ++t) dram.tick(t);
  // bus (2) + latency (200); completion fires on the tick after due.
  EXPECT_GE(done_at, 202u);
  EXPECT_LE(done_at, 208u);
  EXPECT_TRUE(dram.idle());
  EXPECT_EQ(dram.stats().reads, 1u);
}

TEST(Dram, WritesArePostedAndDrain) {
  DramBackend dram(cfg_200(), 4);
  dram.write(1, 0x2000, 0);
  dram.write(1, 0x3000, 0);
  for (Cycle t = 0; t <= 50; ++t) dram.tick(t);
  EXPECT_TRUE(dram.idle());
  EXPECT_EQ(dram.stats().writes, 2u);
}

TEST(Dram, RoundRobinAcrossRequesters) {
  // Three requesters each enqueue 2 reads at t=0; grants must interleave
  // 0,1,2,0,1,2 (the paper's round-robin Miss bus).
  DramBackend dram(cfg_200(), 3);
  std::vector<std::uint32_t> completion_order;
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (int k = 0; k < 2; ++k) {
      dram.read(r, 0x1000 * r + 0x10 * k, 0,
                [&](std::uint32_t req, Addr, Cycle) { completion_order.push_back(req); });
    }
  }
  for (Cycle t = 0; t <= 400; ++t) dram.tick(t);
  ASSERT_EQ(completion_order.size(), 6u);
  EXPECT_EQ(completion_order, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Dram, QueueingDelaysLaterRequests) {
  DramBackend dram(cfg_200(), 1);
  std::vector<Cycle> done;
  for (int k = 0; k < 4; ++k) {
    dram.read(0, 0x40u * k, 0, [&](std::uint32_t, Addr, Cycle d) { done.push_back(d); });
  }
  for (Cycle t = 0; t <= 600; ++t) dram.tick(t);
  ASSERT_EQ(done.size(), 4u);
  // Channel serialisation spaces completions by >= burst cycles.
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i], done[i - 1] + 4);
  }
}

TEST(Dram, WaitCyclesAccounted) {
  DramBackend dram(cfg_200(), 1);
  int completions = 0;
  for (int k = 0; k < 3; ++k) {
    dram.read(0, 0x40u * k, 0, [&](std::uint32_t, Addr, Cycle) { ++completions; });
  }
  for (Cycle t = 0; t <= 600; ++t) dram.tick(t);
  EXPECT_EQ(completions, 3);
  EXPECT_GT(dram.stats().total_wait_cycles, 0u);
}

TEST(Dram, FasterPresetCompletesSooner) {
  DramConfig fast = cfg_200();
  fast.access_latency_ns = 42.0;
  DramBackend d42(fast, 1);
  DramBackend d200(cfg_200(), 1);
  Cycle c42 = 0, c200 = 0;
  d42.read(0, 0, 0, [&](std::uint32_t, Addr, Cycle d) { c42 = d; });
  d200.read(0, 0, 0, [&](std::uint32_t, Addr, Cycle d) { c200 = d; });
  for (Cycle t = 0; t <= 300; ++t) {
    d42.tick(t);
    d200.tick(t);
  }
  EXPECT_LT(c42, c200);
  EXPECT_NEAR(static_cast<double>(c200 - c42), 158.0, 3.0);
}

TEST(Dram, OpenPagePolicyTracksRowHits) {
  DramConfig c = cfg_200();
  c.open_page_policy = true;
  DramBackend dram(c, 1);
  std::vector<Cycle> done;
  // Same 4 KB page twice, then a different page.
  dram.read(0, 0x0000, 0, [&](std::uint32_t, Addr, Cycle d) { done.push_back(d); });
  dram.read(0, 0x0100, 0, [&](std::uint32_t, Addr, Cycle d) { done.push_back(d); });
  dram.read(0, 0x9000, 0, [&](std::uint32_t, Addr, Cycle d) { done.push_back(d); });
  for (Cycle t = 0; t <= 800; ++t) dram.tick(t);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(dram.stats().page_hits, 1u);
  EXPECT_EQ(dram.stats().page_misses, 2u);
  // The row hit is served faster than a full access.
  EXPECT_LT(done[1] - done[0], 200u);
}

TEST(Dram, FirstAccessIsAlwaysAPageMiss) {
  // Regression: the open-row tracker starts at kNoOpenPage.  A sentinel
  // that aliased a real page number (page 0, or a truncated kNeverCycle)
  // would count the very first access as a spurious row hit.
  DramConfig c = cfg_200();
  c.open_page_policy = true;
  DramBackend dram(c, 1);
  Cycle done = 0;
  dram.read(0, 0x0000, 0, [&](std::uint32_t, Addr, Cycle d) { done = d; });
  for (Cycle t = 0; t <= 300; ++t) dram.tick(t);
  EXPECT_EQ(dram.stats().page_misses, 1u);
  EXPECT_EQ(dram.stats().page_hits, 0u);
  // The miss pays the full access latency, not the row-hit discount.
  EXPECT_GE(done, 202u);
}

TEST(Dram, RowHitSavingMatchesConfiguredFraction) {
  DramConfig c = cfg_200();
  c.open_page_policy = true;
  DramBackend dram(c, 1);
  Cycle done_miss = 0, done_hit = 0;
  dram.read(0, 0x0000, 0, [&](std::uint32_t, Addr, Cycle d) { done_miss = d; });
  for (Cycle t = 0; t <= 300; ++t) dram.tick(t);
  ASSERT_TRUE(dram.idle());
  dram.read(0, 0x0040, 300, [&](std::uint32_t, Addr, Cycle d) { done_hit = d; });
  for (Cycle t = 300; t <= 600; ++t) dram.tick(t);
  ASSERT_EQ(dram.stats().page_hits, 1u);
  // Identical pipelines except the access latency: the service-time delta
  // is exactly the configured row-hit saving.
  const Cycle miss_lat = done_miss - 0;
  const Cycle hit_lat = done_hit - 300;
  EXPECT_EQ(miss_lat - hit_lat,
            static_cast<Cycle>(std::llround(c.access_latency_ns *
                                            c.row_hit_fraction_saved)));
}

TEST(Dram, OpenPageSequenceHitsAndMissesDirected) {
  DramConfig c = cfg_200();
  c.open_page_policy = true;
  DramBackend dram(c, 1);
  // Page sequence 0,0,1,1,0: hits at the two repeats, misses elsewhere.
  const Addr seq[] = {0x0000, 0x0800, 0x1000, 0x1800, 0x0000};
  int completions = 0;
  for (Addr a : seq) {
    dram.read(0, a, 0, [&](std::uint32_t, Addr, Cycle) { ++completions; });
  }
  for (Cycle t = 0; t <= 2000; ++t) dram.tick(t);
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(dram.stats().page_hits, 2u);
  EXPECT_EQ(dram.stats().page_misses, 3u);
}

TEST(Dram, EnergyAccounted) {
  DramBackend dram(cfg_200(), 1);
  dram.read(0, 0, 0, [](std::uint32_t, Addr, Cycle) {});
  dram.write(0, 64, 0);
  for (Cycle t = 0; t <= 300; ++t) dram.tick(t);
  EXPECT_DOUBLE_EQ(dram.stats().dynamic_energy_pj,
                   2.0 * cfg_200().energy_per_access_pj);
}

TEST(Dram, RejectsZeroRequesters) {
  EXPECT_THROW(DramBackend(cfg_200(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace mot3d::mem
