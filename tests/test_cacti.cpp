// Unit tests for the CACTI-lite SRAM bank model (substitute for CACTI 4.0
// [13]): monotone scaling with capacity, associativity penalties, and the
// Table I anchor points (64 KB L2 bank, 4 KB L1).
#include <gtest/gtest.h>

#include "cacti/sram_model.hpp"

namespace mot3d::cacti {
namespace {

SramBankConfig bank(std::size_t kb, std::size_t assoc = 8) {
  SramBankConfig c;
  c.capacity_bytes = kb * 1024;
  c.associativity = assoc;
  return c;
}

TEST(Cacti, AccessTimeGrowsWithCapacity) {
  const double t4 = evaluate(bank(4)).access_ns;
  const double t64 = evaluate(bank(64)).access_ns;
  const double t256 = evaluate(bank(256)).access_ns;
  EXPECT_LT(t4, t64);
  EXPECT_LT(t64, t256);
}

TEST(Cacti, EnergyGrowsWithCapacity) {
  EXPECT_LT(evaluate(bank(4)).read_energy_pj, evaluate(bank(64)).read_energy_pj);
  EXPECT_LT(evaluate(bank(64)).read_energy_pj, evaluate(bank(512)).read_energy_pj);
}

TEST(Cacti, LeakageLinearInCapacity) {
  const double l64 = evaluate(bank(64)).leakage_mw;
  const double l128 = evaluate(bank(128)).leakage_mw;
  EXPECT_NEAR(l128 / l64, 2.0, 1e-9);
}

TEST(Cacti, WritesCostMoreThanReads) {
  const SramBankResult r = evaluate(bank(64));
  EXPECT_GT(r.write_energy_pj, r.read_energy_pj);
  EXPECT_LT(r.write_energy_pj, 1.25 * r.read_energy_pj);
}

TEST(Cacti, AssociativityPenalty) {
  EXPECT_LT(evaluate(bank(64, 1)).access_ns, evaluate(bank(64, 8)).access_ns);
  EXPECT_LT(evaluate(bank(64, 1)).read_energy_pj, evaluate(bank(64, 8)).read_energy_pj);
}

TEST(Cacti, TechnologyScaling) {
  SramBankConfig c90 = bank(64);
  c90.tech_nm = 90.0;
  EXPECT_NEAR(evaluate(c90).access_ns / evaluate(bank(64)).access_ns, 2.0, 1e-6);
  EXPECT_NEAR(evaluate(c90).read_energy_pj / evaluate(bank(64)).read_energy_pj, 4.0,
              1e-6);
}

TEST(Cacti, Anchor64KbBank) {
  // The paper's L2 bank: 64 KB, 8-way, 32 B line at 45 nm.
  const SramBankResult r = evaluate(bank(64));
  EXPECT_GT(r.access_ns, 0.8);
  EXPECT_LT(r.access_ns, 1.3);
  EXPECT_GT(r.read_energy_pj, 25.0);
  EXPECT_LT(r.read_energy_pj, 60.0);
  EXPECT_GT(r.leakage_mw, 0.5);
  EXPECT_LT(r.leakage_mw, 3.0);
  EXPECT_GT(r.area_mm2, 0.1);
  EXPECT_LT(r.area_mm2, 1.0);
}

TEST(Cacti, BankAccessCyclesTableI) {
  // 64 KB bank at 1 GHz: 3 cycles including the TSV-bus interface stage —
  // the bank term of Table I's L2 latencies (12 = 5+3+4 etc.).
  EXPECT_EQ(access_cycles(bank(64), 1.0), 3u);
}

TEST(Cacti, L1StyleBankIsSingleCycleArray) {
  // A 4 KB 4-way L1 array fits in one cycle (+1 interface).
  SramBankConfig l1 = bank(4, 4);
  EXPECT_EQ(access_cycles(l1, 1.0), 2u);
  EXPECT_LT(evaluate(l1).access_ns, 1.0);
}

TEST(Cacti, CycleTimeBelowAccessTime) {
  const SramBankResult r = evaluate(bank(64));
  EXPECT_LT(r.cycle_ns, r.access_ns);
  EXPECT_GT(r.cycle_ns, 0.0);
}

}  // namespace
}  // namespace mot3d::cacti
