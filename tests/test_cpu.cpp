// Unit tests for the trace-driven in-order core: exact cycle accounting on
// scripted traces, L1 hit/miss behaviour, blocking L2 transactions, dirty
// write-back sequencing, instruction-miss refills and barrier spinning.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "cpu/barrier.hpp"
#include "cpu/core.hpp"
#include "cpu/trace.hpp"

namespace mot3d::cpu {
namespace {

class ScriptedTrace final : public TraceSource {
 public:
  explicit ScriptedTrace(std::vector<TraceRecord> records)
      : records_(records.begin(), records.end()) {}
  TraceRecord next() override {
    if (records_.empty()) return TraceRecord::end();
    TraceRecord r = records_.front();
    records_.pop_front();
    return r;
  }

 private:
  std::deque<TraceRecord> records_;
};

struct Env {
  BarrierController barriers{1};
  std::vector<std::pair<CoreId, Addr>> ifetches;
  ScriptedTrace trace;
  CoreConfig cfg;
  Core core;

  explicit Env(std::vector<TraceRecord> records, std::size_t participants = 1)
      : trace(std::move(records)),
        cfg(),
        core(0, cfg, trace, barriers,
             [this](CoreId c, Addr a, Cycle) { ifetches.emplace_back(c, a); }) {
    barriers.set_participants(participants);
  }

  /// Tick + auto-accept any injection; returns the accepted request if any.
  std::optional<MemRequest> tick(Cycle now) {
    core.tick(now);
    if (core.pending_request().has_value()) {
      MemRequest r = *core.pending_request();
      core.injection_accepted(now);
      return r;
    }
    return std::nullopt;
  }

  void respond(const MemRequest& req, Cycle now, bool hit = true) {
    core.on_response(MemResponse{.id = req.id,
                                 .core = req.core,
                                 .bank = req.bank,
                                 .addr = req.addr,
                                 .is_write = req.is_write,
                                 .l2_hit = hit,
                                 .issue_cycle = req.issue_cycle},
                     now);
  }
};

TEST(Core, ComputeBurstTakesExactCycles) {
  Env env({TraceRecord::compute(5)});
  Cycle t = 0;
  for (; t < 20 && !env.core.done(); ++t) env.tick(t);
  // 5 compute cycles + 1 cycle consuming kEnd.
  EXPECT_EQ(env.core.stats().busy_cycles, 5u);
  EXPECT_EQ(env.core.stats().instructions, 5u);
  EXPECT_TRUE(env.core.done());
  EXPECT_EQ(env.core.stats().finish_cycle, 5u);
}

TEST(Core, L1HitCostsOneCycle) {
  // Two accesses to the same line: miss (refill) then hit.
  Env env({TraceRecord::mem(MemOp::kLoad, 0x100),
           TraceRecord::mem(MemOp::kLoad, 0x104)});
  auto req = env.tick(0);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->addr, 0x100u);  // line aligned
  EXPECT_FALSE(req->is_write);
  env.respond(*req, 10, true);
  env.tick(11);  // second load: L1 hit, 1 busy cycle
  env.tick(12);  // consumes kEnd
  EXPECT_TRUE(env.core.done());
  EXPECT_EQ(env.core.l1d_stats().read_hits, 1u);
  EXPECT_EQ(env.core.l1d_stats().read_misses, 1u);
  EXPECT_EQ(env.core.stats().l2_requests, 1u);
}

TEST(Core, MissStallsUntilResponse) {
  Env env({TraceRecord::mem(MemOp::kLoad, 0x200), TraceRecord::compute(1)});
  auto req = env.tick(0);
  ASSERT_TRUE(req.has_value());
  for (Cycle t = 1; t <= 11; ++t) env.tick(t);  // stalled
  EXPECT_FALSE(env.core.done());
  EXPECT_GE(env.core.stats().stall_cycles, 11u);
  env.respond(*req, 12);
  env.tick(13);  // compute
  env.tick(14);  // end
  EXPECT_TRUE(env.core.done());
}

TEST(Core, StoreMissRefillsThenDirtiesLine) {
  Env env({TraceRecord::mem(MemOp::kStore, 0x300)});
  auto req = env.tick(0);
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->is_write);  // refill fetch, write-allocate
  env.respond(*req, 5);
  env.tick(6);
  EXPECT_TRUE(env.core.done());
  EXPECT_EQ(env.core.l1d_stats().write_misses, 1u);
}

TEST(Core, DirtyVictimWritesBackBeforeContinuing) {
  // Fill one L1 set (4 ways; 4 KB/32 B/4 = 32 sets, so same set every
  // 1024 B) with stores, then evict: the victim must go out as a write.
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 5; ++i) {
    recs.push_back(TraceRecord::mem(MemOp::kStore, 0x400ull * i * 1 + 0x0));
  }
  // Set stride for the default 4 KB 4-way L1: 32 sets * 32 B = 1024 B.
  recs.clear();
  for (int i = 0; i < 5; ++i) {
    recs.push_back(TraceRecord::mem(MemOp::kStore, 0x400ull * i));
  }
  Env env(std::move(recs));
  Cycle t = 0;
  int writebacks = 0;
  std::optional<MemRequest> pending;
  while (!env.core.done() && t < 500) {
    pending = env.tick(t);
    if (pending.has_value()) {
      if (pending->is_write) ++writebacks;
      env.respond(*pending, t + 3);
      t += 3;
    }
    ++t;
  }
  EXPECT_TRUE(env.core.done());
  // 5 store misses fill 4 ways; the 5th evicts a dirty victim.
  EXPECT_EQ(writebacks, 1);
  EXPECT_EQ(env.core.stats().l1_writebacks, 1u);
  EXPECT_EQ(env.core.stats().l2_requests, 6u);  // 5 refills + 1 write-back
}

TEST(Core, IFetchMissGoesToMissBusNotL2) {
  Env env({TraceRecord::mem(MemOp::kInstrFetch, 0x10000),
           TraceRecord::compute(1)});
  env.tick(0);
  ASSERT_EQ(env.ifetches.size(), 1u);
  EXPECT_EQ(env.ifetches[0].second, 0x10000u);
  EXPECT_FALSE(env.core.pending_request().has_value());  // no L2 traffic
  env.tick(1);
  env.core.on_ifetch_refill(0x10000, 2);
  env.tick(3);  // compute
  env.tick(4);
  EXPECT_TRUE(env.core.done());
  EXPECT_EQ(env.core.stats().ifetch_misses, 1u);
}

TEST(Core, IFetchHitIsFree) {
  Env env({TraceRecord::mem(MemOp::kInstrFetch, 0x10000),
           TraceRecord::mem(MemOp::kInstrFetch, 0x10004),
           TraceRecord::compute(2)});
  env.tick(0);  // miss
  env.core.on_ifetch_refill(0x10000, 1);
  // Next tick: the I-hit chains straight into the compute burst.
  env.tick(2);
  EXPECT_EQ(env.core.stats().busy_cycles, 1u);
  env.tick(3);
  env.tick(4);
  EXPECT_TRUE(env.core.done());
  EXPECT_EQ(env.core.l1i_stats().read_hits, 1u);
}

TEST(Core, BarrierSpinsUntilReleased) {
  BarrierController barriers(2);
  ScriptedTrace t0({TraceRecord::barrier(0), TraceRecord::compute(1)});
  CoreConfig cfg;
  Core core(0, cfg, t0, barriers, [](CoreId, Addr, Cycle) {});
  core.tick(0);  // arrives at barrier (1 busy cycle)
  for (Cycle t = 1; t <= 5; ++t) core.tick(t);
  EXPECT_EQ(core.stats().spin_cycles, 5u);
  EXPECT_FALSE(core.done());
  barriers.arrive(0);  // second participant arrives
  core.tick(6);        // released: executes compute
  core.tick(7);
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.stats().spin_cycles, 5u);
}

TEST(Core, BankHashing) {
  // Consecutive lines hit consecutive logical banks (32-bank interleave).
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 3; ++i) {
    recs.push_back(TraceRecord::mem(MemOp::kLoad, 0x8000'0000ull + 32 * i));
  }
  Env env(std::move(recs));
  std::vector<BankId> banks;
  Cycle t = 0;
  while (!env.core.done() && t < 100) {
    auto req = env.tick(t);
    if (req.has_value()) {
      banks.push_back(req->bank);
      env.respond(*req, t + 2);
      t += 2;
    }
    ++t;
  }
  ASSERT_EQ(banks.size(), 3u);
  EXPECT_EQ(banks[0] + 1, banks[1]);
  EXPECT_EQ(banks[1] + 1, banks[2]);
}

TEST(Core, DoneCoreStaysIdle) {
  Env env({TraceRecord::compute(1)});
  env.tick(0);
  env.tick(1);
  EXPECT_TRUE(env.core.done());
  env.tick(2);
  env.tick(3);
  EXPECT_EQ(env.core.stats().idle_cycles, 3u);  // end-consume + 2 idle ticks
}

TEST(Barrier, ReleaseSemantics) {
  BarrierController b(3);
  b.arrive(0);
  b.arrive(0);
  EXPECT_FALSE(b.released(0));
  b.arrive(0);
  EXPECT_TRUE(b.released(0));
  EXPECT_FALSE(b.released(1));
  EXPECT_EQ(b.arrivals(0), 3u);
  EXPECT_EQ(b.arrivals(7), 0u);
}

}  // namespace
}  // namespace mot3d::cpu
