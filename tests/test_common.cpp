// Unit tests for the common substrate: deterministic RNG, statistics,
// table rendering, and the shared integer helpers.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace mot3d {
namespace {

TEST(Types, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(log2_exact(1ull << 40), 40u);
}

TEST(Types, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Types, IsWrite) {
  EXPECT_TRUE(is_write(MemOp::kStore));
  EXPECT_FALSE(is_write(MemOp::kLoad));
  EXPECT_FALSE(is_write(MemOp::kInstrFetch));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  EXPECT_FALSE(r.next_bool(0.0));
  EXPECT_TRUE(r.next_bool(1.0));
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApprox) {
  Rng r(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_geometric(0.25, 1000);
  // failures before success with p=0.25: mean = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricRespectsCap) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(r.next_geometric(0.01, 5), 5u);
}

TEST(RunningStat, Basics) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10, 4);  // [0,10) [10,20) [20,30) [30,40) + overflow
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(35);
  h.add(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, MeanAndQuantile) {
  Histogram h(1, 128);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99.0, 1.0);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Histogram, Reset) {
  Histogram h(1, 8);
  h.add(3);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t("demo");
  t.set_header({"a", "bbbb"});
  t.add_row({"x", "y"});
  t.add_row({"longer", "z"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace mot3d
