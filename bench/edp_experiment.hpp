// Shared implementation of the Fig. 7(a) / Fig. 8(a,b) EDP experiments:
// 8 SPLASH-2 apps x 4 power states on the MoT cluster at a given DRAM
// latency, EDP normalised to Full connection.  All 32 runs are queued on
// the Sweep up-front and executed across the --threads pool; the tables
// consume them in queue order, so output is identical at any thread count.
#pragma once

#include <iostream>
#include <map>
#include <vector>

#include "harness.hpp"

namespace mot3d::bench {

struct EdpSeries {
  /// edp[state][app] normalised to Full.
  std::map<std::string, std::map<std::string, double>> norm_edp;
  std::map<std::string, std::map<std::string, double>> norm_time;
};

inline EdpSeries run_edp_experiment(mem::DramPreset preset, const Options& opt,
                                    const char* figure_tag) {
  const auto& states = core::PowerState::paper_states();

  print_header(std::string(figure_tag) + ": EDP per power state, DRAM " +
                   std::to_string(static_cast<int>(mem::dram_latency_ns(preset))) +
                   " ns",
               opt);

  Sweep sweep(opt, figure_tag);
  std::map<std::string, std::map<std::string, std::size_t>> idx;  // app -> state -> i
  for (const std::string& app : workload::splash2_names()) {
    for (const core::PowerState& s : states) {
      idx[app][s.name()] = sweep.add(app, cluster::Fabric::kMot, s, preset);
    }
  }
  sweep.run();

  EdpSeries series;
  TextTable tbl("EDP normalised to Full connection (exec time normalised in parens)");
  std::vector<std::string> header = {"benchmark"};
  for (const auto& s : states) header.push_back(s.name());
  tbl.set_header(header);

  for (const std::string& app : workload::splash2_names()) {
    double base_edp = 0.0, base_cycles = 0.0;
    std::vector<std::string> row = {app};
    for (const core::PowerState& s : states) {
      const cluster::SimResult& r = sweep[idx[app][s.name()]];
      if (s.name() == "Full") {
        base_edp = r.edp_pj_s;
        base_cycles = static_cast<double>(r.cycles);
      }
      const double ne = r.edp_pj_s / base_edp;
      const double nt = static_cast<double>(r.cycles) / base_cycles;
      series.norm_edp[s.name()][app] = ne;
      series.norm_time[s.name()][app] = nt;
      row.push_back(fmt_fixed(ne, 2) + " (" + fmt_fixed(nt, 2) + ")");
    }
    tbl.add_row(row);
  }
  tbl.print(std::cout);

  // Which apps gain EDP from bank gating at this DRAM speed? (Fig. 8's
  // question: the list must grow as DRAM gets faster.)
  std::cout << "apps with EDP reduced by PC16-MB8:";
  int winners = 0;
  for (const std::string& app : workload::splash2_names()) {
    if (series.norm_edp["PC16-MB8"][app] < 1.0) {
      std::cout << " " << app;
      ++winners;
    }
  }
  std::cout << "  (" << winners << "/8)\n";

  sim::JsonObject extra;
  extra.set("dram_latency_ns", mem::dram_latency_ns(preset));
  sweep.report(extra);
  return series;
}

inline void print_fig7a_paper_comparison(const EdpSeries& s) {
  const std::vector<std::string> limited = {"cholesky", "fft", "volrend", "raytrace"};
  const std::vector<std::string> small_ws = {"fft", "fmm", "volrend", "raytrace",
                                             "water_nsquared"};
  auto redux = [&](const char* state, const std::vector<std::string>& apps) {
    std::vector<double> r;
    for (const auto& a : apps) r.push_back(1.0 - s.norm_edp.at(state).at(a));
    return r;
  };
  const auto pc4mb32 = redux("PC4-MB32", limited);
  const auto pc4mb8 = redux("PC4-MB8", limited);
  const auto pc16mb8 = redux("PC16-MB8", small_ws);

  TextTable t("Fig. 7(a) paper-claim comparison (EDP reduction vs Full)");
  t.set_header({"claim", "measured avg", "measured max", "paper avg", "paper max"});
  t.add_row({"PC4-MB32 on cholesky/fft/volrend/raytrace",
             fmt_percent(average(pc4mb32)), fmt_percent(max_of(pc4mb32)), "44%",
             "66%"});
  t.add_row({"PC4-MB8 on cholesky/fft/volrend/raytrace",
             fmt_percent(average(pc4mb8)), fmt_percent(max_of(pc4mb8)), "52%",
             "77%"});
  t.add_row({"PC16-MB8 on fft/fmm/volrend/raytrace/water",
             fmt_percent(average(pc16mb8)), fmt_percent(max_of(pc16mb8)), "13%",
             "18%"});
  t.print(std::cout);
}

}  // namespace mot3d::bench
