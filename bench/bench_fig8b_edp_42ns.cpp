// Fig. 8(b) — EDP of the four power states with the on-chip 3-D DRAM of
// Weis et al. [16] (42 ns): the fastest miss path, hence the strongest
// case for gating L2 banks.
//
// Thin wrapper over the registered "fig8b_edp_42ns" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig8b_edp_42ns", argc, argv);
}
