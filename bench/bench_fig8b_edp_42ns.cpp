// Fig. 8(b) — EDP of the four power states with the on-chip 3-D DRAM of
// Weis et al. [16] (42 ns): the fastest miss path, hence the strongest
// case for gating L2 banks.
#include "edp_experiment.hpp"

int main(int argc, char** argv) {
  using namespace mot3d::bench;
  const Options opt = parse_options(argc, argv);
  run_edp_experiment(mot3d::mem::DramPreset::kWeis3d_42ns, opt, "Fig. 8(b)");
  return 0;
}
