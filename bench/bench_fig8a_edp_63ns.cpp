// Fig. 8(a) — EDP of the four power states with on-chip 3-D Wide I/O DRAM
// (63 ns, JEDEC JESD229 [17]).
//
// Paper: "power efficiency resulting from power-gating of cache banks
// increases as the DRAM access latency decreases ... PC16-MB8 reduces EDP
// for more benchmark programs when DRAM access latency is 63ns and 42ns."
#include "edp_experiment.hpp"

int main(int argc, char** argv) {
  using namespace mot3d::bench;
  const Options opt = parse_options(argc, argv);
  run_edp_experiment(mot3d::mem::DramPreset::kWideIo_63ns, opt, "Fig. 8(a)");
  return 0;
}
