// Fig. 8(a) — EDP of the four power states with on-chip 3-D Wide I/O DRAM
// (63 ns, JEDEC JESD229 [17]).
//
// Paper: "power efficiency resulting from power-gating of cache banks
// increases as the DRAM access latency decreases ... PC16-MB8 reduces EDP
// for more benchmark programs when DRAM access latency is 63ns and 42ns."
//
// Thin wrapper over the registered "fig8a_edp_63ns" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig8a_edp_63ns", argc, argv);
}
