// Fig. 5 — wire-length comparison between power states.
//
// The paper's geometric argument: with all cores and banks on, the longest
// core-to-bank wire spans ~x+y (die ~5 mm x 5 mm, z ~40 µm); gating to
// 4 cores / 8 banks shrinks the active spans to about a quarter, which is
// where the latency reduction of Table I comes from.
#include <iostream>

#include "common/table.hpp"
#include "core/mot_timing.hpp"
#include "core/power_state.hpp"
#include "harness.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  // Analytic bench (no simulation): options are parsed only so that typoed
  // flags fail loudly instead of being silently ignored.
  (void)bench::parse_options(argc, argv);

  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const phys::ClusterGeometry geo(fp, tech);
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);

  std::cout << "### Fig. 5: wire lengths per power state (die " << fp.die_x_mm
            << " x " << fp.die_y_mm << " mm, tier gap "
            << fp.tier_gap_mm * 1000.0 << " um)\n";

  TextTable tbl("active spans, worst-case link and path delay per state");
  tbl.set_header({"state", "bank field (mm)", "core field (mm)",
                  "longest link (mm)", "request path (mm)", "request delay (ns)",
                  "powered repeaters", "powered switches"});
  for (const core::PowerState& s : core::PowerState::paper_states()) {
    const core::MotStateTiming t = model.timing(s);
    tbl.add_row({s.name(),
                 fmt_fixed(geo.bank_field_span_mm(s.active_banks()), 2),
                 fmt_fixed(geo.core_field_span_mm(s.active_cores()), 2),
                 fmt_fixed(geo.longest_link_mm(s.active_cores(), s.active_banks()), 2),
                 fmt_fixed(geo.request_path_mm(s.active_cores(), s.active_banks()), 2),
                 fmt_fixed(t.request_delay_ns, 2),
                 std::to_string(model.powered_repeaters(s)),
                 std::to_string(model.powered_switches(s))});
  }
  tbl.print(std::cout);

  const double full = geo.longest_link_mm(16, 32);
  const double gated = geo.longest_link_mm(4, 8);
  std::cout << "worst-case wire shrink Full -> PC4-MB8: " << fmt_fixed(full, 2)
            << " mm -> " << fmt_fixed(gated, 2) << " mm ("
            << fmt_fixed(full / gated, 1) << "x)\n";
  return 0;
}
