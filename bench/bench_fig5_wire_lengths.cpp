// Fig. 5 — wire-length comparison between power states.
//
// The paper's geometric argument: with all cores and banks on, the longest
// core-to-bank wire spans ~x+y (die ~5 mm x 5 mm, z ~40 µm); gating to
// 4 cores / 8 banks shrinks the active spans to about a quarter, which is
// where the latency reduction of Table I comes from.
//
// Thin wrapper over the registered "fig5_wire_lengths" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig5_wire_lengths", argc, argv);
}
