// Fig. 7(a) — energy-delay product of the four power states (Full,
// PC16-MB8, PC4-MB32, PC4-MB8), DRAM 200 ns, normalised to Full.
//
// Paper claims reproduced in the summary table: PC4-MB32 cuts EDP by 44 %
// on average (up to 66 %) on the limited-scalability group; PC4-MB8 by
// 52 % (up to 77 %); PC16-MB8 by 13 % (up to 18 %) on the small-working-
// set group.
//
// Thin wrapper over the registered "fig7a_edp_200ns" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig7a_edp_200ns", argc, argv);
}
