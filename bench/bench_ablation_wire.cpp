// Ablation — repeater insertion vs Elmore wire delay.
//
// Quantifies the design choice behind the paper's "inverters placed along
// the on-chip wires": how the delay of the MoT channel wires depends on
// repeater spacing, and what gating those repeaters saves in leakage.
//
// Thin wrapper over the registered "ablation_wire" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("ablation_wire", argc, argv);
}
