// Ablation — repeater insertion vs Elmore wire delay.
//
// Quantifies the design choice behind the paper's "inverters placed along
// the on-chip wires": how the delay of the MoT channel wires depends on
// repeater spacing, and what gating those repeaters saves in leakage.
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "phys/technology.hpp"
#include "phys/wire.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  // Analytic bench (no simulation): options are parsed only so that typoed
  // flags fail loudly instead of being silently ignored.
  (void)bench::parse_options(argc, argv);

  phys::TechnologyParams tech = phys::default_technology();
  std::cout << "### Ablation: repeater insertion on the MoT channel wires\n";

  TextTable tbl("delay of 1/2/4 mm wires vs repeater spacing");
  tbl.set_header({"spacing (mm)", "1mm (ns)", "2mm (ns)", "4mm (ns)",
                  "repeaters on 4mm", "leak/bit on 4mm (uW)"});
  for (double spacing : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    tech.repeater_spacing_mm = spacing;
    const phys::WireModel w(tech);
    tbl.add_row({fmt_fixed(spacing, 2), fmt_fixed(w.repeated_delay_ns(1.0), 3),
                 fmt_fixed(w.repeated_delay_ns(2.0), 3),
                 fmt_fixed(w.repeated_delay_ns(4.0), 3),
                 std::to_string(w.repeater_count(4.0)),
                 fmt_fixed(w.leakage_uw_per_bit(4.0), 2)});
  }
  tbl.print(std::cout);

  tech = phys::default_technology();
  const phys::WireModel w(tech);
  std::cout << "unrepeated 4mm Elmore delay: " << fmt_fixed(w.unrepeated_delay_ns(4.0), 3)
            << " ns; design point (1mm spacing): "
            << fmt_fixed(w.repeated_delay_ns(4.0), 3)
            << " ns; delay-optimal spacing: " << fmt_fixed(w.optimal_spacing_mm(), 3)
            << " mm\n";
  return 0;
}
