// Fig. 7(b) — execution time of the four power states, DRAM 200 ns.
//
// Paper claims reproduced in the summary:
//  * limited-scalability apps (cholesky/fft/volrend/raytrace) gain only up
//    to 33 % (avg 19 %) from 4 -> 16 cores;
//  * scalable apps (fmm/radix/ocean/water) gain up to 69 % (avg 64 %);
//  * PC16-MB8 costs +4.7 % avg (max 8.6 %) on the small-WS five and
//    +24 % avg (max 31 %) on cholesky/radix/ocean.
//
// Thin wrapper over the registered "fig7b_exec_time_states" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig7b_exec_time_states", argc, argv);
}
