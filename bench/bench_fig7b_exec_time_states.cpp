// Fig. 7(b) — execution time of the four power states, DRAM 200 ns.
//
// Paper claims reproduced in the summary:
//  * limited-scalability apps (cholesky/fft/volrend/raytrace) gain only up
//    to 33 % (avg 19 %) from 4 -> 16 cores;
//  * scalable apps (fmm/radix/ocean/water) gain up to 69 % (avg 64 %);
//  * PC16-MB8 costs +4.7 % avg (max 8.6 %) on the small-WS five and
//    +24 % avg (max 31 %) on cholesky/radix/ocean.
#include <iostream>
#include <map>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  using namespace mot3d::bench;
  const Options opt = parse_options(argc, argv);
  const auto& states = core::PowerState::paper_states();

  print_header("Fig. 7(b): execution time per power state (DRAM 200 ns)", opt);
  TextTable tbl("execution time in kilo-cycles (normalised to Full in parens)");
  std::vector<std::string> header = {"benchmark"};
  for (const auto& s : states) header.push_back(s.name());
  tbl.set_header(header);

  Sweep sweep(opt, "fig7b_exec_time_states");
  std::map<std::string, std::map<std::string, std::size_t>> idx;
  for (const std::string& app : workload::splash2_names()) {
    for (const core::PowerState& s : states) {
      idx[app][s.name()] =
          sweep.add(app, cluster::Fabric::kMot, s, mem::DramPreset::kDdr3_200ns);
    }
  }
  sweep.run();

  std::map<std::string, std::map<std::string, double>> cycles;
  for (const std::string& app : workload::splash2_names()) {
    std::vector<std::string> row = {app};
    double base = 0.0;
    for (const core::PowerState& s : states) {
      const cluster::SimResult& r = sweep[idx[app][s.name()]];
      cycles[s.name()][app] = static_cast<double>(r.cycles);
      if (s.name() == "Full") base = static_cast<double>(r.cycles);
      row.push_back(fmt_fixed(r.cycles / 1000.0, 0) + " (" +
                    fmt_fixed(static_cast<double>(r.cycles) / base, 2) + ")");
    }
    tbl.add_row(row);
  }
  tbl.print(std::cout);

  const std::vector<std::string> limited = {"cholesky", "fft", "volrend", "raytrace"};
  const std::vector<std::string> scalable = {"fmm", "radix", "ocean_contiguous",
                                             "water_nsquared"};
  const std::vector<std::string> small_ws = {"fft", "fmm", "volrend", "raytrace",
                                             "water_nsquared"};
  const std::vector<std::string> large_ws = {"cholesky", "radix", "ocean_contiguous"};

  // 4 -> 16 core speedup: compare PC4-MB32 (4 cores) against Full (16).
  auto core_gain = [&](const std::vector<std::string>& apps) {
    std::vector<double> g;
    for (const auto& a : apps) {
      g.push_back(reduction(cycles["PC4-MB32"][a], cycles["Full"][a]));
    }
    return g;
  };
  // PC16-MB8 execution-time increase vs Full.
  auto mb8_cost = [&](const std::vector<std::string>& apps) {
    std::vector<double> g;
    for (const auto& a : apps) {
      g.push_back(cycles["PC16-MB8"][a] / cycles["Full"][a] - 1.0);
    }
    return g;
  };

  const auto lim = core_gain(limited);
  const auto sca = core_gain(scalable);
  const auto cost_small = mb8_cost(small_ws);
  const auto cost_large = mb8_cost(large_ws);

  TextTable s("Fig. 7(b) paper-claim comparison");
  s.set_header({"claim", "measured avg", "measured max", "paper avg", "paper max"});
  s.add_row({"4->16 cores gain, limited apps", fmt_percent(average(lim)),
             fmt_percent(max_of(lim)), "19%", "33%"});
  s.add_row({"4->16 cores gain, scalable apps", fmt_percent(average(sca)),
             fmt_percent(max_of(sca)), "64%", "69%"});
  s.add_row({"PC16-MB8 exec increase, small-WS apps", fmt_percent(average(cost_small)),
             fmt_percent(max_of(cost_small)), "4.7%", "8.6%"});
  s.add_row({"PC16-MB8 exec increase, cholesky/radix/ocean",
             fmt_percent(average(cost_large)), fmt_percent(max_of(cost_large)), "24%",
             "31%"});
  s.print(std::cout);
  sweep.report();
  return 0;
}
