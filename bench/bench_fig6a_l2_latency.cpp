// Fig. 6(a) — L2 cache access latency (clock cycles) of the four 3-D
// on-chip interconnects: True 3-D Mesh, 3-D Hybrid Bus-Mesh, 3-D Hybrid
// Bus-Tree, 3-D MoT.  DRAM 200 ns, full connection (16 cores, 32 banks).
//
// Expected shape (paper): MoT lowest; Bus-Mesh beats True Mesh (the
// vertical bus removes hop-by-hop z traversal); Bus-Tree worst (its four
// shared vertical buses saturate).
#include <iostream>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  using namespace mot3d::bench;
  const Options opt = parse_options(argc, argv, 0.25);

  const std::vector<cluster::Fabric> fabrics = {
      cluster::Fabric::kTrueMesh3d, cluster::Fabric::kHybridBusMesh,
      cluster::Fabric::kHybridBusTree, cluster::Fabric::kMot};

  print_header("Fig. 6(a): L2 cache access latency per interconnect", opt);
  TextTable tbl("L2 access latency in cycles (L2-hit mean / overall mean / p95)");
  std::vector<std::string> header = {"benchmark"};
  for (auto f : fabrics) header.push_back(cluster::fabric_name(f));
  tbl.set_header(header);

  Sweep sweep(opt, "fig6a_l2_latency");
  for (const std::string& app : workload::splash2_names()) {
    for (cluster::Fabric f : fabrics) {
      sweep.add(app, f, core::PowerState::full(), mem::DramPreset::kDdr3_200ns);
    }
  }
  sweep.run();

  // Consume in queue order: apps outer, fabrics inner, same as above.
  std::vector<std::vector<double>> hit_means(fabrics.size());
  std::size_t k = 0;
  for (const std::string& app : workload::splash2_names()) {
    std::vector<std::string> row = {app};
    for (std::size_t fi = 0; fi < fabrics.size(); ++fi) {
      const cluster::SimResult& r = sweep[k++];
      hit_means[fi].push_back(r.l2_hit_latency.mean());
      row.push_back(fmt_fixed(r.l2_hit_latency.mean(), 1) + " / " +
                    fmt_fixed(r.l2_latency.mean(), 1) + " / " +
                    std::to_string(r.l2_latency.quantile(0.95)));
    }
    tbl.add_row(row);
  }
  std::vector<std::string> avg_row = {"AVERAGE (hit)"};
  for (auto& v : hit_means) avg_row.push_back(fmt_fixed(average(v), 1));
  tbl.add_row(avg_row);
  tbl.print(std::cout);

  std::cout << "shape check: MoT < Bus-Mesh < True Mesh < Bus-Tree on average: "
            << (average(hit_means[3]) < average(hit_means[1]) &&
                        average(hit_means[1]) < average(hit_means[0]) &&
                        average(hit_means[0]) < average(hit_means[2])
                    ? "PASS"
                    : "CHECK")
            << "\n";
  sweep.report();
  return 0;
}
