// Fig. 6(a) — L2 cache access latency (clock cycles) of the four 3-D
// on-chip interconnects: True 3-D Mesh, 3-D Hybrid Bus-Mesh, 3-D Hybrid
// Bus-Tree, 3-D MoT.  DRAM 200 ns, full connection (16 cores, 32 banks).
//
// Expected shape (paper): MoT lowest; Bus-Mesh beats True Mesh (the
// vertical bus removes hop-by-hop z traversal); Bus-Tree worst (its four
// shared vertical buses saturate).
//
// Thin wrapper over the registered "fig6a_l2_latency" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig6a_l2_latency", argc, argv);
}
