// Microbenchmarks + scheduler speedup measurement.
//
// Part 1 guards the simulator's hot paths (MoT transport, NoC fabric,
// cache, workload generator) against throughput regressions with a small
// self-timed harness (no external benchmark dependency).
//
// Part 2 is the headline perf experiment of the event-driven scheduler:
// the full Fig. 6 sweep (8 SPLASH-2 apps x 4 fabrics, DRAM 200 ns) run
// twice — dense-tick serial baseline vs event-driven scheduler across the
// --threads pool — with a differential check that both produce identical
// modeled cycles.  The speedup and both wall times land in the --json
// perf report so the trajectory (BENCH_*.json) tracks them PR over PR.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "cacti/sram_model.hpp"
#include "common/rng.hpp"
#include "core/mot_interconnect.hpp"
#include "harness.hpp"
#include "mem/cache.hpp"
#include "noc/noc_interconnect.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace mot3d;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- Part 1: hot-path microbenchmarks --------------------------------------

template <typename Fn>
void run_micro(TextTable& tbl, const std::string& name, std::uint64_t iters,
               Fn&& op) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) op(i);
  const double wall = seconds_since(t0);
  tbl.add_row({name, std::to_string(iters), fmt_fixed(wall * 1e9 / iters, 1),
               fmt_fixed(iters / wall / 1e6, 2)});
}

void run_microbenchmarks() {
  std::cout << "### Microbenchmarks: simulator hot paths\n";
  TextTable tbl("self-timed; single thread");
  tbl.set_header({"benchmark", "iterations", "ns/op", "Mops/s"});

  {
    mem::Cache cache(mem::CacheConfig{.capacity_bytes = 64 * 1024,
                                      .line_bytes = 32,
                                      .associativity = 8,
                                      .index_shift = 0});
    for (Addr a = 0; a < 64 * 1024; a += 32) cache.insert(a, false);
    Rng rng(1);
    std::uint64_t hits = 0;
    run_micro(tbl, "cache lookup (hit)", 2'000'000, [&](std::uint64_t) {
      hits += cache.lookup(rng.next_below(64 * 1024), false).hit ? 1 : 0;
    });
    if (hits == 0) std::cout << "";  // defeat dead-code elimination
  }

  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);

  {
    core::MotInterconnect icn(model, core::PowerState::full());
    icn.set_request_sink([](const MemRequest&, Cycle) {});
    icn.set_response_sink([](const MemResponse&, Cycle) {});
    Rng rng(2);
    Cycle t = 0;
    std::uint64_t id = 1;
    run_micro(tbl, "MoT tick (uniform load)", 500'000, [&](std::uint64_t) {
      for (CoreId c = 0; c < 16; ++c) {
        if (rng.next_double() < 0.1) {
          MemRequest r{.id = id++, .core = c,
                       .bank = static_cast<BankId>(rng.next_below(32)),
                       .addr = 0, .is_write = false, .issue_cycle = t};
          (void)icn.try_inject_request(r, t);
        }
      }
      icn.tick(t++);
    });
  }

  {
    noc::NocConfig cfg;
    const power::InterconnectPowerModel pm{phys::WireModel(tech)};
    noc::NocInterconnect icn(noc::NocTopology::kTrueMesh3d, cfg, pm);
    icn.set_request_sink([](const MemRequest&, Cycle) {});
    icn.set_response_sink([](const MemResponse&, Cycle) {});
    Rng rng(3);
    Cycle t = 0;
    std::uint64_t id = 1;
    run_micro(tbl, "NoC tick (true 3-D mesh)", 200'000, [&](std::uint64_t) {
      for (CoreId c = 0; c < 16; ++c) {
        if (rng.next_double() < 0.05) {
          MemRequest r{.id = id++, .core = c,
                       .bank = static_cast<BankId>(rng.next_below(32)),
                       .addr = 0, .is_write = false, .issue_cycle = t};
          (void)icn.try_inject_request(r, t);
        }
      }
      icn.tick(t++);
    });
  }

  {
    const workload::AppProfile& app = workload::profile_by_name("fft");
    workload::Workload w(app, 16, 1.0, 5);
    auto trace = w.make_trace(3);
    std::uint64_t sink = 0;
    run_micro(tbl, "trace generation", 2'000'000, [&](std::uint64_t) {
      sink += static_cast<std::uint64_t>(trace->next().kind);
    });
    if (sink == 0) std::cout << "";
  }

  {
    core::ArbitrationTree at(16);
    at.configure(core::PowerState::full());
    std::vector<bool> req(16, true);
    std::uint64_t sink = 0;
    run_micro(tbl, "arbitration tree (16)", 2'000'000, [&](std::uint64_t) {
      sink += at.arbitrate(req).value_or(0);
    });
    if (sink == 0) std::cout << "";
  }

  tbl.print(std::cout);
}

// ---- Part 2: Fig. 6 sweep, dense serial vs event parallel ------------------

std::vector<std::size_t> queue_fig6(bench::Sweep& sweep) {
  const std::vector<cluster::Fabric> fabrics = {
      cluster::Fabric::kTrueMesh3d, cluster::Fabric::kHybridBusMesh,
      cluster::Fabric::kHybridBusTree, cluster::Fabric::kMot};
  std::vector<std::size_t> idx;
  for (const std::string& app : workload::splash2_names()) {
    for (cluster::Fabric f : fabrics) {
      idx.push_back(sweep.add(app, f, core::PowerState::full(),
                              mem::DramPreset::kDdr3_200ns));
    }
  }
  return idx;
}

int run_fig6_speedup(const bench::Options& opt) {
  bench::print_header(
      "Scheduler speedup: Fig. 6 sweep, dense serial vs event-driven", opt);

  // Both speedup legs run serial so the recorded scheduler gain is
  // machine-independent; the thread pool's additional parallel gain is
  // measured (and reported) separately below.
  bench::Options dense_opt = opt;
  dense_opt.scheduler = cluster::SchedulerMode::kDenseTick;
  dense_opt.threads = 1;
  bench::Sweep dense(dense_opt, "micro_sim_dense");
  const auto dense_idx = queue_fig6(dense);
  dense.run();

  bench::Options event_opt = opt;
  event_opt.scheduler = cluster::SchedulerMode::kEventDriven;
  event_opt.threads = 1;
  bench::Sweep event(event_opt, "micro_sim");
  const auto event_idx = queue_fig6(event);
  event.run();

  bool identical = true;
  for (std::size_t i = 0; i < dense_idx.size(); ++i) {
    const cluster::SimResult& d = dense[dense_idx[i]];
    const cluster::SimResult& e = event[event_idx[i]];
    if (d.cycles != e.cycles || d.instructions != e.instructions ||
        d.energy.edp_energy_pj() != e.energy.edp_energy_pj()) {
      identical = false;
      std::cout << "MISMATCH at " << d.app << "/" << d.fabric << ": dense "
                << d.cycles << " vs event " << e.cycles << " cycles\n";
    }
  }

  const double dense_wall = dense.telemetry().wall_seconds;
  const double event_wall = event.telemetry().wall_seconds;
  const double speedup = event_wall > 0.0 ? dense_wall / event_wall : 0.0;

  TextTable tbl("Fig. 6 sweep (" + std::to_string(dense_idx.size()) + " runs)");
  tbl.set_header({"configuration", "wall (s)", "Mcycles/s"});
  tbl.add_row({"dense tick, serial", fmt_fixed(dense_wall, 2),
               fmt_fixed(dense.telemetry().cycles_per_second() / 1e6, 2)});
  tbl.add_row({"event-driven, serial", fmt_fixed(event_wall, 2),
               fmt_fixed(event.telemetry().cycles_per_second() / 1e6, 2)});

  // Thread-pool gain on top of the scheduler, when a pool is available.
  sim::JsonObject extra;
  extra.set("dense_wall_seconds", dense_wall)
      .set("event_wall_seconds", event_wall)
      .set("speedup", speedup)
      .set("results_identical", identical);
  const unsigned pool = sim::SweepRunner::resolve_threads(opt.threads);
  if (pool > 1) {
    bench::Options parallel_opt = opt;
    parallel_opt.scheduler = cluster::SchedulerMode::kEventDriven;
    bench::Sweep parallel(parallel_opt, "micro_sim_parallel");
    (void)queue_fig6(parallel);
    parallel.run();
    const double parallel_wall = parallel.telemetry().wall_seconds;
    tbl.add_row({"event-driven, threads=" + std::to_string(pool),
                 fmt_fixed(parallel_wall, 2),
                 fmt_fixed(parallel.telemetry().cycles_per_second() / 1e6, 2)});
    extra.set("parallel_threads", pool)
        .set("parallel_wall_seconds", parallel_wall)
        .set("combined_speedup",
             parallel_wall > 0.0 ? dense_wall / parallel_wall : 0.0);
  }
  tbl.print(std::cout);

  std::cout << "modeled results identical: " << (identical ? "PASS" : "FAIL")
            << "\n"
            << "scheduler wall-clock speedup (serial vs serial): "
            << fmt_fixed(speedup, 2) << "x (target >= 3x: "
            << (speedup >= 3.0 ? "PASS" : "CHECK") << ")\n";

  event.report(extra);
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, /*default_scale=*/0.05);
  run_microbenchmarks();
  return run_fig6_speedup(opt);
}
