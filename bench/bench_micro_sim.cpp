// Microbenchmarks + scheduler speedup measurement.
//
// Part 1 guards the simulator's hot paths (MoT transport, NoC fabric,
// cache, workload generator) against throughput regressions with a small
// self-timed harness (no external benchmark dependency).
//
// Part 2 is the headline perf experiment of the event-driven scheduler:
// the registered Fig. 6 sweep run twice — dense-tick serial baseline vs
// event-driven scheduler — with a differential check that both produce
// identical modeled metrics (the same canonical JSON the golden suite
// pins).  The speedup and both wall times land in the --json perf report
// so the trajectory (BENCH_*.json) tracks them PR over PR.
//
// Thin wrapper over the registered "micro_sim" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("micro_sim", argc, argv);
}
