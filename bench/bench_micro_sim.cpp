// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// paths — the MoT transport, the NoC fabric, the cache, and the workload
// generator.  These guard against performance regressions that would make
// the figure-level experiments impractically slow.
#include <benchmark/benchmark.h>

#include "cacti/sram_model.hpp"
#include "common/rng.hpp"
#include "core/mot_interconnect.hpp"
#include "mem/cache.hpp"
#include "noc/noc_interconnect.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace mot3d;

void BM_CacheLookupHit(benchmark::State& state) {
  mem::Cache cache(mem::CacheConfig{.capacity_bytes = 64 * 1024,
                                    .line_bytes = 32,
                                    .associativity = 8,
                                    .index_shift = 0});
  for (Addr a = 0; a < 64 * 1024; a += 32) cache.insert(a, false);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(rng.next_below(64 * 1024), false).hit);
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_MotTickUniformLoad(benchmark::State& state) {
  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);
  core::MotInterconnect icn(model, core::PowerState::full());
  icn.set_request_sink([](const MemRequest&, Cycle) {});
  icn.set_response_sink([](const MemResponse&, Cycle) {});
  Rng rng(2);
  Cycle t = 0;
  std::uint64_t id = 1;
  for (auto _ : state) {
    for (CoreId c = 0; c < 16; ++c) {
      if (rng.next_double() < 0.1) {
        MemRequest r{.id = id++, .core = c,
                     .bank = static_cast<BankId>(rng.next_below(32)),
                     .addr = 0, .is_write = false, .issue_cycle = t};
        (void)icn.try_inject_request(r, t);
      }
    }
    icn.tick(t++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t));
}
BENCHMARK(BM_MotTickUniformLoad);

void BM_NocTickMesh3d(benchmark::State& state) {
  noc::NocConfig cfg;
  const power::InterconnectPowerModel pm(phys::WireModel(phys::default_technology()));
  noc::NocInterconnect icn(noc::NocTopology::kTrueMesh3d, cfg, pm);
  icn.set_request_sink([](const MemRequest&, Cycle) {});
  icn.set_response_sink([](const MemResponse&, Cycle) {});
  Rng rng(3);
  Cycle t = 0;
  std::uint64_t id = 1;
  for (auto _ : state) {
    for (CoreId c = 0; c < 16; ++c) {
      if (rng.next_double() < 0.05) {
        MemRequest r{.id = id++, .core = c,
                     .bank = static_cast<BankId>(rng.next_below(32)),
                     .addr = 0, .is_write = false, .issue_cycle = t};
        (void)icn.try_inject_request(r, t);
      }
    }
    icn.tick(t++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(t));
}
BENCHMARK(BM_NocTickMesh3d);

void BM_TraceGeneration(benchmark::State& state) {
  const workload::AppProfile& app = workload::profile_by_name("fft");
  workload::Workload w(app, 16, 1.0, 5);
  auto trace = w.make_trace(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace->next());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_ArbitrationTree16(benchmark::State& state) {
  core::ArbitrationTree at(16);
  at.configure(core::PowerState::full());
  std::vector<bool> req(16, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(at.arbitrate(req));
  }
}
BENCHMARK(BM_ArbitrationTree16);

}  // namespace

BENCHMARK_MAIN();
