// Table I — architecture configurations.
//
// Prints the cluster configuration exactly as the paper tabulates it, with
// the L2 latencies *derived* from the MoT timing model (Elmore wires + TSV
// + CACTI bank) rather than copied: the four rows must read 12/9/9/7.
#include <iostream>

#include "cacti/sram_model.hpp"
#include "core/mot_timing.hpp"
#include "core/power_state.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "mem/dram.hpp"
#include "phys/geometry.hpp"
#include "phys/technology.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  // Analytic bench (no simulation): options are parsed only so that typoed
  // flags fail loudly instead of being silently ignored.
  (void)bench::parse_options(argc, argv);

  std::cout << "### Table I — architecture configurations\n";

  TextTable core_tbl("Core / L1 / DRAM");
  core_tbl.set_header({"Feature", "Description"});
  core_tbl.add_row({"Core", "1GHz, 4 - 16 cores, in-order execution (trace-driven)"});
  core_tbl.add_row({"L1 I/D cache",
                    "Private, 4KB per core, 32B line, 4-way, LRU, 1 cycle"});
  core_tbl.add_row({"L2 cache", "Shared, 32B line, 8-way, 64KB per bank"});
  for (auto preset : {mem::DramPreset::kDdr3_200ns, mem::DramPreset::kWideIo_63ns,
                      mem::DramPreset::kWeis3d_42ns}) {
    core_tbl.add_row({"DRAM", std::string(mem::dram_preset_name(preset)) +
                                  ", one controller, 2Gb, 4KB page"});
  }
  core_tbl.print(std::cout);

  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);

  TextTable l2_tbl("L2 latency per power state (derived from the MoT timing model)");
  l2_tbl.set_header({"Power state", "Cores", "Banks", "L2 latency (cycles)",
                     "Paper (cycles)", "req+bank+resp"});
  const char* paper[] = {"12", "9", "9", "7"};
  int i = 0;
  for (const core::PowerState& s : core::PowerState::paper_states()) {
    const core::MotStateTiming t = model.timing(s);
    l2_tbl.add_row({s.name(), std::to_string(s.active_cores()),
                    std::to_string(s.active_banks()),
                    std::to_string(t.l2_round_trip()), paper[i++],
                    std::to_string(t.request_cycles) + "+" +
                        std::to_string(t.bank_cycles) + "+" +
                        std::to_string(t.response_cycles)});
  }
  l2_tbl.print(std::cout);

  const cacti::SramBankResult r = cacti::evaluate(bank);
  TextTable bank_tbl("L2 bank (CACTI-lite, 45nm)");
  bank_tbl.set_header({"Metric", "Value"});
  bank_tbl.add_row({"access time", fmt_fixed(r.access_ns, 3) + " ns"});
  bank_tbl.add_row({"read energy", fmt_fixed(r.read_energy_pj, 1) + " pJ"});
  bank_tbl.add_row({"write energy", fmt_fixed(r.write_energy_pj, 1) + " pJ"});
  bank_tbl.add_row({"leakage", fmt_fixed(r.leakage_mw, 2) + " mW"});
  bank_tbl.add_row({"area", fmt_fixed(r.area_mm2, 3) + " mm^2"});
  bank_tbl.print(std::cout);
  return 0;
}
