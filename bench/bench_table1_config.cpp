// Table I — architecture configurations.
//
// Prints the cluster configuration exactly as the paper tabulates it, with
// the L2 latencies *derived* from the MoT timing model (Elmore wires + TSV
// + CACTI bank) rather than copied: the four rows must read 12/9/9/7.
//
// Thin wrapper over the registered "table1_config" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("table1_config", argc, argv);
}
